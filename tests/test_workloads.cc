/**
 * @file
 * Unit tests for the workload generators: address streams, the SPEC
 * catalog, TailBench-like LC apps, and mix construction.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/sim/logging.hh"
#include "src/workloads/address_stream.hh"
#include "src/workloads/mixes.hh"
#include "src/workloads/spec_like.hh"
#include "src/workloads/tail_latency.hh"

namespace jumanji {
namespace {

// ------------------------------------------------------ AddressStream

TEST(AddressStream, DrawsWithinFootprint)
{
    AddressStream stream(1000, {{64, 1.0, false}, {128, 1.0, false}});
    Rng rng(1);
    for (int i = 0; i < 1000; i++) {
        LineAddr line = stream.draw(rng);
        EXPECT_GE(line, 1000u);
        EXPECT_LT(line, 1000u + 192u);
    }
    EXPECT_EQ(stream.footprintLines(), 192u);
}

TEST(AddressStream, WorkingSetsDisjoint)
{
    AddressStream streamA(0, {{64, 1.0, false}});
    AddressStream streamB(appAddressBase(1), {{64, 1.0, false}});
    Rng rng(1);
    for (int i = 0; i < 100; i++)
        EXPECT_NE(streamA.draw(rng) >> 40, streamB.draw(rng) >> 40);
}

TEST(AddressStream, WeightsBiasDraws)
{
    AddressStream stream(0, {{64, 9.0, false}, {64, 1.0, false}});
    Rng rng(2);
    int firstSet = 0;
    const int n = 10000;
    for (int i = 0; i < n; i++)
        if (stream.draw(rng) < 64) firstSet++;
    EXPECT_NEAR(static_cast<double>(firstSet) / n, 0.9, 0.03);
}

TEST(AddressStream, StreamingNeverReuses)
{
    AddressStream stream(0, {{0, 1.0, true}});
    Rng rng(3);
    std::set<LineAddr> seen;
    for (int i = 0; i < 1000; i++)
        EXPECT_TRUE(seen.insert(stream.draw(rng)).second);
}

TEST(AddressStream, RejectsEmpty)
{
    EXPECT_THROW(AddressStream(0, {}), FatalError);
    EXPECT_THROW(AddressStream(0, {{64, 0.0, false}}), FatalError);
}

// ------------------------------------------------------- SPEC catalog

TEST(SpecCatalog, HasSixteenApps)
{
    EXPECT_EQ(specAppCatalog().size(), 16u);
}

TEST(SpecCatalog, NamesMatchFootnote)
{
    // Footnote 1 of the paper.
    for (const char *name :
         {"401.bzip2", "403.gcc", "410.bwaves", "429.mcf", "433.milc",
          "434.zeusmp", "436.cactusADM", "437.leslie3d", "454.calculix",
          "459.GemsFDTD", "462.libquantum", "470.lbm", "471.omnetpp",
          "473.astar", "482.sphinx3", "483.xalancbmk"}) {
        EXPECT_NO_THROW(specAppParams(name)) << name;
    }
    EXPECT_THROW(specAppParams("999.nope"), FatalError);
}

TEST(SpecCatalog, ParametersSane)
{
    for (const auto &app : specAppCatalog()) {
        EXPECT_GT(app.apki, 0.0) << app.name;
        EXPECT_GT(app.traits.baseIpc, 0.0) << app.name;
        EXPECT_FALSE(app.workingSets.empty()) << app.name;
        EXPECT_GT(app.traits.stallFactor, 0.0) << app.name;
        EXPECT_LE(app.traits.stallFactor, 1.0) << app.name;
    }
}

TEST(SpecLikeApp, GeneratesStepsWithAccesses)
{
    SpecLikeApp app(specAppParams("429.mcf"), 0);
    Rng rng(1);
    double totalInstrs = 0;
    int accesses = 0;
    for (int i = 0; i < 1000; i++) {
        AppStep step = app.next(0, rng);
        EXPECT_EQ(step.kind, AppStep::Kind::Execute);
        totalInstrs += static_cast<double>(step.instrs);
        if (step.access) accesses++;
    }
    EXPECT_EQ(accesses, 1000);
    // APKI check: accesses per kiloinstruction near the parameter.
    double apki = 1000.0 * accesses / totalInstrs;
    EXPECT_NEAR(apki, specAppParams("429.mcf").apki,
                0.2 * specAppParams("429.mcf").apki);
}

TEST(SpecLikeApp, DistinctMissCurveShapes)
{
    // libquantum streams (no reuse): its draws never repeat.
    SpecLikeApp stream(specAppParams("462.libquantum"), 0);
    Rng rng(1);
    std::set<LineAddr> seen;
    for (int i = 0; i < 500; i++) {
        AppStep step = stream.next(0, rng);
        ASSERT_TRUE(step.access.has_value());
        EXPECT_TRUE(seen.insert(*step.access).second);
    }
}

// ----------------------------------------------------- TailLatencyApp

TEST(TailCatalog, HasFiveApps)
{
    EXPECT_EQ(tailAppCatalog().size(), 5u);
    for (const char *name :
         {"masstree", "xapian", "img-dnn", "silo", "moses"})
        EXPECT_NO_THROW(tailAppParams(name)) << name;
}

TEST(TailCatalog, RequestSizeOrderingMatchesTableIII)
{
    // Table III: QPS ordering silo > masstree > xapian > img-dnn ~
    // moses; request cost is the inverse ordering.
    EXPECT_LT(tailAppParams("silo").instrsPerRequest,
              tailAppParams("masstree").instrsPerRequest);
    EXPECT_LT(tailAppParams("masstree").instrsPerRequest,
              tailAppParams("xapian").instrsPerRequest);
    EXPECT_LT(tailAppParams("xapian").instrsPerRequest,
              tailAppParams("img-dnn").instrsPerRequest);
}

TEST(TailLatencyApp, IdlesUntilFirstArrival)
{
    TailLatencyApp app(tailAppParams("xapian"), 0, 1e7, Rng(1));
    Rng rng(2);
    AppStep step = app.next(0, rng);
    EXPECT_EQ(step.kind, AppStep::Kind::Idle);
    EXPECT_GT(step.wakeTick, 0u);
}

TEST(TailLatencyApp, ServesRequestAfterArrival)
{
    TailLatencyApp app(tailAppParams("silo"), 0, 1000.0, Rng(1));
    Rng rng(2);
    AppStep first = app.next(0, rng);
    ASSERT_EQ(first.kind, AppStep::Kind::Idle);
    // Jump past the arrival: now there is work.
    AppStep step = app.next(first.wakeTick + 1, rng);
    EXPECT_EQ(step.kind, AppStep::Kind::Execute);
    EXPECT_TRUE(step.access.has_value());
}

TEST(TailLatencyApp, CompletionRecordsLatency)
{
    TailAppParams params = tailAppParams("silo");
    TailLatencyApp app(params, 0, 1000.0, Rng(1));
    Rng rng(2);

    Tick completionSeen = 0;
    double latencySeen = 0;
    app.setCompletionListener([&](Tick when, double latency) {
        completionSeen = when;
        latencySeen = latency;
    });

    // Drive the app manually: each Execute step's access "completes"
    // 50 cycles later.
    Tick now = 0;
    for (int i = 0; i < 100000 && app.requestsCompleted() == 0; i++) {
        AppStep step = app.next(now, rng);
        if (step.kind == AppStep::Kind::Idle) {
            now = step.wakeTick;
            continue;
        }
        now += step.instrs;
        if (step.access) app.onAccessComplete(now + 50);
    }
    ASSERT_EQ(app.requestsCompleted(), 1u);
    EXPECT_GT(completionSeen, 0u);
    EXPECT_GT(latencySeen, 0.0);
    EXPECT_EQ(app.latencies().count(), 1u);
}

TEST(TailLatencyApp, OpenLoopArrivalsKeepComing)
{
    // Open loop: arrivals accumulate even while the server is busy.
    TailLatencyApp app(tailAppParams("silo"), 0, 100.0, Rng(1));
    Rng rng(2);
    app.next(100000, rng); // drain arrivals up to t=100k
    EXPECT_GT(app.requestsArrived(), 500u);
    EXPECT_GT(app.queueDepth(), 0u);
}

TEST(TailLatencyApp, ArrivalRateMatchesInterarrival)
{
    TailLatencyApp app(tailAppParams("xapian"), 0, 5000.0, Rng(9));
    Rng rng(2);
    app.next(10000000, rng);
    double rate = static_cast<double>(app.requestsArrived()) / 1e7;
    EXPECT_NEAR(rate, 1.0 / 5000.0, 0.1 / 5000.0);
}

TEST(TailLatencyApp, LoadChangeTakesEffect)
{
    TailLatencyApp app(tailAppParams("xapian"), 0, 1e9, Rng(1));
    app.setMeanInterarrival(10.0);
    Rng rng(2);
    app.next(100000, rng);
    EXPECT_GT(app.requestsArrived(), 100u);
}

TEST(TailLatencyApp, DeterministicAcrossInstances)
{
    // Same seed -> same arrival process (the property that makes
    // cross-design comparisons fair).
    TailLatencyApp a(tailAppParams("moses"), 0, 1000.0, Rng(42));
    TailLatencyApp b(tailAppParams("moses"), 0, 1000.0, Rng(42));
    Rng rngA(7), rngB(7);
    for (int i = 0; i < 50; i++) {
        AppStep sa = a.next(i * 2000, rngA);
        AppStep sb = b.next(i * 2000, rngB);
        EXPECT_EQ(sa.kind, sb.kind);
        EXPECT_EQ(sa.instrs, sb.instrs);
    }
}

TEST(TailLatencyApp, RejectsBadConfig)
{
    EXPECT_THROW(TailLatencyApp(tailAppParams("silo"), 0, 0.0, Rng(1)),
                 FatalError);
}

// -------------------------------------------------------------- Mixes

TEST(Mixes, MakeMixShape)
{
    Rng rng(1);
    WorkloadMix mix = makeMix({"xapian"}, 4, 4, rng);
    EXPECT_EQ(mix.vms.size(), 4u);
    for (const auto &vm : mix.vms) {
        EXPECT_EQ(vm.lcApps.size(), 1u);
        EXPECT_EQ(vm.lcApps[0], "xapian");
        EXPECT_EQ(vm.batchApps.size(), 4u);
    }
    EXPECT_EQ(mix.totalApps(), 20u);
}

TEST(Mixes, MixedLcCycles)
{
    Rng rng(1);
    auto names = allTailAppNames();
    WorkloadMix mix = makeMix(names, 4, 4, rng);
    EXPECT_EQ(mix.vms[0].lcApps[0], names[0]);
    EXPECT_EQ(mix.vms[3].lcApps[0], names[3]);
}

TEST(Mixes, DeterministicGivenSeed)
{
    Rng a(99), b(99);
    WorkloadMix ma = makeMix({"silo"}, 4, 4, a);
    WorkloadMix mb = makeMix({"silo"}, 4, 4, b);
    for (std::size_t v = 0; v < 4; v++)
        EXPECT_EQ(ma.vms[v].batchApps, mb.vms[v].batchApps);
}

TEST(Mixes, RegroupPreservesPopulation)
{
    Rng rng(5);
    WorkloadMix base = makeMix(allTailAppNames(), 4, 4, rng);
    for (std::uint32_t vms : {1u, 2u, 6u, 12u}) {
        WorkloadMix regrouped = regroupMix(base, vms);
        EXPECT_EQ(regrouped.vms.size(), vms);
        EXPECT_EQ(regrouped.totalApps(), base.totalApps());
        std::uint32_t lc = 0;
        for (const auto &vm : regrouped.vms)
            lc += static_cast<std::uint32_t>(vm.lcApps.size());
        EXPECT_EQ(lc, 4u);
    }
}

TEST(Mixes, AllTailAppNamesMatchesCatalog)
{
    EXPECT_EQ(allTailAppNames().size(), tailAppCatalog().size());
}

} // namespace
} // namespace jumanji
