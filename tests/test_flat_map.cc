/**
 * @file
 * Tests for the hot-path flat containers (src/sim/flat_map.hh):
 * SmallIdMap insert/erase/overwrite semantics, presence-bitmap edge
 * cases (the -1 sentinel, id 0, word boundaries, regrowth), ordered
 * iteration matching std::map on random key sequences, and a
 * fingerprint proof that swapping std::map for SmallIdMap preserves
 * the iteration order that stats dumps and selfcheck hashes fold.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/fingerprint.hh"
#include "src/sim/flat_map.hh"
#include "src/sim/logging.hh"
#include "src/sim/rng.hh"
#include "src/sim/types.hh"

namespace jumanji {
namespace {

TEST(SmallIdMapTest, InsertOverwriteLookup)
{
    SmallIdMap<VcId, std::uint64_t> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.lookup(3), nullptr);

    m[3] = 7;
    EXPECT_EQ(m.size(), 1u);
    ASSERT_NE(m.lookup(3), nullptr);
    EXPECT_EQ(*m.lookup(3), 7u);
    EXPECT_EQ(m.count(3), 1u);
    EXPECT_TRUE(m.contains(3));

    m[3] = 11; // overwrite does not change size
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(*m.lookup(3), 11u);

    m[0]++;
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(*m.lookup(0), 1u);
}

TEST(SmallIdMapTest, EraseResetsAndShrinksSize)
{
    SmallIdMap<AppId, std::uint64_t> m;
    m[5] = 42;
    m[9] = 43;
    EXPECT_EQ(m.erase(5), 1u);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.lookup(5), nullptr);
    EXPECT_EQ(m.erase(5), 0u); // double erase is a no-op
    EXPECT_EQ(m.erase(77), 0u); // beyond storage is a no-op

    // Re-inserting an erased id default-constructs a fresh value.
    EXPECT_EQ(m[5], 0u);
    EXPECT_EQ(m.size(), 2u);
}

TEST(SmallIdMapTest, EraseReleasesOwnedResources)
{
    SmallIdMap<VcId, std::shared_ptr<int>> m;
    auto owned = std::make_shared<int>(5);
    std::weak_ptr<int> watch = owned;
    m[2] = std::move(owned);
    EXPECT_FALSE(watch.expired());
    m.erase(2);
    EXPECT_TRUE(watch.expired());
}

TEST(SmallIdMapTest, SentinelAndZeroIdsAreDistinctSlots)
{
    SmallIdMap<VmId, std::uint64_t> m;
    m[kInvalidVm] = 100; // -1: the sentinel slot
    m[0] = 200;
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(*m.lookup(kInvalidVm), 100u);
    EXPECT_EQ(*m.lookup(0), 200u);

    // The sentinel iterates first, exactly as it would in std::map.
    std::vector<VmId> ids;
    for (const auto &[vm, count] : m) {
        (void)count;
        ids.push_back(vm);
    }
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], kInvalidVm);
    EXPECT_EQ(ids[1], 0);

    EXPECT_THROW(m[-2], PanicError);
}

TEST(SmallIdMapTest, BitmapWordBoundariesAndRegrowth)
{
    SmallIdMap<AppId, int> m;
    // Ids straddling 64-bit presence words (slot = id + 1).
    std::vector<AppId> ids = {62, 63, 64, 127, 128, 1023};
    for (std::size_t i = 0; i < ids.size(); i++)
        m[ids[i]] = static_cast<int>(i);
    EXPECT_EQ(m.size(), ids.size());
    for (std::size_t i = 0; i < ids.size(); i++) {
        ASSERT_NE(m.lookup(ids[i]), nullptr) << "id " << ids[i];
        EXPECT_EQ(*m.lookup(ids[i]), static_cast<int>(i));
    }
    // Slots between live ids regrew as absent.
    EXPECT_EQ(m.lookup(100), nullptr);
    EXPECT_EQ(m.lookup(1022), nullptr);

    // A max-id insert after reserve() must not disturb live entries.
    m.reserve(4096);
    m[4095] = 99;
    EXPECT_EQ(*m.lookup(4095), 99);
    EXPECT_EQ(*m.lookup(1023), 5);
    EXPECT_EQ(m.size(), ids.size() + 1);
}

TEST(SmallIdMapTest, IterationMutatesThroughProxy)
{
    SmallIdMap<VcId, std::uint64_t> m;
    m[1] = 10;
    m[4] = 40;
    for (auto [vc, count] : m) {
        (void)vc;
        count += 1; // Entry::second is a live reference
    }
    EXPECT_EQ(*m.lookup(1), 11u);
    EXPECT_EQ(*m.lookup(4), 41u);
}

TEST(SmallIdMapTest, OrderedIterationMatchesStdMapOnRandomSequences)
{
    Rng rng(0xf1a7ull);
    for (int round = 0; round < 20; round++) {
        SmallIdMap<AppId, std::uint64_t> flat;
        std::map<AppId, std::uint64_t> ref;
        for (int op = 0; op < 400; op++) {
            auto id = static_cast<AppId>(rng.below(96)) - 1; // [-1, 94]
            switch (rng.below(3)) {
            case 0:
                flat[id] += op;
                ref[id] += op;
                break;
            case 1: {
                std::uint64_t v = rng.below(1000);
                flat[id] = v;
                ref[id] = v;
                break;
            }
            default:
                EXPECT_EQ(flat.erase(id), ref.erase(id));
                break;
            }
        }
        ASSERT_EQ(flat.size(), ref.size());
        auto refIt = ref.begin();
        for (const auto &[id, value] : flat) {
            ASSERT_NE(refIt, ref.end());
            EXPECT_EQ(id, refIt->first);
            EXPECT_EQ(value, refIt->second);
            ++refIt;
        }
        EXPECT_EQ(refIt, ref.end());
    }
}

/**
 * The byte-identity claim of the std::map -> SmallIdMap conversion:
 * folding (key, value) pairs in iteration order produces the same
 * fingerprint from either container, so every stats dump or selfcheck
 * hash built by walking one is reproduced exactly by the other.
 */
TEST(SmallIdMapTest, FingerprintOfIterationOrderMatchesStdMap)
{
    Rng rng(0x5eedull);
    SmallIdMap<VcId, std::uint64_t> flat;
    std::map<VcId, std::uint64_t> tree;
    for (int i = 0; i < 1000; i++) {
        auto id = static_cast<VcId>(rng.below(64)) - 1;
        std::uint64_t v = rng.next();
        flat[id] = v;
        tree[id] = v;
        if (rng.bernoulli(0.2)) {
            auto victim = static_cast<VcId>(rng.below(64)) - 1;
            flat.erase(victim);
            tree.erase(victim);
        }
    }

    Fingerprint fromFlat, fromTree;
    for (const auto &[id, v] : flat) {
        fromFlat.addI64(id);
        fromFlat.addU64(v);
    }
    for (const auto &[id, v] : tree) {
        fromTree.addI64(id);
        fromTree.addU64(v);
    }
    EXPECT_EQ(fromFlat.value(), fromTree.value());
    EXPECT_EQ(flat.size(), tree.size());
}

TEST(FlatMapTest, InsertEraseOverwriteLookup)
{
    FlatMap<BankId, std::uint32_t> m;
    EXPECT_TRUE(m.empty());
    m[7] = 1;
    m[-1] = 2; // sentinel keys are ordinary keys here
    m[3] = 3;
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(*m.lookup(7), 1u);
    EXPECT_EQ(m.lookup(4), nullptr);
    EXPECT_EQ(m.count(3), 1u);

    m[7] = 9;
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(*m.lookup(7), 9u);

    EXPECT_EQ(m.erase(3), 1u);
    EXPECT_EQ(m.erase(3), 0u);
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(m.find(3), m.end());
    EXPECT_NE(m.find(7), m.end());
}

TEST(FlatMapTest, OrderedIterationAndMutationMatchStdMap)
{
    Rng rng(0xbeefull);
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::map<std::uint64_t, std::uint64_t> ref;
    for (int op = 0; op < 500; op++) {
        std::uint64_t key = rng.below(1u << 20); // sparse key space
        if (rng.bernoulli(0.3)) {
            EXPECT_EQ(flat.erase(key), ref.erase(key));
        } else {
            flat[key] += op;
            ref[key] += op;
        }
    }
    // Mutation through iteration references, as the descriptor
    // stabilizer does with its quota map.
    for (auto &[key, value] : flat) {
        (void)key;
        value += 7;
    }
    for (auto &[key, value] : ref) {
        (void)key;
        value += 7;
    }
    ASSERT_EQ(flat.size(), ref.size());
    auto refIt = ref.begin();
    for (const auto &[key, value] : flat) {
        EXPECT_EQ(key, refIt->first);
        EXPECT_EQ(value, refIt->second);
        ++refIt;
    }
}

} // namespace
} // namespace jumanji
