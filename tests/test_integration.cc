/**
 * @file
 * Integration tests: cross-module behaviours that the paper's
 * results rest on, each checked end-to-end on a (small) simulated
 * system. These are slower than unit tests but still finish in
 * seconds.
 */

#include <gtest/gtest.h>

#include "src/cpu/core_model.hh"
#include "src/security/attacks.hh"
#include "src/system/harness.hh"

namespace jumanji {
namespace {

SystemConfig
itConfig(std::uint64_t seed = 11)
{
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.llc.setsPerBank = 32;
    cfg.capacityScale = 0.0625;
    cfg.epochTicks = 100000;
    cfg.warmupTicks = 600000;
    cfg.measureTicks = 1000000;
    cfg.seed = seed;
    return cfg;
}

double
soloTail(LlcDesign design, std::uint64_t lines, const SystemConfig &base)
{
    SystemConfig cfg = base;
    cfg.design = design;
    cfg.load = LoadLevel::High;
    cfg.fixedLcTargetLines = lines;
    WorkloadMix solo;
    VmSpec vm;
    vm.lcApps.push_back("xapian");
    solo.vms.push_back(vm);
    LcCalibrationMap calib;
    calib["xapian"] = LcCalibration{12000.0, 0.0};
    System system(cfg, solo, calib);
    RunResult run = system.run();
    for (const auto &app : run.apps)
        if (app.latencyCritical) return app.tailLatency;
    return 0.0;
}

/** Fig. 8's core claim: at equal (modest) allocation, nearby D-NUCA
 *  placement yields a lower tail than striped S-NUCA. */
TEST(Integration, DnucaBeatsSnucaAtEqualAllocation)
{
    SystemConfig cfg = itConfig();
    std::uint64_t lines = cfg.placementGeometry().totalLines() / 10;
    double snuca = soloTail(LlcDesign::Adaptive, lines, cfg);
    double dnuca = soloTail(LlcDesign::Jumanji, lines, cfg);
    EXPECT_LT(dnuca, snuca);
}

/** More capacity never makes the solo tail dramatically worse. */
TEST(Integration, TailMonotoneInAllocation)
{
    SystemConfig cfg = itConfig();
    std::uint64_t total = cfg.placementGeometry().totalLines();
    double small = soloTail(LlcDesign::Jumanji, total / 20, cfg);
    double large = soloTail(LlcDesign::Jumanji, total / 4, cfg);
    EXPECT_LT(large, small * 1.3);
}

/** Jigsaw starves an idle LC app: at low load its allocation is a
 *  small fraction of what tail-aware designs reserve. */
TEST(Integration, JigsawStarvesIdleLatencyCritical)
{
    SystemConfig cfg = itConfig();
    cfg.load = LoadLevel::Low;
    Rng rng(3);
    WorkloadMix mix = makeMix({"xapian"}, 4, 4, rng);

    auto lcAllocUnder = [&](LlcDesign d) {
        SystemConfig c = cfg;
        c.design = d;
        System system(c, mix);
        system.run();
        const auto &last = system.allocationTimeline().back();
        std::uint64_t lc = 0;
        for (const auto &[vc, lines] : last.allocLines)
            if (vc % 5 == 0) lc += lines;
        return lc;
    };

    std::uint64_t jigsaw = lcAllocUnder(LlcDesign::Jigsaw);
    std::uint64_t jumanji = lcAllocUnder(LlcDesign::Jumanji);
    EXPECT_LT(jigsaw, jumanji / 2)
        << "Jigsaw should give idle LC apps far less than Jumanji";
}

/** Jumanji's bank isolation is airtight across the whole run, for
 *  every seed tried (TEST_P over seeds below stresses this more). */
TEST(Integration, JumanjiIsolationHoldsUnderReconfiguration)
{
    SystemConfig cfg = itConfig();
    cfg.design = LlcDesign::Jumanji;
    Rng rng(17);
    WorkloadMix mix = makeMix(allTailAppNames(), 4, 4, rng);
    System system(cfg, mix);
    RunResult run = system.run();
    EXPECT_DOUBLE_EQ(run.attackersPerAccess, 0.0);
    // Also true per-epoch, not just on average.
    for (double v : system.vulnerabilityTimeline())
        EXPECT_DOUBLE_EQ(v, 0.0);
}

/** The D-NUCAs cut average hop distance dramatically vs S-NUCA. */
TEST(Integration, DnucaReducesNocHops)
{
    SystemConfig cfg = itConfig();
    Rng rng(5);
    WorkloadMix mix = makeMix({"silo"}, 4, 4, rng);

    auto hopsUnder = [&](LlcDesign d) {
        SystemConfig c = cfg;
        c.design = d;
        System system(c, mix);
        RunResult run = system.run();
        double hops = 0.0;
        std::uint64_t accesses = 0;
        for (const auto &app : run.apps) {
            hops += static_cast<double>(app.counters.nocHops);
            accesses += app.counters.llcHits + app.counters.llcMisses;
        }
        return hops / (2.0 * static_cast<double>(accesses));
    };

    double snuca = hopsUnder(LlcDesign::Static);
    double dnuca = hopsUnder(LlcDesign::Jumanji);
    EXPECT_GT(snuca, 2.0);
    EXPECT_LT(dnuca, snuca / 2.0);
}

/** Data-movement energy: D-NUCA total below S-NUCA total. */
TEST(Integration, DnucaReducesDataMovementEnergy)
{
    // The energy claim is about the paper-proportioned geometry;
    // the extra-tiny itConfig over-penalizes partitioning, so this
    // test runs at bench scale with shortened windows.
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.seed = 11;
    Rng rng(7);
    // Mixed LC apps: single-app selections (especially silo, whose
    // tiny requests magnify LC memory traffic) are noisier.
    WorkloadMix mix = makeMix(allTailAppNames(), 4, 4, rng);

    struct Point
    {
        EnergyBreakdown energy;
        EnergyBreakdown batchEnergy;
        double instrs;
        double batchInstrs;
    };
    auto energyUnder = [&](LlcDesign d) {
        SystemConfig c = cfg;
        c.design = d;
        System system(c, mix);
        RunResult run = system.run();
        Point p;
        p.energy = run.energy;
        for (const auto &app : run.apps) {
            p.instrs += static_cast<double>(app.progress.instrs);
            if (!app.latencyCritical) {
                p.batchEnergy += dataMovementEnergy(app.counters);
                p.batchInstrs +=
                    static_cast<double>(app.progress.instrs);
            }
        }
        return p;
    };
    // Energy must be compared at equal *work* (pJ per instruction),
    // not per wall-clock window: faster designs execute more.
    Point snuca = energyUnder(LlcDesign::Static);
    Point dnuca = energyUnder(LlcDesign::Jumanji);
    // The robust claims: placement slashes NoC energy (Fig. 15's
    // dominant D-NUCA effect)...
    EXPECT_LT(dnuca.energy.noc / dnuca.instrs,
              0.6 * snuca.energy.noc / snuca.instrs);
    // ...and whole-system energy stays within ~20% of Static.
    // (The paper's -13% total does not fully transfer: our scaled
    // LC apps are more memory-intensive than TailBench's, and small
    // per-app partitions lose some capacity to per-set skew at the
    // scaled geometry; see EXPERIMENTS.md. The NoC reduction above
    // is the robust D-NUCA signature.)
    EXPECT_LT(dnuca.energy.total() / dnuca.instrs,
              snuca.energy.total() / snuca.instrs * 1.20);
}

/** Port attack end-to-end: flooding victim raises attacker latency
 *  only while it shares the bank. */
TEST(Integration, PortContentionObservableAtSharedBank)
{
    LlcParams llc;
    llc.banks = 4;
    llc.setsPerBank = 32;
    llc.ways = 8;
    llc.timing.portOccupancy = 3;
    MeshParams mesh;
    mesh.cols = 2;
    mesh.rows = 2;
    MemPath path(llc, mesh, MemoryParams{}, UmonParams{}, 1);

    PlacementDescriptor striped;
    striped.fillStriped({0, 1, 2, 3});
    path.registerVc(0);
    path.installPlacement(0, striped);
    path.registerVc(1);
    path.installPlacement(1, striped);

    PortAttackerApp attacker(
        linesTargetingBank(appAddressBase(0), 2, 4, 16), 50);
    AccessOwner ao;
    ao.vc = 0;
    ao.app = 0;
    ao.vm = 0;
    CoreModel attackerCore(0, ao, &attacker, &path, Rng(1));

    std::vector<std::vector<LineAddr>> perBank;
    for (BankId b = 0; b < 4; b++)
        perBank.push_back(
            linesTargetingBank(appAddressBase(1), b, 4, 16));
    RotatingVictimApp victim(std::move(perBank), 20000, 5000);
    AccessOwner vo;
    vo.vc = 1;
    vo.app = 1;
    vo.vm = 1;
    CoreModel victimCore(3, vo, &victim, &path, Rng(2));

    EventQueue queue;
    queue.schedule(&attackerCore, 0);
    queue.schedule(&victimCore, 0);
    queue.runUntil(2 * 4 * 25000);

    double floor = 1e30, peak = 0.0;
    for (const auto &s : attacker.trace()) {
        if (s.when < 3000) continue;
        floor = std::min(floor, s.cyclesPerAccess);
        peak = std::max(peak, s.cyclesPerAccess);
    }
    EXPECT_GT(peak, floor + 0.2)
        << "victim flooding must be observable through port queueing";
}

/** The coherence walk makes reconfiguration visible but small once
 *  the runtime stabilizes placements. */
TEST(Integration, ReconfigurationChurnBounded)
{
    SystemConfig cfg = itConfig();
    cfg.design = LlcDesign::Jumanji;
    Rng rng(13);
    WorkloadMix mix = makeMix({"masstree"}, 4, 4, rng);
    System system(cfg, mix);
    RunResult run = system.run();
    std::uint64_t totalLines = cfg.placementGeometry().totalLines();
    double perEpoch = static_cast<double>(run.coherenceInvalidations) /
                      static_cast<double>(run.reconfigurations);
    EXPECT_LT(perEpoch, 0.5 * static_cast<double>(totalLines))
        << "descriptor stabilization should keep churn well below "
           "half the LLC per epoch";
}

/** Identical arrival streams across designs: the paired-comparison
 *  property the harness depends on. */
TEST(Integration, ArrivalsIdenticalAcrossDesigns)
{
    SystemConfig cfg = itConfig();
    Rng rngA(21), rngB(21);
    WorkloadMix mixA = makeMix({"silo"}, 4, 4, rngA);
    WorkloadMix mixB = makeMix({"silo"}, 4, 4, rngB);

    SystemConfig a = cfg;
    a.design = LlcDesign::Static;
    System sysA(a, mixA);
    sysA.run();

    SystemConfig b = cfg;
    b.design = LlcDesign::Jumanji;
    System sysB(b, mixB);
    sysB.run();

    auto tailsA = sysA.tailApps();
    auto tailsB = sysB.tailApps();
    ASSERT_EQ(tailsA.size(), tailsB.size());
    for (std::size_t i = 0; i < tailsA.size(); i++) {
        // requestsArrived counts *drained* arrivals; a slower design
        // drains a few arrivals later, so allow a small lag.
        double a = static_cast<double>(tailsA[i]->requestsArrived());
        double b = static_cast<double>(tailsB[i]->requestsArrived());
        EXPECT_NEAR(a, b, 0.05 * std::max(a, b));
    }
}

/** Ideal Batch really is a (near-)upper bound for Jumanji's batch. */
TEST(Integration, IdealBatchBoundsJumanji)
{
    ExperimentHarness harness(itConfig());
    Rng rng(29);
    WorkloadMix mix = makeMix({"silo"}, 4, 4, rng);
    MixResult result = harness.runMix(
        mix, {LlcDesign::Jumanji, LlcDesign::JumanjiIdealBatch},
        LoadLevel::High);
    double jumanji = result.of(LlcDesign::Jumanji).batchSpeedup;
    double ideal = result.of(LlcDesign::JumanjiIdealBatch).batchSpeedup;
    // Allow small inversion from measurement noise.
    EXPECT_GT(ideal, jumanji - 0.06);
}

} // namespace
} // namespace jumanji
