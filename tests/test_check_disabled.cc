// Pins the contract macros OFF for this TU (see check_test_helpers.hh).
#define JUMANJI_DISABLE_CHECKS 1

#include "src/sim/check.hh"

#include "tests/check_test_helpers.hh"

static_assert(JUMANJI_CHECKS_ACTIVE == 0,
              "JUMANJI_DISABLE_CHECKS must win over everything");

namespace jumanji::checktest {

void
disabledAssert(int *evalCount)
{
    // False if it were ever evaluated; disabled macros must neither
    // evaluate (evalCount stays put) nor enforce (no throw).
    JUMANJI_ASSERT(++(*evalCount) < 0, "must never fire");
}

void
disabledInvariant(int *evalCount)
{
    JUMANJI_INVARIANT(++(*evalCount) < 0, "must never fire");
}

} // namespace jumanji::checktest
