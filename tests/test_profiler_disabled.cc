// Pins the profiling macro OFF for this TU (see
// profiler_test_helpers.hh). With JUMANJI_DISABLE_PROFILING defined
// before the include, JUMANJI_PROF_SCOPE must expand to a plain
// no-op statement: no statics, no clock reads, nothing recorded even
// while the runtime flag is on.
#define JUMANJI_DISABLE_PROFILING 1

#include "src/sim/profiler.hh"

#include "tests/profiler_test_helpers.hh"

namespace jumanji {
namespace proftest {

int
disabledSiteRuns()
{
    JUMANJI_PROF_SCOPE("proftest.disabled.site");
    return 42;
}

} // namespace proftest
} // namespace jumanji
