/**
 * @file
 * Driver subsystem tests: the queue/pool plumbing, the cache blob
 * codecs, and the three orchestration guarantees — (1) parallel
 * output is byte-identical to serial whatever the worker count,
 * (2) the result cache hits on unchanged inputs and misses on any
 * config edit, (3) a job that throws fatal() fails alone.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/driver/job.hh"
#include "src/driver/mpmc_queue.hh"
#include "src/driver/orchestrator.hh"
#include "src/driver/pool.hh"
#include "src/driver/result_cache.hh"
#include "src/driver/telemetry.hh"
#include "src/sim/json.hh"
#include "src/system/harness.hh"

namespace jumanji {
namespace {

using driver::CalibrationJob;
using driver::JobGraph;
using driver::JobOutcome;
using driver::Orchestrator;
using driver::ResultCache;
using driver::SweepJob;

SystemConfig
tinyConfig(std::uint64_t seed)
{
    // Paper topology, small banks + short windows (the test_system /
    // test_determinism idiom): fast, but still the real machine.
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.llc.setsPerBank = 32;
    cfg.capacityScale = 0.0625;
    cfg.epochTicks = 50000;
    cfg.warmupTicks = 100000;
    cfg.measureTicks = 200000;
    cfg.seed = seed;
    return cfg;
}

/** Fixed dummy calibration: jobs become one run per design, fast. */
LcCalibrationMap
dummyCalibrations(const WorkloadMix &mix)
{
    LcCalibrationMap calibrations;
    for (const auto &vm : mix.vms)
        for (const auto &name : vm.lcApps)
            calibrations[name] = LcCalibration{120.0, 900.0};
    return calibrations;
}

/** An 8-job graph over distinct seeds/mixes; pre-calibrated. */
JobGraph
eightJobGraph()
{
    JobGraph graph;
    for (std::uint32_t m = 0; m < 8; m++) {
        SweepJob job;
        job.label = "job" + std::to_string(m);
        job.config = tinyConfig(100 + m * 1000003ull);
        Rng rng(job.config.seed ^ 0x5eedull);
        job.mix = makeMix({"xapian", "silo"}, 2, 2, rng);
        job.designs = {LlcDesign::Adaptive};
        job.load = LoadLevel::High;
        job.selfCalibrate = false;
        job.calibrations = dummyCalibrations(job.mix);
        graph.add(std::move(job));
    }
    return graph;
}

std::vector<MixResult>
resultsOf(const std::vector<JobOutcome> &outcomes)
{
    std::vector<MixResult> results;
    for (const JobOutcome &out : outcomes) {
        EXPECT_TRUE(out.ok) << out.error;
        results.push_back(out.result);
    }
    return results;
}

TEST(MpmcQueue, DeliversInFifoOrderAndDrainsAfterClose)
{
    driver::MpmcQueue<int> q;
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.peakDepth(), 3u);
    q.close();
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(Pool, RunsEveryTaskExactlyOnceAcrossWorkers)
{
    driver::Pool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::atomic<int> ran{0};
    std::vector<std::uint32_t> seenWorker(64, 99);
    for (int i = 0; i < 64; i++)
        pool.submit([&ran, &seenWorker, i](driver::WorkerId w) {
            seenWorker[i] = w;
            ran.fetch_add(1);
        });
    pool.drain();
    EXPECT_EQ(ran.load(), 64);
    for (std::uint32_t w : seenWorker) EXPECT_LT(w, 4u);
}

TEST(Pool, WorkersActuallyRunConcurrently)
{
    // Rendezvous proof: four tasks each block until all four are
    // inside a task simultaneously. A pool that secretly serialized
    // tasks (the bug this guards against) could never reach four and
    // would hang — which the 10 s escape hatch turns into a failure.
    // This holds on any machine, including single-CPU CI runners:
    // concurrency is about overlapping lifetimes, not parallel
    // speedup.
    driver::Pool pool(4);
    std::mutex m;
    std::condition_variable all;
    int inside = 0;
    bool reached = true;
    for (int i = 0; i < 4; i++)
        pool.submit([&](driver::WorkerId) {
            std::unique_lock<std::mutex> lock(m);
            inside++;
            all.notify_all();
            if (!all.wait_for(lock, std::chrono::seconds(10),
                              [&] { return inside == 4; }))
                reached = false;
        });
    pool.drain();
    EXPECT_TRUE(reached);
    EXPECT_EQ(inside, 4);
}

TEST(ResultCacheBlob, MixResultSurvivesARoundTrip)
{
    SweepJob job;
    job.config = tinyConfig(7);
    Rng rng(7);
    job.mix = makeMix({"xapian"}, 2, 2, rng);
    MixResult original = ExperimentHarness::runCalibrated(
        job.config, job.mix, {LlcDesign::Adaptive}, LoadLevel::High,
        dummyCalibrations(job.mix));

    std::string blob = driver::serializeMixResult(original);
    auto restored = driver::deserializeMixResult(blob);
    ASSERT_TRUE(restored.has_value());

    Fingerprint a;
    Fingerprint b;
    fingerprintMix(a, original);
    fingerprintMix(b, *restored);
    EXPECT_EQ(a.value(), b.value());
}

TEST(ResultCacheBlob, CorruptionReadsAsMissNeverAsError)
{
    SweepJob job;
    job.config = tinyConfig(7);
    Rng rng(7);
    job.mix = makeMix({"xapian"}, 1, 1, rng);
    MixResult original = ExperimentHarness::runCalibrated(
        job.config, job.mix, {}, LoadLevel::High,
        dummyCalibrations(job.mix));
    std::string blob = driver::serializeMixResult(original);

    EXPECT_FALSE(driver::deserializeMixResult("").has_value());
    EXPECT_FALSE(driver::deserializeMixResult("garbage").has_value());
    // Truncation at any point must fail cleanly, not crash.
    for (std::size_t cut : {std::size_t(3), blob.size() / 2,
                            blob.size() - 1})
        EXPECT_FALSE(driver::deserializeMixResult(blob.substr(0, cut))
                         .has_value());
    // Trailing junk is also rejected: the blob must parse exactly.
    EXPECT_FALSE(driver::deserializeMixResult(blob + "x").has_value());
}

TEST(ResultCacheKey, ConfigEditsChangeTheKey)
{
    JobGraph graph = eightJobGraph();
    const SweepJob &base = graph.job(0);
    std::string key = driver::jobKey(base);
    EXPECT_EQ(key.size(), 16u);
    EXPECT_EQ(key, driver::jobKey(base)) << "key must be stable";

    SweepJob edited = base;
    edited.config.seed += 1;
    EXPECT_NE(driver::jobKey(edited), key);

    edited = base;
    edited.config.llc.ways += 1;
    EXPECT_NE(driver::jobKey(edited), key);

    edited = base;
    edited.config.controller.panicFrac += 0.01;
    EXPECT_NE(driver::jobKey(edited), key);

    edited = base;
    edited.designs.push_back(LlcDesign::Jumanji);
    EXPECT_NE(driver::jobKey(edited), key);

    edited = base;
    edited.calibrations.begin()->second.deadline += 1.0;
    EXPECT_NE(driver::jobKey(edited), key)
        << "pre-calibrated jobs must key on calibration values";

    // The label is presentation, not an input.
    edited = base;
    edited.label = "renamed";
    EXPECT_EQ(driver::jobKey(edited), key);
}

TEST(Orchestrator, EightJobsAreByteIdenticalAcrossWorkerCounts)
{
    Orchestrator::Options serialOpts;
    serialOpts.jobs = 1;
    Orchestrator serial(serialOpts);
    std::vector<MixResult> serialResults =
        resultsOf(serial.run(eightJobGraph()));

    Orchestrator::Options parallelOpts;
    parallelOpts.jobs = 4;
    Orchestrator parallel(parallelOpts);
    std::vector<MixResult> parallelResults =
        resultsOf(parallel.run(eightJobGraph()));

    // The full fingerprint folds every app counter, every registry
    // leaf, and the epoch timeline of every run: equality here is
    // byte-identity of the whole observable surface.
    EXPECT_EQ(fingerprintResults(serialResults),
              fingerprintResults(parallelResults));

    // And the merged stat dumps match leaf for leaf, in order.
    ASSERT_EQ(serialResults.size(), parallelResults.size());
    for (std::size_t m = 0; m < serialResults.size(); m++) {
        const auto &a = serialResults[m].designs;
        const auto &b = parallelResults[m].designs;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t d = 0; d < a.size(); d++) {
            ASSERT_EQ(a[d].run.statDump.size(),
                      b[d].run.statDump.size());
            for (std::size_t s = 0; s < a[d].run.statDump.size(); s++) {
                EXPECT_EQ(a[d].run.statDump[s].name,
                          b[d].run.statDump[s].name);
                EXPECT_EQ(a[d].run.statDump[s].value,
                          b[d].run.statDump[s].value);
            }
        }
    }

    EXPECT_EQ(serial.stats().value("driver.jobs.simulated"), 8.0);
    EXPECT_EQ(parallel.stats().value("driver.jobs.simulated"), 8.0);
    EXPECT_EQ(parallel.stats().value("driver.workers"), 4.0);
    double perWorker = 0.0;
    for (int w = 0; w < 4; w++)
        perWorker += parallel.stats().value(
            "driver.worker" + statIndexName(w) + ".jobs");
    EXPECT_EQ(perWorker, 8.0);
}

TEST(Orchestrator, ParallelSweepMatchesSerialSweepExactly)
{
    const std::vector<std::string> lcNames = {"xapian", "silo"};
    const std::vector<LlcDesign> designs = {LlcDesign::Adaptive};

    ExperimentHarness serialHarness(tinyConfig(42));
    std::vector<MixResult> serialResults =
        serialHarness.sweep(lcNames, 3, designs, LoadLevel::High);

    ExperimentHarness parallelHarness(tinyConfig(42));
    Orchestrator::Options opts;
    opts.jobs = 4;
    Orchestrator orch(opts);
    std::vector<MixResult> parallelResults = driver::parallelSweep(
        parallelHarness, lcNames, 3, designs, LoadLevel::High, orch);

    EXPECT_EQ(fingerprintResults(serialResults),
              fingerprintResults(parallelResults));

    // The parallel path must also leave the harness in the same
    // state a serial sweep would: calibrations installed for reuse.
    for (const auto &name : lcNames) {
        EXPECT_TRUE(parallelHarness.hasCalibration(name));
        EXPECT_EQ(
            parallelHarness.calibrationFor(name).deadline,
            serialHarness.calibrationFor(name).deadline);
    }
}

TEST(Orchestrator, CacheHitsOnSecondRunAndMissesAfterConfigEdit)
{
    std::string dir = testing::TempDir() + "jumanji_cache_test";
    std::filesystem::remove_all(dir);

    Orchestrator::Options opts;
    opts.jobs = 2;
    opts.cacheDir = dir;
    opts.summaryPath = dir + "/summary.txt";

    std::uint64_t coldFp = 0;
    {
        Orchestrator cold(opts);
        std::vector<JobOutcome> outcomes = cold.run(eightJobGraph());
        for (const JobOutcome &out : outcomes)
            EXPECT_FALSE(out.fromCache);
        coldFp = fingerprintResults(resultsOf(outcomes));
        EXPECT_EQ(cold.stats().value("driver.jobs.simulated"), 8.0);
        EXPECT_EQ(cold.stats().value("driver.jobs.cached"), 0.0);
    }
    {
        Orchestrator warm(opts);
        std::vector<JobOutcome> outcomes = warm.run(eightJobGraph());
        for (const JobOutcome &out : outcomes)
            EXPECT_TRUE(out.fromCache);
        EXPECT_EQ(fingerprintResults(resultsOf(outcomes)), coldFp)
            << "cached results must be byte-identical to simulated";
        EXPECT_EQ(warm.stats().value("driver.jobs.simulated"), 0.0);
        EXPECT_EQ(warm.stats().value("driver.jobs.cached"), 8.0);
    }
    {
        // Any config edit changes the key: everything re-simulates.
        JobGraph edited;
        JobGraph source = eightJobGraph();
        for (const SweepJob &job : source.jobs()) {
            SweepJob copy = job;
            copy.config.epochTicks += 1000;
            edited.add(std::move(copy));
        }
        Orchestrator invalidated(opts);
        std::vector<JobOutcome> outcomes = invalidated.run(edited);
        for (const JobOutcome &out : outcomes) {
            EXPECT_TRUE(out.ok) << out.error;
            EXPECT_FALSE(out.fromCache);
        }
        EXPECT_EQ(
            invalidated.stats().value("driver.jobs.simulated"), 8.0);
    }

    // The summary file recorded all three phases, in order. The
    // counters are exact; the trailing wall= field is host time, so
    // only its presence is checked.
    const auto expectSummary = [](const std::string &line,
                                  const std::string &prefix) {
        EXPECT_EQ(line.substr(0, prefix.size()), prefix) << line;
        EXPECT_NE(line.find(" wall="), std::string::npos) << line;
    };
    std::ifstream summary(opts.summaryPath);
    ASSERT_TRUE(summary.good());
    std::string line;
    std::getline(summary, line);
    expectSummary(line, "jobs=8 simulated=8 cached=0 failed=0 "
                        "workers=2 hitrate=0.00 wall=");
    std::getline(summary, line);
    expectSummary(line, "jobs=8 simulated=0 cached=8 failed=0 "
                        "workers=2 hitrate=1.00 wall=");
    std::getline(summary, line);
    expectSummary(line, "jobs=8 simulated=8 cached=0 failed=0 "
                        "workers=2 hitrate=0.00 wall=");

    std::filesystem::remove_all(dir);
}

TEST(Orchestrator, CalibrationsAreCachedAcrossInstances)
{
    std::string dir = testing::TempDir() + "jumanji_calib_cache_test";
    std::filesystem::remove_all(dir);

    Orchestrator::Options opts;
    opts.jobs = 2;
    opts.cacheDir = dir;

    std::vector<CalibrationJob> requests = {
        {"xapian", tinyConfig(42)}, {"silo", tinyConfig(42)}};

    Orchestrator cold(opts);
    std::vector<LcCalibration> first = cold.runCalibrations(requests);
    EXPECT_EQ(cold.stats().value("driver.calibrations.computed"), 2.0);

    Orchestrator warm(opts);
    std::vector<LcCalibration> second = warm.runCalibrations(requests);
    EXPECT_EQ(warm.stats().value("driver.calibrations.computed"), 0.0);
    EXPECT_EQ(warm.stats().value("driver.calibrations.cached"), 2.0);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); i++) {
        EXPECT_EQ(first[i].serviceCycles, second[i].serviceCycles);
        EXPECT_EQ(first[i].deadline, second[i].deadline);
    }

    std::filesystem::remove_all(dir);
}

TEST(Orchestrator, FatalInOneJobFailsOnlyThatJob)
{
    JobGraph graph = eightJobGraph();
    // Job 3's mix names an app that does not exist: its System
    // construction throws FatalError on a worker thread.
    {
        SweepJob poison = graph.job(3);
        poison.mix.vms[0].lcApps[0] = "no-such-app";
        poison.calibrations = dummyCalibrations(poison.mix);
        JobGraph rebuilt;
        for (driver::JobId id = 0; id < graph.size(); id++)
            rebuilt.add(id == 3 ? poison : graph.job(id));
        graph = std::move(rebuilt);
    }

    Orchestrator::Options opts;
    opts.jobs = 4;
    Orchestrator orch(opts);
    std::vector<JobOutcome> outcomes = orch.run(graph);
    ASSERT_EQ(outcomes.size(), 8u);
    for (driver::JobId id = 0; id < outcomes.size(); id++) {
        if (id == 3) {
            EXPECT_FALSE(outcomes[id].ok);
            EXPECT_NE(outcomes[id].error.find("no-such-app"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(outcomes[id].ok) << outcomes[id].error;
        }
    }
    EXPECT_EQ(orch.stats().value("driver.jobs.failed"), 1.0);
    EXPECT_EQ(orch.stats().value("driver.jobs.simulated"), 7.0);
}

TEST(Telemetry, OptionsComeFromEnvAndGarbageFallsBackOff)
{
    ::setenv("JUMANJI_EVENTS", "/tmp/jumanji_ev.jsonl", 1);
    ::setenv("JUMANJI_HEARTBEAT_MS", "250", 1);
    driver::TelemetryOptions on = driver::telemetryOptionsFromEnv();
    EXPECT_EQ(on.eventsPath, "/tmp/jumanji_ev.jsonl");
    EXPECT_EQ(on.heartbeatMs, 250u);

    // Garbage and negative periods warn (once) and keep the
    // heartbeat off rather than beating at a nonsense rate.
    ::setenv("JUMANJI_HEARTBEAT_MS", "soon", 1);
    EXPECT_EQ(driver::telemetryOptionsFromEnv().heartbeatMs, 0u);
    ::setenv("JUMANJI_HEARTBEAT_MS", "-5", 1);
    EXPECT_EQ(driver::telemetryOptionsFromEnv().heartbeatMs, 0u);

    ::unsetenv("JUMANJI_EVENTS");
    ::unsetenv("JUMANJI_HEARTBEAT_MS");
    driver::TelemetryOptions off = driver::telemetryOptionsFromEnv();
    EXPECT_TRUE(off.eventsPath.empty());
    EXPECT_EQ(off.heartbeatMs, 0u);
}

/** Parses a JSONL event log into one JsonValue per line. */
std::vector<JsonValue>
readEvents(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << path;
    std::vector<JsonValue> events;
    std::string line;
    while (std::getline(is, line))
        if (!line.empty())
            events.push_back(JsonValue::parse(line, path));
    return events;
}

TEST(Telemetry, EventLogSchemaIsStableAcrossWorkerCounts)
{
    std::string dir = testing::TempDir() + "jumanji_events_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    const auto runWith = [](std::uint32_t workers,
                            const std::string &path) {
        Orchestrator::Options opts;
        opts.jobs = workers;
        opts.telemetry.eventsPath = path;
        Orchestrator orch(opts);
        resultsOf(orch.run(eightJobGraph()));
    };
    runWith(1, dir + "/serial.jsonl");
    runWith(4, dir + "/parallel.jsonl");

    for (std::uint32_t workers : {1u, 4u}) {
        const std::string path =
            dir + (workers == 1 ? "/serial.jsonl" : "/parallel.jsonl");
        const std::vector<JsonValue> events = readEvents(path);
        // 8 job events plus the closing run event, and — because job
        // events are written after the pool drains, in JobId order —
        // the log order is deterministic for any worker count.
        ASSERT_EQ(events.size(), 9u) << path;
        for (driver::JobId id = 0; id < 8; id++) {
            const JsonValue &e = events[id];
            EXPECT_EQ(e.find("type")->asString("type"), "job");
            EXPECT_EQ(e.find("id")->asU64("id"), id);
            EXPECT_EQ(e.find("label")->asString("label"),
                      "job" + std::to_string(id));
            EXPECT_LT(e.find("worker")->asU64("worker"), workers);
            EXPECT_FALSE(e.find("cached")->asBool("cached"));
            EXPECT_TRUE(e.find("ok")->asBool("ok"));
            EXPECT_GE(e.find("queue_wait_s")->asDouble("queue_wait_s"),
                      0.0);
            EXPECT_GE(e.find("probe_s")->asDouble("probe_s"), 0.0);
            EXPECT_GT(e.find("simulate_s")->asDouble("simulate_s"),
                      0.0);
            EXPECT_GT(e.find("accesses")->asU64("accesses"), 0u);
        }
        const JsonValue &run = events[8];
        EXPECT_EQ(run.find("type")->asString("type"), "run");
        EXPECT_EQ(run.find("kind")->asString("kind"), "jobs");
        EXPECT_EQ(run.find("jobs")->asU64("jobs"), 8u);
        EXPECT_EQ(run.find("simulated")->asU64("simulated"), 8u);
        EXPECT_EQ(run.find("cached")->asU64("cached"), 0u);
        EXPECT_EQ(run.find("failed")->asU64("failed"), 0u);
        EXPECT_EQ(run.find("workers")->asU64("workers"), workers);
        EXPECT_GT(run.find("wall_s")->asDouble("wall_s"), 0.0);
        EXPECT_GE(run.find("merge_s")->asDouble("merge_s"), 0.0);
    }

    std::filesystem::remove_all(dir);
}

TEST(Orchestrator, TracedRunMergesJobTracesInSubmissionOrder)
{
    // Two traced parallel runs of the same graph must serialize
    // identical *simulation* lanes; only the driver schedule lane may
    // differ. With jobs=1 the schedule is deterministic too, so the
    // whole byte stream must match.
    auto traceBytes = [](std::uint32_t jobs) {
        Tracer tracer;
        Orchestrator::Options opts;
        opts.jobs = jobs;
        opts.tracer = &tracer;
        Orchestrator orch(opts);
        JobGraph graph;
        for (std::uint32_t m = 0; m < 3; m++) {
            SweepJob job;
            job.label = "job" + std::to_string(m);
            job.config = tinyConfig(500 + m);
            job.config.traceLabel = job.label;
            Rng rng(job.config.seed);
            job.mix = makeMix({"xapian"}, 1, 1, rng);
            job.selfCalibrate = false;
            job.calibrations = dummyCalibrations(job.mix);
            graph.add(std::move(job));
        }
        std::vector<JobOutcome> outcomes = orch.run(graph);
        for (const JobOutcome &out : outcomes)
            EXPECT_TRUE(out.ok) << out.error;
        std::ostringstream os;
        tracer.writeTo(os);
        return os.str();
    };

    std::string serialTrace = traceBytes(1);
    EXPECT_EQ(serialTrace, traceBytes(1));
    EXPECT_GT(serialTrace.size(), 100u);
    EXPECT_NE(serialTrace.find("driver workers"), std::string::npos);
}

} // namespace
} // namespace jumanji
