// Fixture: the second half of the include cycle.
#include "src/sim/cycle_a.hh"

struct CycleB
{
    CycleA *peer;
};
