// Fixture: two headers that include each other form an include
// cycle (same subsystem, so only the cycle check can catch it).
#include "src/sim/cycle_b.hh"

struct CycleA
{
    CycleB *peer;
};
