// Fixture: a cache file reaching up into the driver layer must trip
// layering-dag.
#include "src/driver/runner.hh"

int
cacheThing()
{
    return 1;
}
