// Fixture: including a project header while referencing nothing it
// exports must trip unused-include.
#include "src/sim/cycle_a.hh"

int
nocThing()
{
    return 2;
}
