// Fixture: one used-and-justified waiver (silent), one stale waiver
// and one used-but-unjustified waiver (both audit findings).
int
needsRand()
{
    // lint-allow: no-unseeded-rand fixture exercises the waiver path
    int x = rand();
    // lint-allow: no-float nothing on this line ever fires
    int y = 2;
    // lint-allow: raw-new-delete
    int *p = new int(3);
    int v = x + y + *p;
    delete p; // lint-allow: raw-new-delete fixture frees its leak
    return v;
}
