// Fixture: wall-clock reads are sanctioned outside src/ and bench/
// (tools print timing by design) -- zero findings here.
double
elapsedSeconds()
{
    return static_cast<double>(clock()) / 1000000.0;
}
