// Fixture: a std engine type outside src/sim/rng.hh must trip
// rng-routing.
unsigned
makeEngine(unsigned seed)
{
    std::mt19937 gen(seed);
    return gen();
}
