// Fixture: a node-based map in a per-access subsystem must trip
// hot-path-container (type use and header include).
#include <map>

struct SlowIndex
{
    std::map<int, int> lookup;
};
