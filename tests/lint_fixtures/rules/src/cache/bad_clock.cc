// Fixture: a wall-clock identifier in src/ must trip
// no-unseeded-rand (the clock family shares the rule).
long
ticksNow()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
