// Fixture: a wall-clock identifier in src/ must trip clock-routing —
// host time is reserved to the profiler/telemetry sinks.
long
ticksNow()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
