// Fixture: a bare rand() call must trip no-unseeded-rand.
int
badRandom()
{
    int x = rand();
    return x;
}
