// Fixture: direct stream output in src/ must trip io-routing.
#include <iostream>

void
printIt(int v)
{
    std::cout << v;
}
