// Fixture: the regex-era blind spots. Banned identifiers inside
// string literals, char literals, comments, raw strings, and spliced
// comments must produce ZERO findings in this file.
/* a block comment mentioning rand() and new int and float */
const char *kWords = "rand() srand mt19937 new delete float cout getenv";
const char *kRaw = R"(time(nullptr) steady_clock std::map<int,int>)";
char kQuote = '"';
const char *kAfter = "still a string, not code: random_device mutex";
// a spliced comment hiding rand() \
   rand() is still inside the comment on this continuation line
int kDone = 1;
