// Fixture: raw new and raw delete must both trip raw-new-delete;
// `= delete` and `operator new` must not.
struct NoCopy
{
    NoCopy(const NoCopy &) = delete;
};

int
makeAndFree()
{
    int *p = new int(7);
    int v = *p;
    delete p;
    return v;
}
