// Fixture: the float type and an f-suffixed literal must both trip
// no-float in src/.
double
halfOf(double v)
{
    float scale = 0.5f;
    return v * scale;
}
