// Fixture: a threading primitive outside src/driver/ must trip
// concurrency-routing (type use and header include).
#include <mutex>

struct Guarded
{
    std::mutex lock;
};
