// Fixture: an unordered container declared in a header; the
// iteration happens in another file (cross-file matching).
#include <unordered_map>

struct Table
{
    std::unordered_map<int, int> cells;
};
