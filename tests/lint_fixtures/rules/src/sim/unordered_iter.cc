// Fixture: iterating a container declared unordered elsewhere must
// trip unordered-iter; keyed access does not.
#include "src/sim/unordered_decl.hh"

int
firstCell(Table &t)
{
    auto it = t.cells.begin();
    int keyed = t.cells.count(3);
    return it == t.cells.end() ? keyed : it->second;
}
