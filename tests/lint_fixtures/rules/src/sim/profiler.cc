// Fixture: clock-routing blind spot — this path ends in
// sim/profiler.cc, the sanctioned profiler clock sink, so its
// steady_clock read must NOT be reported.
unsigned long long
sanctionedNowNs()
{
    return static_cast<unsigned long long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}
