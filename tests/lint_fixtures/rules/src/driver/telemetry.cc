// Fixture: routing blind spots — this path ends in
// driver/telemetry.cc, which is both a sanctioned clock sink
// (clock-routing) and a sanctioned io sink (io-routing: the
// heartbeat writes straight to stderr), so neither the system_clock
// read nor the fprintf must be reported.
void
sanctionedHeartbeat()
{
    const long long ns =
        std::chrono::system_clock::now().time_since_epoch().count();
    std::fprintf(stderr, "[fixture] %lld\n", ns);
}
