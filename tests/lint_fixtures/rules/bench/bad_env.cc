// Fixture: a direct getenv in bench/ must trip env-routing.
#include <cstdlib>

int
knob()
{
    const char *v = std::getenv("JUMANJI_FIXTURE");
    return v == nullptr ? 0 : 1;
}
