// Fixture: a direct gettimeofday in bench/ must trip clock-routing —
// benches time themselves through the profiler and bench-json wall
// fields, never with their own clock reads.
long
wallMicros()
{
    struct timeval tv;
    gettimeofday(&tv, nullptr);
    return tv.tv_sec * 1000000L + tv.tv_usec;
}
