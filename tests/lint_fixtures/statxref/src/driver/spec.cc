// Fixture: a miniature of the experiment-spec reader -- just enough
// structure for the ObjectReader schema extraction.
void
parseSpec(const Json &json, Spec &spec)
{
    ObjectReader r(json, "");
    r.get("name");
    r.get("seed");
    r.get("mixes");
    r.get("overrides");
    r.get("output");
    r.get("groups");
    ObjectReader s(json, "seed");
    s.get("base");
    ObjectReader o(json, "output");
    o.get("columns");
}

void
parseColumn(const Json &item, const std::string &path)
{
    ObjectReader c(item, path);
    c.get("key");
    c.get("label");
}

const std::vector<std::string> &
columnKeys()
{
    static const std::vector<std::string> kKeys = {
        "tailMean",
        "tailWorst",
    };
    return kKeys;
}
