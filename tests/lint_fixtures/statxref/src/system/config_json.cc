// Fixture: a miniature of the SystemConfig JSON reader.
void
applyConfigJson(const Json &json, SystemConfig &cfg)
{
    ObjectReader r(json, "");
    r.get("llc");
    r.get("timelineStats");
    setU32(r, "epochTicks", &cfg.epochTicks);
    ObjectReader l(json, "llc");
    setU32(l, "banks", &cfg.llcBanks);
    setU32(l, "ways", &cfg.llcWays);
}
