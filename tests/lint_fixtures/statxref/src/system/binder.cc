// Fixture: stat bindings for the cross-artifact checks. One literal
// name and one concatenated name with a statIndexName() segment.
void
registerStats(StatRegistry &reg, Counters &c, int apps)
{
    reg.addCounter("llc.hits", "demand hits", &c.hits);
    for (int i = 0; i < apps; i++)
        reg.addGauge("apps.a" + statIndexName(i) + ".ipc",
                     "instructions per cycle", makeReader(c, i));
}
