// Fixture: one resolvable and one dangling stat lookup, plus one
// resolvable and one impossible timeline selector.
double
readBack(const StatRegistry &reg)
{
    double ok = reg.value("llc.hits");
    double indexed = reg.value("apps.a03.ipc");
    double bad = reg.value("llc.misses");
    return ok + indexed + bad;
}

void
startTimeline(StatRegistry &reg)
{
    EpochRecorder rec(&reg, {"llc.", "bogus.prefix."});
    rec.record(0);
}
