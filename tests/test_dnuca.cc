/**
 * @file
 * Unit tests for the D-NUCA substrate: miss curves, UMONs, placement
 * descriptors, and the VTB.
 */

#include <gtest/gtest.h>

#include "src/dnuca/miss_curve.hh"
#include "src/dnuca/umon.hh"
#include "src/dnuca/vtb.hh"
#include "src/sim/logging.hh"
#include "src/sim/rng.hh"

namespace jumanji {
namespace {

// ---------------------------------------------------------- MissCurve

TEST(MissCurve, EnforcesMonotonicity)
{
    MissCurve curve({100, 120, 50, 60});
    EXPECT_DOUBLE_EQ(curve.at(0), 100);
    EXPECT_DOUBLE_EQ(curve.at(1), 100); // clamped down
    EXPECT_DOUBLE_EQ(curve.at(2), 50);
    EXPECT_DOUBLE_EQ(curve.at(3), 50);
}

TEST(MissCurve, AtClampsOutOfRange)
{
    MissCurve curve({10, 5, 1});
    EXPECT_DOUBLE_EQ(curve.at(100), 1);
    EXPECT_DOUBLE_EQ(MissCurve().at(3), 0.0);
}

TEST(MissCurve, Interpolation)
{
    MissCurve curve({100, 50, 0});
    EXPECT_DOUBLE_EQ(curve.interpolate(0.5), 75);
    EXPECT_DOUBLE_EQ(curve.interpolate(1.5), 25);
    EXPECT_DOUBLE_EQ(curve.interpolate(-1), 100);
    EXPECT_DOUBLE_EQ(curve.interpolate(9), 0);
}

TEST(MissCurve, ConvexHullRemovesCliff)
{
    // A cliff at 4: flat then a drop. The hull is the straight line.
    MissCurve curve({100, 100, 100, 100, 0});
    MissCurve hull = curve.convexHull();
    EXPECT_DOUBLE_EQ(hull.at(0), 100);
    EXPECT_DOUBLE_EQ(hull.at(2), 50);
    EXPECT_DOUBLE_EQ(hull.at(4), 0);
}

TEST(MissCurve, ConvexHullBelowOriginal)
{
    Rng rng(5);
    std::vector<double> pts(33);
    double v = 10000;
    for (auto &p : pts) {
        p = v;
        v -= static_cast<double>(rng.below(500));
        if (v < 0) v = 0;
    }
    MissCurve curve(pts);
    MissCurve hull = curve.convexHull();
    for (std::size_t k = 0; k <= curve.buckets(); k++) {
        EXPECT_LE(hull.at(k), curve.at(k) + 1e-9);
    }
    // Endpoints coincide.
    EXPECT_DOUBLE_EQ(hull.at(0), curve.at(0));
    EXPECT_DOUBLE_EQ(hull.at(curve.buckets()), curve.at(curve.buckets()));
}

TEST(MissCurve, ConvexHullIsConvex)
{
    MissCurve curve({100, 90, 85, 40, 39, 5, 4, 0});
    MissCurve hull = curve.convexHull();
    for (std::size_t k = 1; k + 1 < hull.points().size(); k++) {
        double left = hull.at(k - 1) - hull.at(k);
        double right = hull.at(k) - hull.at(k + 1);
        EXPECT_GE(left, right - 1e-9) << "non-convex at " << k;
    }
}

TEST(MissCurve, Addition)
{
    MissCurve a({10, 5, 0});
    MissCurve b({4, 4, 4});
    MissCurve sum = a + b;
    EXPECT_DOUBLE_EQ(sum.at(0), 14);
    EXPECT_DOUBLE_EQ(sum.at(2), 4);
}

TEST(MissCurve, CombineOptimalPicksBestSplit)
{
    // A saves 10/bucket for 2 buckets; B saves 1/bucket for 2.
    MissCurve a({20, 10, 0});
    MissCurve b({2, 1, 0});
    MissCurve combined = MissCurve::combineOptimal({a, b});
    EXPECT_DOUBLE_EQ(combined.at(0), 22);
    // First two buckets go to A.
    EXPECT_DOUBLE_EQ(combined.at(1), 12);
    EXPECT_DOUBLE_EQ(combined.at(2), 2);
    // Then B's buckets.
    EXPECT_DOUBLE_EQ(combined.at(4), 0);
    EXPECT_EQ(combined.buckets(), 4u);
}

TEST(MissCurve, CombineOptimalOfNothing)
{
    EXPECT_TRUE(MissCurve::combineOptimal({}).empty());
}

TEST(MissCurve, FlatAndScaled)
{
    MissCurve flat = MissCurve::flat(4, 7.0);
    EXPECT_DOUBLE_EQ(flat.at(0), 7.0);
    EXPECT_DOUBLE_EQ(flat.at(4), 7.0);
    MissCurve scaled = flat.scaled(2.0);
    EXPECT_DOUBLE_EQ(scaled.at(2), 14.0);
}

// --------------------------------------------------------------- Umon

UmonParams
smallUmon()
{
    UmonParams p;
    p.sets = 16;
    p.ways = 16;
    p.modelledLines = 16 * 16; // sample rate 1: monitor everything
    return p;
}

TEST(Umon, CountsAccesses)
{
    Umon umon(smallUmon());
    for (LineAddr l = 0; l < 100; l++) umon.access(l);
    EXPECT_EQ(umon.accesses(), 100u);
}

TEST(Umon, ColdMissesAtFullAllocation)
{
    Umon umon(smallUmon());
    for (LineAddr l = 0; l < 50; l++) umon.access(l);
    MissCurve curve = umon.missCurve();
    // Every access was a cold miss: curve is flat at ~50 everywhere.
    EXPECT_NEAR(curve.at(umon.params().ways), 50, 1e-9);
}

TEST(Umon, HotLineHitsNearTop)
{
    Umon umon(smallUmon());
    // Touch one line repeatedly: hits at MRU position; misses ~1.
    for (int i = 0; i < 100; i++) umon.access(7);
    MissCurve curve = umon.missCurve();
    EXPECT_NEAR(curve.at(1), 1, 1e-9);  // one cold miss with 1 bucket
    EXPECT_NEAR(curve.at(0), 100, 1e-9); // all miss with nothing
}

TEST(Umon, WorkingSetKneeVisible)
{
    // Working set of ~64 lines cycled repeatedly: with enough
    // capacity, only cold misses; with none, all misses.
    Umon umon(smallUmon());
    for (int round = 0; round < 20; round++)
        for (LineAddr l = 0; l < 64; l++) umon.access(l);
    MissCurve curve = umon.missCurve();
    double atZero = curve.at(0);
    double atFull = curve.at(umon.params().ways);
    EXPECT_NEAR(atZero, 20 * 64, 1e-6);
    // Nearly everything hits with full capacity (cold misses only).
    EXPECT_LT(atFull, 0.15 * atZero);
}

TEST(Umon, DecayScalesCounters)
{
    Umon umon(smallUmon());
    for (int i = 0; i < 100; i++) umon.access(3);
    double before = umon.missCurve().at(0);
    umon.decay(0.5);
    double after = umon.missCurve().at(0);
    EXPECT_NEAR(after, before / 2, 1.0);
}

TEST(Umon, ClearResetsCounters)
{
    Umon umon(smallUmon());
    for (LineAddr l = 0; l < 30; l++) umon.access(l);
    umon.clear();
    EXPECT_EQ(umon.accesses(), 0u);
    EXPECT_NEAR(umon.missCurve().at(0), 0, 1e-9);
}

TEST(Umon, SamplingScalesBack)
{
    UmonParams p;
    p.sets = 16;
    p.ways = 16;
    p.modelledLines = 16 * 16 * 8; // sample 1/8 of lines
    Umon umon(p);
    Rng rng(3);
    // Uniform traffic over many lines: scaled miss estimate should
    // approximate the true access count at allocation 0.
    const int n = 20000;
    for (int i = 0; i < n; i++)
        umon.access(rng.below(100000));
    double estimated = umon.missCurve().at(0);
    EXPECT_NEAR(estimated, n, 0.25 * n);
}

// ------------------------------------------------ PlacementDescriptor

TEST(Descriptor, StripedCoversAllBanks)
{
    PlacementDescriptor desc;
    desc.fillStriped({0, 1, 2, 3});
    for (BankId b = 0; b < 4; b++)
        EXPECT_EQ(desc.slotsOn(b), PlacementDescriptor::kSlots / 4);
}

TEST(Descriptor, ProportionalSharesApproximateRatios)
{
    PlacementDescriptor desc;
    desc.fillProportional({{0, 3.0}, {1, 1.0}});
    EXPECT_NEAR(desc.slotsOn(0), 96, 2);
    EXPECT_NEAR(desc.slotsOn(1), 32, 2);
    EXPECT_EQ(desc.slotsOn(0) + desc.slotsOn(1),
              PlacementDescriptor::kSlots);
}

TEST(Descriptor, TinyShareStillReachable)
{
    PlacementDescriptor desc;
    desc.fillProportional({{0, 1000.0}, {1, 0.001}});
    EXPECT_GE(desc.slotsOn(1), 1u);
}

TEST(Descriptor, BankForUsesHash)
{
    PlacementDescriptor desc;
    desc.fillStriped({0, 1, 2, 3});
    // Deterministic.
    for (LineAddr l = 0; l < 50; l++)
        EXPECT_EQ(desc.bankFor(l), desc.bankFor(l));
    // Roughly uniform over banks.
    std::vector<int> counts(4, 0);
    for (LineAddr l = 0; l < 4000; l++) counts[desc.bankFor(l)]++;
    for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Descriptor, OwnedBanksSorted)
{
    PlacementDescriptor desc;
    desc.fillProportional({{7, 1.0}, {2, 1.0}, {11, 1.0}});
    EXPECT_EQ(desc.ownedBanks(), (std::vector<BankId>{2, 7, 11}));
}

TEST(Descriptor, StabilizedKeepsUnchangedSlots)
{
    PlacementDescriptor prev;
    prev.fillProportional({{0, 1.0}, {1, 1.0}});

    // Same share split; stabilization should be a no-op move-wise.
    PlacementDescriptor next;
    next.fillProportional({{1, 1.0}, {0, 1.0}});
    PlacementDescriptor stable = next.stabilizedAgainst(prev);

    std::uint32_t moved = 0;
    for (std::uint32_t s = 0; s < PlacementDescriptor::kSlots; s++)
        if (stable.slot(s) != prev.slot(s)) moved++;
    EXPECT_EQ(moved, 0u);
    EXPECT_EQ(stable.slotsOn(0), next.slotsOn(0));
    EXPECT_EQ(stable.slotsOn(1), next.slotsOn(1));
}

TEST(Descriptor, StabilizedMovesMinimumForSmallChange)
{
    PlacementDescriptor prev;
    prev.fillProportional({{0, 1.0}, {1, 1.0}});

    // Shift ~8 slots of share from bank 1 to bank 0.
    PlacementDescriptor next;
    next.fillProportional({{0, 72.0}, {1, 56.0}});
    PlacementDescriptor stable = next.stabilizedAgainst(prev);

    std::uint32_t moved = 0;
    for (std::uint32_t s = 0; s < PlacementDescriptor::kSlots; s++)
        if (stable.slot(s) != prev.slot(s)) moved++;
    // Exactly the slots whose bank lost quota move.
    EXPECT_EQ(moved, stable.slotsOn(0) - prev.slotsOn(0));
    EXPECT_EQ(stable.slotsOn(0), next.slotsOn(0));
}

TEST(Descriptor, StabilizedPreservesQuotas)
{
    Rng rng(11);
    for (int trial = 0; trial < 20; trial++) {
        PlacementDescriptor prev, next;
        std::vector<std::pair<BankId, double>> a, b;
        for (BankId bank = 0; bank < 6; bank++) {
            a.emplace_back(bank, 1.0 + rng.uniform() * 5);
            b.emplace_back(bank, 1.0 + rng.uniform() * 5);
        }
        prev.fillProportional(a);
        next.fillProportional(b);
        PlacementDescriptor stable = next.stabilizedAgainst(prev);
        for (BankId bank = 0; bank < 6; bank++)
            EXPECT_EQ(stable.slotsOn(bank), next.slotsOn(bank));
    }
}

// ----------------------------------------------------------------- Vtb

TEST(Vtb, InstallAndLookup)
{
    Vtb vtb;
    PlacementDescriptor desc;
    desc.fillStriped({3});
    vtb.install(5, desc);
    EXPECT_TRUE(vtb.has(5));
    EXPECT_FALSE(vtb.has(6));
    EXPECT_EQ(vtb.lookup(5, 1234), 3);
}

TEST(Vtb, UnknownVcPanics)
{
    Vtb vtb;
    EXPECT_THROW(vtb.lookup(9, 0), PanicError);
}

TEST(Vtb, Reinstall)
{
    Vtb vtb;
    PlacementDescriptor a, b;
    a.fillStriped({0});
    b.fillStriped({1});
    vtb.install(1, a);
    vtb.install(1, b);
    EXPECT_EQ(vtb.lookup(1, 55), 1);
    EXPECT_EQ(vtb.size(), 1u);
}

} // namespace
} // namespace jumanji
