// Pins the contract macros ON for this TU (see check_test_helpers.hh).
#define JUMANJI_FORCE_CHECKS 1

#include "src/sim/check.hh"

#include "tests/check_test_helpers.hh"

static_assert(JUMANJI_CHECKS_ACTIVE == 1,
              "JUMANJI_FORCE_CHECKS must win over NDEBUG");

namespace jumanji::checktest {

namespace {

bool
count(bool ok, int *evalCount)
{
    (*evalCount)++;
    return ok;
}

} // namespace

void
forcedAssert(bool ok, int *evalCount)
{
    JUMANJI_ASSERT(count(ok, evalCount), "forced assert message");
}

void
forcedInvariant(bool ok, int *evalCount)
{
    JUMANJI_INVARIANT(count(ok, evalCount), "forced invariant message");
}

void
forcedUnreachable()
{
    JUMANJI_UNREACHABLE("forced unreachable message");
}

} // namespace jumanji::checktest
