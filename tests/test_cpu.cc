/**
 * @file
 * Unit tests for CoreModel and MemPath (the full access path).
 */

#include <gtest/gtest.h>

#include "src/cpu/core_model.hh"
#include "src/cpu/mem_path.hh"
#include "src/sim/logging.hh"

namespace jumanji {
namespace {

LlcParams
tinyLlc()
{
    LlcParams llc;
    llc.banks = 4;
    llc.setsPerBank = 16;
    llc.ways = 4;
    llc.repl = ReplKind::LRU;
    llc.timing.accessLatency = 13;
    llc.timing.portOccupancy = 1;
    return llc;
}

MeshParams
quadMesh()
{
    MeshParams p;
    p.cols = 2;
    p.rows = 2;
    p.routerDelay = 2;
    p.linkDelay = 1;
    return p;
}

UmonParams
tinyUmon()
{
    UmonParams p;
    p.sets = 8;
    p.ways = 8;
    return p;
}

std::unique_ptr<MemPath>
makePath()
{
    auto path = std::make_unique<MemPath>(tinyLlc(), quadMesh(),
                                          MemoryParams{}, tinyUmon(), 1);
    return path;
}

AccessOwner
owner(AppId app, VmId vm = 0)
{
    AccessOwner o;
    o.app = app;
    o.vc = app;
    o.vm = vm;
    return o;
}

void
installStriped(MemPath &path, VcId vc)
{
    PlacementDescriptor desc;
    std::vector<BankId> banks;
    for (std::uint32_t b = 0; b < path.numBanks(); b++)
        banks.push_back(static_cast<BankId>(b));
    desc.fillStriped(banks);
    path.installPlacement(vc, desc);
}

// ------------------------------------------------------------ MemPath

TEST(MemPath, LocalHitLatency)
{
    auto path = makePath();
    path->registerVc(0);
    PlacementDescriptor desc;
    desc.fillStriped({0}); // everything in bank 0
    path->installPlacement(0, desc);

    // First access misses to memory; second hits.
    path->access(0, /*coreTile=*/0, owner(0), 42);
    PathAccessResult hit = path->access(1000, 0, owner(0), 42);
    EXPECT_TRUE(hit.llcHit);
    EXPECT_EQ(hit.hopsToBank, 0u);
    EXPECT_EQ(hit.latency, 13u); // local bank: no NoC
}

TEST(MemPath, RemoteHitAddsNocLatency)
{
    auto path = makePath();
    path->registerVc(0);
    PlacementDescriptor desc;
    desc.fillStriped({3}); // diagonal bank: 2 hops from tile 0
    path->installPlacement(0, desc);

    path->access(0, 0, owner(0), 42);
    PathAccessResult hit = path->access(1000, 0, owner(0), 42);
    EXPECT_TRUE(hit.llcHit);
    EXPECT_EQ(hit.hopsToBank, 2u);
    // 2 hops x 3 cycles x 2 directions + 13-cycle bank.
    EXPECT_EQ(hit.latency, 12u + 13u);
}

TEST(MemPath, MissGoesToMemory)
{
    auto path = makePath();
    path->registerVc(0);
    installStriped(*path, 0);
    PathAccessResult miss = path->access(0, 0, owner(0), 7);
    EXPECT_FALSE(miss.llcHit);
    EXPECT_GE(miss.latency, MemoryParams{}.accessLatency);
    EXPECT_EQ(path->counters().llcMisses, 1u);
    EXPECT_EQ(path->counters().memAccesses, 1u);
}

TEST(MemPath, CountersAccumulate)
{
    auto path = makePath();
    path->registerVc(0);
    installStriped(*path, 0);
    for (LineAddr l = 0; l < 50; l++) path->access(0, 0, owner(0), l);
    for (LineAddr l = 0; l < 50; l++)
        path->access(10000, 0, owner(0), l);
    EXPECT_EQ(path->counters().llcMisses, 50u);
    EXPECT_EQ(path->counters().llcHits, 50u);
}

TEST(MemPath, UmonObservesAccesses)
{
    auto path = makePath();
    path->registerVc(0);
    installStriped(*path, 0);
    for (LineAddr l = 0; l < 100; l++) path->access(0, 0, owner(0), l);
    EXPECT_EQ(path->umon(0).accesses(), 100u);
}

TEST(MemPath, UnregisteredUmonPanics)
{
    auto path = makePath();
    EXPECT_THROW(path->umon(3), PanicError);
}

TEST(MemPath, VulnerabilityMetricCountsOtherVms)
{
    auto path = makePath();
    path->registerVc(0);
    path->registerVc(1);
    installStriped(*path, 0);
    installStriped(*path, 1);

    // VM 0 fills bank state everywhere.
    for (LineAddr l = 0; l < 200; l++)
        path->access(0, 0, owner(0, 0), l);
    path->clearVulnerabilityStats();

    // VM 1's accesses see one untrusted app occupying the banks.
    for (LineAddr l = 1000; l < 1050; l++)
        path->access(10000, 3, owner(1, 1), l);
    EXPECT_GT(path->avgAttackersPerAccess(), 0.9);
}

TEST(MemPath, IsolatedVcsHaveNoAttackers)
{
    auto path = makePath();
    path->registerVc(0);
    path->registerVc(1);
    PlacementDescriptor d0, d1;
    d0.fillStriped({0, 1});
    d1.fillStriped({2, 3});
    path->installPlacement(0, d0);
    path->installPlacement(1, d1);

    for (LineAddr l = 0; l < 100; l++) path->access(0, 0, owner(0, 0), l);
    path->clearVulnerabilityStats();
    for (LineAddr l = 1000; l < 1100; l++)
        path->access(5000, 3, owner(1, 1), l);
    EXPECT_DOUBLE_EQ(path->avgAttackersPerAccess(), 0.0);
}

TEST(MemPath, ReconfigurationInvalidatesMovedLines)
{
    auto path = makePath();
    path->registerVc(0);
    PlacementDescriptor before;
    before.fillStriped({0});
    path->installPlacement(0, before);
    for (LineAddr l = 0; l < 40; l++) path->access(0, 0, owner(0), l);
    std::uint64_t resident = path->bank(0).constArray().occupancyOfVc(0);
    EXPECT_GT(resident, 0u);

    PlacementDescriptor after;
    after.fillStriped({1});
    std::uint64_t invalidated = path->installPlacement(0, after);
    EXPECT_EQ(invalidated, resident);
    EXPECT_EQ(path->bank(0).constArray().occupancyOfVc(0), 0u);
}

TEST(MemPath, IdenticalReinstallInvalidatesNothing)
{
    auto path = makePath();
    path->registerVc(0);
    installStriped(*path, 0);
    for (LineAddr l = 0; l < 40; l++) path->access(0, 0, owner(0), l);
    PlacementDescriptor same;
    std::vector<BankId> banks;
    for (std::uint32_t b = 0; b < path->numBanks(); b++)
        banks.push_back(static_cast<BankId>(b));
    same.fillStriped(banks);
    EXPECT_EQ(path->installPlacement(0, same), 0u);
}

TEST(MemPath, PartialMoveInvalidatesOnlyMovedSlices)
{
    auto path = makePath();
    path->registerVc(0);
    PlacementDescriptor before;
    before.fillStriped({0, 1});
    path->installPlacement(0, before);
    for (LineAddr l = 0; l < 100; l++) path->access(0, 0, owner(0), l);
    std::uint64_t occ0 = path->bank(0).constArray().occupancyOfVc(0);
    std::uint64_t occ1 = path->bank(1).constArray().occupancyOfVc(0);

    // Keep the same slot->bank mapping for bank 0's slices and move
    // bank 1's slices to bank 2.
    PlacementDescriptor after = before;
    for (std::uint32_t s = 0; s < PlacementDescriptor::kSlots; s++)
        if (after.slot(s) == 1) after.setSlot(s, 2);
    std::uint64_t invalidated = path->installPlacement(0, after);
    EXPECT_EQ(invalidated, occ1);
    EXPECT_EQ(path->bank(0).constArray().occupancyOfVc(0), occ0);
}

TEST(MemPath, WayMaskInstallation)
{
    auto path = makePath();
    path->registerVc(0);
    std::vector<WayMask> masks(path->numBanks(), WayMask::range(0, 2));
    path->installWayMasks(0, masks);
    EXPECT_EQ(path->bank(0).array().wayMaskFor(0).count(), 2u);
    EXPECT_THROW(path->installWayMasks(0, {WayMask(0)}), PanicError);
}

// ---------------------------------------------------------- CoreModel

/** A fixed app: N instructions then an access, forever. */
class FixedApp : public AppModel
{
  public:
    FixedApp(std::uint64_t instrs, LineAddr base)
        : instrs_(instrs), base_(base)
    {
        traits_.baseIpc = 2.0;
        traits_.stallFactor = 1.0;
    }

    const std::string &name() const override { return name_; }
    const AppTraits &traits() const override { return traits_; }

    AppStep
    next(Tick, Rng &) override
    {
        return AppStep::execute(instrs_, base_ + (counter_++ % 8));
    }

    int completions = 0;
    void onAccessComplete(Tick) override { completions++; }

  private:
    std::string name_ = "fixed";
    AppTraits traits_;
    std::uint64_t instrs_;
    LineAddr base_;
    std::uint64_t counter_ = 0;
};

TEST(CoreModel, RetiresInstructionsAndCharges)
{
    auto path = makePath();
    path->registerVc(0);
    installStriped(*path, 0);

    FixedApp app(100, 0);
    CoreModel core(0, owner(0), &app, path.get(), Rng(1));
    EventQueue queue;
    queue.schedule(&core, 0);
    queue.runUntil(50000);

    EXPECT_GT(core.instrsRetired(), 0u);
    EXPECT_GT(core.stallCycles(), 0u);
    EXPECT_GT(app.completions, 0);
    EXPECT_EQ(core.counters().llcHits + core.counters().llcMisses,
              static_cast<std::uint64_t>(app.completions));
}

TEST(CoreModel, IpcBoundedByBaseIpc)
{
    auto path = makePath();
    path->registerVc(0);
    installStriped(*path, 0);

    FixedApp app(1000, 0);
    CoreModel core(0, owner(0), &app, path.get(), Rng(1));
    EventQueue queue;
    queue.schedule(&core, 0);
    Tick end = queue.runUntil(100000);
    double ipc = static_cast<double>(core.instrsRetired()) /
                 static_cast<double>(end);
    EXPECT_LE(ipc, 2.0 + 1e-9);
    EXPECT_GT(ipc, 0.5);
}

TEST(CoreModel, ResetAccountingClears)
{
    auto path = makePath();
    path->registerVc(0);
    installStriped(*path, 0);
    FixedApp app(100, 0);
    CoreModel core(0, owner(0), &app, path.get(), Rng(1));
    EventQueue queue;
    queue.schedule(&core, 0);
    queue.runUntil(10000);
    core.resetAccounting();
    EXPECT_EQ(core.instrsRetired(), 0u);
    EXPECT_EQ(core.stallCycles(), 0u);
    EXPECT_EQ(core.counters().llcHits, 0u);
}

TEST(CoreModel, RejectsNullArgs)
{
    auto path = makePath();
    FixedApp app(1, 0);
    EXPECT_THROW(CoreModel(0, owner(0), nullptr, path.get(), Rng(1)),
                 FatalError);
    EXPECT_THROW(CoreModel(0, owner(0), &app, nullptr, Rng(1)),
                 FatalError);
}

} // namespace
} // namespace jumanji
