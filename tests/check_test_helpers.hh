/**
 * @file
 * Helpers for test_check.cc, compiled in sibling TUs that pin the
 * contract macros on (JUMANJI_FORCE_CHECKS) or off
 * (JUMANJI_DISABLE_CHECKS), so one test binary can verify both modes
 * regardless of the build type it was compiled under.
 */

#ifndef JUMANJI_TESTS_CHECK_TEST_HELPERS_HH
#define JUMANJI_TESTS_CHECK_TEST_HELPERS_HH

namespace jumanji::checktest {

// Compiled with JUMANJI_FORCE_CHECKS (test_check_forced.cc).
void forcedAssert(bool ok, int *evalCount);
void forcedInvariant(bool ok, int *evalCount);
[[noreturn]] void forcedUnreachable();

// Compiled with JUMANJI_DISABLE_CHECKS (test_check_disabled.cc).
// The condition increments *evalCount and is false, so if a disabled
// macro ever evaluated or enforced it, the tests would see it.
void disabledAssert(int *evalCount);
void disabledInvariant(int *evalCount);

} // namespace jumanji::checktest

#endif // JUMANJI_TESTS_CHECK_TEST_HELPERS_HH
