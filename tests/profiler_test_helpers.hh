/**
 * @file
 * Cross-TU helpers for the profiler tests. Each function is DEFINED
 * in a different translation unit so both JUMANJI_PROF_SCOPE modes
 * are covered in one binary regardless of build flags:
 *
 *  - enabledSite() lives in test_profiler.cc (macro active, gated by
 *    the runtime flag);
 *  - disabledSiteRuns() lives in test_profiler_disabled.cc, which
 *    pins JUMANJI_DISABLE_PROFILING before including profiler.hh, so
 *    its scope macro must compile to nothing.
 *
 * Mirrors tests/check_test_helpers.hh for the contract macros.
 */

#ifndef JUMANJI_TESTS_PROFILER_TEST_HELPERS_HH
#define JUMANJI_TESTS_PROFILER_TEST_HELPERS_HH

namespace jumanji {
namespace proftest {

/** Runs a JUMANJI_PROF_SCOPE("proftest.enabled.site") body. */
void enabledSite();

/**
 * Runs a body whose JUMANJI_PROF_SCOPE("proftest.disabled.site") is
 * compiled out; returns 42 to prove the body itself still executes.
 */
int disabledSiteRuns();

} // namespace proftest
} // namespace jumanji

#endif // JUMANJI_TESTS_PROFILER_TEST_HELPERS_HH
