/**
 * @file
 * Unit tests for the paper's core algorithms: the feedback
 * controller (Listing 1), Lookahead / JumanjiLookahead,
 * LatCritPlacer (Listing 2), JigsawPlacer, plan materialization, and
 * the full policies (Listing 3 et al.).
 */

#include <gtest/gtest.h>

#include "src/core/feedback_controller.hh"
#include "src/core/jigsaw_placer.hh"
#include "src/core/lat_crit_placer.hh"
#include "src/core/lookahead.hh"
#include "src/core/placement_types.hh"
#include "src/core/policies.hh"
#include "src/sim/logging.hh"

namespace jumanji {
namespace {

PlacementGeometry
testGeo(std::uint32_t banks = 4, std::uint32_t ways = 8,
        std::uint64_t linesPerBank = 1024)
{
    PlacementGeometry geo;
    geo.banks = banks;
    geo.waysPerBank = ways;
    geo.linesPerBank = linesPerBank;
    geo.linesPerBucket = geo.totalLines() / 16;
    return geo;
}

MeshParams
quadMesh()
{
    MeshParams p;
    p.cols = 2;
    p.rows = 2;
    return p;
}

// -------------------------------------------------- FeedbackController

ControllerParams
defaultCtrl()
{
    return ControllerParams{};
}

TEST(FeedbackController, HoldsInsideTargetBand)
{
    FeedbackController ctrl(defaultCtrl(), 1000.0, 500, 800, 10, 10000);
    // Tail at 90% of deadline: inside [85%, 95%] -> hold.
    for (int i = 0; i < 21; i++) ctrl.requestCompleted(900.0);
    EXPECT_EQ(ctrl.targetLines(), 500u);
}

TEST(FeedbackController, GrowsWhenAboveHighFrac)
{
    FeedbackController ctrl(defaultCtrl(), 1000.0, 500, 800, 10, 10000);
    for (int i = 0; i < 21; i++) ctrl.requestCompleted(1000.0);
    EXPECT_EQ(ctrl.targetLines(), 550u); // +10%
}

TEST(FeedbackController, ShrinksWhenBelowLowFrac)
{
    FeedbackController ctrl(defaultCtrl(), 1000.0, 500, 800, 10, 10000);
    for (int i = 0; i < 21; i++) ctrl.requestCompleted(100.0);
    EXPECT_EQ(ctrl.targetLines(), 450u); // -10%
}

TEST(FeedbackController, PanicBoostsToSafeSize)
{
    FeedbackController ctrl(defaultCtrl(), 1000.0, 100, 800, 10, 10000);
    for (int i = 0; i < 21; i++) ctrl.requestCompleted(2000.0);
    EXPECT_EQ(ctrl.targetLines(), 800u);
    EXPECT_EQ(ctrl.panics(), 1u);
}

TEST(FeedbackController, RepeatedPanicKeepsGrowing)
{
    // When the panic size itself is insufficient, the controller
    // must not get stuck at it.
    FeedbackController ctrl(defaultCtrl(), 1000.0, 800, 800, 10, 10000);
    for (int round = 0; round < 3; round++)
        for (int i = 0; i < 21; i++) ctrl.requestCompleted(2000.0);
    EXPECT_GT(ctrl.targetLines(), 800u);
}

TEST(FeedbackController, ClampsToBounds)
{
    FeedbackController ctrl(defaultCtrl(), 1000.0, 95, 50, 90, 100);
    for (int round = 0; round < 10; round++)
        for (int i = 0; i < 21; i++) ctrl.requestCompleted(1.0);
    EXPECT_EQ(ctrl.targetLines(), 90u); // min clamp
    for (int round = 0; round < 20; round++)
        for (int i = 0; i < 21; i++) ctrl.requestCompleted(990.0);
    EXPECT_EQ(ctrl.targetLines(), 100u); // max clamp
}

TEST(FeedbackController, UpdatesOnlyEveryInterval)
{
    FeedbackController ctrl(defaultCtrl(), 1000.0, 500, 800, 10, 10000);
    // Listing 1: update fires when count exceeds the interval.
    for (int i = 0; i < 20; i++)
        EXPECT_FALSE(ctrl.requestCompleted(2000.0));
    EXPECT_TRUE(ctrl.requestCompleted(2000.0));
}

TEST(FeedbackController, TracksLastTail)
{
    FeedbackController ctrl(defaultCtrl(), 1000.0, 500, 800, 10, 10000);
    for (int i = 0; i < 21; i++) ctrl.requestCompleted(640.0);
    EXPECT_NEAR(ctrl.lastTail(), 640.0, 1.0);
}

TEST(FeedbackController, RejectsBadConfig)
{
    EXPECT_THROW(FeedbackController(defaultCtrl(), 0.0, 1, 1, 1, 2),
                 FatalError);
    EXPECT_THROW(FeedbackController(defaultCtrl(), 10.0, 1, 1, 5, 2),
                 FatalError);
}

// ---------------------------------------------------------- Lookahead

MissCurve
steepCurve()
{
    // Saves 100 misses/bucket for 4 buckets.
    return MissCurve({400, 300, 200, 100, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                      0, 0, 0});
}

MissCurve
shallowCurve()
{
    // Saves 10 misses/bucket for 8 buckets.
    return MissCurve({80, 70, 60, 50, 40, 30, 20, 10, 0, 0, 0, 0, 0, 0,
                      0, 0, 0});
}

TEST(Lookahead, PrefersSteeperCurve)
{
    PlacementGeometry geo = testGeo();
    std::vector<LookaheadClaim> claims(2);
    claims[0].curve = steepCurve();
    claims[1].curve = shallowCurve();

    // Budget of 4 buckets: all to the steep claim.
    LookaheadResult r = lookahead(claims, 4 * geo.linesPerBucket, geo);
    EXPECT_EQ(r.lines[0], 4 * geo.linesPerBucket);
    EXPECT_EQ(r.lines[1], 0u);
}

TEST(Lookahead, SpillsToSecondClaim)
{
    PlacementGeometry geo = testGeo();
    std::vector<LookaheadClaim> claims(2);
    claims[0].curve = steepCurve();
    claims[1].curve = shallowCurve();

    LookaheadResult r = lookahead(claims, 6 * geo.linesPerBucket, geo);
    EXPECT_EQ(r.lines[0], 4 * geo.linesPerBucket);
    EXPECT_EQ(r.lines[1], 2 * geo.linesPerBucket);
}

TEST(Lookahead, BudgetConserved)
{
    PlacementGeometry geo = testGeo();
    std::vector<LookaheadClaim> claims(3);
    claims[0].curve = steepCurve();
    claims[1].curve = shallowCurve();
    claims[2].curve = MissCurve::flat(16, 5.0);

    std::uint64_t budget = geo.totalLines();
    LookaheadResult r = lookahead(claims, budget, geo);
    std::uint64_t total = 0;
    for (auto l : r.lines) total += l;
    EXPECT_EQ(total, budget);
}

TEST(Lookahead, FlatCurvesSplitEvenly)
{
    PlacementGeometry geo = testGeo();
    std::vector<LookaheadClaim> claims(4);
    for (auto &c : claims) c.curve = MissCurve::flat(16, 0.0);

    LookaheadResult r = lookahead(claims, geo.totalLines(), geo);
    for (auto l : r.lines)
        EXPECT_NEAR(static_cast<double>(l),
                    static_cast<double>(geo.totalLines()) / 4,
                    static_cast<double>(geo.linesPerWay()));
}

TEST(Lookahead, FloorsRespected)
{
    PlacementGeometry geo = testGeo();
    std::vector<LookaheadClaim> claims(2);
    claims[0].curve = MissCurve::flat(16, 0.0);
    claims[0].floorLines = 500;
    claims[1].curve = steepCurve();

    LookaheadResult r = lookahead(claims, 1000, geo);
    EXPECT_GE(r.lines[0], 500u);
}

TEST(Lookahead, FloorsBeyondBudgetGrantedOnly)
{
    PlacementGeometry geo = testGeo();
    std::vector<LookaheadClaim> claims(2);
    claims[0].floorLines = 800;
    claims[1].floorLines = 800;
    LookaheadResult r = lookahead(claims, 1000, geo);
    EXPECT_EQ(r.lines[0], 800u);
    EXPECT_EQ(r.lines[1], 800u);
}

TEST(JumanjiLookahead, BankGranularTotals)
{
    PlacementGeometry geo = testGeo();
    std::vector<LookaheadClaim> claims(2);
    claims[0].curve = steepCurve();
    claims[0].floorLines = 300; // 0.29 banks of LC
    claims[1].curve = shallowCurve();

    LookaheadResult r = jumanjiLookahead(claims, geo.totalLines(), geo);
    std::uint64_t total = 0;
    for (auto l : r.lines) {
        EXPECT_EQ(l % geo.linesPerBank, 0u) << "not bank granular";
        total += l;
    }
    EXPECT_EQ(total, geo.totalLines());
}

TEST(JumanjiLookahead, FloorCoversLatCritReservation)
{
    PlacementGeometry geo = testGeo();
    std::vector<LookaheadClaim> claims(2);
    claims[0].floorLines = geo.linesPerBank + 1; // needs 2 banks
    claims[1].curve = steepCurve();

    LookaheadResult r = jumanjiLookahead(claims, geo.totalLines(), geo);
    EXPECT_GE(r.lines[0], 2 * geo.linesPerBank);
}

TEST(JumanjiLookahead, EveryVmGetsABank)
{
    PlacementGeometry geo = testGeo();
    std::vector<LookaheadClaim> claims(4);
    claims[0].curve = steepCurve();
    for (std::size_t i = 1; i < 4; i++)
        claims[i].curve = MissCurve::flat(16, 0.0);

    LookaheadResult r = jumanjiLookahead(claims, geo.totalLines(), geo);
    for (auto l : r.lines) EXPECT_GE(l, geo.linesPerBank);
}

TEST(JumanjiLookahead, RejectsNonBankBudget)
{
    PlacementGeometry geo = testGeo();
    std::vector<LookaheadClaim> claims(1);
    EXPECT_THROW(jumanjiLookahead(claims, geo.linesPerBank + 7, geo),
                 PanicError);
}

// ------------------------------------------------------ LatCritPlacer

VcInfo
lcVc(VcId vc, VmId vm, std::uint32_t tile, std::uint64_t target)
{
    VcInfo info;
    info.vc = vc;
    info.app = vc;
    info.vm = vm;
    info.coreTile = tile;
    info.latencyCritical = true;
    info.targetLines = target;
    info.name = "lc" + std::to_string(vc);
    return info;
}

TEST(LatCritPlacer, PlacesInNearestBank)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    latCritPlacer({lcVc(0, 0, 0, 512)}, balance, mesh, geo, true,
                  matrix);
    EXPECT_EQ(matrix.get(0, 0), 512u);
    EXPECT_EQ(balance[0], geo.linesPerBank - 512);
}

TEST(LatCritPlacer, SpillsToNextNearest)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    latCritPlacer({lcVc(0, 0, 0, geo.linesPerBank + 100)}, balance,
                  mesh, geo, true, matrix);
    EXPECT_EQ(matrix.get(0, 0), geo.linesPerBank);
    EXPECT_EQ(matrix.vcTotal(0), geo.linesPerBank + 100);
}

TEST(LatCritPlacer, IsolatesVms)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    // Two LC apps of different VMs anchored at the same tile: with
    // isolation their allocations must not share banks.
    latCritPlacer({lcVc(0, 0, 0, 512), lcVc(1, 1, 0, 512)}, balance,
                  mesh, geo, true, matrix);
    for (std::uint32_t b = 0; b < geo.banks; b++) {
        bool hasVm0 = matrix.get(static_cast<BankId>(b), 0) > 0;
        bool hasVm1 = matrix.get(static_cast<BankId>(b), 1) > 0;
        EXPECT_FALSE(hasVm0 && hasVm1);
    }
}

TEST(LatCritPlacer, SharingAllowedWhenInsecure)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    latCritPlacer({lcVc(0, 0, 0, 512), lcVc(1, 1, 0, 512)}, balance,
                  mesh, geo, false, matrix);
    // Both land in the closest bank (bank 0).
    EXPECT_EQ(matrix.get(0, 0), 512u);
    EXPECT_EQ(matrix.get(0, 1), 512u);
}

// ------------------------------------------------------- JigsawPlacer

TEST(JigsawPlacer, PlacesNearCore)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    PlacementRequest req;
    req.vc = 0;
    req.coreTile = 3;
    req.lines = 100;
    req.intensity = 1.0;
    jigsawPlacer({req}, balance, {}, mesh, matrix);
    EXPECT_EQ(matrix.get(3, 0), 100u);
}

TEST(JigsawPlacer, RespectsAllowedBanks)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    PlacementRequest req;
    req.vc = 0;
    req.coreTile = 0;
    req.lines = 2 * geo.linesPerBank;
    jigsawPlacer({req}, balance, {2, 3}, mesh, matrix);
    EXPECT_EQ(matrix.get(0, 0), 0u);
    EXPECT_EQ(matrix.get(1, 0), 0u);
    EXPECT_EQ(matrix.get(2, 0) + matrix.get(3, 0),
              2 * geo.linesPerBank);
}

TEST(JigsawPlacer, HotterVcPicksFirst)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    PlacementRequest cold;
    cold.vc = 0;
    cold.coreTile = 1;
    cold.lines = geo.linesPerBank;
    cold.intensity = 1.0;
    PlacementRequest hot;
    hot.vc = 1;
    hot.coreTile = 1;
    hot.lines = geo.linesPerBank;
    hot.intensity = 100.0;
    jigsawPlacer({cold, hot}, balance, {}, mesh, matrix);
    // The hot VC owns the local bank.
    EXPECT_EQ(matrix.get(1, 1), geo.linesPerBank);
    EXPECT_EQ(matrix.get(1, 0), 0u);
}

TEST(JigsawPlacer, ConservesCapacity)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    std::vector<PlacementRequest> reqs;
    for (int i = 0; i < 4; i++) {
        PlacementRequest r;
        r.vc = i;
        r.coreTile = static_cast<std::uint32_t>(i);
        r.lines = geo.linesPerBank;
        r.intensity = i;
        reqs.push_back(r);
    }
    jigsawPlacer(reqs, balance, {}, mesh, matrix);
    for (std::uint32_t b = 0; b < geo.banks; b++) {
        EXPECT_EQ(matrix.bankTotal(static_cast<BankId>(b)),
                  geo.linesPerBank);
        EXPECT_EQ(balance[b], 0u);
    }
}

// ---------------------------------------------------- materializePlan

TEST(MaterializePlan, AbsoluteWayCounts)
{
    PlacementGeometry geo = testGeo(4, 8, 1024); // 128 lines/way
    AllocationMatrix matrix(geo.banks);
    // One VC with 2 ways' worth in bank 0: gets exactly 2 ways even
    // though the bank is otherwise empty (CAT masks are absolute).
    matrix.add(0, 7, 256);
    PlacementPlan plan = materializePlan(matrix, geo, nullptr);
    EXPECT_EQ(plan.wayMasks.at(7)[0].count(), 2u);
    EXPECT_TRUE(plan.wayMasks.at(7)[1].empty());
}

TEST(MaterializePlan, OversubscriptionScalesDown)
{
    PlacementGeometry geo = testGeo(1, 8, 1024);
    AllocationMatrix matrix(geo.banks);
    matrix.add(0, 0, 1024);
    matrix.add(0, 1, 1024); // 2x the bank
    PlacementPlan plan = materializePlan(matrix, geo, nullptr);
    std::uint32_t total = plan.wayMasks.at(0)[0].count() +
                          plan.wayMasks.at(1)[0].count();
    EXPECT_LE(total, 8u);
    EXPECT_EQ(plan.wayMasks.at(0)[0].count(),
              plan.wayMasks.at(1)[0].count());
}

TEST(MaterializePlan, MasksAreDisjoint)
{
    PlacementGeometry geo = testGeo(2, 8, 1024);
    AllocationMatrix matrix(geo.banks);
    matrix.add(0, 0, 512);
    matrix.add(0, 1, 256);
    matrix.add(0, 2, 256);
    PlacementPlan plan = materializePlan(matrix, geo, nullptr);
    WayMask m0 = plan.wayMasks.at(0)[0];
    WayMask m1 = plan.wayMasks.at(1)[0];
    WayMask m2 = plan.wayMasks.at(2)[0];
    EXPECT_TRUE((m0 & m1).empty());
    EXPECT_TRUE((m0 & m2).empty());
    EXPECT_TRUE((m1 & m2).empty());
}

TEST(MaterializePlan, SharedGroupGetsIdenticalMasks)
{
    PlacementGeometry geo = testGeo(2, 8, 1024);
    AllocationMatrix matrix(geo.banks);
    matrix.add(0, 0, 256);
    matrix.add(0, 1, 256);
    matrix.add(0, 2, 512); // private
    std::vector<std::vector<VcId>> groups = {{0, 1}};
    PlacementPlan plan = materializePlan(matrix, geo, &groups);
    EXPECT_EQ(plan.wayMasks.at(0)[0], plan.wayMasks.at(1)[0]);
    EXPECT_EQ(plan.wayMasks.at(0)[0].count(), 4u); // merged 512 lines
    EXPECT_TRUE(
        (plan.wayMasks.at(0)[0] & plan.wayMasks.at(2)[0]).empty());
}

TEST(MaterializePlan, DescriptorsMatchBankShares)
{
    PlacementGeometry geo = testGeo(4, 8, 1024);
    AllocationMatrix matrix(geo.banks);
    matrix.add(0, 0, 768);
    matrix.add(1, 0, 256);
    PlacementPlan plan = materializePlan(matrix, geo, nullptr);
    const PlacementDescriptor &desc = plan.descriptors.at(0);
    EXPECT_NEAR(desc.slotsOn(0), 96, 2);
    EXPECT_NEAR(desc.slotsOn(1), 32, 2);
    EXPECT_EQ(desc.slotsOn(2), 0u);
}

// ----------------------------------------------------------- Policies

EpochInputs
standardInputs(const PlacementGeometry &geo, const MeshTopology &mesh)
{
    EpochInputs in;
    in.geo = geo;
    in.mesh = &mesh;
    // 2 VMs x (1 LC + 1 batch) on a 2x2 mesh.
    for (int vm = 0; vm < 2; vm++) {
        VcInfo lc = lcVc(vm * 2, vm, vm == 0 ? 0 : 3, 512);
        lc.curve = MissCurve({100, 50, 25, 12, 6, 3, 1, 0, 0, 0, 0, 0,
                              0, 0, 0, 0, 0});
        in.vcs.push_back(lc);

        VcInfo batch;
        batch.vc = vm * 2 + 1;
        batch.app = batch.vc;
        batch.vm = vm;
        batch.coreTile = vm == 0 ? 1 : 2;
        batch.latencyCritical = false;
        batch.curve = MissCurve({1000, 800, 600, 400, 300, 200, 150,
                                 100, 80, 60, 40, 30, 20, 10, 5, 2, 0});
        batch.name = "batch" + std::to_string(vm);
        in.vcs.push_back(batch);
    }
    return in;
}

TEST(Policies, FactoryCoversAllDesigns)
{
    for (LlcDesign d : {LlcDesign::Static, LlcDesign::Adaptive,
                        LlcDesign::VMPart, LlcDesign::Jigsaw,
                        LlcDesign::Jumanji, LlcDesign::JumanjiInsecure,
                        LlcDesign::JumanjiIdealBatch}) {
        auto policy = LlcPolicy::create(d);
        ASSERT_NE(policy, nullptr);
        EXPECT_STREQ(policy->name(), llcDesignName(d));
    }
}

TEST(Policies, StaticGivesLcFixedWaysEverywhere)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    EpochInputs in = standardInputs(geo, mesh);
    StaticPolicy policy(2);
    PlacementPlan plan = policy.reconfigure(in);
    std::uint64_t perBank = 2 * geo.linesPerWay();
    for (std::uint32_t b = 0; b < geo.banks; b++) {
        EXPECT_EQ(plan.matrix.get(static_cast<BankId>(b), 0), perBank);
        EXPECT_EQ(plan.matrix.get(static_cast<BankId>(b), 2), perBank);
    }
}

TEST(Policies, StaticClampsLcWaysToProtectBatch)
{
    // Two LC apps asking for 4 of 8 ways each would leave batch with
    // nothing; Static clamps so batch keeps >= a quarter of the bank.
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    EpochInputs in = standardInputs(geo, mesh);
    StaticPolicy policy(4);
    PlacementPlan plan = policy.reconfigure(in);
    for (std::uint32_t b = 0; b < geo.banks; b++) {
        std::uint64_t lc = plan.matrix.get(static_cast<BankId>(b), 0) +
                           plan.matrix.get(static_cast<BankId>(b), 2);
        EXPECT_LE(lc, 6 * geo.linesPerWay());
        EXPECT_GT(plan.matrix.bankTotal(static_cast<BankId>(b)) - lc,
                  0u);
    }
}

TEST(Policies, AdaptiveUsesControllerTargets)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    EpochInputs in = standardInputs(geo, mesh);
    in.vcs[0].targetLines = 2048;
    AdaptivePolicy policy;
    PlacementPlan plan = policy.reconfigure(in);
    EXPECT_EQ(plan.matrix.vcTotal(0), 2048u);
}

TEST(Policies, JumanjiIsolatesVmsIntoBanks)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    EpochInputs in = standardInputs(geo, mesh);
    JumanjiPolicy policy(true);
    PlacementPlan plan = policy.reconfigure(in);

    std::map<VcId, VmId> vmOf;
    for (const auto &vc : in.vcs) vmOf[vc.vc] = vc.vm;
    for (std::uint32_t b = 0; b < geo.banks; b++) {
        auto vms = plan.matrix.vmsInBank(static_cast<BankId>(b), vmOf);
        EXPECT_LE(vms.size(), 1u) << "bank " << b << " shared by VMs";
    }
}

TEST(Policies, JumanjiAllocatesFullCapacity)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    EpochInputs in = standardInputs(geo, mesh);
    JumanjiPolicy policy(true);
    PlacementPlan plan = policy.reconfigure(in);
    std::uint64_t total = 0;
    for (const auto &vc : in.vcs) total += plan.matrix.vcTotal(vc.vc);
    // All VM totals are bank multiples summing to the LLC.
    EXPECT_EQ(total, geo.totalLines());
}

TEST(Policies, JumanjiHonorsLatCritTargets)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    EpochInputs in = standardInputs(geo, mesh);
    in.vcs[0].targetLines = 700;
    JumanjiPolicy policy(true);
    PlacementPlan plan = policy.reconfigure(in);
    EXPECT_GE(plan.matrix.vcTotal(0), 700u);
}

TEST(Policies, InsecureMaySharesBanks)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    EpochInputs in = standardInputs(geo, mesh);
    // Make both batch apps want everything: with only 4 banks their
    // placements overlap under the insecure variant.
    JumanjiPolicy policy(false);
    PlacementPlan plan = policy.reconfigure(in);
    std::uint64_t total = 0;
    for (const auto &vc : in.vcs) total += plan.matrix.vcTotal(vc.vc);
    EXPECT_EQ(total, geo.totalLines());
}

TEST(Policies, EveryVcGetsADescriptor)
{
    PlacementGeometry geo = testGeo();
    MeshTopology mesh(quadMesh());
    EpochInputs in = standardInputs(geo, mesh);
    for (LlcDesign d : {LlcDesign::Static, LlcDesign::Adaptive,
                        LlcDesign::VMPart, LlcDesign::Jigsaw,
                        LlcDesign::Jumanji, LlcDesign::JumanjiInsecure,
                        LlcDesign::JumanjiIdealBatch}) {
        auto policy = LlcPolicy::create(d);
        PlacementPlan plan = policy->reconfigure(in);
        for (const auto &vc : in.vcs) {
            EXPECT_TRUE(plan.descriptors.count(vc.vc))
                << llcDesignName(d) << " lost VC " << vc.vc;
            // And at least one fillable way somewhere.
            std::uint32_t ways = 0;
            auto it = plan.wayMasks.find(vc.vc);
            ASSERT_NE(it, plan.wayMasks.end());
            for (const auto &m : it->second) ways += m.count();
            EXPECT_GT(ways, 0u)
                << llcDesignName(d) << " VC " << vc.vc << " unfillable";
        }
    }
}

TEST(Policies, IdealBatchWantsSecondLlc)
{
    EXPECT_TRUE(JumanjiIdealBatchPolicy().wantsIdealBatchLlc());
    EXPECT_FALSE(JumanjiPolicy(true).wantsIdealBatchLlc());
}

} // namespace
} // namespace jumanji
