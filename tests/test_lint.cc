/**
 * @file
 * Tests for the jumanji_lint static analyzer (tools/lint/): the
 * lexer's literal/comment handling, the stat-name pattern
 * intersection, the suppression machinery, the report renderers, and
 * one seeded fixture tree per pass family under tests/lint_fixtures/
 * (which the repo-wide scan skips on purpose).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/lint.hh"

namespace jlint {
namespace {

std::vector<Finding>
lintFixture(const std::string &name)
{
    LintContext ctx;
    runLint(ctx, {std::string(JUMANJI_SOURCE_DIR) +
                  "/tests/lint_fixtures/" + name});
    return ctx.findings;
}

std::vector<Finding>
lintMemory(
    const std::vector<std::pair<std::string, std::string>> &files)
{
    LintContext ctx;
    for (const auto &[path, raw] : files) addSource(ctx, path, raw);
    runAllPasses(ctx);
    return ctx.findings;
}

std::size_t
countRule(const std::vector<Finding> &fs, const std::string &rule)
{
    return static_cast<std::size_t>(std::count_if(
        fs.begin(), fs.end(),
        [&](const Finding &f) { return f.rule == rule; }));
}

bool
hasFinding(const std::vector<Finding> &fs, const std::string &rule,
           const std::string &fileSuffix, const std::string &msgPart)
{
    for (const Finding &f : fs)
        if (f.rule == rule && pathEndsWith(f.file, fileSuffix) &&
            f.message.find(msgPart) != std::string::npos)
            return true;
    return false;
}

bool
hasIdent(const LexedSource &lx, const std::string &text)
{
    for (const Token &t : lx.tokens)
        if (t.kind == Tok::Ident && t.text == text) return true;
    return false;
}

// ------------------------------------------------------------- Lexer

TEST(LintLexer, RawStringBodyIsOneTokenNotCode)
{
    LexedSource lx =
        lex("auto s = R\"x(rand() \"quoted\" )x\"; int y;");
    std::size_t strings = 0;
    for (const Token &t : lx.tokens)
        if (t.kind == Tok::String) {
            strings++;
            EXPECT_NE(t.text.find("rand()"), std::string::npos);
            EXPECT_NE(t.text.find("\"quoted\""), std::string::npos);
        }
    EXPECT_EQ(strings, 1u);
    EXPECT_FALSE(hasIdent(lx, "rand"));
    EXPECT_TRUE(hasIdent(lx, "y"));
}

TEST(LintLexer, SplicedLineCommentSwallowsContinuation)
{
    LexedSource lx = lex("// hidden \\\n rand() more\nint z;");
    EXPECT_FALSE(hasIdent(lx, "rand"));
    EXPECT_TRUE(hasIdent(lx, "z"));
    ASSERT_EQ(lx.comments.count(1), 1u);
    EXPECT_NE(lx.comments.at(1).find("rand()"), std::string::npos);
}

TEST(LintLexer, CharLiteralWithQuoteDoesNotOpenString)
{
    LexedSource lx = lex("char c = '\"'; int after = 3;");
    std::size_t chars = 0;
    for (const Token &t : lx.tokens)
        if (t.kind == Tok::Char) {
            chars++;
            EXPECT_EQ(t.text, "\"");
        }
    EXPECT_EQ(chars, 1u);
    EXPECT_TRUE(hasIdent(lx, "after"));
    for (const Token &t : lx.tokens)
        EXPECT_NE(t.kind, Tok::String);
}

TEST(LintLexer, IncludeTargetsRecordedAndEmitNoTokens)
{
    LexedSource lx = lex("#include <vector>\n"
                         "#include \"src/sim/types.hh\"\n"
                         "int a;\n");
    ASSERT_EQ(lx.includes.size(), 2u);
    EXPECT_EQ(lx.includes[0].target, "vector");
    EXPECT_TRUE(lx.includes[0].angled);
    EXPECT_EQ(lx.includes[0].line, 1u);
    EXPECT_EQ(lx.includes[1].target, "src/sim/types.hh");
    EXPECT_FALSE(lx.includes[1].angled);
    EXPECT_FALSE(hasIdent(lx, "vector"));
    EXPECT_FALSE(hasIdent(lx, "include"));
    EXPECT_TRUE(hasIdent(lx, "a"));
}

TEST(LintLexer, NonIncludeDirectiveTokensAreFlagged)
{
    LexedSource lx = lex("#define FOO 1\nint b;\n");
    bool sawFoo = false;
    for (const Token &t : lx.tokens) {
        if (t.kind == Tok::Ident && t.text == "FOO") {
            sawFoo = true;
            EXPECT_TRUE(t.inDirective);
        }
        if (t.kind == Tok::Ident && t.text == "b") {
            EXPECT_FALSE(t.inDirective);
        }
    }
    EXPECT_TRUE(sawFoo);
}

// ---------------------------------------------------------- Patterns

TEST(LintPatterns, LiteralsMustMatchExactly)
{
    EXPECT_TRUE(patternsIntersect("llc.hits", "llc.hits"));
    EXPECT_FALSE(patternsIntersect("llc.hits", "llc.miss"));
}

TEST(LintPatterns, AnyWildAbsorbsZeroOrMoreChars)
{
    const std::string sel = std::string("llc.") + kAnyWild;
    EXPECT_TRUE(patternsIntersect(sel, "llc.bank00.hits"));
    EXPECT_TRUE(patternsIntersect(std::string("x") + kAnyWild, "x"));
    EXPECT_FALSE(patternsIntersect(sel, "mem.reads"));
}

TEST(LintPatterns, NumWildRequiresAtLeastOneDigit)
{
    const std::string pat =
        std::string("apps.a") + kNumWild + ".ipc";
    EXPECT_TRUE(patternsIntersect(pat, "apps.a07.ipc"));
    EXPECT_TRUE(patternsIntersect(pat, "apps.a123.ipc"));
    EXPECT_FALSE(patternsIntersect(pat, "apps.ax.ipc"));
    EXPECT_FALSE(patternsIntersect(std::string("a") + kNumWild, "a"));
}

// ------------------------------------------------------------- Paths

TEST(LintPaths, RepoRelativeAnchorsAtLastKnownComponent)
{
    EXPECT_EQ(
        repoRelative("/x/tests/lint_fixtures/rules/src/cache/a.cc"),
        "src/cache/a.cc");
    EXPECT_EQ(repoRelative("src/sim/rng.hh"), "src/sim/rng.hh");
    EXPECT_EQ(subsystemOf("src/cache/foo.hh"), "cache");
    EXPECT_EQ(subsystemOf("bench/foo.cc"), "bench");
}

// ------------------------------------------------------ Suppressions

TEST(LintSuppressions, LineWaiverCoversTheLineBelow)
{
    const std::string code =
        "int f()\n"
        "{\n"
        "    // lint-allow: no-unseeded-rand test waiver\n"
        "    int x = rand();\n"
        "    return x;\n"
        "}\n";
    auto fs = lintMemory({{"src/cache/mem.cc", code}});
    EXPECT_TRUE(fs.empty());
}

TEST(LintSuppressions, FileWideWaiverWorksAndStaleOneIsAudited)
{
    const std::string code =
        "// lint-allow-file: no-float whole file is math scratch\n"
        "float kW = 1.0f;\n"
        "// lint-allow: io-routing stale on purpose\n"
        "int done = 1;\n";
    auto fs = lintMemory({{"src/cache/mem2.cc", code}});
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "suppression-audit");
    EXPECT_NE(fs[0].message.find("stale waiver"), std::string::npos);
    EXPECT_NE(fs[0].message.find("io-routing"), std::string::npos);
}

// ------------------------------------------------------- Clock rule

TEST(LintRules, ClockRoutingFlagsCallsButNotDeclaratorsOrMembers)
{
    const std::string code =
        "long now = time(nullptr);\n"  // libc call: fires
        "long t2 = obj.time(3);\n"     // member call: quiet
        "Tick time(Tick when);\n"      // declarator: quiet
        "long c = clock();\n";         // libc call: fires
    auto fs = lintMemory({{"src/cache/clocky.cc", code}});
    EXPECT_EQ(countRule(fs, "clock-routing"), 2u);
    EXPECT_TRUE(hasFinding(fs, "clock-routing", "src/cache/clocky.cc",
                           "time"));
    EXPECT_TRUE(hasFinding(fs, "clock-routing", "src/cache/clocky.cc",
                           "clock"));

    // The chrono clock types fire on sight (no call heuristics), but
    // never inside the two sanctioned sink files.
    const std::string chrono =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_EQ(countRule(lintMemory({{"src/noc/ticker.cc", chrono}}),
                        "clock-routing"),
              1u);
    EXPECT_EQ(
        countRule(lintMemory({{"src/sim/profiler.cc", chrono}}),
                  "clock-routing"),
        0u);
    EXPECT_EQ(
        countRule(lintMemory({{"src/driver/telemetry.cc", chrono}}),
                  "clock-routing"),
        0u);
    // And tools/ is out of scope entirely: perf_history and the CLI
    // may time themselves however they like.
    EXPECT_EQ(countRule(lintMemory({{"tools/timer.cc", chrono}}),
                        "clock-routing"),
              0u);
}

// --------------------------------------------------------- Renderers

TEST(LintRender, TextJsonAndSarifShapes)
{
    std::vector<Finding> fs{
        {"src/cache/a.cc", 3, "no-float", "msg \"quoted\"",
         "float x;"}};
    const std::string text = renderText(fs, 1);
    EXPECT_NE(text.find("src/cache/a.cc:3: [no-float]"),
              std::string::npos);
    EXPECT_NE(text.find("1 files scanned, 1 finding(s)"),
              std::string::npos);
    const std::string js = renderJson(fs);
    EXPECT_NE(js.find("\"rule\": \"no-float\""), std::string::npos);
    EXPECT_NE(js.find("\\\"quoted\\\""), std::string::npos);
    const std::string sarif = renderSarif(fs);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"no-float\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
}

// ---------------------------------------------------- Fixture: rules

TEST(LintFixtures, TokenRulesFireAndBlindSpotsStayQuiet)
{
    auto fs = lintFixture("rules");
    EXPECT_EQ(countRule(fs, "no-unseeded-rand"), 1u);
    EXPECT_TRUE(hasFinding(fs, "no-unseeded-rand",
                           "src/cache/bad_rand.cc", "rand"));
    EXPECT_EQ(countRule(fs, "clock-routing"), 2u);
    EXPECT_TRUE(hasFinding(fs, "clock-routing",
                           "src/cache/bad_clock.cc", "steady_clock"));
    EXPECT_TRUE(hasFinding(fs, "clock-routing", "bench/bad_walltime.cc",
                           "gettimeofday"));
    EXPECT_EQ(countRule(fs, "rng-routing"), 1u);
    EXPECT_TRUE(hasFinding(fs, "rng-routing", "src/cache/bad_rng.cc",
                           "mt19937"));
    EXPECT_EQ(countRule(fs, "unordered-iter"), 1u);
    EXPECT_TRUE(hasFinding(fs, "unordered-iter",
                           "src/sim/unordered_iter.cc",
                           "cells.begin"));
    EXPECT_EQ(countRule(fs, "raw-new-delete"), 2u);
    EXPECT_EQ(countRule(fs, "no-float"), 2u);
    EXPECT_EQ(countRule(fs, "io-routing"), 1u);
    EXPECT_EQ(countRule(fs, "env-routing"), 1u);
    EXPECT_EQ(countRule(fs, "hot-path-container"), 2u);
    EXPECT_EQ(countRule(fs, "concurrency-routing"), 2u);
    // The blind-spot file (banned words only in strings/comments/raw
    // strings), the out-of-scope tools file, and the sanctioned
    // clock/io sinks (paths ending in sim/profiler.cc and
    // driver/telemetry.cc) must stay silent.
    for (const Finding &f : fs) {
        EXPECT_EQ(f.file.find("quiet_blindspots"), std::string::npos)
            << f.file << ": " << f.message;
        EXPECT_EQ(f.file.find("ok_wallclock"), std::string::npos)
            << f.file << ": " << f.message;
        EXPECT_NE(f.file, "src/sim/profiler.cc")
            << f.file << ": " << f.message;
        EXPECT_NE(f.file, "src/driver/telemetry.cc")
            << f.file << ": " << f.message;
    }
    EXPECT_EQ(fs.size(), 15u);
}

// ------------------------------------------------- Fixture: layering

TEST(LintFixtures, LayeringBackEdgeCycleAndUnusedInclude)
{
    auto fs = lintFixture("layering");
    EXPECT_TRUE(hasFinding(fs, "layering-dag",
                           "src/cache/bad_layer.cc",
                           "cache may not depend on driver"));
    EXPECT_TRUE(hasFinding(fs, "layering-dag", "src/sim/cycle_b.hh",
                           "include cycle"));
    EXPECT_TRUE(hasFinding(fs, "unused-include",
                           "src/noc/stale_include.cc",
                           "src/sim/cycle_a.hh"));
    EXPECT_EQ(fs.size(), 3u);
}

// ------------------------------------------------- Fixture: stat-xref

TEST(LintFixtures, StatXrefAndSchemaXrefAcrossArtifacts)
{
    auto fs = lintFixture("statxref");
    // C++ side: dangling lookup and impossible selector.
    EXPECT_TRUE(hasFinding(fs, "stat-xref", "src/system/reader.cc",
                           "llc.misses"));
    EXPECT_TRUE(hasFinding(fs, "stat-xref", "src/system/reader.cc",
                           "bogus.prefix."));
    // Scenario side: selector, dangling column stat, bad keys.
    EXPECT_TRUE(hasFinding(fs, "stat-xref",
                           "examples/scenarios/bad.json",
                           "nope.prefix."));
    EXPECT_TRUE(hasFinding(fs, "stat-xref",
                           "examples/scenarios/bad.json",
                           "sys.nope.stat"));
    EXPECT_TRUE(hasFinding(fs, "schema-xref", "bad.json",
                           "bogusKey"));
    EXPECT_TRUE(
        hasFinding(fs, "schema-xref", "bad.json", "\"nope\""));
    EXPECT_TRUE(hasFinding(fs, "schema-xref", "bad.json", "wayz"));
    EXPECT_TRUE(
        hasFinding(fs, "schema-xref", "bad.json", "notdotted"));
    EXPECT_EQ(countRule(fs, "stat-xref"), 4u);
    EXPECT_EQ(countRule(fs, "schema-xref"), 4u);
    EXPECT_EQ(fs.size(), 8u);
}

// ------------------------------------------------ KV phase columns

TEST(LintStatXref, KvPhaseColumnsCheckAgainstLoadTraceLabels)
{
    // The apps.kv.<phase> stat names interpolate the phase at
    // runtime, so the generic binding pattern (apps.kv.*.p95)
    // matches any phase string; the pass must instead compare the
    // segment against the addPhase() labels of the presets.
    const std::string spec = R"(
void parseSpec(const Json &json, Spec &spec)
{
    ObjectReader r(json, "");
    r.get("name");
    r.get("output");
    ObjectReader o(json, "output");
    o.get("columns");
}
void parseColumn(const Json &item, const std::string &path)
{
    ObjectReader c(item, path);
    c.get("key");
}
const std::vector<std::string> &columnKeys()
{
    static const std::vector<std::string> kKeys = {"tailWorst"};
    return kKeys;
}
)";
    const std::string config = R"(
void applyConfigJson(const Json &json, SystemConfig &cfg)
{
    ObjectReader r(json, "");
    setU32(r, "epochTicks", &cfg.epochTicks);
}
)";
    const std::string binder = R"(
void registerKvStats(StatRegistry &reg, const std::string &phase)
{
    reg.addFormula("apps.kv." + phase + ".p95", "phase tail", fn);
}
)";
    const std::string trace = R"(
LoadTrace flashCrowd(Tick warmup, Tick measure)
{
    LoadTrace t;
    t.addPhase("before", 100, 1.0, 1.0);
    t.addPhase("spike", 30, 4.0, 4.0);
    t.addPhase("after", 70, 1.0, 1.0);
    return t;
}
)";
    const std::string scenario = R"({
  "name": "kv phase fixture",
  "output": {
    "columns": [
      {"key": "apps.kv.spike.p95"},
      {"key": "apps.kv.spoke.p95"},
      {"key": "tailWorst"}
    ]
  }
})";

    std::vector<std::pair<std::string, std::string>> files = {
        {"src/driver/spec.cc", spec},
        {"src/system/config_json.cc", config},
        {"src/system/binder.cc", binder},
        {"src/workloads/kv/load_trace.cc", trace},
        {"examples/scenarios/kv.json", scenario}};
    auto fs = lintMemory(files);
    EXPECT_TRUE(hasFinding(fs, "stat-xref", "kv.json",
                           "phase \"spoke\""));
    EXPECT_TRUE(hasFinding(fs, "stat-xref", "kv.json",
                           "known: after|before|spike"));
    EXPECT_EQ(countRule(fs, "stat-xref"), 1u);
    EXPECT_EQ(countRule(fs, "schema-xref"), 0u);

    // Without a load_trace.cc in the scan set the phase check
    // degrades away (the binding pattern still matches), rather
    // than flagging every phase as unknown.
    files.erase(files.begin() + 3);
    auto fs2 = lintMemory(files);
    EXPECT_EQ(countRule(fs2, "stat-xref"), 0u);
    EXPECT_EQ(countRule(fs2, "schema-xref"), 0u);
}

// ----------------------------------------------- Fixture: suppressions

TEST(LintFixtures, SuppressionAuditFlagsStaleAndUnjustified)
{
    auto fs = lintFixture("suppress");
    EXPECT_EQ(countRule(fs, "suppression-audit"), 2u);
    EXPECT_TRUE(hasFinding(fs, "suppression-audit", "waived.cc",
                           "stale waiver"));
    EXPECT_TRUE(hasFinding(fs, "suppression-audit", "waived.cc",
                           "no justification"));
    EXPECT_EQ(fs.size(), 2u);
}

} // namespace
} // namespace jlint
