/**
 * @file
 * Unit tests for the mesh NoC and the memory system.
 */

#include <gtest/gtest.h>

#include "src/mem/memory.hh"
#include "src/noc/mesh.hh"
#include "src/sim/logging.hh"

namespace jumanji {
namespace {

MeshParams
paperMesh()
{
    MeshParams p;
    p.cols = 5;
    p.rows = 4;
    p.routerDelay = 2;
    p.linkDelay = 1;
    return p;
}

// --------------------------------------------------------------- Mesh

TEST(Mesh, Geometry)
{
    MeshTopology mesh(paperMesh());
    EXPECT_EQ(mesh.numTiles(), 20u);
    EXPECT_EQ(mesh.xOf(7), 2u);
    EXPECT_EQ(mesh.yOf(7), 1u);
}

TEST(Mesh, ManhattanHops)
{
    MeshTopology mesh(paperMesh());
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 4), 4u);   // across the top row
    EXPECT_EQ(mesh.hops(0, 19), 7u);  // corner to corner: 4 + 3
    EXPECT_EQ(mesh.hops(7, 12), 1u);  // adjacent rows, same column
}

TEST(Mesh, HopsSymmetric)
{
    MeshTopology mesh(paperMesh());
    for (std::uint32_t a = 0; a < 20; a++)
        for (std::uint32_t b = 0; b < 20; b++)
            EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
}

TEST(Mesh, TraversalLatency)
{
    MeshTopology mesh(paperMesh());
    // 3 hops x (2-cycle router + 1-cycle link) = 9 cycles one way.
    EXPECT_EQ(mesh.traversalLatency(3), 9u);
    EXPECT_EQ(mesh.roundTrip(0, 19), 2u * 7u * 3u);
    EXPECT_EQ(mesh.roundTrip(5, 5), 0u);
}

TEST(Mesh, TilesByDistanceSortedAndComplete)
{
    MeshTopology mesh(paperMesh());
    auto order = mesh.tilesByDistance(0);
    EXPECT_EQ(order.size(), 20u);
    EXPECT_EQ(order.front(), 0u);
    for (std::size_t i = 1; i < order.size(); i++)
        EXPECT_GE(mesh.hops(0, order[i]), mesh.hops(0, order[i - 1]));
    // All tiles present exactly once.
    std::vector<bool> seen(20, false);
    for (auto t : order) seen[t] = true;
    for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Mesh, TilesByDistanceDeterministicTieBreak)
{
    MeshTopology mesh(paperMesh());
    auto a = mesh.tilesByDistance(7);
    auto b = mesh.tilesByDistance(7);
    EXPECT_EQ(a, b);
}

TEST(Mesh, CornerTiles)
{
    MeshTopology mesh(paperMesh());
    EXPECT_EQ(mesh.tileAt(0, 0), 0u);
    EXPECT_EQ(mesh.tileAt(4, 0), 4u);
    EXPECT_EQ(mesh.tileAt(0, 3), 15u);
    EXPECT_EQ(mesh.tileAt(4, 3), 19u);
    // Clamped when out of range.
    EXPECT_EQ(mesh.tileAt(100, 100), 19u);
}

TEST(Mesh, RejectsZeroDims)
{
    MeshParams p;
    p.cols = 0;
    EXPECT_THROW(MeshTopology{p}, FatalError);
}

TEST(Mesh, RouterDelaySensitivity)
{
    // Fig. 18's knob: traversal scales with router delay.
    for (Tick router : {1u, 2u, 3u}) {
        MeshParams p = paperMesh();
        p.routerDelay = router;
        MeshTopology mesh(p);
        EXPECT_EQ(mesh.traversalLatency(2), 2 * (router + 1));
    }
}

TEST(Mesh, TraverseWithoutContentionMatchesLatency)
{
    MeshTopology mesh(paperMesh());
    EXPECT_EQ(mesh.traverse(100, 0, 19, 4),
              100 + mesh.traversalLatency(7));
    EXPECT_EQ(mesh.linkWaitCycles(), 0u);
}

TEST(Mesh, TraverseContentionSerializesSharedLinks)
{
    MeshParams p = paperMesh();
    p.modelLinkContention = true;
    MeshTopology mesh(p);

    // Two messages entering the same first link at the same tick:
    // the second waits for the first's flits.
    Tick a = mesh.traverse(100, 0, 4, 4);
    Tick b = mesh.traverse(100, 0, 4, 4);
    EXPECT_GT(b, a);
    EXPECT_GT(mesh.linkWaitCycles(), 0u);
}

TEST(Mesh, TraverseDisjointRoutesDoNotInterfere)
{
    MeshParams p = paperMesh();
    p.modelLinkContention = true;
    MeshTopology mesh(p);

    // Opposite corners moving in disjoint directions share no links.
    Tick a = mesh.traverse(100, 0, 4, 4);   // top row, eastbound
    Tick b = mesh.traverse(100, 19, 15, 4); // bottom row, westbound
    EXPECT_EQ(a, 100 + mesh.traversalLatency(4));
    EXPECT_EQ(b, 100 + mesh.traversalLatency(4));
}

TEST(Mesh, TraverseZeroHopsInstant)
{
    MeshParams p = paperMesh();
    p.modelLinkContention = true;
    MeshTopology mesh(p);
    EXPECT_EQ(mesh.traverse(42, 7, 7, 4), 42u);
}

// ------------------------------------------------------------- Memory

TEST(Memory, FixedLatencyWhenIdle)
{
    MeshTopology mesh(paperMesh());
    MemoryParams params;
    params.accessLatency = 120;
    MemorySystem mem(params, mesh);
    auto r = mem.access(1000, 42, 0, false);
    EXPECT_EQ(r.latency, 120u + r.queueDelay);
}

TEST(Memory, ControllerMappingStable)
{
    MeshTopology mesh(paperMesh());
    MemorySystem mem(MemoryParams{}, mesh);
    for (LineAddr l = 0; l < 100; l++)
        EXPECT_EQ(mem.controllerFor(l), mem.controllerFor(l));
}

TEST(Memory, ControllersSpreadAcrossLines)
{
    MeshTopology mesh(paperMesh());
    MemoryParams params;
    params.controllers = 4;
    MemorySystem mem(params, mesh);
    std::vector<int> counts(4, 0);
    for (LineAddr l = 0; l < 4000; l++) counts[mem.controllerFor(l)]++;
    for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Memory, ControllersAtCorners)
{
    MeshTopology mesh(paperMesh());
    MemoryParams params;
    params.controllers = 4;
    MemorySystem mem(params, mesh);
    std::vector<std::uint32_t> tiles;
    for (std::uint32_t mc = 0; mc < 4; mc++)
        tiles.push_back(mem.controllerTile(mc));
    std::sort(tiles.begin(), tiles.end());
    EXPECT_EQ(tiles, (std::vector<std::uint32_t>{0, 4, 15, 19}));
}

TEST(Memory, BatchTrafficQueuesPerVm)
{
    MeshTopology mesh(paperMesh());
    MemoryParams params;
    params.serviceInterval = 4;
    params.partitionBandwidth = true;
    MemorySystem mem(params, mesh);
    mem.setActiveVms(4);

    // Find two lines on the same controller.
    LineAddr a = 0, b = 1;
    while (mem.controllerFor(b) != mem.controllerFor(a)) b++;

    auto first = mem.access(100, a, /*vm=*/0, false);
    auto second = mem.access(100, b, /*vm=*/0, false);
    EXPECT_EQ(first.queueDelay, 0u);
    // Second access from the same VM waits a full scaled interval.
    EXPECT_EQ(second.queueDelay, 4u * 4u);
}

TEST(Memory, DifferentVmsDoNotQueueOnEachOther)
{
    MeshTopology mesh(paperMesh());
    MemoryParams params;
    params.partitionBandwidth = true;
    MemorySystem mem(params, mesh);
    mem.setActiveVms(4);

    LineAddr a = 0, b = 1;
    while (mem.controllerFor(b) != mem.controllerFor(a)) b++;

    mem.access(100, a, /*vm=*/0, false);
    auto other = mem.access(100, b, /*vm=*/1, false);
    EXPECT_EQ(other.queueDelay, 0u);
}

TEST(Memory, LatencyCriticalBypassesBatchQueue)
{
    MeshTopology mesh(paperMesh());
    MemoryParams params;
    params.partitionBandwidth = true;
    MemorySystem mem(params, mesh);
    mem.setActiveVms(4);

    LineAddr a = 0, b = 1;
    while (mem.controllerFor(b) != mem.controllerFor(a)) b++;

    // Saturate VM 0's batch queue.
    for (int i = 0; i < 10; i++) mem.access(100, a, 0, false);
    // An LC access from the same VM is served immediately.
    auto lc = mem.access(100, b, 0, true);
    EXPECT_EQ(lc.queueDelay, 0u);
}

TEST(Memory, LcTrafficQueuesBehindLcOnly)
{
    MeshTopology mesh(paperMesh());
    MemoryParams params;
    params.serviceInterval = 4;
    MemorySystem mem(params, mesh);

    LineAddr a = 0, b = 1;
    while (mem.controllerFor(b) != mem.controllerFor(a)) b++;

    auto first = mem.access(100, a, 0, true);
    auto second = mem.access(100, b, 1, true);
    EXPECT_EQ(first.queueDelay, 0u);
    EXPECT_EQ(second.queueDelay, 4u);
}

TEST(Memory, UnpartitionedSharesOneQueue)
{
    MeshTopology mesh(paperMesh());
    MemoryParams params;
    params.serviceInterval = 4;
    params.partitionBandwidth = false;
    MemorySystem mem(params, mesh);

    LineAddr a = 0, b = 1;
    while (mem.controllerFor(b) != mem.controllerFor(a)) b++;

    mem.access(100, a, 0, false);
    auto second = mem.access(100, b, 3, false);
    EXPECT_EQ(second.queueDelay, 4u);
}

} // namespace
} // namespace jumanji
