/**
 * @file
 * Scenario-layer tests: config JSON round-trips under the foldConfig
 * fingerprint, schema violations fail with precise "field: reason"
 * diagnostics, the C++ spec builders in bench/specs.hh and the
 * shipped examples/scenarios/ files are the same specs, expansion
 * order is stable, and a spec-driven run is byte-identical — results
 * *and* rendered table — to the handwritten sweep it replaced.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/specs.hh"
#include "src/driver/orchestrator.hh"
#include "src/driver/spec.hh"
#include "src/sim/fingerprint.hh"
#include "src/sim/json.hh"
#include "src/sim/logging.hh"
#include "src/system/config.hh"
#include "src/system/harness.hh"

namespace jumanji {
namespace {

using driver::CalibrationMode;
using driver::ExperimentSpec;
using driver::expandSpec;
using driver::SpecColumn;
using driver::SpecGroup;
using driver::SpecPlan;
using driver::SpecRun;

std::uint64_t
configFingerprint(const SystemConfig &cfg)
{
    Fingerprint fp;
    foldConfig(fp, cfg);
    return fp.value();
}

/** what() of the FatalError thrown by @p fn (fails if none). */
template <typename Fn>
std::string
fatalMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const FatalError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected FatalError";
    return "";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(ConfigJson, RoundTripPreservesTheFoldConfigFingerprint)
{
    std::vector<SystemConfig> configs = {SystemConfig::paperDefault(),
                                         SystemConfig::benchScaled(),
                                         SystemConfig::testTiny()};
    // A config with every kind of non-default: seed, ticks, doubles,
    // bools, and the timeline selector list.
    SystemConfig mutated = SystemConfig::benchScaled();
    mutated.seed = 77;
    mutated.epochTicks = 123456;
    mutated.measureTicks = 9876543;
    mutated.controller.percentile = 99.0;
    mutated.hullCurves = false;
    mutated.timelineStats = {"sys.tail.", "llc."};
    configs.push_back(mutated);

    for (const SystemConfig &cfg : configs) {
        JsonValue json = cfg.toJson();
        SystemConfig back = SystemConfig::fromJson(json);
        EXPECT_EQ(configFingerprint(back), configFingerprint(cfg));
        // The serialization itself is a normal form too.
        EXPECT_EQ(back.toJson().dump(2), json.dump(2));
    }
}

TEST(ConfigJson, UnknownKeysAreFatalWithTheirFullPath)
{
    EXPECT_EQ(fatalMessage([] {
                  SystemConfig::fromJson(JsonValue::parse(
                      "{\"llc\": {\"wayz\": 8}}", "test"));
              }),
              "fatal: llc.wayz: unknown key");
    EXPECT_EQ(fatalMessage([] {
                  SystemConfig::fromJson(
                      JsonValue::parse("{\"bogus\": 1}", "test"));
              }),
              "fatal: bogus: unknown key");
}

TEST(ConfigJson, OutOfRangeValuesNameTheirBound)
{
    EXPECT_EQ(fatalMessage([] {
                  SystemConfig::fromJson(JsonValue::parse(
                      "{\"llc\": {\"ways\": 100}}", "test"));
              }),
              "fatal: llc.ways: must be <= 64");
    EXPECT_EQ(fatalMessage([] {
                  SystemConfig::fromJson(
                      JsonValue::parse("{\"seed\": 0}", "test"));
              }),
              "fatal: seed: must be >= 1");
}

TEST(ConfigJson, GeometryMismatchNamesBothSides)
{
    // Default mesh is 5x4 = 20 tiles; 16 banks cannot tile it.
    EXPECT_EQ(fatalMessage([] {
                  SystemConfig::fromJson(JsonValue::parse(
                      "{\"llc\": {\"banks\": 16}}", "test"));
              }),
              "fatal: llc.banks: 16 banks but mesh is 5x4 = 20 tiles "
              "(banks must equal mesh tiles)");
}

TEST(ConfigJson, ControllerThresholdOrderingIsValidated)
{
    // lowFrac raised past the default highFrac = 0.95.
    std::string msg = fatalMessage([] {
        SystemConfig::fromJson(JsonValue::parse(
            "{\"controller\": {\"lowFrac\": 0.96}}", "test"));
    });
    EXPECT_EQ(msg.find("fatal: controller.lowFrac: must be < "
                       "controller.highFrac"),
              0u)
        << msg;
}

TEST(Spec, BuildersMatchTheShippedScenarioFiles)
{
    const std::string root = JUMANJI_SOURCE_DIR;
    struct Pair
    {
        ExperimentSpec builder;
        std::string file;
    };
    std::vector<Pair> pairs = {
        {bench::specs::fig13Small(),
         root + "/examples/scenarios/fig13_small.json"},
        {bench::specs::epochLoadGrid(),
         root + "/examples/scenarios/epoch_load_grid.json"},
        {bench::specs::kvFlashCrowd(),
         root + "/examples/scenarios/kv_flash_crowd.json"},
    };
    for (const Pair &p : pairs) {
        ExperimentSpec fromFile = ExperimentSpec::fromJson(
            JsonValue::parse(readFile(p.file), p.file));
        // toJson is canonical: equal dumps == equivalent specs.
        EXPECT_EQ(fromFile.toJson().dump(2), p.builder.toJson().dump(2))
            << p.file << " drifted from its bench/specs.hh builder";
    }
}

TEST(Spec, JsonRoundTripIsANormalForm)
{
    std::vector<ExperimentSpec> specs = {
        bench::specs::fig13Small(),    bench::specs::fig09Sensitivity(),
        bench::specs::fig16IdealBatch(), bench::specs::fig17VmScaling(),
        bench::specs::fig18NocSensitivity(),
        bench::specs::ablationVariants(), bench::specs::epochLoadGrid(),
        bench::specs::kvFlashCrowd(),
    };
    for (const ExperimentSpec &spec : specs) {
        std::string canonical = spec.toJson().dump(2);
        ExperimentSpec back = ExperimentSpec::fromJson(spec.toJson());
        EXPECT_EQ(back.toJson().dump(2), canonical)
            << spec.name << ": fromJson(toJson()) is not identity";
    }
}

TEST(Spec, ValidationRejectsShapeMismatches)
{
    ExperimentSpec base = bench::specs::fig13Small();

    ExperimentSpec twoVariants = base;
    twoVariants.variants.push_back(driver::SpecVariant{});
    EXPECT_EQ(fatalMessage([&] { expandSpec(twoVariants); }),
              "fatal: output.layout: design-table requires exactly one "
              "variant (got 2)");

    ExperimentSpec variantTable = bench::specs::fig18NocSensitivity();
    variantTable.designs.push_back(LlcDesign::Adaptive);
    EXPECT_EQ(fatalMessage([&] { expandSpec(variantTable); }),
              "fatal: output.layout: variant-table requires exactly "
              "one design (got 2)");

    ExperimentSpec noSections = base;
    noSections.output.sectionLabel.clear();
    EXPECT_EQ(fatalMessage([&] { expandSpec(noSections); }),
              "fatal: output.sectionLabel: required when the grid has "
              "more than one (load, group) section");

    // Schema-level rejections, through the document parser.
    EXPECT_EQ(fatalMessage([] {
                  ExperimentSpec::fromJson(JsonValue::parse("{}", "t"));
              }),
              "fatal: name: missing required key");

    ExperimentSpec badColumn = base;
    badColumn.output.columns[0].key = "bogus";
    EXPECT_EQ(
        fatalMessage([&] {
            ExperimentSpec::fromJson(badColumn.toJson());
        }),
        "fatal: output.columns[0].key: unknown column key \"bogus\" "
        "(tailMean|tailWorst|batchWS|batchWSMean|attackers, or a "
        "dotted stat name)");
}

TEST(Spec, ExpansionOrderIsStableAndSeedsDeriveFromTheBase)
{
    ExperimentSpec spec;
    spec.name = "order";
    spec.preset = "testTiny";
    spec.seed = {false, 42};
    spec.mixes = {2, false, 2, 2, true};
    spec.designs = {LlcDesign::Adaptive};
    spec.loads = {LoadLevel::High, LoadLevel::Low};
    spec.groups = {{"xapian", {"xapian"}}};
    spec.variants = {{"a", JsonValue(), 0}, {"b", JsonValue(), 0}};
    spec.output.title = "t";
    spec.output.layout = "variant-table";
    spec.output.sectionLabel = "[{load}]";
    spec.output.columns = {{"tailMean", "tail"}};

    SpecPlan plan = expandSpec(spec);
    EXPECT_EQ(plan.mixCount, 2u);
    ASSERT_EQ(plan.graph.size(), 8u);

    // variants -> loads -> groups -> mixes, with the documented
    // per-mix seed stride.
    const char *expected[] = {
        "a/high/xapian/mix0", "a/high/xapian/mix1",
        "a/low/xapian/mix0",  "a/low/xapian/mix1",
        "b/high/xapian/mix0", "b/high/xapian/mix1",
        "b/low/xapian/mix0",  "b/low/xapian/mix1",
    };
    for (driver::JobId id = 0; id < plan.graph.size(); id++) {
        EXPECT_EQ(plan.graph.job(id).label, expected[id]);
        EXPECT_EQ(plan.graph.job(id).config.seed,
                  42u + (id % 2) * 1000003ull);
    }
    for (std::size_t v = 0; v < 2; v++)
        for (std::size_t l = 0; l < 2; l++)
            for (std::size_t m = 0; m < 2; m++)
                EXPECT_EQ(plan.jobIndex(v, l, 0, m, spec),
                          v * 4 + l * 2 + m);

    // Shared mode: one calibration per (variant, LC app), planned at
    // the app's first-seen job, which carries the m=0 (base) seed.
    ASSERT_EQ(plan.calibrationPlan.size(), 2u);
    for (const driver::CalibrationJob &job : plan.calibrationPlan) {
        EXPECT_EQ(job.lcName, "xapian");
        EXPECT_EQ(job.config.seed, 42u);
    }

    // Same spec, same plan: labels and configs are reproducible.
    SpecPlan again = expandSpec(spec);
    ASSERT_EQ(again.graph.size(), plan.graph.size());
    for (driver::JobId id = 0; id < plan.graph.size(); id++) {
        EXPECT_EQ(again.graph.job(id).label, plan.graph.job(id).label);
        EXPECT_EQ(configFingerprint(again.graph.job(id).config),
                  configFingerprint(plan.graph.job(id).config));
    }
}

/** The fig13-small grid shrunk to test size (the test_driver idiom). */
ExperimentSpec
tinyFig13Spec()
{
    ExperimentSpec spec;
    spec.name = "fig13-tiny";
    spec.preset = "benchScaled";
    spec.overrides = JsonValue::parse(
        "{\"llc\": {\"setsPerBank\": 32}, \"capacityScale\": 0.0625, "
        "\"epochTicks\": 50000, \"warmupTicks\": 100000, "
        "\"measureTicks\": 200000}",
        "tinyFig13Spec");
    spec.seed = {false, 42};
    spec.mixes = {2, false, 4, 4, true};
    spec.designs = {LlcDesign::Adaptive, LlcDesign::Jumanji};
    spec.loads = {LoadLevel::High};
    spec.groups = {{"xapian", {"xapian"}}, {"silo", {"silo"}}};
    spec.calibration = CalibrationMode::Shared;
    spec.output.title = "Tiny Figure 13";
    spec.output.caption = "spec-vs-handwritten byte-identity probe";
    spec.output.sectionLabel = "[{load} load, LC={group}, {mixes} mixes]";
    spec.output.staticRow = true;
    spec.output.columns = {{"tailMean", "tail(mean)"},
                           {"tailWorst", "tail(worst)"},
                           {"batchWS", "batchWS(gmean)"},
                           {"attackers", "attackers"}};
    return spec;
}

/** The pre-spec fig13 printGroup, verbatim, rendered to a string. */
std::string
handwrittenTable(const ExperimentSpec &spec,
                 const std::vector<std::vector<MixResult>> &perGroup)
{
    std::string out;
    char buf[256];
    auto emit = [&](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        out += buf;
    };
    for (std::size_t g = 0; g < spec.groups.size(); g++) {
        const std::vector<MixResult> &results = perGroup[g];
        emit("\n[%s load, LC=%s, %u mixes]\n", "high",
             spec.groups[g].label.c_str(),
             static_cast<unsigned>(results.size()));
        emit("%-20s %12s %12s %12s %12s\n", "design", "tail(mean)",
             "tail(worst)", "batchWS(gmean)", "attackers");
        std::vector<LlcDesign> rows = {LlcDesign::Static};
        for (LlcDesign d : spec.designs) rows.push_back(d);
        std::map<LlcDesign, double> speedups = gmeanSpeedups(results);
        for (LlcDesign d : rows) {
            double meanTail = 0.0, worstTail = 0.0, attackers = 0.0;
            for (const MixResult &mix : results) {
                const DesignResult &dr = mix.of(d);
                meanTail += dr.run.stat("sys.tail.meanRatio");
                worstTail = std::max(
                    worstTail, dr.run.stat("sys.tail.worstRatio"));
                attackers += dr.run.stat("sys.attackersPerAccess");
            }
            meanTail /= static_cast<double>(results.size());
            attackers /= static_cast<double>(results.size());
            emit("%-20s %12.3f %12.3f %12.3f %12.3f\n",
                 llcDesignName(d), meanTail, worstTail, speedups[d],
                 attackers);
        }
    }
    return out;
}

TEST(Spec, RunIsByteIdenticalToTheHandwrittenSweep)
{
    ExperimentSpec spec = tinyFig13Spec();

    // The handwritten side: a shared serial harness, one sweep per
    // group — exactly the pre-spec bench structure.
    SystemConfig base = SystemConfig::benchScaled();
    base.llc.setsPerBank = 32;
    base.capacityScale = 0.0625;
    base.epochTicks = 50000;
    base.warmupTicks = 100000;
    base.measureTicks = 200000;
    base.seed = 42;
    ExperimentHarness harness(base);
    std::vector<std::vector<MixResult>> perGroup;
    std::vector<MixResult> handwritten;
    for (const SpecGroup &group : spec.groups) {
        std::vector<MixResult> results = harness.sweep(
            group.lcNames, 2, spec.designs, LoadLevel::High);
        for (const MixResult &r : results) handwritten.push_back(r);
        perGroup.push_back(std::move(results));
    }

    // The spec side, through the parallel orchestrator.
    driver::Orchestrator::Options opts;
    opts.jobs = 2;
    driver::Orchestrator orch(opts);
    SpecRun run = driver::runSpec(spec, orch);

    EXPECT_EQ(configFingerprint(run.plan.base), configFingerprint(base));
    EXPECT_EQ(fingerprintResults(run.results),
              fingerprintResults(handwritten))
        << "spec expansion diverged from the handwritten sweep";
    EXPECT_EQ(driver::renderSpecTable(spec, run),
              handwrittenTable(spec, perGroup))
        << "rendered table diverged from the handwritten formatter";
}

TEST(Spec, SeedFromEnvParsesTheFullRangeAndFallsBack)
{
    // In-process env edits: this is the only test touching the
    // variable, and it restores "unset" on every path.
    struct EnvGuard
    {
        ~EnvGuard() { unsetenv("JUMANJI_SEED"); }
    } guard;

    unsetenv("JUMANJI_SEED");
    EXPECT_EQ(driver::seedFromEnv(7), 7u);

    setenv("JUMANJI_SEED", "123", 1);
    EXPECT_EQ(driver::seedFromEnv(7), 123u);

    setenv("JUMANJI_SEED", "18446744073709551615", 1);
    EXPECT_EQ(driver::seedFromEnv(7), 0xffffffffffffffffull);

    // 0 is reserved as "unset"; junk and trailing garbage fall back
    // (and warn once — not asserted here, the warning is logging).
    for (const char *bad : {"0", "junk", "12x", ""}) {
        setenv("JUMANJI_SEED", bad, 1);
        EXPECT_EQ(driver::seedFromEnv(7), 7u) << "value: " << bad;
    }
}

} // namespace
} // namespace jumanji
