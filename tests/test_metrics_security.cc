/**
 * @file
 * Unit tests for the metrics layer (energy, speedup, fixed work) and
 * the security attack applications.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/dnuca/vtb.hh"
#include "src/metrics/energy.hh"
#include "src/metrics/speedup.hh"
#include "src/security/attacks.hh"
#include "src/sim/logging.hh"

namespace jumanji {
namespace {

// -------------------------------------------------------------- Energy

TEST(Energy, ZeroCountersZeroEnergy)
{
    EnergyBreakdown e = dataMovementEnergy(AccessCounters{});
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(Energy, PerLevelAttribution)
{
    AccessCounters c;
    c.l1Hits = 10;
    c.llcHits = 4;
    c.nocHops = 8;
    c.memAccesses = 1;
    EnergyParams p;
    EnergyBreakdown e = dataMovementEnergy(c, p);
    EXPECT_DOUBLE_EQ(e.l1, 10 * p.l1AccessPj);
    EXPECT_DOUBLE_EQ(e.llc, 4 * p.llcBankAccessPj);
    EXPECT_DOUBLE_EQ(e.noc, 8 * p.nocHopPj);
    EXPECT_DOUBLE_EQ(e.mem, 1 * p.memAccessPj);
    EXPECT_DOUBLE_EQ(e.total(), e.l1 + e.l2 + e.llc + e.noc + e.mem);
}

TEST(Energy, MemoryDominatesPerEvent)
{
    // Sanity: one DRAM access costs more than one of anything else.
    EnergyParams p;
    EXPECT_GT(p.memAccessPj, p.llcBankAccessPj);
    EXPECT_GT(p.llcBankAccessPj, p.l2AccessPj);
    EXPECT_GT(p.l2AccessPj, p.l1AccessPj);
}

TEST(Energy, BreakdownAccumulates)
{
    AccessCounters c;
    c.llcHits = 1;
    EnergyBreakdown a = dataMovementEnergy(c);
    EnergyBreakdown b = dataMovementEnergy(c);
    a += b;
    EXPECT_DOUBLE_EQ(a.llc, 2 * EnergyParams{}.llcBankAccessPj);
}

TEST(Energy, FormatMentionsAllLevels)
{
    std::string s = formatEnergy(EnergyBreakdown{});
    EXPECT_NE(s.find("L1"), std::string::npos);
    EXPECT_NE(s.find("NoC"), std::string::npos);
    EXPECT_NE(s.find("Mem"), std::string::npos);
}

// ------------------------------------------------------------- Speedup

AppProgress
progress(std::uint64_t instrs, Tick cycles)
{
    AppProgress p;
    p.instrs = instrs;
    p.cycles = cycles;
    return p;
}

TEST(Speedup, WeightedSpeedupIdentity)
{
    std::vector<AppProgress> run = {progress(100, 100),
                                    progress(300, 100)};
    EXPECT_DOUBLE_EQ(weightedSpeedup(run, run), 1.0);
    EXPECT_DOUBLE_EQ(gmeanSpeedup(run, run), 1.0);
}

TEST(Speedup, WeightedSpeedupAverageOfRatios)
{
    std::vector<AppProgress> mix = {progress(200, 100),
                                    progress(100, 100)};
    std::vector<AppProgress> ref = {progress(100, 100),
                                    progress(100, 100)};
    EXPECT_DOUBLE_EQ(weightedSpeedup(mix, ref), 1.5);
}

TEST(Speedup, GmeanOfRatios)
{
    std::vector<AppProgress> mix = {progress(400, 100),
                                    progress(100, 100)};
    std::vector<AppProgress> ref = {progress(100, 100),
                                    progress(100, 100)};
    EXPECT_DOUBLE_EQ(gmeanSpeedup(mix, ref), 2.0); // sqrt(4 * 1)
}

TEST(Speedup, MismatchedSizesFatal)
{
    std::vector<AppProgress> a = {progress(1, 1)};
    std::vector<AppProgress> b;
    EXPECT_THROW(weightedSpeedup(a, b), FatalError);
    EXPECT_THROW(gmeanSpeedup(b, b), FatalError);
}

TEST(Speedup, GmeanHelper)
{
    EXPECT_DOUBLE_EQ(gmean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(gmean({}), 1.0);
    EXPECT_DOUBLE_EQ(gmean({1.0}), 1.0);
}

TEST(FixedWorkTracker, TracksCompletions)
{
    FixedWorkTracker tracker({100, 200});
    EXPECT_FALSE(tracker.allDone());
    tracker.update(0, 150, 1000);
    EXPECT_EQ(tracker.completionTick(0), 1000u);
    EXPECT_FALSE(tracker.allDone());
    tracker.update(1, 200, 2000);
    EXPECT_TRUE(tracker.allDone());
    // A later update does not change the completion tick.
    tracker.update(0, 400, 9000);
    EXPECT_EQ(tracker.completionTick(0), 1000u);
}

TEST(FixedWorkTracker, OutOfRangePanics)
{
    FixedWorkTracker tracker({100});
    EXPECT_THROW(tracker.update(5, 1, 1), PanicError);
}

// ------------------------------------------------------------ Attacks

TEST(Attacks, LinesTargetBankUnderStripedDescriptor)
{
    const std::uint32_t banks = 12;
    PlacementDescriptor desc;
    std::vector<BankId> all;
    for (std::uint32_t b = 0; b < banks; b++)
        all.push_back(static_cast<BankId>(b));
    desc.fillStriped(all);

    for (BankId target : {0, 5, 11}) {
        auto lines = linesTargetingBank(1 << 20, target, banks, 32);
        EXPECT_EQ(lines.size(), 32u);
        for (LineAddr l : lines) EXPECT_EQ(desc.bankFor(l), target);
    }
}

TEST(Attacks, PortAttackerEmitsTraceSamples)
{
    auto lines = linesTargetingBank(0, 0, 4, 16);
    PortAttackerApp attacker(lines, /*batch=*/10);
    Rng rng(1);

    Tick now = 0;
    for (int i = 0; i < 100; i++) {
        AppStep step = attacker.next(now, rng);
        ASSERT_EQ(step.kind, AppStep::Kind::Execute);
        now += step.instrs + 20; // pretend 20-cycle accesses
        attacker.onAccessComplete(now);
    }
    EXPECT_EQ(attacker.trace().size(), 10u);
    // Each batch of 10 accesses took ~21 cycles per access.
    for (const auto &sample : attacker.trace())
        EXPECT_NEAR(sample.cyclesPerAccess, 21.0, 2.0);
}

TEST(Attacks, PortAttackerDetectsSlowdown)
{
    auto lines = linesTargetingBank(0, 0, 4, 16);
    PortAttackerApp attacker(lines, 10);
    Rng rng(1);

    Tick now = 0;
    // Phase 1: fast accesses. Phase 2: contended (3x slower).
    for (int i = 0; i < 200; i++) {
        AppStep step = attacker.next(now, rng);
        now += step.instrs + (i < 100 ? 20 : 60);
        attacker.onAccessComplete(now);
    }
    const auto &trace = attacker.trace();
    ASSERT_EQ(trace.size(), 20u);
    EXPECT_GT(trace.back().cyclesPerAccess,
              trace.front().cyclesPerAccess * 2);
}

TEST(Attacks, RotatingVictimCyclesThroughBanks)
{
    std::vector<std::vector<LineAddr>> perBank;
    for (BankId b = 0; b < 4; b++)
        perBank.push_back(linesTargetingBank(1 << 30, b, 4, 8));
    RotatingVictimApp victim(perBank, /*dwell=*/1000, /*pause=*/500);
    Rng rng(1);

    std::set<BankId> visited;
    Tick now = 0;
    for (int i = 0; i < 10000; i++) {
        AppStep step = victim.next(now, rng);
        if (step.kind == AppStep::Kind::Idle) {
            EXPECT_EQ(victim.currentBank(), kInvalidBank);
            now = step.wakeTick;
            continue;
        }
        visited.insert(victim.currentBank());
        now += step.instrs + 20;
    }
    EXPECT_EQ(visited.size(), 4u);
}

TEST(Attacks, VictimLinesAvoidAttackerLines)
{
    // The Fig. 11 setup requires disjoint cache sets: victim lines
    // use a different slice of the address space.
    auto attacker = linesTargetingBank(0, 2, 4, 32);
    auto victim = linesTargetingBank(1 << 30, 2, 4, 32);
    for (LineAddr a : attacker)
        for (LineAddr v : victim) EXPECT_NE(a, v);
}

/**
 * Builds a prime set that never overflows any cache set, by testing
 * candidate lines against a scratch array with the same geometry and
 * masks (a real attacker does the same calibration empirically).
 */
std::vector<LineAddr>
buildPrimeSet(const CacheArray &shape, const AccessOwner &owner,
              std::size_t want)
{
    CacheArray scratch(shape.numSets(), shape.numWays(), ReplKind::LRU,
                       1);
    scratch.setWayMask(owner.vc, shape.wayMaskFor(owner.vc));
    std::vector<LineAddr> prime;
    for (LineAddr cand = 0; prime.size() < want && cand < 100000;
         cand++) {
        if (!scratch.access(cand, owner).evicted) prime.push_back(cand);
    }
    return prime;
}

TEST(Attacks, ConflictProbeDetectsUnpartitionedVictim)
{
    CacheArray array(16, 4, ReplKind::LRU, 1);
    AccessOwner attacker;
    attacker.vc = 0;
    attacker.app = 0;
    attacker.vm = 0;
    AccessOwner victim;
    victim.vc = 1;
    victim.app = 1;
    victim.vm = 1;

    // A skew-free prime set: a quiet probe is exactly clean.
    std::vector<LineAddr> primeLines =
        buildPrimeSet(array, attacker, 24);
    ConflictProber prober(primeLines, attacker);
    prober.prime(array);

    // No victim activity: the probe is clean.
    EXPECT_EQ(prober.probe(array), 0u);

    // Victim floods: without partitioning its fills evict the
    // attacker's primed lines — the classic conflict signal.
    for (LineAddr l = 1000; l < 1200; l++) array.access(l, victim);
    EXPECT_GT(prober.probe(array), 0u);
}

TEST(Attacks, WayPartitioningDefendsConflictProbe)
{
    CacheArray array(16, 4, ReplKind::LRU, 1);
    array.setWayMask(0, WayMask::range(0, 2));
    array.setWayMask(1, WayMask::range(2, 2));

    AccessOwner attacker;
    attacker.vc = 0;
    attacker.app = 0;
    attacker.vm = 0;
    AccessOwner victim;
    victim.vc = 1;
    victim.app = 1;
    victim.vm = 1;

    // A skew-free prime set inside the attacker's partition, so a
    // clean probe is exactly zero.
    std::vector<LineAddr> primeLines =
        buildPrimeSet(array, attacker, 12);
    ConflictProber prober(primeLines, attacker);
    prober.prime(array);
    ASSERT_EQ(prober.probe(array), 0u);

    // Heavy victim traffic cannot evict the attacker's lines.
    for (LineAddr l = 1000; l < 2000; l++) array.access(l, victim);
    EXPECT_EQ(prober.probe(array), 0u)
        << "partitioned victim leaked through the conflict channel";
}

TEST(Attacks, ConflictProberRejectsEmpty)
{
    AccessOwner o;
    EXPECT_THROW(ConflictProber({}, o), FatalError);
}

TEST(Attacks, RejectsEmptyConfig)
{
    EXPECT_THROW(PortAttackerApp({}, 10), FatalError);
    EXPECT_THROW(PortAttackerApp({1}, 0), FatalError);
    EXPECT_THROW(RotatingVictimApp({}, 1, 1), FatalError);
    EXPECT_THROW(RotatingVictimApp({{}}, 1, 1), FatalError);
}

} // namespace
} // namespace jumanji
