/**
 * @file
 * Unit tests for the hierarchical stats registry and the epoch
 * time-series recorder (src/sim/statreg.hh).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "src/sim/logging.hh"
#include "src/sim/statreg.hh"

namespace jumanji {
namespace {

TEST(StatRegistry, CounterBindsLiveValue)
{
    std::uint64_t hits = 0;
    StatRegistry reg;
    reg.addCounter("llc.bank00.hits", "bank hits", &hits);
    EXPECT_TRUE(reg.has("llc.bank00.hits"));
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_DOUBLE_EQ(reg.value("llc.bank00.hits"), 0.0);
    hits = 42; // registry reads through, never copies
    EXPECT_DOUBLE_EQ(reg.value("llc.bank00.hits"), 42.0);
}

TEST(StatRegistry, GaugeAndFormulaEvaluateOnRead)
{
    double level = 1.5;
    StatRegistry reg;
    reg.addGauge("mem.queue", "queue depth", [&] { return level; });
    reg.addFormula("mem.queue2x", "doubled", [&] { return 2 * level; });
    EXPECT_DOUBLE_EQ(reg.value("mem.queue"), 1.5);
    level = 4.0;
    EXPECT_DOUBLE_EQ(reg.value("mem.queue"), 4.0);
    EXPECT_DOUBLE_EQ(reg.value("mem.queue2x"), 8.0);
}

TEST(StatRegistry, DottedLookupResolvesDistributionLeaves)
{
    SampleStat lat;
    for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) lat.add(v);
    StatRegistry reg;
    reg.addDistribution("apps.a00.reqLatency", "latency", &lat);
    EXPECT_TRUE(reg.has("apps.a00.reqLatency"));
    // Leaves resolve through value() even though only the parent node
    // is registered.
    EXPECT_DOUBLE_EQ(reg.value("apps.a00.reqLatency.count"), 5.0);
    EXPECT_DOUBLE_EQ(reg.value("apps.a00.reqLatency.mean"), 30.0);
    EXPECT_DOUBLE_EQ(reg.value("apps.a00.reqLatency.min"), 10.0);
    EXPECT_DOUBLE_EQ(reg.value("apps.a00.reqLatency.max"), 50.0);
    EXPECT_DOUBLE_EQ(reg.value("apps.a00.reqLatency.p50"), 30.0);
}

TEST(StatRegistry, UnknownNamePanics)
{
    StatRegistry reg;
    // lint-allow: stat-xref unbound on purpose; asserts the panic
    EXPECT_THROW(reg.value("no.such.stat"), PanicError);
}

TEST(StatRegistry, DuplicateNamePanics)
{
    std::uint64_t v = 0;
    StatRegistry reg;
    reg.addCounter("a.b", "first", &v);
    EXPECT_THROW(reg.addCounter("a.b", "again", &v), PanicError);
}

TEST(StatRegistry, ParentChildCollisionPanics)
{
    std::uint64_t v = 0;
    StatRegistry reg;
    reg.addCounter("a.b", "leaf", &v);
    // "a.b" is a leaf; "a.b.c" would make it a subtree too, which the
    // nested JSON dump cannot represent.
    EXPECT_THROW(reg.addCounter("a.b.c", "child of leaf", &v),
                 PanicError);
    StatRegistry reg2;
    reg2.addCounter("a.b.c", "leaf", &v);
    EXPECT_THROW(reg2.addCounter("a.b", "parent of leaf", &v),
                 PanicError);
}

TEST(StatRegistry, InvalidNamePanics)
{
    std::uint64_t v = 0;
    StatRegistry reg;
    EXPECT_THROW(reg.addCounter("", "empty", &v), PanicError);
    EXPECT_THROW(reg.addCounter(".leading", "dot", &v), PanicError);
    EXPECT_THROW(reg.addCounter("trailing.", "dot", &v), PanicError);
    EXPECT_THROW(reg.addCounter("a..b", "double dot", &v), PanicError);
    EXPECT_THROW(reg.addCounter("a b", "space", &v), PanicError);
}

TEST(StatRegistry, SnapshotIsSortedByName)
{
    std::uint64_t v = 7;
    SampleStat s;
    s.add(1.0);
    StatRegistry reg;
    // Registered out of order on purpose; distribution leaf expansion
    // (.count/.mean/...) is also not alphabetical at the source.
    reg.addCounter("z.last", "z", &v);
    reg.addDistribution("m.dist", "d", &s);
    reg.addCounter("a.first", "a", &v);
    auto snap = reg.snapshot();
    ASSERT_GE(snap.size(), 3u);
    for (std::size_t i = 1; i < snap.size(); i++)
        EXPECT_LT(snap[i - 1].name, snap[i].name);
}

TEST(StatRegistry, SelectorSnapshotFiltersByPrefix)
{
    std::uint64_t a = 1, b = 2, c = 3;
    StatRegistry reg;
    reg.addCounter("llc.bank00.hits", "", &a);
    reg.addCounter("llc.bank01.hits", "", &b);
    reg.addCounter("noc.hops", "", &c);
    auto snap = reg.snapshot({"llc.bank"});
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "llc.bank00.hits");
    EXPECT_EQ(snap[1].name, "llc.bank01.hits");
    // Exact names also match.
    auto exact = reg.snapshot({"noc.hops"});
    ASSERT_EQ(exact.size(), 1u);
    EXPECT_DOUBLE_EQ(exact[0].value, 3.0);
}

TEST(StatRegistry, HistogramExpandsWithUnderflowOverflow)
{
    Histogram h(0.0, 10.0, 2);
    h.add(-1.0);
    h.add(3.0);
    h.add(99.0);
    StatRegistry reg;
    reg.addDistribution("noc.hopHist", "hops", &h);
    EXPECT_DOUBLE_EQ(reg.value("noc.hopHist.total"), 3.0);
    EXPECT_DOUBLE_EQ(reg.value("noc.hopHist.underflow"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("noc.hopHist.overflow"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("noc.hopHist.b00"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("noc.hopHist.b01"), 0.0);
}

TEST(StatRegistry, JsonDumpGolden)
{
    std::uint64_t hits = 10, misses = 2;
    StatRegistry reg;
    reg.addCounter("llc.hits", "hits", &hits);
    reg.addCounter("llc.misses", "misses", &misses);
    reg.addGauge("sys.util", "utilization", [] { return 0.5; });
    std::ostringstream os;
    reg.dumpJson(os);
    EXPECT_EQ(os.str(),
              "{\n"
              "  \"llc\": {\n"
              "    \"hits\": 10,\n"
              "    \"misses\": 2\n"
              "  },\n"
              "  \"sys\": {\n"
              "    \"util\": 0.5\n"
              "  }\n"
              "}");
}

TEST(StatRegistry, FoldIsOrderIndependentOfRegistration)
{
    std::uint64_t x = 5, y = 9;
    StatRegistry a, b;
    a.addCounter("one", "", &x);
    a.addCounter("two", "", &y);
    b.addCounter("two", "", &y);
    b.addCounter("one", "", &x);
    Fingerprint fa, fb;
    a.fold(fa);
    b.fold(fb);
    EXPECT_EQ(fa.value(), fb.value());
}

TEST(EpochRecorder, RecordsSelectedColumnsPerEpoch)
{
    std::uint64_t hits = 0;
    double util = 0.0;
    StatRegistry reg;
    reg.addCounter("llc.hits", "", &hits);
    reg.addGauge("sys.util", "", [&] { return util; });
    reg.addCounter("noise.ignored", "", &hits);

    EpochRecorder rec(&reg, {"llc.", "sys."});
    hits = 10;
    util = 0.25;
    rec.record(1000);
    hits = 30;
    util = 0.75;
    rec.record(2000);

    EXPECT_EQ(rec.epochs(), 2u);
    const TimelineSeries &ts = rec.series();
    ASSERT_EQ(ts.columns.size(), 2u);
    EXPECT_EQ(ts.columns[0], "llc.hits");
    EXPECT_EQ(ts.columns[1], "sys.util");
    ASSERT_EQ(ts.rows.size(), 2u);
    EXPECT_EQ(ts.ticks[0], 1000u);
    EXPECT_DOUBLE_EQ(ts.rows[0][0], 10.0);
    EXPECT_DOUBLE_EQ(ts.rows[0][1], 0.25);
    EXPECT_DOUBLE_EQ(ts.rows[1][0], 30.0);
    EXPECT_DOUBLE_EQ(ts.rows[1][1], 0.75);
    EXPECT_EQ(ts.columnIndex("sys.util"), 1u);
}

TEST(TimelineSeries, CsvAndJsonRoundTripShapes)
{
    TimelineSeries ts;
    ts.columns = {"a", "b"};
    ts.ticks = {10, 20};
    ts.rows = {{1.0, 2.5}, {3.0, 4.0}};

    std::ostringstream csv;
    ts.writeCsv(csv);
    EXPECT_EQ(csv.str(), "tick,a,b\n10,1,2.5\n20,3,4\n");

    std::ostringstream json;
    ts.writeJson(json);
    EXPECT_NE(json.str().find("\"columns\": [\"a\", \"b\"]"),
              std::string::npos);
    EXPECT_NE(json.str().find("\"ticks\": [10, 20]"),
              std::string::npos);
}

TEST(TimelineSeries, FoldCoversNamesTicksAndValues)
{
    TimelineSeries a;
    a.columns = {"x"};
    a.ticks = {5};
    a.rows = {{1.0}};
    TimelineSeries b = a;
    Fingerprint fa, fb;
    a.fold(fa);
    b.fold(fb);
    EXPECT_EQ(fa.value(), fb.value());

    b.rows[0][0] = 2.0;
    Fingerprint fc;
    b.fold(fc);
    EXPECT_NE(fa.value(), fc.value());
}

TEST(StatIndexName, FixedWidthFormatting)
{
    EXPECT_EQ(statIndexName(0), "00");
    EXPECT_EQ(statIndexName(7), "07");
    EXPECT_EQ(statIndexName(42), "42");
    EXPECT_EQ(statIndexName(123), "123"); // grows past the pad width
    EXPECT_EQ(statIndexName(3, 4), "0003");
}

} // namespace
} // namespace jumanji
