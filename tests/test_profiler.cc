/**
 * @file
 * Tests for the host-side profiler (src/sim/profiler.hh): the
 * inclusive/exclusive nesting math under an injected fake clock,
 * interning stability, the runtime enable flag, thread-profile
 * flushing into the aggregate, and byte-for-byte report determinism.
 * test_profiler_disabled.cc pins the JUMANJI_DISABLE_PROFILING
 * compile-out in a sibling TU.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/json.hh"
#include "src/sim/profiler.hh"
#include "tests/profiler_test_helpers.hh"

namespace jumanji {
namespace proftest {

void
enabledSite()
{
    JUMANJI_PROF_SCOPE("proftest.enabled.site");
}

} // namespace proftest

namespace {

using prof::Profiler;
using prof::ScopeId;
using prof::ScopeTotals;

// Scripted monotonic clock: tests set fakeNow before each
// enter/leave so every elapsed interval is exact.
std::uint64_t fakeNow = 0;

std::uint64_t
fakeClock()
{
    return fakeNow;
}

const ScopeTotals &
totalsFor(const std::vector<ScopeTotals> &totals,
          const std::string &name)
{
    for (const ScopeTotals &t : totals)
        if (t.name == name) return t;
    static ScopeTotals missing;
    ADD_FAILURE() << "no totals for scope " << name;
    return missing;
}

TEST(Profiler, NestingSplitsInclusiveAndExclusiveTime)
{
    Profiler p;
    p.setClock(&fakeClock);
    const ScopeId outer = p.intern("outer");
    const ScopeId inner = p.intern("inner");

    fakeNow = 0;
    p.enter(outer);
    fakeNow = 10;
    p.enter(inner);
    fakeNow = 25;
    p.leave(inner);
    fakeNow = 40;
    p.leave(outer);

    const std::vector<ScopeTotals> totals = p.totals();
    ASSERT_EQ(totals.size(), 2u);

    const ScopeTotals &in = totalsFor(totals, "inner");
    EXPECT_EQ(in.calls, 1u);
    EXPECT_EQ(in.inclusiveNs, 15u);
    EXPECT_EQ(in.exclusiveNs, 15u);

    const ScopeTotals &out = totalsFor(totals, "outer");
    EXPECT_EQ(out.calls, 1u);
    EXPECT_EQ(out.inclusiveNs, 40u);
    EXPECT_EQ(out.exclusiveNs, 25u);
}

TEST(Profiler, SiblingChildrenAllSubtractFromParentExclusive)
{
    Profiler p;
    p.setClock(&fakeClock);
    const ScopeId run = p.intern("sim.run");
    const ScopeId epoch = p.intern("sim.epoch");

    fakeNow = 0;
    p.enter(run);
    fakeNow = 100;
    p.enter(epoch);
    fakeNow = 600;
    p.leave(epoch);
    fakeNow = 700;
    p.enter(epoch);
    fakeNow = 900;
    p.leave(epoch);
    fakeNow = 1000;
    p.leave(run);

    const std::vector<ScopeTotals> totals = p.totals();
    const ScopeTotals &e = totalsFor(totals, "sim.epoch");
    EXPECT_EQ(e.calls, 2u);
    EXPECT_EQ(e.inclusiveNs, 700u);
    EXPECT_EQ(e.exclusiveNs, 700u);
    const ScopeTotals &r = totalsFor(totals, "sim.run");
    EXPECT_EQ(r.calls, 1u);
    EXPECT_EQ(r.inclusiveNs, 1000u);
    EXPECT_EQ(r.exclusiveNs, 300u);
}

TEST(Profiler, RecursionCountsWallTimeOnce)
{
    Profiler p;
    p.setClock(&fakeClock);
    const ScopeId a = p.intern("recurse");

    fakeNow = 0;
    p.enter(a);
    fakeNow = 10;
    p.enter(a); // recursive re-entry
    fakeNow = 20;
    p.leave(a);
    fakeNow = 30;
    p.leave(a);

    const std::vector<ScopeTotals> totals = p.totals();
    ASSERT_EQ(totals.size(), 1u);
    EXPECT_EQ(totals[0].calls, 2u);
    // Inclusive closes only at the outermost activation: 30ns of
    // wall time, not 30 + 10.
    EXPECT_EQ(totals[0].inclusiveNs, 30u);
    // The inner activation's 10ns is both its own exclusive time and
    // subtracted from the outer activation's — self time sums to the
    // outermost elapsed.
    EXPECT_EQ(totals[0].exclusiveNs, 30u);
}

TEST(Profiler, InterningIsStableAndSurvivesReset)
{
    Profiler p;
    p.setClock(&fakeClock);
    const ScopeId a = p.intern("alpha");
    const ScopeId b = p.intern("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(p.intern("alpha"), a);
    EXPECT_EQ(p.name(a), "alpha");
    EXPECT_EQ(p.name(b), "beta");

    fakeNow = 0;
    p.enter(a);
    fakeNow = 5;
    p.leave(a);
    EXPECT_FALSE(p.empty());

    p.reset();
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.totals().size(), 0u);
    // Ids allocated before the reset stay valid — the macro caches
    // them in static thread_locals that outlive any reset.
    EXPECT_EQ(p.intern("alpha"), a);
    EXPECT_EQ(p.name(a), "alpha");
}

TEST(Profiler, TotalsAreNameSortedAndSkipUncalledScopes)
{
    Profiler p;
    p.setClock(&fakeClock);
    const ScopeId z = p.intern("zeta");
    p.intern("never.called");
    const ScopeId a = p.intern("alpha");

    fakeNow = 0;
    p.enter(z);
    fakeNow = 1;
    p.leave(z);
    p.enter(a);
    fakeNow = 2;
    p.leave(a);

    const std::vector<ScopeTotals> totals = p.totals();
    ASSERT_EQ(totals.size(), 2u);
    EXPECT_EQ(totals[0].name, "alpha");
    EXPECT_EQ(totals[1].name, "zeta");
}

TEST(Profiler, MergeFromAccumulatesByName)
{
    Profiler a;
    Profiler b;
    a.setClock(&fakeClock);
    b.setClock(&fakeClock);

    const ScopeId sa = a.intern("shared");
    fakeNow = 0;
    a.enter(sa);
    fakeNow = 10;
    a.leave(sa);

    // Different interning order in b: merge matches by name, not id.
    const ScopeId onlyB = b.intern("only.b");
    const ScopeId sb = b.intern("shared");
    fakeNow = 0;
    b.enter(onlyB);
    fakeNow = 7;
    b.leave(onlyB);
    b.enter(sb);
    fakeNow = 12;
    b.leave(sb);

    a.mergeFrom(b);
    const std::vector<ScopeTotals> totals = a.totals();
    ASSERT_EQ(totals.size(), 2u);
    const ScopeTotals &shared = totalsFor(totals, "shared");
    EXPECT_EQ(shared.calls, 2u);
    EXPECT_EQ(shared.inclusiveNs, 15u);
    const ScopeTotals &only = totalsFor(totals, "only.b");
    EXPECT_EQ(only.calls, 1u);
    EXPECT_EQ(only.inclusiveNs, 7u);
}

TEST(Profiler, ReportsAreDeterministicForIdenticalMeasurements)
{
    const auto record = [](Profiler &p) {
        p.setClock(&fakeClock);
        const ScopeId run = p.intern("sim.run");
        const ScopeId epoch = p.intern("sim.epoch.repartition");
        fakeNow = 0;
        p.enter(run);
        fakeNow = 100000000; // 0.1 s
        p.enter(epoch);
        fakeNow = 700000000; // 0.7 s
        p.leave(epoch);
        fakeNow = 1000000000; // 1.0 s
        p.leave(run);
    };

    Profiler first;
    Profiler second;
    record(first);
    record(second);

    std::ostringstream text1, text2, json1, json2;
    first.writeText(text1);
    second.writeText(text2);
    first.writeJson(json1);
    second.writeJson(json2);
    EXPECT_EQ(text1.str(), text2.str());
    EXPECT_EQ(json1.str(), json2.str());

    // The text table carries fixed-precision seconds.
    EXPECT_NE(text1.str().find("1.000000"), std::string::npos);
    EXPECT_NE(text1.str().find("0.600000"), std::string::npos);

    // The JSON report is machine-readable and carries exact integer
    // nanoseconds next to the human seconds.
    const JsonValue doc = JsonValue::parse(json1.str(), "profile");
    EXPECT_EQ(doc.find("schema")->asString("schema"),
              "jumanji-profile-v1");
    const JsonValue *scopes = doc.find("scopes");
    ASSERT_NE(scopes, nullptr);
    ASSERT_EQ(scopes->items().size(), 2u);
    const JsonValue &epoch = scopes->items()[0];
    EXPECT_EQ(epoch.find("name")->asString("name"),
              "sim.epoch.repartition");
    EXPECT_EQ(epoch.find("calls")->asU64("calls"), 1u);
    EXPECT_EQ(epoch.find("inclusive_ns")->asU64("inclusive_ns"),
              600000000u);
    const JsonValue &run = scopes->items()[1];
    EXPECT_EQ(run.find("name")->asString("name"), "sim.run");
    EXPECT_EQ(run.find("exclusive_ns")->asU64("exclusive_ns"),
              400000000u);
}

TEST(Profiler, EmptyProfilerStillWritesValidReports)
{
    Profiler p;
    std::ostringstream text, json;
    p.writeText(text);
    p.writeJson(json);
    EXPECT_NE(text.str().find("scope"), std::string::npos);
    const JsonValue doc = JsonValue::parse(json.str(), "profile");
    EXPECT_EQ(doc.find("scopes")->items().size(), 0u);
}

TEST(Profiler, ScopeMacroRespectsRuntimeEnableFlag)
{
    Profiler &mine = Profiler::current();
    mine.reset();

    prof::setProfilingEnabled(false);
    proftest::enabledSite();
    EXPECT_TRUE(mine.empty());

    prof::setProfilingEnabled(true);
    proftest::enabledSite();
    prof::setProfilingEnabled(false);
    const std::vector<ScopeTotals> totals = mine.totals();
    ASSERT_EQ(totals.size(), 1u);
    EXPECT_EQ(totals[0].name, "proftest.enabled.site");
    EXPECT_EQ(totals[0].calls, 1u);
    mine.reset();
}

TEST(Profiler, CompiledOutSiteRecordsNothingButStillRuns)
{
    Profiler &mine = Profiler::current();
    mine.reset();
    prof::setProfilingEnabled(true);
    // The sibling TU pins JUMANJI_DISABLE_PROFILING: its scope macro
    // must vanish entirely while the function body still executes.
    EXPECT_EQ(proftest::disabledSiteRuns(), 42);
    prof::setProfilingEnabled(false);
    EXPECT_TRUE(mine.empty());
    for (const ScopeTotals &t : prof::aggregateProfile().totals())
        EXPECT_NE(t.name, "proftest.disabled.site");
}

TEST(Profiler, FlushMergesIntoAggregateAndSkipsOpenScopes)
{
    Profiler &mine = Profiler::current();
    mine.reset();
    mine.setClock(&fakeClock);
    const ScopeId id = mine.intern("proftest.flush");

    fakeNow = 0;
    mine.enter(id);
    // Open scope: flushing now must be a no-op, not a torn merge.
    prof::flushThreadProfile();
    EXPECT_EQ(mine.depth(), 1u);
    fakeNow = 9;
    mine.leave(id);

    prof::flushThreadProfile();
    EXPECT_TRUE(mine.empty());
    const ScopeTotals &t =
        totalsFor(prof::aggregateProfile().totals(), "proftest.flush");
    EXPECT_EQ(t.calls, 1u);
    EXPECT_EQ(t.inclusiveNs, 9u);
    mine.setClock(nullptr);
}

} // namespace
} // namespace jumanji
