/**
 * @file
 * KV-serving workload tests: the YCSB Zipfian sampler's pinned
 * head probabilities and process-wide zeta memoization, load-trace
 * boundary/interpolation semantics, the JUMANJI_KV_LOAD_SCALE env
 * knob, a KV System smoke run with per-phase stats, and byte-
 * identity of a KV scenario sweep across worker counts.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/specs.hh"
#include "src/driver/orchestrator.hh"
#include "src/driver/spec.hh"
#include "src/sim/json.hh"
#include "src/sim/logging.hh"
#include "src/sim/rng.hh"
#include "src/system/harness.hh"
#include "src/system/system.hh"
#include "src/workloads/mixes.hh"
#include "src/workloads/kv/kv_store.hh"
#include "src/workloads/kv/load_trace.hh"
#include "src/workloads/kv/zipfian.hh"

namespace jumanji {
namespace {

TEST(Zipfian, PinnedZetaAndHeadProbabilities)
{
    // zeta(1000, 0.99) = 7.728953... — an analytic pin, not a
    // regression capture, so a formula typo cannot re-pin itself.
    EXPECT_NEAR(zetaCached(1000, 0.99), 7.7289532, 1e-6);

    ZipfianSampler zipf(1000, 0.99);
    EXPECT_EQ(zipf.items(), 1000u);
    EXPECT_NEAR(zipf.zetan(), 7.7289532, 1e-6);

    // Head probabilities: p(0) = 1/zeta, p(1) = 0.5^theta/zeta.
    Rng rng(42);
    const int kDraws = 200000;
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < kDraws; i++) counts[zipf.draw(rng)]++;

    double p0 = counts[0] / static_cast<double>(kDraws);
    double p1 = counts[1] / static_cast<double>(kDraws);
    EXPECT_NEAR(p0, 0.12938, 0.005);
    EXPECT_NEAR(p1, 0.06514, 0.005);
    // Monotone head, and a real tail beyond the special-cased ranks.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[2]);
    EXPECT_GT(counts.size(), 100u);
}

TEST(Zipfian, SameSeedSameSequenceAcrossInstances)
{
    ZipfianSampler a(4096, 0.99), b(4096, 0.99);
    Rng ra(7), rb(7), rc(8);
    bool anyDiff = false;
    for (int i = 0; i < 1000; i++) {
        std::uint64_t va = a.draw(ra);
        EXPECT_EQ(va, b.draw(rb));
        anyDiff = anyDiff || va != a.draw(rc);
    }
    EXPECT_TRUE(anyDiff) << "seed 8 replayed seed 7's sequence";
}

TEST(Zipfian, ScramblingSpreadsAndRotationMigratesTheHotKey)
{
    auto hottest = [](auto &sampler, std::uint64_t seed) {
        Rng rng(seed);
        std::map<std::uint64_t, int> counts;
        for (int i = 0; i < 20000; i++) counts[sampler.draw(rng)]++;
        std::uint64_t best = 0;
        int bestCount = -1;
        for (const auto &[key, count] : counts)
            if (count > bestCount) best = key, bestCount = count;
        return best;
    };

    ZipfianSampler plain(1000, 0.99);
    EXPECT_EQ(hottest(plain, 3), 0u) << "rank 0 must dominate";

    // Scrambling moves the popular mass to fnv1a64(rank)%items —
    // away from the low ids — without changing the shape.
    ScrambledZipfianSampler scrambled(1000, 0.99);
    EXPECT_EQ(hottest(scrambled, 3), fnv1a64(0) % 1000);
    EXPECT_NE(fnv1a64(0) % 1000, 0u);

    // Rotation re-hashes under an offset: same shape, new hot key —
    // the hot-key migration the "hotkeys" trace applies mid-run.
    scrambled.setRotation(12345);
    EXPECT_EQ(hottest(scrambled, 3), fnv1a64(12345) % 1000);
    EXPECT_NE(fnv1a64(12345) % 1000, fnv1a64(0) % 1000);
}

TEST(Zipfian, ZetaComputationsAreMemoizedProcessWide)
{
    // A (n, theta) pair no other test uses, so the first sampler
    // pays exactly two cold sums (zeta(n) and zeta(2)) and every
    // later instance pays zero.
    const double theta = 0.77725;
    std::uint64_t before = zetaComputations();
    ZipfianSampler first(5000, theta);
    std::uint64_t afterFirst = zetaComputations();
    EXPECT_EQ(afterFirst - before, 2u);
    ZipfianSampler second(5000, theta);
    ScrambledZipfianSampler third(5000, theta);
    EXPECT_EQ(zetaComputations(), afterFirst);
}

TEST(LoadTrace, BoundaryTicksBelongToTheStartingPhase)
{
    LoadTrace trace;
    trace.addPhase("a", 100, 1.0, 1.0);
    trace.addPhase("b", 50, 2.0, 2.0);
    EXPECT_EQ(trace.phaseLabelAt(0), "a");
    EXPECT_EQ(trace.phaseLabelAt(99), "a");
    // The half-open rule: tick 100 starts "b", not ends "a".
    EXPECT_EQ(trace.phaseLabelAt(100), "b");
    EXPECT_EQ(trace.phaseLabelAt(149), "b");
    // Past the horizon clamps to the last phase.
    EXPECT_EQ(trace.phaseLabelAt(100000), "b");
    EXPECT_EQ(trace.horizon(), 150u);
    EXPECT_EQ(trace.phaseLabels(),
              (std::vector<std::string>{"a", "b"}));
}

TEST(LoadTrace, MultiplierInterpolatesLinearlyWithinAPhase)
{
    LoadTrace trace;
    trace.addPhase("ramp", 100, 1.0, 3.0);
    EXPECT_NEAR(trace.multiplierAt(0), 1.0, 1e-12);
    EXPECT_NEAR(trace.multiplierAt(50), 2.0, 1e-12);
    EXPECT_NEAR(trace.multiplierAt(75), 2.5, 1e-12);
    // Clamped to the final value past the horizon.
    EXPECT_NEAR(trace.multiplierAt(500), 3.0, 1e-12);
}

TEST(LoadTrace, PresetsCoverTheRunAndTheSpikeHitsItsPeak)
{
    const Tick warmup = 1000, measure = 2000;
    for (const std::string &name : allLoadTraceNames()) {
        LoadTrace trace =
            loadTraceFromName(name, warmup, measure, 4.0);
        EXPECT_FALSE(trace.empty()) << name;
        EXPECT_GE(trace.horizon(), warmup + measure) << name;
    }

    // flashcrowd: before | spike (middle 30% of measure, at peak) |
    // after — the labels the apps.kv.* stats and the fig_kv columns
    // are built from.
    LoadTrace flash = loadTraceFromName("flashcrowd", warmup, measure, 4.0);
    EXPECT_EQ(flash.phaseLabels(),
              (std::vector<std::string>{"before", "spike", "after"}));
    Tick spikeStart = warmup + (3 * measure) / 10;
    EXPECT_EQ(flash.phaseLabelAt(spikeStart), "spike");
    EXPECT_NEAR(flash.multiplierAt(spikeStart + 100), 4.0, 1e-12);
    EXPECT_EQ(flash.phaseLabelAt(spikeStart - 1), "before");

    EXPECT_THROW(loadTraceFromName("nope", warmup, measure, 4.0),
                 FatalError);
}

TEST(KvEnv, LoadScaleFromEnvValidatesAndFallsBack)
{
    // In-process env edits: this is the only test touching the
    // variable, and it restores "unset" on every path.
    struct EnvGuard
    {
        ~EnvGuard() { unsetenv("JUMANJI_KV_LOAD_SCALE"); }
    } guard;

    unsetenv("JUMANJI_KV_LOAD_SCALE");
    EXPECT_EQ(driver::kvLoadScaleFromEnv(1.0), 1.0);

    setenv("JUMANJI_KV_LOAD_SCALE", "2.5", 1);
    EXPECT_EQ(driver::kvLoadScaleFromEnv(1.0), 2.5);
    setenv("JUMANJI_KV_LOAD_SCALE", "0.25", 1);
    EXPECT_EQ(driver::kvLoadScaleFromEnv(1.0), 0.25);

    // Out-of-range and garbage fall back (warn-once is logging).
    for (const char *bad : {"0", "-1", "2000", "junk", "1.5x", ""}) {
        setenv("JUMANJI_KV_LOAD_SCALE", bad, 1);
        EXPECT_EQ(driver::kvLoadScaleFromEnv(1.0), 1.0)
            << "value: " << bad;
    }
}

/** testTiny-scale benchScaled config (see test_system.cc). */
SystemConfig
kvConfig()
{
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.llc.setsPerBank = 32;
    cfg.capacityScale = 0.0625;
    cfg.epochTicks = 50000;
    cfg.warmupTicks = 200000;
    cfg.measureTicks = 300000;
    cfg.seed = 7;
    cfg.kv.trace = "flashcrowd";
    cfg.kv.peakMultiplier = 1.8;
    return cfg;
}

TEST(KvSystem, ServesRequestsAndRegistersPhaseStats)
{
    Rng rng(7);
    System system(kvConfig(), makeMix({"kv_small"}, 4, 4, rng));
    RunResult run = system.run();

    ASSERT_EQ(system.kvApps().size(), 4u);
    for (const KvServerApp *app : system.kvApps()) {
        EXPECT_GT(app->requestsCompleted(), 0u);
        EXPECT_EQ(app->kvParams().name, "kv_small");
    }

    // The per-phase formulas exist exactly for the trace's labels
    // and saw traffic in every phase.
    for (const char *phase : {"before", "spike", "after"}) {
        std::string prefix = std::string("apps.kv.") + phase;
        EXPECT_GT(run.stat(prefix + ".count"), 0.0) << phase;
        EXPECT_GT(run.stat(prefix + ".p95"), 0.0) << phase;
        EXPECT_GE(run.stat(prefix + ".p99"),
                  run.stat(prefix + ".p95"))
            << phase;
    }
    // The spike raises the tail against the same deadline.
    EXPECT_GT(run.stat("apps.kv.spike.p95"),
              run.stat("apps.kv.before.p95"));
}

TEST(KvSystem, NonKvMixRegistersNoKvStats)
{
    // apps.kv.* leaves are folded into the determinism fingerprint,
    // so they must not exist for non-KV mixes (the selfcheck pin of
    // every pre-KV scenario depends on it).
    SystemConfig cfg = kvConfig();
    Rng rng(7);
    System system(cfg, makeMix({"xapian"}, 4, 4, rng));
    RunResult run = system.run();
    for (const StatValue &sv : run.statDump)
        EXPECT_EQ(sv.name.rfind("apps.kv.", 0), std::string::npos)
            << sv.name;
}

TEST(KvSweep, ByteIdenticalAcrossWorkerCounts)
{
    // The shipped flash-crowd scenario, shrunk to test scale and
    // pinned (no env coupling), run with 1 and with 4 workers: the
    // rendered table and the full stats fingerprint must match.
    driver::ExperimentSpec spec = bench::specs::kvFlashCrowd();
    spec.seed.fromEnv = false;
    spec.mixes.fromEnv = false;
    spec.mixes.count = 2;
    spec.overrides = JsonValue::parse(
        "{\"kv\": {\"trace\": \"flashcrowd\", \"peakMultiplier\": "
        "1.8},\n"
        " \"llc\": {\"setsPerBank\": 32}, \"capacityScale\": 0.0625,\n"
        " \"epochTicks\": 50000, \"warmupTicks\": 200000,\n"
        " \"measureTicks\": 300000}",
        "test-overrides");

    auto runWith = [&](std::uint32_t jobs) {
        driver::Orchestrator::Options opts;
        opts.jobs = jobs;
        driver::Orchestrator orch(opts);
        driver::SpecRun run = driver::runSpec(spec, orch);
        return std::make_pair(driver::renderSpec(spec, run),
                              fingerprintResults(run.results));
    };
    auto [table1, fp1] = runWith(1);
    auto [table4, fp4] = runWith(4);
    EXPECT_EQ(table1, table4);
    EXPECT_EQ(fp1, fp4);
    EXPECT_NE(table1.find("before p95"), std::string::npos);
}

} // namespace
} // namespace jumanji
