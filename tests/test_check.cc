/**
 * @file
 * Tests for the contract-checking layer (src/sim/check.hh): failing
 * checks throw PanicError with the simulation context in the message
 * (death-test style, but catchable because checks panic rather than
 * abort), and disabled checks are free — they never evaluate their
 * expression. The force/disable helper TUs make both modes testable
 * from any build type.
 */

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>

#include "src/sim/check.hh"
#include "src/sim/logging.hh"
#include "tests/check_test_helpers.hh"

namespace jumanji {
namespace {

using checktest::disabledAssert;
using checktest::disabledInvariant;
using checktest::forcedAssert;
using checktest::forcedInvariant;
using checktest::forcedUnreachable;

class CheckTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Known context so message assertions are exact.
        checkSetTick(0);
        checkSetBank(kInvalidBank);
        checkSetCore(-1);
        checkSetPhase("startup");
    }
};

std::string
failureMessage(void (*fn)(bool, int *))
{
    int evals = 0;
    try {
        fn(false, &evals);
    } catch (const PanicError &e) {
        return e.what();
    }
    ADD_FAILURE() << "check did not throw";
    return "";
}

TEST_F(CheckTest, PassingChecksReturnQuietly)
{
    int evals = 0;
    EXPECT_NO_THROW(forcedAssert(true, &evals));
    EXPECT_NO_THROW(forcedInvariant(true, &evals));
    EXPECT_EQ(evals, 2);
}

TEST_F(CheckTest, FailingAssertThrowsPanicError)
{
    int evals = 0;
    EXPECT_THROW(forcedAssert(false, &evals), PanicError);
    EXPECT_EQ(evals, 1);
}

TEST_F(CheckTest, FailingInvariantThrowsPanicError)
{
    int evals = 0;
    EXPECT_THROW(forcedInvariant(false, &evals), PanicError);
    EXPECT_EQ(evals, 1);
}

TEST_F(CheckTest, UnreachableThrowsPanicError)
{
    EXPECT_THROW(forcedUnreachable(), PanicError);
}

TEST_F(CheckTest, MessageNamesExpressionAndKind)
{
    std::string msg = failureMessage(forcedAssert);
    EXPECT_NE(msg.find("assertion failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("count(ok, evalCount)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("forced assert message"), std::string::npos) << msg;
    EXPECT_NE(msg.find("test_check_forced.cc"), std::string::npos) << msg;

    msg = failureMessage(forcedInvariant);
    EXPECT_NE(msg.find("invariant failed"), std::string::npos) << msg;
}

TEST_F(CheckTest, MessageCarriesSimulationContext)
{
    checkSetTick(123456);
    checkSetBank(7);
    checkSetCore(3);
    checkSetPhase("reconfigure");
    std::string msg = failureMessage(forcedAssert);
    EXPECT_NE(msg.find("tick=123456"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bank=7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core=3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("phase=reconfigure"), std::string::npos) << msg;
}

TEST_F(CheckTest, UnsetContextRendersDashes)
{
    std::string msg = failureMessage(forcedAssert);
    EXPECT_NE(msg.find("bank=-"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core=-"), std::string::npos) << msg;
    EXPECT_NE(msg.find("phase=startup"), std::string::npos) << msg;
}

TEST_F(CheckTest, DisabledChecksNeitherEvaluateNorThrow)
{
    int evals = 0;
    EXPECT_NO_THROW(disabledAssert(&evals));
    EXPECT_NO_THROW(disabledInvariant(&evals));
    EXPECT_EQ(evals, 0) << "disabled check evaluated its expression";
}

TEST_F(CheckTest, ContextSettersAreObservable)
{
    checkSetTick(42);
    checkSetBank(1);
    checkSetCore(2);
    checkSetPhase("simulate");
    EXPECT_EQ(checkContext().tick, 42u);
    EXPECT_EQ(checkContext().bank, 1);
    EXPECT_EQ(checkContext().core, 2);
    EXPECT_STREQ(checkContext().phase, "simulate");
}

TEST_F(CheckTest, ContextIsThreadLocal)
{
    // Each worker thread publishes into its own context: writes from
    // another thread must never be observable here.
    checkSetTick(111);
    checkSetPhase("main");

    std::promise<void> wrote;
    std::promise<void> checked;
    std::thread other([&] {
        checkSetTick(222);
        checkSetBank(9);
        checkSetPhase("worker");
        wrote.set_value();
        // Hold the thread (and its context) alive until the main
        // thread has verified isolation.
        checked.get_future().wait();
        EXPECT_EQ(checkContext().tick, 222u);
        EXPECT_STREQ(checkContext().phase, "worker");
    });
    wrote.get_future().wait();
    EXPECT_EQ(checkContext().tick, 111u);
    EXPECT_EQ(checkContext().bank, kInvalidBank);
    EXPECT_STREQ(checkContext().phase, "main");
    checked.set_value();
    other.join();
}

TEST_F(CheckTest, ScopeResetsContextOnEntryAndExit)
{
    checkSetTick(777);
    checkSetPhase("stale");
    {
        CheckContextScope scope;
        EXPECT_EQ(checkContext().tick, 0u);
        EXPECT_STREQ(checkContext().phase, "startup");
        EXPECT_TRUE(checkContext().active);
    }
    EXPECT_FALSE(checkContext().active);
    EXPECT_EQ(checkContext().tick, 0u);
}

TEST_F(CheckTest, ScopeRejectsInterleavedRunsOnOneWorker)
{
    CheckContextScope live;
    if (checksActiveInCore()) {
        // A second live run on the same worker thread is a driver
        // bug; Debug builds reject it.
        EXPECT_THROW(CheckContextScope nested, PanicError);
    } else {
        EXPECT_NO_THROW(CheckContextScope nested);
    }
}

TEST_F(CheckTest, ScopesOnDistinctThreadsDoNotCollide)
{
    CheckContextScope live;
    std::thread other([] {
        EXPECT_NO_THROW(CheckContextScope theirs);
    });
    other.join();
}

} // namespace
} // namespace jumanji
