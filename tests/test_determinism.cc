/**
 * @file
 * Determinism self-checks: two System runs of the same (config, mix)
 * must produce bit-identical stats fingerprints, for both the static
 * and dynamic-NUCA designs (the latter exercises placement, VTB, and
 * controller state — historically where iteration-order bugs hid).
 * Mirrors `jumanji_cli --selfcheck` at test scale.
 */

#include <gtest/gtest.h>

#include "src/sim/fingerprint.hh"
#include "src/system/harness.hh"
#include "src/system/system.hh"

namespace jumanji {
namespace {

SystemConfig
tinyConfig(LlcDesign design)
{
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.llc.setsPerBank = 32;
    cfg.capacityScale = 0.0625;
    cfg.epochTicks = 50000;
    cfg.warmupTicks = 100000;
    cfg.measureTicks = 200000;
    cfg.seed = 11;
    cfg.design = design;
    return cfg;
}

WorkloadMix
mixedMix(std::uint64_t seed)
{
    // Mixed LC + batch population, the shape the paper evaluates.
    Rng rng(seed);
    return makeMix({"xapian", "silo"}, 4, 4, rng);
}

std::uint64_t
runFingerprint(LlcDesign design)
{
    System system(tinyConfig(design), mixedMix(11));
    RunResult run = system.run();
    Fingerprint fp;
    fingerprintRun(fp, run);
    return fp.value();
}

TEST(Determinism, StaticDesignStatsHashIdentical)
{
    EXPECT_EQ(runFingerprint(LlcDesign::Static),
              runFingerprint(LlcDesign::Static));
}

TEST(Determinism, JumanjiDesignStatsHashIdentical)
{
    EXPECT_EQ(runFingerprint(LlcDesign::Jumanji),
              runFingerprint(LlcDesign::Jumanji));
}

TEST(Determinism, SeedChangesFingerprint)
{
    std::uint64_t base = runFingerprint(LlcDesign::Static);
    SystemConfig cfg = tinyConfig(LlcDesign::Static);
    cfg.seed = 12;
    System system(cfg, mixedMix(11));
    RunResult run = system.run();
    Fingerprint fp;
    fingerprintRun(fp, run);
    EXPECT_NE(base, fp.value());
}

TEST(Determinism, FingerprintIsOrderAndFieldSensitive)
{
    Fingerprint a, b;
    a.addU64(1);
    a.addU64(2);
    b.addU64(2);
    b.addU64(1);
    EXPECT_NE(a.value(), b.value());

    Fingerprint c, d;
    c.addString("ab");
    c.addString("c");
    d.addString("a");
    d.addString("bc");
    EXPECT_NE(c.value(), d.value());

    Fingerprint e, f;
    e.addDouble(0.0);
    f.addDouble(-0.0);
    EXPECT_EQ(e.value(), f.value()) << "-0.0 must canonicalize";
}

TEST(Determinism, MixResultFingerprintCoversAllDesigns)
{
    MixResult mix;
    mix.mix = mixedMix(11);
    DesignResult dr;
    dr.design = LlcDesign::Static;
    dr.batchSpeedup = 1.0;
    mix.designs.push_back(dr);

    Fingerprint a;
    fingerprintMix(a, mix);
    mix.designs.back().batchSpeedup = 1.25;
    Fingerprint b;
    fingerprintMix(b, mix);
    EXPECT_NE(a.value(), b.value());
}

} // namespace
} // namespace jumanji
