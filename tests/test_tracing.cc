/**
 * @file
 * Unit tests for the Chrome trace-event tracer (src/sim/tracing.hh):
 * schema of the emitted JSON, pid-block allocation, and counter-name
 * interning.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "src/sim/tracing.hh"

namespace jumanji {
namespace {

/**
 * A minimal recursive-descent JSON syntax checker. Good enough to
 * prove the tracer's output is well-formed without a JSON library:
 * values, nesting, and string escapes are all validated.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value()) return false;
        skipWs();
        return i_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (i_ >= s_.size()) return false;
        switch (s_[i_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool
    object()
    {
        i_++; // '{'
        skipWs();
        if (peek() == '}') { i_++; return true; }
        while (true) {
            skipWs();
            if (!string()) return false;
            skipWs();
            if (peek() != ':') return false;
            i_++;
            skipWs();
            if (!value()) return false;
            skipWs();
            if (peek() == ',') { i_++; continue; }
            if (peek() == '}') { i_++; return true; }
            return false;
        }
    }

    bool
    array()
    {
        i_++; // '['
        skipWs();
        if (peek() == ']') { i_++; return true; }
        while (true) {
            skipWs();
            if (!value()) return false;
            skipWs();
            if (peek() == ',') { i_++; continue; }
            if (peek() == ']') { i_++; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"') return false;
        i_++;
        while (i_ < s_.size() && s_[i_] != '"') {
            if (s_[i_] == '\\') i_++;
            i_++;
        }
        if (i_ >= s_.size()) return false;
        i_++; // closing '"'
        return true;
    }

    bool
    number()
    {
        std::size_t start = i_;
        if (peek() == '-') i_++;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
                s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                s_[i_] == '+' || s_[i_] == '-'))
            i_++;
        return i_ > start;
    }

    bool
    literal(const char *word)
    {
        std::string w(word);
        if (s_.compare(i_, w.size(), w) != 0) return false;
        i_ += w.size();
        return true;
    }

    char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

    void
    skipWs()
    {
        while (i_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[i_])) != 0)
            i_++;
    }

    const std::string &s_;
    std::size_t i_ = 0;
};

std::string
dump(const Tracer &tracer)
{
    std::ostringstream os;
    tracer.writeTo(os);
    return os.str();
}

TEST(Tracer, EmptyTraceIsValidJson)
{
    Tracer tracer;
    std::string out = dump(tracer);
    EXPECT_TRUE(JsonChecker(out).valid()) << out;
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
}

TEST(Tracer, BeginRunAllocatesDisjointPidBlocks)
{
    Tracer tracer;
    std::uint32_t a = tracer.beginRun("mix0 Static");
    std::uint32_t b = tracer.beginRun("mix0 Jumanji");
    EXPECT_EQ(b, a + Tracer::kPidsPerRun);
    // Three process_name metadata events per run.
    EXPECT_EQ(tracer.eventCount(), 6u);
    std::string out = dump(tracer);
    EXPECT_TRUE(JsonChecker(out).valid()) << out;
    EXPECT_NE(out.find("mix0 Static runtime"), std::string::npos);
    EXPECT_NE(out.find("mix0 Jumanji banks"), std::string::npos);
}

TEST(Tracer, EventSchemaFields)
{
    Tracer tracer;
    std::uint32_t pid = tracer.beginRun("run");
    tracer.threadName(pid + Tracer::kCoresPid, 3, "core03 xapian");
    tracer.complete(pid + Tracer::kCoresPid, 3, "request", 100, 40,
                    {{"latency", 40.0}});
    tracer.instant(pid + Tracer::kRuntimePid, 0, "repartition", 200,
                   {{"epoch", 2.0}});
    tracer.counter(pid + Tracer::kRuntimePid, "allocLines.vc00", 200,
                   512.0);
    std::string out = dump(tracer);
    ASSERT_TRUE(JsonChecker(out).valid()) << out;

    // Complete events carry a duration.
    EXPECT_NE(out.find("\"ph\": \"X\", \"name\": \"request\""),
              std::string::npos);
    EXPECT_NE(out.find("\"dur\": 40"), std::string::npos);
    // Instants are thread-scoped so they draw on their lane.
    EXPECT_NE(out.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(out.find("\"s\": \"t\""), std::string::npos);
    // Counters carry their sample in args.
    EXPECT_NE(out.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(out.find("\"value\": 512"), std::string::npos);
    // Thread metadata names the lane.
    EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(out.find("core03 xapian"), std::string::npos);
}

TEST(Tracer, CounterNamesSurviveCallerStorage)
{
    // Counter track names are interned: the tracer typically outlives
    // the System that built the name strings.
    Tracer tracer;
    {
        std::string transient = "occupancy.bank05";
        tracer.counter(1, transient.c_str(), 10, 3.0);
        transient.assign(200, 'x'); // clobber the old buffer
    }
    std::string out = dump(tracer);
    EXPECT_TRUE(JsonChecker(out).valid()) << out;
    EXPECT_NE(out.find("occupancy.bank05"), std::string::npos);
}

TEST(Tracer, NamesAreJsonEscaped)
{
    Tracer tracer;
    tracer.threadName(1, 0, "weird \"name\"\nwith\tescapes");
    std::string out = dump(tracer);
    EXPECT_TRUE(JsonChecker(out).valid()) << out;
    EXPECT_NE(out.find("\\\"name\\\""), std::string::npos);
    EXPECT_NE(out.find("\\n"), std::string::npos);
}

TEST(Tracer, MacroCompilesToSingleBranch)
{
    Tracer tracer;
    Tracer *enabled = &tracer;
    Tracer *disabled = nullptr;
    JUMANJI_TRACE(enabled, instant(1, 0, "hit", 5));
    JUMANJI_TRACE(disabled, instant(1, 0, "never", 5));
    EXPECT_EQ(tracer.eventCount(), 1u);
}

} // namespace
} // namespace jumanji
