/**
 * @file
 * Tests for the System assembly layer and the experiment harness.
 * These run small end-to-end simulations (testTiny geometry keeps
 * them fast).
 */

#include <gtest/gtest.h>

#include "src/sim/logging.hh"
#include "src/system/harness.hh"
#include "src/system/system.hh"

namespace jumanji {
namespace {

SystemConfig
smallConfig()
{
    // Paper topology but small banks + short windows, so these
    // system tests stay fast while still exercising 20 cores.
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.llc.setsPerBank = 32;
    cfg.capacityScale = 0.0625;
    cfg.epochTicks = 50000;
    cfg.warmupTicks = 200000;
    cfg.measureTicks = 300000;
    cfg.seed = 7;
    return cfg;
}

WorkloadMix
smallMix(std::uint64_t seed = 7)
{
    Rng rng(seed);
    return makeMix({"xapian"}, 4, 4, rng);
}

TEST(SystemTest, ConstructsAndRuns)
{
    System system(smallConfig(), smallMix());
    RunResult run = system.run();
    EXPECT_EQ(run.apps.size(), 20u);
    EXPECT_GT(run.measuredTicks, 0u);
    for (const auto &app : run.apps)
        EXPECT_GT(app.progress.instrs, 0u) << app.name;
}

TEST(SystemTest, RejectsOversizedMix)
{
    Rng rng(1);
    WorkloadMix big = makeMix({"xapian"}, 4, 10, rng); // 44 apps
    EXPECT_THROW(System(smallConfig(), big), FatalError);
}

TEST(SystemTest, DeterministicAcrossRuns)
{
    SystemConfig cfg = smallConfig();
    System a(cfg, smallMix());
    System b(cfg, smallMix());
    RunResult ra = a.run();
    RunResult rb = b.run();
    for (std::size_t i = 0; i < ra.apps.size(); i++) {
        EXPECT_EQ(ra.apps[i].progress.instrs, rb.apps[i].progress.instrs)
            << ra.apps[i].name;
        EXPECT_DOUBLE_EQ(ra.apps[i].tailLatency, rb.apps[i].tailLatency);
    }
    EXPECT_DOUBLE_EQ(ra.attackersPerAccess, rb.attackersPerAccess);
}

TEST(SystemTest, SeedChangesResults)
{
    SystemConfig cfg = smallConfig();
    System a(cfg, smallMix());
    cfg.seed = 8;
    System b(cfg, smallMix());
    RunResult ra = a.run();
    RunResult rb = b.run();
    bool anyDiff = false;
    for (std::size_t i = 0; i < ra.apps.size(); i++)
        if (ra.apps[i].progress.instrs != rb.apps[i].progress.instrs)
            anyDiff = true;
    EXPECT_TRUE(anyDiff);
}

TEST(SystemTest, LcAppsReportRequests)
{
    System system(smallConfig(), smallMix());
    RunResult run = system.run();
    for (const auto &app : run.apps) {
        if (!app.latencyCritical) continue;
        EXPECT_GT(app.requestsCompleted, 0u);
        EXPECT_GT(app.tailLatency, 0.0);
        EXPECT_GT(app.deadline, 0.0);
    }
}

TEST(SystemTest, JumanjiHasZeroAttackers)
{
    SystemConfig cfg = smallConfig();
    cfg.design = LlcDesign::Jumanji;
    System system(cfg, smallMix());
    RunResult run = system.run();
    EXPECT_DOUBLE_EQ(run.attackersPerAccess, 0.0);
}

TEST(SystemTest, SnucaDesignsFullyExposed)
{
    for (LlcDesign d : {LlcDesign::Static, LlcDesign::Adaptive}) {
        SystemConfig cfg = smallConfig();
        cfg.design = d;
        System system(cfg, smallMix());
        RunResult run = system.run();
        // 15 untrusted apps share every bank (4 VMs x 5 apps - own 5).
        EXPECT_GT(run.attackersPerAccess, 12.0) << llcDesignName(d);
    }
}

TEST(SystemTest, IdealBatchRunsWithTwoLlcs)
{
    SystemConfig cfg = smallConfig();
    cfg.design = LlcDesign::JumanjiIdealBatch;
    System system(cfg, smallMix());
    RunResult run = system.run();
    EXPECT_EQ(run.apps.size(), 20u);
    EXPECT_DOUBLE_EQ(run.attackersPerAccess, 0.0);
}

TEST(SystemTest, ReconfiguresEveryEpoch)
{
    SystemConfig cfg = smallConfig();
    System system(cfg, smallMix());
    system.run();
    Tick total = cfg.warmupTicks + cfg.measureTicks;
    std::uint64_t expected = total / cfg.epochTicks;
    EXPECT_NEAR(static_cast<double>(system.runtime().reconfigurations()),
                static_cast<double>(expected), 2.0);
}

TEST(SystemTest, TimelinesPopulated)
{
    SystemConfig cfg = smallConfig();
    System system(cfg, smallMix());
    system.run();
    EXPECT_FALSE(system.allocationTimeline().empty());
    EXPECT_FALSE(system.vulnerabilityTimeline().empty());
    EXPECT_EQ(system.latencyTimeline().size(), 1u); // one LC app name
}

TEST(SystemTest, EnergyPositive)
{
    System system(smallConfig(), smallMix());
    RunResult run = system.run();
    EXPECT_GT(run.energy.total(), 0.0);
    EXPECT_GT(run.energy.mem, 0.0);
    EXPECT_GT(run.energy.noc, 0.0);
}

TEST(SystemTest, VmScalingConfigs)
{
    // Fig. 17's regroupings all construct and run.
    Rng rng(3);
    WorkloadMix base = makeMix(allTailAppNames(), 4, 4, rng);
    for (std::uint32_t vms : {1u, 2u, 4u, 10u}) {
        SystemConfig cfg = smallConfig();
        cfg.design = LlcDesign::Jumanji;
        WorkloadMix mix = regroupMix(base, vms);
        System system(cfg, mix);
        RunResult run = system.run();
        EXPECT_EQ(run.apps.size(), 20u) << vms << " VMs";
    }
}

TEST(SystemTest, NominalServiceCyclesSane)
{
    for (const auto &params : tailAppCatalog()) {
        double service = System::nominalServiceCycles(params, 30.0);
        EXPECT_GT(service, static_cast<double>(params.instrsPerRequest) /
                               params.traits.baseIpc);
    }
}

TEST(SystemTest, FixedLcTargetPinsAllocation)
{
    SystemConfig cfg = smallConfig();
    cfg.design = LlcDesign::Jumanji;
    cfg.fixedLcTargetLines = cfg.placementGeometry().totalLines() / 10;
    System system(cfg, smallMix());
    system.run();
    // Every epoch's LC allocation equals the pinned target (within
    // way quantization).
    for (const auto &epoch : system.allocationTimeline()) {
        for (const auto &[vc, lines] : epoch.allocLines) {
            if (vc % 5 != 0) continue; // LC apps are first per VM
            EXPECT_NEAR(static_cast<double>(lines),
                        static_cast<double>(cfg.fixedLcTargetLines),
                        static_cast<double>(
                            2 * cfg.placementGeometry().linesPerWay()));
        }
    }
}

TEST(SystemTest, LoadLevelHelpers)
{
    EXPECT_DOUBLE_EQ(loadUtilization(LoadLevel::Low), 0.10);
    EXPECT_DOUBLE_EQ(loadUtilization(LoadLevel::High), 0.50);
    EXPECT_STREQ(loadName(LoadLevel::Low), "low");
    EXPECT_STREQ(loadName(LoadLevel::High), "high");
}

TEST(SystemTest, LowLoadMeansFewerRequests)
{
    SystemConfig cfg = smallConfig();
    cfg.load = LoadLevel::Low;
    System low(cfg, smallMix());
    RunResult lowRun = low.run();
    cfg.load = LoadLevel::High;
    System high(cfg, smallMix());
    RunResult highRun = high.run();

    auto requests = [](const RunResult &r) {
        std::uint64_t n = 0;
        for (const auto &app : r.apps)
            if (app.latencyCritical) n += app.requestsCompleted;
        return n;
    };
    // High load = 5x the arrival rate of low load.
    EXPECT_GT(requests(highRun), 3 * requests(lowRun));
}

TEST(SystemTest, PaperScaleGeometryRuns)
{
    // The full Table II geometry (20 MB LLC, 512-set banks) must
    // construct and execute; only the time windows are shortened so
    // the test stays fast. This guards the unscaled configuration
    // that --paper-scale exposes.
    SystemConfig cfg = SystemConfig::paperDefault();
    cfg.epochTicks = 200000;
    cfg.warmupTicks = 400000;
    cfg.measureTicks = 400000;
    cfg.seed = 5;
    cfg.design = LlcDesign::Jumanji;
    Rng rng(5);
    WorkloadMix mix = makeMix({"xapian"}, 4, 4, rng);
    System system(cfg, mix);
    RunResult run = system.run();
    EXPECT_EQ(run.apps.size(), 20u);
    EXPECT_DOUBLE_EQ(run.attackersPerAccess, 0.0);
    EXPECT_EQ(system.memPath().totalLines(), 20u * 512 * 32);
}

// ------------------------------------------------------------ Harness

TEST(Harness, CalibrationProducesPositiveValues)
{
    ExperimentHarness harness(smallConfig());
    const LcCalibration &calib = harness.calibrationFor("silo");
    EXPECT_GT(calib.serviceCycles, 0.0);
    EXPECT_GT(calib.deadline, calib.serviceCycles);
}

TEST(Harness, CalibrationCached)
{
    ExperimentHarness harness(smallConfig());
    const LcCalibration &a = harness.calibrationFor("silo");
    const LcCalibration &b = harness.calibrationFor("silo");
    EXPECT_EQ(&a, &b);
}

TEST(Harness, RunMixIncludesStaticBaseline)
{
    ExperimentHarness harness(smallConfig());
    MixResult result =
        harness.runMix(smallMix(), {LlcDesign::Jumanji}, LoadLevel::High);
    EXPECT_EQ(result.designs.size(), 2u);
    EXPECT_EQ(result.designs[0].design, LlcDesign::Static);
    EXPECT_DOUBLE_EQ(result.designs[0].batchSpeedup, 1.0);
    EXPECT_NO_THROW(result.of(LlcDesign::Jumanji));
    EXPECT_THROW(result.of(LlcDesign::Jigsaw), FatalError);
}

TEST(Harness, MixCountEnvOverride)
{
    unsetenv("JUMANJI_MIXES");
    EXPECT_EQ(ExperimentHarness::mixCountFromEnv(6), 6u);
    setenv("JUMANJI_MIXES", "3", 1);
    EXPECT_EQ(ExperimentHarness::mixCountFromEnv(6), 3u);
    setenv("JUMANJI_MIXES", "garbage", 1);
    EXPECT_EQ(ExperimentHarness::mixCountFromEnv(6), 6u);
    unsetenv("JUMANJI_MIXES");
}

TEST(Harness, CalibrationOrderingMatchesTableIII)
{
    // Table III's QPS ordering is a service-time ordering: silo and
    // masstree serve the shortest requests, img-dnn and moses the
    // longest. The calibrated service times must reproduce it.
    ExperimentHarness harness(smallConfig());
    double silo = harness.calibrationFor("silo").serviceCycles;
    double masstree = harness.calibrationFor("masstree").serviceCycles;
    double xapian = harness.calibrationFor("xapian").serviceCycles;
    double imgdnn = harness.calibrationFor("img-dnn").serviceCycles;
    double moses = harness.calibrationFor("moses").serviceCycles;
    EXPECT_LT(silo, masstree);
    EXPECT_LT(masstree, xapian);
    EXPECT_LT(xapian, imgdnn);
    EXPECT_LT(xapian, moses);
}

TEST(Harness, AggregationHelpers)
{
    ExperimentHarness harness(smallConfig());
    std::vector<MixResult> results;
    results.push_back(harness.runMix(smallMix(), {LlcDesign::Jumanji},
                                     LoadLevel::High));
    auto speedups = gmeanSpeedups(results);
    auto tails = worstTailRatios(results);
    auto vuln = meanVulnerability(results);
    EXPECT_EQ(speedups.count(LlcDesign::Jumanji), 1u);
    EXPECT_DOUBLE_EQ(speedups[LlcDesign::Static], 1.0);
    EXPECT_GT(tails[LlcDesign::Static], 0.0);
    EXPECT_DOUBLE_EQ(vuln[LlcDesign::Jumanji], 0.0);
    EXPECT_GT(vuln[LlcDesign::Static], 10.0);
}

} // namespace
} // namespace jumanji
