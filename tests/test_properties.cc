/**
 * @file
 * Property-based tests: invariants checked over randomized inputs
 * via parameterized sweeps (TEST_P). These complement the
 * example-based unit tests with coverage of the input space.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/cache/cache_array.hh"
#include "src/core/lookahead.hh"
#include "src/core/placement_types.hh"
#include "src/core/policies.hh"
#include "src/dnuca/miss_curve.hh"
#include "src/dnuca/umon.hh"
#include "src/dnuca/vtb.hh"
#include "src/sim/rng.hh"

namespace jumanji {
namespace {

// ------------------------------------------------ random generators

MissCurve
randomCurve(Rng &rng, std::size_t buckets = 16)
{
    std::vector<double> pts(buckets + 1);
    double v = 1000.0 + static_cast<double>(rng.below(100000));
    for (auto &p : pts) {
        p = v;
        v *= 0.5 + 0.5 * rng.uniform();
    }
    return MissCurve(std::move(pts));
}

PlacementGeometry
randomGeo(Rng &rng)
{
    PlacementGeometry geo;
    geo.banks = 2 + static_cast<std::uint32_t>(rng.below(19));
    geo.waysPerBank = 4u << rng.below(3); // 4, 8, 16
    geo.linesPerBank = (64u << rng.below(4)) * geo.waysPerBank / 4;
    geo.linesPerBucket = std::max<std::uint64_t>(1, geo.totalLines() / 16);
    return geo;
}

// ------------------------------------------------------- MissCurve

class CurveProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CurveProperty, HullIsConvexMonotoneLowerBound)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 20; trial++) {
        MissCurve curve = randomCurve(rng, 8 + rng.below(60));
        MissCurve hull = curve.convexHull();

        ASSERT_EQ(hull.points().size(), curve.points().size());
        for (std::size_t k = 0; k < hull.points().size(); k++) {
            EXPECT_LE(hull.at(k), curve.at(k) + 1e-6);
            if (k > 0) EXPECT_LE(hull.at(k), hull.at(k - 1) + 1e-9);
        }
        for (std::size_t k = 1; k + 1 < hull.points().size(); k++) {
            double dLeft = hull.at(k - 1) - hull.at(k);
            double dRight = hull.at(k) - hull.at(k + 1);
            EXPECT_GE(dLeft + 1e-6, dRight);
        }
        // Idempotent.
        MissCurve hull2 = hull.convexHull();
        for (std::size_t k = 0; k < hull.points().size(); k++)
            EXPECT_NEAR(hull2.at(k), hull.at(k), 1e-6);
    }
}

TEST_P(CurveProperty, CombineOptimalDominatesAnyEvenSplit)
{
    Rng rng(GetParam() ^ 0xc0ffee);
    for (int trial = 0; trial < 10; trial++) {
        MissCurve a = randomCurve(rng);
        MissCurve b = randomCurve(rng);
        MissCurve combined = MissCurve::combineOptimal({a, b});
        // The optimal division is at least as good as any even split
        // of hulled curves (combine works on hulls).
        MissCurve ha = a.convexHull(), hb = b.convexHull();
        for (std::size_t k = 0; k <= combined.buckets(); k += 2) {
            double even = ha.at(k / 2) + hb.at(k / 2);
            EXPECT_LE(combined.at(k), even + 1e-6)
                << "k=" << k << " trial=" << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurveProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------------- Lookahead

class LookaheadProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LookaheadProperty, ConservesBudgetAndHonorsFloors)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 10; trial++) {
        PlacementGeometry geo = randomGeo(rng);
        std::size_t n = 1 + rng.below(12);
        std::vector<LookaheadClaim> claims(n);
        std::uint64_t floorSum = 0;
        for (auto &claim : claims) {
            claim.curve = randomCurve(rng);
            if (rng.bernoulli(0.4)) {
                claim.floorLines = rng.below(geo.totalLines() / (2 * n));
                floorSum += claim.floorLines;
            }
        }
        std::uint64_t budget =
            floorSum + rng.below(geo.totalLines() - floorSum + 1);

        LookaheadResult r = lookahead(claims, budget, geo);
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < n; i++) {
            EXPECT_GE(r.lines[i], claims[i].floorLines);
            total += r.lines[i];
        }
        EXPECT_LE(total, budget + geo.linesPerWay());
        if (budget >= geo.linesPerWay()) EXPECT_GT(total, 0u);
    }
}

TEST_P(LookaheadProperty, JumanjiVariantBankGranular)
{
    Rng rng(GetParam() ^ 0xbeef);
    for (int trial = 0; trial < 10; trial++) {
        PlacementGeometry geo = randomGeo(rng);
        std::size_t n = 1 + rng.below(6);
        if (n > geo.banks) n = geo.banks;
        std::vector<LookaheadClaim> claims(n);
        for (auto &claim : claims) {
            claim.curve = randomCurve(rng);
            claim.floorLines = rng.below(geo.linesPerBank);
        }
        LookaheadResult r =
            jumanjiLookahead(claims, geo.totalLines(), geo);
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < n; i++) {
            EXPECT_EQ(r.lines[i] % geo.linesPerBank, 0u);
            EXPECT_GE(r.lines[i], geo.linesPerBank); // every VM >= 1
            EXPECT_GE(r.lines[i], claims[i].floorLines);
            total += r.lines[i];
        }
        EXPECT_EQ(total, geo.totalLines());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookaheadProperty,
                         ::testing::Values(1, 4, 9, 16, 25, 36));

// ------------------------------------------------- materializePlan

class PlanProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PlanProperty, MasksDisjointAndDescriptorsConsistent)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 10; trial++) {
        PlacementGeometry geo = randomGeo(rng);
        AllocationMatrix matrix(geo.banks);
        std::size_t vcs = 1 + rng.below(10);
        for (VcId vc = 0; vc < static_cast<VcId>(vcs); vc++) {
            // Random allocations over random banks.
            std::uint32_t spread = 1 + static_cast<std::uint32_t>(
                                           rng.below(geo.banks));
            for (std::uint32_t k = 0; k < spread; k++) {
                auto bank = static_cast<BankId>(rng.below(geo.banks));
                matrix.add(bank, vc,
                           rng.below(geo.linesPerBank / spread) + 1);
            }
        }

        PlacementPlan plan = materializePlan(matrix, geo, nullptr);

        // Masks disjoint per bank, and total within associativity.
        for (std::uint32_t b = 0; b < geo.banks; b++) {
            std::uint64_t seen = 0;
            std::uint32_t total = 0;
            for (const auto &[vc, masks] : plan.wayMasks) {
                std::uint64_t bits = masks[b].bits();
                EXPECT_EQ(seen & bits, 0u)
                    << "overlapping masks in bank " << b;
                seen |= bits;
                total += masks[b].count();
            }
            EXPECT_LE(total, geo.waysPerBank);
        }

        // Descriptors only point at banks where the VC has lines.
        for (const auto &[vc, desc] : plan.descriptors) {
            for (BankId b : desc.ownedBanks())
                EXPECT_GT(matrix.get(b, vc), 0u)
                    << "descriptor points at empty bank";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanProperty,
                         ::testing::Values(2, 3, 5, 7, 11, 13));

// ----------------------------------------------------- Policies

class PolicyProperty : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    EpochInputs
    randomInputs(Rng &rng, const PlacementGeometry &geo,
                 const MeshTopology &mesh)
    {
        EpochInputs in;
        in.geo = geo;
        in.mesh = &mesh;
        std::uint32_t vms = 1 + static_cast<std::uint32_t>(rng.below(4));
        std::uint32_t apps = vms + static_cast<std::uint32_t>(
                                       rng.below(mesh.numTiles() - vms));
        for (std::uint32_t i = 0; i < apps; i++) {
            VcInfo vc;
            vc.vc = static_cast<VcId>(i);
            vc.app = static_cast<AppId>(i);
            vc.vm = static_cast<VmId>(i % vms);
            vc.coreTile = static_cast<std::uint32_t>(
                rng.below(mesh.numTiles()));
            vc.latencyCritical = i < vms && rng.bernoulli(0.7);
            vc.curve = randomCurve(rng);
            if (vc.latencyCritical)
                vc.targetLines = rng.below(geo.totalLines() / 4);
            vc.name = "app" + std::to_string(i);
            in.vcs.push_back(std::move(vc));
        }
        return in;
    }
};

TEST_P(PolicyProperty, JumanjiNeverSharesBanksAcrossVms)
{
    Rng rng(GetParam());
    MeshParams mp;
    mp.cols = 5;
    mp.rows = 4;
    MeshTopology mesh(mp);
    PlacementGeometry geo;
    geo.banks = 20;
    geo.waysPerBank = 16;
    geo.linesPerBank = 1024;
    geo.linesPerBucket = geo.totalLines() / 16;

    for (int trial = 0; trial < 8; trial++) {
        EpochInputs in = randomInputs(rng, geo, mesh);
        JumanjiPolicy policy(true);
        PlacementPlan plan = policy.reconfigure(in);

        std::map<VcId, VmId> vmOf;
        for (const auto &vc : in.vcs) vmOf[vc.vc] = vc.vm;
        for (std::uint32_t b = 0; b < geo.banks; b++) {
            auto vms = plan.matrix.vmsInBank(static_cast<BankId>(b),
                                             vmOf);
            EXPECT_LE(vms.size(), 1u)
                << "trial " << trial << " bank " << b;
        }
    }
}

TEST_P(PolicyProperty, AllPoliciesCoverEveryVcAndConserveCapacity)
{
    Rng rng(GetParam() ^ 0xfeedface);
    MeshParams mp;
    mp.cols = 4;
    mp.rows = 3;
    MeshTopology mesh(mp);
    PlacementGeometry geo;
    geo.banks = 12;
    geo.waysPerBank = 16;
    geo.linesPerBank = 2048;
    geo.linesPerBucket = geo.totalLines() / 16;

    for (LlcDesign d : {LlcDesign::Static, LlcDesign::Adaptive,
                        LlcDesign::VMPart, LlcDesign::Jigsaw,
                        LlcDesign::Jumanji, LlcDesign::JumanjiInsecure}) {
        EpochInputs in = randomInputs(rng, geo, mesh);
        auto policy = LlcPolicy::create(d);
        PlacementPlan plan = policy->reconfigure(in);

        std::uint64_t total = 0;
        for (const auto &vc : in.vcs) {
            EXPECT_TRUE(plan.descriptors.count(vc.vc))
                << llcDesignName(d);
            total += plan.matrix.vcTotal(vc.vc);
        }
        EXPECT_LE(total, geo.totalLines()) << llcDesignName(d);
        // Physical banks never oversubscribed.
        for (std::uint32_t b = 0; b < geo.banks; b++)
            EXPECT_LE(plan.matrix.bankTotal(static_cast<BankId>(b)),
                      geo.linesPerBank)
                << llcDesignName(d) << " bank " << b;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------------------------- descriptor churn

class DescriptorProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DescriptorProperty, StabilizationNeverIncreasesMoves)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 20; trial++) {
        std::uint32_t banks = 2 + static_cast<std::uint32_t>(
                                      rng.below(18));
        auto randomShares = [&] {
            std::vector<std::pair<BankId, double>> shares;
            for (std::uint32_t b = 0; b < banks; b++)
                if (rng.bernoulli(0.7))
                    shares.emplace_back(static_cast<BankId>(b),
                                        0.1 + rng.uniform());
            if (shares.empty()) shares.emplace_back(0, 1.0);
            return shares;
        };

        PlacementDescriptor prev, next;
        prev.fillProportional(randomShares());
        next.fillProportional(randomShares());
        PlacementDescriptor stable = next.stabilizedAgainst(prev);

        auto moves = [&](const PlacementDescriptor &d) {
            std::uint32_t m = 0;
            for (std::uint32_t s = 0; s < PlacementDescriptor::kSlots;
                 s++)
                if (d.slot(s) != prev.slot(s)) m++;
            return m;
        };
        EXPECT_LE(moves(stable), moves(next));
        // Quotas preserved exactly.
        for (std::uint32_t b = 0; b < banks; b++)
            EXPECT_EQ(stable.slotsOn(static_cast<BankId>(b)),
                      next.slotsOn(static_cast<BankId>(b)));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DescriptorProperty,
                         ::testing::Values(10, 20, 30, 40));

// ----------------------------------------------------- cache array

class ArrayProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ArrayProperty, OccupancyAccountingAlwaysConsistent)
{
    Rng rng(GetParam());
    CacheArray array(16, 8, ReplKind::DRRIP, 3);
    array.setWayMask(0, WayMask::range(0, 4));
    array.setWayMask(1, WayMask::range(4, 2));
    array.setWayMask(2, WayMask::range(6, 2));

    std::uint64_t ops = 0;
    for (int i = 0; i < 5000; i++) {
        auto vc = static_cast<VcId>(rng.below(3));
        AccessOwner owner;
        owner.vc = vc;
        owner.app = vc;
        owner.vm = vc % 2;
        array.access(rng.below(1000), owner);
        ops++;
        if (i % 500 == 0) array.invalidateVc(rng.below(3));

        std::uint64_t sum = array.occupancyOfVc(0) +
                            array.occupancyOfVc(1) +
                            array.occupancyOfVc(2);
        ASSERT_EQ(sum, array.validLines()) << "after op " << ops;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrayProperty,
                         ::testing::Values(1, 2, 3, 4));

// ------------------------------------------------------------ Umon

class UmonProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UmonProperty, CurveMonotoneAndBounded)
{
    Rng rng(GetParam());
    UmonParams params;
    params.sets = 32;
    params.ways = 16;
    params.modelledLines = 512 * (1 + rng.below(8));
    Umon umon(params);

    for (int i = 0; i < 20000; i++)
        umon.access(rng.below(1 + rng.below(5000)));

    MissCurve curve = umon.missCurve();
    for (std::size_t k = 1; k <= curve.buckets(); k++)
        EXPECT_LE(curve.at(k), curve.at(k - 1) + 1e-9);
    // Misses at zero capacity equal total (scaled) accesses.
    EXPECT_GT(curve.at(0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UmonProperty,
                         ::testing::Values(3, 6, 9, 12));

} // namespace
} // namespace jumanji
