/**
 * @file
 * Tests for the extension features: the trading policy (the paper's
 * rejected refinement), the VM swap-in flush, the coherence-walk
 * model switch, and the ablation flags.
 */

#include <gtest/gtest.h>

#include "src/core/trade_policy.hh"
#include "src/cpu/mem_path.hh"
#include "src/sim/logging.hh"
#include "src/sim/rng.hh"
#include "src/system/config.hh"
#include "src/system/system.hh"
#include "src/workloads/mixes.hh"

namespace jumanji {
namespace {

PlacementGeometry
tradeGeo()
{
    PlacementGeometry geo;
    geo.banks = 4;
    geo.waysPerBank = 8;
    geo.linesPerBank = 1024;
    geo.linesPerBucket = geo.totalLines() / 16;
    return geo;
}

EpochInputs
tradeInputs(const PlacementGeometry &geo, const MeshTopology &mesh)
{
    // One VM spanning the whole 2x2 mesh: LC on tile 0, batch on
    // tile 3 — maximally far apart, the configuration most likely
    // to produce profitable trades.
    EpochInputs in;
    in.geo = geo;
    in.mesh = &mesh;

    VcInfo lc;
    lc.vc = 0;
    lc.app = 0;
    lc.vm = 0;
    lc.coreTile = 0;
    lc.latencyCritical = true;
    lc.targetLines = geo.linesPerBank + geo.linesPerBank / 2;
    lc.curve = MissCurve({100, 50, 25, 12, 6, 3, 1, 0, 0, 0, 0, 0, 0,
                          0, 0, 0, 0});
    lc.name = "lc";
    in.vcs.push_back(lc);

    VcInfo batch;
    batch.vc = 1;
    batch.app = 1;
    batch.vm = 0;
    batch.coreTile = 3;
    batch.latencyCritical = false;
    batch.curve = MissCurve({1000, 700, 500, 350, 250, 180, 130, 90,
                             60, 40, 25, 15, 10, 6, 3, 1, 0});
    batch.name = "batch";
    in.vcs.push_back(batch);
    return in;
}

// -------------------------------------------------------- TradePolicy

TEST(TradePolicy, RejectsPenalizingCompensation)
{
    TradeParams params;
    params.compensation = 0.9;
    EXPECT_THROW(JumanjiTradePolicy{params}, FatalError);
}

TEST(TradePolicy, CapacityConservedAcrossTrades)
{
    MeshParams mp;
    mp.cols = 2;
    mp.rows = 2;
    MeshTopology mesh(mp);
    PlacementGeometry geo = tradeGeo();
    EpochInputs in = tradeInputs(geo, mesh);

    JumanjiTradePolicy policy;
    PlacementPlan plan = policy.reconfigure(in);

    std::uint64_t total = 0;
    for (const auto &vc : in.vcs) total += plan.matrix.vcTotal(vc.vc);
    EXPECT_LE(total, geo.totalLines());
    for (std::uint32_t b = 0; b < geo.banks; b++)
        EXPECT_LE(plan.matrix.bankTotal(static_cast<BankId>(b)),
                  geo.linesPerBank);
}

TEST(TradePolicy, LcNeverShrinksFromTrades)
{
    MeshParams mp;
    mp.cols = 2;
    mp.rows = 2;
    MeshTopology mesh(mp);
    PlacementGeometry geo = tradeGeo();
    EpochInputs in = tradeInputs(geo, mesh);

    JumanjiPolicy plain(true);
    JumanjiTradePolicy trading;
    PlacementPlan before = plain.reconfigure(in);
    PlacementPlan after = trading.reconfigure(in);

    // The LC app's total may only grow (compensation >= 1).
    EXPECT_GE(after.matrix.vcTotal(0), before.matrix.vcTotal(0));
}

TEST(TradePolicy, TradesAreRareOnStandardWorkloads)
{
    // The paper's negative result: on the standard 4-VM case study,
    // the no-penalty constraint leaves few acceptable trades, so the
    // policy behaves like plain Jumanji.
    MeshParams mp;
    mp.cols = 5;
    mp.rows = 4;
    MeshTopology mesh(mp);
    PlacementGeometry geo;
    geo.banks = 20;
    geo.waysPerBank = 32;
    geo.linesPerBank = 4096;
    geo.linesPerBucket = geo.totalLines() / 64;

    EpochInputs in;
    in.geo = geo;
    in.mesh = &mesh;
    Rng rng(3);
    for (int i = 0; i < 20; i++) {
        VcInfo vc;
        vc.vc = i;
        vc.app = i;
        vc.vm = i / 5;
        vc.coreTile = static_cast<std::uint32_t>(i);
        vc.latencyCritical = (i % 5 == 0);
        vc.targetLines = geo.linesPerBank;
        std::vector<double> pts(65);
        double v = 1e4 + static_cast<double>(rng.below(100000));
        for (auto &p : pts) {
            p = v;
            v *= 0.85;
        }
        vc.curve = MissCurve(pts);
        vc.name = "app" + std::to_string(i);
        in.vcs.push_back(std::move(vc));
    }

    JumanjiTradePolicy policy;
    for (int epoch = 0; epoch < 5; epoch++) policy.reconfigure(in);
    // Acceptance rate is low: trades happen, but rarely relative to
    // candidates considered.
    EXPECT_GT(policy.tradesConsidered(), policy.tradesAccepted() * 4);
}

// ----------------------------------------------------- VM flush

TEST(VmFlush, DropsOnlyOtherVmsLines)
{
    LlcParams llc;
    llc.banks = 2;
    llc.setsPerBank = 16;
    llc.ways = 4;
    llc.repl = ReplKind::LRU;
    MeshParams mesh;
    mesh.cols = 2;
    mesh.rows = 1;
    MemPath path(llc, mesh, MemoryParams{}, UmonParams{}, 1);

    PlacementDescriptor striped;
    striped.fillStriped({0, 1});
    for (VcId vc = 0; vc < 2; vc++) {
        path.registerVc(vc);
        path.installPlacement(vc, striped);
    }

    AccessOwner a;
    a.vc = 0;
    a.app = 0;
    a.vm = 0;
    AccessOwner b;
    b.vc = 1;
    b.app = 1;
    b.vm = 1;
    for (LineAddr l = 0; l < 40; l++) path.access(0, 0, a, l);
    for (LineAddr l = 1000; l < 1040; l++) path.access(100, 1, b, l);

    std::uint64_t vm0Before = path.bank(0).constArray().occupancyOfVc(0);
    ASSERT_GT(vm0Before, 0u);

    // VM 0 is swapped onto bank 0: all other VMs' state is flushed.
    std::uint64_t flushed = path.flushBankForVm(0, /*incoming=*/0);
    EXPECT_GT(flushed, 0u);
    EXPECT_EQ(path.bank(0).constArray().occupancyOfVc(1), 0u);
    EXPECT_EQ(path.bank(0).constArray().occupancyOfVc(0), vm0Before);
    // Bank 1 untouched.
    EXPECT_GT(path.bank(1).constArray().occupancyOfVc(1), 0u);
}

// ------------------------------------------------- walk model switch

TEST(WalkModel, MigrationPreservesResidency)
{
    LlcParams llc;
    llc.banks = 2;
    llc.setsPerBank = 16;
    llc.ways = 4;
    llc.repl = ReplKind::LRU;
    MeshParams mesh;
    mesh.cols = 2;
    mesh.rows = 1;

    for (bool migrate : {true, false}) {
        MemPath path(llc, mesh, MemoryParams{}, UmonParams{}, 1);
        path.setMigrateOnReconfig(migrate);
        path.registerVc(0);
        PlacementDescriptor first;
        first.fillStriped({0});
        path.installPlacement(0, first);

        AccessOwner o;
        o.vc = 0;
        o.app = 0;
        o.vm = 0;
        for (LineAddr l = 0; l < 30; l++) path.access(0, 0, o, l);
        std::uint64_t resident =
            path.bank(0).constArray().occupancyOfVc(0);

        PlacementDescriptor second;
        second.fillStriped({1});
        path.installPlacement(0, second);

        std::uint64_t after = path.bank(1).constArray().occupancyOfVc(0);
        if (migrate) {
            EXPECT_EQ(after, resident) << "migration must carry lines";
        } else {
            EXPECT_EQ(after, 0u) << "invalidation must drop lines";
        }
        EXPECT_EQ(path.bank(0).constArray().occupancyOfVc(0), 0u);
    }
}

// -------------------------------------------------- thread migration

TEST(Migration, AllocationFollowsThread)
{
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.llc.setsPerBank = 32;
    cfg.capacityScale = 0.0625;
    cfg.epochTicks = 50000;
    cfg.warmupTicks = 200000;
    cfg.measureTicks = 200000;
    cfg.design = LlcDesign::Jumanji;
    cfg.seed = 3;

    // Two VMs with one LC app each, plus one batch app, leaving
    // free tiles to migrate into.
    WorkloadMix mix;
    for (int v = 0; v < 2; v++) {
        VmSpec vm;
        vm.lcApps.push_back("silo");
        vm.batchApps.push_back("429.mcf");
        mix.vms.push_back(vm);
    }
    System system(cfg, mix);
    system.runUntil(cfg.warmupTicks);

    // App 0 (VM 0's silo) starts at tile 0; its allocation should
    // sit in nearby banks.
    MeshTopology mesh(cfg.mesh);
    auto meanHops = [&](std::uint32_t tile) {
        const auto &banks =
            system.memPath().vtb().descriptor(0).ownedBanks();
        double hops = 0;
        for (BankId b : banks)
            hops += mesh.hops(tile, static_cast<std::uint32_t>(b));
        return hops / static_cast<double>(banks.size());
    };
    double hopsFromOldTile = meanHops(0);

    // Migrate to the free top-right corner (VM anchors sit at tiles
    // 0 and 19; tiles 4 and 15 are unoccupied).
    system.migrateApp(0, 4);
    system.runUntil(cfg.warmupTicks + 4 * cfg.epochTicks);

    double hopsFromNewTile = meanHops(4);
    double hopsFromAbandonedTile = meanHops(0);
    // The allocation must now be anchored at the new tile: close to
    // it in absolute terms (mesh-average distance is ~3.5 hops) and
    // far closer than to the abandoned tile.
    EXPECT_LT(hopsFromNewTile, hopsFromOldTile + 1.0);
    EXPECT_LT(hopsFromNewTile, 2.0);
    EXPECT_GT(hopsFromAbandonedTile, hopsFromNewTile + 0.5)
        << "allocation still anchored at the abandoned tile";

    EXPECT_EQ(system.runtime().appTile(0), 4u);
}

TEST(Migration, RejectsOccupiedTile)
{
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.llc.setsPerBank = 32;
    cfg.capacityScale = 0.0625;
    Rng rng(2);
    WorkloadMix mix = makeMix({"silo"}, 4, 4, rng);
    System system(cfg, mix);
    // Tile of app 1 is occupied.
    std::uint32_t occupied =
        static_cast<std::uint32_t>(system.cores()[1]->id());
    EXPECT_THROW(system.migrateApp(0, occupied), FatalError);
    EXPECT_THROW(system.migrateApp(99, 0), FatalError);
}

// ------------------------------------------------- ablation flags

TEST(AblationFlags, VariantsRunAndStayIsolated)
{
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.llc.setsPerBank = 32;
    cfg.capacityScale = 0.0625;
    cfg.epochTicks = 50000;
    cfg.warmupTicks = 200000;
    cfg.measureTicks = 200000;
    cfg.design = LlcDesign::Jumanji;
    Rng rng(5);
    WorkloadMix mix = makeMix({"silo"}, 4, 4, rng);

    for (int variant = 0; variant < 3; variant++) {
        SystemConfig c = cfg;
        if (variant == 0) c.hullCurves = false;
        if (variant == 1) c.rateNormalizeCurves = false;
        if (variant == 2) c.migrateOnReconfig = false;
        System system(c, mix);
        RunResult run = system.run();
        EXPECT_DOUBLE_EQ(run.attackersPerAccess, 0.0)
            << "variant " << variant
            << " must not affect the isolation guarantee";
    }
}

} // namespace
} // namespace jumanji
