/**
 * @file
 * Unit tests for the DES kernel, RNG, and statistics primitives.
 */

#include <gtest/gtest.h>

#include <limits>

#include "src/sim/event_queue.hh"
#include "src/sim/logging.hh"
#include "src/sim/rng.hh"
#include "src/sim/stats.hh"

namespace jumanji {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next()) same++;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; i++) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 1000; i++) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, ExponentialMeanApprox)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; i++) sum += rng.exponential(100.0);
    EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Rng, ForkDecorrelates)
{
    Rng parent(5);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (parent.next() == child.next()) same++;
    EXPECT_LT(same, 3);
}

class CountingAgent : public Agent
{
  public:
    explicit CountingAgent(Tick period, int maxRuns = -1)
        : period_(period), maxRuns_(maxRuns)
    {
    }

    Tick
    resume(Tick now) override
    {
        runs++;
        lastTick = now;
        if (maxRuns_ >= 0 && runs >= maxRuns_) return kTickMax;
        return now + period_;
    }

    int runs = 0;
    Tick lastTick = 0;

  private:
    Tick period_;
    int maxRuns_;
};

TEST(EventQueue, RunsAgentsInOrder)
{
    EventQueue queue;
    CountingAgent fast(10);
    CountingAgent slow(100);
    queue.schedule(&fast, 0);
    queue.schedule(&slow, 0);
    queue.runUntil(1000);
    EXPECT_EQ(fast.runs, 100);
    EXPECT_EQ(slow.runs, 10);
}

TEST(EventQueue, StopsAtBoundary)
{
    EventQueue queue;
    CountingAgent agent(10);
    queue.schedule(&agent, 0);
    queue.runUntil(55);
    // Runs at 0,10,20,30,40,50 — not at 60.
    EXPECT_EQ(agent.runs, 6);
    EXPECT_EQ(queue.now(), 55u);
}

TEST(EventQueue, RetiredAgentStops)
{
    EventQueue queue;
    CountingAgent agent(10, 3);
    queue.schedule(&agent, 5);
    queue.runUntil(10000);
    EXPECT_EQ(agent.runs, 3);
}

TEST(EventQueue, ZeroDelaySelfLoopAdvances)
{
    // An agent returning its own wake time must still make progress.
    class Stubborn : public Agent
    {
      public:
        Tick
        resume(Tick now) override
        {
            runs++;
            return runs < 10 ? now : kTickMax;
        }
        int runs = 0;
    };
    EventQueue queue;
    Stubborn agent;
    queue.schedule(&agent, 0);
    queue.runUntil(1000);
    EXPECT_EQ(agent.runs, 10);
}

TEST(EventQueue, DeterministicTieBreak)
{
    // Two agents scheduled at the same tick run in schedule order.
    class Recorder : public Agent
    {
      public:
        Recorder(std::vector<int> *log, int id) : log_(log), id_(id) {}
        Tick
        resume(Tick) override
        {
            log_->push_back(id_);
            return kTickMax;
        }

      private:
        std::vector<int> *log_;
        int id_;
    };

    std::vector<int> log;
    Recorder a(&log, 1), b(&log, 2), c(&log, 3);
    EventQueue queue;
    queue.schedule(&a, 50);
    queue.schedule(&b, 50);
    queue.schedule(&c, 50);
    queue.runUntil(100);
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(SampleStat, PercentilesSorted)
{
    SampleStat stat;
    for (int i = 100; i >= 1; i--) stat.add(i);
    EXPECT_DOUBLE_EQ(stat.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(stat.percentile(100), 100.0);
    EXPECT_NEAR(stat.percentile(50), 50.5, 0.01);
    EXPECT_NEAR(stat.percentile(95), 95.05, 0.1);
}

TEST(SampleStat, EmptyIsZero)
{
    SampleStat stat;
    EXPECT_EQ(stat.percentile(95), 0.0);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.count(), 0u);
}

TEST(SampleStat, MeanMinMax)
{
    SampleStat stat;
    stat.add(2.0);
    stat.add(4.0);
    stat.add(9.0);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 100.0, 10);
    h.add(5.0);
    h.add(95.0);
    h.add(1000.0); // overflow
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.numBins(), 10u);
    EXPECT_EQ(h.counts().size(), 12u); // underflow + 10 bins + overflow
    EXPECT_EQ(h.counts()[1], 1u);      // 5.0 -> first in-range bin
    EXPECT_EQ(h.counts()[10], 1u);     // 95.0 -> last in-range bin
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.counts().back(), 1u);
    EXPECT_EQ(h.underflow(), 0u);
}

TEST(Histogram, UnderflowHasItsOwnBucket)
{
    // Out-of-range lows must not be conflated with the first
    // in-range bin [lo, lo+w).
    Histogram h(10.0, 20.0, 5);
    h.add(3.0);  // underflow
    h.add(-1.0); // underflow
    h.add(10.0); // first in-range bin
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.counts().front(), 2u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, BucketLowCoversUnderflowAndOverflow)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_EQ(h.bucketLow(0),
              -std::numeric_limits<double>::infinity());
    EXPECT_DOUBLE_EQ(h.bucketLow(1), 10.0); // first in-range bin
    EXPECT_DOUBLE_EQ(h.bucketLow(2), 12.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(5), 18.0); // last in-range bin
    EXPECT_DOUBLE_EQ(h.bucketLow(6), 20.0); // overflow bucket
}

TEST(SampleStat, PercentileLinearInterpolationPinned)
{
    // Regression for the documented definition: linear interpolation
    // between the two nearest ranks (numpy's default). With samples
    // {10, 20, 30, 40, 50}, rank(p) = p/100 * 4.
    SampleStat stat;
    for (double v : {50.0, 10.0, 40.0, 20.0, 30.0}) stat.add(v);
    EXPECT_DOUBLE_EQ(stat.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(stat.percentile(50.0), 30.0);
    EXPECT_DOUBLE_EQ(stat.percentile(25.0), 20.0);
    // p95: rank 3.8 -> 40 * 0.2 + 50 * 0.8 = 48.
    EXPECT_DOUBLE_EQ(stat.percentile(95.0), 48.0);
    EXPECT_DOUBLE_EQ(stat.percentile(100.0), 50.0);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(AccessCounters, Accumulate)
{
    AccessCounters a, b;
    a.llcHits = 5;
    b.llcHits = 7;
    b.nocHops = 3;
    a += b;
    EXPECT_EQ(a.llcHits, 12u);
    EXPECT_EQ(a.nocHops, 3u);
}

} // namespace
} // namespace jumanji
