/**
 * @file
 * Unit tests for the cache substrate: way masks, replacement
 * policies, the partitioned array, and bank timing.
 */

#include <gtest/gtest.h>

#include "src/cache/cache_array.hh"
#include "src/cache/cache_bank.hh"
#include "src/cache/replacement.hh"
#include "src/cache/way_mask.hh"
#include "src/sim/logging.hh"
#include "src/sim/rng.hh"

namespace jumanji {
namespace {

AccessOwner
owner(AppId app, VcId vc = -1, VmId vm = 0)
{
    AccessOwner o;
    o.app = app;
    o.vc = vc < 0 ? app : vc;
    o.vm = vm;
    return o;
}

// ------------------------------------------------------------ WayMask

TEST(WayMask, RangeAndContains)
{
    WayMask m = WayMask::range(4, 3);
    EXPECT_FALSE(m.contains(3));
    EXPECT_TRUE(m.contains(4));
    EXPECT_TRUE(m.contains(6));
    EXPECT_FALSE(m.contains(7));
    EXPECT_EQ(m.count(), 3u);
}

TEST(WayMask, EmptyAndAll)
{
    EXPECT_TRUE(WayMask::range(0, 0).empty());
    EXPECT_EQ(WayMask::all(32).count(), 32u);
    EXPECT_EQ(WayMask::all(64).count(), 64u);
}

TEST(WayMask, SetOperations)
{
    WayMask a = WayMask::range(0, 4);
    WayMask b = WayMask::range(2, 4);
    EXPECT_EQ((a & b).count(), 2u);
    EXPECT_EQ((a | b).count(), 6u);
}

TEST(WayMask, ToString)
{
    EXPECT_EQ(WayMask::range(1, 2).toString(4), "0110");
}

// --------------------------------------------------------------- LRU

TEST(LruPolicy, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(1, 4);
    for (std::uint32_t w = 0; w < 4; w++) lru.onFill(0, w);
    // Touch 0 and 2; victim among all should be 1.
    lru.onHit(0, 0);
    lru.onHit(0, 2);
    EXPECT_EQ(lru.victimWay(0, WayMask::all(4)), 1u);
}

TEST(LruPolicy, RespectsMask)
{
    LruPolicy lru(1, 4);
    for (std::uint32_t w = 0; w < 4; w++) lru.onFill(0, w);
    lru.onHit(0, 0); // way 0 is MRU
    // Mask restricted to way 0 must still pick way 0.
    EXPECT_EQ(lru.victimWay(0, WayMask::range(0, 1)), 0u);
}

TEST(LruPolicy, InvalidatedLineBecomesVictim)
{
    LruPolicy lru(1, 4);
    for (std::uint32_t w = 0; w < 4; w++) lru.onFill(0, w);
    lru.onInvalidate(0, 3);
    EXPECT_EQ(lru.victimWay(0, WayMask::all(4)), 3u);
}

// -------------------------------------------------------------- RRIP

TEST(RripPolicy, SrripVictimIsDistant)
{
    RripPolicy srrip(1, 4, RripPolicy::Insertion::SRRIP, 1);
    srrip.onFill(0, 0); // rrpv 2
    srrip.onHit(0, 0);  // rrpv 0
    srrip.onFill(0, 1); // rrpv 2
    // Ways 2,3 still at max rrpv (cold) -> way 2 first victim.
    EXPECT_EQ(srrip.victimWay(0, WayMask::all(4)), 2u);
}

TEST(RripPolicy, AgingFindsVictim)
{
    RripPolicy srrip(1, 2, RripPolicy::Insertion::SRRIP, 1);
    srrip.onFill(0, 0);
    srrip.onFill(0, 1);
    srrip.onHit(0, 0);
    srrip.onHit(0, 1);
    // Both at rrpv 0; aging must eventually yield a victim.
    std::uint32_t v = srrip.victimWay(0, WayMask::all(2));
    EXPECT_LT(v, 2u);
}

TEST(RripPolicy, AgingRespectsMask)
{
    RripPolicy srrip(1, 4, RripPolicy::Insertion::SRRIP, 1);
    for (std::uint32_t w = 0; w < 4; w++) {
        srrip.onFill(0, w);
        srrip.onHit(0, w);
    }
    // Victim restricted to ways {2,3}: never returns 0/1.
    for (int i = 0; i < 8; i++) {
        std::uint32_t v = srrip.victimWay(0, WayMask::range(2, 2));
        EXPECT_GE(v, 2u);
        EXPECT_LT(v, 4u);
    }
}

TEST(RripPolicy, BrripMostlyDistantInserts)
{
    RripPolicy brrip(1, 8, RripPolicy::Insertion::BRRIP, 12345);
    // BRRIP-inserted lines are immediately re-evictable most of the
    // time: fill way 0 repeatedly and check it is usually the victim.
    int distant = 0;
    for (int i = 0; i < 200; i++) {
        brrip.onFill(0, 0);
        if (brrip.victimWay(0, WayMask::range(0, 1)) == 0) distant++;
    }
    EXPECT_EQ(distant, 200); // only way 0 allowed, trivially victim
}

// ------------------------------------------------------------- DRRIP

TEST(DrripPolicy, HasBothLeaderKinds)
{
    DrripPolicy drrip(64, 4, 8, 1);
    int srripLeaders = 0, brripLeaders = 0;
    for (std::uint32_t s = 0; s < 64; s++) {
        if (drrip.isSrripLeader(s)) srripLeaders++;
        if (drrip.isBrripLeader(s)) brripLeaders++;
        EXPECT_FALSE(drrip.isSrripLeader(s) && drrip.isBrripLeader(s));
    }
    EXPECT_GT(srripLeaders, 0);
    EXPECT_GT(brripLeaders, 0);
}

TEST(DrripPolicy, PselMovesWithLeaderMisses)
{
    DrripPolicy drrip(64, 4, 8, 1);
    std::uint32_t srripLeader = 0, brripLeader = 0;
    for (std::uint32_t s = 0; s < 64; s++) {
        if (drrip.isSrripLeader(s)) srripLeader = s;
        if (drrip.isBrripLeader(s)) brripLeader = s;
    }
    std::int32_t before = drrip.psel();
    drrip.onFill(srripLeader, 0); // miss in SRRIP leader: vote BRRIP
    EXPECT_LT(drrip.psel(), before);
    drrip.onFill(brripLeader, 0);
    drrip.onFill(brripLeader, 1);
    EXPECT_GT(drrip.psel(), before - 1);
}

TEST(DrripPolicy, PselSharedAcrossPartitions)
{
    // The PSEL has no notion of partition: fills from any accessor
    // move it. This *is* the Fig. 12 leakage channel.
    DrripPolicy drrip(64, 4, 8, 1);
    std::uint32_t brripLeader = 0;
    for (std::uint32_t s = 0; s < 64; s++)
        if (drrip.isBrripLeader(s)) brripLeader = s;
    std::int32_t before = drrip.psel();
    for (int i = 0; i < 100; i++) drrip.onFill(brripLeader, i % 4);
    EXPECT_GT(drrip.psel(), before);
}

// --------------------------------------------------------- CacheArray

TEST(CacheArray, HitAfterFill)
{
    CacheArray array(16, 4, ReplKind::LRU, 1);
    EXPECT_FALSE(array.access(100, owner(0)).hit);
    EXPECT_TRUE(array.access(100, owner(0)).hit);
    EXPECT_TRUE(array.contains(100));
}

TEST(CacheArray, RejectsBadGeometry)
{
    EXPECT_THROW(CacheArray(15, 4, ReplKind::LRU, 1), FatalError);
    EXPECT_THROW(CacheArray(16, 0, ReplKind::LRU, 1), FatalError);
    EXPECT_THROW(CacheArray(16, 65, ReplKind::LRU, 1), FatalError);
}

TEST(CacheArray, CapacityEviction)
{
    CacheArray array(1, 2, ReplKind::LRU, 1);
    array.access(1, owner(0));
    array.access(2, owner(0));
    auto r = array.access(3, owner(0));
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(array.validLines(), 2u);
}

TEST(CacheArray, PartitionRestrictsFills)
{
    CacheArray array(1, 4, ReplKind::LRU, 1);
    array.setWayMask(0, WayMask::range(0, 2));
    array.setWayMask(1, WayMask::range(2, 2));

    // VC 0 fills 3 lines into 2 ways: must evict its own.
    array.access(10, owner(0, 0));
    array.access(11, owner(0, 0));
    array.access(12, owner(0, 0));
    EXPECT_EQ(array.occupancyOfVc(0), 2u);

    // VC 1 fills: must not evict VC 0's lines.
    array.access(20, owner(1, 1));
    array.access(21, owner(1, 1));
    EXPECT_EQ(array.occupancyOfVc(0), 2u);
    EXPECT_EQ(array.occupancyOfVc(1), 2u);
}

TEST(CacheArray, CatHitsAcrossPartitions)
{
    // CAT semantics: a line may be *hit* even if it sits outside the
    // accessor's current fill mask.
    CacheArray array(1, 4, ReplKind::LRU, 1);
    array.setWayMask(0, WayMask::range(0, 2));
    array.access(10, owner(0, 0));
    // Shrink VC 0's mask to ways 2..3; line 10 sits in way 0/1.
    array.setWayMask(0, WayMask::range(2, 2));
    EXPECT_TRUE(array.access(10, owner(0, 0)).hit);
}

TEST(CacheArray, EmptyMaskMeansUncached)
{
    CacheArray array(1, 4, ReplKind::LRU, 1);
    array.setWayMask(0, WayMask(0));
    auto r = array.access(10, owner(0, 0));
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(array.contains(10));
    EXPECT_EQ(array.validLines(), 0u);
}

TEST(CacheArray, InvalidateVc)
{
    CacheArray array(16, 4, ReplKind::LRU, 1);
    for (LineAddr l = 0; l < 20; l++) array.access(l, owner(0, 0));
    for (LineAddr l = 100; l < 110; l++) array.access(l, owner(1, 1));
    std::uint64_t before = array.occupancyOfVc(0);
    std::uint64_t dropped = array.invalidateVc(0);
    EXPECT_EQ(dropped, before);
    EXPECT_EQ(array.occupancyOfVc(0), 0u);
    EXPECT_EQ(array.occupancyOfVc(1), 10u);
}

TEST(CacheArray, InvalidateAll)
{
    CacheArray array(16, 4, ReplKind::LRU, 1);
    for (LineAddr l = 0; l < 30; l++) array.access(l, owner(0));
    EXPECT_GT(array.validLines(), 0u);
    array.invalidateAll();
    EXPECT_EQ(array.validLines(), 0u);
}

TEST(CacheArray, OccupancyTracking)
{
    CacheArray array(16, 4, ReplKind::LRU, 1);
    array.access(1, owner(0, 0, 0));
    array.access(2, owner(0, 0, 0));
    array.access(3, owner(1, 1, 1));
    EXPECT_EQ(array.occupancyOfApp(0), 2u);
    EXPECT_EQ(array.occupancyOfApp(1), 1u);
}

TEST(CacheArray, AppsFromOtherVms)
{
    CacheArray array(16, 4, ReplKind::LRU, 1);
    array.access(1, owner(0, 0, 0));
    array.access(2, owner(1, 1, 0));
    array.access(3, owner(2, 2, 1));
    array.access(4, owner(3, 3, 2));
    // From VM 0's view: apps 2 (vm1) and 3 (vm2) are untrusted.
    EXPECT_EQ(array.appsFromOtherVms(0), 2u);
    // From VM 1's view: apps 0, 1 (vm0) and 3 (vm2).
    EXPECT_EQ(array.appsFromOtherVms(1), 3u);
}

TEST(CacheArray, EvictionUpdatesOccupancy)
{
    CacheArray array(1, 2, ReplKind::LRU, 1);
    array.access(1, owner(0, 0, 0));
    array.access(2, owner(0, 0, 0));
    array.access(3, owner(1, 1, 1)); // evicts one of VC 0's lines
    EXPECT_EQ(array.occupancyOfVc(0), 1u);
    EXPECT_EQ(array.occupancyOfVc(1), 1u);
    EXPECT_EQ(array.appsFromOtherVms(1), 1u);
}

// ---------------------------------------------------------- CacheBank

TEST(CacheBank, BaseLatency)
{
    BankTimingParams timing;
    timing.accessLatency = 13;
    timing.ports = 1;
    timing.portOccupancy = 1;
    CacheBank bank(0, 16, 4, ReplKind::LRU, timing, 1);

    auto r = bank.access(1000, 42, owner(0));
    EXPECT_EQ(r.queueDelay, 0u);
    EXPECT_EQ(r.latency, 13u);
}

TEST(CacheBank, PortQueueingDelaysConcurrentAccesses)
{
    BankTimingParams timing;
    timing.accessLatency = 13;
    timing.ports = 1;
    timing.portOccupancy = 4;
    CacheBank bank(0, 16, 4, ReplKind::LRU, timing, 1);

    auto first = bank.access(100, 1, owner(0));
    auto second = bank.access(100, 2, owner(1));
    auto third = bank.access(100, 3, owner(2));
    EXPECT_EQ(first.queueDelay, 0u);
    EXPECT_EQ(second.queueDelay, 4u);
    EXPECT_EQ(third.queueDelay, 8u);
}

TEST(CacheBank, PortFreesAfterOccupancy)
{
    BankTimingParams timing;
    timing.portOccupancy = 4;
    CacheBank bank(0, 16, 4, ReplKind::LRU, timing, 1);
    bank.access(100, 1, owner(0));
    // An access arriving after the port frees sees no queueing.
    auto later = bank.access(104, 2, owner(1));
    EXPECT_EQ(later.queueDelay, 0u);
}

TEST(CacheBank, MultiplePortsServeInParallel)
{
    BankTimingParams timing;
    timing.ports = 2;
    timing.portOccupancy = 4;
    CacheBank bank(0, 16, 4, ReplKind::LRU, timing, 1);
    EXPECT_EQ(bank.access(100, 1, owner(0)).queueDelay, 0u);
    EXPECT_EQ(bank.access(100, 2, owner(1)).queueDelay, 0u);
    EXPECT_EQ(bank.access(100, 3, owner(2)).queueDelay, 4u);
}

TEST(CacheBank, CountsHitsAndQueueCycles)
{
    BankTimingParams timing;
    timing.portOccupancy = 2;
    CacheBank bank(0, 16, 4, ReplKind::LRU, timing, 1);
    bank.access(100, 1, owner(0));
    bank.access(100, 1, owner(0));
    EXPECT_EQ(bank.totalAccesses(), 2u);
    EXPECT_EQ(bank.totalHits(), 1u);
    EXPECT_EQ(bank.totalQueueCycles(), 2u);
}

// ------------------------------------------- property: model vs. ref

/**
 * Property test: an LRU CacheArray with a single full-mask partition
 * behaves exactly like a reference LRU model.
 */
class LruEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LruEquivalence, MatchesReferenceModel)
{
    const std::uint32_t sets = 4, ways = 4;
    CacheArray array(sets, ways, ReplKind::LRU, 1);

    // Reference: per-set vector of lines in LRU order (front = MRU).
    // The reference must use the same set-index function; recover it
    // via contains() probes on a fresh array. Instead, track sets by
    // observing which lines conflict: simpler — model the entire
    // cache as per-set lists discovered through the array itself is
    // circular, so instead model *capacity per set* generically:
    // every line maps to some fixed set; emulate with a map from
    // set-representative. We approximate by checking two invariants:
    // (1) a hit is reported iff the line was accessed within the
    //     last `ways` *conflicting* fills, and
    // (2) total valid lines never exceed sets*ways.
    Rng rng(GetParam());
    std::vector<LineAddr> universe;
    for (LineAddr l = 0; l < 64; l++) universe.push_back(l);

    std::uint64_t hits = 0, accesses = 0;
    for (int i = 0; i < 2000; i++) {
        LineAddr line = universe[rng.below(universe.size())];
        bool expectedHit = array.contains(line);
        auto r = array.access(line, owner(0));
        EXPECT_EQ(r.hit, expectedHit);
        EXPECT_LE(array.validLines(),
                  static_cast<std::uint64_t>(sets) * ways);
        accesses++;
        if (r.hit) hits++;
    }
    // 64-line universe in a 16-line cache: hit rate must be near
    // 16/64 for uniform random access under LRU.
    double hitRate = static_cast<double>(hits) /
                     static_cast<double>(accesses);
    EXPECT_NEAR(hitRate, 0.25, 0.08) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruEquivalence,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

/**
 * Property: partitions never interfere — VC A's hit rate with a
 * private mask is unchanged by VC B's traffic intensity.
 */
class PartitionIsolation : public ::testing::TestWithParam<int>
{
};

TEST_P(PartitionIsolation, VictimNeverCrossesMask)
{
    CacheArray array(8, 8, ReplKind::DRRIP, 7);
    array.setWayMask(0, WayMask::range(0, 4));
    array.setWayMask(1, WayMask::range(4, 4));

    Rng rng(GetParam());
    // Fill VC 0 with a small resident set, then blast VC 1.
    for (LineAddr l = 0; l < 16; l++) array.access(l, owner(0, 0, 0));
    std::uint64_t residentBefore = array.occupancyOfVc(0);
    for (int i = 0; i < 5000; i++)
        array.access(1000 + rng.below(10000), owner(1, 1, 1));
    EXPECT_EQ(array.occupancyOfVc(0), residentBefore)
        << "VC1 evicted VC0 lines through the partition";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionIsolation,
                         ::testing::Values(1, 7, 21, 63));

} // namespace
} // namespace jumanji
