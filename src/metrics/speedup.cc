#include "src/metrics/speedup.hh"

#include <cmath>

#include "src/sim/logging.hh"

namespace jumanji {

double
weightedSpeedup(const std::vector<AppProgress> &mix,
                const std::vector<AppProgress> &reference)
{
    if (mix.size() != reference.size() || mix.empty())
        fatal("weightedSpeedup: size mismatch or empty");
    double sum = 0.0;
    for (std::size_t i = 0; i < mix.size(); i++) {
        double ref = reference[i].ipc();
        if (ref <= 0.0) continue;
        sum += mix[i].ipc() / ref;
    }
    return sum / static_cast<double>(mix.size());
}

double
gmeanSpeedup(const std::vector<AppProgress> &mix,
             const std::vector<AppProgress> &reference)
{
    if (mix.size() != reference.size() || mix.empty())
        fatal("gmeanSpeedup: size mismatch or empty");
    double logSum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < mix.size(); i++) {
        double ref = reference[i].ipc();
        double cur = mix[i].ipc();
        if (ref <= 0.0 || cur <= 0.0) continue;
        logSum += std::log(cur / ref);
        n++;
    }
    return n == 0 ? 1.0 : std::exp(logSum / static_cast<double>(n));
}

double
gmean(const std::vector<double> &values)
{
    if (values.empty()) return 1.0;
    double logSum = 0.0;
    std::size_t n = 0;
    for (double v : values) {
        if (v <= 0.0) continue;
        logSum += std::log(v);
        n++;
    }
    return n == 0 ? 1.0 : std::exp(logSum / static_cast<double>(n));
}

FixedWorkTracker::FixedWorkTracker(std::vector<std::uint64_t> targets)
    : targets_(std::move(targets)),
      done_(targets_.size(), kTickMax)
{
}

void
FixedWorkTracker::update(std::size_t i, std::uint64_t instrs, Tick now)
{
    if (i >= targets_.size()) panic("FixedWorkTracker: index out of range");
    if (done_[i] == kTickMax && instrs >= targets_[i]) done_[i] = now;
}

bool
FixedWorkTracker::allDone() const
{
    for (Tick t : done_)
        if (t == kTickMax) return false;
    return true;
}

Tick
FixedWorkTracker::completionTick(std::size_t i) const
{
    return done_[i];
}

} // namespace jumanji
