#include "src/metrics/energy.hh"

#include <sstream>

namespace jumanji {

EnergyBreakdown
dataMovementEnergy(const AccessCounters &counters,
                   const EnergyParams &params)
{
    EnergyBreakdown e;
    e.l1 = static_cast<double>(counters.l1Hits + counters.l1Misses) *
           params.l1AccessPj;
    e.l2 = static_cast<double>(counters.l2Hits + counters.l2Misses) *
           params.l2AccessPj;
    e.llc = static_cast<double>(counters.llcHits + counters.llcMisses) *
            params.llcBankAccessPj;
    e.noc = static_cast<double>(counters.nocHops) * params.nocHopPj;
    e.mem = static_cast<double>(counters.memAccesses) * params.memAccessPj;
    return e;
}

std::string
formatEnergy(const EnergyBreakdown &e)
{
    std::ostringstream oss;
    oss << "L1=" << e.l1 << " L2=" << e.l2 << " LLC=" << e.llc
        << " NoC=" << e.noc << " Mem=" << e.mem << " total=" << e.total();
    return oss.str();
}

} // namespace jumanji
