/**
 * @file
 * Weighted-speedup accounting (Sec. VII, performance metrics).
 *
 * The paper measures batch performance as weighted speedup with a
 * fixed-work methodology similar to FIESTA [25]: each app's progress
 * is compared at equal work against an isolated (or baseline) run.
 * We provide the standard equal-interval formulation,
 *   WS = (1/N) * sum_i IPC_i^mix / IPC_i^ref,
 * plus gmean helpers for aggregating over mixes, and a FixedWork
 * tracker that records the tick at which each app reached a target
 * instruction count.
 */

#ifndef JUMANJI_METRICS_SPEEDUP_HH
#define JUMANJI_METRICS_SPEEDUP_HH

#include <cstdint>
#include <vector>

#include "src/sim/types.hh"

namespace jumanji {

/** One app's progress in a measured interval. */
struct AppProgress
{
    std::uint64_t instrs = 0;
    Tick cycles = 0;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instrs) /
                                 static_cast<double>(cycles);
    }
};

/** Arithmetic-mean weighted speedup of mix vs. reference IPCs. */
double weightedSpeedup(const std::vector<AppProgress> &mix,
                       const std::vector<AppProgress> &reference);

/** Geometric mean of per-app speedups (used for "gmean speedup"). */
double gmeanSpeedup(const std::vector<AppProgress> &mix,
                    const std::vector<AppProgress> &reference);

/** Geometric mean of a vector of ratios. */
double gmean(const std::vector<double> &values);

/**
 * Fixed-work tracker (FIESTA-flavored): apps run until each reaches
 * its target instruction count; per-app completion ticks yield
 * fixed-work speedups T_ref / T_mix.
 */
class FixedWorkTracker
{
  public:
    explicit FixedWorkTracker(std::vector<std::uint64_t> targets);

    /** Updates app @p i's retired-instruction count at @p now. */
    void update(std::size_t i, std::uint64_t instrs, Tick now);

    /** True once every app reached its target. */
    bool allDone() const;

    /** Completion tick of app @p i (kTickMax if unfinished). */
    Tick completionTick(std::size_t i) const;

  private:
    std::vector<std::uint64_t> targets_;
    std::vector<Tick> done_;
};

} // namespace jumanji

#endif // JUMANJI_METRICS_SPEEDUP_HH
