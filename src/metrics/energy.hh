/**
 * @file
 * Dynamic data-movement energy model (Fig. 15).
 *
 * Converts AccessCounters into energy split by level — L1, L2, LLC
 * bank, NoC, and memory — using per-event energies in the spirit of
 * Jenga [79]. Absolute joules are not the point (the paper reports
 * normalized energy); the per-level ratios are what shape Fig. 15.
 */

#ifndef JUMANJI_METRICS_ENERGY_HH
#define JUMANJI_METRICS_ENERGY_HH

#include <string>

#include "src/sim/stats.hh"

namespace jumanji {

/** Per-event dynamic energies, picojoules. */
struct EnergyParams
{
    double l1AccessPj = 15.0;
    double l2AccessPj = 50.0;
    double llcBankAccessPj = 250.0;
    /** Per hop, per 64 B message (data flits dominate). */
    double nocHopPj = 65.0;
    double memAccessPj = 6300.0;
};

/** Energy broken down by level, picojoules. */
struct EnergyBreakdown
{
    double l1 = 0.0;
    double l2 = 0.0;
    double llc = 0.0;
    double noc = 0.0;
    double mem = 0.0;

    double total() const { return l1 + l2 + llc + noc + mem; }

    EnergyBreakdown &
    operator+=(const EnergyBreakdown &o)
    {
        l1 += o.l1;
        l2 += o.l2;
        llc += o.llc;
        noc += o.noc;
        mem += o.mem;
        return *this;
    }
};

/** Computes the breakdown for a set of counters. */
EnergyBreakdown dataMovementEnergy(const AccessCounters &counters,
                                   const EnergyParams &params = {});

/** Formats a breakdown as "L1=.. L2=.. LLC=.. NoC=.. Mem=..". */
std::string formatEnergy(const EnergyBreakdown &energy);

} // namespace jumanji

#endif // JUMANJI_METRICS_ENERGY_HH
