#include "src/security/attacks.hh"

#include "src/dnuca/vtb.hh"
#include "src/sim/logging.hh"

namespace jumanji {

std::vector<LineAddr>
linesTargetingBank(LineAddr base, BankId bank, std::uint32_t banks,
                   std::size_t count, std::size_t avoidLowLines)
{
    // Under a striped descriptor, slot s maps to bank s % banks; a
    // line lands on `bank` iff slotFor(line) % banks == bank.
    std::vector<LineAddr> lines;
    LineAddr candidate = base + avoidLowLines;
    while (lines.size() < count) {
        std::uint32_t slot = PlacementDescriptor::slotFor(candidate);
        if (static_cast<BankId>(slot % banks) == bank)
            lines.push_back(candidate);
        candidate++;
        if (candidate - base > (count + avoidLowLines) * banks * 64)
            panic("linesTargetingBank: hash never reached target bank");
    }
    return lines;
}

// ----------------------------------------------------- PortAttacker

PortAttackerApp::PortAttackerApp(std::vector<LineAddr> lines,
                                 std::uint32_t batch)
    : lines_(std::move(lines)),
      batch_(batch)
{
    if (lines_.empty()) fatal("PortAttackerApp: need attack lines");
    if (batch_ == 0) fatal("PortAttackerApp: batch must be nonzero");
    // The attacker is a tight pointer-chasing loop: minimal compute,
    // fully exposed access latency.
    traits_.baseIpc = 4.0;
    traits_.stallFactor = 1.0;
}

AppStep
PortAttackerApp::next(Tick now, Rng &)
{
    if (!started_) {
        batchStart_ = now;
        started_ = true;
    }
    LineAddr line = lines_[cursor_];
    cursor_ = (cursor_ + 1) % lines_.size();
    // One instruction of loop overhead per probe access.
    return AppStep::execute(1, line);
}

void
PortAttackerApp::onAccessComplete(Tick finish)
{
    inBatch_++;
    if (inBatch_ < batch_) return;
    double cycles = static_cast<double>(finish - batchStart_) /
                    static_cast<double>(batch_);
    trace_.push_back(AttackSample{finish, cycles});
    inBatch_ = 0;
    batchStart_ = finish;
}

// ---------------------------------------------------- ConflictProber

ConflictProber::ConflictProber(std::vector<LineAddr> lines,
                               const AccessOwner &owner)
    : lines_(std::move(lines)),
      owner_(owner)
{
    if (lines_.empty()) fatal("ConflictProber: need prime lines");
}

void
ConflictProber::prime(CacheArray &array)
{
    for (LineAddr line : lines_) array.access(line, owner_);
}

std::uint64_t
ConflictProber::probe(CacheArray &array)
{
    std::uint64_t evicted = 0;
    for (LineAddr line : lines_) {
        if (!array.contains(line)) evicted++;
        // Re-prime as we probe, as real prime+probe loops do.
        array.access(line, owner_);
    }
    return evicted;
}

// --------------------------------------------------- RotatingVictim

RotatingVictimApp::RotatingVictimApp(
    std::vector<std::vector<LineAddr>> linesPerBank, Tick dwellTicks,
    Tick pauseTicks)
    : linesPerBank_(std::move(linesPerBank)),
      dwellTicks_(dwellTicks),
      pauseTicks_(pauseTicks)
{
    if (linesPerBank_.empty())
        fatal("RotatingVictimApp: need at least one bank's lines");
    for (const auto &lines : linesPerBank_)
        if (lines.empty())
            fatal("RotatingVictimApp: every bank needs victim lines");
}

BankId
RotatingVictimApp::currentBank() const
{
    if (pausing_) return kInvalidBank;
    return static_cast<BankId>(bankIdx_);
}

AppStep
RotatingVictimApp::next(Tick now, Rng &rng)
{
    if (!phaseInit_) {
        phaseStart_ = now;
        phaseInit_ = true;
    }

    if (pausing_) {
        if (now < phaseStart_ + pauseTicks_)
            return AppStep::idleUntil(phaseStart_ + pauseTicks_);
        pausing_ = false;
        phaseStart_ = now;
        bankIdx_ = (bankIdx_ + 1) % linesPerBank_.size();
        cursor_ = 0;
    }

    if (now >= phaseStart_ + dwellTicks_) {
        pausing_ = true;
        phaseStart_ = now;
        return AppStep::idleUntil(now + pauseTicks_);
    }

    const auto &lines = linesPerBank_[bankIdx_];
    LineAddr line = lines[cursor_];
    cursor_ = (cursor_ + 1) % lines.size();
    // Jittered loop overhead: a perfectly periodic victim would
    // phase-lock around other periodic accessors and never contend;
    // real code has variable work between accesses.
    return AppStep::execute(1 + rng.below(4), line);
}

} // namespace jumanji
