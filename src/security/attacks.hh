/**
 * @file
 * Attack applications for the security experiments.
 *
 *  - PortAttackerApp (Fig. 11): floods a target LLC bank with
 *    accesses (a prime loop in the style of Liu et al. [48]) and
 *    records the time to complete every `batch` accesses. Queueing
 *    from a co-running victim raises its observed access times —
 *    the LLC port side channel.
 *  - RotatingVictimApp (Fig. 11): rotates through flooding every
 *    bank in turn, pausing in between, producing the attack trace's
 *    characteristic per-bank latency peaks. The victim uses
 *    *different* cache sets than the attacker (distinct address
 *    slices), so only port contention — not content — is shared.
 */

#ifndef JUMANJI_SECURITY_ATTACKS_HH
#define JUMANJI_SECURITY_ATTACKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/cache_array.hh"
#include "src/cpu/app_model.hh"

namespace jumanji {

/**
 * Generates line addresses whose descriptor hash maps to a chosen
 * slot set, given a striped descriptor over @p banks banks. Used by
 * attacker and victim to aim their floods at specific banks.
 *
 * @param base Address-space base for the generating app.
 * @param bank Target bank under a striped descriptor.
 * @param banks Total banks in the stripe.
 * @param count Number of distinct lines wanted.
 * @param avoid Lines to exclude (victim avoiding attacker's sets).
 */
std::vector<LineAddr> linesTargetingBank(LineAddr base, BankId bank,
                                         std::uint32_t banks,
                                         std::size_t count,
                                         std::size_t avoidLowLines = 0);

/** A (time, cyclesPerBatch) point in the attacker's trace. */
struct AttackSample
{
    Tick when = 0;
    double cyclesPerAccess = 0.0;
};

/**
 * The port attacker: flood one bank, timestamping every batch.
 */
class PortAttackerApp : public AppModel
{
  public:
    /**
     * @param lines Attack lines (all mapping to the target bank).
     * @param batch Accesses per timing measurement (paper: 100).
     */
    PortAttackerApp(std::vector<LineAddr> lines, std::uint32_t batch);

    const std::string &name() const override { return name_; }
    AppStep next(Tick now, Rng &rng) override;
    void onAccessComplete(Tick finish) override;
    const AppTraits &traits() const override { return traits_; }

    const std::vector<AttackSample> &trace() const { return trace_; }

  private:
    std::string name_ = "port-attacker";
    AppTraits traits_;
    std::vector<LineAddr> lines_;
    std::uint32_t batch_;

    std::size_t cursor_ = 0;
    std::uint32_t inBatch_ = 0;
    Tick batchStart_ = 0;
    bool started_ = false;
    std::vector<AttackSample> trace_;
};

/**
 * A prime+probe conflict prober (attack 1 in Fig. 10).
 *
 * The attacker primes the cache with its own lines, lets the victim
 * run, then probes: re-accesses its lines and counts misses. When
 * attacker and victim share cache sets (no partitioning), victim
 * activity evicts primed lines and the probe misses reveal it; with
 * way-partitioning or bank isolation, the probe is clean.
 *
 * This is a harness object (driven directly against a CacheArray /
 * MemPath), not an AppModel: conflict attacks are about content, not
 * timing, so no DES scheduling is needed to demonstrate them.
 */
class ConflictProber
{
  public:
    /**
     * @param lines The attacker's prime set.
     * @param owner Identity the attacker's fills carry.
     */
    ConflictProber(std::vector<LineAddr> lines, const AccessOwner &owner);

    /** Fills the cache with the prime set via @p access. */
    void prime(CacheArray &array);

    /**
     * Probes: counts how many primed lines were evicted since the
     * last prime.
     *
     * @return Evicted-line count — the attacker's signal. Zero means
     *         the victim's activity was invisible (defended).
     */
    std::uint64_t probe(CacheArray &array);

    const std::vector<LineAddr> &lines() const { return lines_; }

  private:
    std::vector<LineAddr> lines_;
    AccessOwner owner_;
};

/**
 * The rotating victim: floods each bank for a dwell period, then
 * pauses, then moves to the next bank.
 */
class RotatingVictimApp : public AppModel
{
  public:
    /**
     * @param linesPerBank linesPerBank[b] are victim lines on bank b.
     * @param dwellTicks Flood duration per bank.
     * @param pauseTicks Idle gap between banks.
     */
    RotatingVictimApp(std::vector<std::vector<LineAddr>> linesPerBank,
                      Tick dwellTicks, Tick pauseTicks);

    const std::string &name() const override { return name_; }
    AppStep next(Tick now, Rng &rng) override;
    const AppTraits &traits() const override { return traits_; }

    /** Bank currently being flooded (kInvalidBank while pausing). */
    BankId currentBank() const;

  private:
    std::string name_ = "rotating-victim";
    AppTraits traits_;
    std::vector<std::vector<LineAddr>> linesPerBank_;
    Tick dwellTicks_;
    Tick pauseTicks_;

    std::size_t bankIdx_ = 0;
    std::size_t cursor_ = 0;
    Tick phaseStart_ = 0;
    bool pausing_ = false;
    bool phaseInit_ = false;
};

} // namespace jumanji

#endif // JUMANJI_SECURITY_ATTACKS_HH
