#include "src/driver/result_cache.hh"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/sim/fingerprint.hh"
#include "src/system/config.hh"
#include "src/workloads/mixes.hh"

namespace jumanji {
namespace driver {

namespace {

constexpr char kMagic[4] = {'J', 'M', 'J', 'R'};
constexpr std::uint32_t kResultSchema = 1;
constexpr std::uint32_t kCalibSchema = 1;

/** Appends fixed-width little-endian fields to a string. */
class BlobWriter
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        out_.append(s);
    }

    void raw(const char *data, std::size_t n) { out_.append(data, n); }

    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/** Bounds-checked reader; any overrun poisons the whole read. */
class BlobReader
{
  public:
    explicit BlobReader(const std::string &blob) : blob_(blob) {}

    bool ok() const { return ok_; }

    std::uint64_t
    u64()
    {
        if (!need(8)) return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(blob_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint64_t n = u64();
        if (!need(n)) return {};
        std::string s = blob_.substr(pos_, n);
        pos_ += n;
        return s;
    }

    bool
    expectRaw(const char *data, std::size_t n)
    {
        if (!need(n) || std::memcmp(blob_.data() + pos_, data, n) != 0) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    bool atEnd() const { return ok_ && pos_ == blob_.size(); }

    /**
     * Sanity bound for count fields: a corrupt length must not drive
     * a multi-gigabyte resize before the per-element reads fail.
     */
    std::uint64_t
    count()
    {
        std::uint64_t n = u64();
        if (n > blob_.size()) ok_ = false;
        return ok_ ? n : 0;
    }

  private:
    bool
    need(std::uint64_t n)
    {
        if (!ok_ || blob_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::string &blob_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

void
writeRun(BlobWriter &w, const RunResult &run)
{
    w.u64(run.apps.size());
    for (const AppResult &app : run.apps) {
        w.str(app.name);
        w.i64(app.app);
        w.i64(app.vm);
        w.u64(app.latencyCritical ? 1 : 0);
        w.u64(app.progress.instrs);
        w.u64(app.progress.cycles);
        w.u64(app.counters.l1Hits);
        w.u64(app.counters.l1Misses);
        w.u64(app.counters.l2Hits);
        w.u64(app.counters.l2Misses);
        w.u64(app.counters.llcHits);
        w.u64(app.counters.llcMisses);
        w.u64(app.counters.nocHops);
        w.u64(app.counters.memAccesses);
        w.f64(app.avgAccessLatency);
        w.f64(app.tailLatency);
        w.f64(app.deadline);
        w.u64(app.requestsCompleted);
    }
    w.f64(run.attackersPerAccess);
    w.f64(run.energy.l1);
    w.f64(run.energy.l2);
    w.f64(run.energy.llc);
    w.f64(run.energy.noc);
    w.f64(run.energy.mem);
    w.u64(run.measuredTicks);
    w.u64(run.reconfigurations);
    w.u64(run.coherenceInvalidations);
    w.u64(run.statDump.size());
    for (const StatValue &sv : run.statDump) {
        w.str(sv.name);
        w.f64(sv.value);
    }
    w.u64(run.timeline.columns.size());
    for (const std::string &c : run.timeline.columns) w.str(c);
    w.u64(run.timeline.ticks.size());
    for (Tick t : run.timeline.ticks) w.u64(t);
    w.u64(run.timeline.rows.size());
    for (const auto &row : run.timeline.rows) {
        w.u64(row.size());
        for (double v : row) w.f64(v);
    }
}

RunResult
readRun(BlobReader &r)
{
    RunResult run;
    std::uint64_t nApps = r.count();
    run.apps.resize(nApps);
    for (AppResult &app : run.apps) {
        app.name = r.str();
        app.app = static_cast<AppId>(r.i64());
        app.vm = static_cast<VmId>(r.i64());
        app.latencyCritical = r.u64() != 0;
        app.progress.instrs = r.u64();
        app.progress.cycles = r.u64();
        app.counters.l1Hits = r.u64();
        app.counters.l1Misses = r.u64();
        app.counters.l2Hits = r.u64();
        app.counters.l2Misses = r.u64();
        app.counters.llcHits = r.u64();
        app.counters.llcMisses = r.u64();
        app.counters.nocHops = r.u64();
        app.counters.memAccesses = r.u64();
        app.avgAccessLatency = r.f64();
        app.tailLatency = r.f64();
        app.deadline = r.f64();
        app.requestsCompleted = r.u64();
    }
    run.attackersPerAccess = r.f64();
    run.energy.l1 = r.f64();
    run.energy.l2 = r.f64();
    run.energy.llc = r.f64();
    run.energy.noc = r.f64();
    run.energy.mem = r.f64();
    run.measuredTicks = r.u64();
    run.reconfigurations = r.u64();
    run.coherenceInvalidations = r.u64();
    run.statDump.resize(r.count());
    for (StatValue &sv : run.statDump) {
        sv.name = r.str();
        sv.value = r.f64();
    }
    run.timeline.columns.resize(r.count());
    for (std::string &c : run.timeline.columns) c = r.str();
    run.timeline.ticks.resize(r.count());
    for (Tick &t : run.timeline.ticks) t = r.u64();
    run.timeline.rows.resize(r.count());
    for (auto &row : run.timeline.rows) {
        row.resize(r.count());
        for (double &v : row) v = r.f64();
    }
    return run;
}

std::string
hexKey(std::uint64_t v)
{
    static const char *digits = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; i--) {
        s[i] = digits[v & 0xf];
        v >>= 4;
    }
    return s;
}

void
foldCalibrations(Fingerprint &fp, const LcCalibrationMap &calibrations)
{
    fp.addU64(calibrations.size());
    for (const auto &[name, calib] : calibrations) {
        fp.addString(name);
        fp.addDouble(calib.serviceCycles);
        fp.addDouble(calib.deadline);
    }
}

} // namespace

std::string
jobKey(const SweepJob &job)
{
    Fingerprint fp;
    fp.addString(kCodeVersion);
    fp.addString("job");
    foldConfig(fp, job.config);
    foldMix(fp, job.mix);
    fp.addU64(job.designs.size());
    for (LlcDesign d : job.designs)
        fp.addI64(static_cast<std::int64_t>(d));
    fp.addI64(static_cast<std::int64_t>(job.load));
    fp.addU64(job.selfCalibrate ? 1 : 0);
    // Self-calibrating jobs derive calibrations from the config (fed
    // to the key above); pre-calibrated jobs take them as an input,
    // so the values must key the result.
    if (!job.selfCalibrate) foldCalibrations(fp, job.calibrations);
    return hexKey(fp.value());
}

std::string
calibrationKey(const SystemConfig &config, const std::string &lcName)
{
    Fingerprint fp;
    fp.addString(kCodeVersion);
    fp.addString("calib");
    foldConfig(fp, config);
    fp.addString(lcName);
    return hexKey(fp.value());
}

std::string
serializeMixResult(const MixResult &result)
{
    BlobWriter w;
    w.raw(kMagic, sizeof(kMagic));
    w.u64(kResultSchema);
    w.u64(result.mix.vms.size());
    for (const VmSpec &vm : result.mix.vms) {
        w.u64(vm.lcApps.size());
        for (const std::string &n : vm.lcApps) w.str(n);
        w.u64(vm.batchApps.size());
        for (const std::string &n : vm.batchApps) w.str(n);
    }
    w.u64(result.designs.size());
    for (const DesignResult &d : result.designs) {
        w.i64(static_cast<std::int64_t>(d.design));
        w.f64(d.batchSpeedup);
        w.f64(d.tailRatio);
        w.f64(d.meanTailRatio);
        writeRun(w, d.run);
    }
    return w.take();
}

std::optional<MixResult>
deserializeMixResult(const std::string &blob)
{
    BlobReader r(blob);
    if (!r.expectRaw(kMagic, sizeof(kMagic))) return std::nullopt;
    if (r.u64() != kResultSchema) return std::nullopt;

    MixResult result;
    result.mix.vms.resize(r.count());
    for (VmSpec &vm : result.mix.vms) {
        vm.lcApps.resize(r.count());
        for (std::string &n : vm.lcApps) n = r.str();
        vm.batchApps.resize(r.count());
        for (std::string &n : vm.batchApps) n = r.str();
    }
    result.designs.resize(r.count());
    for (DesignResult &d : result.designs) {
        d.design = static_cast<LlcDesign>(r.i64());
        d.batchSpeedup = r.f64();
        d.tailRatio = r.f64();
        d.meanTailRatio = r.f64();
        d.run = readRun(r);
    }
    if (!r.atEnd()) return std::nullopt;
    return result;
}

std::string
serializeCalibration(const LcCalibration &calibration)
{
    BlobWriter w;
    w.raw(kMagic, sizeof(kMagic));
    w.u64(kCalibSchema);
    w.f64(calibration.serviceCycles);
    w.f64(calibration.deadline);
    return w.take();
}

std::optional<LcCalibration>
deserializeCalibration(const std::string &blob)
{
    BlobReader r(blob);
    if (!r.expectRaw(kMagic, sizeof(kMagic))) return std::nullopt;
    if (r.u64() != kCalibSchema) return std::nullopt;
    LcCalibration calib;
    calib.serviceCycles = r.f64();
    calib.deadline = r.f64();
    if (!r.atEnd()) return std::nullopt;
    return calib;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::pathFor(const std::string &key, const char *suffix) const
{
    return dir_ + "/" + key + suffix;
}

std::optional<std::string>
ResultCache::loadBlob(const std::string &path) const
{
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) return std::nullopt;
    return buf.str();
}

void
ResultCache::storeBlob(const std::string &path, const std::string &blob)
{
    // One writer at a time within this process; the final rename is
    // atomic, so a concurrent reader (or another process) sees either
    // the previous file or the complete new one.
    std::lock_guard<std::mutex> lock(storeMutex_);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) return; // unwritable cache: degrade to no caching
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return;
        out.write(blob.data(),
                  static_cast<std::streamsize>(blob.size()));
        if (!out.good()) return;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) std::filesystem::remove(tmp, ec);
}

std::optional<MixResult>
ResultCache::loadResult(const std::string &key) const
{
    if (!enabled()) return std::nullopt;
    auto blob = loadBlob(pathFor(key, ".mixresult"));
    if (!blob) return std::nullopt;
    return deserializeMixResult(*blob);
}

void
ResultCache::storeResult(const std::string &key, const MixResult &result)
{
    if (!enabled()) return;
    storeBlob(pathFor(key, ".mixresult"), serializeMixResult(result));
}

std::optional<LcCalibration>
ResultCache::loadCalibration(const std::string &key) const
{
    if (!enabled()) return std::nullopt;
    auto blob = loadBlob(pathFor(key, ".calib"));
    if (!blob) return std::nullopt;
    return deserializeCalibration(*blob);
}

void
ResultCache::storeCalibration(const std::string &key,
                              const LcCalibration &calibration)
{
    if (!enabled()) return;
    storeBlob(pathFor(key, ".calib"), serializeCalibration(calibration));
}

} // namespace driver
} // namespace jumanji
