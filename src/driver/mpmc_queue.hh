/**
 * @file
 * A small blocking multi-producer/multi-consumer queue for the
 * driver's worker pool. Mutex + condition variable, deliberately —
 * the pool moves a handful of coarse jobs (each worth seconds of
 * simulation), so contention is irrelevant and a lock-free design
 * would buy nothing but audit surface. Correctness over cleverness.
 *
 * This header may only be included from src/driver/ and tests: the
 * lint concurrency-routing rule bans threading primitives everywhere
 * else in src/, keeping simulation code provably single-threaded.
 */

#ifndef JUMANJI_DRIVER_MPMC_QUEUE_HH
#define JUMANJI_DRIVER_MPMC_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace jumanji {
namespace driver {

/**
 * Unbounded FIFO. push() never blocks; pop() blocks until an item is
 * available or the queue is closed and drained, returning nullopt
 * only in the latter case (the pool's shutdown signal).
 */
template <typename T>
class MpmcQueue
{
  public:
    /** Enqueues one item (never blocks, never drops). */
    void
    push(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            items_.push_back(std::move(item));
            if (items_.size() > peakDepth_) peakDepth_ = items_.size();
        }
        available_.notify_one();
    }

    /**
     * Dequeues the oldest item, blocking while the queue is open but
     * empty. Returns nullopt once the queue is closed *and* empty.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        available_.wait(lock,
                        [this] { return !items_.empty() || closed_; });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /** Wakes every blocked consumer once remaining items drain. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        available_.notify_all();
    }

    /** High-water mark of queued items (driver.queue.peakDepth). */
    std::size_t
    peakDepth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return peakDepth_;
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable available_;
    std::deque<T> items_;
    std::size_t peakDepth_ = 0;
    bool closed_ = false;
};

} // namespace driver
} // namespace jumanji

#endif // JUMANJI_DRIVER_MPMC_QUEUE_HH
