/**
 * @file
 * Host-side profiling, part 2 of 2: orchestrator telemetry — where
 * every wall-clock second of a sweep goes (part 1, the in-simulator
 * scope profiler, lives in src/sim/profiler.hh).
 *
 * Two independent outputs, both off by default and both outside the
 * deterministic stats stream (wall time never reaches fingerprints,
 * golden tables, or cache keys):
 *
 *  - a JSONL event log (one JSON object per line, appended to
 *    `--events-out` / $JUMANJI_EVENTS): one "calibration" event per
 *    calibration request, one "job" event per sweep job with queue
 *    wait, cache-probe and simulate durations, cache hit/miss, and
 *    worker id, and one "run" summary event per orchestrator
 *    invocation. Events are written by the orchestrator's own
 *    thread after the pool has drained, in JobId order — the log
 *    order is deterministic even though the timings are not.
 *
 *  - a rate-limited stderr heartbeat for long sweeps
 *    (`--heartbeat-ms` / $JUMANJI_HEARTBEAT_MS): jobs done/total,
 *    aggregate simulated accesses/s, elapsed, and a naive ETA.
 *    Each beat is a single write to stderr, so it never interleaves
 *    with the table output on stdout, and it deliberately bypasses
 *    logging's --quiet gate (progress is the point; the CLI runs
 *    quiet).
 *
 * telemetry.cc is, with sim/profiler.cc, one of exactly two
 * sanctioned wall-clock readers in src/ (the lint clock-routing
 * rule): driver code that wants a timestamp calls telemetryNowSec()
 * instead of touching <chrono> itself.
 */

#ifndef JUMANJI_DRIVER_TELEMETRY_HH
#define JUMANJI_DRIVER_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>

#include "src/driver/job.hh"
#include "src/driver/pool.hh"

namespace jumanji {
namespace driver {

/**
 * Monotonic seconds since the first call in this process. The
 * driver's single sanctioned clock read; every duration in the
 * event log is a difference of these.
 */
double telemetryNowSec();

struct TelemetryOptions
{
    /** JSONL event log, appended to; empty disables events. */
    std::string eventsPath;
    /** Minimum milliseconds between heartbeats; 0 disables them. */
    std::uint32_t heartbeatMs = 0;
};

/**
 * TelemetryOptions from $JUMANJI_EVENTS and $JUMANJI_HEARTBEAT_MS.
 * A malformed heartbeat value (not a whole number of ms >= 0) warns
 * once per process via logging and leaves the heartbeat off, like
 * driver::seedFromEnv.
 */
TelemetryOptions telemetryOptionsFromEnv();

/**
 * Per-job wall-clock record. Workers fill disjoint slots of a
 * vector indexed by JobId (the same discipline as the outcome
 * vector), so no synchronization is needed until the pool drains.
 */
struct JobTiming
{
    /** telemetryNowSec() timestamps; 0 when the step never ran. */
    double submitAt = 0.0;
    double startAt = 0.0;
    double endAt = 0.0;
    /** Result-cache probe on the submitting thread. */
    double probeSec = 0.0;
    WorkerId worker = 0;
    bool cached = false;
    bool ok = false;
    /** Simulated accesses (llc.hits + llc.misses), for rates. */
    std::uint64_t accesses = 0;
};

class Telemetry
{
  public:
    explicit Telemetry(TelemetryOptions options);

    bool eventsEnabled() const { return events_.is_open(); }
    bool heartbeatEnabled() const { return options_.heartbeatMs > 0; }

    /**
     * Starts a heartbeat batch of @p totalJobs. jobDone() is called
     * by workers (and by the cache-hit path) once per finished job;
     * a beat prints when at least heartbeatMs has passed since the
     * last one, plus always on the final job.
     */
    void beginBatch(std::uint64_t totalJobs);
    void jobDone(std::uint64_t accesses);

    // Event-log writes. Callers serialize (the orchestrator emits
    // them from its own thread once the pool has drained).
    void jobEvent(JobId id, const std::string &label,
                  const JobTiming &t);
    void calibrationEvent(const std::string &lcName,
                          const JobTiming &t);
    void runEvent(const char *kind, std::uint64_t total,
                  std::uint64_t simulated, std::uint64_t cached,
                  std::uint64_t failed, std::uint32_t workers,
                  double wallSec, double mergeSec);

  private:
    TelemetryOptions options_;
    std::ofstream events_;
    std::uint64_t totalJobs_ = 0;
    double batchStart_ = 0.0;
    std::atomic<std::uint64_t> jobsDone_{0};
    std::atomic<std::uint64_t> accessesDone_{0};
    std::atomic<std::uint64_t> lastBeatMs_{0};
};

} // namespace driver
} // namespace jumanji

#endif // JUMANJI_DRIVER_TELEMETRY_HH
