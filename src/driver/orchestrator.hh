/**
 * @file
 * Orchestrator: runs a JobGraph of independent sweep points across a
 * worker pool, merging outcomes back in job-submission order.
 *
 * The determinism contract, in one sentence: parallelism may change
 * *when* a result is computed, never *what* it is or *where* it lands
 * in the output. Three rules enforce it:
 *   1. every job is a self-contained value (config + mix + designs +
 *      calibrations) executed by single-threaded simulation code;
 *   2. outcomes, merged traces, and cache stores are indexed by JobId
 *      (= submission order), never by completion order or worker id;
 *   3. anything scheduling-dependent (which worker ran what, queue
 *      depths) lives in the orchestrator's own driver.* stat group,
 *      which is never folded into result fingerprints.
 * Hence `--jobs 4` and `--jobs 1` produce byte-identical tables and
 * --selfcheck digests.
 *
 * The on-disk ResultCache slots in transparently: a job whose key
 * hits is answered by a file read on the submitting thread and never
 * touches the pool. Tracing disables the cache (a cached result
 * carries no trace events), keeping traced runs complete.
 */

#ifndef JUMANJI_DRIVER_ORCHESTRATOR_HH
#define JUMANJI_DRIVER_ORCHESTRATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/driver/job.hh"
#include "src/driver/result_cache.hh"
#include "src/driver/telemetry.hh"
#include "src/sim/statreg.hh"
#include "src/sim/tracing.hh"

namespace jumanji {
namespace driver {

/** One LC-app calibration to compute (or fetch from the cache). */
struct CalibrationJob
{
    std::string lcName;
    /** The harness base config the serial path would calibrate with. */
    SystemConfig config;
};

class Orchestrator
{
  public:
    struct Options
    {
        /** Worker threads. 1 reproduces serial execution exactly. */
        std::uint32_t jobs = 1;
        /** Result-cache directory; empty disables caching. */
        std::string cacheDir;
        /**
         * Merged trace sink. Non-null gives every job a private
         * tracer (merged back in submission order) plus a "driver
         * workers" lane block showing the actual schedule — and
         * disables the result cache for the run.
         */
        Tracer *tracer = nullptr;
        /**
         * When non-empty, run() appends one line per invocation:
         * "jobs=<total> simulated=<n> cached=<n> failed=<n>
         * workers=<n> hitrate=<cached/total> wall=<seconds>". CI's
         * warm-cache check greps the count fields; the two trailing
         * telemetry fields are wall-clock and excluded from any
         * determinism comparison.
         */
        std::string summaryPath;
        /**
         * Event log + heartbeat knobs (src/driver/telemetry.hh).
         * Both off by default; neither affects results.
         */
        TelemetryOptions telemetry;
    };

    explicit Orchestrator(Options options);

    const Options &options() const { return options_; }

    /**
     * Executes every job of @p graph and returns outcomes indexed by
     * JobId. Does not throw on job failure: a job whose simulation
     * escapes with FatalError/PanicError yields ok == false with the
     * message, and every other job still runs to completion.
     */
    std::vector<JobOutcome> run(const JobGraph &graph);

    /**
     * Computes (or loads from cache) one calibration per request,
     * in parallel, returned in request order. Throws FatalError if
     * any calibration fails — a sweep cannot proceed without them.
     */
    std::vector<LcCalibration>
    runCalibrations(const std::vector<CalibrationJob> &requests);

    /**
     * The driver.* stat group: jobs.{submitted,simulated,cached,
     * failed}, calibrations.{computed,cached}, queue.peakDepth,
     * workers, and one workerNN.jobs counter per worker. Values
     * accumulate across run() calls. Scheduling-dependent by design;
     * never folded into result fingerprints.
     */
    const StatRegistry &stats() const { return statreg_; }

  private:
    Options options_;
    ResultCache cache_;
    Telemetry telemetry_;
    StatRegistry statreg_;

    std::uint64_t jobsSubmitted_ = 0;
    std::uint64_t jobsSimulated_ = 0;
    std::uint64_t jobsCached_ = 0;
    std::uint64_t jobsFailed_ = 0;
    std::uint64_t calibrationsComputed_ = 0;
    std::uint64_t calibrationsCached_ = 0;
    std::uint64_t peakQueueDepth_ = 0;
    /** Jobs run per worker; slot w written only by worker w. */
    std::vector<std::uint64_t> workerJobs_;

    void writeSummary(std::uint64_t total, std::uint64_t simulated,
                      std::uint64_t cached, std::uint64_t failed,
                      double wallSec) const;
};

/**
 * The parallel twin of ExperimentHarness::sweep(): same mixes, same
 * seeds, same calibration policy (each LC app calibrated with the
 * config of the *first* mix that contains it, exactly as the serial
 * lazy path would), results in mix order — byte-identical output to
 * sweep(), whatever the worker count. Newly computed calibrations are
 * installed back into @p harness so later sweeps reuse them, again
 * matching the serial harness. Throws FatalError if any job fails.
 */
std::vector<MixResult>
parallelSweep(ExperimentHarness &harness,
              const std::vector<std::string> &lcNames,
              std::uint32_t numMixes,
              const std::vector<LlcDesign> &designs, LoadLevel load,
              Orchestrator &orchestrator);

/**
 * Worker count for tools/benches: JUMANJI_JOBS when set and positive,
 * else @p fallback.
 */
std::uint32_t jobCountFromEnv(std::uint32_t fallback);

/** Cache directory for tools/benches: JUMANJI_CACHE_DIR or empty. */
std::string cacheDirFromEnv();

} // namespace driver
} // namespace jumanji

#endif // JUMANJI_DRIVER_ORCHESTRATOR_HH
