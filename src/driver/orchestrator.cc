#include "src/driver/orchestrator.hh"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <optional>
#include <set>
#include <utility>

#include "src/driver/pool.hh"
#include "src/sim/logging.hh"
#include "src/sim/profiler.hh"
#include "src/workloads/mixes.hh"

namespace jumanji {
namespace driver {

namespace {

/** Simulated accesses of a finished mix, for telemetry rates. */
std::uint64_t
accessesOf(const MixResult &result)
{
    double total = 0.0;
    for (const DesignResult &d : result.designs)
        total += d.run.stat("llc.hits", 0.0) +
                 d.run.stat("llc.misses", 0.0);
    return total > 0.0 ? static_cast<std::uint64_t>(total) : 0;
}

} // namespace

Orchestrator::Orchestrator(Options options)
    : options_(std::move(options)), cache_(options_.cacheDir),
      telemetry_(options_.telemetry)
{
    if (options_.jobs == 0) options_.jobs = 1;
    workerJobs_.assign(options_.jobs, 0);

    statreg_.addCounter("driver.jobs.submitted",
                        "jobs handed to run() across all invocations",
                        &jobsSubmitted_);
    statreg_.addCounter("driver.jobs.simulated",
                        "jobs that ran a simulation on a worker",
                        &jobsSimulated_);
    statreg_.addCounter("driver.jobs.cached",
                        "jobs answered from the result cache",
                        &jobsCached_);
    statreg_.addCounter("driver.jobs.failed",
                        "jobs whose simulation threw", &jobsFailed_);
    statreg_.addCounter("driver.calibrations.computed",
                        "LC calibrations simulated on a worker",
                        &calibrationsComputed_);
    statreg_.addCounter("driver.calibrations.cached",
                        "LC calibrations answered from the cache",
                        &calibrationsCached_);
    statreg_.addGauge("driver.queue.peakDepth",
                      "high-water mark of queued tasks", [this] {
                          return static_cast<double>(peakQueueDepth_);
                      });
    statreg_.addGauge("driver.workers", "worker-pool size", [this] {
        return static_cast<double>(options_.jobs);
    });
    for (WorkerId w = 0; w < options_.jobs; w++)
        statreg_.addCounter("driver.worker" + statIndexName(w) + ".jobs",
                            "jobs executed by this worker",
                            &workerJobs_[w]);
}

std::vector<JobOutcome>
Orchestrator::run(const JobGraph &graph)
{
    const double runStart = telemetryNowSec();
    const std::size_t n = graph.size();
    std::vector<JobOutcome> outcomes(n);
    jobsSubmitted_ += n;

    const bool tracing = options_.tracer != nullptr;
    std::vector<Tracer> jobTracers(tracing ? n : 0);
    std::vector<WorkerId> ranOn(n, 0);
    // Disjoint-slot discipline, same as outcomes/ranOn: slot id is
    // written by the submitting thread before submit() and by the
    // one worker that runs job id after, never concurrently.
    std::vector<JobTiming> timings(n);
    telemetry_.beginBatch(n);

    std::uint64_t cached = 0;
    {
        Pool pool(options_.jobs);
        for (JobId id = 0; id < n; id++) {
            const SweepJob &job = graph.job(id);
            JobTiming &timing = timings[id];
            // Probe the cache on the submitting thread: a hit is a
            // file read and never occupies a worker. Tracing bypasses
            // the cache — a cached result has no trace events.
            if (!tracing && job.cacheable && cache_.enabled()) {
                const double probeStart = telemetryNowSec();
                std::optional<MixResult> hit;
                {
                    JUMANJI_PROF_SCOPE("driver.cache.probe");
                    hit = cache_.loadResult(jobKey(job));
                }
                timing.probeSec = telemetryNowSec() - probeStart;
                if (hit) {
                    outcomes[id].ok = true;
                    outcomes[id].fromCache = true;
                    outcomes[id].result = std::move(*hit);
                    timing.cached = true;
                    timing.ok = true;
                    timing.accesses = accessesOf(outcomes[id].result);
                    telemetry_.jobDone(timing.accesses);
                    cached++;
                    continue;
                }
            }
            timing.submitAt = telemetryNowSec();
            pool.submit([this, &graph, &outcomes, &jobTracers, &ranOn,
                         &timings, tracing, id](WorkerId w) {
                JUMANJI_PROF_SCOPE("driver.job.simulate");
                const SweepJob &todo = graph.job(id);
                JobOutcome &out = outcomes[id];
                JobTiming &timing = timings[id];
                timing.worker = w;
                timing.startAt = telemetryNowSec();
                ranOn[id] = w;
                workerJobs_[w] += 1;
                SystemConfig cfg = todo.config;
                // Jobs never share a tracer: private or none.
                cfg.tracer = tracing ? &jobTracers[id] : nullptr;
                try {
                    if (todo.selfCalibrate) {
                        ExperimentHarness local(cfg);
                        out.result = local.runMix(todo.mix,
                                                  todo.designs,
                                                  todo.load);
                    } else {
                        out.result = ExperimentHarness::runCalibrated(
                            cfg, todo.mix, todo.designs, todo.load,
                            todo.calibrations);
                    }
                    out.ok = true;
                } catch (const std::exception &e) {
                    out.ok = false;
                    out.error = e.what();
                }
                if (out.ok && !tracing && todo.cacheable)
                    cache_.storeResult(jobKey(todo), out.result);
                timing.ok = out.ok;
                if (out.ok) timing.accesses = accessesOf(out.result);
                timing.endAt = telemetryNowSec();
                telemetry_.jobDone(timing.accesses);
            });
        }
        pool.drain();
        if (pool.peakQueueDepth() > peakQueueDepth_)
            peakQueueDepth_ = pool.peakQueueDepth();
    }

    const double mergeStart = telemetryNowSec();
    JUMANJI_PROF_SCOPE("driver.merge");
    std::uint64_t simulated = 0;
    std::uint64_t failed = 0;
    for (const JobOutcome &out : outcomes) {
        if (out.fromCache) continue;
        if (out.ok)
            simulated++;
        else
            failed++;
    }
    jobsSimulated_ += simulated;
    jobsCached_ += cached;
    jobsFailed_ += failed;

    if (tracing) {
        // Submission-order merge: the combined trace is independent
        // of which worker ran what or in what order jobs finished.
        for (const Tracer &t : jobTracers)
            options_.tracer->mergeFrom(t);
        // The schedule lane *is* worker-dependent — that is its
        // point: one lane per worker, one span per job, with the
        // JobId as the (logical) timestamp.
        std::uint32_t pid = options_.tracer->beginProcess(
            "driver workers");
        for (WorkerId w = 0; w < options_.jobs; w++)
            options_.tracer->threadName(pid, w,
                                        "worker " + statIndexName(w));
        for (JobId id = 0; id < n; id++)
            options_.tracer->complete(
                pid, ranOn[id], "job", id, 1,
                {{"job", static_cast<double>(id)}});
    }

    // Events are emitted here, after the drain, in JobId order: the
    // log's line order is deterministic even though its durations
    // are wall-clock.
    if (telemetry_.eventsEnabled())
        for (JobId id = 0; id < n; id++)
            telemetry_.jobEvent(id, graph.job(id).label, timings[id]);
    const double runEnd = telemetryNowSec();
    telemetry_.runEvent("jobs", n, simulated, cached, failed,
                        options_.jobs, runEnd - runStart,
                        runEnd - mergeStart);
    writeSummary(n, simulated, cached, failed, runEnd - runStart);
    return outcomes;
}

std::vector<LcCalibration>
Orchestrator::runCalibrations(const std::vector<CalibrationJob> &requests)
{
    const double runStart = telemetryNowSec();
    const std::size_t n = requests.size();
    std::vector<LcCalibration> results(n);
    std::vector<std::string> errors(n);
    std::vector<JobTiming> timings(n);
    telemetry_.beginBatch(n);

    std::uint64_t cached = 0;
    {
        Pool pool(options_.jobs);
        for (std::size_t i = 0; i < n; i++) {
            std::string key = calibrationKey(requests[i].config,
                                             requests[i].lcName);
            const double probeStart = telemetryNowSec();
            if (auto hit = cache_.loadCalibration(key)) {
                results[i] = *hit;
                timings[i].probeSec = telemetryNowSec() - probeStart;
                timings[i].cached = true;
                timings[i].ok = true;
                telemetry_.jobDone(0);
                cached++;
                continue;
            }
            timings[i].probeSec = telemetryNowSec() - probeStart;
            timings[i].submitAt = telemetryNowSec();
            pool.submit([this, &requests, &results, &errors, &timings,
                         i, key](WorkerId w) {
                JUMANJI_PROF_SCOPE("driver.calibration");
                timings[i].worker = w;
                timings[i].startAt = telemetryNowSec();
                try {
                    ExperimentHarness local(requests[i].config);
                    results[i] =
                        local.calibrationFor(requests[i].lcName);
                    cache_.storeCalibration(key, results[i]);
                } catch (const std::exception &e) {
                    errors[i] = e.what();
                }
                timings[i].ok = errors[i].empty();
                timings[i].endAt = telemetryNowSec();
                telemetry_.jobDone(0);
            });
        }
        pool.drain();
        if (pool.peakQueueDepth() > peakQueueDepth_)
            peakQueueDepth_ = pool.peakQueueDepth();
    }

    if (telemetry_.eventsEnabled())
        for (std::size_t i = 0; i < n; i++)
            telemetry_.calibrationEvent(requests[i].lcName,
                                        timings[i]);
    telemetry_.runEvent("calibrations", n, n - cached, cached, 0,
                        options_.jobs, telemetryNowSec() - runStart,
                        0.0);

    for (std::size_t i = 0; i < n; i++)
        if (!errors[i].empty())
            fatal("calibration of " + requests[i].lcName +
                  " failed: " + errors[i]);
    calibrationsComputed_ += n - cached;
    calibrationsCached_ += cached;
    return results;
}

void
Orchestrator::writeSummary(std::uint64_t total, std::uint64_t simulated,
                           std::uint64_t cached, std::uint64_t failed,
                           double wallSec) const
{
    if (options_.summaryPath.empty()) return;
    std::ofstream out(options_.summaryPath, std::ios::app);
    if (!out) return;
    // The two trailing fields are wall-clock telemetry; they are
    // appended last so grep checks over the deterministic count
    // fields keep matching.
    char tail[64];
    std::snprintf(tail, sizeof(tail), " hitrate=%.2f wall=%.3f",
                  total > 0 ? static_cast<double>(cached) /
                                  static_cast<double>(total)
                            : 0.0,
                  wallSec);
    out << "jobs=" << total << " simulated=" << simulated
        << " cached=" << cached << " failed=" << failed
        << " workers=" << options_.jobs << tail << "\n";
}

std::vector<MixResult>
parallelSweep(ExperimentHarness &harness,
              const std::vector<std::string> &lcNames,
              std::uint32_t numMixes,
              const std::vector<LlcDesign> &designs, LoadLevel load,
              Orchestrator &orchestrator)
{
    const SystemConfig base = harness.baseConfig();

    // Phase A: materialize every sweep point. Seed derivation and
    // mix generation replicate ExperimentHarness::sweep() exactly —
    // this is what keeps parallel output byte-identical to serial.
    struct MixPoint
    {
        SystemConfig config;
        WorkloadMix mix;
    };
    std::vector<MixPoint> points;
    points.reserve(numMixes);
    for (std::uint32_t m = 0; m < numMixes; m++) {
        SystemConfig cfg = base;
        cfg.seed = base.seed + m * 1000003ull;
        Rng mixRng(cfg.seed ^ 0x5eedull);
        points.push_back({cfg, makeMix(lcNames, 4, 4, mixRng)});
    }

    // Phase B: calibrate in the serial lazy order — each uncalibrated
    // LC app is calibrated with the config of the *first* mix that
    // contains it, which is the config the serial sweep's lazy
    // calibrationFor would have used.
    std::vector<CalibrationJob> plan;
    std::set<std::string> planned;
    for (const MixPoint &p : points)
        for (const VmSpec &vm : p.mix.vms)
            for (const std::string &name : vm.lcApps)
                if (!harness.hasCalibration(name) &&
                    planned.insert(name).second)
                    plan.push_back({name, p.config});
    std::vector<LcCalibration> calibrations =
        orchestrator.runCalibrations(plan);
    for (std::size_t i = 0; i < plan.size(); i++)
        harness.setCalibration(plan[i].lcName, calibrations[i]);

    // Phase C: one pre-calibrated job per mix, merged in mix order.
    JobGraph graph;
    for (std::uint32_t m = 0; m < numMixes; m++) {
        SweepJob job;
        job.label = "mix" + statIndexName(m);
        job.config = points[m].config;
        job.mix = points[m].mix;
        job.designs = designs;
        job.load = load;
        job.selfCalibrate = false;
        job.calibrations = harness.calibrationsFor(points[m].mix);
        graph.add(std::move(job));
    }
    std::vector<JobOutcome> outcomes = orchestrator.run(graph);

    std::vector<MixResult> results;
    results.reserve(outcomes.size());
    for (JobId id = 0; id < outcomes.size(); id++) {
        if (!outcomes[id].ok)
            fatal("sweep job " + graph.job(id).label +
                  " failed: " + outcomes[id].error);
        results.push_back(std::move(outcomes[id].result));
    }
    return results;
}

std::uint32_t
jobCountFromEnv(std::uint32_t fallback)
{
    const char *env = std::getenv("JUMANJI_JOBS");
    if (env == nullptr) return fallback;
    long value = std::strtol(env, nullptr, 10);
    if (value <= 0) return fallback;
    return static_cast<std::uint32_t>(value);
}

std::string
cacheDirFromEnv()
{
    const char *env = std::getenv("JUMANJI_CACHE_DIR");
    return env == nullptr ? std::string() : std::string(env);
}

} // namespace driver
} // namespace jumanji
