/**
 * @file
 * A content-addressed on-disk result cache for sweep jobs.
 *
 * The key is the FNV-1a fingerprint of everything a deterministic
 * simulation's outcome can depend on: the code version tag below, the
 * full SystemConfig (seed included), the workload mix, the design
 * list, the load level, and — for pre-calibrated jobs — the installed
 * calibrations. Determinism is the load-bearing property: the
 * simulator guarantees results are a pure function of (config, mix,
 * seed), which is exactly what makes a byte-for-byte result cache
 * sound. Re-running an unchanged sweep point is a file read.
 *
 * Values are small self-describing binary blobs (magic + schema
 * version; u64s little-endian, doubles by bit pattern, strings
 * length-prefixed). Any mismatch — wrong magic, truncation, schema
 * drift — reads as a miss, never an error: a corrupt cache costs a
 * re-simulation, nothing more. Stores write to a temp file and
 * rename, so concurrent processes sharing a cache directory see
 * either the old file or the whole new one.
 */

#ifndef JUMANJI_DRIVER_RESULT_CACHE_HH
#define JUMANJI_DRIVER_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "src/driver/job.hh"

namespace jumanji {
namespace driver {

/**
 * Cache-key version tag. Bump whenever simulation semantics change —
 * any edit that can alter a RunResult for the same (config, mix,
 * seed) — so stale results can never be served. The CI orchestration
 * job's warm-cache check will catch a forgotten bump only when the
 * change also shifts the serial golden, so err toward bumping.
 */
inline constexpr const char *kCodeVersion = "jumanji-results-v1";

/** Fingerprint of every input a job's result depends on, as hex. */
std::string jobKey(const SweepJob &job);

/** Key for one LC app's calibration under @p config. */
std::string calibrationKey(const SystemConfig &config,
                           const std::string &lcName);

class ResultCache
{
  public:
    /** @param dir Cache directory; created on first store. Empty
     *         string disables the cache (all loads miss, stores
     *         drop). */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Cached result for @p key, or nullopt on miss/corruption. */
    std::optional<MixResult> loadResult(const std::string &key) const;

    /** Persists @p result under @p key (atomic temp + rename). */
    void storeResult(const std::string &key, const MixResult &result);

    std::optional<LcCalibration>
    loadCalibration(const std::string &key) const;

    void storeCalibration(const std::string &key,
                          const LcCalibration &calibration);

  private:
    std::string pathFor(const std::string &key,
                        const char *suffix) const;
    void storeBlob(const std::string &path, const std::string &blob);
    std::optional<std::string> loadBlob(const std::string &path) const;

    std::string dir_;
    /** Serializes temp-file writes within this process. */
    std::mutex storeMutex_;
};

/** Blob codecs, exposed for tests (round-trip coverage). */
std::string serializeMixResult(const MixResult &result);
std::optional<MixResult> deserializeMixResult(const std::string &blob);
std::string serializeCalibration(const LcCalibration &calibration);
std::optional<LcCalibration>
deserializeCalibration(const std::string &blob);

} // namespace driver
} // namespace jumanji

#endif // JUMANJI_DRIVER_RESULT_CACHE_HH
