/**
 * @file
 * A fixed-size worker pool: N std::threads draining one MpmcQueue of
 * type-erased tasks. Each task receives the id of the worker running
 * it (0..N-1), which the orchestrator uses for per-worker stats and
 * trace lanes without any shared mutable state — worker-id-indexed
 * slots are written by exactly one thread and read only after join.
 */

#ifndef JUMANJI_DRIVER_POOL_HH
#define JUMANJI_DRIVER_POOL_HH

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/driver/mpmc_queue.hh"

namespace jumanji {
namespace driver {

using WorkerId = std::uint32_t;

/** A pool task; must not throw (wrap work in its own try/catch). */
using Task = std::function<void(WorkerId)>;

class Pool
{
  public:
    /** Spawns @p workers threads (at least 1). */
    explicit Pool(std::uint32_t workers);

    /** Joins all workers; pending tasks still run first. */
    ~Pool();

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /** Enqueues @p task; any worker may pick it up. */
    void submit(Task task);

    /**
     * Closes the queue and joins every worker: all submitted tasks
     * have finished when this returns, and their writes are visible
     * to the caller (join is the synchronization point). The pool is
     * spent afterwards — submit() must not be called again.
     */
    void drain();

    std::uint32_t workers() const;

    /** Queue high-water mark (valid any time; stable after drain). */
    std::size_t peakQueueDepth() const { return queue_.peakDepth(); }

  private:
    MpmcQueue<Task> queue_;
    std::vector<std::thread> threads_;
    std::uint32_t workerCount_ = 0;
    bool drained_ = false;
};

} // namespace driver
} // namespace jumanji

#endif // JUMANJI_DRIVER_POOL_HH
