#include "src/driver/telemetry.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/sim/json.hh"
#include "src/sim/logging.hh"

namespace jumanji {
namespace driver {

double
telemetryNowSec()
{
    // The anchor is the first call, so timestamps are small,
    // positive, and meaningless across processes — they only ever
    // appear as differences (durations) or relative offsets.
    static const std::chrono::steady_clock::time_point anchor =
        std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - anchor)
        .count();
}

TelemetryOptions
telemetryOptionsFromEnv()
{
    TelemetryOptions opts;
    if (const char *env = std::getenv("JUMANJI_EVENTS"))
        opts.eventsPath = env;
    if (const char *env = std::getenv("JUMANJI_HEARTBEAT_MS")) {
        char *end = nullptr;
        long value = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || value < 0) {
            static bool warned = false;
            if (!warned) {
                warned = true;
                warn("JUMANJI_HEARTBEAT_MS=\"" + std::string(env) +
                     "\" is not a whole number of milliseconds >= 0; "
                     "heartbeat stays off");
            }
        } else {
            opts.heartbeatMs = static_cast<std::uint32_t>(value);
        }
    }
    return opts;
}

Telemetry::Telemetry(TelemetryOptions options)
    : options_(std::move(options))
{
    if (options_.eventsPath.empty()) return;
    events_.open(options_.eventsPath, std::ios::app);
    if (!events_.is_open()) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("cannot open event log \"" + options_.eventsPath +
                 "\"; events stay off");
        }
    }
}

void
Telemetry::beginBatch(std::uint64_t totalJobs)
{
    totalJobs_ = totalJobs;
    batchStart_ = telemetryNowSec();
    jobsDone_.store(0);
    accessesDone_.store(0);
    lastBeatMs_.store(
        static_cast<std::uint64_t>(batchStart_ * 1000.0));
}

void
Telemetry::jobDone(std::uint64_t accesses)
{
    const std::uint64_t done = jobsDone_.fetch_add(1) + 1;
    const std::uint64_t acc =
        accessesDone_.fetch_add(accesses) + accesses;
    if (!heartbeatEnabled()) return;
    const double now = telemetryNowSec();
    const std::uint64_t nowMs =
        static_cast<std::uint64_t>(now * 1000.0);
    std::uint64_t last = lastBeatMs_.load();
    if (done < totalJobs_ && nowMs - last < options_.heartbeatMs)
        return;
    // One winner per beat window; losers raced a concurrent beat
    // that already reported this progress.
    if (!lastBeatMs_.compare_exchange_strong(last, nowMs)) return;
    const double elapsed = now - batchStart_;
    const double rate =
        elapsed > 0.0 ? static_cast<double>(acc) / elapsed : 0.0;
    const double eta =
        done > 0 ? elapsed / static_cast<double>(done) *
                       static_cast<double>(totalJobs_ - done)
                 : 0.0;
    // A single stderr write per beat: progress never shears through
    // the stdout tables, and concurrent beats stay line-atomic.
    std::fprintf(stderr,
                 "[jumanji] %llu/%llu jobs  %.3g accesses/s  "
                 "elapsed %.1fs  eta %.1fs\n",
                 static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(totalJobs_), rate,
                 elapsed, eta);
}

void
Telemetry::jobEvent(JobId id, const std::string &label,
                    const JobTiming &t)
{
    if (!eventsEnabled()) return;
    JsonValue e = JsonValue::makeObject();
    e.set("type", JsonValue::makeString("job"));
    e.set("id", JsonValue::makeU64(id));
    e.set("label", JsonValue::makeString(label));
    e.set("worker", JsonValue::makeU64(t.worker));
    e.set("cached", JsonValue::makeBool(t.cached));
    e.set("ok", JsonValue::makeBool(t.ok));
    const double wait =
        t.startAt > t.submitAt ? t.startAt - t.submitAt : 0.0;
    const double simulate =
        t.endAt > t.startAt ? t.endAt - t.startAt : 0.0;
    e.set("queue_wait_s", JsonValue::makeNumber(t.cached ? 0.0 : wait));
    e.set("probe_s", JsonValue::makeNumber(t.probeSec));
    e.set("simulate_s", JsonValue::makeNumber(simulate));
    e.set("accesses", JsonValue::makeU64(t.accesses));
    events_ << e.dump(-1) << "\n";
}

void
Telemetry::calibrationEvent(const std::string &lcName,
                            const JobTiming &t)
{
    if (!eventsEnabled()) return;
    JsonValue e = JsonValue::makeObject();
    e.set("type", JsonValue::makeString("calibration"));
    e.set("lc", JsonValue::makeString(lcName));
    e.set("worker", JsonValue::makeU64(t.worker));
    e.set("cached", JsonValue::makeBool(t.cached));
    const double wait =
        t.startAt > t.submitAt ? t.startAt - t.submitAt : 0.0;
    const double compute =
        t.endAt > t.startAt ? t.endAt - t.startAt : 0.0;
    e.set("queue_wait_s", JsonValue::makeNumber(t.cached ? 0.0 : wait));
    e.set("compute_s", JsonValue::makeNumber(compute));
    events_ << e.dump(-1) << "\n";
}

void
Telemetry::runEvent(const char *kind, std::uint64_t total,
                    std::uint64_t simulated, std::uint64_t cached,
                    std::uint64_t failed, std::uint32_t workers,
                    double wallSec, double mergeSec)
{
    if (!eventsEnabled()) return;
    JsonValue e = JsonValue::makeObject();
    e.set("type", JsonValue::makeString("run"));
    e.set("kind", JsonValue::makeString(kind));
    e.set("jobs", JsonValue::makeU64(total));
    e.set("simulated", JsonValue::makeU64(simulated));
    e.set("cached", JsonValue::makeU64(cached));
    e.set("failed", JsonValue::makeU64(failed));
    e.set("workers", JsonValue::makeU64(workers));
    e.set("wall_s", JsonValue::makeNumber(wallSec));
    e.set("merge_s", JsonValue::makeNumber(mergeSec));
    events_ << e.dump(-1) << "\n";
    events_.flush();
}

} // namespace driver
} // namespace jumanji
