#include "src/driver/pool.hh"

#include <mutex>

#include "src/sim/check.hh"
#include "src/sim/profiler.hh"

namespace jumanji {
namespace driver {

namespace {

/**
 * Serializes profile flushes from exiting workers. The profiler
 * itself is lock-free by design (simulation code may not hold
 * threading primitives), so the pool — the sanctioned home of
 * concurrency — owns the exclusion around the shared aggregate.
 */
std::mutex &
profileFlushMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

Pool::Pool(std::uint32_t workers)
{
    if (workers == 0) workers = 1;
    workerCount_ = workers;
    threads_.reserve(workers);
    for (WorkerId id = 0; id < workers; id++) {
        threads_.emplace_back([this, id] {
            while (std::optional<Task> task = queue_.pop()) (*task)(id);
            std::lock_guard<std::mutex> lock(profileFlushMutex());
            prof::flushThreadProfile();
        });
    }
}

Pool::~Pool()
{
    if (!drained_) drain();
}

void
Pool::submit(Task task)
{
    JUMANJI_ASSERT(!drained_, "Pool::submit after drain");
    queue_.push(std::move(task));
}

void
Pool::drain()
{
    if (drained_) return;
    drained_ = true;
    queue_.close();
    for (std::thread &t : threads_) t.join();
    threads_.clear();
}

std::uint32_t
Pool::workers() const
{
    return workerCount_;
}

} // namespace driver
} // namespace jumanji
