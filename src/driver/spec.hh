/**
 * @file
 * ExperimentSpec: the declarative scenario layer (docs/INTERNALS.md
 * §12). A spec is a *value* describing a whole experiment grid —
 * preset + config overrides, variant list, design list, load levels,
 * LC-app groups, mix policy, seed policy, and an output descriptor —
 * that expands deterministically into the driver's JobGraph. Because
 * expansion bottoms out in SweepJobs, every spec-driven run inherits
 * the orchestrator's guarantees for free: JUMANJI_JOBS-parallel
 * execution with byte-identical output, the content-addressed result
 * cache, and submission-order merging.
 *
 * The expansion replicates the handwritten bench loops *exactly*
 * (per-mix seed = base.seed + m * 1000003, mix RNG optionally salted
 * with 0x5eed, lazy first-seen calibration order), so a bench
 * rewritten as a spec produces byte-identical stdout — proven by the
 * golden diffs in tests/test_spec.cc and CI's scenario job.
 */

#ifndef JUMANJI_DRIVER_SPEC_HH
#define JUMANJI_DRIVER_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/driver/orchestrator.hh"
#include "src/sim/json.hh"
#include "src/system/config.hh"

namespace jumanji {
namespace driver {

/**
 * Base-seed policy. With fromEnv, JUMANJI_SEED overrides the
 * fallback — parsed by driver::seedFromEnv, which warns (once) on
 * values it must ignore instead of silently running the wrong seed.
 */
struct SeedPolicy
{
    bool fromEnv = true;
    std::uint64_t fallback = 1;
};

/**
 * How workload mixes are generated: @p count random 4-LC-VM mixes
 * (JUMANJI_MIXES overrides when fromEnv), each built by
 * makeMix(group.lc, vms, batchPerVm, Rng(seed [^ 0x5eed])). The salt
 * matches the sweep-style benches (fig13/17/18); unsalted matches
 * the single-mix case studies (fig09, ablations), whose mix RNG is
 * seeded with the raw config seed.
 */
struct MixPolicy
{
    std::uint32_t count = 3;
    bool fromEnv = true;
    std::uint32_t vms = 4;
    std::uint32_t batchPerVm = 4;
    bool salt = true;
};

/** One LC-app selection ("xapian", or "Mixed" = all five). */
struct SpecGroup
{
    std::string label;
    std::vector<std::string> lcNames;
};

/**
 * One experiment variant: a labelled config patch (same schema as
 * the top-level overrides) applied on top of the resolved base
 * config, plus the Fig. 17 VM-regrouping knob. The default spec has
 * a single anonymous variant (the base config itself).
 */
struct SpecVariant
{
    std::string label;
    /** Config patch (JSON object; Null = no change). */
    JsonValue overrides;
    /** When > 0, regroupMix(mix, regroupVms) after generation. */
    std::uint32_t regroupVms = 0;
};

/**
 * LC calibration policy.
 *  - Shared: per variant, each LC app is calibrated once with the
 *    config of the first job whose mix contains it (the serial
 *    harness's lazy order, as parallelSweep replicates), and jobs
 *    carry the calibrations (selfCalibrate = false). Matches the
 *    shared-harness benches: fig13, fig16, fig18.
 *  - PerJob: every job calibrates itself from its own config.
 *    Matches the fresh-harness-per-point benches: fig09, fig17, the
 *    ablations.
 */
enum class CalibrationMode
{
    Shared,
    PerJob,
};

/** One output column: an aggregate key plus its printed header. */
struct SpecColumn
{
    /**
     * Aggregate over a cell's mixes:
     *  "tailMean"    mean of per-design meanTailRatio
     *  "tailWorst"   max of stat("sys.tail.worstRatio")
     *  "batchWS"     gmean of batch weighted speedup (gmeanSpeedups)
     *  "batchWSMean" arithmetic mean of batch speedup (fig17)
     *  "attackers"   mean of stat("sys.attackersPerAccess")
     */
    std::string key;
    std::string header;
};

/**
 * How the grid is rendered. Two layouts:
 *  - "design-table": one section per (load, group); rows are the
 *    designs (optionally preceded by the Static baseline row).
 *    Requires exactly one variant. (fig13, fig16)
 *  - "variant-table": one section per (load, group); rows are the
 *    variants. Requires exactly one design. (fig09, fig17, fig18,
 *    ablations, epoch_load_grid)
 */
struct SpecOutput
{
    std::string title;
    std::string caption;
    /** Trailing "note: ..." line; empty = none. */
    std::string note;
    std::string layout = "design-table";
    /**
     * Section heading template; "{load}", "{group}", "{mixes}" and
     * "{variant}" expand per section. Empty = single-section output
     * with no heading line (requires one load and one group).
     */
    std::string sectionLabel;
    /** First-column header ("design", "parameters", ...). */
    std::string labelHeader = "design";
    std::uint32_t labelWidth = 20;
    /** design-table: prepend the Static normalization baseline row. */
    bool staticRow = false;
    std::vector<SpecColumn> columns;
};

/** The declarative experiment description. */
struct ExperimentSpec
{
    std::string name;
    /** Base preset: "paperDefault" | "benchScaled" | "testTiny". */
    std::string preset = "benchScaled";
    /** Config patch applied to the preset (JSON object; Null = none). */
    JsonValue overrides;
    SeedPolicy seed;
    MixPolicy mixes;
    std::vector<LlcDesign> designs;
    std::vector<LoadLevel> loads = {LoadLevel::High};
    std::vector<SpecGroup> groups;
    std::vector<SpecVariant> variants = {SpecVariant{}};
    CalibrationMode calibration = CalibrationMode::Shared;
    SpecOutput output;

    /**
     * Parses and validates a scenario document. Throws FatalError
     * with a "field: reason" diagnostic (unknown keys, bad enum
     * names, layout/shape mismatches) — never a silent default.
     */
    static ExperimentSpec fromJson(const JsonValue &json);

    /**
     * Canonical serialization: every field explicit, so
     * fromJson(x).toJson() is a normal form — two specs are
     * equivalent iff their toJson dumps are equal (tests compare the
     * C++ builders in bench/specs.hh against examples/scenarios/
     * this way).
     */
    JsonValue toJson() const;
};

/**
 * The fully expanded grid: resolved configs, mixes and jobs in the
 * deterministic expansion order variants → loads → groups → mixes
 * (jobIndex gives the flattening). Calibration requests are listed
 * for CalibrationMode::Shared; the jobs then expect their
 * calibrations to be filled in before running (runSpec does).
 */
struct SpecPlan
{
    /** Preset + overrides + seed policy applied. */
    SystemConfig base;
    /** base + each variant's overrides, revalidated. */
    std::vector<SystemConfig> variantConfigs;
    /** Mix count after the env override. */
    std::uint32_t mixCount = 0;
    JobGraph graph;
    /** Shared-mode calibration plan (lazy first-seen order). */
    std::vector<CalibrationJob> calibrationPlan;

    std::size_t
    jobIndex(std::size_t variant, std::size_t load, std::size_t group,
             std::size_t mix, const ExperimentSpec &spec) const
    {
        return ((variant * spec.loads.size() + load) *
                    spec.groups.size() +
                group) *
                   mixCount +
               mix;
    }
};

/** Expands @p spec without running anything (validation, tests). */
SpecPlan expandSpec(const ExperimentSpec &spec);

/** A finished spec run: the plan plus results in job order. */
struct SpecRun
{
    SpecPlan plan;
    std::vector<MixResult> results;
};

/**
 * Expands @p spec, resolves shared calibrations through
 * @p orchestrator, runs the JobGraph, and returns results in job
 * order. Throws FatalError if any job fails — a figure with silently
 * missing points would be worse than no figure.
 */
SpecRun runSpec(const ExperimentSpec &spec, Orchestrator &orchestrator);

/**
 * Renders the result table(s) — the section headings, column
 * headers, and "%12.3f" value rows, byte-identical to the
 * handwritten benches — as a string (src/ routes output through
 * return values, not stdout; callers print it). Does not include
 * the banner or note; renderSpec does.
 */
std::string renderSpecTable(const ExperimentSpec &spec,
                            const SpecRun &run);

/** Full report: banner + renderSpecTable + optional note line. */
std::string renderSpec(const ExperimentSpec &spec, const SpecRun &run);

/**
 * JUMANJI_SEED override, else @p fallback. Accepted range is
 * [1, 2^64-1]: the full uint64 range except 0, which is reserved as
 * "unset" (and strtoull's error value). A set-but-ignored value —
 * empty, unparseable, trailing junk, or 0 — warns once per process
 * via src/sim/logging and falls back, so a typo'd seed cannot
 * silently masquerade as a clean baseline run.
 */
std::uint64_t seedFromEnv(std::uint64_t fallback = 1);

/**
 * JUMANJI_KV_LOAD_SCALE override, else @p fallback. Scales the
 * offered load of every KV app in a scenario (kv.loadScale). Accepted
 * range is (0, 1e3]; a set-but-ignored value warns once per process
 * and falls back, mirroring seedFromEnv's policy.
 */
double kvLoadScaleFromEnv(double fallback = 1.0);

} // namespace driver
} // namespace jumanji

#endif // JUMANJI_DRIVER_SPEC_HH
