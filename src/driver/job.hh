/**
 * @file
 * Job descriptions for the experiment driver: one SweepJob per
 * independent (config, mix) simulation point, collected into a
 * JobGraph whose submission order defines the deterministic merge
 * order of results.
 *
 * Jobs are *values*: everything a worker needs (config, workload,
 * designs, load, calibrations) is copied into the job up front, so a
 * worker thread touches no shared state while executing one. That is
 * the whole concurrency story of the driver — simulation code stays
 * single-threaded per job (and the lint concurrency-routing rule
 * keeps it that way); only the pool and orchestrator in src/driver/
 * know threads exist.
 */

#ifndef JUMANJI_DRIVER_JOB_HH
#define JUMANJI_DRIVER_JOB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/system/harness.hh"

namespace jumanji {
namespace driver {

using JobId = std::uint32_t;

/** One independent sweep point: runs a mix under a set of designs. */
struct SweepJob
{
    /** Human-readable tag ("mix3", "panic 1.10"); labels trace lanes. */
    std::string label;

    /** Fully resolved config — seed already derived for this point. */
    SystemConfig config;
    WorkloadMix mix;
    std::vector<LlcDesign> designs;
    LoadLevel load = LoadLevel::High;

    /**
     * When true, the worker calibrates the mix's LC apps itself from
     * `config` (matching a serial `ExperimentHarness(config)` run).
     * When false, `calibrations` must cover the mix's LC apps and is
     * folded into the cache key (it is a job input).
     */
    bool selfCalibrate = true;
    LcCalibrationMap calibrations;

    /** Opt-out for jobs whose results must not be cached. */
    bool cacheable = true;
};

/** What came back from one job, in submission order. */
struct JobOutcome
{
    bool ok = false;
    /** Result was loaded from the on-disk cache, not simulated. */
    bool fromCache = false;
    /** what() of the escaped FatalError/PanicError when !ok. */
    std::string error;
    MixResult result;
};

/**
 * An ordered collection of independent jobs. The id handed back by
 * add() is the job's index, and Orchestrator::run returns outcomes
 * indexed the same way — merge order is submission order, always.
 * (Independence is a contract: jobs must not depend on each other's
 * results. Edges can be added here if a future stage needs them.)
 */
class JobGraph
{
  public:
    JobId
    add(SweepJob job)
    {
        jobs_.push_back(std::move(job));
        return static_cast<JobId>(jobs_.size() - 1);
    }

    std::size_t size() const { return jobs_.size(); }
    bool empty() const { return jobs_.empty(); }

    const SweepJob &job(JobId id) const { return jobs_[id]; }

    /**
     * Mutable access for graph builders that resolve job inputs in a
     * second pass (the spec expander fills shared calibrations after
     * all jobs exist). Not for use once the graph is running.
     */
    SweepJob &mutableJob(JobId id) { return jobs_[id]; }

    const std::vector<SweepJob> &jobs() const { return jobs_; }

  private:
    std::vector<SweepJob> jobs_;
};

} // namespace driver
} // namespace jumanji

#endif // JUMANJI_DRIVER_JOB_HH
