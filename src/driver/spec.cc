#include "src/driver/spec.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "src/sim/logging.hh"
#include "src/workloads/kv/kv_store.hh"
#include "src/workloads/mixes.hh"

namespace jumanji {
namespace driver {

namespace {

void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

const std::vector<std::string> &
columnKeys()
{
    static const std::vector<std::string> keys = {
        "tailMean", "tailWorst", "batchWS", "batchWSMean",
        "attackers"};
    return keys;
}

/** Same strict-key walker as config_json.cc, for spec documents. */
class ObjectReader
{
  public:
    ObjectReader(const JsonValue &json, std::string prefix)
        : json_(json), prefix_(std::move(prefix))
    {
        if (!json.isObject())
            fatal((prefix_.empty() ? std::string("scenario")
                                   : prefix_) +
                  ": expected object, got " + json.kindName());
        consumed_.resize(json.members().size(), false);
    }

    const JsonValue *
    get(const std::string &key)
    {
        const auto &members = json_.members();
        for (std::size_t i = 0; i < members.size(); i++) {
            if (members[i].first == key) {
                consumed_[i] = true;
                return &members[i].second;
            }
        }
        return nullptr;
    }

    std::string
    path(const std::string &key) const
    {
        return prefix_.empty() ? key : prefix_ + "." + key;
    }

    void
    finish() const
    {
        const auto &members = json_.members();
        for (std::size_t i = 0; i < members.size(); i++)
            if (!consumed_[i])
                fatal(path(members[i].first) + ": unknown key");
    }

  private:
    const JsonValue &json_;
    std::string prefix_;
    std::vector<bool> consumed_;
};

std::vector<std::string>
lcNamesFromJson(const JsonValue &json, const std::string &path)
{
    if (json.isString()) {
        // "all" stays the TailBench catalog: KV apps opt in by name
        // so existing "all" sweeps keep their membership.
        if (json.asString(path) == "all") return allTailAppNames();
        fatal(path + ": expected \"all\" or an array of LC app names");
    }
    if (!json.isArray())
        fatal(path + ": expected \"all\" or an array of LC app names");
    const std::vector<std::string> known = allLcAppNames();
    std::vector<std::string> names;
    for (std::size_t i = 0; i < json.items().size(); i++) {
        std::string item = path + "[" + std::to_string(i) + "]";
        std::string name = json.items()[i].asString(item);
        if (std::find(known.begin(), known.end(), name) == known.end())
            fatal(item + ": unknown LC app \"" + name + "\"");
        names.push_back(std::move(name));
    }
    if (names.empty()) fatal(path + ": must name at least one LC app");
    return names;
}

SeedPolicy
seedPolicyFromJson(const JsonValue &json)
{
    SeedPolicy seed;
    ObjectReader r(json, "seed");
    if (const JsonValue *v = r.get("fromEnv"))
        seed.fromEnv = v->asBool(r.path("fromEnv"));
    if (const JsonValue *v = r.get("fallback")) {
        seed.fallback = v->asU64(r.path("fallback"));
        if (seed.fallback == 0)
            fatal("seed.fallback: must be >= 1 (0 is reserved as "
                  "\"unset\")");
    }
    r.finish();
    return seed;
}

MixPolicy
mixPolicyFromJson(const JsonValue &json)
{
    MixPolicy mixes;
    ObjectReader r(json, "mixes");
    if (const JsonValue *v = r.get("count")) {
        mixes.count = v->asU32(r.path("count"));
        if (mixes.count == 0) fatal("mixes.count: must be >= 1");
    }
    if (const JsonValue *v = r.get("fromEnv"))
        mixes.fromEnv = v->asBool(r.path("fromEnv"));
    if (const JsonValue *v = r.get("vms")) {
        mixes.vms = v->asU32(r.path("vms"));
        if (mixes.vms == 0) fatal("mixes.vms: must be >= 1");
    }
    if (const JsonValue *v = r.get("batchPerVm")) {
        mixes.batchPerVm = v->asU32(r.path("batchPerVm"));
        if (mixes.batchPerVm > 64)
            fatal("mixes.batchPerVm: must be <= 64");
    }
    if (const JsonValue *v = r.get("salt"))
        mixes.salt = v->asBool(r.path("salt"));
    r.finish();
    return mixes;
}

SpecOutput
outputFromJson(const JsonValue &json)
{
    SpecOutput out;
    ObjectReader r(json, "output");
    const JsonValue *title = r.get("title");
    if (title == nullptr) fatal("output.title: missing required key");
    out.title = title->asString("output.title");
    if (const JsonValue *v = r.get("caption"))
        out.caption = v->asString(r.path("caption"));
    if (const JsonValue *v = r.get("note"))
        out.note = v->asString(r.path("note"));
    if (const JsonValue *v = r.get("layout")) {
        out.layout = v->asString(r.path("layout"));
        if (out.layout != "design-table" &&
            out.layout != "variant-table")
            fatal("output.layout: expected \"design-table\" or "
                  "\"variant-table\", got \"" +
                  out.layout + "\"");
    }
    if (const JsonValue *v = r.get("sectionLabel"))
        out.sectionLabel = v->asString(r.path("sectionLabel"));
    if (const JsonValue *v = r.get("labelHeader"))
        out.labelHeader = v->asString(r.path("labelHeader"));
    if (const JsonValue *v = r.get("labelWidth")) {
        out.labelWidth = v->asU32(r.path("labelWidth"));
        if (out.labelWidth == 0 || out.labelWidth > 128)
            fatal("output.labelWidth: must be in [1, 128]");
    }
    if (const JsonValue *v = r.get("staticRow"))
        out.staticRow = v->asBool(r.path("staticRow"));
    const JsonValue *columns = r.get("columns");
    if (columns == nullptr)
        fatal("output.columns: missing required key");
    if (!columns->isArray() || columns->items().empty())
        fatal("output.columns: expected a non-empty array");
    for (std::size_t i = 0; i < columns->items().size(); i++) {
        std::string path = "output.columns[" + std::to_string(i) + "]";
        ObjectReader cr(columns->items()[i], path);
        SpecColumn col;
        const JsonValue *key = cr.get("key");
        if (key == nullptr) fatal(path + ".key: missing required key");
        col.key = key->asString(path + ".key");
        const auto &keys = columnKeys();
        // Dotted keys are registry leaves (e.g. apps.kv.spike.p95),
        // averaged over the cell's mixes at render time; bare keys
        // must be one of the aggregate columns.
        if (std::find(keys.begin(), keys.end(), col.key) ==
                keys.end() &&
            col.key.find('.') == std::string::npos)
            fatal(path + ".key: unknown column key \"" + col.key +
                  "\" (tailMean|tailWorst|batchWS|batchWSMean|"
                  "attackers, or a dotted stat name)");
        const JsonValue *header = cr.get("header");
        col.header = header != nullptr
                         ? header->asString(path + ".header")
                         : col.key;
        cr.finish();
        out.columns.push_back(std::move(col));
    }
    r.finish();
    return out;
}

/** Shape rules that span fields; fromJson and expandSpec both call. */
void
validateSpec(const ExperimentSpec &spec)
{
    if (spec.name.empty()) fatal("name: missing required key");
    if (spec.designs.empty())
        fatal("designs: must name at least one design");
    if (spec.loads.empty())
        fatal("loads: must name at least one load level");
    if (spec.groups.empty())
        fatal("groups: must contain at least one group");
    if (spec.variants.empty())
        fatal("variants: must contain at least one variant");
    if (spec.output.layout == "design-table" &&
        spec.variants.size() != 1)
        fatal("output.layout: design-table requires exactly one "
              "variant (got " +
              std::to_string(spec.variants.size()) + ")");
    if (spec.output.layout == "variant-table") {
        if (spec.designs.size() != 1)
            fatal("output.layout: variant-table requires exactly one "
                  "design (got " +
                  std::to_string(spec.designs.size()) + ")");
        for (std::size_t i = 0; i < spec.variants.size(); i++)
            if (spec.variants[i].label.empty())
                fatal("variants[" + std::to_string(i) +
                      "].label: variant-table rows need non-empty "
                      "labels");
        if (spec.output.staticRow)
            fatal("output.staticRow: only applies to design-table");
    }
    if (spec.output.sectionLabel.empty() &&
        (spec.loads.size() != 1 || spec.groups.size() != 1))
        fatal("output.sectionLabel: required when the grid has more "
              "than one (load, group) section");
}

std::string
expandTemplate(const std::string &tmpl, const std::string &load,
               const std::string &group, std::uint32_t mixes)
{
    std::string out;
    for (std::size_t i = 0; i < tmpl.size();) {
        if (tmpl[i] == '{') {
            std::size_t end = tmpl.find('}', i);
            if (end != std::string::npos) {
                std::string key = tmpl.substr(i + 1, end - i - 1);
                if (key == "load") {
                    out += load;
                    i = end + 1;
                    continue;
                }
                if (key == "group") {
                    out += group;
                    i = end + 1;
                    continue;
                }
                if (key == "mixes") {
                    out += std::to_string(mixes);
                    i = end + 1;
                    continue;
                }
            }
        }
        out += tmpl[i++];
    }
    return out;
}

/** One rendered cell: the results of (variant, load, group). */
std::vector<const MixResult *>
cellResults(const ExperimentSpec &spec, const SpecRun &run,
            std::size_t variant, std::size_t load, std::size_t group)
{
    std::vector<const MixResult *> cell;
    for (std::uint32_t m = 0; m < run.plan.mixCount; m++)
        cell.push_back(&run.results[run.plan.jobIndex(
            variant, load, group, m, spec)]);
    return cell;
}

double
columnValue(const std::string &key,
            const std::vector<const MixResult *> &cell, LlcDesign d)
{
    double n = static_cast<double>(cell.size());
    if (key == "tailMean") {
        double sum = 0.0;
        for (const MixResult *mix : cell)
            sum += mix->of(d).meanTailRatio;
        return sum / n;
    }
    if (key == "tailWorst") {
        double worst = 0.0;
        for (const MixResult *mix : cell)
            worst = std::max(worst,
                             mix->of(d).run.stat("sys.tail.worstRatio"));
        return worst;
    }
    if (key == "batchWS") {
        std::vector<double> values;
        for (const MixResult *mix : cell)
            values.push_back(mix->of(d).batchSpeedup);
        return gmean(values);
    }
    if (key == "batchWSMean") {
        double sum = 0.0;
        for (const MixResult *mix : cell)
            sum += mix->of(d).batchSpeedup;
        return sum / n;
    }
    if (key == "attackers") {
        double sum = 0.0;
        for (const MixResult *mix : cell)
            sum += mix->of(d).run.stat("sys.attackersPerAccess");
        return sum / n;
    }
    if (key.find('.') != std::string::npos) {
        // Dotted key: a registry leaf, averaged over the cell's
        // mixes (missing leaves read as 0 via RunResult::stat).
        double sum = 0.0;
        for (const MixResult *mix : cell)
            sum += mix->of(d).run.stat(key);
        return sum / n;
    }
    panic("unknown column key " + key);
}

void
renderHeaderRow(std::string &out, const SpecOutput &output)
{
    appendf(out, "%-*s", static_cast<int>(output.labelWidth),
            output.labelHeader.c_str());
    for (const SpecColumn &col : output.columns)
        appendf(out, " %12s", col.header.c_str());
    out += '\n';
}

void
renderRow(std::string &out, const SpecOutput &output,
          const std::string &label,
          const std::vector<const MixResult *> &cell, LlcDesign d)
{
    appendf(out, "%-*s", static_cast<int>(output.labelWidth),
            label.c_str());
    for (const SpecColumn &col : output.columns)
        appendf(out, " %12.3f", columnValue(col.key, cell, d));
    out += '\n';
}

} // namespace

std::uint64_t
seedFromEnv(std::uint64_t fallback)
{
    const char *env = std::getenv("JUMANJI_SEED");
    if (env == nullptr) return fallback;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(env, &end, 10);
    if (v != 0 && end != nullptr && *end == '\0') return v;
    // Warn once per process: a malformed seed must not silently run
    // as the fallback and pose as a baseline with that seed.
    static bool warned = false;
    if (!warned) {
        warned = true;
        warn("JUMANJI_SEED=\"" + std::string(env) +
             "\" is not a seed in [1, 2^64-1]; using fallback " +
             std::to_string(fallback));
    }
    return fallback;
}

double
kvLoadScaleFromEnv(double fallback)
{
    const char *env = std::getenv("JUMANJI_KV_LOAD_SCALE");
    if (env == nullptr) return fallback;
    char *end = nullptr;
    double v = std::strtod(env, &end);
    if (end != nullptr && *end == '\0' && end != env && v > 0.0 &&
        v <= 1e3)
        return v;
    // Same warn-once contract as seedFromEnv: a malformed scale must
    // not silently run at the fallback and pose as a scaled sweep.
    static bool warned = false;
    if (!warned) {
        warned = true;
        warn("JUMANJI_KV_LOAD_SCALE=\"" + std::string(env) +
             "\" is not a scale in (0, 1000]; using fallback " +
             std::to_string(fallback));
    }
    return fallback;
}

ExperimentSpec
ExperimentSpec::fromJson(const JsonValue &json)
{
    ExperimentSpec spec;
    ObjectReader r(json, "");

    const JsonValue *name = r.get("name");
    if (name == nullptr) fatal("name: missing required key");
    spec.name = name->asString("name");

    if (const JsonValue *v = r.get("preset")) {
        spec.preset = v->asString("preset");
        configPreset(spec.preset, "preset"); // validates the name
    }
    if (const JsonValue *v = r.get("overrides")) {
        if (!v->isObject())
            fatal("overrides: expected object, got " +
                  std::string(v->kindName()));
        spec.overrides = *v;
    }
    if (const JsonValue *v = r.get("seed"))
        spec.seed = seedPolicyFromJson(*v);
    if (const JsonValue *v = r.get("mixes"))
        spec.mixes = mixPolicyFromJson(*v);

    const JsonValue *designs = r.get("designs");
    if (designs == nullptr) fatal("designs: missing required key");
    if (!designs->isArray())
        fatal("designs: expected array, got " +
              std::string(designs->kindName()));
    for (std::size_t i = 0; i < designs->items().size(); i++) {
        std::string path = "designs[" + std::to_string(i) + "]";
        spec.designs.push_back(
            llcDesignFromName(designs->items()[i].asString(path), path));
    }

    if (const JsonValue *v = r.get("loads")) {
        if (!v->isArray())
            fatal("loads: expected array, got " +
                  std::string(v->kindName()));
        spec.loads.clear();
        for (std::size_t i = 0; i < v->items().size(); i++) {
            std::string path = "loads[" + std::to_string(i) + "]";
            spec.loads.push_back(
                loadLevelFromName(v->items()[i].asString(path), path));
        }
    } else {
        spec.loads = {LoadLevel::High};
    }

    if (const JsonValue *v = r.get("groups")) {
        if (!v->isArray())
            fatal("groups: expected array, got " +
                  std::string(v->kindName()));
        for (std::size_t i = 0; i < v->items().size(); i++) {
            std::string path = "groups[" + std::to_string(i) + "]";
            ObjectReader gr(v->items()[i], path);
            SpecGroup group;
            const JsonValue *label = gr.get("label");
            if (label == nullptr)
                fatal(path + ".label: missing required key");
            group.label = label->asString(path + ".label");
            const JsonValue *lc = gr.get("lc");
            if (lc == nullptr)
                fatal(path + ".lc: missing required key");
            group.lcNames = lcNamesFromJson(*lc, path + ".lc");
            gr.finish();
            spec.groups.push_back(std::move(group));
        }
    } else {
        spec.groups = {{"Mixed", allTailAppNames()}};
    }

    if (const JsonValue *v = r.get("variants")) {
        if (!v->isArray())
            fatal("variants: expected array, got " +
                  std::string(v->kindName()));
        spec.variants.clear();
        for (std::size_t i = 0; i < v->items().size(); i++) {
            std::string path = "variants[" + std::to_string(i) + "]";
            ObjectReader vr(v->items()[i], path);
            SpecVariant variant;
            const JsonValue *label = vr.get("label");
            if (label == nullptr)
                fatal(path + ".label: missing required key");
            variant.label = label->asString(path + ".label");
            if (const JsonValue *ov = vr.get("overrides")) {
                if (!ov->isObject())
                    fatal(path + ".overrides: expected object, got " +
                          std::string(ov->kindName()));
                variant.overrides = *ov;
            }
            if (const JsonValue *rg = vr.get("regroupVms")) {
                variant.regroupVms = rg->asU32(path + ".regroupVms");
                if (variant.regroupVms == 0)
                    fatal(path + ".regroupVms: must be >= 1 when "
                          "present");
            }
            vr.finish();
            spec.variants.push_back(std::move(variant));
        }
    } else {
        spec.variants = {SpecVariant{}};
    }

    if (const JsonValue *v = r.get("calibration")) {
        std::string mode = v->asString("calibration");
        if (mode == "shared") {
            spec.calibration = CalibrationMode::Shared;
        } else if (mode == "perJob") {
            spec.calibration = CalibrationMode::PerJob;
        } else {
            fatal("calibration: expected \"shared\" or \"perJob\", "
                  "got \"" +
                  mode + "\"");
        }
    }

    const JsonValue *output = r.get("output");
    if (output == nullptr) fatal("output: missing required key");
    spec.output = outputFromJson(*output);

    r.finish();
    validateSpec(spec);
    return spec;
}

JsonValue
ExperimentSpec::toJson() const
{
    JsonValue root = JsonValue::makeObject();
    root.set("name", JsonValue::makeString(name));
    root.set("preset", JsonValue::makeString(preset));
    root.set("overrides", overrides.isNull() ? JsonValue::makeObject()
                                             : overrides);

    JsonValue jSeed = JsonValue::makeObject();
    jSeed.set("fromEnv", JsonValue::makeBool(seed.fromEnv));
    jSeed.set("fallback", JsonValue::makeU64(seed.fallback));
    root.set("seed", std::move(jSeed));

    JsonValue jMixes = JsonValue::makeObject();
    jMixes.set("count", JsonValue::makeU64(mixes.count));
    jMixes.set("fromEnv", JsonValue::makeBool(mixes.fromEnv));
    jMixes.set("vms", JsonValue::makeU64(mixes.vms));
    jMixes.set("batchPerVm", JsonValue::makeU64(mixes.batchPerVm));
    jMixes.set("salt", JsonValue::makeBool(mixes.salt));
    root.set("mixes", std::move(jMixes));

    JsonValue jDesigns = JsonValue::makeArray();
    for (LlcDesign d : designs)
        jDesigns.push(JsonValue::makeString(llcDesignName(d)));
    root.set("designs", std::move(jDesigns));

    JsonValue jLoads = JsonValue::makeArray();
    for (LoadLevel l : loads)
        jLoads.push(JsonValue::makeString(loadName(l)));
    root.set("loads", std::move(jLoads));

    JsonValue jGroups = JsonValue::makeArray();
    for (const SpecGroup &group : groups) {
        JsonValue jGroup = JsonValue::makeObject();
        jGroup.set("label", JsonValue::makeString(group.label));
        JsonValue jLc = JsonValue::makeArray();
        for (const std::string &lc : group.lcNames)
            jLc.push(JsonValue::makeString(lc));
        jGroup.set("lc", std::move(jLc));
        jGroups.push(std::move(jGroup));
    }
    root.set("groups", std::move(jGroups));

    JsonValue jVariants = JsonValue::makeArray();
    for (const SpecVariant &variant : variants) {
        JsonValue jVariant = JsonValue::makeObject();
        jVariant.set("label", JsonValue::makeString(variant.label));
        jVariant.set("overrides", variant.overrides.isNull()
                                      ? JsonValue::makeObject()
                                      : variant.overrides);
        if (variant.regroupVms > 0)
            jVariant.set("regroupVms",
                         JsonValue::makeU64(variant.regroupVms));
        jVariants.push(std::move(jVariant));
    }
    root.set("variants", std::move(jVariants));

    root.set("calibration",
             JsonValue::makeString(calibration ==
                                           CalibrationMode::Shared
                                       ? "shared"
                                       : "perJob"));

    JsonValue jOutput = JsonValue::makeObject();
    jOutput.set("title", JsonValue::makeString(output.title));
    jOutput.set("caption", JsonValue::makeString(output.caption));
    jOutput.set("note", JsonValue::makeString(output.note));
    jOutput.set("layout", JsonValue::makeString(output.layout));
    jOutput.set("sectionLabel",
                JsonValue::makeString(output.sectionLabel));
    jOutput.set("labelHeader",
                JsonValue::makeString(output.labelHeader));
    jOutput.set("labelWidth", JsonValue::makeU64(output.labelWidth));
    jOutput.set("staticRow", JsonValue::makeBool(output.staticRow));
    JsonValue jColumns = JsonValue::makeArray();
    for (const SpecColumn &col : output.columns) {
        JsonValue jCol = JsonValue::makeObject();
        jCol.set("key", JsonValue::makeString(col.key));
        jCol.set("header", JsonValue::makeString(col.header));
        jColumns.push(std::move(jCol));
    }
    jOutput.set("columns", std::move(jColumns));
    root.set("output", std::move(jOutput));
    return root;
}

SpecPlan
expandSpec(const ExperimentSpec &spec)
{
    validateSpec(spec);

    SpecPlan plan;
    plan.base = configPreset(spec.preset, "preset");
    if (!spec.overrides.isNull())
        applyConfigJson(plan.base, spec.overrides);
    // The seed policy is applied after the overrides: a scenario's
    // "seed" override is a fixed value, the policy is the env hook.
    plan.base.seed = spec.seed.fromEnv ? seedFromEnv(spec.seed.fallback)
                                       : spec.seed.fallback;
    // The KV load-scale env hook layers on the scenario's value, so
    // a sweep can be rate-shifted without editing the file. Inert
    // (returns the fallback) when the env var is unset.
    plan.base.kv.loadScale = kvLoadScaleFromEnv(plan.base.kv.loadScale);
    validateConfig(plan.base);

    for (std::size_t v = 0; v < spec.variants.size(); v++) {
        SystemConfig cfg = plan.base;
        if (!spec.variants[v].overrides.isNull()) {
            try {
                applyConfigJson(cfg, spec.variants[v].overrides);
            } catch (const FatalError &e) {
                fatal("variants[" + std::to_string(v) +
                      "].overrides." + e.what());
            }
        }
        validateConfig(cfg);
        plan.variantConfigs.push_back(std::move(cfg));
    }

    plan.mixCount =
        spec.mixes.fromEnv
            ? ExperimentHarness::mixCountFromEnv(spec.mixes.count)
            : spec.mixes.count;

    // Expansion order contract: variants → loads → groups → mixes.
    // Per-mix seed derivation and the optional 0x5eed mix-RNG salt
    // replicate the handwritten sweeps exactly (see file comment in
    // spec.hh). Shared calibrations are planned in the same pass, in
    // lazy first-seen order per variant — each LC app paired with the
    // config of the first job whose mix contains it, which is what
    // the serial harness's lazy calibrationFor would have used.
    std::vector<std::set<std::string>> planned(spec.variants.size());
    for (std::size_t v = 0; v < spec.variants.size(); v++) {
        const SystemConfig &variantCfg = plan.variantConfigs[v];
        for (std::size_t l = 0; l < spec.loads.size(); l++) {
            for (std::size_t g = 0; g < spec.groups.size(); g++) {
                const SpecGroup &group = spec.groups[g];
                for (std::uint32_t m = 0; m < plan.mixCount; m++) {
                    SweepJob job;
                    job.label = (spec.variants[v].label.empty()
                                     ? spec.name
                                     : spec.variants[v].label) +
                                "/" + loadName(spec.loads[l]) + "/" +
                                group.label + "/mix" +
                                std::to_string(m);
                    job.config = variantCfg;
                    job.config.seed =
                        variantCfg.seed + m * 1000003ull;
                    Rng mixRng(job.config.seed ^
                               (spec.mixes.salt ? 0x5eedull : 0ull));
                    job.mix =
                        makeMix(group.lcNames, spec.mixes.vms,
                                spec.mixes.batchPerVm, mixRng);
                    if (spec.variants[v].regroupVms > 0)
                        job.mix = regroupMix(
                            job.mix, spec.variants[v].regroupVms);
                    job.designs = spec.designs;
                    job.load = spec.loads[l];
                    job.selfCalibrate =
                        spec.calibration == CalibrationMode::PerJob;
                    if (spec.calibration == CalibrationMode::Shared)
                        for (const VmSpec &vm : job.mix.vms)
                            for (const std::string &lc : vm.lcApps)
                                if (planned[v].insert(lc).second)
                                    plan.calibrationPlan.push_back(
                                        {lc, job.config});
                    plan.graph.add(std::move(job));
                }
            }
        }
    }
    return plan;
}

SpecRun
runSpec(const ExperimentSpec &spec, Orchestrator &orchestrator)
{
    SpecRun run;
    run.plan = expandSpec(spec);

    if (spec.calibration == CalibrationMode::Shared) {
        std::vector<LcCalibration> calibrations =
            orchestrator.runCalibrations(run.plan.calibrationPlan);
        // Calibrations are per (variant, name): each variant's config
        // may differ, so its apps are calibrated separately (exactly
        // as the per-variant harnesses of the handwritten benches
        // did). Walking the jobs in order and consuming plan entries
        // at each first-seen (variant, name) replays the expansion's
        // insertion order, so `next` stays in lockstep with the plan.
        std::size_t jobsPerVariant = spec.loads.size() *
                                     spec.groups.size() *
                                     run.plan.mixCount;
        std::vector<LcCalibrationMap> byVariant(spec.variants.size());
        std::size_t next = 0;
        for (JobId id = 0; id < run.plan.graph.size(); id++) {
            std::size_t v = id / jobsPerVariant;
            SweepJob &job = run.plan.graph.mutableJob(id);
            for (const VmSpec &vm : job.mix.vms) {
                for (const std::string &lc : vm.lcApps) {
                    if (byVariant[v].find(lc) == byVariant[v].end()) {
                        if (next >=
                                run.plan.calibrationPlan.size() ||
                            run.plan.calibrationPlan[next].lcName !=
                                lc)
                            panic("calibration plan out of step at " +
                                  job.label + "/" + lc);
                        byVariant[v][lc] = calibrations[next++];
                    }
                    job.calibrations[lc] = byVariant[v][lc];
                }
            }
        }
    }

    std::vector<JobOutcome> outcomes =
        orchestrator.run(run.plan.graph);
    run.results.reserve(outcomes.size());
    for (JobId id = 0; id < outcomes.size(); id++) {
        if (!outcomes[id].ok)
            fatal("job " + run.plan.graph.job(id).label +
                  " failed: " + outcomes[id].error);
        run.results.push_back(std::move(outcomes[id].result));
    }
    return run;
}

std::string
renderSpecTable(const ExperimentSpec &spec, const SpecRun &run)
{
    const SpecOutput &output = spec.output;
    std::string out;

    for (std::size_t l = 0; l < spec.loads.size(); l++) {
        for (std::size_t g = 0; g < spec.groups.size(); g++) {
            if (!output.sectionLabel.empty()) {
                out += '\n';
                out += expandTemplate(output.sectionLabel,
                                      loadName(spec.loads[l]),
                                      spec.groups[g].label,
                                      run.plan.mixCount);
                out += '\n';
            }
            renderHeaderRow(out, output);

            if (output.layout == "design-table") {
                std::vector<const MixResult *> cell =
                    cellResults(spec, run, 0, l, g);
                std::vector<LlcDesign> rows;
                if (output.staticRow)
                    rows.push_back(LlcDesign::Static);
                for (LlcDesign d : spec.designs) rows.push_back(d);
                for (LlcDesign d : rows)
                    renderRow(out, output, llcDesignName(d), cell, d);
            } else {
                for (std::size_t v = 0; v < spec.variants.size();
                     v++) {
                    std::vector<const MixResult *> cell =
                        cellResults(spec, run, v, l, g);
                    renderRow(out, output, spec.variants[v].label,
                              cell, spec.designs[0]);
                }
            }
        }
    }
    return out;
}

std::string
renderSpec(const ExperimentSpec &spec, const SpecRun &run)
{
    std::string out;
    const std::string rule(58, '=');
    out += rule + "\n";
    out += spec.output.title + " — " + spec.output.caption + "\n";
    out += rule + "\n";
    out += renderSpecTable(spec, run);
    if (!spec.output.note.empty())
        out += "note: " + spec.output.note + "\n";
    return out;
}

} // namespace driver
} // namespace jumanji
