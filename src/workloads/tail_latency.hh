/**
 * @file
 * TailBench-like latency-critical server applications.
 *
 * Each app integrates an open-loop client and a server in one model,
 * as TailBench does: the client issues requests with exponentially
 * distributed interarrival times; the server processes them FIFO,
 * one at a time. A request is a fixed budget of instructions and LLC
 * accesses drawn from the app's working sets; its end-to-end latency
 * (queueing + service) is recorded on completion and reported to a
 * registered listener (Jumanji's RequestCompleted path, Listing 1).
 *
 * The five applications (masstree, xapian, img-dnn, silo, moses)
 * differ in request size, footprint, and intensity.
 */

#ifndef JUMANJI_WORKLOADS_TAIL_LATENCY_HH
#define JUMANJI_WORKLOADS_TAIL_LATENCY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/cpu/app_model.hh"
#include "src/sim/stats.hh"
#include "src/workloads/address_stream.hh"

namespace jumanji {

/** Static description of one latency-critical application. */
struct TailAppParams
{
    std::string name;
    /** Instructions of service per request. */
    std::uint64_t instrsPerRequest = 100000;
    /** LLC accesses per 1000 instructions while serving. */
    double apki = 12.0;
    /** Fraction of requests that are "heavy" (tail-setting). */
    double heavyFrac = 0.10;
    /** Work multiplier for heavy requests. */
    double heavyScale = 2.0;
    std::vector<WorkingSet> workingSets;
    AppTraits traits;
};

/** Catalog of the paper's five TailBench applications. */
const std::vector<TailAppParams> &tailAppCatalog();

/** Looks up catalog params by name. Fatal if unknown. */
const TailAppParams &tailAppParams(const std::string &name);

/**
 * A latency-critical server + open-loop client.
 */
class TailLatencyApp : public AppModel
{
  public:
    /** Called with (completionTick, latencyCycles) per request. */
    using CompletionListener = std::function<void(Tick, double)>;

    TailLatencyApp(const TailAppParams &params, AppId app,
                   double meanInterarrivalCycles, Rng arrivalRng);

    const std::string &name() const override { return params_.name; }
    AppStep next(Tick now, Rng &rng) override;
    void onAccessComplete(Tick finish) override;
    const AppTraits &traits() const override { return params_.traits; }
    bool isLatencyCritical() const override { return true; }

    /** Registers the runtime's request-completion callback. */
    void setCompletionListener(CompletionListener cb)
    {
        listener_ = std::move(cb);
    }

    /**
     * Changes the offered load (mean interarrival, cycles). The
     * pending next arrival is resampled from @p now so the change
     * takes effect immediately.
     */
    void setMeanInterarrival(double cycles, Tick now = 0);
    double meanInterarrival() const { return meanInterarrival_; }

    /** All request latencies recorded so far (cycles). */
    const SampleStat &latencies() const { return latencies_; }
    SampleStat &mutableLatencies() { return latencies_; }

    /**
     * Discards request statistics gathered so far (called when the
     * measurement window opens). Subclasses that keep extra
     * per-request records reset them here too.
     */
    virtual void clearMeasurement() { latencies_.clear(); }

    std::uint64_t requestsCompleted() const { return completed_; }
    std::uint64_t requestsArrived() const { return arrived_; }

    /** Current queue depth (including the in-service request). */
    std::size_t queueDepth() const
    {
        return pendingArrivals_.size() + (inService_ ? 1 : 0);
    }

    const TailAppParams &params() const { return params_; }

  protected:
    /**
     * Work multiplier for the request about to start. The default
     * draws the heavy/light bernoulli; subclasses draw richer
     * per-request state (e.g. a KV op type and key). Must consume
     * only heavyRng() so the request sequence stays identical
     * across LLC designs.
     */
    virtual double drawWorkScale();

    /** Address of the next LLC access of the in-service request. */
    virtual LineAddr drawAccess(Rng &rng);

    /**
     * Called once per completed request, after the latency has been
     * recorded but before the completion listener fires.
     */
    virtual void recordCompletion(Tick finish, double latency);

    /** Per-request draw stream, decoupled from arrivals. */
    Rng &heavyRng() { return heavyRng_; }

    /** Arrival tick of the request currently in service. */
    Tick serviceArrivalTick() const { return serviceArrivalTick_; }

  private:
    void drainArrivals(Tick now);
    void startNextRequest();

    TailAppParams params_;
    AddressStream stream_;
    Rng arrivalRng_;
    /**
     * Separate stream for per-request heavy/light draws: request k
     * always gets the k-th draw regardless of how arrival draws
     * interleave with request starts, so the request-size sequence
     * is identical across LLC designs (paired comparisons).
     */
    Rng heavyRng_;
    double meanInterarrival_;

    Tick nextArrival_ = 0;
    std::deque<Tick> pendingArrivals_;

    bool inService_ = false;
    Tick serviceArrivalTick_ = 0;
    std::uint64_t accessesLeft_ = 0;
    double instrsPerAccess_ = 0.0;
    bool completionPending_ = false;

    SampleStat latencies_;
    std::uint64_t completed_ = 0;
    std::uint64_t arrived_ = 0;
    CompletionListener listener_;
};

} // namespace jumanji

#endif // JUMANJI_WORKLOADS_TAIL_LATENCY_HH
