#include "src/workloads/spec_like.hh"

#include <cmath>

#include "src/sim/logging.hh"

namespace jumanji {

namespace {

/** Lines per MB of footprint. */
constexpr std::uint64_t kMB = (1024 * 1024) / kLineBytes;

AppTraits
traitsFor(double ipc, double stall)
{
    AppTraits t;
    t.baseIpc = ipc;
    t.stallFactor = stall;
    return t;
}

std::vector<SpecAppParams>
buildCatalog()
{
    // Working sets: {lines, weight, streaming}. Weights bias accesses
    // toward the small hot set; the large sets create the capacity
    // cliffs that make an app LLC-sensitive. Values approximate the
    // published LLC behaviour of each benchmark at a coarse level.
    std::vector<SpecAppParams> apps;

    auto add = [&](std::string name, double apki,
                   std::vector<WorkingSet> ws, AppTraits traits) {
        SpecAppParams p;
        p.name = std::move(name);
        p.apki = apki;
        p.workingSets = std::move(ws);
        // Real SPEC LLC miss curves are steep near zero and flat
        // past the knee; quadratic intra-set hotness reproduces
        // that shape (see WorkingSet::skew).
        for (auto &set : p.workingSets)
            if (!set.streaming) set.skew = 1.0;
        p.traits = traits;
        apps.push_back(std::move(p));
    };

    // Compute-bound, small footprint.
    add("401.bzip2", 6.0,
        {{kMB / 2, 6.0, false}, {2 * kMB, 2.0, false}},
        traitsFor(1.6, 0.5));
    add("403.gcc", 4.0,
        {{kMB / 4, 8.0, false}, {1 * kMB, 1.5, false}},
        traitsFor(1.8, 0.5));
    add("410.bwaves", 18.0,
        {{kMB, 2.0, false}, {6 * kMB, 2.0, false}, {0, 1.5, true}},
        traitsFor(1.2, 0.7));
    add("429.mcf", 42.0,
        {{kMB / 2, 3.0, false}, {4 * kMB, 3.0, false},
         {12 * kMB, 2.0, false}},
        traitsFor(0.6, 0.8));
    add("433.milc", 26.0,
        {{2 * kMB, 2.0, false}, {8 * kMB, 2.0, false}, {0, 1.0, true}},
        traitsFor(0.9, 0.75));
    add("434.zeusmp", 12.0,
        {{kMB, 3.0, false}, {4 * kMB, 2.0, false}},
        traitsFor(1.4, 0.6));
    add("436.cactusADM", 14.0,
        {{kMB / 2, 2.0, false}, {3 * kMB, 2.5, false}},
        traitsFor(1.3, 0.65));
    add("437.leslie3d", 16.0,
        {{kMB, 2.5, false}, {5 * kMB, 2.0, false}, {0, 0.8, true}},
        traitsFor(1.2, 0.7));
    add("454.calculix", 3.0,
        {{kMB / 4, 8.0, false}, {kMB, 1.0, false}},
        traitsFor(2.2, 0.4));
    add("459.GemsFDTD", 22.0,
        {{2 * kMB, 2.0, false}, {7 * kMB, 2.0, false}, {0, 1.2, true}},
        traitsFor(1.0, 0.75));
    // Pure streaming: cache-insensitive, high intensity.
    add("462.libquantum", 28.0,
        {{0, 1.0, true}},
        traitsFor(1.1, 0.8));
    add("470.lbm", 30.0,
        {{kMB, 1.0, false}, {0, 3.0, true}},
        traitsFor(0.9, 0.8));
    // Strongly capacity-sensitive pointer chasers.
    add("471.omnetpp", 20.0,
        {{kMB / 2, 3.0, false}, {2 * kMB, 3.0, false},
         {8 * kMB, 2.0, false}},
        traitsFor(0.9, 0.75));
    add("473.astar", 12.0,
        {{kMB / 2, 4.0, false}, {3 * kMB, 2.5, false}},
        traitsFor(1.2, 0.6));
    add("482.sphinx3", 15.0,
        {{kMB, 3.0, false}, {4 * kMB, 2.0, false}},
        traitsFor(1.3, 0.65));
    add("483.xalancbmk", 18.0,
        {{kMB / 2, 3.0, false}, {2 * kMB, 2.5, false},
         {6 * kMB, 2.0, false}},
        traitsFor(1.0, 0.7));

    return apps;
}

} // namespace

const std::vector<SpecAppParams> &
specAppCatalog()
{
    static const std::vector<SpecAppParams> catalog = buildCatalog();
    return catalog;
}

const SpecAppParams &
specAppParams(const std::string &name)
{
    for (const auto &p : specAppCatalog())
        if (p.name == name) return p;
    fatal("unknown SPEC-like app: " + name);
}

SpecLikeApp::SpecLikeApp(const SpecAppParams &params, AppId app)
    : params_(params),
      stream_(appAddressBase(app), params.workingSets)
{
    if (params_.apki <= 0.0)
        fatal("SpecLikeApp: apki must be positive");
}

double
SpecLikeApp::instrsPerAccess() const
{
    return 1000.0 / params_.apki;
}

AppStep
SpecLikeApp::next(Tick, Rng &rng)
{
    // Geometric jitter around the mean gap keeps bank-port arrivals
    // from synchronising artificially across cores.
    double mean = instrsPerAccess();
    auto gap = static_cast<std::uint64_t>(rng.exponential(mean)) + 1;
    return AppStep::execute(gap, stream_.draw(rng));
}

} // namespace jumanji
