#include "src/workloads/mixes.hh"

#include "src/sim/fingerprint.hh"
#include "src/sim/logging.hh"
#include "src/workloads/spec_like.hh"
#include "src/workloads/tail_latency.hh"

namespace jumanji {

std::string
randomBatchApp(Rng &rng)
{
    const auto &catalog = specAppCatalog();
    return catalog[rng.below(catalog.size())].name;
}

std::vector<std::string>
allTailAppNames()
{
    std::vector<std::string> names;
    for (const auto &p : tailAppCatalog()) names.push_back(p.name);
    return names;
}

WorkloadMix
makeMix(const std::vector<std::string> &lcNames, std::uint32_t vms,
        std::uint32_t batchPerVm, Rng &rng)
{
    if (lcNames.empty()) fatal("makeMix: need at least one LC app name");

    WorkloadMix mix;
    for (std::uint32_t v = 0; v < vms; v++) {
        VmSpec vm;
        vm.lcApps.push_back(lcNames[v % lcNames.size()]);
        for (std::uint32_t b = 0; b < batchPerVm; b++)
            vm.batchApps.push_back(randomBatchApp(rng));
        mix.vms.push_back(std::move(vm));
    }
    return mix;
}

WorkloadMix
regroupMix(const WorkloadMix &base, std::uint32_t vmCount)
{
    if (vmCount == 0) fatal("regroupMix: need at least one VM");

    std::vector<std::string> lc;
    std::vector<std::string> batch;
    for (const auto &vm : base.vms) {
        lc.insert(lc.end(), vm.lcApps.begin(), vm.lcApps.end());
        batch.insert(batch.end(), vm.batchApps.begin(),
                     vm.batchApps.end());
    }

    WorkloadMix mix;
    mix.vms.resize(vmCount);
    for (std::size_t i = 0; i < lc.size(); i++)
        mix.vms[i % vmCount].lcApps.push_back(lc[i]);
    for (std::size_t i = 0; i < batch.size(); i++)
        mix.vms[i % vmCount].batchApps.push_back(batch[i]);
    return mix;
}

void
foldMix(Fingerprint &fp, const WorkloadMix &mix)
{
    fp.addU64(mix.vms.size());
    for (const VmSpec &vm : mix.vms) {
        fp.addU64(vm.lcApps.size());
        for (const std::string &name : vm.lcApps) fp.addString(name);
        fp.addU64(vm.batchApps.size());
        for (const std::string &name : vm.batchApps) fp.addString(name);
    }
}

} // namespace jumanji
