#include "src/workloads/tail_latency.hh"

#include <cmath>

#include "src/sim/logging.hh"

namespace jumanji {

namespace {

constexpr std::uint64_t kMB = (1024 * 1024) / kLineBytes;

AppTraits
tailTraits(double ipc, double stall)
{
    AppTraits t;
    t.baseIpc = ipc;
    t.stallFactor = stall;
    return t;
}

std::vector<TailAppParams>
buildCatalog()
{
    std::vector<TailAppParams> apps;
    auto add = [&](std::string name, std::uint64_t instrs, double apki,
                   std::vector<WorkingSet> ws, AppTraits traits) {
        TailAppParams p;
        p.name = std::move(name);
        p.instrsPerRequest = instrs;
        p.apki = apki;
        p.workingSets = std::move(ws);
        p.traits = traits;
        apps.push_back(std::move(p));
    };

    // Request sizes are inversely ordered like Table III QPS ranges
    // (silo/masstree serve short requests, moses/img-dnn long ones);
    // instruction budgets are time-scaled with the rest of the
    // system (DESIGN.md). Footprints make service time strongly
    // cache-sensitive: a hot index or model that fits with a healthy
    // allocation and thrashes without — the Fig. 8 cliff.
    add("masstree", 1500, 38.0,
        {{kMB / 4, 3.0, false}, {7 * kMB / 4, 5.0, false}},
        tailTraits(1.1, 0.85));
    add("xapian", 3500, 40.0,
        {{kMB / 4, 3.0, false}, {2 * kMB, 5.0, false},
         {5 * kMB, 1.0, false}},
        tailTraits(1.2, 0.85));
    add("img-dnn", 15000, 28.0,
        {{kMB / 2, 3.0, false}, {3 * kMB / 2, 4.0, false}},
        tailTraits(1.4, 0.8));
    add("silo", 1200, 34.0,
        {{kMB / 4, 4.0, false}, {kMB, 4.0, false}},
        tailTraits(1.3, 0.8));
    add("moses", 13000, 32.0,
        {{kMB / 2, 3.0, false}, {2 * kMB, 4.0, false},
         {6 * kMB, 1.0, false}},
        tailTraits(1.1, 0.85));
    return apps;
}

} // namespace

const std::vector<TailAppParams> &
tailAppCatalog()
{
    static const std::vector<TailAppParams> catalog = buildCatalog();
    return catalog;
}

const TailAppParams &
tailAppParams(const std::string &name)
{
    for (const auto &p : tailAppCatalog())
        if (p.name == name) return p;
    fatal("unknown latency-critical app: " + name);
}

TailLatencyApp::TailLatencyApp(const TailAppParams &params, AppId app,
                               double meanInterarrivalCycles,
                               Rng arrivalRng)
    : params_(params),
      stream_(appAddressBase(app), params.workingSets),
      arrivalRng_(arrivalRng),
      heavyRng_(arrivalRng.fork()),
      meanInterarrival_(meanInterarrivalCycles)
{
    if (params_.apki <= 0.0)
        fatal("TailLatencyApp: apki must be positive");
    if (meanInterarrival_ <= 0.0)
        fatal("TailLatencyApp: interarrival must be positive");
    instrsPerAccess_ = 1000.0 / params_.apki;
    nextArrival_ = static_cast<Tick>(
        arrivalRng_.exponential(meanInterarrival_));
}

void
TailLatencyApp::setMeanInterarrival(double cycles, Tick now)
{
    if (cycles <= 0.0)
        fatal("TailLatencyApp: interarrival must be positive");
    meanInterarrival_ = cycles;
    // Resample the pending arrival under the new rate.
    nextArrival_ = now + static_cast<Tick>(
        arrivalRng_.exponential(meanInterarrival_)) + 1;
}

void
TailLatencyApp::drainArrivals(Tick now)
{
    while (nextArrival_ <= now) {
        pendingArrivals_.push_back(nextArrival_);
        arrived_++;
        nextArrival_ += static_cast<Tick>(
            arrivalRng_.exponential(meanInterarrival_)) + 1;
    }
}

double
TailLatencyApp::drawWorkScale()
{
    // Heavy requests (drawn from the arrival stream so the request
    // sequence is identical across LLC designs) set the tail, as in
    // real interactive services with skewed request costs.
    return heavyRng_.bernoulli(params_.heavyFrac)
               ? params_.heavyScale
               : 1.0;
}

LineAddr
TailLatencyApp::drawAccess(Rng &rng)
{
    return stream_.draw(rng);
}

void
TailLatencyApp::recordCompletion(Tick finish, double latency)
{
    (void)finish;
    (void)latency;
}

void
TailLatencyApp::startNextRequest()
{
    serviceArrivalTick_ = pendingArrivals_.front();
    pendingArrivals_.pop_front();
    inService_ = true;
    double scale = drawWorkScale();
    // Every request issues its accesses evenly through its
    // instruction budget and *ends* on an access, so completion time
    // is observed precisely via onAccessComplete.
    accessesLeft_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(params_.instrsPerRequest) *
               params_.apki / 1000.0 * scale));
}

AppStep
TailLatencyApp::next(Tick now, Rng &rng)
{
    drainArrivals(now);

    if (!inService_) {
        if (pendingArrivals_.empty())
            return AppStep::idleUntil(nextArrival_);
        startNextRequest();
    }

    double mean = instrsPerAccess_;
    auto gap = static_cast<std::uint64_t>(rng.exponential(mean)) + 1;
    accessesLeft_--;
    if (accessesLeft_ == 0) {
        // Final access of this request: completion recorded when the
        // access's data returns.
        completionPending_ = true;
        inService_ = false;
    }
    return AppStep::execute(gap, drawAccess(rng));
}

void
TailLatencyApp::onAccessComplete(Tick finish)
{
    if (!completionPending_) return;
    completionPending_ = false;

    double latency = static_cast<double>(finish - serviceArrivalTick_);
    latencies_.add(latency);
    completed_++;
    recordCompletion(finish, latency);
    if (listener_) listener_(finish, latency);
}

} // namespace jumanji
