#include "src/workloads/address_stream.hh"

#include <cmath>

#include "src/sim/logging.hh"

namespace jumanji {

AddressStream::AddressStream(LineAddr base, std::vector<WorkingSet> sets)
    : base_(base),
      sets_(std::move(sets))
{
    if (sets_.empty()) fatal("AddressStream: need at least one working set");

    LineAddr offset = 0;
    for (const auto &ws : sets_) {
        offsets_.push_back(offset);
        if (!ws.streaming) {
            offset += ws.lines;
            footprint_ += ws.lines;
        }
        totalWeight_ += ws.weight;
        cumWeight_.push_back(totalWeight_);
    }
    if (totalWeight_ <= 0.0)
        fatal("AddressStream: total working-set weight must be positive");
    // Streaming region lives above all reusable sets.
    streamCursor_ = offset;
}

LineAddr
AddressStream::draw(Rng &rng)
{
    double pick = rng.uniform() * totalWeight_;
    std::size_t idx = 0;
    while (idx + 1 < cumWeight_.size() && pick >= cumWeight_[idx]) idx++;

    const WorkingSet &ws = sets_[idx];
    if (ws.streaming) {
        // Monotonically advancing, never-reused addresses.
        return base_ + streamCursor_++;
    }
    if (ws.lines == 0)
        return base_ + offsets_[idx];
    if (ws.skew <= 0.0)
        return base_ + offsets_[idx] + rng.below(ws.lines);
    // Hot-front draw: position = N * u^(1+skew).
    double u = rng.uniform();
    auto pos = static_cast<std::uint64_t>(
        static_cast<double>(ws.lines) * std::pow(u, 1.0 + ws.skew));
    if (pos >= ws.lines) pos = ws.lines - 1;
    return base_ + offsets_[idx] + pos;
}

} // namespace jumanji
