/**
 * @file
 * Piecewise-linear offered-load traces for the KV-serving workloads.
 *
 * A LoadTrace is an ordered list of labelled phases. Each phase
 * spans a half-open tick interval [start, start+duration) and
 * carries a load multiplier that is linearly interpolated from its
 * begin value to its end value across the phase; a boundary tick
 * belongs to the phase that *starts* there. Phases can additionally
 * shift the Zipfian skew (a theta delta) or rotate the key-hash
 * (hot-key migration) — those are phase-level steps, not
 * interpolated.
 *
 * Named presets (flat, diurnal, flashcrowd, skewshift, hotkeys) are
 * built from the run's warmup/measure windows so the interesting
 * transitions land inside the measurement window. Phase labels are
 * part of the observable surface: per-phase tail-latency stats are
 * registered as apps.kv.<label>.{p95,p99,count}, and the lint
 * stat-xref pass extracts the addPhase() label literals from
 * load_trace.cc to validate scenario columns against them.
 */

#ifndef JUMANJI_WORKLOADS_KV_LOAD_TRACE_HH
#define JUMANJI_WORKLOADS_KV_LOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace jumanji {

/** One labelled segment of a load trace. */
struct TracePhase
{
    std::string label;
    Tick start = 0;
    Tick duration = 0;
    /** Load multiplier at the first tick of the phase. */
    double beginMultiplier = 1.0;
    /** Load multiplier approached at the end of the phase. */
    double endMultiplier = 1.0;
    /** Added to the app's base Zipfian theta for this phase. */
    double thetaDelta = 0.0;
    /** Key-hash rotation active during this phase (0 = none). */
    std::uint64_t keyRotation = 0;
};

class LoadTrace
{
  public:
    /** Appends a phase after the current last one. */
    void addPhase(const std::string &label, Tick duration,
                  double beginMultiplier, double endMultiplier,
                  double thetaDelta = 0.0,
                  std::uint64_t keyRotation = 0);

    /**
     * Linearly interpolated load multiplier at @p now. Before the
     * first phase this is the first begin value; at or past the
     * horizon it is the last end value.
     */
    double multiplierAt(Tick now) const;

    /** Label of the phase containing @p now (clamped at the ends). */
    const std::string &phaseLabelAt(Tick now) const;

    double thetaDeltaAt(Tick now) const;
    std::uint64_t keyRotationAt(Tick now) const;

    /** Distinct phase labels, in first-appearance order. */
    std::vector<std::string> phaseLabels() const;

    const std::vector<TracePhase> &phases() const { return phases_; }
    bool empty() const { return phases_.empty(); }

    /** One past the last tick covered by any phase. */
    Tick horizon() const;

  private:
    const TracePhase &phaseAt(Tick now) const;

    std::vector<TracePhase> phases_;
};

/**
 * Builds a named preset trace spanning @p warmupTicks +
 * @p measureTicks. @p peakMultiplier scales the peak/spike load
 * relative to the base rate. Fatal on an unknown name.
 */
LoadTrace loadTraceFromName(const std::string &name, Tick warmupTicks,
                            Tick measureTicks, double peakMultiplier);

/** The preset names accepted by loadTraceFromName(). */
const std::vector<std::string> &allLoadTraceNames();

} // namespace jumanji

#endif // JUMANJI_WORKLOADS_KV_LOAD_TRACE_HH
