/**
 * @file
 * Seeded key-popularity samplers for the KV-serving workloads.
 *
 * The Zipfian sampler follows the standard YCSB construction
 * (Gray et al., "Quickly Generating Billion-Record Synthetic
 * Databases"): draw a uniform u and map it through the precomputed
 * zeta(n, theta) normalizer,
 *
 *   alpha = 1 / (1 - theta)
 *   eta   = (1 - (2/n)^(1-theta)) / (1 - zeta(2)/zeta(n))
 *   rank  = n * (eta*u - eta + 1)^alpha        (general case)
 *
 * with the two most popular ranks special-cased so the head of the
 * distribution is exact. zeta(n, theta) is an O(n) sum, so it is
 * memoized process-wide: every app instance with the same (n, theta)
 * shares one computation.
 *
 * ScrambledZipfian decorrelates rank from key id with an FNV-1a hash
 * so the popular keys are spread across the keyspace instead of
 * clustered at the low ids; its rotation knob re-hashes under a
 * different offset, which is how a hot-key migration is modelled
 * (same popularity *shape*, different popular *keys*).
 *
 * All draws consume exactly one or two values from the caller's Rng,
 * deterministically — samplers hold no hidden random state.
 */

#ifndef JUMANJI_WORKLOADS_KV_ZIPFIAN_HH
#define JUMANJI_WORKLOADS_KV_ZIPFIAN_HH

#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <utility>

#include "src/sim/rng.hh"

namespace jumanji {

namespace detail {

struct ZetaCache
{
    std::map<std::pair<std::uint64_t, std::uint64_t>, double> values;
    std::uint64_t computations = 0;
};

inline ZetaCache &
zetaCache()
{
    // Per-thread, not process-wide with a lock: simulation code is
    // single-threaded by design (see the concurrency-routing lint
    // rule), and under a parallel driver each worker recomputing a
    // handful of zeta sums is cheaper than a contended mutex. The
    // values are pure functions of (n, theta), so per-thread caches
    // cannot diverge.
    thread_local ZetaCache cache;
    return cache;
}

} // namespace detail

/**
 * zeta(n, theta) = sum_{k=1..n} 1/k^theta, memoized per thread.
 * theta is keyed by its bit pattern, so only exact repeats share an
 * entry — which is the common case (every instance of one catalog
 * app uses the same theta).
 */
inline double
zetaCached(std::uint64_t n, double theta)
{
    std::uint64_t thetaBits = 0;
    static_assert(sizeof(thetaBits) == sizeof(theta), "bit punning");
    std::memcpy(&thetaBits, &theta, sizeof(theta));

    detail::ZetaCache &cache = detail::zetaCache();
    auto key = std::make_pair(n, thetaBits);
    auto it = cache.values.find(key);
    if (it != cache.values.end()) return it->second;

    double sum = 0.0;
    for (std::uint64_t k = 1; k <= n; k++)
        sum += 1.0 / std::pow(static_cast<double>(k), theta);
    cache.computations++;
    cache.values.emplace(key, sum);
    return sum;
}

/**
 * Cold zeta computations by this thread so far (tests pin cache
 * reuse with this).
 */
inline std::uint64_t
zetaComputations()
{
    return detail::zetaCache().computations;
}

/** FNV-1a over the 8 bytes of @p value. */
inline std::uint64_t
fnv1a64(std::uint64_t value)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (int i = 0; i < 8; i++) {
        hash ^= (value >> (i * 8)) & 0xffull;
        hash *= 1099511628211ull;
    }
    return hash;
}

/** Draws ranks in [0, items): rank 0 is the most popular. */
class ZipfianSampler
{
  public:
    explicit ZipfianSampler(std::uint64_t items, double theta = 0.99)
        : items_(items < 2 ? 2 : items),
          theta_(theta),
          zetan_(zetaCached(items_, theta)),
          zeta2_(zetaCached(2, theta)),
          alpha_(1.0 / (1.0 - theta)),
          eta_((1.0 -
                std::pow(2.0 / static_cast<double>(items_),
                         1.0 - theta)) /
               (1.0 - zeta2_ / zetan_)),
          halfPowTheta_(std::pow(0.5, theta))
    {
    }

    std::uint64_t
    draw(Rng &rng) const
    {
        double u = rng.uniform();
        double uz = u * zetan_;
        if (uz < 1.0) return 0;
        if (uz < 1.0 + halfPowTheta_) return 1;
        auto rank = static_cast<std::uint64_t>(
            static_cast<double>(items_) *
            std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return rank >= items_ ? items_ - 1 : rank;
    }

    std::uint64_t items() const { return items_; }
    double theta() const { return theta_; }
    double zetan() const { return zetan_; }

  private:
    std::uint64_t items_;
    double theta_;
    double zetan_;
    double zeta2_;
    double alpha_;
    double eta_;
    double halfPowTheta_;
};

/**
 * Zipfian popularity spread over the keyspace by hashing the rank.
 * setRotation() changes *which* keys are popular without changing
 * the popularity shape (hot-key migration).
 */
class ScrambledZipfianSampler
{
  public:
    explicit ScrambledZipfianSampler(std::uint64_t items,
                                     double theta = 0.99)
        : zipf_(items, theta)
    {
    }

    std::uint64_t
    draw(Rng &rng) const
    {
        return fnv1a64(zipf_.draw(rng) + rotation_) % zipf_.items();
    }

    void setRotation(std::uint64_t rotation) { rotation_ = rotation; }
    std::uint64_t rotation() const { return rotation_; }
    std::uint64_t items() const { return zipf_.items(); }
    double theta() const { return zipf_.theta(); }

    /** Rebuilds the underlying Zipfian with a new skew (same keys). */
    void
    setTheta(double theta)
    {
        if (theta != zipf_.theta())
            zipf_ = ZipfianSampler(zipf_.items(), theta);
    }

  private:
    ZipfianSampler zipf_;
    std::uint64_t rotation_ = 0;
};

/** Uniform key popularity (YCSB "uniform"). */
class UniformSampler
{
  public:
    explicit UniformSampler(std::uint64_t items)
        : items_(items < 1 ? 1 : items)
    {
    }

    std::uint64_t draw(Rng &rng) const { return rng.below(items_); }
    std::uint64_t items() const { return items_; }

  private:
    std::uint64_t items_;
};

/**
 * Latest-biased popularity (YCSB "latest", workload D): recently
 * inserted keys are the most popular. The caller advances the
 * insertion cursor on every insert.
 */
class LatestSampler
{
  public:
    explicit LatestSampler(std::uint64_t items, double theta = 0.99)
        : zipf_(items, theta),
          items_(items < 2 ? 2 : items),
          cursor_(items_ - 1)
    {
    }

    std::uint64_t
    draw(Rng &rng) const
    {
        std::uint64_t back = zipf_.draw(rng);
        return (cursor_ + items_ - (back % items_)) % items_;
    }

    void advance() { cursor_ = (cursor_ + 1) % items_; }
    std::uint64_t cursor() const { return cursor_; }

  private:
    ZipfianSampler zipf_;
    std::uint64_t items_;
    std::uint64_t cursor_;
};

} // namespace jumanji

#endif // JUMANJI_WORKLOADS_KV_ZIPFIAN_HH
