#include "src/workloads/kv/load_trace.hh"

#include "src/sim/logging.hh"

namespace jumanji {

void
LoadTrace::addPhase(const std::string &label, Tick duration,
                    double beginMultiplier, double endMultiplier,
                    double thetaDelta, std::uint64_t keyRotation)
{
    if (duration == 0) fatal("LoadTrace: phase duration must be > 0");
    if (beginMultiplier <= 0.0 || endMultiplier <= 0.0)
        fatal("LoadTrace: load multipliers must be positive");
    TracePhase phase;
    phase.label = label;
    phase.start = phases_.empty()
                      ? 0
                      : phases_.back().start + phases_.back().duration;
    phase.duration = duration;
    phase.beginMultiplier = beginMultiplier;
    phase.endMultiplier = endMultiplier;
    phase.thetaDelta = thetaDelta;
    phase.keyRotation = keyRotation;
    phases_.push_back(std::move(phase));
}

const TracePhase &
LoadTrace::phaseAt(Tick now) const
{
    if (phases_.empty()) fatal("LoadTrace: no phases defined");
    for (const TracePhase &phase : phases_)
        if (now < phase.start + phase.duration) return phase;
    return phases_.back();
}

double
LoadTrace::multiplierAt(Tick now) const
{
    const TracePhase &phase = phaseAt(now);
    if (now <= phase.start) return phase.beginMultiplier;
    if (now >= phase.start + phase.duration)
        return phase.endMultiplier;
    double frac = static_cast<double>(now - phase.start) /
                  static_cast<double>(phase.duration);
    return phase.beginMultiplier +
           (phase.endMultiplier - phase.beginMultiplier) * frac;
}

const std::string &
LoadTrace::phaseLabelAt(Tick now) const
{
    return phaseAt(now).label;
}

double
LoadTrace::thetaDeltaAt(Tick now) const
{
    return phaseAt(now).thetaDelta;
}

std::uint64_t
LoadTrace::keyRotationAt(Tick now) const
{
    return phaseAt(now).keyRotation;
}

std::vector<std::string>
LoadTrace::phaseLabels() const
{
    std::vector<std::string> labels;
    for (const TracePhase &phase : phases_) {
        bool seen = false;
        for (const std::string &label : labels)
            if (label == phase.label) seen = true;
        if (!seen) labels.push_back(phase.label);
    }
    return labels;
}

Tick
LoadTrace::horizon() const
{
    if (phases_.empty()) return 0;
    return phases_.back().start + phases_.back().duration;
}

const std::vector<std::string> &
allLoadTraceNames()
{
    static const std::vector<std::string> kNames = {
        "flat", "diurnal", "flashcrowd", "skewshift", "hotkeys"};
    return kNames;
}

LoadTrace
loadTraceFromName(const std::string &name, Tick warmupTicks,
                  Tick measureTicks, double peakMultiplier)
{
    Tick horizon = warmupTicks + measureTicks;
    if (horizon < 10) fatal("loadTraceFromName: run too short");
    double peak = peakMultiplier < 1.0 ? 1.0 : peakMultiplier;

    LoadTrace trace;
    if (name == "flat") {
        trace.addPhase("steady", horizon, 1.0, 1.0);
        return trace;
    }
    if (name == "diurnal") {
        // One synthetic day: ramp out of the trough to the peak,
        // hold, ramp back down, and idle at the trough. The ramps
        // exercise the interpolation path; the holds give each
        // phase a stable rate for its tail percentile.
        Tick quarter = horizon / 4;
        Tick rest = horizon - 3 * quarter;
        trace.addPhase("morning", quarter, 0.4, peak);
        trace.addPhase("midday", quarter, peak, peak);
        trace.addPhase("evening", quarter, peak, 0.4);
        trace.addPhase("night", rest, 0.4, 0.4);
        return trace;
    }
    if (name == "flashcrowd") {
        // The spike occupies the middle ~30% of the *measurement*
        // window, so before/spike/after all collect enough samples
        // for a p95/p99 (warmup counts toward "before").
        Tick before = warmupTicks + (measureTicks * 3) / 10;
        Tick spike = (measureTicks * 3) / 10;
        Tick after = horizon - before - spike;
        trace.addPhase("before", before, 1.0, 1.0);
        trace.addPhase("spike", spike, peak, peak);
        trace.addPhase("after", after, 1.0, 1.0);
        return trace;
    }
    if (name == "skewshift") {
        // Constant rate; halfway through the measurement window the
        // key popularity sharpens (theta += 0.10) — the hot set
        // shrinks but gets hotter.
        Tick first = warmupTicks + measureTicks / 2;
        trace.addPhase("drift_lo", first, 1.0, 1.0, 0.0);
        trace.addPhase("drift_hi", horizon - first, 1.0, 1.0, 0.10);
        return trace;
    }
    if (name == "hotkeys") {
        // Constant rate and skew; halfway through, the popular keys
        // migrate to a disjoint set (hash rotation), forcing the
        // cached hot set to be rebuilt.
        Tick first = warmupTicks + measureTicks / 2;
        trace.addPhase("resident", first, 1.0, 1.0);
        trace.addPhase("migrated", horizon - first, 1.0, 1.0, 0.0,
                       0x9e3779b97f4a7c15ull);
        return trace;
    }
    std::string known;
    for (const std::string &n : allLoadTraceNames())
        known += (known.empty() ? "" : "|") + n;
    fatal("unknown load trace \"" + name + "\" (" + known + ")");
}

} // namespace jumanji
