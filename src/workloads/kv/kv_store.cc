#include "src/workloads/kv/kv_store.hh"

#include <algorithm>
#include <cmath>

#include "src/sim/logging.hh"

namespace jumanji {

namespace {

/** Index nodes touched per key lookup (root is L1-resident). */
constexpr double kIndexDepth = 3.0;
/** Target LLC accesses per kilo-instruction while serving. */
constexpr double kTargetApki = 32.0;

std::vector<KvAppParams>
buildKvCatalog()
{
    std::vector<KvAppParams> apps;
    auto add = [&](std::string name, std::uint64_t keys,
                   std::uint32_t valueLines, KvOpMix mix,
                   std::uint32_t scanLength, KvKeyDist dist) {
        KvAppParams p;
        p.name = std::move(name);
        p.keys = keys;
        p.valueLines = valueLines;
        p.mix = mix;
        p.scanLength = scanLength;
        p.dist = dist;
        apps.push_back(std::move(p));
    };

    // kv_small is the CI smoke app: a ~1.6 MB store (modest next to
    // masstree's 2 MB) with the read-mostly YCSB-B mix, cheap enough
    // for the testTiny preset.
    add("kv_small", 8192, 3, {0.95, 0.05, 0.0, 0.0}, 8,
        KvKeyDist::Zipfian);
    // The six YCSB core workloads over a ~8.5 MB store. F's
    // read-modify-writes are modelled as updates (the read half is
    // the same index+value walk).
    add("kv_ycsb_a", 32768, 4, {0.50, 0.50, 0.0, 0.0}, 8,
        KvKeyDist::Zipfian);
    add("kv_ycsb_b", 32768, 4, {0.95, 0.05, 0.0, 0.0}, 8,
        KvKeyDist::Zipfian);
    add("kv_ycsb_c", 32768, 4, {1.00, 0.00, 0.0, 0.0}, 8,
        KvKeyDist::Zipfian);
    add("kv_ycsb_d", 32768, 4, {0.95, 0.00, 0.0, 0.05}, 8,
        KvKeyDist::Latest);
    add("kv_ycsb_e", 32768, 4, {0.00, 0.00, 0.95, 0.05}, 16,
        KvKeyDist::Zipfian);
    add("kv_ycsb_f", 32768, 4, {0.50, 0.50, 0.0, 0.0}, 8,
        KvKeyDist::Zipfian);
    return apps;
}

} // namespace

const std::vector<KvAppParams> &
kvAppCatalog()
{
    static const std::vector<KvAppParams> catalog = buildKvCatalog();
    return catalog;
}

const KvAppParams *
findKvApp(const std::string &name)
{
    for (const auto &p : kvAppCatalog())
        if (p.name == name) return &p;
    return nullptr;
}

bool
isKvAppName(const std::string &name)
{
    return findKvApp(name) != nullptr;
}

std::vector<std::string>
allKvAppNames()
{
    std::vector<std::string> names;
    for (const auto &p : kvAppCatalog()) names.push_back(p.name);
    return names;
}

double
kvOpAccesses(const KvAppParams &params, KvOp op)
{
    double value = params.valueLines;
    switch (op) {
    case KvOp::Read: return kIndexDepth + value;
    case KvOp::Update: return kIndexDepth + value + 1.0; // + log
    case KvOp::Scan:
        // One descent, then half the value lines of scanLength
        // consecutive keys (short rows dominate).
        return kIndexDepth +
               std::max(1.0, params.scanLength * value / 2.0);
    case KvOp::Insert:
        return kIndexDepth + value + 2.0; // + log + index update
    }
    return kIndexDepth + value;
}

double
kvMixAccesses(const KvAppParams &params)
{
    const KvOpMix &m = params.mix;
    double total = m.read + m.update + m.scan + m.insert;
    if (total <= 0.0)
        fatal("KvAppParams " + params.name + ": empty op mix");
    return (m.read * kvOpAccesses(params, KvOp::Read) +
            m.update * kvOpAccesses(params, KvOp::Update) +
            m.scan * kvOpAccesses(params, KvOp::Scan) +
            m.insert * kvOpAccesses(params, KvOp::Insert)) /
           total;
}

TailAppParams
deriveKvTailParams(const KvAppParams &params)
{
    std::uint64_t indexLines =
        std::max<std::uint64_t>(16, params.keys / 4);
    std::uint64_t heapLines = params.keys * params.valueLines;
    std::uint64_t logLines =
        std::max<std::uint64_t>(64, params.keys / 8);

    double accesses = kvMixAccesses(params);
    auto instrs = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(
                std::llround(accesses * 1000.0 / kTargetApki)));

    TailAppParams tail;
    tail.name = params.name;
    tail.instrsPerRequest = instrs;
    tail.apki =
        accesses * 1000.0 / static_cast<double>(instrs);
    // heavyFrac/heavyScale are unused (KvServerApp draws op types
    // instead) but keep the defaults so nominal math stays sane.
    // Working sets in AddressStream order: index, value heap, log.
    // The index is hot (every op descends it); the heap's hot front
    // mirrors the Zipfian key popularity.
    tail.workingSets = {{indexLines, 3.0, false, 0.5},
                        {heapLines, 6.0, false, 0.35},
                        {logLines, 1.0, true, 0.0}};
    tail.traits.baseIpc = 1.2;
    tail.traits.stallFactor = 0.85;
    return tail;
}

const TailAppParams &
kvTailAppParams(const std::string &name)
{
    static const std::vector<TailAppParams> derived = [] {
        std::vector<TailAppParams> all;
        for (const auto &p : kvAppCatalog())
            all.push_back(deriveKvTailParams(p));
        return all;
    }();
    for (const auto &p : derived)
        if (p.name == name) return p;
    fatal("unknown KV app: " + name);
}

const TailAppParams &
lcAppParams(const std::string &name)
{
    for (const auto &p : tailAppCatalog())
        if (p.name == name) return p;
    if (isKvAppName(name)) return kvTailAppParams(name);
    fatal("unknown latency-critical app: " + name);
}

std::vector<std::string>
allLcAppNames()
{
    std::vector<std::string> names;
    for (const auto &p : tailAppCatalog()) names.push_back(p.name);
    for (const auto &name : allKvAppNames()) names.push_back(name);
    return names;
}

KvServerApp::KvServerApp(const KvAppParams &kvParams,
                         const TailAppParams &params, AppId app,
                         double meanInterarrivalCycles,
                         Rng arrivalRng)
    : TailLatencyApp(params, app, meanInterarrivalCycles,
                     arrivalRng),
      kv_(kvParams),
      base_(appAddressBase(app)),
      // Region sizes come from the (possibly capacity-scaled)
      // working sets, not the raw catalog numbers, so the store the
      // requests walk is exactly the footprint the runtime sees.
      indexLines_(params.workingSets.at(0).lines),
      heapLines_(params.workingSets.at(1).lines),
      effectiveKeys_(std::max<std::uint64_t>(
          64, params.workingSets.at(1).lines / kvParams.valueLines)),
      mixAccesses_(kvMixAccesses(kvParams)),
      zipf_(effectiveKeys_, kvParams.theta),
      latest_(effectiveKeys_, kvParams.theta),
      uniform_(effectiveKeys_)
{
    if (params.workingSets.size() != 3 ||
        !params.workingSets.at(2).streaming)
        fatal("KvServerApp " + kv_.name +
              ": params must come from deriveKvTailParams");
}

void
KvServerApp::bindTrace(const LoadTrace *trace,
                       double baseInterarrivalCycles,
                       double loadScale)
{
    trace_ = trace;
    baseInterarrival_ = baseInterarrivalCycles;
    loadScale_ = loadScale;
    lastMultiplier_ = 1.0;
}

void
KvServerApp::onTraceTick(Tick now)
{
    if (trace_ == nullptr || trace_->empty()) return;
    double mult = trace_->multiplierAt(now) * loadScale_;
    if (mult != lastMultiplier_) {
        setMeanInterarrival(baseInterarrival_ / mult, now);
        lastMultiplier_ = mult;
    }
    double delta = trace_->thetaDeltaAt(now);
    if (delta != activeThetaDelta_) {
        zipf_.setTheta(kv_.theta + delta);
        activeThetaDelta_ = delta;
    }
    std::uint64_t rotation = trace_->keyRotationAt(now);
    if (rotation != activeRotation_) {
        zipf_.setRotation(rotation);
        activeRotation_ = rotation;
    }
}

void
KvServerApp::clearMeasurement()
{
    TailLatencyApp::clearMeasurement();
    byPhase_.clear();
}

double
KvServerApp::phasePercentile(const std::string &phase,
                             double p) const
{
    auto it = byPhase_.find(phase);
    if (it == byPhase_.end()) return 0.0;
    return it->second.percentile(p);
}

std::uint64_t
KvServerApp::phaseCount(const std::string &phase) const
{
    auto it = byPhase_.find(phase);
    if (it == byPhase_.end()) return 0;
    return it->second.raw().size();
}

std::uint64_t
KvServerApp::drawKey()
{
    switch (kv_.dist) {
    case KvKeyDist::Zipfian: return zipf_.draw(heavyRng());
    case KvKeyDist::Latest: return latest_.draw(heavyRng());
    case KvKeyDist::Uniform: return uniform_.draw(heavyRng());
    }
    return zipf_.draw(heavyRng());
}

double
KvServerApp::drawWorkScale()
{
    const KvOpMix &m = kv_.mix;
    double total = m.read + m.update + m.scan + m.insert;
    double pick = heavyRng().uniform() * total;
    if (pick < m.read)
        op_ = KvOp::Read;
    else if (pick < m.read + m.update)
        op_ = KvOp::Update;
    else if (pick < m.read + m.update + m.scan)
        op_ = KvOp::Scan;
    else
        op_ = KvOp::Insert;

    key_ = drawKey();
    scanPos_ = 0;
    if (op_ == KvOp::Insert && kv_.dist == KvKeyDist::Latest)
        latest_.advance();

    // The base class sizes the request as mean-accesses * scale, so
    // scaling by this op's cost relative to the mix mean gives each
    // op exactly its own access budget.
    return kvOpAccesses(kv_, op_) / mixAccesses_;
}

LineAddr
KvServerApp::indexLine(Rng &rng) const
{
    // A short descent: each access lands on one of ~kIndexDepth
    // nodes on this key's root-to-leaf path.
    std::uint64_t node =
        rng.below(static_cast<std::uint64_t>(kIndexDepth));
    return fnv1a64(key_ * 0x9e3779b97f4a7c15ull + node) %
           indexLines_;
}

LineAddr
KvServerApp::drawAccess(Rng &rng)
{
    LineAddr heapBase = indexLines_;
    LineAddr streamBase = indexLines_ + heapLines_;

    if (op_ == KvOp::Scan) {
        double u = rng.uniform();
        if (u < 0.15) return base_ + indexLine(rng);
        // Row-sequential walk from the start key's value block.
        LineAddr line = (key_ % effectiveKeys_) * kv_.valueLines +
                        scanPos_++;
        return base_ + heapBase + line % heapLines_;
    }

    double u = rng.uniform();
    if (u < 0.30) return base_ + indexLine(rng);
    if ((op_ == KvOp::Update || op_ == KvOp::Insert) && u > 0.88)
        // Append-only log: monotonically advancing, never reused.
        return base_ + streamBase + logCursor_++;
    LineAddr line = (key_ % effectiveKeys_) * kv_.valueLines +
                    rng.below(kv_.valueLines);
    return base_ + heapBase + line % heapLines_;
}

void
KvServerApp::recordCompletion(Tick finish, double latency)
{
    (void)finish;
    static const std::string kSteady = "steady";
    const std::string &phase =
        (trace_ != nullptr && !trace_->empty())
            ? trace_->phaseLabelAt(serviceArrivalTick())
            : kSteady;
    byPhase_[phase].add(latency);
}

} // namespace jumanji
