/**
 * @file
 * A key-value server as a latency-critical application.
 *
 * KvServerApp subclasses TailLatencyApp, so the whole existing LC
 * machinery — calibration, deadlines, VTB classification, the
 * apps.* stat groups, request tracing lanes — applies unchanged.
 * What changes is *where the work comes from*: each request is one
 * KV operation (read/update/scan/insert per a YCSB-style mix) on a
 * key drawn from a seeded Zipfian/latest/uniform sampler, and its
 * LLC accesses walk the store's three structures:
 *
 *   index       B-tree-ish lookup structure, ~3 nodes per descent,
 *               4 entries per line: max(16, keys/4) lines
 *   value heap  keys * valueLines lines; the per-key value block
 *   log         append-only write-ahead region (streaming)
 *
 * Per-request instruction/LLC budgets derive from the same numbers:
 * an op touches opAccesses(op) lines, and the instruction budget is
 * back-computed from a target memory intensity, so the footprint,
 * the access stream, and the budget all agree by construction.
 *
 * A bound LoadTrace drives the open-loop client through time: the
 * arrival rate follows the trace's piecewise-linear multiplier and
 * phase steps can sharpen the Zipfian skew or migrate the hot keys.
 * Completed-request latencies are additionally bucketed by trace
 * phase for the apps.kv.<phase>.{p95,p99,count} stats.
 */

#ifndef JUMANJI_WORKLOADS_KV_KV_STORE_HH
#define JUMANJI_WORKLOADS_KV_KV_STORE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/workloads/kv/load_trace.hh"
#include "src/workloads/kv/zipfian.hh"
#include "src/workloads/tail_latency.hh"

namespace jumanji {

/** One KV operation class (YCSB vocabulary). */
enum class KvOp { Read, Update, Scan, Insert };

/** Operation mix as fractions summing to ~1. */
struct KvOpMix
{
    double read = 1.0;
    double update = 0.0;
    double scan = 0.0;
    double insert = 0.0;
};

/** Key-popularity distribution. */
enum class KvKeyDist { Zipfian, Latest, Uniform };

/** Static description of one KV server application. */
struct KvAppParams
{
    std::string name;
    /** Number of resident keys. */
    std::uint64_t keys = 1 << 15;
    /** Cache lines per value (value size / 64B). */
    std::uint32_t valueLines = 4;
    /** Zipfian skew of the key popularity. */
    double theta = 0.99;
    KvOpMix mix;
    /** Mean keys touched by one scan. */
    std::uint32_t scanLength = 8;
    KvKeyDist dist = KvKeyDist::Zipfian;
};

/** KV app catalog: kv_small plus the six YCSB core workloads. */
const std::vector<KvAppParams> &kvAppCatalog();

/** Catalog lookup by name; nullptr if @p name is not a KV app. */
const KvAppParams *findKvApp(const std::string &name);

bool isKvAppName(const std::string &name);
std::vector<std::string> allKvAppNames();

/** LLC lines one @p op touches (index descent + value + log). */
double kvOpAccesses(const KvAppParams &params, KvOp op);

/** Mix-weighted mean LLC accesses per request. */
double kvMixAccesses(const KvAppParams &params);

/**
 * Derives the TailAppParams (working sets, per-request budgets,
 * traits) for a KV app, so calibration and nominal-service math
 * treat it exactly like a catalog TailBench app.
 */
TailAppParams deriveKvTailParams(const KvAppParams &params);

/** Derived params for a catalog KV app. Fatal if unknown. */
const TailAppParams &kvTailAppParams(const std::string &name);

/**
 * Unified LC lookup: the TailBench catalog first, then the KV
 * catalog. Fatal if the name is in neither.
 */
const TailAppParams &lcAppParams(const std::string &name);

/** All valid LC app names (TailBench catalog + KV catalog). */
std::vector<std::string> allLcAppNames();

class KvServerApp : public TailLatencyApp
{
  public:
    /**
     * @p params must be deriveKvTailParams(@p kvParams), possibly
     * with its working sets capacity-scaled; the store's structure
     * sizes are read back from the (scaled) working sets so the
     * address regions and the advertised footprint always agree.
     */
    KvServerApp(const KvAppParams &kvParams,
                const TailAppParams &params, AppId app,
                double meanInterarrivalCycles, Rng arrivalRng);

    /**
     * Attaches the offered-load trace. @p baseInterarrivalCycles is
     * the rate at multiplier 1.0; @p loadScale is a global factor
     * on top of the trace (the kv.loadScale knob).
     */
    void bindTrace(const LoadTrace *trace,
                   double baseInterarrivalCycles, double loadScale);

    /**
     * Applies the trace state at @p now: arrival rate, skew delta,
     * and key rotation. Called by the system's load agent; no-op
     * when nothing changed, so a flat trace costs nothing.
     */
    void onTraceTick(Tick now);

    void clearMeasurement() override;

    /** Latency percentile of requests that arrived in @p phase. */
    double phasePercentile(const std::string &phase, double p) const;
    std::uint64_t phaseCount(const std::string &phase) const;
    const KvAppParams &kvParams() const { return kv_; }

  protected:
    double drawWorkScale() override;
    LineAddr drawAccess(Rng &rng) override;
    void recordCompletion(Tick finish, double latency) override;

  private:
    std::uint64_t drawKey();
    LineAddr indexLine(Rng &rng) const;

    KvAppParams kv_;
    LineAddr base_ = 0;
    std::uint64_t indexLines_ = 0;
    std::uint64_t heapLines_ = 0;
    std::uint64_t effectiveKeys_ = 0;
    double mixAccesses_ = 1.0;

    ScrambledZipfianSampler zipf_;
    LatestSampler latest_;
    UniformSampler uniform_;

    KvOp op_ = KvOp::Read;
    std::uint64_t key_ = 0;
    std::uint64_t scanPos_ = 0;
    std::uint64_t logCursor_ = 0;

    const LoadTrace *trace_ = nullptr;
    double baseInterarrival_ = 0.0;
    double loadScale_ = 1.0;
    double lastMultiplier_ = 1.0;
    double activeThetaDelta_ = 0.0;
    std::uint64_t activeRotation_ = 0;

    std::map<std::string, SampleStat> byPhase_;
};

} // namespace jumanji

#endif // JUMANJI_WORKLOADS_KV_KV_STORE_HH
