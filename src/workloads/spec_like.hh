/**
 * @file
 * SPEC CPU2006-like synthetic batch applications.
 *
 * Each of the paper's sixteen SPEC applications is modelled as an
 * AddressStream (mixture of working sets shaping its LLC miss curve)
 * plus intensity parameters (LLC accesses per kilo-instruction, base
 * IPC). Parameters are chosen to mimic the broad published
 * characteristics of each benchmark: mcf/lbm/milc are memory-bound
 * with multi-MB footprints, libquantum streams, calculix/gcc are
 * compute-bound, omnetpp/xalancbmk are LLC-capacity-sensitive, etc.
 */

#ifndef JUMANJI_WORKLOADS_SPEC_LIKE_HH
#define JUMANJI_WORKLOADS_SPEC_LIKE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/cpu/app_model.hh"
#include "src/workloads/address_stream.hh"

namespace jumanji {

/** Static description of one SPEC-like application. */
struct SpecAppParams
{
    std::string name;
    /** LLC accesses per 1000 instructions. */
    double apki = 10.0;
    std::vector<WorkingSet> workingSets;
    AppTraits traits;
};

/** The sixteen applications used in the paper's footnote 1. */
const std::vector<SpecAppParams> &specAppCatalog();

/** Looks up catalog params by name. Fatal if unknown. */
const SpecAppParams &specAppParams(const std::string &name);

/**
 * A batch application: an endless loop of compute bursts punctuated
 * by LLC accesses from its address stream.
 */
class SpecLikeApp : public AppModel
{
  public:
    SpecLikeApp(const SpecAppParams &params, AppId app);

    const std::string &name() const override { return params_.name; }
    AppStep next(Tick now, Rng &rng) override;
    const AppTraits &traits() const override { return params_.traits; }

    /** Instructions between consecutive LLC accesses on average. */
    double instrsPerAccess() const;

  private:
    SpecAppParams params_;
    AddressStream stream_;
};

} // namespace jumanji

#endif // JUMANJI_WORKLOADS_SPEC_LIKE_HH
