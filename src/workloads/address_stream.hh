/**
 * @file
 * Synthetic LLC address-stream generation.
 *
 * An AddressStream draws lines from a mixture of working sets; each
 * working set is a contiguous range of line addresses accessed
 * uniformly. The resulting LLC miss curve is a stack of plateaus at
 * the cumulative working-set sizes — the classic knee-shaped curves
 * of SPEC applications. A working set with `streaming = true` never
 * reuses lines, modelling compulsory-miss traffic (e.g. libquantum).
 */

#ifndef JUMANJI_WORKLOADS_ADDRESS_STREAM_HH
#define JUMANJI_WORKLOADS_ADDRESS_STREAM_HH

#include <cstdint>
#include <vector>

#include "src/sim/rng.hh"
#include "src/sim/types.hh"

namespace jumanji {

/** One component of a mixture-of-working-sets stream. */
struct WorkingSet
{
    /** Size in cache lines (ignored when streaming). */
    std::uint64_t lines = 0;
    /** Relative probability of drawing from this set. */
    double weight = 1.0;
    /** Never reuse: a sequential compulsory-miss stream. */
    bool streaming = false;
    /**
     * Intra-set hotness: positions are drawn as floor(N * u^(1+skew))
     * for uniform u. skew = 0 is uniform (a linear LLC miss curve);
     * skew = 1 makes the front of the set quadratically hotter,
     * yielding the steep-then-flat miss curves real SPEC benchmarks
     * exhibit (hit rate ~ sqrt(C/N) under LRU).
     */
    double skew = 0.0;
};

/**
 * Draws line addresses from a working-set mixture. Each app instance
 * must use a distinct @p base so address spaces never collide.
 */
class AddressStream
{
  public:
    AddressStream(LineAddr base, std::vector<WorkingSet> sets);

    /** Next line address. */
    LineAddr draw(Rng &rng);

    /** Total reusable footprint, in lines. */
    std::uint64_t footprintLines() const { return footprint_; }

    const std::vector<WorkingSet> &sets() const { return sets_; }

  private:
    LineAddr base_;
    std::vector<WorkingSet> sets_;
    std::vector<double> cumWeight_;
    std::vector<LineAddr> offsets_;
    double totalWeight_ = 0.0;
    std::uint64_t footprint_ = 0;
    LineAddr streamCursor_ = 0;
};

/** Returns a per-app address-space base that cannot collide. */
inline LineAddr
appAddressBase(AppId app)
{
    return (static_cast<LineAddr>(app) + 1) << 40;
}

} // namespace jumanji

#endif // JUMANJI_WORKLOADS_ADDRESS_STREAM_HH
