/**
 * @file
 * Workload-mix construction for the paper's experiments: random
 * batch mixes from the 16-app SPEC catalog, LC-app selections
 * (copies of one app, or the "Mixed" selection), and the VM
 * regroupings of the Fig. 17 scaling study.
 */

#ifndef JUMANJI_WORKLOADS_MIXES_HH
#define JUMANJI_WORKLOADS_MIXES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/rng.hh"

namespace jumanji {

/** One VM's application list. */
struct VmSpec
{
    std::vector<std::string> lcApps;
    std::vector<std::string> batchApps;
};

/** A fully specified experiment workload. */
struct WorkloadMix
{
    std::vector<VmSpec> vms;

    std::uint32_t
    totalApps() const
    {
        std::uint32_t n = 0;
        for (const auto &vm : vms)
            n += static_cast<std::uint32_t>(vm.lcApps.size() +
                                            vm.batchApps.size());
        return n;
    }
};

/**
 * Builds the paper's default scenario: @p vms VMs, each with one LC
 * app and @p batchPerVm random batch apps.
 *
 * @param lcNames If one name, every VM runs a copy of it; if several,
 *        VMs cycle through them ("Mixed").
 */
WorkloadMix makeMix(const std::vector<std::string> &lcNames,
                    std::uint32_t vms, std::uint32_t batchPerVm,
                    Rng &rng);

/**
 * Regroups the standard 4 LC + 16 batch population into @p vmCount
 * VMs (Fig. 17): apps are dealt round-robin so every VM keeps a
 * balanced share of LC and batch applications.
 */
WorkloadMix regroupMix(const WorkloadMix &base, std::uint32_t vmCount);

/** Uniformly random batch app name from the 16-app catalog. */
std::string randomBatchApp(Rng &rng);

/** The five LC app names, catalog order. */
std::vector<std::string> allTailAppNames();

class Fingerprint;

/**
 * Folds the full workload spec (VM structure plus every app name, in
 * order) into @p fp — the mix half of the driver's result-cache key.
 */
void foldMix(Fingerprint &fp, const WorkloadMix &mix);

} // namespace jumanji

#endif // JUMANJI_WORKLOADS_MIXES_HH
