/**
 * @file
 * Utility monitors (UMONs) [69, 8]: sampled auxiliary tag directories
 * that measure, per virtual cache, the miss curve the VC would see at
 * different capacity allocations.
 *
 * The UMON models a cache of `modelled capacity` lines at
 * `ways` bucket granularity: it monitors a hash-sampled ~1/sampleRate
 * slice of the access stream with per-set true-LRU tag arrays and
 * counts hits by recency position. missCurve()[k] then estimates the
 * VC's misses had it been allocated k/ways of the modelled capacity.
 */

#ifndef JUMANJI_DNUCA_UMON_HH
#define JUMANJI_DNUCA_UMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/dnuca/miss_curve.hh"
#include "src/sim/types.hh"

namespace jumanji {

class StatRegistry;

namespace umon_detail {

/** Murmur-style finalizer used for hash sampling and set choice. */
inline std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace umon_detail

/** UMON geometry. */
struct UmonParams
{
    /** Sampled sets in the auxiliary directory. */
    std::uint32_t sets = 64;
    /** Recency positions == miss-curve buckets. */
    std::uint32_t ways = 64;
    /** Total capacity (in lines) the monitor models. */
    std::uint64_t modelledLines = 327680; // 20 MB of 64 B lines
};

/**
 * One UMON instance (one per VC).
 */
class Umon
{
  public:
    explicit Umon(const UmonParams &params);

    /**
     * Observes one LLC access; internally sampled. Inline so the
     * per-access fast path (count + hash + reject) stays call-free;
     * only the ~1/sampleRate sampled accesses take the out-of-line
     * LRU-stack update.
     */
    void access(LineAddr line)
    {
        accesses_++;
        if (!sampled(line)) return;
        recordSampled(line);
    }

    /** Accesses observed (unsampled count). */
    std::uint64_t accesses() const { return accesses_; }

    /**
     * The measured LRU miss curve, scaled back up by the sampling
     * rate: points[k] = estimated misses at k buckets of capacity,
     * over the interval since the last clear().
     */
    MissCurve missCurve() const;

    /** Lines of modelled capacity per miss-curve bucket. */
    std::uint64_t linesPerBucket() const;

    /** Resets counters (called each reconfiguration epoch). */
    void clear();

    /**
     * Scales counters by @p factor (0 < factor < 1): an exponential
     * moving average across epochs. Used instead of clear() so that
     * curves stay stable when single-epoch samples are sparse.
     */
    void decay(double factor);

    const UmonParams &params() const { return params_; }

    /** Registers UMON stats under @p prefix ("dnuca.umon03."). */
    void registerStats(StatRegistry &reg, const std::string &prefix);

  private:
    bool sampled(LineAddr line) const
    {
        // Hash-sample lines at 1/sampleRate. Using the line address
        // (not the access) keeps a line's accesses consistently
        // monitored.
        std::uint64_t h = umon_detail::mix(line ^ 0x5bf03635ull);
        return (h % rateInt_) == 0;
    }

    /** LRU-stack update for an access that passed the sample. */
    void recordSampled(LineAddr line);

    UmonParams params_;
    double sampleRate_;
    /** sampleRate_ truncated once, for the per-access modulo. */
    std::uint64_t rateInt_;

    /** Per-set LRU stacks of line tags, most recent first. */
    std::vector<std::vector<LineAddr>> stacks_;

    /** Hits by recency position (0 = MRU). */
    std::vector<std::uint64_t> hitCounters_;
    std::uint64_t missCounter_ = 0;
    std::uint64_t sampledAccesses_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace jumanji

#endif // JUMANJI_DNUCA_UMON_HH
