#include "src/dnuca/umon.hh"

#include <algorithm>

#include "src/sim/check.hh"
#include "src/sim/logging.hh"
#include "src/sim/statreg.hh"

namespace jumanji {

Umon::Umon(const UmonParams &params)
    : params_(params),
      stacks_(params.sets),
      hitCounters_(params.ways, 0)
{
    if (params.sets == 0 || params.ways == 0)
        fatal("Umon: sets and ways must be nonzero");
    // The auxiliary directory holds sets*ways tags modelling
    // modelledLines of capacity, so it samples at that ratio.
    std::uint64_t tags = static_cast<std::uint64_t>(params.sets) *
                         params.ways;
    sampleRate_ = static_cast<double>(params.modelledLines) /
                  static_cast<double>(std::max<std::uint64_t>(1, tags));
    if (sampleRate_ < 1.0) sampleRate_ = 1.0;
    rateInt_ = static_cast<std::uint64_t>(sampleRate_);
    for (auto &stack : stacks_) stack.reserve(params.ways);
}

void
Umon::recordSampled(LineAddr line)
{
    sampledAccesses_++;

    auto set = static_cast<std::uint32_t>(umon_detail::mix(line) %
                                          params_.sets);
    auto &stack = stacks_[set];

    auto it = std::find(stack.begin(), stack.end(), line);
    if (it != stack.end()) {
        auto pos = static_cast<std::size_t>(it - stack.begin());
        JUMANJI_ASSERT(pos < hitCounters_.size(),
                       "recency position beyond UMON ways");
        hitCounters_[pos]++;
        // Move-to-front in one pass (erase + re-insert would shift
        // the suffix twice); the resulting order is identical.
        std::rotate(stack.begin(), it, it + 1);
    } else {
        missCounter_++;
        if (stack.size() >= params_.ways) stack.pop_back();
        stack.insert(stack.begin(), line);
    }
    JUMANJI_INVARIANT(stack.size() <= params_.ways,
                      "UMON LRU stack outgrew its associativity");
    JUMANJI_INVARIANT(sampledAccesses_ <= accesses_,
                      "sampled more accesses than were observed");
}

MissCurve
Umon::missCurve() const
{
    // misses(k buckets) = cold/capacity misses beyond position k:
    // missCounter_ + hits at recency positions >= k.
    std::vector<double> pts(params_.ways + 1);
    double tail = static_cast<double>(missCounter_);
    pts[params_.ways] = tail;
    for (std::int64_t k = params_.ways - 1; k >= 0; k--) {
        tail += static_cast<double>(hitCounters_[k]);
        pts[k] = tail;
    }
    for (double &p : pts) p *= sampleRate_;
    return MissCurve(std::move(pts));
}

std::uint64_t
Umon::linesPerBucket() const
{
    return std::max<std::uint64_t>(1, params_.modelledLines / params_.ways);
}

void
Umon::decay(double factor)
{
    for (auto &h : hitCounters_)
        h = static_cast<std::uint64_t>(static_cast<double>(h) * factor);
    missCounter_ = static_cast<std::uint64_t>(
        static_cast<double>(missCounter_) * factor);
    sampledAccesses_ = static_cast<std::uint64_t>(
        static_cast<double>(sampledAccesses_) * factor);
    accesses_ = static_cast<std::uint64_t>(
        static_cast<double>(accesses_) * factor);
}

void
Umon::registerStats(StatRegistry &reg, const std::string &prefix)
{
    // Counters are decayed/cleared each epoch, so they read as
    // gauges: "activity this epoch", not monotone totals.
    reg.addGauge(prefix + "accesses", "accesses observed this epoch",
                 [this] { return static_cast<double>(accesses_); });
    reg.addGauge(prefix + "sampledAccesses",
                 "accesses past the hash sampler this epoch", [this] {
                     return static_cast<double>(sampledAccesses_);
                 });
    reg.addGauge(prefix + "sampledMisses",
                 "misses in the auxiliary directory this epoch",
                 [this] { return static_cast<double>(missCounter_); });
}

void
Umon::clear()
{
    std::fill(hitCounters_.begin(), hitCounters_.end(), 0);
    missCounter_ = 0;
    sampledAccesses_ = 0;
    accesses_ = 0;
    // Keep stack contents: the working set survives across epochs.
}

} // namespace jumanji
