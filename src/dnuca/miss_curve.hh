/**
 * @file
 * Miss curves: misses as a function of allocated capacity, sampled at
 * bucket granularity by the UMONs.
 *
 * Provides the two transformations the paper relies on:
 *  - convex (lower) hull, approximating DRRIP's miss curve from an
 *    LRU curve as in Talus [7] (Sec. IV-A), and
 *  - combination of multiple curves into one aggregate curve for a
 *    VM, via optimal greedy capacity division (the model of
 *    Whirlpool [61, Appendix B]).
 */

#ifndef JUMANJI_DNUCA_MISS_CURVE_HH
#define JUMANJI_DNUCA_MISS_CURVE_HH

#include <cstdint>
#include <vector>

namespace jumanji {

/**
 * Misses per unit time as a function of capacity in buckets.
 * curve[k] = expected misses when given k buckets of capacity.
 * Monotonically non-increasing by construction.
 */
class MissCurve
{
  public:
    MissCurve() = default;

    /** Builds from raw points; enforces monotonicity. */
    explicit MissCurve(std::vector<double> points);

    /** A flat curve (cache-insensitive) of given size and level. */
    static MissCurve flat(std::size_t buckets, double misses);

    bool empty() const { return points_.empty(); }

    /** Number of capacity steps (buckets) = size() - 1. */
    std::size_t buckets() const
    {
        return points_.empty() ? 0 : points_.size() - 1;
    }

    /** Misses at an allocation of @p k buckets (clamped). */
    double at(std::size_t k) const;

    /** Misses at a fractional allocation, linearly interpolated. */
    double interpolate(double buckets) const;

    const std::vector<double> &points() const { return points_; }

    /**
     * Lower convex hull of the curve: the performance an
     * adaptive/bypassing policy like DRRIP can achieve (Talus).
     */
    MissCurve convexHull() const;

    /** Pointwise sum (independent apps sharing nothing). */
    MissCurve operator+(const MissCurve &o) const;

    /** Scales the whole curve by @p factor. */
    MissCurve scaled(double factor) const;

    /**
     * Combines per-app curves into the best-achievable aggregate
     * curve when capacity is divided optimally among them:
     * combined[k] = min over {k_i, sum k_i = k} of sum_i curve_i[k_i].
     * Exact for convex curves; we hull inputs first.
     */
    static MissCurve combineOptimal(const std::vector<MissCurve> &curves);

  private:
    std::vector<double> points_;
};

} // namespace jumanji

#endif // JUMANJI_DNUCA_MISS_CURVE_HH
