/**
 * @file
 * Virtual caches and the virtual-cache translation buffer (VTB).
 *
 * A virtual cache (VC) is the OS abstraction for a group of pages
 * managed together (one per application in this paper). Each VC has a
 * placement descriptor — a 128-entry array of bank ids; the target
 * bank of an address is descriptor[hash(line) % 128]. Software
 * controls placement by writing descriptor entries (Fig. 7).
 */

#ifndef JUMANJI_DNUCA_VTB_HH
#define JUMANJI_DNUCA_VTB_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/flat_map.hh"
#include "src/sim/types.hh"

namespace jumanji {

class StatRegistry;

namespace vtb_detail {

/** Hash spreading lines across descriptor slots. */
inline std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 31;
    x *= 0x7fb5d329728ea185ull;
    x ^= x >> 27;
    x *= 0x81dadef4bc2dd44dull;
    x ^= x >> 33;
    return x;
}

} // namespace vtb_detail

/**
 * A placement descriptor: 128 slots, each naming the LLC bank that
 * holds the corresponding hash-slice of the VC's address space.
 */
class PlacementDescriptor
{
  public:
    static constexpr std::uint32_t kSlots = 128;

    PlacementDescriptor() { slots_.fill(kInvalidBank); }

    BankId slot(std::uint32_t i) const { return slots_[i % kSlots]; }
    void setSlot(std::uint32_t i, BankId bank) { slots_[i % kSlots] = bank; }

    /** Target bank for @p line. Inline: probed twice per access. */
    BankId bankFor(LineAddr line) const { return slots_[slotFor(line)]; }

    /** Hash slot used for @p line (exposed for tests/attacks). */
    static std::uint32_t slotFor(LineAddr line)
    {
        return static_cast<std::uint32_t>(vtb_detail::mix(line) %
                                          kSlots);
    }

    /**
     * Fills slots proportionally to per-bank capacity shares:
     * shares[b] is bank b's fraction of the VC's capacity (sums to
     * ~1). Banks receive round(share * 128) slots, adjusted so every
     * positive-share bank gets >= 1 slot and all 128 slots are used.
     * Slot->bank assignment is deterministic (interleaved) so that
     * small share changes move few slots.
     */
    void fillProportional(const std::vector<std::pair<BankId, double>>
                              &shares);

    /** Fills all slots by striping across @p banks (S-NUCA). */
    void fillStriped(const std::vector<BankId> &banks);

    /** Number of slots pointing at @p bank. */
    std::uint32_t slotsOn(BankId bank) const;

    /**
     * Returns a descriptor with the same per-bank slot counts as
     * *this, but with slots assigned to maximize agreement with
     * @p prev. Installing the stabilized descriptor moves the
     * minimum number of hash slices, minimizing coherence-walk
     * invalidations when allocations change only slightly.
     */
    PlacementDescriptor stabilizedAgainst(
        const PlacementDescriptor &prev) const;

    /** All banks with >= 1 slot. */
    std::vector<BankId> ownedBanks() const;

    bool operator==(const PlacementDescriptor &o) const
    {
        return slots_ == o.slots_;
    }

  private:
    std::array<BankId, kSlots> slots_;
};

/**
 * The VTB: maps VC ids to placement descriptors. One logical VTB is
 * shared by all cores in the model (contents would be replicated
 * per-core in hardware; they are identical, so one table suffices).
 */
class Vtb
{
  public:
    /** Installs (or replaces) the descriptor for @p vc. */
    void install(VcId vc, const PlacementDescriptor &desc);

    /** True if @p vc has a descriptor installed. */
    bool has(VcId vc) const { return table_.count(vc) > 0; }

    /** The descriptor for @p vc. @pre has(vc). */
    const PlacementDescriptor &descriptor(VcId vc) const;

    /**
     * Hot-path variant: the descriptor for @p vc, or nullptr. Lets
     * the access loop resolve the descriptor once and reuse the
     * pointer instead of re-querying the table per level.
     */
    const PlacementDescriptor *
    descriptorPtr(VcId vc) const
    {
        return table_.lookup(vc);
    }

    /**
     * Target bank for (@p vc, @p line). @pre has(vc). Inline: called
     * at issue and again at arrival for every access. The miss
     * (unknown-VC) arm funnels through descriptor(), which panics.
     */
    BankId lookup(VcId vc, LineAddr line) const
    {
        const PlacementDescriptor *d = table_.lookup(vc);
        return (d != nullptr ? *d : descriptor(vc)).bankFor(line);
    }

    /** Removes all descriptors. */
    void clear() { table_.clear(); }

    std::size_t size() const { return table_.size(); }

    /** Descriptor installs since construction (includes replacements). */
    std::uint64_t installs() const { return installs_; }

    /** Registers VTB stats under @p prefix ("dnuca.vtb."). */
    void registerStats(StatRegistry &reg, const std::string &prefix);

  private:
    // Dense and ascending-id ordered: the table is probed on every
    // access, and any walk over installed descriptors (stats,
    // debugging dumps) still visits VCs in a deterministic order.
    SmallIdMap<VcId, PlacementDescriptor> table_;
    std::uint64_t installs_ = 0;
};

} // namespace jumanji

#endif // JUMANJI_DNUCA_VTB_HH
