#include "src/dnuca/miss_curve.hh"

#include <algorithm>
#include <queue>

#include "src/sim/check.hh"

namespace jumanji {

MissCurve::MissCurve(std::vector<double> points)
    : points_(std::move(points))
{
    // Enforce monotone non-increasing: more capacity never hurts.
    for (std::size_t i = 1; i < points_.size(); i++)
        points_[i] = std::min(points_[i], points_[i - 1]);
}

MissCurve
MissCurve::flat(std::size_t buckets, double misses)
{
    return MissCurve(std::vector<double>(buckets + 1, misses));
}

double
MissCurve::at(std::size_t k) const
{
    if (points_.empty()) return 0.0;
    return points_[std::min(k, points_.size() - 1)];
}

double
MissCurve::interpolate(double buckets) const
{
    if (points_.empty()) return 0.0;
    if (buckets <= 0) return points_.front();
    auto lo = static_cast<std::size_t>(buckets);
    if (lo >= points_.size() - 1) return points_.back();
    double frac = buckets - static_cast<double>(lo);
    return points_[lo] * (1.0 - frac) + points_[lo + 1] * frac;
}

MissCurve
MissCurve::convexHull() const
{
    if (points_.size() < 3) return *this;

    // Lower hull over (index, value) via monotone chain, then
    // linear interpolation between hull vertices.
    std::vector<std::size_t> hull;
    for (std::size_t i = 0; i < points_.size(); i++) {
        while (hull.size() >= 2) {
            std::size_t a = hull[hull.size() - 2];
            std::size_t b = hull[hull.size() - 1];
            // Keep b only if it lies strictly below segment a->i.
            double lhs = (points_[b] - points_[a]) *
                         static_cast<double>(i - a);
            double rhs = (points_[i] - points_[a]) *
                         static_cast<double>(b - a);
            if (lhs <= rhs) break;
            hull.pop_back();
        }
        hull.push_back(i);
    }

    std::vector<double> result(points_.size());
    for (std::size_t seg = 0; seg + 1 < hull.size(); seg++) {
        std::size_t a = hull[seg];
        std::size_t b = hull[seg + 1];
        for (std::size_t i = a; i <= b; i++) {
            double t = static_cast<double>(i - a) /
                       static_cast<double>(b - a);
            result[i] = points_[a] * (1.0 - t) + points_[b] * t;
        }
    }
#if JUMANJI_CHECKS_ACTIVE
    // A lower hull never lies above the curve it was built from.
    for (std::size_t i = 0; i < points_.size(); i++) {
        JUMANJI_INVARIANT(result[i] <= points_[i] + 1e-9,
                          "convex hull rose above the source curve");
    }
#endif
    return MissCurve(std::move(result));
}

MissCurve
MissCurve::operator+(const MissCurve &o) const
{
    std::size_t n = std::max(points_.size(), o.points_.size());
    std::vector<double> sum(n);
    for (std::size_t i = 0; i < n; i++)
        sum[i] = at(i) + o.at(i);
    return MissCurve(std::move(sum));
}

MissCurve
MissCurve::scaled(double factor) const
{
    std::vector<double> pts = points_;
    for (double &p : pts) p *= factor;
    return MissCurve(std::move(pts));
}

MissCurve
MissCurve::combineOptimal(const std::vector<MissCurve> &curves)
{
    if (curves.empty()) return MissCurve();

    std::size_t totalBuckets = 0;
    std::vector<MissCurve> hulls;
    hulls.reserve(curves.size());
    for (const auto &c : curves) {
        hulls.push_back(c.convexHull());
        totalBuckets += c.buckets();
    }

    // Greedy marginal-gain allocation. With convex inputs, taking the
    // best next-bucket gain at each step is globally optimal.
    struct Head
    {
        double gain;
        std::size_t curve;
        std::size_t next; // bucket index to take next
        bool operator<(const Head &o) const { return gain < o.gain; }
    };

    std::priority_queue<Head> heap;
    std::vector<std::size_t> taken(hulls.size(), 0);
    double current = 0.0;
    for (std::size_t i = 0; i < hulls.size(); i++) {
        current += hulls[i].at(0);
        if (hulls[i].buckets() > 0)
            heap.push(Head{hulls[i].at(0) - hulls[i].at(1), i, 1});
    }

    std::vector<double> combined;
    combined.reserve(totalBuckets + 1);
    combined.push_back(current);
    for (std::size_t k = 1; k <= totalBuckets; k++) {
        if (heap.empty()) {
            combined.push_back(current);
            continue;
        }
        Head h = heap.top();
        heap.pop();
        current -= h.gain;
        taken[h.curve] = h.next;
        if (h.next < hulls[h.curve].buckets()) {
            heap.push(Head{hulls[h.curve].at(h.next) -
                               hulls[h.curve].at(h.next + 1),
                           h.curve, h.next + 1});
        }
        combined.push_back(current);
    }
    return MissCurve(std::move(combined));
}

} // namespace jumanji
