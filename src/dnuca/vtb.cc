#include "src/dnuca/vtb.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/sim/flat_map.hh"

#include "src/sim/check.hh"
#include "src/sim/logging.hh"
#include "src/sim/statreg.hh"

namespace jumanji {

void
PlacementDescriptor::fillProportional(
    const std::vector<std::pair<BankId, double>> &shares)
{
    if (shares.empty())
        panic("PlacementDescriptor::fillProportional: no banks");

    // Largest-remainder apportionment of 128 slots.
    double total = 0.0;
    for (const auto &[bank, share] : shares) total += std::max(0.0, share);
    if (total <= 0.0)
        panic("PlacementDescriptor::fillProportional: zero total share");

    struct Alloc
    {
        BankId bank;
        std::uint32_t slots;
        double remainder;
    };
    std::vector<Alloc> allocs;
    std::uint32_t used = 0;
    for (const auto &[bank, share] : shares) {
        double ideal = std::max(0.0, share) / total * kSlots;
        auto whole = static_cast<std::uint32_t>(ideal);
        // Every positive-share bank holds at least one slot so its
        // capacity is reachable.
        if (whole == 0 && share > 0.0) whole = 1;
        allocs.push_back(Alloc{bank, whole, ideal - std::floor(ideal)});
        used += whole;
    }
    // Distribute leftovers by largest remainder; trim overshoot from
    // the smallest-remainder banks with more than one slot.
    std::stable_sort(allocs.begin(), allocs.end(),
                     [](const Alloc &a, const Alloc &b) {
                         return a.remainder > b.remainder;
                     });
    std::size_t i = 0;
    while (used < kSlots) {
        allocs[i % allocs.size()].slots++;
        used++;
        i++;
    }
    i = allocs.size();
    while (used > kSlots) {
        Alloc &a = allocs[--i % allocs.size()];
        if (a.slots > 1) {
            a.slots--;
            used--;
        }
        if (i == 0) i = allocs.size();
    }

    JUMANJI_INVARIANT(used == kSlots,
                      "apportionment must hand out exactly 128 slots");

    // Interleave slots across banks (round-robin over remaining
    // quotas) so hash slices spread evenly.
    std::uint32_t slot = 0;
    while (slot < kSlots) {
        bool progressed = false;
        for (auto &a : allocs) {
            if (a.slots > 0 && slot < kSlots) {
                slots_[slot++] = a.bank;
                a.slots--;
                progressed = true;
            }
        }
        if (!progressed)
            panic("PlacementDescriptor::fillProportional: slot underflow");
    }
    JUMANJI_INVARIANT(
        std::none_of(slots_.begin(), slots_.end(),
                     [](BankId b) { return b == kInvalidBank; }),
        "proportional fill left an unassigned slot");
}

void
PlacementDescriptor::fillStriped(const std::vector<BankId> &banks)
{
    if (banks.empty())
        panic("PlacementDescriptor::fillStriped: no banks");
    for (std::uint32_t s = 0; s < kSlots; s++)
        slots_[s] = banks[s % banks.size()];
}

PlacementDescriptor
PlacementDescriptor::stabilizedAgainst(const PlacementDescriptor &prev)
    const
{
    // Per-bank quotas of the new placement. FlatMap: per-epoch
    // scratch, ascending-bank iteration like the std::map it replaces.
    FlatMap<BankId, std::uint32_t> quota;
    for (BankId b : slots_) quota[b]++;

    PlacementDescriptor result;
    std::vector<std::uint32_t> unassigned;

    // Pass 1: keep every slot that can stay where it was.
    for (std::uint32_t s = 0; s < kSlots; s++) {
        BankId old = prev.slots_[s];
        auto it = quota.find(old);
        if (old != kInvalidBank && it != quota.end() && it->second > 0) {
            result.slots_[s] = old;
            it->second--;
        } else {
            unassigned.push_back(s);
        }
    }

    // Pass 2: hand remaining quota to the slots that must move.
    std::size_t u = 0;
    for (auto &[bank, count] : quota) {
        while (count > 0 && u < unassigned.size()) {
            result.slots_[unassigned[u++]] = bank;
            count--;
        }
    }
    if (u != unassigned.size())
        panic("PlacementDescriptor::stabilizedAgainst: quota mismatch");
#if JUMANJI_CHECKS_ACTIVE
    // Stabilization must preserve per-bank slot counts exactly.
    for (const auto &[bank, count] : quota) {
        JUMANJI_INVARIANT(count == 0,
                          "stabilization left unassigned quota");
        JUMANJI_INVARIANT(result.slotsOn(bank) == slotsOn(bank),
                          "stabilization changed a bank's slot count");
    }
#endif
    return result;
}

std::uint32_t
PlacementDescriptor::slotsOn(BankId bank) const
{
    std::uint32_t n = 0;
    for (BankId b : slots_)
        if (b == bank) n++;
    return n;
}

std::vector<BankId>
PlacementDescriptor::ownedBanks() const
{
    std::vector<BankId> banks;
    for (BankId b : slots_) {
        if (b != kInvalidBank &&
            std::find(banks.begin(), banks.end(), b) == banks.end()) {
            banks.push_back(b);
        }
    }
    std::sort(banks.begin(), banks.end());
    return banks;
}

void
Vtb::install(VcId vc, const PlacementDescriptor &desc)
{
    table_[vc] = desc;
    installs_++;
}

void
Vtb::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + "installs",
                   "descriptor installs (including replacements)",
                   &installs_);
    reg.addGauge(prefix + "entries", "VCs with a descriptor installed",
                 [this] { return static_cast<double>(table_.size()); });
}

const PlacementDescriptor &
Vtb::descriptor(VcId vc) const
{
    const PlacementDescriptor *d = table_.lookup(vc);
    if (d == nullptr) panic("Vtb::descriptor: unknown VC");
    return *d;
}

} // namespace jumanji
