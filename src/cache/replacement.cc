#include "src/cache/replacement.hh"

#include <bit>

#include "src/sim/check.hh"
#include "src/sim/logging.hh"

namespace jumanji {

const char *
replKindName(ReplKind kind)
{
    switch (kind) {
      case ReplKind::LRU: return "LRU";
      case ReplKind::SRRIP: return "SRRIP";
      case ReplKind::BRRIP: return "BRRIP";
      case ReplKind::DRRIP: return "DRRIP";
    }
    return "?";
}

std::unique_ptr<ReplPolicy>
ReplPolicy::create(ReplKind kind, std::uint32_t sets, std::uint32_t ways,
                   std::uint64_t seed)
{
    switch (kind) {
      case ReplKind::LRU:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplKind::SRRIP:
        return std::make_unique<RripPolicy>(sets, ways,
                                            RripPolicy::Insertion::SRRIP,
                                            seed);
      case ReplKind::BRRIP:
        return std::make_unique<RripPolicy>(sets, ways,
                                            RripPolicy::Insertion::BRRIP,
                                            seed);
      case ReplKind::DRRIP:
        return std::make_unique<DrripPolicy>(sets, ways, 32, seed);
    }
    JUMANJI_UNREACHABLE("unknown replacement kind");
    panic("unknown replacement kind");
}

// ---------------------------------------------------------------- LRU

LruPolicy::LruPolicy(std::uint32_t sets, std::uint32_t ways)
    : ways_(ways),
      lastUse_(static_cast<std::size_t>(sets) * ways, 0)
{
}

void
LruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    lastUse_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
}

void
LruPolicy::onHit(std::uint32_t set, std::uint32_t way)
{
    touch(set, way);
}

void
LruPolicy::onFill(std::uint32_t set, std::uint32_t way)
{
    touch(set, way);
}

void
LruPolicy::onInvalidate(std::uint32_t set, std::uint32_t way)
{
    lastUse_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

std::uint32_t
LruPolicy::victimWay(std::uint32_t set, const WayMask &mask)
{
    std::uint32_t victim = 0;
    std::uint64_t best = kTickMax;
    bool found = false;
    for (std::uint32_t w = 0; w < ways_; w++) {
        if (!mask.contains(w)) continue;
        std::uint64_t t = lastUse_[static_cast<std::size_t>(set) * ways_ + w];
        if (t < best) {
            best = t;
            victim = w;
            found = true;
        }
    }
    if (!found) panic("LruPolicy::victimWay: empty way mask");
    JUMANJI_ASSERT(mask.contains(victim),
                   "LRU victim escaped the way mask");
    return victim;
}

// --------------------------------------------------------------- RRIP

RripPolicy::RripPolicy(std::uint32_t sets, std::uint32_t ways, Insertion ins,
                       std::uint64_t seed)
    : ways_(ways),
      insertion_(ins),
      lfsr_(seed | 1),
      rrpv_(static_cast<std::size_t>(sets) * ways, kMaxRrpv)
{
}

bool
RripPolicy::brripLongInsert()
{
    // 16-bit Galois LFSR; ~1/32 of fills get the "long" insertion,
    // as in Jaleel et al.'s DRRIP.
    lfsr_ = (lfsr_ >> 1) ^ (-(lfsr_ & 1ull) & 0xB400ull);
    return (lfsr_ & 0x1F) == 0;
}

RripPolicy::Insertion
RripPolicy::insertionFor(std::uint32_t)
{
    return insertion_;
}

void
RripPolicy::onHit(std::uint32_t set, std::uint32_t way)
{
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

void
RripPolicy::onFill(std::uint32_t set, std::uint32_t way)
{
    std::uint8_t v;
    if (insertionFor(set) == Insertion::SRRIP) {
        v = kMaxRrpv - 1;
    } else {
        v = brripLongInsert() ? kMaxRrpv - 1 : kMaxRrpv;
    }
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] = v;
}

void
RripPolicy::onInvalidate(std::uint32_t set, std::uint32_t way)
{
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] = kMaxRrpv;
}

std::uint32_t
RripPolicy::victimWay(std::uint32_t set, const WayMask &mask)
{
    if (mask.empty()) panic("RripPolicy::victimWay: empty way mask");
    JUMANJI_ASSERT(!(mask & WayMask::all(ways_)).empty(),
                   "way mask selects no way of this bank");
    std::size_t base = static_cast<std::size_t>(set) * ways_;
    // Visit only the allowed ways, in ascending order, via the mask
    // bits — identical victim choice to a full way scan.
    const std::uint64_t allowed = mask.bits() & WayMask::all(ways_).bits();
    for (;;) {
        for (std::uint64_t bits = allowed; bits != 0; bits &= bits - 1) {
            auto w = static_cast<std::uint32_t>(std::countr_zero(bits));
            if (rrpv_[base + w] == kMaxRrpv) return w;
        }
        // Age only the allowed ways: partitions must not disturb each
        // other's replacement state through aging.
        for (std::uint64_t bits = allowed; bits != 0; bits &= bits - 1) {
            auto w = static_cast<std::uint32_t>(std::countr_zero(bits));
            if (rrpv_[base + w] < kMaxRrpv) rrpv_[base + w]++;
        }
    }
}

// -------------------------------------------------------------- DRRIP

DrripPolicy::DrripPolicy(std::uint32_t sets, std::uint32_t ways,
                         std::uint32_t leaderSetsPerPolicy,
                         std::uint64_t seed)
    : RripPolicy(sets, ways, Insertion::SRRIP, seed),
      sets_(sets)
{
    // Leader sets are spread through the index space with a fixed
    // stride: set k*stride leads SRRIP, set k*stride + stride/2 leads
    // BRRIP. With few sets every set may lead.
    std::uint32_t leaders = std::max(1u, leaderSetsPerPolicy);
    leaderStride_ = std::max(2u, sets / leaders);
}

bool
DrripPolicy::isSrripLeader(std::uint32_t set) const
{
    return set % leaderStride_ == 0;
}

bool
DrripPolicy::isBrripLeader(std::uint32_t set) const
{
    return set % leaderStride_ == leaderStride_ / 2;
}

RripPolicy::Insertion
DrripPolicy::insertionFor(std::uint32_t set)
{
    if (isSrripLeader(set)) return Insertion::SRRIP;
    if (isBrripLeader(set)) return Insertion::BRRIP;
    return psel_ >= 0 ? Insertion::SRRIP : Insertion::BRRIP;
}

void
DrripPolicy::onFill(std::uint32_t set, std::uint32_t way)
{
    // A fill is (one-to-one) a miss; misses in leader sets vote
    // against their policy. The single PSEL is shared bank-wide,
    // across partitions: the Fig. 12 leakage channel.
    if (isSrripLeader(set)) {
        if (psel_ > kPselMin) psel_--;
    } else if (isBrripLeader(set)) {
        if (psel_ < kPselMax) psel_++;
    }
    JUMANJI_INVARIANT(psel_ >= kPselMin && psel_ <= kPselMax,
                      "PSEL escaped its saturation range");
    RripPolicy::onFill(set, way);
}

} // namespace jumanji
