#include "src/cache/cache_array.hh"

#include <bit>

#include "src/sim/check.hh"
#include "src/sim/logging.hh"

namespace jumanji {

namespace {

/** Mixes line address bits so consecutive lines spread across sets. */
std::uint64_t
mixBits(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

CacheArray::CacheArray(std::uint32_t sets, std::uint32_t ways,
                       ReplKind repl, std::uint64_t seed)
    : sets_(sets),
      ways_(ways),
      tags_(static_cast<std::size_t>(sets) * ways, 0),
      validBits_(sets, 0),
      owners_(static_cast<std::size_t>(sets) * ways),
      repl_(ReplPolicy::create(repl, sets, ways, seed)),
      fullMask_(WayMask::all(ways))
{
    if (sets == 0 || (sets & (sets - 1)) != 0)
        fatal("CacheArray: sets must be a nonzero power of two");
    if (ways == 0 || ways > 64)
        fatal("CacheArray: ways must be in [1, 64]");
}

std::uint32_t
CacheArray::setIndex(LineAddr line) const
{
    return static_cast<std::uint32_t>(mixBits(line) & (sets_ - 1));
}

void
CacheArray::accountFill(const AccessOwner &owner)
{
    JUMANJI_ASSERT(validCount_ < numLines(),
                   "fill would exceed array capacity");
    validCount_++;
    appOccupancy_[owner.app]++;
    vcOccupancy_[owner.vc]++;
    std::uint64_t &perVm = vmApps_[owner.vm][owner.app];
    if (perVm == 0) vmAppTotal_++;
    perVm++;
}

void
CacheArray::accountDrop(const AccessOwner &owner)
{
    JUMANJI_ASSERT(validCount_ > 0, "drop from an empty array");
    JUMANJI_ASSERT(appOccupancy_[owner.app] > 0,
                   "app occupancy underflow");
    JUMANJI_ASSERT(vcOccupancy_[owner.vc] > 0,
                   "VC occupancy underflow");
    validCount_--;
    appOccupancy_[owner.app]--;
    vcOccupancy_[owner.vc]--;
    if (auto *apps = vmApps_.lookup(owner.vm)) {
        auto *count = apps->lookup(owner.app);
        if (count != nullptr && --*count == 0) {
            apps->erase(owner.app);
            vmAppTotal_--;
        }
    }
}

void
CacheArray::checkOccupancyInvariant() const
{
#if JUMANJI_CHECKS_ACTIVE
    std::uint64_t valid = 0;
    SmallIdMap<AppId, std::uint64_t> byApp;
    SmallIdMap<VcId, std::uint64_t> byVc;
    for (std::uint32_t s = 0; s < sets_; s++) {
        for (std::uint64_t bits = validBits_[s]; bits != 0;
             bits &= bits - 1) {
            auto w = static_cast<std::uint32_t>(std::countr_zero(bits));
            const AccessOwner &o =
                owners_[static_cast<std::size_t>(s) * ways_ + w];
            valid++;
            byApp[o.app]++;
            byVc[o.vc]++;
        }
    }
    JUMANJI_INVARIANT(valid == validCount_,
                      "validCount_ disagrees with the line array");
    for (const auto &[app, count] : byApp) {
        const std::uint64_t *have = appOccupancy_.lookup(app);
        JUMANJI_INVARIANT(have != nullptr && *have == count,
                          "per-app occupancy accounting drifted");
    }
    for (const auto &[vc, count] : byVc) {
        const std::uint64_t *have = vcOccupancy_.lookup(vc);
        JUMANJI_INVARIANT(have != nullptr && *have == count,
                          "per-VC occupancy accounting drifted");
    }
    std::uint64_t appSum = 0, vcSum = 0;
    for (const auto &[app, count] : appOccupancy_) appSum += count;
    for (const auto &[vc, count] : vcOccupancy_) vcSum += count;
    JUMANJI_INVARIANT(appSum == validCount_ && vcSum == validCount_,
                      "occupancy sums disagree with validCount_");
    std::size_t vmAppPairs = 0;
    for (const auto &[vm, apps] : vmApps_) {
        (void)vm;
        vmAppPairs += apps.size();
    }
    JUMANJI_INVARIANT(vmAppPairs == vmAppTotal_,
                      "vulnerability tally disagrees with vmApps_");
#endif
}

ArrayAccessResult
CacheArray::access(LineAddr line, const AccessOwner &owner)
{
    ArrayAccessResult result;
    std::uint32_t set = setIndex(line);
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    const LineAddr *tagRow = tags_.data() + base;

    // Lookup: CAT semantics, hits may land in any way. Scanning valid
    // ways in ascending order via the bitmask matches the original
    // way-by-way walk.
    for (std::uint64_t bits = validBits_[set]; bits != 0;
         bits &= bits - 1) {
        auto w = static_cast<std::uint32_t>(std::countr_zero(bits));
        if (tagRow[w] == line) {
            repl_->onHit(set, w);
            result.hit = true;
            return result;
        }
    }

    // Miss: fill within the owner's way mask (resolved once).
    const WayMask &mask = *maskFor(owner.vc);
    if (mask.empty()) {
        // No fill rights: treat as an uncached access (still a miss).
        return result;
    }

    // Prefer the lowest invalid allowed way (one bit-scan).
    std::uint32_t victim;
    std::uint64_t invalidAllowed = mask.bits() & ~validBits_[set] &
                                   fullMask_.bits();
    if (invalidAllowed != 0)
        victim = static_cast<std::uint32_t>(
            std::countr_zero(invalidAllowed));
    else
        victim = repl_->victimWay(set, mask);
    JUMANJI_ASSERT(victim < ways_, "victim way out of range");
    JUMANJI_ASSERT(mask.contains(victim),
                   "replacement chose a victim outside the way mask");

    AccessOwner &vOwner = owners_[base + victim];
    if (validBits_[set] & (1ull << victim)) {
        result.evicted = true;
        result.evictedOwner = vOwner;
        result.evictedLine = tagRow[victim];
        accountDrop(vOwner);
    }
    tags_[base + victim] = line;
    validBits_[set] |= 1ull << victim;
    vOwner = owner;
    accountFill(owner);
    repl_->onFill(set, victim);
    return result;
}

bool
CacheArray::insert(LineAddr line, const AccessOwner &owner)
{
    std::uint32_t set = setIndex(line);
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    const LineAddr *tagRow = tags_.data() + base;
    for (std::uint64_t bits = validBits_[set]; bits != 0;
         bits &= bits - 1) {
        auto w = static_cast<std::uint32_t>(std::countr_zero(bits));
        if (tagRow[w] == line) return true;
    }
    const WayMask &mask = *maskFor(owner.vc);
    if (mask.empty()) return false;

    std::uint32_t victim;
    std::uint64_t invalidAllowed = mask.bits() & ~validBits_[set] &
                                   fullMask_.bits();
    if (invalidAllowed != 0)
        victim = static_cast<std::uint32_t>(
            std::countr_zero(invalidAllowed));
    else
        victim = repl_->victimWay(set, mask);
    JUMANJI_ASSERT(victim < ways_ && mask.contains(victim),
                   "migration fill outside the way mask");

    AccessOwner &vOwner = owners_[base + victim];
    if (validBits_[set] & (1ull << victim)) accountDrop(vOwner);
    tags_[base + victim] = line;
    validBits_[set] |= 1ull << victim;
    vOwner = owner;
    accountFill(owner);
    repl_->onFill(set, victim);
    return true;
}

bool
CacheArray::contains(LineAddr line) const
{
    std::uint32_t set = setIndex(line);
    const LineAddr *tagRow =
        tags_.data() + static_cast<std::size_t>(set) * ways_;
    for (std::uint64_t bits = validBits_[set]; bits != 0;
         bits &= bits - 1) {
        auto w = static_cast<std::uint32_t>(std::countr_zero(bits));
        if (tagRow[w] == line) return true;
    }
    return false;
}

void
CacheArray::setWayMask(VcId vc, const WayMask &mask)
{
    masks_[vc] = mask;
}

WayMask
CacheArray::wayMaskFor(VcId vc) const
{
    return *maskFor(vc);
}

void
CacheArray::clearWayMasks()
{
    masks_.clear();
}

std::uint64_t
CacheArray::invalidateVc(VcId vc)
{
    return invalidateIf([vc](LineAddr, const AccessOwner &o) {
        return o.vc == vc;
    });
}

std::uint64_t
CacheArray::invalidateAll()
{
    return invalidateIf([](LineAddr, const AccessOwner &) { return true; });
}

std::uint64_t
CacheArray::occupancyOfApp(AppId app) const
{
    const std::uint64_t *p = appOccupancy_.lookup(app);
    return p == nullptr ? 0 : *p;
}

std::uint64_t
CacheArray::occupancyOfVc(VcId vc) const
{
    const std::uint64_t *p = vcOccupancy_.lookup(vc);
    return p == nullptr ? 0 : *p;
}

std::uint32_t
CacheArray::appsFromOtherVms(VmId exceptVm) const
{
    // vmAppTotal_ tracks the distinct (vm, app) pairs with >0 lines,
    // so the per-access vulnerability probe is a subtraction instead
    // of a walk over every VM's app set.
    std::size_t own = 0;
    if (const auto *apps = vmApps_.lookup(exceptVm)) own = apps->size();
    return static_cast<std::uint32_t>(vmAppTotal_ - own);
}

} // namespace jumanji
