#include "src/cache/cache_array.hh"

#include "src/sim/check.hh"
#include "src/sim/logging.hh"

namespace jumanji {

namespace {

/** Mixes line address bits so consecutive lines spread across sets. */
std::uint64_t
mixBits(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

CacheArray::CacheArray(std::uint32_t sets, std::uint32_t ways,
                       ReplKind repl, std::uint64_t seed)
    : sets_(sets),
      ways_(ways),
      lines_(static_cast<std::size_t>(sets) * ways),
      repl_(ReplPolicy::create(repl, sets, ways, seed))
{
    if (sets == 0 || (sets & (sets - 1)) != 0)
        fatal("CacheArray: sets must be a nonzero power of two");
    if (ways == 0 || ways > 64)
        fatal("CacheArray: ways must be in [1, 64]");
}

std::uint32_t
CacheArray::setIndex(LineAddr line) const
{
    return static_cast<std::uint32_t>(mixBits(line) & (sets_ - 1));
}

CacheArray::Line &
CacheArray::lineAt(std::uint32_t set, std::uint32_t way)
{
    return lines_[static_cast<std::size_t>(set) * ways_ + way];
}

const CacheArray::Line &
CacheArray::lineAt(std::uint32_t set, std::uint32_t way) const
{
    return lines_[static_cast<std::size_t>(set) * ways_ + way];
}

void
CacheArray::accountFill(const AccessOwner &owner)
{
    JUMANJI_ASSERT(validCount_ < numLines(),
                   "fill would exceed array capacity");
    validCount_++;
    appOccupancy_[owner.app]++;
    vcOccupancy_[owner.vc]++;
    vmApps_[owner.vm][owner.app]++;
}

void
CacheArray::accountDrop(const AccessOwner &owner)
{
    JUMANJI_ASSERT(validCount_ > 0, "drop from an empty array");
    JUMANJI_ASSERT(appOccupancy_[owner.app] > 0,
                   "app occupancy underflow");
    JUMANJI_ASSERT(vcOccupancy_[owner.vc] > 0,
                   "VC occupancy underflow");
    validCount_--;
    appOccupancy_[owner.app]--;
    vcOccupancy_[owner.vc]--;
    auto vmIt = vmApps_.find(owner.vm);
    if (vmIt != vmApps_.end()) {
        auto appIt = vmIt->second.find(owner.app);
        if (appIt != vmIt->second.end() && --appIt->second == 0)
            vmIt->second.erase(appIt);
    }
}

void
CacheArray::checkOccupancyInvariant() const
{
#if JUMANJI_CHECKS_ACTIVE
    std::uint64_t valid = 0;
    std::map<AppId, std::uint64_t> byApp;
    std::map<VcId, std::uint64_t> byVc;
    for (const Line &l : lines_) {
        if (!l.valid) continue;
        valid++;
        byApp[l.owner.app]++;
        byVc[l.owner.vc]++;
    }
    JUMANJI_INVARIANT(valid == validCount_,
                      "validCount_ disagrees with the line array");
    for (const auto &[app, count] : byApp) {
        auto it = appOccupancy_.find(app);
        JUMANJI_INVARIANT(it != appOccupancy_.end() &&
                              it->second == count,
                          "per-app occupancy accounting drifted");
    }
    for (const auto &[vc, count] : byVc) {
        auto it = vcOccupancy_.find(vc);
        JUMANJI_INVARIANT(it != vcOccupancy_.end() && it->second == count,
                          "per-VC occupancy accounting drifted");
    }
    std::uint64_t appSum = 0, vcSum = 0;
    for (const auto &[app, count] : appOccupancy_) appSum += count;
    for (const auto &[vc, count] : vcOccupancy_) vcSum += count;
    JUMANJI_INVARIANT(appSum == validCount_ && vcSum == validCount_,
                      "occupancy sums disagree with validCount_");
#endif
}

ArrayAccessResult
CacheArray::access(LineAddr line, const AccessOwner &owner)
{
    ArrayAccessResult result;
    std::uint32_t set = setIndex(line);

    // Lookup: CAT semantics, hits may land in any way.
    for (std::uint32_t w = 0; w < ways_; w++) {
        Line &l = lineAt(set, w);
        if (l.valid && l.tag == line) {
            repl_->onHit(set, w);
            result.hit = true;
            return result;
        }
    }

    // Miss: fill within the owner's way mask.
    WayMask mask = wayMaskFor(owner.vc);
    if (mask.empty()) {
        // No fill rights: treat as an uncached access (still a miss).
        return result;
    }

    // Prefer an invalid allowed way.
    std::uint32_t victim = ways_;
    for (std::uint32_t w = 0; w < ways_; w++) {
        if (mask.contains(w) && !lineAt(set, w).valid) {
            victim = w;
            break;
        }
    }
    if (victim == ways_)
        victim = repl_->victimWay(set, mask);
    JUMANJI_ASSERT(victim < ways_, "victim way out of range");
    JUMANJI_ASSERT(mask.contains(victim),
                   "replacement chose a victim outside the way mask");

    Line &v = lineAt(set, victim);
    if (v.valid) {
        result.evicted = true;
        result.evictedOwner = v.owner;
        result.evictedLine = v.tag;
        accountDrop(v.owner);
    }
    v.tag = line;
    v.valid = true;
    v.owner = owner;
    accountFill(owner);
    repl_->onFill(set, victim);
    return result;
}

bool
CacheArray::insert(LineAddr line, const AccessOwner &owner)
{
    std::uint32_t set = setIndex(line);
    for (std::uint32_t w = 0; w < ways_; w++) {
        Line &l = lineAt(set, w);
        if (l.valid && l.tag == line) return true;
    }
    WayMask mask = wayMaskFor(owner.vc);
    if (mask.empty()) return false;

    std::uint32_t victim = ways_;
    for (std::uint32_t w = 0; w < ways_; w++) {
        if (mask.contains(w) && !lineAt(set, w).valid) {
            victim = w;
            break;
        }
    }
    if (victim == ways_) victim = repl_->victimWay(set, mask);
    JUMANJI_ASSERT(victim < ways_ && mask.contains(victim),
                   "migration fill outside the way mask");

    Line &v = lineAt(set, victim);
    if (v.valid) accountDrop(v.owner);
    v.tag = line;
    v.valid = true;
    v.owner = owner;
    accountFill(owner);
    repl_->onFill(set, victim);
    return true;
}

bool
CacheArray::contains(LineAddr line) const
{
    std::uint32_t set = setIndex(line);
    for (std::uint32_t w = 0; w < ways_; w++) {
        const Line &l = lineAt(set, w);
        if (l.valid && l.tag == line) return true;
    }
    return false;
}

void
CacheArray::setWayMask(VcId vc, const WayMask &mask)
{
    masks_[vc] = mask;
}

WayMask
CacheArray::wayMaskFor(VcId vc) const
{
    auto it = masks_.find(vc);
    if (it != masks_.end()) return it->second;
    return WayMask::all(ways_);
}

void
CacheArray::clearWayMasks()
{
    masks_.clear();
}

std::uint64_t
CacheArray::invalidateIf(
    const std::function<bool(LineAddr, const AccessOwner &)> &pred)
{
    std::uint64_t dropped = 0;
    for (std::uint32_t s = 0; s < sets_; s++) {
        for (std::uint32_t w = 0; w < ways_; w++) {
            Line &l = lineAt(s, w);
            if (l.valid && pred(l.tag, l.owner)) {
                accountDrop(l.owner);
                l.valid = false;
                repl_->onInvalidate(s, w);
                dropped++;
            }
        }
    }
    checkOccupancyInvariant();
    return dropped;
}

std::uint64_t
CacheArray::invalidateVc(VcId vc)
{
    return invalidateIf([vc](LineAddr, const AccessOwner &o) {
        return o.vc == vc;
    });
}

std::uint64_t
CacheArray::invalidateAll()
{
    return invalidateIf([](LineAddr, const AccessOwner &) { return true; });
}

std::uint64_t
CacheArray::occupancyOfApp(AppId app) const
{
    auto it = appOccupancy_.find(app);
    return it == appOccupancy_.end() ? 0 : it->second;
}

std::uint64_t
CacheArray::occupancyOfVc(VcId vc) const
{
    auto it = vcOccupancy_.find(vc);
    return it == vcOccupancy_.end() ? 0 : it->second;
}

std::uint32_t
CacheArray::appsFromOtherVms(VmId exceptVm) const
{
    std::uint32_t count = 0;
    for (const auto &[vm, apps] : vmApps_) {
        if (vm == exceptVm) continue;
        count += static_cast<std::uint32_t>(apps.size());
    }
    return count;
}

} // namespace jumanji
