/**
 * @file
 * One LLC bank: a CacheArray plus timing — fixed access latency and a
 * limited number of ports modelled as busy-until times.
 *
 * Port queueing is a real timing channel (the Fig. 11 port attack):
 * when two agents access the same bank concurrently, the later one
 * waits, and that wait is observable in its access latency.
 */

#ifndef JUMANJI_CACHE_CACHE_BANK_HH
#define JUMANJI_CACHE_CACHE_BANK_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/cache/cache_array.hh"
#include "src/sim/types.hh"

namespace jumanji {

class StatRegistry;

/** Timing parameters for a bank. */
struct BankTimingParams
{
    /** Cycles from port grant to data (Table II: 13). */
    Tick accessLatency = 13;
    /** Number of ports; each serves one access per occupancy window. */
    std::uint32_t ports = 1;
    /** Cycles a port stays busy per access (pipelined banks: 1). */
    Tick portOccupancy = 1;
};

/** Timing + hit outcome of a bank access. */
struct BankAccessResult
{
    bool hit = false;
    /** Cycles spent queueing for a port. */
    Tick queueDelay = 0;
    /** Total bank cycles: queue + access latency. */
    Tick latency = 0;
    bool evicted = false;
    AccessOwner evictedOwner;
};

/**
 * An LLC bank with timing. The array is exposed for partition-mask
 * installation and occupancy queries.
 */
class CacheBank
{
  public:
    CacheBank(BankId id, std::uint32_t sets, std::uint32_t ways,
              ReplKind repl, const BankTimingParams &timing,
              std::uint64_t seed);

    BankId id() const { return id_; }
    CacheArray &array() { return array_; }
    const CacheArray &constArray() const { return array_; }

    /**
     * Performs a timed access arriving at the bank at tick @p now.
     */
    BankAccessResult access(Tick now, LineAddr line,
                            const AccessOwner &owner);

    std::uint64_t totalAccesses() const { return accesses_; }
    std::uint64_t totalHits() const { return hits_; }
    std::uint64_t totalQueueCycles() const { return queueCycles_; }

    /** Registers this bank's stats under @p prefix ("llc.bank07."). */
    void registerStats(StatRegistry &reg, const std::string &prefix);

  private:
    /** Returns the grant time for an access arriving at @p now. */
    Tick acquirePort(Tick now);

    BankId id_;
    CacheArray array_;
    BankTimingParams timing_;
    /** Busy-until time per port. */
    std::vector<Tick> portBusyUntil_;

    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t queueCycles_ = 0;
};

} // namespace jumanji

#endif // JUMANJI_CACHE_CACHE_BANK_HH
