/**
 * @file
 * Replacement policies for set-associative cache arrays.
 *
 * LRU, SRRIP, BRRIP, and DRRIP (SRRIP/BRRIP chosen dynamically via
 * set-dueling) are provided. DRRIP's set-dueling PSEL counter is
 * shared per bank across all partitions, which is exactly the
 * performance-leakage channel the paper demonstrates in Fig. 12:
 * co-running applications steer the duel and thereby change the
 * policy a partitioned victim experiences.
 */

#ifndef JUMANJI_CACHE_REPLACEMENT_HH
#define JUMANJI_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/way_mask.hh"

namespace jumanji {

/** Replacement policy selector. */
enum class ReplKind
{
    LRU,
    SRRIP,
    BRRIP,
    DRRIP,
};

/** Returns a printable policy name. */
const char *replKindName(ReplKind kind);

/**
 * Abstract replacement policy over one cache array.
 *
 * The policy owns per-line metadata indexed by (set * ways + way).
 * The array calls onHit/onFill on every access and victimWay to pick
 * a victim among the ways allowed by the partition's mask.
 */
class ReplPolicy
{
  public:
    virtual ~ReplPolicy() = default;

    /** A line in (set, way) was hit. */
    virtual void onHit(std::uint32_t set, std::uint32_t way) = 0;

    /** A new line was filled into (set, way). */
    virtual void onFill(std::uint32_t set, std::uint32_t way) = 0;

    /** A line in (set, way) was invalidated. */
    virtual void onInvalidate(std::uint32_t set, std::uint32_t way) = 0;

    /**
     * Picks the victim way in @p set among ways allowed by @p mask.
     * Invalid ways are preferred by the caller before this runs, so
     * the policy may assume all allowed ways hold valid lines.
     *
     * @pre !mask.empty()
     */
    virtual std::uint32_t victimWay(std::uint32_t set,
                                    const WayMask &mask) = 0;

    /** Factory. @p seed feeds any stochastic policy (BRRIP). */
    static std::unique_ptr<ReplPolicy> create(ReplKind kind,
                                              std::uint32_t sets,
                                              std::uint32_t ways,
                                              std::uint64_t seed);
};

/** True LRU via a global access counter per line. */
class LruPolicy : public ReplPolicy
{
  public:
    LruPolicy(std::uint32_t sets, std::uint32_t ways);

    void onHit(std::uint32_t set, std::uint32_t way) override;
    void onFill(std::uint32_t set, std::uint32_t way) override;
    void onInvalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victimWay(std::uint32_t set, const WayMask &mask) override;

  private:
    void touch(std::uint32_t set, std::uint32_t way);

    std::uint32_t ways_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> lastUse_;
};

/**
 * RRIP family. With 2-bit RRPVs: hit promotes to 0; SRRIP inserts at
 * RRPV=2 ("long"); BRRIP inserts at 3 ("distant") except with
 * probability 1/32 at 2. The victim is the first allowed way at
 * RRPV=3, aging allowed ways until one appears.
 */
class RripPolicy : public ReplPolicy
{
  public:
    /** Insertion behaviour for a fill. */
    enum class Insertion
    {
        SRRIP,
        BRRIP,
    };

    RripPolicy(std::uint32_t sets, std::uint32_t ways, Insertion ins,
               std::uint64_t seed);

    void onHit(std::uint32_t set, std::uint32_t way) override;
    void onFill(std::uint32_t set, std::uint32_t way) override;
    void onInvalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victimWay(std::uint32_t set, const WayMask &mask) override;

  protected:
    /** Insertion policy used for a fill in @p set; DRRIP overrides. */
    virtual Insertion insertionFor(std::uint32_t set);

    static constexpr std::uint8_t kMaxRrpv = 3;

    std::uint32_t ways_;
    Insertion insertion_;
    std::uint64_t lfsr_;
    std::vector<std::uint8_t> rrpv_;

  private:
    bool brripLongInsert();
};

/**
 * DRRIP: set-dueling between SRRIP and BRRIP.
 *
 * A fixed pseudo-random subset of sets lead for SRRIP, another for
 * BRRIP; misses (fills) in leader sets move a single shared PSEL
 * counter, and follower sets use whichever leader is winning. The
 * PSEL counter is shared by every partition in the bank.
 */
class DrripPolicy : public RripPolicy
{
  public:
    DrripPolicy(std::uint32_t sets, std::uint32_t ways,
                std::uint32_t leaderSetsPerPolicy, std::uint64_t seed);

    void onFill(std::uint32_t set, std::uint32_t way) override;

    /** Current PSEL value (test/inspection hook). */
    std::int32_t psel() const { return psel_; }

    /** True if @p set is an SRRIP (resp. BRRIP) leader. */
    bool isSrripLeader(std::uint32_t set) const;
    bool isBrripLeader(std::uint32_t set) const;

  protected:
    Insertion insertionFor(std::uint32_t set) override;

  private:
    static constexpr std::int32_t kPselMax = 511;
    static constexpr std::int32_t kPselMin = -512;

    std::uint32_t sets_;
    std::uint32_t leaderStride_;
    std::int32_t psel_ = 0;
};

} // namespace jumanji

#endif // JUMANJI_CACHE_REPLACEMENT_HH
