#include "src/cache/cache_bank.hh"

#include "src/sim/check.hh"
#include "src/sim/statreg.hh"

namespace jumanji {

void
CacheBank::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + "accesses", "accesses arriving at this bank",
                   &accesses_);
    reg.addCounter(prefix + "hits", "hits in this bank", &hits_);
    reg.addFormula(prefix + "misses", "accesses - hits", [this] {
        return static_cast<double>(accesses_ - hits_);
    });
    reg.addCounter(prefix + "queueCycles",
                   "cycles spent queueing for a bank port",
                   &queueCycles_);
    reg.addGauge(prefix + "occupancy", "valid lines in this bank",
                 [this] {
                     return static_cast<double>(array_.validLines());
                 });
}

CacheBank::CacheBank(BankId id, std::uint32_t sets, std::uint32_t ways,
                     ReplKind repl, const BankTimingParams &timing,
                     std::uint64_t seed)
    : id_(id),
      array_(sets, ways, repl, seed),
      timing_(timing),
      portBusyUntil_(std::max(1u, timing.ports), 0)
{
}

Tick
CacheBank::acquirePort(Tick now)
{
    // Grab the earliest-free port; an access arriving while all ports
    // are busy queues until one frees.
    auto it = std::min_element(portBusyUntil_.begin(), portBusyUntil_.end());
    Tick grant = std::max(now, *it);
    *it = grant + timing_.portOccupancy;
    return grant;
}

BankAccessResult
CacheBank::access(Tick now, LineAddr line, const AccessOwner &owner)
{
    checkSetBank(id_);
    BankAccessResult result;
    Tick grant = acquirePort(now);
    JUMANJI_ASSERT(grant >= now, "port granted before arrival");
    result.queueDelay = grant - now;

    ArrayAccessResult arr = array_.access(line, owner);
    JUMANJI_ASSERT(!(arr.hit && arr.evicted),
                   "a hit must never evict a line");
    result.hit = arr.hit;
    result.evicted = arr.evicted;
    result.evictedOwner = arr.evictedOwner;
    result.latency = result.queueDelay + timing_.accessLatency;

    accesses_++;
    if (arr.hit) hits_++;
    JUMANJI_INVARIANT(hits_ <= accesses_, "hit count exceeds accesses");
    queueCycles_ += result.queueDelay;
    return result;
}

} // namespace jumanji
