/**
 * @file
 * A set-associative cache array with CAT-style way-partitioning.
 *
 * Lines are tagged with the application, virtual cache (VC), and
 * trust domain (VM) that own them, so higher layers can account for
 * per-VC occupancy, run the coherence walk on reconfiguration, and
 * compute the security vulnerability metric.
 */

#ifndef JUMANJI_CACHE_CACHE_ARRAY_HH
#define JUMANJI_CACHE_CACHE_ARRAY_HH

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/replacement.hh"
#include "src/cache/way_mask.hh"
#include "src/sim/flat_map.hh"
#include "src/sim/types.hh"

namespace jumanji {

/** Identity of a cached line's owner, carried on every access. */
struct AccessOwner
{
    AppId app = kInvalidApp;
    VcId vc = kInvalidVc;
    VmId vm = kInvalidVm;
    /** LC traffic gets reserved memory bandwidth (Heracles-style). */
    bool latencyCritical = false;
};

/** Result of one array access. */
struct ArrayAccessResult
{
    bool hit = false;
    /** Valid line was evicted to make room (never true on a hit). */
    bool evicted = false;
    /** Owner of the evicted line, if any. */
    AccessOwner evictedOwner;
    LineAddr evictedLine = 0;
};

/**
 * The tag/data array of one cache (an LLC bank, or a private cache).
 *
 * Partitioning follows Intel CAT semantics: an access may *hit* in
 * any way, but fills choose victims only within the accessor's way
 * mask. When a VC has no mask installed, the fallback mask (all ways)
 * applies.
 */
class CacheArray
{
  public:
    /**
     * @param sets Number of sets (power of two).
     * @param ways Associativity (<= 64).
     * @param repl Replacement policy kind.
     * @param seed Seed for stochastic replacement state.
     */
    CacheArray(std::uint32_t sets, std::uint32_t ways, ReplKind repl,
               std::uint64_t seed);

    std::uint32_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }
    std::uint64_t numLines() const
    {
        return static_cast<std::uint64_t>(sets_) * ways_;
    }

    /**
     * Performs an access: on miss, fills the line, evicting within
     * the owner VC's way mask.
     */
    ArrayAccessResult access(LineAddr line, const AccessOwner &owner);

    /**
     * Inserts @p line without hit/miss semantics (no-op if already
     * present): used by the reconfiguration walk to migrate lines
     * between banks. Fills within the owner's way mask; silently
     * drops the line if the mask is empty.
     *
     * @return true if the line is resident afterwards.
     */
    bool insert(LineAddr line, const AccessOwner &owner);

    /** Looks up @p line without side effects. */
    bool contains(LineAddr line) const;

    /** Installs the way mask for @p vc; empty() removes fill rights. */
    void setWayMask(VcId vc, const WayMask &mask);

    /** Returns the installed mask for @p vc, or the full mask. */
    WayMask wayMaskFor(VcId vc) const;

    /**
     * Hot-path variant: a pointer to the installed mask for @p vc, or
     * to the array-wide full mask. Resolved once per access so the
     * fill path pays one dense lookup, not one per candidate way.
     * Invalidated by setWayMask/clearWayMasks.
     */
    const WayMask *maskFor(VcId vc) const
    {
        const WayMask *m = masks_.lookup(vc);
        return m != nullptr ? m : &fullMask_;
    }

    /** Removes all per-VC masks (back to fully shared). */
    void clearWayMasks();

    /**
     * Invalidates every line for which @p pred returns true; used by
     * the reconfiguration coherence walk. Templated on the predicate
     * so the walk — which visits every valid line in the array —
     * calls it directly instead of through a std::function.
     *
     * @return Number of lines invalidated.
     */
    template <typename Pred>
    std::uint64_t invalidateIf(Pred &&pred)
    {
        std::uint64_t dropped = 0;
        for (std::uint32_t s = 0; s < sets_; s++) {
            const std::size_t base =
                static_cast<std::size_t>(s) * ways_;
            for (std::uint64_t bits = validBits_[s]; bits != 0;
                 bits &= bits - 1) {
                auto w = static_cast<std::uint32_t>(
                    std::countr_zero(bits));
                const AccessOwner &o = owners_[base + w];
                if (pred(tags_[base + w], o)) {
                    accountDrop(o);
                    validBits_[s] &= ~(1ull << w);
                    repl_->onInvalidate(s, w);
                    dropped++;
                }
            }
        }
        checkOccupancyInvariant();
        return dropped;
    }

    /** Invalidates all lines owned by @p vc. @return lines dropped. */
    std::uint64_t invalidateVc(VcId vc);

    /** Invalidates the whole array (VM swap-in flush). */
    std::uint64_t invalidateAll();

    /** Lines currently valid for @p app (occupancy accounting). */
    std::uint64_t occupancyOfApp(AppId app) const;

    /** Lines currently valid for @p vc. */
    std::uint64_t occupancyOfVc(VcId vc) const;

    /** Distinct apps, excluding @p exceptVm's, with >=1 valid line. */
    std::uint32_t appsFromOtherVms(VmId exceptVm) const;

    /** Total valid lines. */
    std::uint64_t validLines() const { return validCount_; }

    /** Test hook: the replacement policy instance. */
    ReplPolicy &replacement() { return *repl_; }

  private:
    std::uint32_t setIndex(LineAddr line) const;

    void accountFill(const AccessOwner &owner);
    void accountDrop(const AccessOwner &owner);

    /**
     * Recomputes occupancy from the line array and checks it against
     * the incremental accounting (sum over apps == sum over VCs ==
     * validCount_ == valid lines). Debug builds call this after bulk
     * mutations; it is O(lines), so not per-access.
     */
    void checkOccupancyInvariant() const;

    std::uint32_t sets_;
    std::uint32_t ways_;
    // Structure-of-arrays line storage. The hit scan is the hottest
    // loop in the simulator, so tags live in their own compact array
    // (8 B/way instead of a ~32 B Line struct) and validity is one
    // bitmask word per set, which also turns the invalid-victim
    // search into a single bit-scan. Owners are only touched on
    // fill/evict, never on the hit path.
    std::vector<LineAddr> tags_;
    std::vector<std::uint64_t> validBits_;
    std::vector<AccessOwner> owners_;
    std::unique_ptr<ReplPolicy> repl_;
    // Dense id-indexed maps throughout: these sit on the per-access
    // path (mask resolution, occupancy accounting, the vulnerability
    // metric), and they iterate in ascending-id order, so stats and
    // placement output is as deterministic as the std::map originals.
    SmallIdMap<VcId, WayMask> masks_;
    /** Fallback fill rights when no mask is installed (all ways). */
    WayMask fullMask_;

    std::uint64_t validCount_ = 0;
    SmallIdMap<AppId, std::uint64_t> appOccupancy_;
    SmallIdMap<VcId, std::uint64_t> vcOccupancy_;
    /** Per-VM set of apps with >0 lines: vm -> (app -> count). */
    SmallIdMap<VmId, SmallIdMap<AppId, std::uint64_t>> vmApps_;
    /** Distinct (vm, app) pairs with >0 lines, summed over all VMs. */
    std::size_t vmAppTotal_ = 0;
};

} // namespace jumanji

#endif // JUMANJI_CACHE_CACHE_ARRAY_HH
