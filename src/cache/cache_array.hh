/**
 * @file
 * A set-associative cache array with CAT-style way-partitioning.
 *
 * Lines are tagged with the application, virtual cache (VC), and
 * trust domain (VM) that own them, so higher layers can account for
 * per-VC occupancy, run the coherence walk on reconfiguration, and
 * compute the security vulnerability metric.
 */

#ifndef JUMANJI_CACHE_CACHE_ARRAY_HH
#define JUMANJI_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/cache/replacement.hh"
#include "src/cache/way_mask.hh"
#include "src/sim/types.hh"

namespace jumanji {

/** Identity of a cached line's owner, carried on every access. */
struct AccessOwner
{
    AppId app = kInvalidApp;
    VcId vc = kInvalidVc;
    VmId vm = kInvalidVm;
    /** LC traffic gets reserved memory bandwidth (Heracles-style). */
    bool latencyCritical = false;
};

/** Result of one array access. */
struct ArrayAccessResult
{
    bool hit = false;
    /** Valid line was evicted to make room (never true on a hit). */
    bool evicted = false;
    /** Owner of the evicted line, if any. */
    AccessOwner evictedOwner;
    LineAddr evictedLine = 0;
};

/**
 * The tag/data array of one cache (an LLC bank, or a private cache).
 *
 * Partitioning follows Intel CAT semantics: an access may *hit* in
 * any way, but fills choose victims only within the accessor's way
 * mask. When a VC has no mask installed, the fallback mask (all ways)
 * applies.
 */
class CacheArray
{
  public:
    /**
     * @param sets Number of sets (power of two).
     * @param ways Associativity (<= 64).
     * @param repl Replacement policy kind.
     * @param seed Seed for stochastic replacement state.
     */
    CacheArray(std::uint32_t sets, std::uint32_t ways, ReplKind repl,
               std::uint64_t seed);

    std::uint32_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }
    std::uint64_t numLines() const
    {
        return static_cast<std::uint64_t>(sets_) * ways_;
    }

    /**
     * Performs an access: on miss, fills the line, evicting within
     * the owner VC's way mask.
     */
    ArrayAccessResult access(LineAddr line, const AccessOwner &owner);

    /**
     * Inserts @p line without hit/miss semantics (no-op if already
     * present): used by the reconfiguration walk to migrate lines
     * between banks. Fills within the owner's way mask; silently
     * drops the line if the mask is empty.
     *
     * @return true if the line is resident afterwards.
     */
    bool insert(LineAddr line, const AccessOwner &owner);

    /** Looks up @p line without side effects. */
    bool contains(LineAddr line) const;

    /** Installs the way mask for @p vc; empty() removes fill rights. */
    void setWayMask(VcId vc, const WayMask &mask);

    /** Returns the installed mask for @p vc, or the full mask. */
    WayMask wayMaskFor(VcId vc) const;

    /** Removes all per-VC masks (back to fully shared). */
    void clearWayMasks();

    /**
     * Invalidates every line for which @p pred returns true; used by
     * the reconfiguration coherence walk.
     *
     * @return Number of lines invalidated.
     */
    std::uint64_t invalidateIf(
        const std::function<bool(LineAddr, const AccessOwner &)> &pred);

    /** Invalidates all lines owned by @p vc. @return lines dropped. */
    std::uint64_t invalidateVc(VcId vc);

    /** Invalidates the whole array (VM swap-in flush). */
    std::uint64_t invalidateAll();

    /** Lines currently valid for @p app (occupancy accounting). */
    std::uint64_t occupancyOfApp(AppId app) const;

    /** Lines currently valid for @p vc. */
    std::uint64_t occupancyOfVc(VcId vc) const;

    /** Distinct apps, excluding @p exceptVm's, with >=1 valid line. */
    std::uint32_t appsFromOtherVms(VmId exceptVm) const;

    /** Total valid lines. */
    std::uint64_t validLines() const { return validCount_; }

    /** Test hook: the replacement policy instance. */
    ReplPolicy &replacement() { return *repl_; }

  private:
    struct Line
    {
        LineAddr tag = 0;
        bool valid = false;
        AccessOwner owner;
    };

    std::uint32_t setIndex(LineAddr line) const;
    Line &lineAt(std::uint32_t set, std::uint32_t way);
    const Line &lineAt(std::uint32_t set, std::uint32_t way) const;

    void accountFill(const AccessOwner &owner);
    void accountDrop(const AccessOwner &owner);

    /**
     * Recomputes occupancy from the line array and checks it against
     * the incremental accounting (sum over apps == sum over VCs ==
     * validCount_ == valid lines). Debug builds call this after bulk
     * mutations; it is O(lines), so not per-access.
     */
    void checkOccupancyInvariant() const;

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<Line> lines_;
    std::unique_ptr<ReplPolicy> repl_;
    // Ordered maps throughout: occupancy/mask state is iterated for
    // stats reporting and placement decisions, and unordered-map
    // iteration order would make that output nondeterministic.
    std::map<VcId, WayMask> masks_;

    std::uint64_t validCount_ = 0;
    std::map<AppId, std::uint64_t> appOccupancy_;
    std::map<VcId, std::uint64_t> vcOccupancy_;
    /** Per-VM set of apps with >0 lines: vm -> (app -> count). */
    std::map<VmId, std::map<AppId, std::uint64_t>> vmApps_;
};

} // namespace jumanji

#endif // JUMANJI_CACHE_CACHE_ARRAY_HH
