/**
 * @file
 * Way masks for Intel CAT-style way-partitioning.
 *
 * A partition's mask selects the ways it may fill into. Lookups hit in
 * any way (as with CAT); only fills/victims are restricted. Banks are
 * at most 64-way, so a mask fits in one word.
 */

#ifndef JUMANJI_CACHE_WAY_MASK_HH
#define JUMANJI_CACHE_WAY_MASK_HH

#include <cstdint>
#include <string>

namespace jumanji {

/** A set of ways within one cache bank. */
class WayMask
{
  public:
    WayMask() = default;
    explicit WayMask(std::uint64_t bits) : bits_(bits) {}

    /** Mask covering ways [first, first+count). */
    static WayMask
    range(std::uint32_t first, std::uint32_t count)
    {
        if (count == 0) return WayMask(0);
        if (count >= 64) return WayMask(~0ull << first);
        return WayMask(((1ull << count) - 1) << first);
    }

    /** Mask covering all @p ways ways. */
    static WayMask
    all(std::uint32_t ways)
    {
        return range(0, ways);
    }

    bool contains(std::uint32_t way) const { return (bits_ >> way) & 1; }
    bool empty() const { return bits_ == 0; }
    std::uint32_t count() const { return __builtin_popcountll(bits_); }
    std::uint64_t bits() const { return bits_; }

    WayMask
    operator|(const WayMask &o) const
    {
        return WayMask(bits_ | o.bits_);
    }

    WayMask
    operator&(const WayMask &o) const
    {
        return WayMask(bits_ & o.bits_);
    }

    bool operator==(const WayMask &o) const { return bits_ == o.bits_; }

    /** Human-readable bit string (way 0 leftmost), for debugging. */
    std::string toString(std::uint32_t ways) const;

  private:
    std::uint64_t bits_ = 0;
};

} // namespace jumanji

#endif // JUMANJI_CACHE_WAY_MASK_HH
