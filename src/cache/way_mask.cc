#include "src/cache/way_mask.hh"

namespace jumanji {

std::string
WayMask::toString(std::uint32_t ways) const
{
    std::string s;
    s.reserve(ways);
    for (std::uint32_t w = 0; w < ways; w++)
        s.push_back(contains(w) ? '1' : '0');
    return s;
}

} // namespace jumanji
