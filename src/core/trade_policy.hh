/**
 * @file
 * JumanjiTradePolicy: the more sophisticated placement algorithm the
 * paper built and then *rejected* (Sec. V-D, Sec. VIII-C).
 *
 * After the standard JumanjiPlacer runs, this policy attempts trades
 * between latency-critical and batch allocations within each VM:
 * a batch application may buy capacity in a bank close to its core
 * from a latency-critical reservation, paying with *more* capacity
 * in a bank further away — latency-critical applications must never
 * be penalized, so they are always compensated at a premium.
 *
 * The paper reports that under this constraint "trades were very
 * rare and yielded little speedup", which is why Jumanji ships with
 * the simple greedy LatCritPlacer. This implementation exists to
 * reproduce that negative result (bench/ablation_design_choices).
 */

#ifndef JUMANJI_CORE_TRADE_POLICY_HH
#define JUMANJI_CORE_TRADE_POLICY_HH

#include <cstdint>

#include "src/core/policies.hh"

namespace jumanji {

/** Tuning for the trade pass. */
struct TradeParams
{
    /** Lines of compensation per line taken from an LC reservation. */
    double compensation = 1.25;
    /** Trade unit, in ways' worth of lines. */
    std::uint32_t unitWays = 1;
    /** Max trades attempted per reconfiguration. */
    std::uint32_t maxTrades = 16;
};

/**
 * Jumanji + the post-placement trading pass.
 */
class JumanjiTradePolicy : public LlcPolicy
{
  public:
    explicit JumanjiTradePolicy(const TradeParams &params = {});

    const char *name() const override { return "Jumanji-Trade"; }
    PlacementPlan reconfigure(const EpochInputs &in) override;

    /** Trades accepted across all reconfigurations (the paper's
     *  observation: this stays near zero). */
    std::uint64_t tradesAccepted() const { return accepted_; }

    /** Trades considered across all reconfigurations. */
    std::uint64_t tradesConsidered() const { return considered_; }

  private:
    /** Runs the trade pass over @p matrix. @return trades applied. */
    std::uint32_t tradePass(AllocationMatrix &matrix,
                            const EpochInputs &in);

    JumanjiPolicy base_;
    TradeParams params_;
    std::uint64_t accepted_ = 0;
    std::uint64_t considered_ = 0;
};

} // namespace jumanji

#endif // JUMANJI_CORE_TRADE_POLICY_HH
