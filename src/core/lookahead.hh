/**
 * @file
 * Lookahead capacity allocation (UCP [69]) and Jumanji's
 * bank-granular variant (Sec. VI-D).
 *
 * Lookahead divides a capacity budget among miss curves by repeatedly
 * granting the allocation step with the highest marginal utility
 * (misses saved per line). On convex curves this greedy is optimal;
 * curves are convex-hulled upstream.
 *
 * JumanjiLookahead additionally rounds each VM's total allocation
 * (batch + latency-critical) to a whole number of banks so that VMs
 * never share a bank.
 */

#ifndef JUMANJI_CORE_LOOKAHEAD_HH
#define JUMANJI_CORE_LOOKAHEAD_HH

#include <cstdint>
#include <vector>

#include "src/core/placement_types.hh"
#include "src/dnuca/miss_curve.hh"

namespace jumanji {

/** One claimant in a lookahead allocation. */
struct LookaheadClaim
{
    /** Opaque id returned with the result (VC id or VM id). */
    std::int32_t id = 0;
    /** Miss curve (x-axis: UMON buckets of linesPerBucket lines). */
    MissCurve curve;
    /** Lines already granted (counted against the budget). */
    std::uint64_t floorLines = 0;
};

/** Allocation result, same order as the input claims. */
struct LookaheadResult
{
    std::vector<std::uint64_t> lines;
};

/**
 * Classic UCP lookahead.
 *
 * @param claims Claimants with curves and pre-granted floors.
 * @param budgetLines Total lines to distribute (includes floors).
 * @param geo Geometry (bucket size, step granularity).
 * @param stepLines Allocation quantum; 0 uses one way's worth.
 *        Coarser quanta trade a little allocation precision for
 *        epoch-to-epoch stability (fewer coherence-walk moves when
 *        miss curves wobble).
 */
LookaheadResult lookahead(const std::vector<LookaheadClaim> &claims,
                          std::uint64_t budgetLines,
                          const PlacementGeometry &geo,
                          std::uint64_t stepLines = 0);

/**
 * Jumanji's variant: per-VM totals are rounded to whole banks.
 *
 * @param claims One claim per VM (combined batch curve); floorLines
 *        holds the VM's latency-critical allocation.
 * @param budgetLines Total lines to distribute (includes floors).
 * @return Per-VM *total* lines (floor + batch), each a multiple of
 *         geo.linesPerBank, summing to budgetLines (which must be a
 *         bank multiple).
 */
LookaheadResult jumanjiLookahead(const std::vector<LookaheadClaim> &claims,
                                 std::uint64_t budgetLines,
                                 const PlacementGeometry &geo);

} // namespace jumanji

#endif // JUMANJI_CORE_LOOKAHEAD_HH
