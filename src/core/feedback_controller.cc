#include "src/core/feedback_controller.hh"

#include <algorithm>
#include <cmath>

#include "src/sim/check.hh"
#include "src/sim/logging.hh"

namespace jumanji {

FeedbackController::FeedbackController(const ControllerParams &params,
                                       double deadline,
                                       std::uint64_t initialLines,
                                       std::uint64_t panicLines,
                                       std::uint64_t minLines,
                                       std::uint64_t maxLines)
    : params_(params),
      deadline_(deadline),
      targetLines_(initialLines),
      panicLines_(panicLines),
      minLines_(minLines),
      maxLines_(maxLines)
{
    if (deadline <= 0.0)
        fatal("FeedbackController: deadline must be positive");
    if (minLines > maxLines)
        fatal("FeedbackController: minLines > maxLines");
    targetLines_ = std::clamp(targetLines_, minLines_, maxLines_);
}

bool
FeedbackController::requestCompleted(double latencyCycles)
{
    JUMANJI_ASSERT(latencyCycles >= 0.0 &&
                       std::isfinite(latencyCycles),
                   "request latency must be finite and nonnegative");
    window_.add(latencyCycles);
    if (window_.count() <= params_.configurationInterval) return false;

    double tail = window_.percentile(params_.percentile);
    update(tail);
    window_.clear();
    return true;
}

void
FeedbackController::update(double tail)
{
    lastTail_ = tail;
    double target = static_cast<double>(targetLines_);

    if (tail > params_.panicFrac * deadline_) {
        // Even short queueing spikes set the tail, so panic jumps
        // straight to a known-safe allocation. If the panic size is
        // already insufficient, keep growing from where we are.
        target = std::max(target * (1.0 + params_.stepFrac),
                          static_cast<double>(panicLines_));
        panics_++;
    } else if (tail > params_.highFrac * deadline_) {
        target *= 1.0 + params_.stepFrac;
    } else if (tail < params_.lowFrac * deadline_) {
        target *= 1.0 - params_.stepFrac;
    }

    targetLines_ = std::clamp(
        static_cast<std::uint64_t>(std::llround(target)), minLines_,
        maxLines_);
    JUMANJI_INVARIANT(targetLines_ >= minLines_ &&
                          targetLines_ <= maxLines_,
                      "controller target escaped its clamp range");
}

} // namespace jumanji
