/**
 * @file
 * Shared types for the placement layer: per-epoch policy inputs, the
 * allocation matrix (lines per (bank, VC)), and conversion of an
 * allocation matrix into installable placement descriptors and
 * per-bank way masks.
 */

#ifndef JUMANJI_CORE_PLACEMENT_TYPES_HH
#define JUMANJI_CORE_PLACEMENT_TYPES_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/cache/way_mask.hh"
#include "src/dnuca/miss_curve.hh"
#include "src/dnuca/vtb.hh"
#include "src/sim/types.hh"

namespace jumanji {

/** Per-VC input to a placement policy, refreshed every epoch. */
struct VcInfo
{
    VcId vc = kInvalidVc;
    AppId app = kInvalidApp;
    VmId vm = kInvalidVm;
    /** Tile hosting the owning thread. */
    std::uint32_t coreTile = 0;
    bool latencyCritical = false;
    /**
     * Miss curve over the whole LLC at UMON-bucket granularity,
     * already convex-hulled (the DRRIP approximation, Sec. IV-A).
     */
    MissCurve curve;
    /** Feedback-controller target (lines); LC apps only. */
    std::uint64_t targetLines = 0;
    std::string name;
};

/** LLC geometry as the placement layer sees it. */
struct PlacementGeometry
{
    std::uint32_t banks = 20;
    std::uint32_t waysPerBank = 32;
    std::uint64_t linesPerBank = 16384;
    /** UMON-bucket size in lines (curve x-axis unit). */
    std::uint64_t linesPerBucket = 5120;

    std::uint64_t totalLines() const { return linesPerBank * banks; }
    std::uint64_t
    linesPerWay() const
    {
        return linesPerBank / waysPerBank;
    }
};

/**
 * Lines allocated to each VC in each bank:
 * alloc[bank][vc] = lines. Sparse per bank.
 */
class AllocationMatrix
{
  public:
    explicit AllocationMatrix(std::uint32_t banks) : perBank_(banks) {}

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(perBank_.size());
    }

    void add(BankId bank, VcId vc, std::uint64_t lines);

    /** Removes up to @p lines; clamps at zero. @return removed. */
    std::uint64_t remove(BankId bank, VcId vc, std::uint64_t lines);

    std::uint64_t get(BankId bank, VcId vc) const;

    /** Total lines allocated in @p bank. */
    std::uint64_t bankTotal(BankId bank) const;

    /** Total lines allocated to @p vc across banks. */
    std::uint64_t vcTotal(VcId vc) const;

    /** All VCs with allocation in @p bank, id-sorted. */
    std::vector<VcId> vcsInBank(BankId bank) const;

    /** All banks where @p vc has allocation, id-sorted. */
    std::vector<BankId> banksOfVc(VcId vc) const;

    /** Distinct VMs (via @p vmOf) with allocation in @p bank. */
    std::vector<VmId>
    vmsInBank(BankId bank,
              const std::map<VcId, VmId> &vmOf) const;

    const std::map<VcId, std::uint64_t> &
    bank(BankId b) const
    {
        return perBank_[static_cast<std::size_t>(b)];
    }

  private:
    std::vector<std::map<VcId, std::uint64_t>> perBank_;
};

/** Installable result of a reconfiguration. */
struct PlacementPlan
{
    /** Descriptor per VC. */
    std::map<VcId, PlacementDescriptor> descriptors;
    /** Way masks per VC: masks[vc][bank]. */
    std::map<VcId, std::vector<WayMask>> wayMasks;
    /** The matrix the plan was derived from (reporting/tests). */
    AllocationMatrix matrix{0};
};

/**
 * Converts an allocation matrix into descriptors + way masks.
 *
 * Ways in each bank are handed out proportionally to VCs' line
 * allocations (largest remainder, each nonzero VC >= 1 way), as
 * contiguous CAT-style ranges in VC-id order. Descriptor slots are
 * filled proportionally to the VC's per-bank lines.
 *
 * @param sharedGroups When non-null, each inner vector is a set of
 *        VCs sharing one unified partition per bank (Adaptive's
 *        unpartitioned batch pool is one group; VM-Part makes one
 *        group per VM). Group members receive identical way masks
 *        covering the group's combined allocation.
 */
PlacementPlan materializePlan(const AllocationMatrix &matrix,
                              const PlacementGeometry &geo,
                              const std::vector<std::vector<VcId>>
                                  *sharedGroups = nullptr);

} // namespace jumanji

#endif // JUMANJI_CORE_PLACEMENT_TYPES_HH
