#include "src/core/lookahead.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "src/sim/logging.hh"

namespace jumanji {

namespace {

/** Misses a claim suffers at an allocation of @p lines. */
double
missesAt(const LookaheadClaim &claim, std::uint64_t lines,
         const PlacementGeometry &geo)
{
    double buckets = static_cast<double>(lines) /
                     static_cast<double>(geo.linesPerBucket);
    return claim.curve.interpolate(buckets);
}

} // namespace

LookaheadResult
lookahead(const std::vector<LookaheadClaim> &claims,
          std::uint64_t budgetLines, const PlacementGeometry &geo,
          std::uint64_t stepLines)
{
    LookaheadResult result;
    result.lines.resize(claims.size(), 0);
    if (claims.empty()) return result;

    // Start every claim at its floor.
    std::uint64_t used = 0;
    for (std::size_t i = 0; i < claims.size(); i++) {
        result.lines[i] = claims[i].floorLines;
        used += claims[i].floorLines;
    }
    if (used > budgetLines) {
        // Floors exceed the budget (e.g., panic boosts under
        // pressure): grant the floors and nothing more.
        return result;
    }

    // Greedy marginal utility, one quantum at a time.
    std::uint64_t step = stepLines > 0
                             ? stepLines
                             : std::max<std::uint64_t>(
                                   1, geo.linesPerWay());

    struct Head
    {
        double utility;
        std::uint64_t allocated;
        std::size_t idx;

        // Max-heap by utility; ties go to the smallest current
        // allocation (then lowest index), so flat/empty curves —
        // e.g. the cold first epoch — spread capacity evenly
        // instead of piling it onto one claimant.
        bool
        operator<(const Head &o) const
        {
            if (utility != o.utility) return utility < o.utility;
            if (allocated != o.allocated) return allocated > o.allocated;
            return idx > o.idx;
        }
    };

    auto utilityOf = [&](std::size_t i) {
        std::uint64_t cur = result.lines[i];
        return missesAt(claims[i], cur, geo) -
               missesAt(claims[i], cur + step, geo);
    };

    std::priority_queue<Head> heap;
    for (std::size_t i = 0; i < claims.size(); i++)
        heap.push(Head{utilityOf(i), result.lines[i], i});

    while (used + step <= budgetLines && !heap.empty()) {
        Head h = heap.top();
        heap.pop();
        // Utilities go stale as allocations grow; re-validate lazily.
        double fresh = utilityOf(h.idx);
        if (fresh + 1e-12 < h.utility && !heap.empty() &&
            fresh < heap.top().utility) {
            heap.push(Head{fresh, result.lines[h.idx], h.idx});
            continue;
        }
        if (result.lines[h.idx] + step > geo.totalLines()) continue;
        result.lines[h.idx] += step;
        used += step;
        heap.push(Head{utilityOf(h.idx), result.lines[h.idx], h.idx});
    }

    // Distribute any residual (sub-step) lines to the claim with the
    // highest remaining utility so the full budget is assigned.
    if (used < budgetLines && !heap.empty()) {
        std::size_t best = heap.top().idx;
        result.lines[best] += budgetLines - used;
    }
    return result;
}

LookaheadResult
jumanjiLookahead(const std::vector<LookaheadClaim> &claims,
                 std::uint64_t budgetLines, const PlacementGeometry &geo)
{
    if (budgetLines % geo.linesPerBank != 0)
        panic("jumanjiLookahead: budget must be a whole number of banks");

    // Ideal (unrounded) totals from plain lookahead.
    LookaheadResult ideal = lookahead(claims, budgetLines, geo);

    std::uint64_t bankLines = geo.linesPerBank;
    auto totalBanks =
        static_cast<std::uint32_t>(budgetLines / bankLines);

    // Round each VM's total to banks by largest remainder, with a
    // floor of ceil(floorLines / bankLines) banks so latency-critical
    // reservations always fit inside the VM's banks.
    struct Item
    {
        std::size_t idx;
        std::uint32_t banks;
        std::uint32_t minBanks;
        double remainder;
    };
    std::vector<Item> items;
    std::uint32_t used = 0;
    for (std::size_t i = 0; i < claims.size(); i++) {
        double idealBanks = static_cast<double>(ideal.lines[i]) /
                            static_cast<double>(bankLines);
        auto whole = static_cast<std::uint32_t>(idealBanks);
        // Every VM owns at least one bank (its apps need somewhere
        // to cache), and enough banks to cover its LC floor.
        auto minBanks = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   (claims[i].floorLines + bankLines - 1) / bankLines));
        whole = std::max(whole, minBanks);
        items.push_back(Item{i, whole, minBanks,
                             idealBanks - std::floor(idealBanks)});
        used += whole;
    }

    std::stable_sort(items.begin(), items.end(),
                     [](const Item &a, const Item &b) {
                         return a.remainder > b.remainder;
                     });
    std::size_t cursor = 0;
    while (used < totalBanks && !items.empty()) {
        items[cursor % items.size()].banks++;
        used++;
        cursor++;
    }
    // Trim overshoot (from minBanks floors) off the VMs with the
    // smallest remainders, respecting each VM's floor.
    cursor = items.size();
    std::size_t stuck = 0;
    while (used > totalBanks && stuck < items.size()) {
        Item &item = items[--cursor % items.size()];
        if (cursor == 0) cursor = items.size();
        if (item.banks > item.minBanks) {
            item.banks--;
            used--;
            stuck = 0;
        } else {
            stuck++;
        }
    }
    if (used > totalBanks)
        warn("jumanjiLookahead: VM floors exceed the bank budget");

    LookaheadResult result;
    result.lines.resize(claims.size(), 0);
    for (const auto &item : items)
        result.lines[item.idx] =
            static_cast<std::uint64_t>(item.banks) * bankLines;
    return result;
}

} // namespace jumanji
