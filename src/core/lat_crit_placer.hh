/**
 * @file
 * LatCritPlacer (paper Listing 2): greedily reserves each
 * latency-critical application's feedback-controlled allocation in
 * the LLC banks closest to its core, so batch applications cannot
 * claim that space.
 */

#ifndef JUMANJI_CORE_LAT_CRIT_PLACER_HH
#define JUMANJI_CORE_LAT_CRIT_PLACER_HH

#include <cstdint>
#include <vector>

#include "src/core/placement_types.hh"
#include "src/noc/mesh.hh"

namespace jumanji {

/**
 * Places latency-critical allocations.
 *
 * @param latCritVcs VCs with latencyCritical == true, each carrying
 *        its feedback-controller targetLines.
 * @param bankBalance In/out: free lines per bank; claimed capacity
 *        is subtracted.
 * @param mesh NoC topology for bank distance ordering.
 * @param geo LLC geometry.
 * @param isolateVms When true (Jumanji), an LC app skips banks
 *        already holding another VM's latency-critical data, so bank
 *        isolation is never violated by this stage.
 * @param[out] matrix Receives the allocations.
 */
void latCritPlacer(const std::vector<VcInfo> &latCritVcs,
                   std::vector<std::uint64_t> &bankBalance,
                   const MeshTopology &mesh,
                   const PlacementGeometry &geo, bool isolateVms,
                   AllocationMatrix &matrix);

} // namespace jumanji

#endif // JUMANJI_CORE_LAT_CRIT_PLACER_HH
