/**
 * @file
 * Jigsaw's data-placement stage [6, 8]: given per-VC capacity
 * allocations, place each VC's capacity into LLC banks close to the
 * accessing core to minimize on-chip data movement.
 *
 * VCs claim space in distance order from their core, interleaved by
 * access intensity so that hot VCs get first pick of nearby banks —
 * a faithful, deterministic rendering of Jigsaw's greedy placement.
 */

#ifndef JUMANJI_CORE_JIGSAW_PLACER_HH
#define JUMANJI_CORE_JIGSAW_PLACER_HH

#include <cstdint>
#include <vector>

#include "src/core/placement_types.hh"
#include "src/noc/mesh.hh"

namespace jumanji {

/** One VC's capacity to be placed. */
struct PlacementRequest
{
    VcId vc = kInvalidVc;
    std::uint32_t coreTile = 0;
    std::uint64_t lines = 0;
    /** LLC accesses per cycle; hotter VCs pick banks first. */
    double intensity = 0.0;
};

/**
 * Places capacities into banks.
 *
 * @param requests VCs with their capacity grants.
 * @param bankBalance In/out free lines per bank; only banks listed
 *        in @p allowedBanks are touched (empty = all banks allowed).
 * @param allowedBanks Restricts placement (a VM's banks in Jumanji).
 * @param mesh Topology for distance ordering.
 * @param[out] matrix Receives allocations.
 */
void jigsawPlacer(const std::vector<PlacementRequest> &requests,
                  std::vector<std::uint64_t> &bankBalance,
                  const std::vector<BankId> &allowedBanks,
                  const MeshTopology &mesh, AllocationMatrix &matrix);

} // namespace jumanji

#endif // JUMANJI_CORE_JIGSAW_PLACER_HH
