#include "src/core/runtime_driver.hh"

#include "src/sim/check.hh"
#include "src/sim/logging.hh"
#include "src/sim/profiler.hh"
#include "src/sim/statreg.hh"
#include "src/sim/tracing.hh"

namespace jumanji {

RuntimeDriver::RuntimeDriver(std::unique_ptr<LlcPolicy> policy,
                             MemPath *path, MemPath *idealBatchPath,
                             const PlacementGeometry &geo, Tick epochTicks)
    : policy_(std::move(policy)),
      path_(path),
      idealBatchPath_(idealBatchPath),
      geo_(geo),
      epochTicks_(epochTicks)
{
    if (!policy_) fatal("RuntimeDriver: policy must be non-null");
    if (path_ == nullptr) fatal("RuntimeDriver: path must be non-null");
    if (policy_->wantsIdealBatchLlc() && idealBatchPath_ == nullptr)
        fatal("RuntimeDriver: Ideal Batch policy needs a second LLC");
    if (epochTicks_ == 0) fatal("RuntimeDriver: epoch must be nonzero");
}

void
RuntimeDriver::registerApp(const RuntimeAppInfo &info,
                           const ControllerParams &params, double deadline)
{
    JUMANJI_ASSERT(info.vc != kInvalidVc && info.app != kInvalidApp,
                   "app registration with invalid ids");
    for (const auto &app : apps_)
        JUMANJI_ASSERT(app.vc != info.vc, "VC registered twice");
    apps_.push_back(info);
    path_->registerVc(info.vc);
    if (idealBatchPath_ != nullptr) idealBatchPath_->registerVc(info.vc);

    if (info.latencyCritical) {
        std::uint64_t total = geo_.totalLines();
        // The paper's panic size: one-eighth of the LLC; start each
        // LC app at the panic size so early epochs are safe.
        std::uint64_t panic = total / 8;
        // Cap each LC app at a quarter of the LLC so that several
        // panicked controllers cannot jointly demand more capacity
        // than exists.
        // Floor at 1/32 of the LLC: S-NUCA designs get an implicit
        // floor of one way in every bank from CAT quantization; the
        // D-NUCA controller gets the same so it cannot ride its
        // allocation over the thrash cliff between epochs (Fig. 4b's
        // Jumanji allocations never drop near zero either).
        std::uint64_t minLines =
            std::max<std::uint64_t>(geo_.linesPerWay(), total / 32);
        controllers_[info.vc] = std::make_unique<FeedbackController>(
            params, deadline, panic, panic, minLines,
            /*maxLines=*/total / 4);
    }
}

void
RuntimeDriver::requestCompleted(VcId vc, double latencyCycles, Tick now)
{
    auto *slot = controllers_.lookup(vc);
    if (slot == nullptr)
        panic("RuntimeDriver::requestCompleted: not a controlled VC");
    FeedbackController &ctrl = **slot;
    if (latencyCycles > ctrl.deadline()) {
        JUMANJI_TRACE(
            tracer_,
            instant(tracePid_ + Tracer::kCoresPid, appTile(vc),
                    "deadlineViolation", now,
                    {{"vc", static_cast<double>(vc)},
                     {"latencyCycles", latencyCycles},
                     {"deadline", ctrl.deadline()}}));
    }
    ctrl.requestCompleted(latencyCycles);
}

void
RuntimeDriver::setTracer(Tracer *tracer, std::uint32_t basePid)
{
    tracer_ = tracer;
    tracePid_ = basePid;
    // Cached track names point into the previous tracer's interned
    // storage; re-intern lazily against the new one.
    allocTrackNames_.clear();
}

void
RuntimeDriver::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + "reconfigurations",
                   "placement epochs executed", &reconfigs_);
    reg.addCounter(prefix + "coherenceInvalidations",
                   "lines moved by coherence walks across all epochs",
                   &invalidations_);
    for (const auto &app : apps_) {
        VcId vc = app.vc;
        std::string p =
            prefix + "vc" +
            statIndexName(static_cast<std::uint64_t>(vc)) + ".";
        reg.addGauge(p + "allocLines",
                     "lines installed at the last reconfiguration",
                     [this, vc] {
                         const std::uint64_t *lines = lastAlloc_.lookup(vc);
                         return lines == nullptr
                                    ? 0.0
                                    : static_cast<double>(*lines);
                     });
        if (auto *ctrl = controller(vc)) {
            reg.addGauge(p + "targetLines",
                         "feedback-controller capacity target",
                         [ctrl] {
                             return static_cast<double>(
                                 ctrl->targetLines());
                         });
            reg.addGauge(p + "deadline",
                         "tail-latency deadline in cycles",
                         [ctrl] { return ctrl->deadline(); });
        }
    }
}

void
RuntimeDriver::migrateApp(VcId vc, std::uint32_t newTile)
{
    for (auto &app : apps_) {
        if (app.vc == vc) {
            app.coreTile = newTile;
            return;
        }
    }
    panic("RuntimeDriver::migrateApp: unknown VC");
}

std::uint32_t
RuntimeDriver::appTile(VcId vc) const
{
    for (const auto &app : apps_)
        if (app.vc == vc) return app.coreTile;
    panic("RuntimeDriver::appTile: unknown VC");
}

FeedbackController *
RuntimeDriver::controller(VcId vc)
{
    auto *slot = controllers_.lookup(vc);
    return slot == nullptr ? nullptr : slot->get();
}

void
RuntimeDriver::setDeadline(VcId vc, double deadline)
{
    auto *slot = controllers_.lookup(vc);
    if (slot == nullptr)
        panic("RuntimeDriver::setDeadline: not a controlled VC");
    (*slot)->setDeadline(deadline);
}

EpochInputs
RuntimeDriver::gatherInputs()
{
    EpochInputs in;
    in.geo = geo_;
    in.mesh = &path_->mesh();

    for (const auto &app : apps_) {
        VcInfo vc;
        vc.vc = app.vc;
        vc.app = app.app;
        vc.vm = app.vm;
        vc.coreTile = app.coreTile;
        vc.latencyCritical = app.latencyCritical;
        vc.name = app.name;

        // UMON curve, convex-hulled: the DRRIP approximation
        // (Sec. IV-A). Batch VCs on the ideal path use its UMONs.
        MemPath *source = path_;
        if (idealBatchPath_ != nullptr && !app.latencyCritical)
            source = idealBatchPath_;
        Umon &umon = source->umon(app.vc);
        vc.curve = hullCurves_ ? umon.missCurve().convexHull()
                               : umon.missCurve();

        // Rate-normalize batch curves (see RuntimeAppInfo).
        if (rateNormalize_ && !app.latencyCritical &&
            app.nominalAccessesPerCycle > 0.0 &&
            umon.accesses() > 0) {
            double nominal = app.nominalAccessesPerCycle *
                             static_cast<double>(epochTicks_);
            double factor = nominal /
                            static_cast<double>(umon.accesses());
            if (factor > 1.0) vc.curve = vc.curve.scaled(factor);
        }

        if (app.latencyCritical) {
            if (fixedLcTarget_ > 0) {
                vc.targetLines = fixedLcTarget_;
            } else {
                auto *slot = controllers_.lookup(app.vc);
                if (slot == nullptr)
                    panic("RuntimeDriver: LC app without controller");
                vc.targetLines = (*slot)->targetLines();

                // Installation deadband: relocating an LC reservation
                // invalidates its hottest lines (the coherence walk),
                // which at our compressed epoch length costs a
                // meaningful fraction of an epoch's accesses. Only
                // move the installed size for changes >= 15% — except
                // growth demands (missed deadlines), which always
                // apply immediately.
                const std::uint64_t *inst =
                    installedLcTarget_.lookup(app.vc);
                if (inst != nullptr && vc.targetLines < *inst) {
                    double rel = static_cast<double>(*inst -
                                                     vc.targetLines) /
                                 static_cast<double>(*inst);
                    if (rel < 0.15) vc.targetLines = *inst;
                }
                installedLcTarget_[app.vc] = vc.targetLines;
            }
        }
        in.vcs.push_back(std::move(vc));
    }
    return in;
}

void
RuntimeDriver::installPlan(const PlacementPlan &plan, Tick now)
{
    EpochRecord record;
    record.when = now;

    for (const auto &app : apps_) {
        auto descIt = plan.descriptors.find(app.vc);
        if (descIt == plan.descriptors.end()) {
            warn("RuntimeDriver: no placement for app " + app.name);
            continue;
        }

        MemPath *target = path_;
        if (idealBatchPath_ != nullptr && !app.latencyCritical)
            target = idealBatchPath_;

        // Way masks first: the placement walk migrates lines into
        // their new banks, and those fills must land inside the
        // VC's *new* partition, not the stale one.
        auto maskIt = plan.wayMasks.find(app.vc);
        if (maskIt != plan.wayMasks.end())
            target->installWayMasks(app.vc, maskIt->second);

        // Stabilize against the installed descriptor so that small
        // allocation changes move few hash slices (fewer coherence
        // invalidations).
        PlacementDescriptor desc = descIt->second;
        if (target->vtb().has(app.vc))
            desc = desc.stabilizedAgainst(
                target->vtb().descriptor(app.vc));

        record.invalidations += target->installPlacement(app.vc, desc);

        record.allocLines[app.vc] = plan.matrix.vcTotal(app.vc);
    }

    lastAlloc_ = record.allocLines;
    invalidations_ += record.invalidations;

#if !defined(JUMANJI_DISABLE_TRACING)
    if (tracer_ != nullptr) {
        tracer_->instant(
            tracePid_ + Tracer::kRuntimePid, 0, "repartition", now,
            {{"epoch", static_cast<double>(reconfigs_)},
             {"invalidations",
              static_cast<double>(record.invalidations)}});
        if (record.invalidations > 0) {
            tracer_->instant(tracePid_ + Tracer::kRuntimePid, 0,
                             "coherenceWalk", now,
                             {{"lines", static_cast<double>(
                                            record.invalidations)}});
        }
        for (const auto &[vc, lines] : record.allocLines) {
            const char *track = nullptr;
            if (const char *const *cached = allocTrackNames_.lookup(vc)) {
                track = *cached;
            } else {
                // Intern once per VC; the tracer owns pointer-stable
                // storage, so later epochs skip the interning lookup.
                track = tracer_->internName(
                    ("allocLines.vc" +
                     statIndexName(static_cast<std::uint64_t>(vc)))
                        .c_str());
                allocTrackNames_[vc] = track;
            }
            tracer_->counterInterned(tracePid_ + Tracer::kRuntimePid,
                                     track, now,
                                     static_cast<double>(lines));
        }
    }
#endif

    timeline_.push_back(std::move(record));
}

void
RuntimeDriver::reconfigureNow(Tick now)
{
    JUMANJI_PROF_SCOPE("sim.epoch.repartition");
    checkSetPhase("reconfigure");
    EpochInputs in = gatherInputs();
    PlacementPlan plan = policy_->reconfigure(in);
#if JUMANJI_CHECKS_ACTIVE
    // Every registered app with allocated lines must come out of the
    // policy with a descriptor and a full set of way masks; a missing
    // entry would silently leave the app on its stale placement.
    for (const auto &app : apps_) {
        if (plan.matrix.vcTotal(app.vc) == 0) continue;
        JUMANJI_INVARIANT(plan.descriptors.count(app.vc) == 1,
                          "allocated VC missing a descriptor");
        auto maskIt = plan.wayMasks.find(app.vc);
        JUMANJI_INVARIANT(maskIt != plan.wayMasks.end() &&
                              maskIt->second.size() == geo_.banks,
                          "allocated VC missing per-bank way masks");
    }
#endif
    installPlan(plan, now);
    reconfigs_++;
    checkSetPhase("simulate");

    // Age UMON counters so curves track the recent epochs while
    // keeping enough history to stay stable (see DESIGN.md).
    for (const auto &app : apps_) {
        MemPath *source = path_;
        if (idealBatchPath_ != nullptr && !app.latencyCritical)
            source = idealBatchPath_;
        source->umon(app.vc).decay(0.5);
    }
}

Tick
RuntimeDriver::resume(Tick now)
{
    reconfigureNow(now);
    return now + epochTicks_;
}

} // namespace jumanji
