#include "src/core/trade_policy.hh"

#include <algorithm>
#include <cmath>

#include "src/sim/logging.hh"

namespace jumanji {

JumanjiTradePolicy::JumanjiTradePolicy(const TradeParams &params)
    : base_(true),
      params_(params)
{
    if (params_.compensation < 1.0)
        fatal("JumanjiTradePolicy: compensation must be >= 1 "
              "(latency-critical apps may never be penalized)");
}

PlacementPlan
JumanjiTradePolicy::reconfigure(const EpochInputs &in)
{
    PlacementPlan plan = base_.reconfigure(in);
    AllocationMatrix matrix = plan.matrix;
    std::uint32_t applied = tradePass(matrix, in);
    if (applied == 0) return plan;
    // Re-materialize with the traded matrix. (Descriptors and masks
    // must reflect the new per-bank capacities.) Zero-capacity VCs
    // keep the base plan's fallback descriptors/masks, which the
    // re-materialization would otherwise drop.
    PlacementPlan traded = materializePlan(matrix, in.geo, nullptr);
    for (const auto &[vc, desc] : plan.descriptors)
        if (!traded.descriptors.count(vc)) traded.descriptors[vc] = desc;
    for (const auto &[vc, masks] : plan.wayMasks)
        if (!traded.wayMasks.count(vc)) traded.wayMasks[vc] = masks;
    return traded;
}

std::uint32_t
JumanjiTradePolicy::tradePass(AllocationMatrix &matrix,
                              const EpochInputs &in)
{
    const PlacementGeometry &geo = in.geo;
    const MeshTopology &mesh = *in.mesh;
    std::uint64_t unit = static_cast<std::uint64_t>(params_.unitWays) *
                         geo.linesPerWay();

    std::uint32_t applied = 0;
    for (const auto &batch : in.vcs) {
        if (batch.latencyCritical) continue;
        if (applied >= params_.maxTrades) break;

        for (const auto &lc : in.vcs) {
            if (!lc.latencyCritical || lc.vm != batch.vm) continue;

            // Candidate: a bank where the LC app holds capacity that
            // is *closer to the batch app's core* than some bank the
            // batch app currently occupies.
            for (BankId near : matrix.banksOfVc(lc.vc)) {
                considered_++;
                std::uint64_t lcHere = matrix.get(near, lc.vc);
                if (lcHere < unit) continue;

                // Find the batch app's furthest-occupied bank.
                BankId far = kInvalidBank;
                std::uint32_t farHops = 0;
                for (BankId b : matrix.banksOfVc(batch.vc)) {
                    std::uint32_t h = mesh.hops(
                        batch.coreTile, static_cast<std::uint32_t>(b));
                    if (far == kInvalidBank || h > farHops) {
                        far = b;
                        farHops = h;
                    }
                }
                if (far == kInvalidBank) continue;

                std::uint32_t nearHops = mesh.hops(
                    batch.coreTile, static_cast<std::uint32_t>(near));
                // The batch app must actually get closer, and it must
                // be able to afford the compensated price.
                if (nearHops >= farHops) continue;
                auto price = static_cast<std::uint64_t>(std::ceil(
                    static_cast<double>(unit) * params_.compensation));
                if (matrix.get(far, batch.vc) < price) continue;
                // The LC app must not move further from its own core.
                std::uint32_t lcNearHops = mesh.hops(
                    lc.coreTile, static_cast<std::uint32_t>(near));
                std::uint32_t lcFarHops = mesh.hops(
                    lc.coreTile, static_cast<std::uint32_t>(far));
                // Trade is acceptable only if the compensated
                // capacity offsets the distance increase: we require
                // the LC app's new bank to be at most one hop further
                // per 25% capacity premium.
                if (lcFarHops >
                    lcNearHops + static_cast<std::uint32_t>(
                                     (params_.compensation - 1.0) * 4))
                    continue;

                // Execute the swap: the batch app buys `unit` lines
                // in the near bank from the LC reservation, paying
                // `price` lines of its own capacity in the far bank.
                matrix.remove(near, lc.vc, unit);
                matrix.add(near, batch.vc, unit);
                matrix.remove(far, batch.vc, price);
                matrix.add(far, lc.vc, price);
                applied++;
                accepted_++;
                break;
            }
            if (applied >= params_.maxTrades) break;
        }
    }
    return applied;
}

} // namespace jumanji
