#include "src/core/jigsaw_placer.hh"

#include <algorithm>

#include "src/sim/logging.hh"

namespace jumanji {

void
jigsawPlacer(const std::vector<PlacementRequest> &requests,
             std::vector<std::uint64_t> &bankBalance,
             const std::vector<BankId> &allowedBanks,
             const MeshTopology &mesh, AllocationMatrix &matrix)
{
    auto banks = static_cast<std::uint32_t>(bankBalance.size());

    std::vector<bool> allowed(banks, allowedBanks.empty());
    for (BankId b : allowedBanks) {
        if (b >= 0 && static_cast<std::uint32_t>(b) < banks)
            allowed[static_cast<std::size_t>(b)] = true;
    }

    // Hot VCs pick first; ties broken by VC id for determinism.
    std::vector<PlacementRequest> order = requests;
    std::stable_sort(order.begin(), order.end(),
                     [](const PlacementRequest &a,
                        const PlacementRequest &b) {
                         if (a.intensity != b.intensity)
                             return a.intensity > b.intensity;
                         return a.vc < b.vc;
                     });

    // Round-based claiming: each round, every VC takes up to one
    // bank's worth from its nearest non-empty allowed bank. This
    // spreads proximity fairly instead of letting the first VC drain
    // all close banks (Jigsaw's placement has the same flavor).
    std::vector<std::uint64_t> remaining(order.size());
    std::vector<std::vector<std::uint32_t>> pref(order.size());
    for (std::size_t i = 0; i < order.size(); i++) {
        remaining[i] = order[i].lines;
        pref[i] = mesh.tilesByDistance(order[i].coreTile);
    }

    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t i = 0; i < order.size(); i++) {
            if (remaining[i] == 0) continue;
            for (std::uint32_t tile : pref[i]) {
                if (tile >= banks || !allowed[tile]) continue;
                std::uint64_t &balance = bankBalance[tile];
                if (balance == 0) continue;
                // Claim at most one bank per round per VC.
                std::uint64_t grab = std::min(balance, remaining[i]);
                matrix.add(static_cast<BankId>(tile), order[i].vc, grab);
                balance -= grab;
                remaining[i] -= grab;
                progress = true;
                break;
            }
        }
    }

    for (std::size_t i = 0; i < order.size(); i++) {
        if (remaining[i] > 0) {
            warn("jigsawPlacer: insufficient capacity for VC " +
                 std::to_string(order[i].vc) + " (short " +
                 std::to_string(remaining[i]) + " lines)");
        }
    }
}

} // namespace jumanji
