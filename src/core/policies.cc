#include "src/core/policies.hh"

#include <algorithm>
#include <map>

#include "src/core/jigsaw_placer.hh"
#include "src/core/lat_crit_placer.hh"
#include "src/core/lookahead.hh"
#include "src/sim/logging.hh"

namespace jumanji {

const char *
llcDesignName(LlcDesign design)
{
    switch (design) {
      case LlcDesign::Static: return "Static";
      case LlcDesign::Adaptive: return "Adaptive";
      case LlcDesign::VMPart: return "VM-Part";
      case LlcDesign::Jigsaw: return "Jigsaw";
      case LlcDesign::Jumanji: return "Jumanji";
      case LlcDesign::JumanjiInsecure: return "Jumanji-Insecure";
      case LlcDesign::JumanjiIdealBatch: return "Jumanji-IdealBatch";
    }
    return "?";
}

std::unique_ptr<LlcPolicy>
LlcPolicy::create(LlcDesign design)
{
    switch (design) {
      case LlcDesign::Static:
        return std::make_unique<StaticPolicy>();
      case LlcDesign::Adaptive:
        return std::make_unique<AdaptivePolicy>();
      case LlcDesign::VMPart:
        return std::make_unique<VmPartPolicy>();
      case LlcDesign::Jigsaw:
        return std::make_unique<JigsawPolicy>();
      case LlcDesign::Jumanji:
        return std::make_unique<JumanjiPolicy>(true);
      case LlcDesign::JumanjiInsecure:
        return std::make_unique<JumanjiPolicy>(false);
      case LlcDesign::JumanjiIdealBatch:
        return std::make_unique<JumanjiIdealBatchPolicy>();
    }
    panic("unknown LLC design");
}

namespace {

std::vector<VcInfo>
latCritOf(const EpochInputs &in)
{
    std::vector<VcInfo> lc;
    for (const auto &vc : in.vcs)
        if (vc.latencyCritical) lc.push_back(vc);
    return lc;
}

std::vector<VcInfo>
batchOf(const EpochInputs &in)
{
    std::vector<VcInfo> batch;
    for (const auto &vc : in.vcs)
        if (!vc.latencyCritical) batch.push_back(vc);
    return batch;
}

std::vector<VmId>
vmsOf(const EpochInputs &in)
{
    std::vector<VmId> vms;
    for (const auto &vc : in.vcs)
        if (std::find(vms.begin(), vms.end(), vc.vm) == vms.end())
            vms.push_back(vc.vm);
    std::sort(vms.begin(), vms.end());
    return vms;
}

/** Access intensity proxy: misses avoided by full allocation. */
double
intensityOf(const VcInfo &vc)
{
    return vc.curve.at(0);
}

/**
 * Guarantees every VC has a descriptor and a mask vector, even VCs
 * that received no capacity this epoch (e.g. when latency-critical
 * reservations consume a whole bank's ways): they get a striped
 * descriptor over all banks and empty (uncached) fill masks.
 */
PlacementPlan
finalizePlan(PlacementPlan plan, const EpochInputs &in)
{
    std::vector<BankId> allBanks;
    for (std::uint32_t b = 0; b < in.geo.banks; b++)
        allBanks.push_back(static_cast<BankId>(b));

    for (const auto &vc : in.vcs) {
        if (!plan.descriptors.count(vc.vc)) {
            // Stripe over the VC's *own VM's* banks so the fallback
            // cannot route accesses into other VMs' banks (that
            // would reopen the port channel Jumanji closes). Only if
            // the VM owns nothing at all do we fall back to the
            // whole LLC.
            std::vector<BankId> vmBanks;
            for (const auto &other : in.vcs) {
                if (other.vm != vc.vm) continue;
                for (BankId b : plan.matrix.banksOfVc(other.vc))
                    if (std::find(vmBanks.begin(), vmBanks.end(), b) ==
                        vmBanks.end())
                        vmBanks.push_back(b);
            }
            std::sort(vmBanks.begin(), vmBanks.end());
            PlacementDescriptor desc;
            desc.fillStriped(vmBanks.empty() ? allBanks : vmBanks);
            plan.descriptors[vc.vc] = desc;
        }
        if (!plan.wayMasks.count(vc.vc)) {
            plan.wayMasks[vc.vc] =
                std::vector<WayMask>(in.geo.banks, WayMask(0));
        }
    }
    return plan;
}

/** Stripes @p lines for @p vc uniformly across all banks. */
void
stripeAcrossBanks(VcId vc, std::uint64_t lines,
                  std::vector<std::uint64_t> &bankBalance,
                  AllocationMatrix &matrix)
{
    auto banks = static_cast<std::uint32_t>(bankBalance.size());
    std::uint64_t per = lines / banks;
    std::uint64_t extra = lines % banks;
    for (std::uint32_t b = 0; b < banks; b++) {
        std::uint64_t want = per + (b < extra ? 1 : 0);
        std::uint64_t grab = std::min(want, bankBalance[b]);
        matrix.add(static_cast<BankId>(b), vc, grab);
        bankBalance[b] -= grab;
    }
}

} // namespace

// ------------------------------------------------------------- Static

PlacementPlan
StaticPolicy::reconfigure(const EpochInputs &in)
{
    const PlacementGeometry &geo = in.geo;
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    // Each LC app: lcWays_ ways in every bank — clamped so that,
    // when batch apps exist, they keep at least a quarter of the
    // bank (a real administrator would not CAT-out all ways).
    std::uint32_t lcCount = 0;
    bool haveBatch = false;
    for (const auto &vc : in.vcs) {
        if (vc.latencyCritical) lcCount++;
        else haveBatch = true;
    }
    std::uint32_t lcWaysEff = lcWays_;
    if (haveBatch && lcCount > 0) {
        std::uint32_t budget =
            geo.waysPerBank - std::max(1u, geo.waysPerBank / 4);
        lcWaysEff = std::max(1u, std::min(lcWays_, budget / lcCount));
    }
    std::uint64_t lcLinesPerBank =
        static_cast<std::uint64_t>(lcWaysEff) * geo.linesPerWay();
    for (const auto &vc : in.vcs) {
        if (!vc.latencyCritical) continue;
        for (std::uint32_t b = 0; b < geo.banks; b++) {
            std::uint64_t grab = std::min(lcLinesPerBank, balance[b]);
            matrix.add(static_cast<BankId>(b), vc.vc, grab);
            balance[b] -= grab;
        }
    }

    // Batch apps share all remaining ways in every bank.
    std::vector<std::vector<VcId>> sharedGroups(1);
    std::vector<VcId> &sharedVcs = sharedGroups.front();
    for (const auto &vc : in.vcs) {
        if (vc.latencyCritical) continue;
        sharedVcs.push_back(vc.vc);
    }
    if (!sharedVcs.empty()) {
        // Give every batch VC an equal claim on the shared pool; the
        // materializer merges them into one unified partition.
        auto shareCount = static_cast<std::uint64_t>(sharedVcs.size());
        for (std::uint32_t b = 0; b < geo.banks; b++) {
            std::uint64_t pool = balance[b];
            for (std::size_t i = 0; i < sharedVcs.size(); i++) {
                std::uint64_t part = pool / shareCount;
                if (i < pool % shareCount) part++;
                matrix.add(static_cast<BankId>(b), sharedVcs[i], part);
            }
            balance[b] = 0;
        }
    }

    return finalizePlan(materializePlan(matrix, geo, &sharedGroups), in);
}

// ----------------------------------------------------------- Adaptive

PlacementPlan
AdaptivePolicy::snucaPlan(const EpochInputs &in, bool partitionVms)
{
    const PlacementGeometry &geo = in.geo;
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    // LC apps: feedback-controlled size, striped across all banks
    // (way-partitioned S-NUCA, Fig. 2b).
    for (const auto &vc : latCritOf(in))
        stripeAcrossBanks(vc.vc, vc.targetLines, balance, matrix);

    std::uint64_t batchBudget = 0;
    for (std::uint32_t b = 0; b < geo.banks; b++) batchBudget += balance[b];

    auto batch = batchOf(in);

    if (!partitionVms) {
        // Batch data unpartitioned: one shared pool (Fig. 2b).
        std::vector<std::vector<VcId>> sharedGroups(1);
        for (const auto &vc : batch)
            sharedGroups.front().push_back(vc.vc);
        for (std::uint32_t b = 0; b < geo.banks; b++) {
            std::uint64_t pool = balance[b];
            auto n = static_cast<std::uint64_t>(
                std::max<std::size_t>(1, batch.size()));
            for (std::size_t i = 0; i < batch.size(); i++) {
                std::uint64_t part = pool / n;
                if (i < pool % n) part++;
                matrix.add(static_cast<BankId>(b), batch[i].vc, part);
            }
            balance[b] = 0;
        }
        return finalizePlan(materializePlan(matrix, geo, &sharedGroups), in);
    }

    // VM-Part: divide batch capacity among VMs by lookahead over
    // each VM's combined batch curve, then stripe each VM's share
    // across all banks (still S-NUCA; Fig. 2c).
    auto vms = vmsOf(in);
    std::vector<LookaheadClaim> claims;
    std::vector<std::vector<VcId>> vmBatchVcs;
    for (VmId vm : vms) {
        std::vector<MissCurve> curves;
        std::vector<VcId> members;
        for (const auto &vc : batch) {
            if (vc.vm != vm) continue;
            curves.push_back(vc.curve);
            members.push_back(vc.vc);
        }
        LookaheadClaim claim;
        claim.id = vm;
        claim.curve = curves.empty() ? MissCurve::flat(1, 0.0)
                                     : MissCurve::combineOptimal(curves);
        // Each VM keeps at least one way per bank so every batch app
        // has a fillable partition (CAT cannot express zero ways).
        if (!members.empty())
            claim.floorLines = static_cast<std::uint64_t>(geo.banks) *
                               geo.linesPerWay();
        claims.push_back(std::move(claim));
        vmBatchVcs.push_back(std::move(members));
    }

    LookaheadResult shares = lookahead(claims, batchBudget, geo);

    for (std::size_t i = 0; i < vms.size(); i++) {
        // Batch apps within a VM share the VM's partition: model as
        // equal claims merged by the caller's shared list per VM.
        // Here each VM's batch VCs share one partition per bank.
        const auto &members = vmBatchVcs[i];
        if (members.empty()) continue;
        std::uint64_t vmShare = shares.lines[i];
        auto n = static_cast<std::uint64_t>(members.size());
        // Stripe the VM share over banks, split evenly among members
        // (the materializer keeps them in one VM partition via the
        // shared list below only for Adaptive; for VM-Part each VM
        // gets a private partition shared by its members).
        std::uint64_t perBank = vmShare / geo.banks;
        std::uint64_t extra = vmShare % geo.banks;
        for (std::uint32_t b = 0; b < geo.banks; b++) {
            std::uint64_t want = perBank + (b < extra ? 1 : 0);
            std::uint64_t grab = std::min(want, balance[b]);
            balance[b] -= grab;
            for (std::size_t m = 0; m < members.size(); m++) {
                std::uint64_t part = grab / n;
                if (m < grab % n) part++;
                matrix.add(static_cast<BankId>(b), members[m], part);
            }
        }
    }

    // Batch VCs within the same VM share the VM's partition: one
    // shared way-mask group per VM (the paper's VM-Part divides
    // banks into LC partitions + one partition per VM).
    return finalizePlan(materializePlan(matrix, geo, &vmBatchVcs), in);
}

PlacementPlan
AdaptivePolicy::reconfigure(const EpochInputs &in)
{
    return snucaPlan(in, false);
}

PlacementPlan
VmPartPolicy::reconfigure(const EpochInputs &in)
{
    return snucaPlan(in, true);
}

// ------------------------------------------------------------- Jigsaw

PlacementPlan
JigsawPolicy::reconfigure(const EpochInputs &in)
{
    const PlacementGeometry &geo = in.geo;
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    // Pure data-movement allocation: lookahead over every VC's miss
    // curve, LC and batch alike. LC apps at low load have tiny
    // curves, so Jigsaw starves them — the paper's Fig. 4b.
    std::vector<LookaheadClaim> claims;
    for (const auto &vc : in.vcs) {
        LookaheadClaim claim;
        claim.id = vc.vc;
        claim.curve = vc.curve;
        claim.floorLines = geo.linesPerWay();
        claims.push_back(std::move(claim));
    }
    LookaheadResult alloc = lookahead(claims, geo.totalLines(), geo,
                                      4 * geo.linesPerWay());

    std::vector<PlacementRequest> requests;
    for (std::size_t i = 0; i < in.vcs.size(); i++) {
        PlacementRequest r;
        r.vc = in.vcs[i].vc;
        r.coreTile = in.vcs[i].coreTile;
        r.lines = alloc.lines[i];
        r.intensity = intensityOf(in.vcs[i]);
        requests.push_back(r);
    }
    jigsawPlacer(requests, balance, {}, *in.mesh, matrix);
    return finalizePlan(materializePlan(matrix, geo, nullptr), in);
}

// ------------------------------------------------------------ Jumanji

PlacementPlan
JumanjiPolicy::reconfigure(const EpochInputs &in)
{
    return isolate_ ? securePlan(in) : insecurePlan(in);
}

PlacementPlan
JumanjiPolicy::securePlan(const EpochInputs &in)
{
    const PlacementGeometry &geo = in.geo;
    const MeshTopology &mesh = *in.mesh;
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    // Step 1 (Listing 3 line 2): reserve latency-critical space in
    // nearby banks, never co-locating two VMs' LC data.
    auto lc = latCritOf(in);
    latCritPlacer(lc, balance, mesh, geo, /*isolateVms=*/true, matrix);

    // Step 2: JumanjiLookahead divides the remaining capacity among
    // VMs so each VM's total is a whole number of banks.
    auto vms = vmsOf(in);
    std::vector<LookaheadClaim> claims;
    for (VmId vm : vms) {
        std::vector<MissCurve> curves;
        for (const auto &vc : in.vcs)
            if (vc.vm == vm && !vc.latencyCritical)
                curves.push_back(vc.curve);
        LookaheadClaim claim;
        claim.id = vm;
        claim.curve = curves.empty() ? MissCurve::flat(1, 0.0)
                                     : MissCurve::combineOptimal(curves);
        for (const auto &vc : lc)
            if (vc.vm == vm) claim.floorLines += matrix.vcTotal(vc.vc);
        claims.push_back(std::move(claim));
    }
    LookaheadResult vmTotals =
        jumanjiLookahead(claims, geo.totalLines(), geo);

    // Step 3: assign whole banks to VMs. Banks already holding a
    // VM's LC data belong to that VM; the rest are taken round-robin
    // by nearest-first (Listing 3 lines 8-9).
    std::vector<VmId> bankOwner(geo.banks, kInvalidVm);
    std::vector<std::uint32_t> banksNeeded(vms.size(), 0);
    std::map<VcId, VmId> vmOf;
    for (const auto &vc : in.vcs) vmOf[vc.vc] = vc.vm;

    for (std::size_t i = 0; i < vms.size(); i++) {
        banksNeeded[i] = static_cast<std::uint32_t>(
            vmTotals.lines[i] / geo.linesPerBank);
    }
    for (std::uint32_t b = 0; b < geo.banks; b++) {
        auto inBank = matrix.vmsInBank(static_cast<BankId>(b), vmOf);
        if (inBank.empty()) continue;
        if (inBank.size() > 1)
            warn("JumanjiPolicy: LC placement co-located two VMs");
        bankOwner[b] = inBank.front();
        for (std::size_t i = 0; i < vms.size(); i++) {
            if (vms[i] == inBank.front() && banksNeeded[i] > 0)
                banksNeeded[i]--;
        }
    }

    // Representative tile per VM: its first core's tile.
    std::vector<std::uint32_t> vmTile(vms.size(), 0);
    for (std::size_t i = 0; i < vms.size(); i++) {
        for (const auto &vc : in.vcs) {
            if (vc.vm == vms[i]) {
                vmTile[i] = vc.coreTile;
                break;
            }
        }
    }

    // Sticky pass: each VM first reclaims the banks it owned last
    // epoch, so quota wobbles move at most a bank or two.
    if (lastOwner_.size() == geo.banks) {
        for (std::size_t i = 0; i < vms.size(); i++) {
            for (std::uint32_t b = 0; b < geo.banks && banksNeeded[i] > 0;
                 b++) {
                if (bankOwner[b] != kInvalidVm) continue;
                if (lastOwner_[b] != vms[i]) continue;
                bankOwner[b] = vms[i];
                banksNeeded[i]--;
            }
        }
    }

    bool assigned = true;
    while (assigned) {
        assigned = false;
        for (std::size_t i = 0; i < vms.size(); i++) {
            if (banksNeeded[i] == 0) continue;
            for (std::uint32_t tile : mesh.tilesByDistance(vmTile[i])) {
                if (tile >= geo.banks) continue;
                if (bankOwner[tile] != kInvalidVm) continue;
                bankOwner[tile] = vms[i];
                banksNeeded[i]--;
                assigned = true;
                break;
            }
        }
    }
    lastOwner_ = bankOwner;

    // Step 4 (Listing 3 lines 10-12): Jigsaw placement of each VM's
    // batch apps within the VM's banks.
    for (std::size_t i = 0; i < vms.size(); i++) {
        std::vector<BankId> vmBanks;
        for (std::uint32_t b = 0; b < geo.banks; b++)
            if (bankOwner[b] == vms[i])
                vmBanks.push_back(static_cast<BankId>(b));
        if (vmBanks.empty()) continue;

        std::uint64_t vmCapacity = 0;
        for (BankId b : vmBanks) vmCapacity += balance[
            static_cast<std::size_t>(b)];

        // Per-app allocation within the VM: plain lookahead.
        std::vector<LookaheadClaim> appClaims;
        std::vector<const VcInfo *> members;
        for (const auto &vc : in.vcs) {
            if (vc.vm != vms[i] || vc.latencyCritical) continue;
            LookaheadClaim claim;
            claim.id = vc.vc;
            claim.curve = vc.curve;
            claim.floorLines = geo.linesPerWay();
            appClaims.push_back(std::move(claim));
            members.push_back(&vc);
        }
        if (members.empty()) continue;
        // Coarse (4-way) quanta: batch allocations stay put when
        // curves wobble, keeping coherence-walk churn low.
        LookaheadResult appAlloc = lookahead(appClaims, vmCapacity, geo,
                                             4 * geo.linesPerWay());

        std::vector<PlacementRequest> requests;
        for (std::size_t m = 0; m < members.size(); m++) {
            PlacementRequest r;
            r.vc = members[m]->vc;
            r.coreTile = members[m]->coreTile;
            r.lines = appAlloc.lines[m];
            r.intensity = intensityOf(*members[m]);
            requests.push_back(r);
        }
        jigsawPlacer(requests, balance, vmBanks, mesh, matrix);
    }

    return finalizePlan(materializePlan(matrix, geo, nullptr), in);
}

PlacementPlan
JumanjiPolicy::insecurePlan(const EpochInputs &in)
{
    const PlacementGeometry &geo = in.geo;
    const MeshTopology &mesh = *in.mesh;
    AllocationMatrix matrix(geo.banks);
    std::vector<std::uint64_t> balance(geo.banks, geo.linesPerBank);

    // LC reservations exactly as Jumanji, but no VM isolation.
    auto lc = latCritOf(in);
    latCritPlacer(lc, balance, mesh, geo, /*isolateVms=*/false, matrix);

    std::uint64_t batchBudget = 0;
    for (auto b : balance) batchBudget += b;

    // Batch: per-app lookahead over the whole remaining LLC, placed
    // greedily with no bank-ownership constraint.
    auto batch = batchOf(in);
    std::vector<LookaheadClaim> claims;
    for (const auto &vc : batch) {
        LookaheadClaim claim;
        claim.id = vc.vc;
        claim.curve = vc.curve;
        claim.floorLines = geo.linesPerWay();
        claims.push_back(std::move(claim));
    }
    LookaheadResult alloc =
        lookahead(claims, batchBudget, geo, 4 * geo.linesPerWay());

    std::vector<PlacementRequest> requests;
    for (std::size_t i = 0; i < batch.size(); i++) {
        PlacementRequest r;
        r.vc = batch[i].vc;
        r.coreTile = batch[i].coreTile;
        r.lines = alloc.lines[i];
        r.intensity = intensityOf(batch[i]);
        requests.push_back(r);
    }
    jigsawPlacer(requests, balance, {}, mesh, matrix);
    return finalizePlan(materializePlan(matrix, geo, nullptr), in);
}

// --------------------------------------------------- Ideal batch LLC

PlacementPlan
JumanjiIdealBatchPolicy::reconfigure(const EpochInputs &in)
{
    const PlacementGeometry &geo = in.geo;
    const MeshTopology &mesh = *in.mesh;

    // LC and batch data live in *separate copies* of the LLC, so
    // their allocations are materialized independently and merged;
    // the System routes LC VCs to one MemPath and batch to another.
    AllocationMatrix lcMatrix(geo.banks);
    AllocationMatrix matrix(geo.banks);

    // LC apps: Jumanji's nearby reservation, in the LC copy of the
    // LLC (full balance; batch does not compete).
    std::vector<std::uint64_t> lcBalance(geo.banks, geo.linesPerBank);
    auto lc = latCritOf(in);
    latCritPlacer(lc, lcBalance, mesh, geo, /*isolateVms=*/true,
                  lcMatrix);

    std::uint64_t lcTotal = 0;
    for (const auto &vc : lc) lcTotal += lcMatrix.vcTotal(vc.vc);

    // Batch apps: capacity budget is what LC left over, but placed in
    // a *fresh* LLC where every bank is empty — unconstrained by LC
    // placement. VM isolation still applies (Sec. VIII-C).
    std::uint64_t batchBudget =
        geo.totalLines() > lcTotal ? geo.totalLines() - lcTotal : 0;
    // Bank-granular per-VM division, as Jumanji.
    auto vms = [&] {
        std::vector<VmId> v;
        for (const auto &vc : in.vcs)
            if (std::find(v.begin(), v.end(), vc.vm) == v.end())
                v.push_back(vc.vm);
        std::sort(v.begin(), v.end());
        return v;
    }();

    std::vector<LookaheadClaim> claims;
    for (VmId vm : vms) {
        std::vector<MissCurve> curves;
        for (const auto &vc : in.vcs)
            if (vc.vm == vm && !vc.latencyCritical)
                curves.push_back(vc.curve);
        LookaheadClaim claim;
        claim.id = vm;
        claim.curve = curves.empty() ? MissCurve::flat(1, 0.0)
                                     : MissCurve::combineOptimal(curves);
        claims.push_back(std::move(claim));
    }
    // Round the batch budget down to a bank multiple for the
    // bank-granular divide; the remainder is surrendered (idealized
    // designs need not squeeze partial banks).
    std::uint64_t bankBudget =
        batchBudget / geo.linesPerBank * geo.linesPerBank;
    LookaheadResult vmTotals = jumanjiLookahead(claims, bankBudget, geo);

    // Assign banks in the batch LLC round-robin nearest-first.
    std::vector<std::uint64_t> batchBalance(geo.banks, geo.linesPerBank);
    std::vector<VmId> bankOwner(geo.banks, kInvalidVm);
    std::vector<std::uint32_t> banksNeeded(vms.size(), 0);
    for (std::size_t i = 0; i < vms.size(); i++)
        banksNeeded[i] = static_cast<std::uint32_t>(
            vmTotals.lines[i] / geo.linesPerBank);

    std::vector<std::uint32_t> vmTile(vms.size(), 0);
    for (std::size_t i = 0; i < vms.size(); i++) {
        for (const auto &vc : in.vcs) {
            if (vc.vm == vms[i]) {
                vmTile[i] = vc.coreTile;
                break;
            }
        }
    }
    bool assigned = true;
    while (assigned) {
        assigned = false;
        for (std::size_t i = 0; i < vms.size(); i++) {
            if (banksNeeded[i] == 0) continue;
            for (std::uint32_t tile : mesh.tilesByDistance(vmTile[i])) {
                if (tile >= geo.banks) continue;
                if (bankOwner[tile] != kInvalidVm) continue;
                bankOwner[tile] = vms[i];
                banksNeeded[i]--;
                assigned = true;
                break;
            }
        }
    }

    for (std::size_t i = 0; i < vms.size(); i++) {
        std::vector<BankId> vmBanks;
        for (std::uint32_t b = 0; b < geo.banks; b++)
            if (bankOwner[b] == vms[i])
                vmBanks.push_back(static_cast<BankId>(b));
        if (vmBanks.empty()) continue;

        std::uint64_t vmCapacity = 0;
        for (BankId b : vmBanks)
            vmCapacity += batchBalance[static_cast<std::size_t>(b)];

        std::vector<LookaheadClaim> appClaims;
        std::vector<const VcInfo *> members;
        for (const auto &vc : in.vcs) {
            if (vc.vm != vms[i] || vc.latencyCritical) continue;
            LookaheadClaim claim;
            claim.id = vc.vc;
            claim.curve = vc.curve;
            claim.floorLines = geo.linesPerWay();
            appClaims.push_back(std::move(claim));
            members.push_back(&vc);
        }
        if (members.empty()) continue;
        LookaheadResult appAlloc = lookahead(appClaims, vmCapacity, geo,
                                             4 * geo.linesPerWay());

        std::vector<PlacementRequest> requests;
        for (std::size_t m = 0; m < members.size(); m++) {
            PlacementRequest r;
            r.vc = members[m]->vc;
            r.coreTile = members[m]->coreTile;
            r.lines = appAlloc.lines[m];
            r.intensity = members[m]->curve.at(0);
            requests.push_back(r);
        }
        jigsawPlacer(requests, batchBalance, vmBanks, mesh, matrix);
    }

    // Merge: LC descriptors/masks from the LC copy, batch from the
    // batch copy. Bank ids coincide; the System routes by VC.
    PlacementPlan lcPlan = materializePlan(lcMatrix, geo, nullptr);
    PlacementPlan batchPlan = materializePlan(matrix, geo, nullptr);
    for (auto &[vc, desc] : lcPlan.descriptors)
        batchPlan.descriptors[vc] = desc;
    for (auto &[vc, mask] : lcPlan.wayMasks)
        batchPlan.wayMasks[vc] = mask;
    // Keep the batch matrix for reporting; merge LC totals in.
    for (std::uint32_t b = 0; b < geo.banks; b++)
        for (const auto &[vc, lines] : lcMatrix.bank(
                 static_cast<BankId>(b)))
            batchPlan.matrix.add(static_cast<BankId>(b), vc, lines);
    return finalizePlan(std::move(batchPlan), in);
}

} // namespace jumanji
