#include "src/core/placement_types.hh"

#include <algorithm>
#include <cmath>

#include "src/sim/check.hh"
#include "src/sim/logging.hh"

namespace jumanji {

void
AllocationMatrix::add(BankId bank, VcId vc, std::uint64_t lines)
{
    if (lines == 0) return;
    if (bank < 0 || static_cast<std::size_t>(bank) >= perBank_.size())
        panic("AllocationMatrix::add: bank out of range");
    perBank_[static_cast<std::size_t>(bank)][vc] += lines;
}

std::uint64_t
AllocationMatrix::remove(BankId bank, VcId vc, std::uint64_t lines)
{
    if (bank < 0 || static_cast<std::size_t>(bank) >= perBank_.size())
        panic("AllocationMatrix::remove: bank out of range");
    auto &m = perBank_[static_cast<std::size_t>(bank)];
    auto it = m.find(vc);
    if (it == m.end()) return 0;
    std::uint64_t removed = std::min(it->second, lines);
    it->second -= removed;
    if (it->second == 0) m.erase(it);
    return removed;
}

std::uint64_t
AllocationMatrix::get(BankId bank, VcId vc) const
{
    const auto &m = perBank_[static_cast<std::size_t>(bank)];
    auto it = m.find(vc);
    return it == m.end() ? 0 : it->second;
}

std::uint64_t
AllocationMatrix::bankTotal(BankId bank) const
{
    std::uint64_t total = 0;
    for (const auto &[vc, lines] : perBank_[static_cast<std::size_t>(bank)])
        total += lines;
    return total;
}

std::uint64_t
AllocationMatrix::vcTotal(VcId vc) const
{
    std::uint64_t total = 0;
    for (const auto &bank : perBank_) {
        auto it = bank.find(vc);
        if (it != bank.end()) total += it->second;
    }
    return total;
}

std::vector<VcId>
AllocationMatrix::vcsInBank(BankId bank) const
{
    std::vector<VcId> vcs;
    for (const auto &[vc, lines] : perBank_[static_cast<std::size_t>(bank)])
        if (lines > 0) vcs.push_back(vc);
    return vcs;
}

std::vector<BankId>
AllocationMatrix::banksOfVc(VcId vc) const
{
    std::vector<BankId> banks;
    for (std::size_t b = 0; b < perBank_.size(); b++) {
        auto it = perBank_[b].find(vc);
        if (it != perBank_[b].end() && it->second > 0)
            banks.push_back(static_cast<BankId>(b));
    }
    return banks;
}

std::vector<VmId>
AllocationMatrix::vmsInBank(BankId bank,
                            const std::map<VcId, VmId> &vmOf) const
{
    std::vector<VmId> vms;
    for (const auto &[vc, lines] : perBank_[static_cast<std::size_t>(bank)]) {
        if (lines == 0) continue;
        auto it = vmOf.find(vc);
        VmId vm = it == vmOf.end() ? kInvalidVm : it->second;
        if (std::find(vms.begin(), vms.end(), vm) == vms.end())
            vms.push_back(vm);
    }
    std::sort(vms.begin(), vms.end());
    return vms;
}

namespace {

/**
 * Apportions ways among VCs by their line allocations, CAT-style:
 * a VC asking for k ways' worth of lines receives ~k ways, even when
 * the bank is undersubscribed (leftover ways go unassigned, exactly
 * as unprogrammed CAT masks would). Oversubscription falls back to
 * proportional scaling. Every nonzero VC gets >= 1 way when possible.
 */
std::vector<std::pair<VcId, std::uint32_t>>
apportionWays(const std::map<VcId, std::uint64_t> &linesPerVc,
              std::uint32_t totalWays, std::uint64_t bankLines)
{
    struct Item
    {
        VcId vc;
        std::uint32_t ways;
        double remainder;
    };

    std::uint64_t totalLines = 0;
    for (const auto &[vc, lines] : linesPerVc) totalLines += lines;
    if (totalLines == 0) return {};

    double linesPerWay = static_cast<double>(bankLines) /
                         static_cast<double>(totalWays);
    // Oversubscribed banks scale everyone down proportionally.
    double scale = totalLines > bankLines
                       ? static_cast<double>(bankLines) /
                             static_cast<double>(totalLines)
                       : 1.0;

    std::vector<Item> items;
    std::uint32_t used = 0;
    double wanted = 0.0;
    for (const auto &[vc, lines] : linesPerVc) {
        if (lines == 0) continue;
        double ideal = static_cast<double>(lines) * scale / linesPerWay;
        auto whole = static_cast<std::uint32_t>(ideal);
        items.push_back(Item{vc, whole, ideal - std::floor(ideal)});
        used += whole;
        wanted += ideal;
    }
    auto targetWays = std::min<std::uint32_t>(
        totalWays, static_cast<std::uint32_t>(std::ceil(wanted - 1e-9)));

    // Hand out leftovers by largest remainder, zero-way VCs first.
    std::stable_sort(items.begin(), items.end(),
                     [](const Item &a, const Item &b) {
                         bool az = a.ways == 0, bz = b.ways == 0;
                         if (az != bz) return az;
                         return a.remainder > b.remainder;
                     });
    for (auto &item : items) {
        if (used >= targetWays) break;
        if (item.ways == 0 || item.remainder > 0.0) {
            item.ways++;
            used++;
        }
    }
    // Guarantee every VC at least one way by stealing from the
    // largest, as CAT cannot express a zero-way fillable partition.
    for (auto &item : items) {
        if (item.ways > 0) continue;
        auto richest = std::max_element(
            items.begin(), items.end(),
            [](const Item &a, const Item &b) { return a.ways < b.ways; });
        if (richest->ways > 1) {
            richest->ways--;
            item.ways++;
        }
    }

    std::vector<std::pair<VcId, std::uint32_t>> result;
    std::uint32_t handedOut = 0;
    for (const auto &item : items) {
        result.emplace_back(item.vc, item.ways);
        handedOut += item.ways;
    }
    JUMANJI_INVARIANT(handedOut <= totalWays,
                      "apportioned more ways than the bank has");
    // Deterministic mask layout: VC-id order.
    std::sort(result.begin(), result.end());
    return result;
}

} // namespace

PlacementPlan
materializePlan(const AllocationMatrix &matrix,
                const PlacementGeometry &geo,
                const std::vector<std::vector<VcId>> *sharedGroups)
{
    PlacementPlan plan;
    plan.matrix = matrix;

    // VC -> shared-group index, or -1 for private.
    std::map<VcId, int> groupOf;
    if (sharedGroups != nullptr) {
        for (std::size_t g = 0; g < sharedGroups->size(); g++)
            for (VcId vc : (*sharedGroups)[g])
                groupOf[vc] = static_cast<int>(g);
    }

    // Way masks bank by bank.
    std::map<VcId, std::vector<WayMask>> masks;
    auto ensureMasks = [&](VcId vc) -> std::vector<WayMask> & {
        auto it = masks.find(vc);
        if (it == masks.end()) {
            it = masks.emplace(vc, std::vector<WayMask>(
                                       geo.banks, WayMask(0))).first;
        }
        return it->second;
    };

    // Group tokens occupy VC ids below any real VC.
    constexpr VcId kGroupTokenBase = -1000;

    for (std::uint32_t b = 0; b < geo.banks; b++) {
        // Merge each shared group's lines under its token; private
        // VCs stand alone.
        std::map<VcId, std::uint64_t> forApportion;
        std::map<int, std::vector<VcId>> groupMembersHere;
        for (const auto &[vc, lines] : matrix.bank(static_cast<BankId>(b))) {
            if (lines == 0) continue;
            auto git = groupOf.find(vc);
            if (git != groupOf.end()) {
                VcId token = kGroupTokenBase - git->second;
                forApportion[token] += lines;
                groupMembersHere[git->second].push_back(vc);
            } else {
                forApportion[vc] += lines;
            }
        }

        auto ways = apportionWays(forApportion, geo.waysPerBank,
                                  geo.linesPerBank);

        std::uint32_t cursor = 0;
        for (const auto &[vc, count] : ways) {
            WayMask mask = WayMask::range(cursor, count);
            cursor += count;
            // Way-mask consistency: contiguous CAT ranges must stay
            // within the bank and never overlap (the cursor only
            // advances).
            JUMANJI_INVARIANT(cursor <= geo.waysPerBank,
                              "way masks overflow the bank");
            if (vc <= kGroupTokenBase) {
                int g = static_cast<int>(kGroupTokenBase - vc);
                for (VcId svc : groupMembersHere[g])
                    ensureMasks(svc)[b] = mask;
            } else {
                ensureMasks(vc)[b] = mask;
            }
        }
    }

    // Descriptors: slots proportional to per-bank lines.
    std::map<VcId, std::vector<std::pair<BankId, double>>> shares;
    for (std::uint32_t b = 0; b < geo.banks; b++) {
        for (const auto &[vc, lines] : matrix.bank(static_cast<BankId>(b))) {
            if (lines > 0)
                shares[vc].emplace_back(static_cast<BankId>(b),
                                        static_cast<double>(lines));
        }
    }
    for (auto &[vc, share] : shares) {
        PlacementDescriptor desc;
        desc.fillProportional(share);
        plan.descriptors[vc] = desc;
    }
    plan.wayMasks = std::move(masks);
    return plan;
}

} // namespace jumanji
