/**
 * @file
 * The LLC management designs compared in the paper (Sec. III / VII):
 *
 *  - Static: each LC app gets a fixed 4-way striped partition;
 *    batch apps share the rest. The normalization baseline.
 *  - Adaptive: S-NUCA; LC partitions sized by feedback control;
 *    batch shares the remainder unpartitioned.
 *  - VM-Part: Adaptive + per-VM batch partitions in every bank
 *    (defends conflict attacks only).
 *  - Jigsaw: D-NUCA minimizing data movement; tail/security-blind.
 *  - Jumanji: Listing 3 — feedback-controlled LC reservations placed
 *    nearby, VMs isolated into whole banks, Jigsaw placement within
 *    each VM.
 *  - JumanjiInsecure: Jumanji without bank isolation (Fig. 16).
 *  - JumanjiIdealBatch: infeasible upper bound — batch placed in a
 *    private copy of the LLC (Fig. 16); realized at the System layer
 *    with a second MemPath, this policy computes its allocations.
 */

#ifndef JUMANJI_CORE_POLICIES_HH
#define JUMANJI_CORE_POLICIES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/placement_types.hh"
#include "src/noc/mesh.hh"

namespace jumanji {

/** Design selector. */
enum class LlcDesign
{
    Static,
    Adaptive,
    VMPart,
    Jigsaw,
    Jumanji,
    JumanjiInsecure,
    JumanjiIdealBatch,
};

const char *llcDesignName(LlcDesign design);

/** Everything a policy sees at reconfiguration time. */
struct EpochInputs
{
    std::vector<VcInfo> vcs;
    PlacementGeometry geo;
    /** Non-owning topology pointer (owned by the System). */
    const MeshTopology *mesh = nullptr;
};

/**
 * A placement policy: turns epoch inputs into a placement plan.
 */
class LlcPolicy
{
  public:
    virtual ~LlcPolicy() = default;

    virtual const char *name() const = 0;

    /** Computes the epoch's placement. */
    virtual PlacementPlan reconfigure(const EpochInputs &in) = 0;

    /** True if this design requires feedback-controlled LC sizing. */
    virtual bool usesFeedbackControl() const { return true; }

    /** True if batch must run on a second, private LLC (Ideal). */
    virtual bool wantsIdealBatchLlc() const { return false; }

    static std::unique_ptr<LlcPolicy> create(LlcDesign design);
};

/** Static baseline: LC apps 4 ways striped; batch shares the rest. */
class StaticPolicy : public LlcPolicy
{
  public:
    explicit StaticPolicy(std::uint32_t lcWays = 4) : lcWays_(lcWays) {}
    const char *name() const override { return "Static"; }
    PlacementPlan reconfigure(const EpochInputs &in) override;
    bool usesFeedbackControl() const override { return false; }

  private:
    std::uint32_t lcWays_;
};

/** Adaptive: S-NUCA + feedback-controlled LC ways. */
class AdaptivePolicy : public LlcPolicy
{
  public:
    const char *name() const override { return "Adaptive"; }
    PlacementPlan reconfigure(const EpochInputs &in) override;

  protected:
    /** Shared S-NUCA skeleton; @p partitionVms toggles VM-Part. */
    PlacementPlan snucaPlan(const EpochInputs &in, bool partitionVms);
};

/** VM-Part: Adaptive + per-VM batch partitions per bank. */
class VmPartPolicy : public AdaptivePolicy
{
  public:
    const char *name() const override { return "VM-Part"; }
    PlacementPlan reconfigure(const EpochInputs &in) override;
};

/** Jigsaw: pure data-movement D-NUCA. */
class JigsawPolicy : public LlcPolicy
{
  public:
    const char *name() const override { return "Jigsaw"; }
    PlacementPlan reconfigure(const EpochInputs &in) override;
    bool usesFeedbackControl() const override { return false; }
};

/** Jumanji (Listing 3) and its Insecure variant. */
class JumanjiPolicy : public LlcPolicy
{
  public:
    explicit JumanjiPolicy(bool enforceBankIsolation = true)
        : isolate_(enforceBankIsolation)
    {
    }

    const char *
    name() const override
    {
        return isolate_ ? "Jumanji" : "Jumanji-Insecure";
    }

    PlacementPlan reconfigure(const EpochInputs &in) override;

  private:
    PlacementPlan securePlan(const EpochInputs &in);
    PlacementPlan insecurePlan(const EpochInputs &in);

    bool isolate_;
    /**
     * Bank ownership of the previous epoch: VMs keep the banks they
     * already own when quotas allow, so small quota changes move one
     * bank instead of reshuffling the floorplan (fewer coherence
     * invalidations).
     */
    std::vector<VmId> lastOwner_;
};

/**
 * Ideal Batch: LC apps placed exactly as Jumanji; batch apps get an
 * unconstrained Jumanji-style placement over a *full* LLC's worth of
 * free banks (the System routes batch to a second MemPath).
 * Total allocated capacity still sums to one LLC.
 */
class JumanjiIdealBatchPolicy : public LlcPolicy
{
  public:
    const char *name() const override { return "Jumanji-IdealBatch"; }
    PlacementPlan reconfigure(const EpochInputs &in) override;
    bool wantsIdealBatchLlc() const override { return true; }
};

} // namespace jumanji

#endif // JUMANJI_CORE_POLICIES_HH
