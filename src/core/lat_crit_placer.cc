#include "src/core/lat_crit_placer.hh"

#include <algorithm>
#include <map>

#include "src/sim/logging.hh"

namespace jumanji {

void
latCritPlacer(const std::vector<VcInfo> &latCritVcs,
              std::vector<std::uint64_t> &bankBalance,
              const MeshTopology &mesh, const PlacementGeometry &geo,
              bool isolateVms, AllocationMatrix &matrix)
{
    if (bankBalance.size() != geo.banks)
        panic("latCritPlacer: balance size != bank count");

    // Bank -> VM owning latency-critical space there (for isolation).
    std::map<BankId, VmId> lcOwner;

    for (const auto &vc : latCritVcs) {
        if (!vc.latencyCritical)
            panic("latCritPlacer: non-LC VC passed in");

        std::uint64_t remaining = vc.targetLines;
        auto preferred = mesh.tilesByDistance(vc.coreTile);

        for (std::uint32_t tile : preferred) {
            if (remaining == 0) break;
            if (tile >= geo.banks) continue;
            auto bank = static_cast<BankId>(tile);

            if (isolateVms) {
                auto it = lcOwner.find(bank);
                if (it != lcOwner.end() && it->second != vc.vm) continue;
            }

            std::uint64_t &balance =
                bankBalance[static_cast<std::size_t>(bank)];
            std::uint64_t grab = std::min(balance, remaining);
            if (grab == 0) continue;

            matrix.add(bank, vc.vc, grab);
            balance -= grab;
            remaining -= grab;
            lcOwner.emplace(bank, vc.vm);
        }

        if (remaining > 0) {
            warn("latCritPlacer: could not fully place " + vc.name +
                 " (short " + std::to_string(remaining) + " lines)");
        }
    }
}

} // namespace jumanji
