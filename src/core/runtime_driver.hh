/**
 * @file
 * Jumanji's software runtime (Sec. IV-B): a DES agent that wakes up
 * every reconfiguration epoch (100 ms in the paper; scaled here),
 * gathers UMON miss curves and feedback-controller targets, runs the
 * active placement policy, and installs descriptors and way masks.
 *
 * It also hosts the RequestCompleted path (Listing 1): LC apps call
 * back on every completed request, and the per-app feedback
 * controllers update allocation targets.
 */

#ifndef JUMANJI_CORE_RUNTIME_DRIVER_HH
#define JUMANJI_CORE_RUNTIME_DRIVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/feedback_controller.hh"
#include "src/core/policies.hh"
#include "src/cpu/mem_path.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/flat_map.hh"
#include "src/sim/types.hh"

namespace jumanji {

class StatRegistry;
class Tracer;

/** Registration record for one application under runtime control. */
struct RuntimeAppInfo
{
    VcId vc = kInvalidVc;
    AppId app = kInvalidApp;
    VmId vm = kInvalidVm;
    std::uint32_t coreTile = 0;
    bool latencyCritical = false;
    std::string name;
    /**
     * LLC accesses per cycle the app would issue if never stalled
     * (apki/1000 x baseIpc). Batch miss curves are rescaled to this
     * rate so that an app starved in the *current* placement is not
     * undervalued by the next allocation (raw per-epoch miss counts
     * shrink when the app stalls — a feedback trap). Latency-critical
     * curves are left raw: their low access rates reflect idling, the
     * very signal that makes data-movement-only policies (Jigsaw)
     * deprioritize them, which the paper's results depend on.
     * 0 disables normalization.
     */
    double nominalAccessesPerCycle = 0.0;
};

/** A point in the per-epoch allocation timeline (Fig. 4b). */
struct EpochRecord
{
    Tick when = 0;
    /** Lines allocated per VC at this epoch (ascending-VC order). */
    SmallIdMap<VcId, std::uint64_t> allocLines;
    /** Lines invalidated by the coherence walk this epoch. */
    std::uint64_t invalidations = 0;
};

/**
 * The runtime. Owns controllers and the policy; borrows MemPaths.
 */
class RuntimeDriver : public Agent
{
  public:
    /**
     * @param policy The active LLC design.
     * @param path The (primary) LLC complex.
     * @param idealBatchPath Second LLC for Ideal Batch, else nullptr.
     * @param geo Placement geometry.
     * @param epochTicks Reconfiguration period in cycles.
     */
    RuntimeDriver(std::unique_ptr<LlcPolicy> policy, MemPath *path,
                  MemPath *idealBatchPath, const PlacementGeometry &geo,
                  Tick epochTicks);

    /** Registers an app; LC apps also get a feedback controller. */
    void registerApp(const RuntimeAppInfo &info,
                     const ControllerParams &params, double deadline);

    /**
     * Listing 1: called per completed LC request. @p now (the
     * completion tick) only timestamps trace events; it does not
     * affect control decisions.
     */
    void requestCompleted(VcId vc, double latencyCycles, Tick now = 0);

    /**
     * Thread migration (Sec. IV-B): records that @p vc's thread now
     * runs on @p newTile. The next reconfiguration pulls the VC's
     * allocation toward the new tile, exactly as prior D-NUCAs
     * migrate allocations along with threads.
     */
    void migrateApp(VcId vc, std::uint32_t newTile);

    /** Current tile of @p vc's thread (as the runtime believes). */
    std::uint32_t appTile(VcId vc) const;

    /** The DES hook: runs one reconfiguration. */
    Tick resume(Tick now) override;

    /** Forces an immediate reconfiguration (initial placement). */
    void reconfigureNow(Tick now);

    /** Controller for an LC app (test/inspection). */
    FeedbackController *controller(VcId vc);

    const std::vector<EpochRecord> &timeline() const { return timeline_; }
    const LlcPolicy &policy() const { return *policy_; }

    /** Epoch period. */
    Tick epochTicks() const { return epochTicks_; }

    /** Changes the controller deadline for an LC app. */
    void setDeadline(VcId vc, double deadline);

    /**
     * Pins every LC allocation to @p lines (0 re-enables feedback
     * control). Fixed-partition studies (Fig. 8, Fig. 12) use this.
     */
    void setFixedLcTarget(std::uint64_t lines) { fixedLcTarget_ = lines; }

    /** Total coherence-walk line moves across all epochs. */
    std::uint64_t totalInvalidations() const { return invalidations_; }

    /** Ablation: disable convex-hulling of UMON curves. */
    void setHullCurves(bool hull) { hullCurves_ = hull; }

    /** Ablation: disable batch curve rate normalization. */
    void setRateNormalize(bool normalize) { rateNormalize_ = normalize; }

    std::uint64_t reconfigurations() const { return reconfigs_; }

    /**
     * Registers runtime stats under @p prefix ("runtime."):
     * reconfiguration/invalidation totals plus per-VC installed
     * allocations and LC controller targets. Call after all apps are
     * registered.
     */
    void registerStats(StatRegistry &reg, const std::string &prefix);

    /**
     * Attaches a tracer (non-owning; nullptr detaches). @p basePid is
     * the pid block from Tracer::beginRun: repartition instants and
     * per-VC allocation counters go to the runtime lane, deadline
     * violations to the offending app's core lane.
     */
    void setTracer(Tracer *tracer, std::uint32_t basePid);

  private:
    EpochInputs gatherInputs();
    void installPlan(const PlacementPlan &plan, Tick now);

    std::unique_ptr<LlcPolicy> policy_;
    MemPath *path_;
    MemPath *idealBatchPath_;
    PlacementGeometry geo_;
    Tick epochTicks_;

    std::vector<RuntimeAppInfo> apps_;
    /**
     * Dense per-VC tables: requestCompleted() runs per completed LC
     * request, so the controller lookup must not tree-walk.
     */
    SmallIdMap<VcId, std::unique_ptr<FeedbackController>> controllers_;

    std::vector<EpochRecord> timeline_;
    std::uint64_t invalidations_ = 0;
    std::uint64_t reconfigs_ = 0;
    std::uint64_t fixedLcTarget_ = 0;
    bool hullCurves_ = true;
    bool rateNormalize_ = true;
    /** Last LC target actually installed, per VC (deadband). */
    SmallIdMap<VcId, std::uint64_t> installedLcTarget_;
    /** Lines installed per VC at the last reconfiguration. */
    SmallIdMap<VcId, std::uint64_t> lastAlloc_;

    Tracer *tracer_ = nullptr;
    std::uint32_t tracePid_ = 0;
    /**
     * Per-VC counter-track names, interned into the tracer's
     * pointer-stable storage once per VC instead of on every epoch's
     * emission.
     */
    SmallIdMap<VcId, const char *> allocTrackNames_;
};

} // namespace jumanji

#endif // JUMANJI_CORE_RUNTIME_DRIVER_HH
