/**
 * @file
 * The tail-latency feedback controller (paper Sec. V-C, Listing 1).
 *
 * Every completed request's latency is buffered; once
 * configurationInterval requests have completed, the controller
 * computes the recent tail (95th percentile) and adjusts the
 * application's LLC allocation:
 *   - tail > panicFrac * deadline  -> boost to the panic size,
 *   - tail > highFrac  * deadline  -> grow by stepFrac,
 *   - tail < lowFrac   * deadline  -> shrink by stepFrac,
 *   - otherwise                    -> hold.
 */

#ifndef JUMANJI_CORE_FEEDBACK_CONTROLLER_HH
#define JUMANJI_CORE_FEEDBACK_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "src/sim/stats.hh"

namespace jumanji {

/** Controller tuning (Fig. 9 sweeps these). */
struct ControllerParams
{
    /** Shrink when tail < lowFrac * deadline. */
    double lowFrac = 0.85;
    /** Grow when tail > highFrac * deadline. */
    double highFrac = 0.95;
    /** Panic when tail > panicFrac * deadline. */
    double panicFrac = 1.10;
    /** Multiplicative step for grow/shrink. */
    double stepFrac = 0.10;
    /** Requests per controller update (Listing 1). */
    std::uint32_t configurationInterval = 20;
    /** Tail percentile controlled. */
    double percentile = 95.0;
};

/**
 * One controller instance per latency-critical application.
 * Sizes are in cache lines.
 */
class FeedbackController
{
  public:
    /**
     * @param params Tuning parameters.
     * @param deadline Tail-latency deadline, in cycles.
     * @param initialLines Starting allocation.
     * @param panicLines "Canonical safe size" (1/8 LLC in the paper).
     * @param minLines / @param maxLines Clamping bounds.
     */
    FeedbackController(const ControllerParams &params, double deadline,
                       std::uint64_t initialLines,
                       std::uint64_t panicLines, std::uint64_t minLines,
                       std::uint64_t maxLines);

    /**
     * Records a completed request (Listing 1's RequestCompleted).
     * @return true if the controller updated the allocation.
     */
    bool requestCompleted(double latencyCycles);

    /** Current allocation target, in lines. */
    std::uint64_t targetLines() const { return targetLines_; }

    /** Deadline in cycles. */
    double deadline() const { return deadline_; }
    void setDeadline(double d) { deadline_ = d; }

    /** Most recent measured tail (0 until first update). */
    double lastTail() const { return lastTail_; }

    /** Number of panic boosts so far. */
    std::uint64_t panics() const { return panics_; }

    const ControllerParams &params() const { return params_; }

  private:
    void update(double tail);

    ControllerParams params_;
    double deadline_;
    std::uint64_t targetLines_;
    std::uint64_t panicLines_;
    std::uint64_t minLines_;
    std::uint64_t maxLines_;

    SampleStat window_;
    double lastTail_ = 0.0;
    std::uint64_t panics_ = 0;
};

} // namespace jumanji

#endif // JUMANJI_CORE_FEEDBACK_CONTROLLER_HH
