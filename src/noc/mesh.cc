#include "src/noc/mesh.hh"

#include <algorithm>

#include "src/sim/check.hh"
#include "src/sim/logging.hh"
#include "src/sim/statreg.hh"

namespace jumanji {

void
MeshTopology::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + "linkWaitCycles",
                   "cycles messages waited on busy links",
                   &linkWaitCycles_);
}

MeshTopology::MeshTopology(const MeshParams &params)
    : params_(params),
      linkBusyUntil_(static_cast<std::size_t>(params.cols) *
                         params.rows * 4,
                     0)
{
    if (params.cols == 0 || params.rows == 0)
        fatal("MeshTopology: mesh dimensions must be nonzero");
}

Tick
MeshTopology::traverse(Tick start, std::uint32_t fromTile,
                       std::uint32_t toTile, std::uint32_t flits)
{
    if (!params_.modelLinkContention)
        return start + traversalLatency(hops(fromTile, toTile));

    // Walk the X-Y route hop by hop, acquiring each directed link.
    Tick now = start;
    std::uint32_t x = xOf(fromTile), y = yOf(fromTile);
    std::uint32_t tx = xOf(toTile), ty = yOf(toTile);
    while (x != tx || y != ty) {
        std::uint32_t tile = y * params_.cols + x;
        std::uint32_t dir;
        if (x < tx) { dir = 0; x++; }        // east
        else if (x > tx) { dir = 1; x--; }   // west
        else if (y < ty) { dir = 2; y++; }   // south
        else { dir = 3; y--; }               // north

        Tick &busy = linkBusyUntil_[linkIndex(tile, dir)];
        Tick grant = std::max(now, busy);
        linkWaitCycles_ += grant - now;
        busy = grant + std::max<Tick>(1, flits);
        now = grant + params_.routerDelay + params_.linkDelay;
    }
    JUMANJI_ASSERT(now >= start,
                   "contended traversal finished before it started");
    return now;
}

std::uint32_t
MeshTopology::hops(std::uint32_t fromTile, std::uint32_t toTile) const
{
    JUMANJI_ASSERT(fromTile < numTiles() && toTile < numTiles(),
                   "tile index outside the mesh");
    std::int64_t dx = static_cast<std::int64_t>(xOf(fromTile)) -
                      static_cast<std::int64_t>(xOf(toTile));
    std::int64_t dy = static_cast<std::int64_t>(yOf(fromTile)) -
                      static_cast<std::int64_t>(yOf(toTile));
    std::uint32_t h =
        static_cast<std::uint32_t>(std::llabs(dx) + std::llabs(dy));
    // Mesh-hop bound: an X-Y route is at most the mesh semi-perimeter.
    JUMANJI_ASSERT(h <= params_.cols + params_.rows - 2,
                   "hop count exceeds the mesh semi-perimeter");
    return h;
}

Tick
MeshTopology::traversalLatency(std::uint32_t hopCount) const
{
    return static_cast<Tick>(hopCount) *
           (params_.routerDelay + params_.linkDelay);
}

Tick
MeshTopology::roundTrip(std::uint32_t coreTile, std::uint32_t bankTile) const
{
    return 2 * traversalLatency(hops(coreTile, bankTile));
}

std::uint32_t
MeshTopology::tileAt(std::uint32_t x, std::uint32_t y) const
{
    return std::min(y, params_.rows - 1) * params_.cols +
           std::min(x, params_.cols - 1);
}

std::vector<std::uint32_t>
MeshTopology::tilesByDistance(std::uint32_t fromTile) const
{
    std::vector<std::uint32_t> tiles(numTiles());
    for (std::uint32_t t = 0; t < numTiles(); t++) tiles[t] = t;
    std::stable_sort(tiles.begin(), tiles.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         std::uint32_t ha = hops(fromTile, a);
                         std::uint32_t hb = hops(fromTile, b);
                         if (ha != hb) return ha < hb;
                         return a < b;
                     });
    return tiles;
}

} // namespace jumanji
