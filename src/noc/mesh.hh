/**
 * @file
 * Mesh network-on-chip model: X-Y dimension-ordered routing with
 * per-hop router and link delays (Table II: 2-cycle pipelined
 * routers, 1-cycle links, 128-bit flits).
 *
 * The model is latency-oriented: a traversal of h hops costs
 * h * (routerDelay + linkDelay) per direction. Contention on links is
 * secondary for the paper's results (bank ports dominate) and is
 * approximated by the router-delay sensitivity study (Fig. 18).
 */

#ifndef JUMANJI_NOC_MESH_HH
#define JUMANJI_NOC_MESH_HH

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace jumanji {

class StatRegistry;

/** Mesh timing/geometry parameters. */
struct MeshParams
{
    std::uint32_t cols = 5;
    std::uint32_t rows = 4;
    /** Cycles per router traversal. */
    Tick routerDelay = 2;
    /** Cycles per link traversal. */
    Tick linkDelay = 1;
    /** Flits in a data response message (64 B line / 16 B flit). */
    std::uint32_t dataFlits = 4;
    /**
     * Model per-link occupancy (a message holds each link on its
     * X-Y route for `flits` cycles). Off by default: bank ports
     * dominate the paper's results, and the latency-only model is
     * much cheaper. The Fig. 11 harness enables it to reproduce the
     * paper's secondary elevations when the victim floods *other*
     * banks (its traffic congests links the attacker's route
     * shares).
     */
    bool modelLinkContention = false;
};

/**
 * A col x row mesh of tiles. Tile t sits at (t % cols, t / cols);
 * core c and LLC bank b share tile index c == b in our floorplan.
 */
class MeshTopology
{
  public:
    explicit MeshTopology(const MeshParams &params);

    std::uint32_t numTiles() const { return params_.cols * params_.rows; }
    const MeshParams &params() const { return params_; }

    /** Manhattan (X-Y route) hop count between two tiles. */
    std::uint32_t hops(std::uint32_t fromTile, std::uint32_t toTile) const;

    /** One-way traversal latency for @p hopCount hops. */
    Tick traversalLatency(std::uint32_t hopCount) const;

    /**
     * Round-trip latency core tile -> bank tile -> core tile.
     * Zero when the bank is local to the core's tile.
     */
    Tick roundTrip(std::uint32_t coreTile, std::uint32_t bankTile) const;

    /** Tile index nearest to the given (x, y); used for MC corners. */
    std::uint32_t tileAt(std::uint32_t x, std::uint32_t y) const;

    std::uint32_t xOf(std::uint32_t tile) const { return tile % params_.cols; }
    std::uint32_t yOf(std::uint32_t tile) const { return tile / params_.cols; }

    /**
     * All tiles sorted by distance from @p fromTile (ties broken by
     * tile id, so orders are deterministic). Used by the placers.
     */
    std::vector<std::uint32_t> tilesByDistance(std::uint32_t fromTile) const;

    /**
     * Timed traversal with link contention (X-Y route): each hop
     * waits for its directed link to free, then occupies it for
     * @p flits cycles. No-op extra delay when modelLinkContention is
     * off (returns start + traversalLatency).
     *
     * @param start Tick the message enters the network.
     * @return Arrival tick at @p toTile.
     */
    Tick traverse(Tick start, std::uint32_t fromTile,
                  std::uint32_t toTile, std::uint32_t flits);

    /** Total cycles spent waiting on busy links (contention stat). */
    std::uint64_t linkWaitCycles() const { return linkWaitCycles_; }

    /** Registers NoC stats under @p prefix ("noc."). */
    void registerStats(StatRegistry &reg, const std::string &prefix);

  private:
    /** Directed link index: 4 per tile (E, W, S, N). */
    std::size_t linkIndex(std::uint32_t tile, std::uint32_t dir) const
    {
        return static_cast<std::size_t>(tile) * 4 + dir;
    }

    MeshParams params_;
    /** Busy-until per directed link (contention model). */
    std::vector<Tick> linkBusyUntil_;
    std::uint64_t linkWaitCycles_ = 0;
};

} // namespace jumanji

#endif // JUMANJI_NOC_MESH_HH
