#include "src/system/config.hh"

#include "src/sim/fingerprint.hh"

namespace jumanji {

SystemConfig
SystemConfig::paperDefault()
{
    SystemConfig cfg;
    // Table II: 20 cores at 2.66 GHz, 20 x 1 MB 32-way banks, 13-cycle
    // banks, 5x4 mesh with 2-cycle routers and 1-cycle links, 4 MCs
    // at 120 cycles.
    cfg.llc.banks = 20;
    cfg.llc.setsPerBank = 512;
    cfg.llc.ways = 32;
    cfg.llc.repl = ReplKind::DRRIP;
    cfg.llc.timing.accessLatency = 13;
    cfg.llc.timing.ports = 1;
    cfg.llc.timing.portOccupancy = 1;

    cfg.mesh.cols = 5;
    cfg.mesh.rows = 4;
    cfg.mesh.routerDelay = 2;
    cfg.mesh.linkDelay = 1;

    cfg.mem.accessLatency = 120;
    cfg.mem.controllers = 4;

    cfg.umon.sets = 256;
    cfg.umon.ways = 64;

    // 100 ms at 2.66 GHz.
    cfg.epochTicks = 266000000;
    cfg.warmupTicks = 2 * cfg.epochTicks;
    cfg.measureTicks = 10 * cfg.epochTicks;
    return cfg;
}

SystemConfig
SystemConfig::benchScaled()
{
    SystemConfig cfg = paperDefault();
    // Same tile/bank/way geometry and latencies; capacity and time
    // are scaled down together by 4x so the compressed runs can warm
    // and exercise the cache exactly as long runs would at full
    // size. Banks: 1 MB -> 256 KB (128 sets x 32 ways); fewer sets
    // than this makes hard partitions lose real capacity to per-set
    // occupancy skew, distorting the partitioning-vs-sharing
    // comparison (DESIGN.md).
    cfg.llc.setsPerBank = 128;
    cfg.capacityScale = 0.25;
    cfg.epochTicks = 600000;
    cfg.warmupTicks = 4800000;
    cfg.measureTicks = 6000000;
    // Aim the controller at the middle of the deadline rather than
    // its edge: with ~100x fewer requests per window than the paper,
    // the tail estimate is noisy and an edge-riding equilibrium
    // produces spurious violations.
    cfg.controller.lowFrac = 0.75;
    cfg.controller.highFrac = 0.90;
    return cfg;
}

SystemConfig
SystemConfig::testTiny()
{
    SystemConfig cfg;
    cfg.llc.banks = 4;
    cfg.llc.setsPerBank = 64;
    cfg.llc.ways = 8;
    cfg.llc.repl = ReplKind::LRU;

    cfg.mesh.cols = 2;
    cfg.mesh.rows = 2;

    cfg.mem.controllers = 2;

    cfg.umon.sets = 32;
    cfg.umon.ways = 16;

    cfg.epochTicks = 20000;
    cfg.warmupTicks = 40000;
    cfg.measureTicks = 100000;
    return cfg;
}

void
foldConfig(Fingerprint &fp, const SystemConfig &cfg)
{
    fp.addU64(cfg.llc.banks);
    fp.addU64(cfg.llc.setsPerBank);
    fp.addU64(cfg.llc.ways);
    fp.addI64(static_cast<std::int64_t>(cfg.llc.repl));
    fp.addU64(cfg.llc.timing.accessLatency);
    fp.addU64(cfg.llc.timing.ports);
    fp.addU64(cfg.llc.timing.portOccupancy);

    fp.addU64(cfg.mesh.cols);
    fp.addU64(cfg.mesh.rows);
    fp.addU64(cfg.mesh.routerDelay);
    fp.addU64(cfg.mesh.linkDelay);
    fp.addU64(cfg.mesh.dataFlits);
    fp.addU64(cfg.mesh.modelLinkContention ? 1 : 0);

    fp.addU64(cfg.mem.accessLatency);
    fp.addU64(cfg.mem.serviceInterval);
    fp.addU64(cfg.mem.controllers);
    fp.addU64(cfg.mem.partitionBandwidth ? 1 : 0);

    fp.addU64(cfg.umon.sets);
    fp.addU64(cfg.umon.ways);
    fp.addU64(cfg.umon.modelledLines);

    fp.addDouble(cfg.controller.lowFrac);
    fp.addDouble(cfg.controller.highFrac);
    fp.addDouble(cfg.controller.panicFrac);
    fp.addDouble(cfg.controller.stepFrac);
    fp.addU64(cfg.controller.configurationInterval);
    fp.addDouble(cfg.controller.percentile);

    fp.addI64(static_cast<std::int64_t>(cfg.design));
    fp.addI64(static_cast<std::int64_t>(cfg.load));
    fp.addU64(cfg.epochTicks);
    fp.addU64(cfg.warmupTicks);
    fp.addU64(cfg.measureTicks);
    fp.addU64(cfg.seed);
    fp.addDouble(cfg.capacityScale);
    fp.addDouble(cfg.utilizationOverride);
    fp.addU64(cfg.fixedLcTargetLines);
    fp.addDouble(cfg.nominalLlcLatency);
    fp.addU64(cfg.hullCurves ? 1 : 0);
    fp.addU64(cfg.rateNormalizeCurves ? 1 : 0);
    fp.addU64(cfg.migrateOnReconfig ? 1 : 0);
    fp.addDouble(cfg.deadlinePadding);

    fp.addString(cfg.kv.trace);
    fp.addDouble(cfg.kv.peakMultiplier);
    fp.addDouble(cfg.kv.loadScale);

    fp.addU64(cfg.timelineStats.size());
    for (const std::string &sel : cfg.timelineStats) fp.addString(sel);
}

PlacementGeometry
SystemConfig::placementGeometry() const
{
    PlacementGeometry geo;
    geo.banks = llc.banks;
    geo.waysPerBank = llc.ways;
    geo.linesPerBank = static_cast<std::uint64_t>(llc.setsPerBank) *
                       llc.ways;
    geo.linesPerBucket =
        std::max<std::uint64_t>(1, geo.totalLines() / umon.ways);
    return geo;
}

} // namespace jumanji
