/**
 * @file
 * SystemConfig <-> JSON: the serialization half of the scenario
 * layer (docs/INTERNALS.md §12).
 *
 * The discipline mirrors foldConfig (config.cc): every
 * result-affecting field appears in toJson and is accepted by
 * applyConfigJson, so a config is fully reconstructible from its
 * JSON form — proven by the fingerprint round-trip test
 * (tests/test_spec.cc). Adding a SystemConfig field means updating
 * foldConfig, toJson, and applyConfigJson together.
 *
 * Validation is strict and precise: unknown keys, type mismatches,
 * out-of-range values, and inconsistent geometry all throw
 * FatalError with a "field: reason" message naming the dotted path
 * ("mesh.cols: must be >= 1"), never a silent default.
 */

#include <cinttypes>
#include <cstdio>

#include "src/sim/json.hh"
#include "src/sim/logging.hh"
#include "src/system/config.hh"
#include "src/workloads/kv/load_trace.hh"

namespace jumanji {

namespace {

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/**
 * Strict object walker: get() marks a key consumed, finish() rejects
 * everything unconsumed. Member order in the file is irrelevant;
 * unknown keys are fatal so typos cannot silently no-op.
 */
class ObjectReader
{
  public:
    ObjectReader(const JsonValue &json, std::string prefix)
        : json_(json), prefix_(std::move(prefix))
    {
        if (!json.isObject())
            fatal(label() + ": expected object, got " +
                  json.kindName());
        consumed_.resize(json.members().size(), false);
    }

    /** Member named @p key, or nullptr when absent. */
    const JsonValue *
    get(const std::string &key)
    {
        const auto &members = json_.members();
        for (std::size_t i = 0; i < members.size(); i++) {
            if (members[i].first == key) {
                consumed_[i] = true;
                return &members[i].second;
            }
        }
        return nullptr;
    }

    std::string
    path(const std::string &key) const
    {
        return prefix_.empty() ? key : prefix_ + "." + key;
    }

    void
    finish() const
    {
        const auto &members = json_.members();
        for (std::size_t i = 0; i < members.size(); i++)
            if (!consumed_[i])
                fatal(path(members[i].first) + ": unknown key");
    }

  private:
    const JsonValue &json_;
    std::string prefix_;
    std::vector<bool> consumed_;

    std::string
    label() const
    {
        return prefix_.empty() ? "config" : prefix_;
    }
};

// Typed field setters: assign only when the key is present, with the
// range stated once and enforced at parse time.

void
setU32(ObjectReader &r, const std::string &key, std::uint32_t &out,
       std::uint32_t min, std::uint32_t max = 0xffffffffu)
{
    const JsonValue *v = r.get(key);
    if (v == nullptr) return;
    std::uint32_t parsed = v->asU32(r.path(key));
    if (parsed < min)
        fatal(r.path(key) + ": must be >= " + std::to_string(min));
    if (parsed > max)
        fatal(r.path(key) + ": must be <= " + std::to_string(max));
    out = parsed;
}

void
setU64(ObjectReader &r, const std::string &key, std::uint64_t &out,
       std::uint64_t min)
{
    const JsonValue *v = r.get(key);
    if (v == nullptr) return;
    std::uint64_t parsed = v->asU64(r.path(key));
    if (parsed < min)
        fatal(r.path(key) + ": must be >= " + std::to_string(min));
    out = parsed;
}

void
setDouble(ObjectReader &r, const std::string &key, double &out,
          double min, double max, bool minExclusive)
{
    const JsonValue *v = r.get(key);
    if (v == nullptr) return;
    double parsed = v->asDouble(r.path(key));
    if (minExclusive ? parsed <= min : parsed < min)
        fatal(r.path(key) + ": must be " +
              (minExclusive ? "> " : ">= ") + fmtDouble(min));
    if (parsed > max)
        fatal(r.path(key) + ": must be <= " + fmtDouble(max));
    out = parsed;
}

void
setBool(ObjectReader &r, const std::string &key, bool &out)
{
    const JsonValue *v = r.get(key);
    if (v == nullptr) return;
    out = v->asBool(r.path(key));
}

ReplKind
replKindFromName(const std::string &name, const std::string &path)
{
    for (ReplKind kind : {ReplKind::LRU, ReplKind::SRRIP,
                          ReplKind::BRRIP, ReplKind::DRRIP})
        if (name == replKindName(kind)) return kind;
    fatal(path + ": unknown replacement policy \"" + name +
          "\" (LRU|SRRIP|BRRIP|DRRIP)");
}

void
applyLlc(LlcParams &llc, const JsonValue &json)
{
    ObjectReader r(json, "llc");
    setU32(r, "banks", llc.banks, 1);
    setU32(r, "setsPerBank", llc.setsPerBank, 1);
    // WayMask is a 64-bit bitmap; more than 64 ways cannot be masked.
    setU32(r, "ways", llc.ways, 1, 64);
    if (const JsonValue *v = r.get("repl"))
        llc.repl = replKindFromName(v->asString(r.path("repl")),
                                    r.path("repl"));
    setU64(r, "accessLatency", llc.timing.accessLatency, 1);
    setU32(r, "ports", llc.timing.ports, 1);
    setU64(r, "portOccupancy", llc.timing.portOccupancy, 1);
    r.finish();
}

void
applyMesh(MeshParams &mesh, const JsonValue &json)
{
    ObjectReader r(json, "mesh");
    setU32(r, "cols", mesh.cols, 1);
    setU32(r, "rows", mesh.rows, 1);
    setU64(r, "routerDelay", mesh.routerDelay, 0);
    setU64(r, "linkDelay", mesh.linkDelay, 0);
    setU32(r, "dataFlits", mesh.dataFlits, 1);
    setBool(r, "modelLinkContention", mesh.modelLinkContention);
    r.finish();
}

void
applyMem(MemoryParams &mem, const JsonValue &json)
{
    ObjectReader r(json, "mem");
    setU64(r, "accessLatency", mem.accessLatency, 1);
    setU64(r, "serviceInterval", mem.serviceInterval, 1);
    setU32(r, "controllers", mem.controllers, 1);
    setBool(r, "partitionBandwidth", mem.partitionBandwidth);
    r.finish();
}

void
applyUmon(UmonParams &umon, const JsonValue &json)
{
    ObjectReader r(json, "umon");
    setU32(r, "sets", umon.sets, 1);
    setU32(r, "ways", umon.ways, 1);
    setU64(r, "modelledLines", umon.modelledLines, 1);
    r.finish();
}

void
applyController(ControllerParams &ctl, const JsonValue &json)
{
    ObjectReader r(json, "controller");
    setDouble(r, "lowFrac", ctl.lowFrac, 0.0, 10.0, true);
    setDouble(r, "highFrac", ctl.highFrac, 0.0, 10.0, true);
    setDouble(r, "panicFrac", ctl.panicFrac, 0.0, 10.0, true);
    setDouble(r, "stepFrac", ctl.stepFrac, 0.0, 1.0, true);
    setU32(r, "configurationInterval", ctl.configurationInterval, 1);
    setDouble(r, "percentile", ctl.percentile, 0.0, 100.0, true);
    r.finish();
}

void
applyKv(KvTrafficConfig &kv, const JsonValue &json)
{
    ObjectReader r(json, "kv");
    if (const JsonValue *v = r.get("trace")) {
        std::string name = v->asString(r.path("trace"));
        bool known = false;
        for (const std::string &t : allLoadTraceNames())
            if (t == name) known = true;
        if (!known) {
            std::string list;
            for (const std::string &t : allLoadTraceNames())
                list += (list.empty() ? "" : "|") + t;
            fatal(r.path("trace") + ": unknown load trace \"" +
                  name + "\" (" + list + ")");
        }
        kv.trace = name;
    }
    setDouble(r, "peakMultiplier", kv.peakMultiplier, 1.0, 64.0,
              false);
    setDouble(r, "loadScale", kv.loadScale, 0.0, 1e3, true);
    r.finish();
}

} // namespace

LlcDesign
llcDesignFromName(const std::string &name, const std::string &path)
{
    for (LlcDesign d :
         {LlcDesign::Static, LlcDesign::Adaptive, LlcDesign::VMPart,
          LlcDesign::Jigsaw, LlcDesign::Jumanji,
          LlcDesign::JumanjiInsecure, LlcDesign::JumanjiIdealBatch})
        if (name == llcDesignName(d)) return d;
    fatal(path + ": unknown design \"" + name +
          "\" (Static|Adaptive|VM-Part|Jigsaw|Jumanji|"
          "Jumanji-Insecure|Jumanji-IdealBatch)");
}

LoadLevel
loadLevelFromName(const std::string &name, const std::string &path)
{
    if (name == loadName(LoadLevel::Low)) return LoadLevel::Low;
    if (name == loadName(LoadLevel::High)) return LoadLevel::High;
    fatal(path + ": unknown load \"" + name + "\" (low|high)");
}

SystemConfig
configPreset(const std::string &name, const std::string &path)
{
    if (name == "paperDefault") return SystemConfig::paperDefault();
    if (name == "benchScaled") return SystemConfig::benchScaled();
    if (name == "testTiny") return SystemConfig::testTiny();
    fatal(path + ": unknown preset \"" + name +
          "\" (paperDefault|benchScaled|testTiny)");
}

void
applyConfigJson(SystemConfig &cfg, const JsonValue &json)
{
    ObjectReader r(json, "");
    if (const JsonValue *v = r.get("llc")) applyLlc(cfg.llc, *v);
    if (const JsonValue *v = r.get("mesh")) applyMesh(cfg.mesh, *v);
    if (const JsonValue *v = r.get("mem")) applyMem(cfg.mem, *v);
    if (const JsonValue *v = r.get("umon")) applyUmon(cfg.umon, *v);
    if (const JsonValue *v = r.get("controller"))
        applyController(cfg.controller, *v);
    if (const JsonValue *v = r.get("kv")) applyKv(cfg.kv, *v);

    if (const JsonValue *v = r.get("design"))
        cfg.design = llcDesignFromName(v->asString("design"), "design");
    if (const JsonValue *v = r.get("load"))
        cfg.load = loadLevelFromName(v->asString("load"), "load");

    setU64(r, "epochTicks", cfg.epochTicks, 1);
    setU64(r, "warmupTicks", cfg.warmupTicks, 0);
    setU64(r, "measureTicks", cfg.measureTicks, 1);
    // Seed 0 is reserved as "unset" across the project (JUMANJI_SEED
    // treats it as invalid), so configs must use >= 1.
    setU64(r, "seed", cfg.seed, 1);
    setDouble(r, "capacityScale", cfg.capacityScale, 0.0, 1e6, true);
    setDouble(r, "utilizationOverride", cfg.utilizationOverride, 0.0,
              1.0, false);
    setU64(r, "fixedLcTargetLines", cfg.fixedLcTargetLines, 0);
    setDouble(r, "nominalLlcLatency", cfg.nominalLlcLatency, 0.0, 1e9,
              true);
    setBool(r, "hullCurves", cfg.hullCurves);
    setBool(r, "rateNormalizeCurves", cfg.rateNormalizeCurves);
    setBool(r, "migrateOnReconfig", cfg.migrateOnReconfig);
    setDouble(r, "deadlinePadding", cfg.deadlinePadding, 0.0, 1e3,
              true);

    if (const JsonValue *v = r.get("timelineStats")) {
        if (!v->isArray())
            fatal("timelineStats: expected array, got " +
                  std::string(v->kindName()));
        std::vector<std::string> selectors;
        for (std::size_t i = 0; i < v->items().size(); i++)
            selectors.push_back(v->items()[i].asString(
                "timelineStats[" + std::to_string(i) + "]"));
        cfg.timelineStats = std::move(selectors);
    }
    r.finish();
}

void
validateConfig(const SystemConfig &cfg)
{
    std::uint32_t tiles = cfg.mesh.cols * cfg.mesh.rows;
    if (cfg.llc.banks != tiles)
        fatal("llc.banks: " + std::to_string(cfg.llc.banks) +
              " banks but mesh is " + std::to_string(cfg.mesh.cols) +
              "x" + std::to_string(cfg.mesh.rows) + " = " +
              std::to_string(tiles) +
              " tiles (banks must equal mesh tiles)");
    if (cfg.controller.lowFrac >= cfg.controller.highFrac)
        fatal("controller.lowFrac: must be < controller.highFrac (" +
              fmtDouble(cfg.controller.lowFrac) + " >= " +
              fmtDouble(cfg.controller.highFrac) + ")");
    if (cfg.controller.highFrac >= cfg.controller.panicFrac)
        fatal("controller.highFrac: must be < controller.panicFrac (" +
              fmtDouble(cfg.controller.highFrac) + " >= " +
              fmtDouble(cfg.controller.panicFrac) + ")");
    if (cfg.measureTicks < cfg.epochTicks)
        fatal("measureTicks: must be >= epochTicks (" +
              std::to_string(cfg.measureTicks) + " < " +
              std::to_string(cfg.epochTicks) +
              "); the measurement window must cover at least one "
              "reconfiguration epoch");
}

JsonValue
SystemConfig::toJson() const
{
    JsonValue root = JsonValue::makeObject();

    JsonValue jLlc = JsonValue::makeObject();
    jLlc.set("banks", JsonValue::makeU64(llc.banks));
    jLlc.set("setsPerBank", JsonValue::makeU64(llc.setsPerBank));
    jLlc.set("ways", JsonValue::makeU64(llc.ways));
    jLlc.set("repl",
             JsonValue::makeString(replKindName(llc.repl)));
    jLlc.set("accessLatency",
             JsonValue::makeU64(llc.timing.accessLatency));
    jLlc.set("ports", JsonValue::makeU64(llc.timing.ports));
    jLlc.set("portOccupancy",
             JsonValue::makeU64(llc.timing.portOccupancy));
    root.set("llc", std::move(jLlc));

    JsonValue jMesh = JsonValue::makeObject();
    jMesh.set("cols", JsonValue::makeU64(mesh.cols));
    jMesh.set("rows", JsonValue::makeU64(mesh.rows));
    jMesh.set("routerDelay", JsonValue::makeU64(mesh.routerDelay));
    jMesh.set("linkDelay", JsonValue::makeU64(mesh.linkDelay));
    jMesh.set("dataFlits", JsonValue::makeU64(mesh.dataFlits));
    jMesh.set("modelLinkContention",
              JsonValue::makeBool(mesh.modelLinkContention));
    root.set("mesh", std::move(jMesh));

    JsonValue jMem = JsonValue::makeObject();
    jMem.set("accessLatency", JsonValue::makeU64(mem.accessLatency));
    jMem.set("serviceInterval",
             JsonValue::makeU64(mem.serviceInterval));
    jMem.set("controllers", JsonValue::makeU64(mem.controllers));
    jMem.set("partitionBandwidth",
             JsonValue::makeBool(mem.partitionBandwidth));
    root.set("mem", std::move(jMem));

    JsonValue jUmon = JsonValue::makeObject();
    jUmon.set("sets", JsonValue::makeU64(umon.sets));
    jUmon.set("ways", JsonValue::makeU64(umon.ways));
    jUmon.set("modelledLines",
              JsonValue::makeU64(umon.modelledLines));
    root.set("umon", std::move(jUmon));

    JsonValue jCtl = JsonValue::makeObject();
    jCtl.set("lowFrac", JsonValue::makeNumber(controller.lowFrac));
    jCtl.set("highFrac", JsonValue::makeNumber(controller.highFrac));
    jCtl.set("panicFrac", JsonValue::makeNumber(controller.panicFrac));
    jCtl.set("stepFrac", JsonValue::makeNumber(controller.stepFrac));
    jCtl.set("configurationInterval",
             JsonValue::makeU64(controller.configurationInterval));
    jCtl.set("percentile",
             JsonValue::makeNumber(controller.percentile));
    root.set("controller", std::move(jCtl));

    JsonValue jKv = JsonValue::makeObject();
    jKv.set("trace", JsonValue::makeString(kv.trace));
    jKv.set("peakMultiplier",
            JsonValue::makeNumber(kv.peakMultiplier));
    jKv.set("loadScale", JsonValue::makeNumber(kv.loadScale));
    root.set("kv", std::move(jKv));

    root.set("design",
             JsonValue::makeString(llcDesignName(design)));
    root.set("load", JsonValue::makeString(loadName(load)));
    root.set("epochTicks", JsonValue::makeU64(epochTicks));
    root.set("warmupTicks", JsonValue::makeU64(warmupTicks));
    root.set("measureTicks", JsonValue::makeU64(measureTicks));
    root.set("seed", JsonValue::makeU64(seed));
    root.set("capacityScale", JsonValue::makeNumber(capacityScale));
    root.set("utilizationOverride",
             JsonValue::makeNumber(utilizationOverride));
    root.set("fixedLcTargetLines",
             JsonValue::makeU64(fixedLcTargetLines));
    root.set("nominalLlcLatency",
             JsonValue::makeNumber(nominalLlcLatency));
    root.set("hullCurves", JsonValue::makeBool(hullCurves));
    root.set("rateNormalizeCurves",
             JsonValue::makeBool(rateNormalizeCurves));
    root.set("migrateOnReconfig",
             JsonValue::makeBool(migrateOnReconfig));
    root.set("deadlinePadding",
             JsonValue::makeNumber(deadlinePadding));

    JsonValue jStats = JsonValue::makeArray();
    for (const std::string &sel : timelineStats)
        jStats.push(JsonValue::makeString(sel));
    root.set("timelineStats", std::move(jStats));
    return root;
}

SystemConfig
SystemConfig::fromJson(const JsonValue &json)
{
    SystemConfig cfg;
    applyConfigJson(cfg, json);
    validateConfig(cfg);
    return cfg;
}

} // namespace jumanji
