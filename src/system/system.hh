/**
 * @file
 * System: assembles a full simulated machine — cores, apps, the LLC
 * complex (MemPath), the runtime, and the DES kernel — from a
 * SystemConfig and a WorkloadMix, runs it, and exposes results.
 *
 * This is the library's primary entry point; see examples/ for use.
 */

#ifndef JUMANJI_SYSTEM_SYSTEM_HH
#define JUMANJI_SYSTEM_SYSTEM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/runtime_driver.hh"
#include "src/cpu/core_model.hh"
#include "src/metrics/energy.hh"
#include "src/metrics/speedup.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/statreg.hh"
#include "src/system/config.hh"
#include "src/workloads/kv/kv_store.hh"
#include "src/workloads/mixes.hh"
#include "src/workloads/tail_latency.hh"

namespace jumanji {

/** Per-application results over the measurement window. */
struct AppResult
{
    std::string name;
    AppId app = kInvalidApp;
    VmId vm = kInvalidVm;
    bool latencyCritical = false;
    AppProgress progress;
    AccessCounters counters;
    /** Mean end-to-end LLC access latency observed (cycles). */
    double avgAccessLatency = 0.0;
    /** LC apps: 95th-percentile request latency (cycles). */
    double tailLatency = 0.0;
    /** LC apps: deadline used by the controller (cycles). */
    double deadline = 0.0;
    std::uint64_t requestsCompleted = 0;
};

/** Calibrated characteristics of one LC app (Sec. VII). */
struct LcCalibration
{
    /** Uncontended mean service time, cycles (sets arrival rates). */
    double serviceCycles = 0.0;
    /** Tail-latency deadline, cycles. */
    double deadline = 0.0;
};

using LcCalibrationMap = std::map<std::string, LcCalibration>;

/** Results of one System run. */
struct RunResult
{
    std::vector<AppResult> apps;
    double attackersPerAccess = 0.0;
    EnergyBreakdown energy;
    Tick measuredTicks = 0;
    std::uint64_t reconfigurations = 0;
    std::uint64_t coherenceInvalidations = 0;

    /**
     * End-of-run registry snapshot (every leaf, sorted by name) and
     * the per-epoch time series the recorder sampled. Both outlive
     * the System that produced them.
     */
    std::vector<StatValue> statDump;
    TimelineSeries timeline;

    /**
     * Value of registry leaf @p name in statDump, or @p fallback when
     * the leaf does not exist.
     */
    double stat(const std::string &name, double fallback = 0.0) const;

    /** Weighted speedup of batch apps vs. a reference run. */
    double batchWeightedSpeedup(const RunResult &reference) const;

    /** Max over LC apps of tail / deadline. */
    double worstTailRatio() const;

    /** Mean over LC apps of tail / deadline (less estimator noise). */
    double meanTailRatio() const;
};

/**
 * A fully assembled simulated machine.
 */
class System
{
  public:
    /**
     * @param config System parameters.
     * @param mix Workload (VMs with LC + batch apps).
     * @param calibrations Per-LC-app-name measured service times and
     *        deadlines. Apps missing from the map fall back to the
     *        analytic nominal service estimate and a 5x-nominal
     *        deadline (good enough for tests; the harness always
     *        calibrates).
     */
    System(const SystemConfig &config, const WorkloadMix &mix,
           const LcCalibrationMap &calibrations = {});

    ~System();

    /** Runs warmup + measurement; returns results. */
    RunResult run();

    /** Runs only until @p tick (manual control; tests). */
    void runUntil(Tick tick);

    /** Begins the measurement window at the current time. */
    void startMeasurement();

    /** Collects results since startMeasurement(). */
    RunResult collect();

    /** Nominal (uncontended) service time for an LC app, cycles. */
    static double nominalServiceCycles(const TailAppParams &params,
                                       double llcLatency);

    MemPath &memPath() { return *path_; }
    RuntimeDriver &runtime() { return *runtime_; }
    EventQueue &queue() { return queue_; }
    const SystemConfig &config() const { return config_; }

    /** The hierarchical stats registry (read-only queries). */
    const StatRegistry &stats() const { return statreg_; }

    /** The per-epoch recorder feeding RunResult::timeline. */
    const EpochRecorder &recorder() const { return *recorder_; }

    /** The epoch-by-epoch allocation timeline (Fig. 4b). */
    const std::vector<EpochRecord> &
    allocationTimeline() const
    {
        return runtime_->timeline();
    }

    /** Per-epoch attackers-per-access samples (Fig. 4c). */
    const std::vector<double> &
    vulnerabilityTimeline() const
    {
        return vulnTimeline_;
    }

    /** Per-epoch mean LC latency samples per LC app (Fig. 4a). */
    const std::map<std::string, std::vector<double>> &
    latencyTimeline() const
    {
        return latencyTimeline_;
    }

    /** Cores, in app order. */
    const std::vector<std::unique_ptr<CoreModel>> &
    cores() const
    {
        return cores_;
    }

    /** The LC app models (for load changes etc.). */
    std::vector<TailLatencyApp *> tailApps();

    /**
     * Migrates app @p appIndex's thread to @p newTile (Sec. IV-B).
     * The core agent is re-anchored and the runtime is informed so
     * the next reconfiguration moves the LLC allocation along with
     * the thread. @p newTile must not host another app.
     */
    void migrateApp(std::size_t appIndex, std::uint32_t newTile);

    /** The KV app models, in app order (empty for non-KV mixes). */
    const std::vector<KvServerApp *> &kvApps() const
    {
        return kvApps_;
    }

    /** The KV offered-load trace (empty for non-KV mixes). */
    const LoadTrace &kvTrace() const { return kvTrace_; }

  private:
    /** Epoch bookkeeping agent (timelines). */
    class Sampler;
    /** Applies the KV load trace to the KV apps over time. */
    class KvLoadAgent;

    /** Mean over KV apps of phase latency percentile / deadline. */
    double kvPhaseRatio(const std::string &phase, double p) const;

    void assignTiles(const WorkloadMix &mix);
    void buildApps(const WorkloadMix &mix,
                   const LcCalibrationMap &calibrations);
    /** Populates statreg_; runs after buildApps so UMONs exist. */
    void registerStats();
    /** Allocates trace lanes and attaches the tracer, if any. */
    void setupTracing();

    SystemConfig config_;
    EventQueue queue_;
    std::unique_ptr<MemPath> path_;
    std::unique_ptr<MemPath> idealBatchPath_;
    std::unique_ptr<RuntimeDriver> runtime_;
    std::unique_ptr<Sampler> sampler_;
    std::unique_ptr<KvLoadAgent> kvAgent_;

    /** Offered-load trace driving kvApps_ (empty when none). */
    LoadTrace kvTrace_;
    std::vector<KvServerApp *> kvApps_;

    /** Declared before recorder_: the recorder samples it. */
    StatRegistry statreg_;
    std::unique_ptr<EpochRecorder> recorder_;

    /** Trace lane block (valid when config_.tracer != nullptr). */
    std::uint32_t tracePid_ = 0;
    /**
     * Per-bank counter-track names, interned into the tracer's
     * pointer-stable storage once at setup so the sampler's per-epoch
     * emission skips the interning lookup.
     */
    std::vector<const char *> bankTrackNames_;

    struct AppSlot
    {
        std::string name;
        VmId vm = kInvalidVm;
        bool latencyCritical = false;
        std::uint32_t tile = 0;
        double deadline = 0.0;
    };
    std::vector<AppSlot> slots_;
    std::vector<std::unique_ptr<AppModel>> apps_;
    std::vector<std::unique_ptr<CoreModel>> cores_;

    Tick measureStart_ = 0;
    AccessCounters countersAtStart_;
    std::vector<double> vulnTimeline_;
    std::map<std::string, std::vector<double>> latencyTimeline_;

    Rng rootRng_;
};

} // namespace jumanji

#endif // JUMANJI_SYSTEM_SYSTEM_HH
