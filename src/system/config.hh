/**
 * @file
 * Top-level system configuration (Table II) and time-scaled presets.
 *
 * paperDefault() reproduces Table II exactly. benchScaled() keeps the
 * geometry and all policy parameters but shrinks the reconfiguration
 * epoch and measurement windows so the full benchmark suite runs in
 * minutes instead of the paper's 969 trillion simulated cycles; load
 * levels (10%/50% utilization) are expressed as ratios, so the
 * relative results are preserved (see DESIGN.md).
 */

#ifndef JUMANJI_SYSTEM_CONFIG_HH
#define JUMANJI_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/feedback_controller.hh"
#include "src/core/policies.hh"
#include "src/cpu/mem_path.hh"
#include "src/dnuca/umon.hh"
#include "src/mem/memory.hh"
#include "src/noc/mesh.hh"
#include "src/sim/types.hh"

namespace jumanji {

class Tracer;
class JsonValue;

/** Load levels from Table III (fraction of service capacity). */
enum class LoadLevel
{
    Low,  ///< 10% utilization
    High, ///< 50% utilization
};

inline double
loadUtilization(LoadLevel load)
{
    return load == LoadLevel::Low ? 0.10 : 0.50;
}

inline const char *
loadName(LoadLevel load)
{
    return load == LoadLevel::Low ? "low" : "high";
}

/**
 * Traffic shaping for KV-serving LC apps (src/workloads/kv/). Only
 * consulted when the mix contains a KV app; plain TailBench mixes
 * ignore it entirely, so default-valued kv fields leave existing
 * runs untouched.
 */
struct KvTrafficConfig
{
    /** Load-trace preset name (see allLoadTraceNames()). */
    std::string trace = "flat";
    /** Peak/spike load as a multiple of the base rate. */
    double peakMultiplier = 4.0;
    /** Global factor on the offered load (env: JUMANJI_KV_LOAD_SCALE). */
    double loadScale = 1.0;
};

/** Full system configuration. */
struct SystemConfig
{
    LlcParams llc;
    MeshParams mesh;
    MemoryParams mem;
    UmonParams umon;
    ControllerParams controller;

    LlcDesign design = LlcDesign::Jumanji;
    LoadLevel load = LoadLevel::High;

    /** Reconfiguration period, cycles (paper: 100 ms = 266 Mcycles). */
    Tick epochTicks = 500000;
    /** Warmup before measurement, cycles. */
    Tick warmupTicks = 1500000;
    /** Measurement window, cycles. */
    Tick measureTicks = 3000000;

    /** Master seed: all randomness derives from it. */
    std::uint64_t seed = 1;

    /**
     * Capacity scale: all workload footprints are multiplied by this
     * factor when apps are instantiated. benchScaled() shrinks banks
     * and footprints together (1/8) so that the compressed time
     * scale can still warm and exercise the full cache; every
     * capacity *ratio* (footprint vs. LLC, allocation vs. deadline)
     * is preserved. paperDefault() keeps 1.0.
     */
    double capacityScale = 1.0;

    /**
     * When > 0, overrides the LoadLevel utilization (used by the
     * harness's service-time calibration runs).
     */
    double utilizationOverride = 0.0;

    /**
     * When > 0, latency-critical allocations are pinned to this many
     * lines instead of being feedback-controlled (Fig. 8 and Fig. 12
     * study fixed partitions).
     */
    std::uint64_t fixedLcTargetLines = 0;

    /** Average LLC latency estimate used to size LC service rates. */
    double nominalLlcLatency = 30.0;

    // ---- Ablation switches (bench/ablation_design_choices) ----

    /** Convex-hull miss curves (the paper's DRRIP approximation). */
    bool hullCurves = true;
    /** Rate-normalize batch curves (see RuntimeAppInfo). */
    bool rateNormalizeCurves = true;
    /**
     * Migrate lines on reconfiguration (the scaled-simulator model
     * of the background coherence walk); false = invalidate them as
     * the Jigsaw hardware literally does, which at compressed epoch
     * length over-penalizes reconfiguration (DESIGN.md).
     */
    bool migrateOnReconfig = true;

    /**
     * Deadline slack multiplier applied to the calibrated solo p95.
     * The paper uses the raw p95; our time-scaled runs estimate p95
     * from ~100x fewer requests per window, so the worst-of-N-VMs
     * estimator is biased upward. The padding compensates so that
     * tail-aware designs can actually settle at the deadline instead
     * of pegging their controllers at max allocation (DESIGN.md).
     */
    double deadlinePadding = 1.6;

    /** KV-serving traffic shape (ignored by non-KV mixes). */
    KvTrafficConfig kv;

    // ---- Observability ----

    /**
     * Event tracer (non-owning; nullptr = tracing off, the default).
     * The System allocates its own lane block via Tracer::beginRun,
     * so several Systems may share one tracer.
     */
    Tracer *tracer = nullptr;

    /** Label prefixed to this run's trace process names. */
    std::string traceLabel = "system";

    /**
     * Dotted-name prefixes selecting which registry leaves the
     * per-epoch recorder samples (see EpochRecorder).
     */
    std::vector<std::string> timelineStats = {"apps.", "epoch.",
                                              "llc.bank", "runtime."};

    /** Table II parameters with paper-scale time constants. */
    static SystemConfig paperDefault();

    /** Table II geometry with bench-scale time constants. */
    static SystemConfig benchScaled();

    /** A tiny geometry for unit tests (4 banks, 2x2 mesh). */
    static SystemConfig testTiny();

    /** Derived placement geometry. */
    PlacementGeometry placementGeometry() const;

    // ---- Serialization (docs/INTERNALS.md §12) ----

    /**
     * Serializes every result-affecting field (everything
     * foldConfig folds) as a JSON object, nested by parameter block
     * (llc / mesh / mem / umon / controller + top-level scalars).
     * Observability handles (tracer, traceLabel) are not data and
     * are excluded; timelineStats is included.
     */
    JsonValue toJson() const;

    /**
     * Strict inverse of toJson: default-constructed config +
     * applyConfigJson + validateConfig. Round-tripping is identity
     * under the foldConfig fingerprint. Throws FatalError with a
     * "field: reason" diagnostic on unknown keys, type mismatches,
     * out-of-range values, or inconsistent geometry.
     */
    static SystemConfig fromJson(const JsonValue &json);
};

/**
 * Applies a (possibly partial) JSON object onto @p cfg: every key
 * present is validated (type + range) and assigned; unknown keys are
 * fatal. This is the "overrides" half of the scenario layer — a
 * preset plus a patch. Callers compose with validateConfig for the
 * cross-field rules.
 */
void applyConfigJson(SystemConfig &cfg, const JsonValue &json);

/**
 * Cross-field validation: bank count must equal mesh tiles, the
 * controller's thresholds must be ordered
 * (lowFrac < highFrac < panicFrac), and the measurement windows must
 * be non-degenerate. Throws FatalError ("field: reason") on the
 * first violation.
 */
void validateConfig(const SystemConfig &cfg);

/**
 * Named preset lookup for scenario files: "paperDefault" |
 * "benchScaled" | "testTiny". @p path labels the diagnostic on an
 * unknown name.
 */
SystemConfig configPreset(const std::string &name,
                          const std::string &path = "preset");

/** Parses an llcDesignName() string; fatal("<path>: ...") otherwise. */
LlcDesign llcDesignFromName(const std::string &name,
                            const std::string &path);

/** Parses a loadName() string; fatal("<path>: ...") otherwise. */
LoadLevel loadLevelFromName(const std::string &name,
                            const std::string &path);

class Fingerprint;

/**
 * Folds every result-affecting field of @p cfg into @p fp — the
 * config half of the driver's content-addressed result-cache key
 * (src/driver/result_cache.hh). Editing any parameter that can change
 * simulation output must change this digest, so new SystemConfig
 * fields must be added here (the cache would otherwise serve stale
 * results). Observability handles (tracer, traceLabel) are excluded:
 * they do not affect stats. timelineStats is included because it
 * selects the recorded timeline columns, which RunResult carries.
 */
void foldConfig(Fingerprint &fp, const SystemConfig &cfg);

} // namespace jumanji

#endif // JUMANJI_SYSTEM_CONFIG_HH
