/**
 * @file
 * ExperimentHarness: the evaluation methodology of Sec. VII as
 * reusable code — deadline calibration, per-design runs over random
 * batch mixes, and normalization against the Static baseline.
 */

#ifndef JUMANJI_SYSTEM_HARNESS_HH
#define JUMANJI_SYSTEM_HARNESS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/fingerprint.hh"
#include "src/system/system.hh"

namespace jumanji {

/** Result of running one (mix, design) pair. */
struct DesignResult
{
    LlcDesign design = LlcDesign::Static;
    RunResult run;
    /** Batch weighted speedup normalized to the Static run. */
    double batchSpeedup = 1.0;
    /** Worst LC tail / deadline across apps (1.0 = at deadline). */
    double tailRatio = 0.0;
    /** Mean LC tail / deadline across apps. */
    double meanTailRatio = 0.0;
};

/** Everything measured for one workload mix. */
struct MixResult
{
    WorkloadMix mix;
    std::vector<DesignResult> designs;

    const DesignResult &of(LlcDesign design) const;
};

/**
 * The harness. LC apps are calibrated once per name and cached, in
 * two steps mirroring Sec. VII:
 *  1. service time: mean request latency running alone at very low
 *     load with the Static 4-way partition (this defines what the
 *     Table III "QPS" levels mean: low = 10%, high = 50% of the
 *     app's service rate at that allocation);
 *  2. deadline: the 95th-percentile latency running alone at *high*
 *     load with the same fixed 4-way partition.
 */
class ExperimentHarness
{
  public:
    explicit ExperimentHarness(const SystemConfig &base);

    /** Calibrates (service, deadline) for @p lcName. Cached. */
    const LcCalibration &calibrationFor(const std::string &lcName);

    /** Calibration map covering @p mix's LC apps. */
    LcCalibrationMap calibrationsFor(const WorkloadMix &mix);

    /** True when @p lcName is already in the calibration cache. */
    bool hasCalibration(const std::string &lcName) const;

    /**
     * Installs an externally computed calibration (e.g. one produced
     * by a driver worker) into the cache, so later runs reuse it
     * exactly as if calibrationFor had computed it here.
     */
    void setCalibration(const std::string &lcName,
                        const LcCalibration &calibration);

    /**
     * Runs @p mix under every design in @p designs (Static is always
     * run first as the normalization baseline).
     */
    MixResult runMix(const WorkloadMix &mix,
                     const std::vector<LlcDesign> &designs,
                     LoadLevel load);

    /**
     * The job-oriented entry point: one fully specified, self-
     * contained sweep point. Equivalent to runMix on a harness whose
     * base config is @p config and whose cache already holds
     * @p calibrations — no harness state is read or written, so
     * independent calls are safe to run on different worker threads
     * (each constructs and runs its own single-threaded Systems).
     */
    static MixResult runCalibrated(const SystemConfig &config,
                                   const WorkloadMix &mix,
                                   const std::vector<LlcDesign> &designs,
                                   LoadLevel load,
                                   const LcCalibrationMap &calibrations);

    /**
     * The paper's standard sweep: @p numMixes random batch mixes for
     * a given LC-app selection, at @p load.
     */
    std::vector<MixResult> sweep(const std::vector<std::string> &lcNames,
                                 std::uint32_t numMixes,
                                 const std::vector<LlcDesign> &designs,
                                 LoadLevel load);

    const SystemConfig &baseConfig() const { return base_; }
    SystemConfig &mutableBaseConfig() { return base_; }

    /** Env-var override: JUMANJI_MIXES trims mix counts for CI. */
    static std::uint32_t mixCountFromEnv(std::uint32_t fallback);

  private:
    SystemConfig base_;
    LcCalibrationMap calibrationCache_;
};

/** Aggregates gmean batch speedups per design across mixes. */
std::map<LlcDesign, double>
gmeanSpeedups(const std::vector<MixResult> &results);

/** Aggregates the worst tail ratio per design across mixes. */
std::map<LlcDesign, double>
worstTailRatios(const std::vector<MixResult> &results);

/** Aggregates mean attackers-per-access per design across mixes. */
std::map<LlcDesign, double>
meanVulnerability(const std::vector<MixResult> &results);

/**
 * Folds every stat of @p run into @p fp. The determinism self-check
 * (`jumanji_cli --selfcheck`) compares these digests across two runs
 * of the same config: any divergence means a stat depended on
 * something other than (seed, config).
 */
void fingerprintRun(Fingerprint &fp, const RunResult &run);

/** Folds a whole mix result (workload spec + every design's run). */
void fingerprintMix(Fingerprint &fp, const MixResult &mix);

/** Digest of a full experiment's results. */
std::uint64_t fingerprintResults(const std::vector<MixResult> &results);

} // namespace jumanji

#endif // JUMANJI_SYSTEM_HARNESS_HH
