#include "src/system/harness.hh"

#include <cstdlib>

#include "src/sim/logging.hh"
#include "src/sim/profiler.hh"

namespace jumanji {

const DesignResult &
MixResult::of(LlcDesign design) const
{
    for (const auto &d : designs)
        if (d.design == design) return d;
    fatal("MixResult::of: design not present");
}

ExperimentHarness::ExperimentHarness(const SystemConfig &base)
    : base_(base)
{
}

std::uint32_t
ExperimentHarness::mixCountFromEnv(std::uint32_t fallback)
{
    const char *env = std::getenv("JUMANJI_MIXES");
    if (env == nullptr) return fallback;
    long value = std::strtol(env, nullptr, 10);
    if (value <= 0) return fallback;
    return static_cast<std::uint32_t>(value);
}

const LcCalibration &
ExperimentHarness::calibrationFor(const std::string &lcName)
{
    JUMANJI_PROF_SCOPE("sim.calibrate");
    auto it = calibrationCache_.find(lcName);
    if (it != calibrationCache_.end()) return it->second;

    WorkloadMix solo;
    VmSpec vm;
    vm.lcApps.push_back(lcName);
    solo.vms.push_back(vm);

    LcCalibration calib;

    // Step 1: uncontended service time at the Static 4-way
    // allocation, at 5% load so queueing is negligible.
    {
        SystemConfig cfg = base_;
        cfg.design = LlcDesign::Static;
        // Calibration measures the app, not the traffic shape: a
        // time-varying KV load trace (flash crowd etc.) must not
        // leak into the service time or the deadline, or the
        // deadline absorbs the spike it exists to judge.
        cfg.kv.trace = "flat";
        cfg.utilizationOverride = 0.05;
        cfg.measureTicks *= 2;
        cfg.tracer = nullptr; // internal run; keep traces clean
        System system(cfg, solo);
        RunResult run = system.run();
        for (const auto &app : run.apps) {
            if (!app.latencyCritical) continue;
            for (TailLatencyApp *tail : system.tailApps())
                calib.serviceCycles = tail->latencies().mean();
        }
    }
    if (calib.serviceCycles <= 0.0) {
        warn("service calibration produced 0 for " + lcName +
             "; falling back to the analytic nominal");
        calib.serviceCycles = System::nominalServiceCycles(
            lcAppParams(lcName), base_.nominalLlcLatency);
    }

    // Step 2 (Sec. VII): the deadline is the 95th-percentile latency
    // running alone at *high* load with the fixed 4-way partition.
    {
        SystemConfig cfg = base_;
        cfg.design = LlcDesign::Static;
        cfg.load = LoadLevel::High;
        cfg.kv.trace = "flat"; // steady-state deadline (see above)
        cfg.tracer = nullptr; // internal run; keep traces clean
        // The deadline is a distribution tail; use a long window so
        // it is stable across harness instances.
        cfg.measureTicks *= 4;
        LcCalibrationMap serviceOnly;
        serviceOnly[lcName] = LcCalibration{calib.serviceCycles, 0.0};
        System system(cfg, solo, serviceOnly);
        RunResult run = system.run();
        for (const auto &app : run.apps)
            if (app.latencyCritical) calib.deadline = app.tailLatency;
    }
    if (calib.deadline <= 0.0) {
        warn("deadline calibration produced 0 for " + lcName +
             "; falling back to 5x service");
        calib.deadline = 5.0 * calib.serviceCycles;
    }
    calib.deadline *= base_.deadlinePadding;

    return calibrationCache_.emplace(lcName, calib).first->second;
}

LcCalibrationMap
ExperimentHarness::calibrationsFor(const WorkloadMix &mix)
{
    LcCalibrationMap calibrations;
    for (const auto &vm : mix.vms)
        for (const auto &name : vm.lcApps)
            calibrations[name] = calibrationFor(name);
    return calibrations;
}

bool
ExperimentHarness::hasCalibration(const std::string &lcName) const
{
    return calibrationCache_.find(lcName) != calibrationCache_.end();
}

void
ExperimentHarness::setCalibration(const std::string &lcName,
                                  const LcCalibration &calibration)
{
    calibrationCache_[lcName] = calibration;
}

MixResult
ExperimentHarness::runMix(const WorkloadMix &mix,
                          const std::vector<LlcDesign> &designs,
                          LoadLevel load)
{
    return runCalibrated(base_, mix, designs, load,
                         calibrationsFor(mix));
}

MixResult
ExperimentHarness::runCalibrated(const SystemConfig &config,
                                 const WorkloadMix &mix,
                                 const std::vector<LlcDesign> &designs,
                                 LoadLevel load,
                                 const LcCalibrationMap &calibrations)
{
    MixResult result;
    result.mix = mix;

    // Static first: it is the normalization baseline.
    SystemConfig staticCfg = config;
    staticCfg.design = LlcDesign::Static;
    staticCfg.load = load;
    staticCfg.traceLabel = config.traceLabel + " Static";
    System staticSystem(staticCfg, mix, calibrations);
    RunResult staticRun = staticSystem.run();

    {
        DesignResult dr;
        dr.design = LlcDesign::Static;
        dr.batchSpeedup = 1.0;
        dr.tailRatio = staticRun.worstTailRatio();
        dr.meanTailRatio = staticRun.meanTailRatio();
        dr.run = staticRun;
        result.designs.push_back(std::move(dr));
    }

    for (LlcDesign design : designs) {
        if (design == LlcDesign::Static) continue;
        SystemConfig cfg = config;
        cfg.design = design;
        cfg.load = load;
        cfg.traceLabel =
            config.traceLabel + " " + llcDesignName(design);
        System system(cfg, mix, calibrations);
        DesignResult dr;
        dr.design = design;
        dr.run = system.run();
        dr.batchSpeedup = dr.run.batchWeightedSpeedup(staticRun);
        dr.tailRatio = dr.run.worstTailRatio();
        dr.meanTailRatio = dr.run.meanTailRatio();
        result.designs.push_back(std::move(dr));
    }
    return result;
}

std::vector<MixResult>
ExperimentHarness::sweep(const std::vector<std::string> &lcNames,
                         std::uint32_t numMixes,
                         const std::vector<LlcDesign> &designs,
                         LoadLevel load)
{
    std::vector<MixResult> results;
    for (std::uint32_t m = 0; m < numMixes; m++) {
        SystemConfig cfg = base_;
        cfg.seed = base_.seed + m * 1000003ull;
        Rng mixRng(cfg.seed ^ 0x5eedull);
        WorkloadMix mix = makeMix(lcNames, 4, 4, mixRng);

        ExperimentHarness perMix(*this);
        perMix.base_ = cfg;
        perMix.calibrationCache_ = calibrationCache_;
        results.push_back(perMix.runMix(mix, designs, load));
        // Reuse calibrations discovered by the child.
        calibrationCache_ = perMix.calibrationCache_;
    }
    return results;
}

std::map<LlcDesign, double>
gmeanSpeedups(const std::vector<MixResult> &results)
{
    std::map<LlcDesign, std::vector<double>> byDesign;
    for (const auto &mix : results)
        for (const auto &d : mix.designs)
            byDesign[d.design].push_back(d.batchSpeedup);

    std::map<LlcDesign, double> out;
    for (const auto &[design, values] : byDesign)
        out[design] = gmean(values);
    return out;
}

std::map<LlcDesign, double>
worstTailRatios(const std::vector<MixResult> &results)
{
    std::map<LlcDesign, double> out;
    for (const auto &mix : results) {
        for (const auto &d : mix.designs) {
            auto it = out.find(d.design);
            if (it == out.end() || d.tailRatio > it->second)
                out[d.design] = d.tailRatio;
        }
    }
    return out;
}

std::map<LlcDesign, double>
meanVulnerability(const std::vector<MixResult> &results)
{
    std::map<LlcDesign, std::vector<double>> byDesign;
    for (const auto &mix : results)
        for (const auto &d : mix.designs)
            byDesign[d.design].push_back(d.run.attackersPerAccess);

    std::map<LlcDesign, double> out;
    for (const auto &[design, values] : byDesign) {
        double sum = 0.0;
        for (double v : values) sum += v;
        out[design] = values.empty()
                          ? 0.0
                          : sum / static_cast<double>(values.size());
    }
    return out;
}

void
fingerprintRun(Fingerprint &fp, const RunResult &run)
{
    fp.addU64(run.apps.size());
    for (const auto &app : run.apps) {
        fp.addString(app.name);
        fp.addI64(app.app);
        fp.addI64(app.vm);
        fp.addU64(app.latencyCritical ? 1 : 0);
        fp.addU64(app.progress.instrs);
        fp.addU64(app.progress.cycles);
        fp.addU64(app.counters.l1Hits);
        fp.addU64(app.counters.l1Misses);
        fp.addU64(app.counters.l2Hits);
        fp.addU64(app.counters.l2Misses);
        fp.addU64(app.counters.llcHits);
        fp.addU64(app.counters.llcMisses);
        fp.addU64(app.counters.nocHops);
        fp.addU64(app.counters.memAccesses);
        fp.addDouble(app.avgAccessLatency);
        fp.addDouble(app.tailLatency);
        fp.addDouble(app.deadline);
        fp.addU64(app.requestsCompleted);
    }
    fp.addDouble(run.attackersPerAccess);
    fp.addDouble(run.energy.l1);
    fp.addDouble(run.energy.l2);
    fp.addDouble(run.energy.llc);
    fp.addDouble(run.energy.noc);
    fp.addDouble(run.energy.mem);
    fp.addU64(run.measuredTicks);
    fp.addU64(run.reconfigurations);
    fp.addU64(run.coherenceInvalidations);

    // The registry stream: every leaf name and value, plus the
    // per-epoch timeline. Folding names as well as values means a
    // stat that silently vanishes (or is renamed) also trips the
    // self-check, not just a value divergence.
    fp.addU64(run.statDump.size());
    for (const StatValue &sv : run.statDump) {
        fp.addString(sv.name);
        fp.addDouble(sv.value);
    }
    run.timeline.fold(fp);
}

void
fingerprintMix(Fingerprint &fp, const MixResult &mix)
{
    foldMix(fp, mix.mix);
    fp.addU64(mix.designs.size());
    for (const auto &d : mix.designs) {
        fp.addI64(static_cast<std::int64_t>(d.design));
        fp.addDouble(d.batchSpeedup);
        fp.addDouble(d.tailRatio);
        fp.addDouble(d.meanTailRatio);
        fingerprintRun(fp, d.run);
    }
}

std::uint64_t
fingerprintResults(const std::vector<MixResult> &results)
{
    Fingerprint fp;
    fp.addU64(results.size());
    for (const auto &mix : results) fingerprintMix(fp, mix);
    return fp.value();
}

} // namespace jumanji
