#include "src/system/system.hh"

#include <algorithm>
#include <cmath>

#include "src/sim/check.hh"
#include "src/sim/logging.hh"
#include "src/sim/profiler.hh"
#include "src/sim/tracing.hh"
#include "src/workloads/spec_like.hh"

namespace jumanji {

namespace {

/** Scales working-set footprints by the config's capacityScale. */
std::vector<WorkingSet>
scaleWorkingSets(const std::vector<WorkingSet> &sets, double scale)
{
    std::vector<WorkingSet> scaled = sets;
    if (scale == 1.0) return scaled;
    for (auto &ws : scaled) {
        if (ws.streaming) continue;
        ws.lines = std::max<std::uint64_t>(
            16, static_cast<std::uint64_t>(
                    static_cast<double>(ws.lines) * scale));
    }
    return scaled;
}

} // namespace

// ------------------------------------------------------------ Sampler

/**
 * An epoch-rate agent that snapshots the vulnerability metric and the
 * per-LC-app latency window, producing the Fig. 4 timelines.
 */
class System::Sampler : public Agent
{
  public:
    Sampler(System *sys, Tick period) : sys_(sys), period_(period) {}

    Tick
    resume(Tick now) override
    {
        MemPath &path = sys_->memPath();
        sys_->vulnTimeline_.push_back(path.avgAttackersPerAccess());
        path.clearVulnerabilityStats();

        for (TailLatencyApp *app : sys_->tailApps()) {
            auto &series = sys_->latencyTimeline_[app->name()];
            const auto &window = lastWindow_[app];
            const auto &all = app->latencies().raw();
            double mean = 0.0;
            std::size_t n = all.size() > window ? all.size() - window : 0;
            for (std::size_t i = window; i < all.size(); i++)
                mean += all[i];
            if (n > 0) mean /= static_cast<double>(n);
            series.push_back(mean);
            lastWindow_[app] = all.size();
        }

        // Snapshot the registry after the runtime's reconfiguration
        // (scheduled before this agent at the same tick) and after
        // the epoch gauges above were refreshed.
        sys_->recorder_->record(now);

#if !defined(JUMANJI_DISABLE_TRACING)
        if (Tracer *tracer = sys_->config_.tracer) {
            std::uint32_t banksPid =
                sys_->tracePid_ + Tracer::kBanksPid;
            for (std::uint32_t b = 0; b < path.numBanks(); b++) {
                tracer->counterInterned(
                    banksPid, sys_->bankTrackNames_[b], now,
                    static_cast<double>(
                        path.bank(b).constArray().validLines()));
            }
        }
#endif
        return now + period_;
    }

  private:
    System *sys_;
    Tick period_;
    std::map<TailLatencyApp *, std::size_t> lastWindow_;
};

// --------------------------------------------------------- KvLoadAgent

/**
 * Applies the KV offered-load trace: every quarter-epoch each KV app
 * re-reads the trace (arrival-rate multiplier, skew delta, hot-key
 * rotation) at the current tick. Only scheduled when the mix has KV
 * apps, so other runs see no extra events.
 */
class System::KvLoadAgent : public Agent
{
  public:
    KvLoadAgent(System *sys, Tick period) : sys_(sys), period_(period)
    {
    }

    Tick
    resume(Tick now) override
    {
        for (KvServerApp *app : sys_->kvApps_) app->onTraceTick(now);
        return now + period_;
    }

  private:
    System *sys_;
    Tick period_;
};

// ------------------------------------------------------------- System

System::~System() = default;

double
System::nominalServiceCycles(const TailAppParams &params,
                             double llcLatency)
{
    double computeCycles = static_cast<double>(params.instrsPerRequest) /
                           params.traits.baseIpc;
    double accesses = static_cast<double>(params.instrsPerRequest) *
                      params.apki / 1000.0;
    double stall = accesses * llcLatency * params.traits.stallFactor;
    return computeCycles + stall;
}

System::System(const SystemConfig &config, const WorkloadMix &mix,
               const LcCalibrationMap &calibrations)
    : config_(config),
      rootRng_(config.seed)
{
    path_ = std::make_unique<MemPath>(config_.llc, config_.mesh,
                                      config_.mem, config_.umon,
                                      config_.seed);

    auto policy = LlcPolicy::create(config_.design);
    bool wantsIdeal = policy->wantsIdealBatchLlc();
    if (wantsIdeal) {
        idealBatchPath_ = std::make_unique<MemPath>(
            config_.llc, config_.mesh, config_.mem, config_.umon,
            config_.seed ^ 0xabcdef);
    }

    path_->memory().setActiveVms(
        static_cast<std::uint32_t>(mix.vms.size()));
    if (idealBatchPath_) {
        idealBatchPath_->memory().setActiveVms(
            static_cast<std::uint32_t>(mix.vms.size()));
    }

    runtime_ = std::make_unique<RuntimeDriver>(
        std::move(policy), path_.get(), idealBatchPath_.get(),
        config_.placementGeometry(), config_.epochTicks);

    assignTiles(mix);

    // KV apps are traffic-shaped by a load trace; plain mixes skip
    // the whole mechanism (no trace, no agent, no kv stats) so their
    // event streams and stat dumps are bit-identical to before.
    bool anyKv = false;
    for (const AppSlot &slot : slots_)
        if (slot.latencyCritical && isKvAppName(slot.name))
            anyKv = true;
    if (anyKv)
        kvTrace_ = loadTraceFromName(
            config_.kv.trace, config_.warmupTicks,
            config_.measureTicks, config_.kv.peakMultiplier);

    buildApps(mix, calibrations);

    if (config_.fixedLcTargetLines > 0)
        runtime_->setFixedLcTarget(config_.fixedLcTargetLines);
    runtime_->setHullCurves(config_.hullCurves);
    runtime_->setRateNormalize(config_.rateNormalizeCurves);
    path_->setMigrateOnReconfig(config_.migrateOnReconfig);
    if (idealBatchPath_)
        idealBatchPath_->setMigrateOnReconfig(config_.migrateOnReconfig);

    registerStats();
    recorder_ = std::make_unique<EpochRecorder>(&statreg_,
                                                config_.timelineStats);
    setupTracing();

    // Initial placement before any app runs, then steady epochs.
    runtime_->reconfigureNow(0);
    queue_.schedule(runtime_.get(), config_.epochTicks);

    sampler_ = std::make_unique<Sampler>(this, config_.epochTicks);
    queue_.schedule(sampler_.get(), config_.epochTicks);

    if (!kvApps_.empty()) {
        Tick period = std::max<Tick>(1, config_.epochTicks / 4);
        kvAgent_ = std::make_unique<KvLoadAgent>(this, period);
        queue_.schedule(kvAgent_.get(), period);
    }

    for (auto &core : cores_) queue_.schedule(core.get(), 0);
}

void
System::assignTiles(const WorkloadMix &mix)
{
    const std::uint32_t tiles = config_.mesh.cols * config_.mesh.rows;
    if (mix.totalApps() > tiles)
        fatal("System: more apps than cores/tiles");

    MeshTopology mesh(config_.mesh);

    // Anchor each VM at a spread-out tile: corners first, then the
    // tiles farthest from every existing anchor.
    std::vector<std::uint32_t> anchors;
    std::vector<std::uint32_t> corners = {
        mesh.tileAt(0, 0),
        mesh.tileAt(config_.mesh.cols - 1, config_.mesh.rows - 1),
        mesh.tileAt(config_.mesh.cols - 1, 0),
        mesh.tileAt(0, config_.mesh.rows - 1),
    };
    for (std::size_t v = 0; v < mix.vms.size(); v++) {
        if (v < corners.size()) {
            anchors.push_back(corners[v]);
            continue;
        }
        std::uint32_t best = 0;
        std::uint32_t bestDist = 0;
        for (std::uint32_t t = 0; t < tiles; t++) {
            std::uint32_t nearest = ~0u;
            for (std::uint32_t a : anchors)
                nearest = std::min(nearest, mesh.hops(t, a));
            if (nearest != ~0u && nearest >= bestDist) {
                if (nearest > bestDist ||
                    std::find(anchors.begin(), anchors.end(), t) ==
                        anchors.end()) {
                    bestDist = nearest;
                    best = t;
                }
            }
        }
        anchors.push_back(best);
    }

    // Deal tiles: VM by VM, LC apps first (they sit on the anchor,
    // i.e. the corner, as in Fig. 2a), then batch apps nearby.
    std::vector<bool> taken(tiles, false);
    auto takeNearest = [&](std::uint32_t anchor) {
        for (std::uint32_t t : mesh.tilesByDistance(anchor)) {
            if (!taken[t]) {
                taken[t] = true;
                return t;
            }
        }
        fatal("System: ran out of tiles");
        return 0u;
    };

    for (std::size_t v = 0; v < mix.vms.size(); v++) {
        const VmSpec &vm = mix.vms[v];
        for (const auto &name : vm.lcApps) {
            AppSlot slot;
            slot.name = name;
            slot.vm = static_cast<VmId>(v);
            slot.latencyCritical = true;
            slot.tile = takeNearest(anchors[v]);
            slots_.push_back(slot);
        }
        for (const auto &name : vm.batchApps) {
            AppSlot slot;
            slot.name = name;
            slot.vm = static_cast<VmId>(v);
            slot.latencyCritical = false;
            slot.tile = takeNearest(anchors[v]);
            slots_.push_back(slot);
        }
    }
}

void
System::buildApps(const WorkloadMix &,
                  const LcCalibrationMap &calibrations)
{
    double util = config_.utilizationOverride > 0.0
                      ? config_.utilizationOverride
                      : loadUtilization(config_.load);

    for (std::size_t i = 0; i < slots_.size(); i++) {
        AppSlot &slot = slots_[i];
        auto appId = static_cast<AppId>(i);
        auto vcId = static_cast<VcId>(i);

        std::unique_ptr<AppModel> app;
        double deadline = 0.0;

        if (slot.latencyCritical) {
            const KvAppParams *kvParams = findKvApp(slot.name);
            TailAppParams params = kvParams
                                       ? kvTailAppParams(slot.name)
                                       : tailAppParams(slot.name);
            params.workingSets = scaleWorkingSets(
                params.workingSets, config_.capacityScale);
            double service = nominalServiceCycles(
                params, config_.nominalLlcLatency);
            double deadlineDefault = 5.0 * service;
            auto it = calibrations.find(slot.name);
            if (it != calibrations.end()) {
                if (it->second.serviceCycles > 0.0)
                    service = it->second.serviceCycles;
                if (it->second.deadline > 0.0)
                    deadlineDefault = it->second.deadline;
            }
            double interarrival = service / util;

            std::unique_ptr<TailLatencyApp> tailApp;
            if (kvParams != nullptr) {
                auto kvApp = std::make_unique<KvServerApp>(
                    *kvParams, params, appId, interarrival,
                    Rng(config_.seed * 7919 + i * 13 + 1));
                kvApp->bindTrace(&kvTrace_, interarrival,
                                 config_.kv.loadScale);
                // Apply the trace's t=0 state before the first event
                // (a diurnal trace does not start at multiplier 1).
                kvApp->onTraceTick(0);
                kvApps_.push_back(kvApp.get());
                tailApp = std::move(kvApp);
            } else {
                tailApp = std::make_unique<TailLatencyApp>(
                    params, appId, interarrival,
                    Rng(config_.seed * 7919 + i * 13 + 1));
            }

            deadline = deadlineDefault;
            slot.deadline = deadline;

            // Listing 1: request completions feed the controller.
            // Traced runs also get one span per request on the
            // app's core lane.
            RuntimeDriver *rt = runtime_.get();
            std::uint32_t tile = slot.tile;
            tailApp->setCompletionListener(
                [this, rt, vcId, tile](Tick now, double latency) {
                    auto dur = static_cast<Tick>(latency);
                    JUMANJI_TRACE(
                        config_.tracer,
                        complete(tracePid_ + Tracer::kCoresPid, tile,
                                 "request", now > dur ? now - dur : 0,
                                 dur));
                    rt->requestCompleted(vcId, latency, now);
                });
            app = std::move(tailApp);
        }

        double nominalRate = 0.0;
        if (!slot.latencyCritical) {
            SpecAppParams params = specAppParams(slot.name);
            params.workingSets = scaleWorkingSets(
                params.workingSets, config_.capacityScale);
            nominalRate = params.apki / 1000.0 * params.traits.baseIpc;
            app = std::make_unique<SpecLikeApp>(params, appId);
        }

        RuntimeAppInfo info;
        info.vc = vcId;
        info.app = appId;
        info.vm = slot.vm;
        info.coreTile = slot.tile;
        info.latencyCritical = slot.latencyCritical;
        info.name = slot.name;
        info.nominalAccessesPerCycle = nominalRate;
        runtime_->registerApp(info, config_.controller, deadline);

        AccessOwner owner;
        owner.app = appId;
        owner.vc = vcId;
        owner.vm = slot.vm;
        owner.latencyCritical = slot.latencyCritical;

        MemPath *corePath = path_.get();
        if (idealBatchPath_ && !slot.latencyCritical)
            corePath = idealBatchPath_.get();

        cores_.push_back(std::make_unique<CoreModel>(
            static_cast<CoreId>(slot.tile), owner, app.get(), corePath,
            Rng(config_.seed * 104729 + i * 31 + 7)));
        apps_.push_back(std::move(app));
    }
}

void
System::registerStats()
{
    // Component subtrees. The contention-free twin registers under
    // "ideal." so selectors like "llc.bank" only match the primary
    // path and timeline columns stay identical across designs.
    path_->registerStats(statreg_, "");
    if (idealBatchPath_)
        idealBatchPath_->registerStats(statreg_, "ideal.");
    runtime_->registerStats(statreg_, "runtime.");

    for (std::size_t i = 0; i < cores_.size(); i++) {
        const AppSlot &slot = slots_[i];
        std::string prefix = "apps.a" + statIndexName(i) + ".";
        cores_[i]->registerStats(statreg_, prefix);
        statreg_.addGauge(prefix + "tile", "tile hosting this app",
                          [this, i] {
                              return static_cast<double>(slots_[i].tile);
                          });
        if (!slot.latencyCritical) continue;
        auto *tail = dynamic_cast<TailLatencyApp *>(apps_[i].get());
        if (tail == nullptr) continue;
        statreg_.addDistribution(prefix + "reqLatency",
                                 "end-to-end request latency (cycles)",
                                 &tail->latencies());
        statreg_.addGauge(prefix + "deadline",
                          "tail-latency deadline (cycles)", [this, i] {
                              return slots_[i].deadline;
                          });
        // latencyTimeline_ is keyed by app *name*: each sampled epoch
        // appends one entry per instance of that name, in tailApps()
        // (== slot) order. Index this instance's entry of the latest
        // epoch via its rank among same-name LC slots.
        std::string name = slot.name;
        std::size_t rank = 0, total = 0;
        for (std::size_t j = 0; j < slots_.size(); j++) {
            if (!slots_[j].latencyCritical || slots_[j].name != name)
                continue;
            if (j < i) rank++;
            total++;
        }
        statreg_.addGauge(
            prefix + "epochLatency",
            "mean request latency over the last sampled epoch",
            [this, name, rank, total] {
                auto it = latencyTimeline_.find(name);
                if (it == latencyTimeline_.end() ||
                    it->second.size() < total)
                    return 0.0;
                return it->second[it->second.size() - total + rank];
            });
    }

    statreg_.addGauge("epoch.index", "epochs sampled so far", [this] {
        return static_cast<double>(vulnTimeline_.size());
    });
    statreg_.addGauge("epoch.vuln",
                      "attackers per access over the last epoch",
                      [this] {
                          return vulnTimeline_.empty()
                                     ? 0.0
                                     : vulnTimeline_.back();
                      });

    statreg_.addFormula(
        "sys.attackersPerAccess",
        "attackers per access since the last epoch clear", [this] {
            double sum = path_->avgAttackersPerAccess() *
                         static_cast<double>(path_->llcAccesses());
            std::uint64_t n = path_->llcAccesses();
            if (idealBatchPath_) {
                sum += idealBatchPath_->avgAttackersPerAccess() *
                       static_cast<double>(
                           idealBatchPath_->llcAccesses());
                n += idealBatchPath_->llcAccesses();
            }
            return n == 0 ? 0.0 : sum / static_cast<double>(n);
        });
    statreg_.addFormula(
        "sys.tail.meanRatio",
        "mean over LC apps of p95 tail / deadline", [this] {
            double sum = 0.0;
            int n = 0;
            for (std::size_t i = 0; i < apps_.size(); i++) {
                if (!slots_[i].latencyCritical ||
                    slots_[i].deadline <= 0.0) {
                    continue;
                }
                auto *tail =
                    dynamic_cast<TailLatencyApp *>(apps_[i].get());
                if (tail == nullptr) continue;
                sum += tail->latencies().percentile(95.0) /
                       slots_[i].deadline;
                n++;
            }
            return n == 0 ? 0.0 : sum / n;
        });
    statreg_.addFormula(
        "sys.tail.worstRatio",
        "max over LC apps of p95 tail / deadline", [this] {
            double worst = 0.0;
            for (std::size_t i = 0; i < apps_.size(); i++) {
                if (!slots_[i].latencyCritical ||
                    slots_[i].deadline <= 0.0) {
                    continue;
                }
                auto *tail =
                    dynamic_cast<TailLatencyApp *>(apps_[i].get());
                if (tail == nullptr) continue;
                worst = std::max(worst,
                                 tail->latencies().percentile(95.0) /
                                     slots_[i].deadline);
            }
            return worst;
        });

    // Per-trace-phase KV tail stats, registered only when the mix
    // actually contains KV apps: the selfcheck fingerprint folds
    // every registry leaf name, so non-KV runs must not grow stats.
    if (!kvApps_.empty()) {
        for (const std::string &phase : kvTrace_.phaseLabels()) {
            statreg_.addFormula(
                "apps.kv." + phase + ".p95",
                "mean over KV apps of phase p95 tail / deadline",
                [this, phase] { return kvPhaseRatio(phase, 95.0); });
            statreg_.addFormula(
                "apps.kv." + phase + ".p99",
                "mean over KV apps of phase p99 tail / deadline",
                [this, phase] { return kvPhaseRatio(phase, 99.0); });
            statreg_.addFormula(
                "apps.kv." + phase + ".count",
                "KV requests completed in this phase", [this, phase] {
                    double n = 0.0;
                    for (const KvServerApp *app : kvApps_)
                        n += static_cast<double>(
                            app->phaseCount(phase));
                    return n;
                });
        }
    }
}

double
System::kvPhaseRatio(const std::string &phase, double p) const
{
    double sum = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < apps_.size(); i++) {
        if (!slots_[i].latencyCritical || slots_[i].deadline <= 0.0)
            continue;
        auto *app = dynamic_cast<KvServerApp *>(apps_[i].get());
        if (app == nullptr || app->phaseCount(phase) == 0) continue;
        sum += app->phasePercentile(phase, p) / slots_[i].deadline;
        n++;
    }
    return n == 0 ? 0.0 : sum / n;
}

void
System::setupTracing()
{
#if !defined(JUMANJI_DISABLE_TRACING)
    Tracer *tracer = config_.tracer;
    if (tracer == nullptr) return;

    tracePid_ = tracer->beginRun(config_.traceLabel);
    runtime_->setTracer(tracer, tracePid_);

    // Intern the per-bank track names once: the tracer's interned
    // storage is pointer-stable, so the sampler can emit with
    // counterInterned() and skip the per-epoch interning lookup.
    bankTrackNames_.clear();
    bankTrackNames_.reserve(path_->numBanks());
    for (std::uint32_t b = 0; b < path_->numBanks(); b++)
        bankTrackNames_.push_back(tracer->internName(
            ("occupancy.bank" + statIndexName(b)).c_str()));

    tracer->threadName(tracePid_ + Tracer::kRuntimePid, 0, "placement");
    for (const AppSlot &slot : slots_) {
        tracer->threadName(tracePid_ + Tracer::kCoresPid, slot.tile,
                           "core" + statIndexName(slot.tile) + " " +
                               slot.name);
    }
    for (std::uint32_t b = 0; b < path_->numBanks(); b++)
        tracer->threadName(tracePid_ + Tracer::kBanksPid, b,
                           "bank" + statIndexName(b));
#endif
}

void
System::migrateApp(std::size_t appIndex, std::uint32_t newTile)
{
    if (appIndex >= cores_.size())
        fatal("System::migrateApp: app index out of range");
    for (std::size_t i = 0; i < slots_.size(); i++) {
        if (i != appIndex && slots_[i].tile == newTile)
            fatal("System::migrateApp: target tile is occupied");
    }
    slots_[appIndex].tile = newTile;
    cores_[appIndex]->setTile(static_cast<CoreId>(newTile));
    runtime_->migrateApp(static_cast<VcId>(appIndex), newTile);
}

std::vector<TailLatencyApp *>
System::tailApps()
{
    std::vector<TailLatencyApp *> result;
    for (auto &app : apps_) {
        if (auto *tail = dynamic_cast<TailLatencyApp *>(app.get()))
            result.push_back(tail);
    }
    return result;
}

void
System::runUntil(Tick tick)
{
    queue_.runUntil(tick);
}

void
System::startMeasurement()
{
    measureStart_ = queue_.now();
    for (auto &core : cores_) core->resetAccounting();
    for (TailLatencyApp *app : tailApps()) app->clearMeasurement();
    path_->clearVulnerabilityStats();
    if (idealBatchPath_) idealBatchPath_->clearVulnerabilityStats();
}

RunResult
System::collect()
{
    RunResult result;
    result.measuredTicks = queue_.now() - measureStart_;
    result.reconfigurations = runtime_->reconfigurations();
    result.coherenceInvalidations = runtime_->totalInvalidations();

    double attackerSum = path_->avgAttackersPerAccess() *
                         static_cast<double>(path_->llcAccesses());
    std::uint64_t accessCount = path_->llcAccesses();
    if (idealBatchPath_) {
        attackerSum += idealBatchPath_->avgAttackersPerAccess() *
                       static_cast<double>(idealBatchPath_->llcAccesses());
        accessCount += idealBatchPath_->llcAccesses();
    }
    result.attackersPerAccess =
        accessCount == 0 ? 0.0
                         : attackerSum / static_cast<double>(accessCount);

    for (std::size_t i = 0; i < cores_.size(); i++) {
        const AppSlot &slot = slots_[i];
        AppResult ar;
        ar.name = slot.name;
        ar.app = static_cast<AppId>(i);
        ar.vm = slot.vm;
        ar.latencyCritical = slot.latencyCritical;
        ar.progress.instrs = cores_[i]->instrsRetired();
        ar.progress.cycles = result.measuredTicks;
        ar.counters = cores_[i]->counters();
        std::uint64_t accesses = ar.counters.llcHits +
                                 ar.counters.llcMisses;
        double stallFactor = apps_[i]->traits().stallFactor;
        if (accesses > 0 && stallFactor > 0.0) {
            ar.avgAccessLatency =
                static_cast<double>(cores_[i]->stallCycles()) /
                stallFactor / static_cast<double>(accesses);
        }
        if (slot.latencyCritical) {
            auto *tail = dynamic_cast<TailLatencyApp *>(apps_[i].get());
            if (tail != nullptr) {
                ar.tailLatency = tail->latencies().percentile(95.0);
                ar.requestsCompleted = tail->latencies().count();
            }
            ar.deadline = slot.deadline;
        }
        result.energy += dataMovementEnergy(ar.counters);
        result.apps.push_back(std::move(ar));
    }

    result.statDump = statreg_.snapshot();
    result.timeline = recorder_->series();
    return result;
}

RunResult
System::run()
{
    JUMANJI_PROF_SCOPE("sim.run");
    // One live run per worker thread: resets the thread's check
    // context and (in Debug) rejects interleaved runs.
    CheckContextScope runScope;
    runUntil(config_.warmupTicks);
    startMeasurement();
    runUntil(config_.warmupTicks + config_.measureTicks);
    return collect();
}

double
RunResult::stat(const std::string &name, double fallback) const
{
    auto it = std::lower_bound(
        statDump.begin(), statDump.end(), name,
        [](const StatValue &sv, const std::string &n) {
            return sv.name < n;
        });
    if (it == statDump.end() || it->name != name) return fallback;
    return it->value;
}

double
RunResult::batchWeightedSpeedup(const RunResult &reference) const
{
    std::vector<AppProgress> mix;
    std::vector<AppProgress> ref;
    for (std::size_t i = 0; i < apps.size() && i < reference.apps.size();
         i++) {
        if (apps[i].latencyCritical) continue;
        mix.push_back(apps[i].progress);
        ref.push_back(reference.apps[i].progress);
    }
    if (mix.empty()) return 1.0;
    return weightedSpeedup(mix, ref);
}

double
RunResult::worstTailRatio() const
{
    double worst = 0.0;
    for (const auto &app : apps) {
        if (!app.latencyCritical || app.deadline <= 0.0) continue;
        worst = std::max(worst, app.tailLatency / app.deadline);
    }
    return worst;
}

double
RunResult::meanTailRatio() const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &app : apps) {
        if (!app.latencyCritical || app.deadline <= 0.0) continue;
        sum += app.tailLatency / app.deadline;
        n++;
    }
    return n == 0 ? 0.0 : sum / n;
}

} // namespace jumanji
