#include "src/mem/memory.hh"

#include <algorithm>

#include "src/sim/check.hh"
#include "src/sim/logging.hh"
#include "src/sim/statreg.hh"

namespace jumanji {

MemorySystem::MemorySystem(const MemoryParams &params,
                           const MeshTopology &mesh)
    : params_(params),
      busyUntil_(std::max(1u, params.controllers)),
      lcBusyUntil_(std::max(1u, params.controllers), 0),
      mcAccesses_(std::max(1u, params.controllers), 0),
      mcQueueCycles_(std::max(1u, params.controllers), 0),
      mcLcAccesses_(std::max(1u, params.controllers), 0)
{
    if (params.controllers == 0)
        fatal("MemorySystem: need at least one controller");

    // Controllers sit at the four corners (wrapping if fewer).
    const auto &mp = mesh.params();
    std::vector<std::uint32_t> corners = {
        mesh.tileAt(0, 0),
        mesh.tileAt(mp.cols - 1, 0),
        mesh.tileAt(0, mp.rows - 1),
        mesh.tileAt(mp.cols - 1, mp.rows - 1),
    };
    for (std::uint32_t mc = 0; mc < params.controllers; mc++)
        cornerTiles_.push_back(corners[mc % corners.size()]);
}

std::uint32_t
MemorySystem::controllerFor(LineAddr line) const
{
    // Interleave at line granularity with a mixed hash so that any
    // single app's stream spreads over all controllers.
    std::uint64_t x = line * 0x9e3779b97f4a7c15ull;
    return static_cast<std::uint32_t>((x >> 32) % params_.controllers);
}

std::uint32_t
MemorySystem::controllerTile(std::uint32_t mc) const
{
    return cornerTiles_[mc % cornerTiles_.size()];
}

void
MemorySystem::setActiveVms(std::uint32_t count)
{
    activeVms_ = std::max(1u, count);
    // Pre-size every controller's virtual-queue table for the VM ids
    // that will actually arrive, so the per-miss busy-until probe
    // never allocates in steady state.
    for (auto &queues : busyUntil_)
        queues.reserve(static_cast<VmId>(activeVms_));
}

MemAccessResult
MemorySystem::access(Tick now, LineAddr line, VmId vm,
                     bool latencyCritical)
{
    MemAccessResult result;
    result.controller = controllerFor(line);
    JUMANJI_ASSERT(result.controller < params_.controllers,
                   "controller index out of range");

    if (params_.partitionBandwidth && latencyCritical) {
        // Reserved LC share: queues only behind other LC traffic.
        Tick &busy = lcBusyUntil_[result.controller];
        Tick grant = std::max(now, busy);
        JUMANJI_ASSERT(grant >= now, "port grant precedes arrival");
        busy = grant + params_.serviceInterval;
        result.queueDelay = grant - now;
        result.latency = result.queueDelay + params_.accessLatency;
        accesses_++;
        queueCycles_ += result.queueDelay;
        mcAccesses_[result.controller]++;
        mcQueueCycles_[result.controller] += result.queueDelay;
        mcLcAccesses_[result.controller]++;
        return result;
    }

    // With partitioning each VM owns a virtual queue served at its
    // bandwidth share; without, all requests share one queue.
    VmId queueKey = params_.partitionBandwidth ? vm : 0;
    Tick interval = params_.serviceInterval;
    if (params_.partitionBandwidth)
        interval *= activeVms_;

    Tick &busy = busyUntil_[result.controller][queueKey];
    Tick grant = std::max(now, busy);
    busy = grant + interval;

    result.queueDelay = grant - now;
    result.latency = result.queueDelay + params_.accessLatency;
    JUMANJI_ASSERT(result.latency >= params_.accessLatency,
                   "memory latency below the fixed access latency");

    accesses_++;
    queueCycles_ += result.queueDelay;
    mcAccesses_[result.controller]++;
    mcQueueCycles_[result.controller] += result.queueDelay;
    return result;
}

void
MemorySystem::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + "accesses", "memory accesses across all MCs",
                   &accesses_);
    reg.addCounter(prefix + "queueCycles",
                   "cycles queued at memory controllers", &queueCycles_);
    for (std::uint32_t mc = 0; mc < mcAccesses_.size(); mc++) {
        std::string p = prefix + "mc" + statIndexName(mc) + ".";
        reg.addCounter(p + "accesses", "accesses at this controller",
                       &mcAccesses_[mc]);
        reg.addCounter(p + "queueCycles",
                       "queue cycles at this controller",
                       &mcQueueCycles_[mc]);
        reg.addCounter(p + "lcAccesses",
                       "accesses served from the reserved LC share",
                       &mcLcAccesses_[mc]);
    }
}

} // namespace jumanji
