/**
 * @file
 * Main memory model: four memory controllers at the chip corners
 * (Table II), fixed access latency plus a bandwidth model.
 *
 * Bandwidth partitioning (as in Heracles/Intel RDT) is modelled by
 * per-VM virtual queues: each VM is served at its share of controller
 * bandwidth, so one VM's burst cannot starve another's requests.
 */

#ifndef JUMANJI_MEM_MEMORY_HH
#define JUMANJI_MEM_MEMORY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/noc/mesh.hh"
#include "src/sim/flat_map.hh"
#include "src/sim/types.hh"

namespace jumanji {

class StatRegistry;

/** Memory system parameters. */
struct MemoryParams
{
    /** Fixed access latency in cycles (Table II: 120). */
    Tick accessLatency = 120;
    /** Cycles between line transfers per controller at full share. */
    Tick serviceInterval = 4;
    /** Number of controllers (one per chip corner). */
    std::uint32_t controllers = 4;
    /** Enable per-VM bandwidth partitioning. */
    bool partitionBandwidth = true;
};

/** Outcome of a timed memory access. */
struct MemAccessResult
{
    /** Queueing cycles at the controller. */
    Tick queueDelay = 0;
    /** Total memory cycles: queue + fixed latency. */
    Tick latency = 0;
    /** Controller that served the request. */
    std::uint32_t controller = 0;
};

/**
 * The memory subsystem. Line addresses interleave across controllers;
 * the NoC hop count from the requesting bank's tile to the
 * controller's corner tile is reported so callers can charge it.
 */
class MemorySystem
{
  public:
    MemorySystem(const MemoryParams &params, const MeshTopology &mesh);

    /** Controller serving @p line. */
    std::uint32_t controllerFor(LineAddr line) const;

    /** Corner tile hosting controller @p mc. */
    std::uint32_t controllerTile(std::uint32_t mc) const;

    /**
     * Times an access to @p line from VM @p vm arriving at @p now.
     *
     * Bandwidth partitioning follows Heracles/Intel RDT: traffic
     * from latency-critical applications is served from a reserved
     * high-priority share (it queues only behind other LC traffic),
     * while batch traffic from each VM is served at 1/activeVms of
     * the remaining rate, modelled by scaling the per-VM service
     * interval by the number of active VMs.
     */
    MemAccessResult access(Tick now, LineAddr line, VmId vm,
                           bool latencyCritical);

    /** Sets the number of VMs sharing bandwidth (for partitioning). */
    void setActiveVms(std::uint32_t count);

    std::uint64_t totalAccesses() const { return accesses_; }
    std::uint64_t totalQueueCycles() const { return queueCycles_; }

    const MemoryParams &params() const { return params_; }

    /**
     * Registers aggregate and per-controller stats under @p prefix
     * ("mem." -> "mem.accesses", "mem.mc02.queueCycles", ...).
     */
    void registerStats(StatRegistry &reg, const std::string &prefix);

  private:
    MemoryParams params_;
    std::vector<std::uint32_t> cornerTiles_;
    /**
     * busyUntil[controller][vm] with partitioning, else
     * [controller][0]. Dense per-VM tables, pre-sized from the active
     * VM count (setActiveVms) so the per-miss queue probe indexes an
     * array and steady-state operation never allocates; iteration (if
     * the queues are ever walked for stats) stays ascending-VM.
     */
    std::vector<SmallIdMap<VmId, Tick>> busyUntil_;
    /** Reserved latency-critical track per controller. */
    std::vector<Tick> lcBusyUntil_;
    std::uint32_t activeVms_ = 1;

    std::uint64_t accesses_ = 0;
    std::uint64_t queueCycles_ = 0;
    /** Per-controller breakdowns, indexed by controller id. */
    std::vector<std::uint64_t> mcAccesses_;
    std::vector<std::uint64_t> mcQueueCycles_;
    std::vector<std::uint64_t> mcLcAccesses_;
};

} // namespace jumanji

#endif // JUMANJI_MEM_MEMORY_HH
