#include "src/cpu/mem_path.hh"

#include "src/sim/check.hh"
#include "src/sim/logging.hh"
#include "src/sim/statreg.hh"

namespace jumanji {

MemPath::MemPath(const LlcParams &llc, const MeshParams &mesh,
                 const MemoryParams &mem, const UmonParams &umon,
                 std::uint64_t seed)
    : mesh_(mesh),
      memory_(mem, mesh_),
      llcParams_(llc),
      umonParams_(umon)
{
    if (llc.banks == 0) fatal("MemPath: need at least one LLC bank");
    if (llc.banks > mesh_.numTiles())
        fatal("MemPath: more banks than mesh tiles");
    banks_.reserve(llc.banks);
    for (std::uint32_t b = 0; b < llc.banks; b++) {
        banks_.push_back(std::make_unique<CacheBank>(
            static_cast<BankId>(b), llc.setsPerBank, llc.ways, llc.repl,
            llc.timing, seed + 0x1000 + b));
    }
    // Max one-way hops on an X-Y route is (cols-1) + (rows-1).
    hopCounters_.assign(mesh.cols + mesh.rows - 1, 0);
}

void
MemPath::registerVc(VcId vc)
{
    if (umons_.count(vc)) return;
    UmonParams p = umonParams_;
    p.modelledLines = totalLines();
    umons_[vc] = std::make_unique<Umon>(p);
}

Umon &
MemPath::umon(VcId vc)
{
    auto *u = umons_.lookup(vc);
    if (u == nullptr) panic("MemPath::umon: unregistered VC");
    return **u;
}

std::uint64_t
MemPath::linesPerBank() const
{
    return static_cast<std::uint64_t>(llcParams_.setsPerBank) *
           llcParams_.ways;
}

std::uint64_t
MemPath::totalLines() const
{
    return linesPerBank() * llcParams_.banks;
}

MemPath::Route
MemPath::planAccess(std::uint32_t coreTile, VcId vc, LineAddr line) const
{
    Route route;
    route.bank = vtb_.lookup(vc, line);
    if (route.bank == kInvalidBank)
        panic("MemPath::planAccess: VC descriptor has an invalid slot");
    JUMANJI_ASSERT(static_cast<std::uint32_t>(route.bank) <
                       llcParams_.banks,
                   "descriptor names a bank outside the LLC");
    route.hops = mesh_.hops(coreTile,
                            static_cast<std::uint32_t>(route.bank));
    route.traversal = mesh_.traversalLatency(route.hops);
    return route;
}

PathAccessResult
MemPath::accessArrived(Tick now, std::uint32_t coreTile,
                       const AccessOwner &owner, LineAddr line)
{
    PathAccessResult result;

    Route route = planAccess(coreTile, owner.vc, line);
    result.bank = route.bank;
    result.hopsToBank = route.hops;

    // With link contention modelled, the request may arrive later
    // than the uncontended estimate the core scheduled with; the
    // extra wait is part of the observed latency.
    Tick linkDelay = 0;
    if (mesh_.params().modelLinkContention) {
        // The route is re-planned at arrival; a reconfiguration
        // between issue and arrival can change the traversal, so
        // clamp instead of underflowing Tick (an underflow would
        // poison the link busy-until times permanently).
        Tick issue = now > route.traversal ? now - route.traversal : 0;
        Tick actual = mesh_.traverse(
            issue, coreTile, static_cast<std::uint32_t>(route.bank),
            /*request flits=*/1);
        if (actual > now) linkDelay = actual - now;
        now = std::max(now, actual);
    }

    JUMANJI_ASSERT(route.hops <
                       mesh_.params().cols + mesh_.params().rows - 1,
                   "X-Y route exceeds the mesh diameter");
    CacheBank &bank = *banks_[static_cast<std::size_t>(route.bank)];

    // Vulnerability metric (Sec. VII): apps from other VMs occupying
    // this bank when the access arrives are potential port attackers.
    lastAttackers_ = bank.constArray().appsFromOtherVms(owner.vm);
    attackerSum_ += lastAttackers_;
    llcAccesses_++;

    // UMON observes the access regardless of hit/miss.
    if (auto *umon = umons_.lookup(owner.vc)) (*umon)->access(line);

    counters_.nocHops += 2ull * route.hops;
    hopCounters_[route.hops]++;

    BankAccessResult bankResult = bank.access(now, line, owner);
    result.llcHit = bankResult.hit;
    result.bankQueueDelay = bankResult.queueDelay;

    // Bank (+memory) plus the response traversal back to the core.
    Tick total = linkDelay + bankResult.latency + route.traversal;
    if (mesh_.params().modelLinkContention) {
        // The data response occupies links for its flit count.
        Tick respStart = now + bankResult.latency;
        Tick respEnd = mesh_.traverse(
            respStart, static_cast<std::uint32_t>(route.bank), coreTile,
            mesh_.params().dataFlits);
        total = linkDelay + bankResult.latency +
                (respEnd - respStart);
    }
    if (bankResult.hit) {
        counters_.llcHits++;
    } else {
        counters_.llcMisses++;
        counters_.memAccesses++;
        // Bank -> memory controller -> bank.
        std::uint32_t mc = memory_.controllerFor(line);
        std::uint32_t mcTile = memory_.controllerTile(mc);
        std::uint32_t mcHops = mesh_.hops(
            static_cast<std::uint32_t>(route.bank), mcTile);
        counters_.nocHops += 2ull * mcHops;
        Tick arriveAtMem = now + bankResult.latency +
                           mesh_.traversalLatency(mcHops);
        MemAccessResult memResult = memory_.access(
            arriveAtMem, line, owner.vm, owner.latencyCritical);
        total += 2 * mesh_.traversalLatency(mcHops) + memResult.latency;
    }

    result.latency = total;
    return result;
}

PathAccessResult
MemPath::access(Tick now, std::uint32_t coreTile, const AccessOwner &owner,
                LineAddr line)
{
    Route route = planAccess(coreTile, owner.vc, line);
    PathAccessResult result =
        accessArrived(now + route.traversal, coreTile, owner, line);
    // Full issue-to-data latency includes the request traversal.
    result.latency += route.traversal;
    return result;
}

std::uint64_t
MemPath::installPlacement(VcId vc, const PlacementDescriptor &desc)
{
    bool hadOld = vtb_.has(vc);
    PlacementDescriptor old;
    if (hadOld) old = vtb_.descriptor(vc);
    vtb_.install(vc, desc);
    if (!hadOld) return 0;
    if (old == desc) return 0;

    // Background coherence walk: *migrate* lines whose bank changed.
    // (Jigsaw's hardware invalidates them; at paper scale a refetch
    // costs ~0.1% of an epoch, so invalidation and migration are
    // equivalent. At this simulator's compressed epoch length an
    // invalidation storm would cost ~100x more *relative* time than
    // it does in the paper, so migration is the behaviour-preserving
    // model — see DESIGN.md.)
    std::uint64_t moved = 0;
    std::vector<std::pair<LineAddr, AccessOwner>> evictees;
    for (auto &bank : banks_) {
        BankId here = bank->id();
        bank->array().invalidateIf(
            [&](LineAddr line, const AccessOwner &o) {
                if (o.vc != vc) return false;
                if (desc.bankFor(line) == here) return false;
                evictees.emplace_back(line, o);
                return true;
            });
    }
    coherenceWalkLines_ += evictees.size();
    if (!migrate_) return evictees.size();
    for (const auto &[line, owner] : evictees) {
        BankId target = desc.bankFor(line);
        if (target == kInvalidBank) continue;
        JUMANJI_ASSERT(static_cast<std::size_t>(target) < banks_.size(),
                       "coherence walk targets a nonexistent bank");
        JUMANJI_ASSERT(owner.vc == vc,
                       "coherence walk moved another VC's line");
        banks_[static_cast<std::size_t>(target)]->array().insert(line,
                                                                 owner);
        moved++;
    }
    return moved;
}

std::uint64_t
MemPath::flushBankForVm(BankId bank, VmId incoming)
{
    std::uint64_t flushed =
        banks_[static_cast<std::size_t>(bank)]->array().invalidateIf(
            [incoming](LineAddr, const AccessOwner &o) {
                return o.vm != incoming;
            });
    vmFlushLines_ += flushed;
    return flushed;
}

void
MemPath::registerStats(StatRegistry &reg, const std::string &top)
{
    // LLC: aggregates plus one subtree per bank.
    reg.addCounter(top + "llc.hits", "LLC hits on the timed path",
                   &counters_.llcHits);
    reg.addCounter(top + "llc.misses", "LLC misses on the timed path",
                   &counters_.llcMisses);
    for (std::uint32_t b = 0; b < banks_.size(); b++) {
        banks_[b]->registerStats(
            reg, top + "llc.bank" + statIndexName(b) + ".");
    }

    // D-NUCA structures.
    vtb_.registerStats(reg, top + "dnuca.vtb.");
    reg.addCounter(top + "dnuca.vtb.invalidations",
                   "lines displaced by reconfiguration coherence walks",
                   &coherenceWalkLines_);
    reg.addCounter(top + "dnuca.vmFlushLines",
                   "lines dropped by VM swap-in bank flushes",
                   &vmFlushLines_);
    for (const auto &[vc, umon] : umons_) {
        umon->registerStats(
            reg, top + "dnuca.umon" +
                     statIndexName(static_cast<std::uint64_t>(vc)) + ".");
    }

    // NoC: hop totals plus the per-hop-count histogram.
    reg.addCounter(top + "noc.hops", "total hops traversed (both ways)",
                   &counters_.nocHops);
    mesh_.registerStats(reg, top + "noc.");
    for (std::uint32_t h = 0; h < hopCounters_.size(); h++) {
        reg.addCounter(top + "noc.hopHist.h" + statIndexName(h),
                       "accesses routed over this many hops",
                       &hopCounters_[h]);
    }

    // Memory controllers.
    memory_.registerStats(reg, top + "mem.");
}

void
MemPath::installWayMasks(VcId vc, const std::vector<WayMask> &masksPerBank)
{
    if (masksPerBank.size() != banks_.size())
        panic("MemPath::installWayMasks: mask count != bank count");
    for (std::size_t b = 0; b < banks_.size(); b++)
        banks_[b]->array().setWayMask(vc, masksPerBank[b]);
}

} // namespace jumanji
