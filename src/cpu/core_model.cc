#include "src/cpu/core_model.hh"

#include <cmath>

#include "src/sim/check.hh"
#include "src/sim/logging.hh"
#include "src/sim/statreg.hh"

namespace jumanji {

void
CoreModel::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + "instrs", "instructions retired", &instrs_);
    reg.addCounter(prefix + "stallCycles",
                   "cycles stalled on LLC accesses", &stallCycles_);
    reg.addCounter(prefix + "l1Hits", "statistical L1 hits",
                   &counters_.l1Hits);
    reg.addCounter(prefix + "l2Hits", "statistical L2 hits",
                   &counters_.l2Hits);
    reg.addCounter(prefix + "llcAccesses",
                   "post-L2 accesses issued to the LLC",
                   &counters_.l2Misses);
    reg.addCounter(prefix + "llcHits", "LLC hits seen by this core",
                   &counters_.llcHits);
    reg.addCounter(prefix + "llcMisses", "LLC misses seen by this core",
                   &counters_.llcMisses);
}

CoreModel::CoreModel(CoreId id, const AccessOwner &owner, AppModel *app,
                     MemPath *path, Rng rng)
    : id_(id),
      owner_(owner),
      app_(app),
      path_(path),
      rng_(rng)
{
    if (app_ == nullptr || path_ == nullptr)
        fatal("CoreModel: app and path must be non-null");
}

Tick
CoreModel::completeAccess(Tick now)
{
    // `now` is the access's arrival tick at its bank.
    checkSetCore(id_);
    JUMANJI_ASSERT(now >= pendingIssueTick_,
                   "access arrived before it was issued");
    accessPending_ = false;
    const AppTraits &traits = app_->traits();

    PathAccessResult r = path_->accessArrived(
        now, static_cast<std::uint32_t>(id_), owner_, pendingLine_);
    if (r.llcHit) {
        counters_.llcHits++;
    } else {
        counters_.llcMisses++;
        counters_.memAccesses++;
    }
    counters_.nocHops += 2ull * r.hopsToBank;

    // Latency seen by the core: request traversal + bank/memory +
    // response traversal (the latter two are in r.latency).
    Tick latency = pendingTraversal_ + r.latency;
    Tick stall = static_cast<Tick>(std::ceil(
        static_cast<double>(latency) * traits.stallFactor));
    stallCycles_ += stall;
    app_->onAccessComplete(pendingIssueTick_ + latency);

    Tick next = pendingIssueTick_ + stall;
    return next > now ? next : now + 1;
}

Tick
CoreModel::resume(Tick now)
{
    checkSetCore(id_);
    if (accessPending_) return completeAccess(now);

    AppStep step = app_->next(now, rng_);

    if (step.kind == AppStep::Kind::Idle) {
        return step.wakeTick;
    }

    // Compute burst.
    const AppTraits &traits = app_->traits();
    Tick burst = static_cast<Tick>(
        std::ceil(static_cast<double>(step.instrs) / traits.baseIpc));
    instrs_ += step.instrs;

    // L1/L2 energy accounting: these hit counts are statistical (the
    // generators emit the post-L2 stream), derived from traits.
    double l1Accesses = static_cast<double>(step.instrs) *
                        traits.l1PerInstr;
    double l2Accesses = l1Accesses * traits.l1MissFrac;
    counters_.l1Hits += static_cast<std::uint64_t>(l1Accesses - l2Accesses);
    counters_.l1Misses += static_cast<std::uint64_t>(l2Accesses);
    counters_.l2Hits += static_cast<std::uint64_t>(
        l2Accesses * (1.0 - traits.l2MissFrac));

    if (step.access) {
        counters_.l2Misses++;
        // Issue: resume at the bank-arrival tick to take the port in
        // true arrival order.
        MemPath::Route route = path_->planAccess(
            static_cast<std::uint32_t>(id_), owner_.vc, *step.access);
        accessPending_ = true;
        pendingLine_ = *step.access;
        pendingIssueTick_ = now + burst;
        pendingTraversal_ = route.traversal;
        return pendingIssueTick_ + route.traversal;
    }

    Tick next = now + burst;
    return next > now ? next : now + 1;
}

} // namespace jumanji
