/**
 * @file
 * The application model interface driven by CoreModel.
 *
 * An AppModel is a generator of execution steps. Each step is either
 * a burst of instructions optionally ending in an LLC access (the
 * post-L2 miss stream; L1/L2 filtering is folded into per-app hit
 * fractions used for energy accounting), or an idle period (a
 * latency-critical server waiting for the next request).
 */

#ifndef JUMANJI_CPU_APP_MODEL_HH
#define JUMANJI_CPU_APP_MODEL_HH

#include <cstdint>
#include <optional>
#include <string>

#include "src/sim/rng.hh"
#include "src/sim/types.hh"

namespace jumanji {

/** One unit of application progress. */
struct AppStep
{
    enum class Kind
    {
        /** Execute `instrs` instructions; then access `line` if set. */
        Execute,
        /** Sleep until `wakeTick` (request queue empty). */
        Idle,
    };

    Kind kind = Kind::Execute;
    std::uint64_t instrs = 0;
    std::optional<LineAddr> access;
    Tick wakeTick = 0;

    static AppStep
    execute(std::uint64_t instrs, std::optional<LineAddr> access)
    {
        AppStep s;
        s.kind = Kind::Execute;
        s.instrs = instrs;
        s.access = access;
        return s;
    }

    static AppStep
    idleUntil(Tick wake)
    {
        AppStep s;
        s.kind = Kind::Idle;
        s.wakeTick = wake;
        return s;
    }
};

/** Static per-app characteristics used for timing and energy. */
struct AppTraits
{
    /** Core IPC when no LLC access is outstanding. */
    double baseIpc = 2.0;
    /** Fraction of LLC access latency exposed as stall (1/MLP). */
    double stallFactor = 0.6;
    /** L1 accesses per instruction (for energy accounting). */
    double l1PerInstr = 0.35;
    /** Fraction of L1 accesses missing to L2. */
    double l1MissFrac = 0.06;
    /** Fraction of L2 accesses missing to LLC (drives APKI). */
    double l2MissFrac = 0.25;
};

/**
 * Abstract application. Implementations: SpecLikeApp (batch),
 * TailLatencyApp (latency-critical server), attacker/victim apps.
 */
class AppModel
{
  public:
    virtual ~AppModel() = default;

    /** Display name, e.g. "429.mcf" or "xapian". */
    virtual const std::string &name() const = 0;

    /** Produces the next step. @p now is current simulated time. */
    virtual AppStep next(Tick now, Rng &rng) = 0;

    /**
     * Called when the step's LLC access (if any) completed.
     * @p finish is the tick at which the access's data returned.
     */
    virtual void onAccessComplete(Tick finish) { (void)finish; }

    /** Timing/energy traits. */
    virtual const AppTraits &traits() const = 0;

    /** True for latency-critical (deadline-bearing) applications. */
    virtual bool isLatencyCritical() const { return false; }
};

} // namespace jumanji

#endif // JUMANJI_CPU_APP_MODEL_HH
