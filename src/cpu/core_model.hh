/**
 * @file
 * CoreModel: one out-of-order core running one AppModel, expressed as
 * a DES agent. Compute bursts cost instrs/baseIpc cycles; LLC access
 * latency is partially hidden by MLP (traits().stallFactor).
 */

#ifndef JUMANJI_CPU_CORE_MODEL_HH
#define JUMANJI_CPU_CORE_MODEL_HH

#include <cstdint>
#include <memory>

#include "src/cpu/app_model.hh"
#include "src/cpu/mem_path.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/rng.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace jumanji {

/**
 * A core agent with a two-phase access pipeline: when a step carries
 * an LLC access, the core first executes the compute burst, then
 * schedules itself at the access's *bank arrival* tick and performs
 * the access there. Processing accesses in true arrival order makes
 * bank-port queueing an honest FCFS queue across cores — which is
 * what the Fig. 11 port side channel measures.
 */
class CoreModel : public Agent
{
  public:
    /**
     * @param id Core id == tile id in the floorplan.
     * @param owner Identity stamped on all of this core's accesses.
     * @param app The application to run (non-owning).
     * @param path The shared memory path (non-owning).
     * @param rng Private random stream for the app.
     */
    CoreModel(CoreId id, const AccessOwner &owner, AppModel *app,
              MemPath *path, Rng rng);

    Tick resume(Tick now) override;

    CoreId id() const { return id_; }

    /** Re-anchors the core to a new tile (thread migration). */
    void setTile(CoreId id) { id_ = id; }
    const AccessOwner &owner() const { return owner_; }
    AppModel &app() { return *app_; }
    const AppModel &constApp() const { return *app_; }

    /** Instructions retired so far. */
    std::uint64_t instrsRetired() const { return instrs_; }

    /** Cycles this core has spent stalled on LLC accesses. */
    Tick stallCycles() const { return stallCycles_; }

    /** L1/L2/LLC counters attributed to this core. */
    const AccessCounters &counters() const { return counters_; }

    /** Resets instruction/stall accounting (start of measurement). */
    void
    resetAccounting()
    {
        instrs_ = 0;
        stallCycles_ = 0;
        counters_ = AccessCounters{};
    }

    /** Registers per-core stats under @p prefix ("apps.a03."). */
    void registerStats(StatRegistry &reg, const std::string &prefix);

  private:
    /** Handles a pending access at its bank-arrival tick. */
    Tick completeAccess(Tick now);

    CoreId id_;
    AccessOwner owner_;
    AppModel *app_;
    MemPath *path_;
    Rng rng_;

    /** Pending access state (set between issue and arrival). */
    bool accessPending_ = false;
    LineAddr pendingLine_ = 0;
    Tick pendingIssueTick_ = 0;
    Tick pendingTraversal_ = 0;

    std::uint64_t instrs_ = 0;
    Tick stallCycles_ = 0;
    AccessCounters counters_;
};

} // namespace jumanji

#endif // JUMANJI_CPU_CORE_MODEL_HH
