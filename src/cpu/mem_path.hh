/**
 * @file
 * The memory path a core's LLC access traverses:
 * VTB lookup -> NoC to the target bank -> bank (port + array) ->
 * on miss, NoC to a memory controller -> DRAM -> back.
 *
 * MemPath owns the LLC banks, the VTB, per-VC UMONs, and the memory
 * system, and charges all counters needed by the metrics layer.
 */

#ifndef JUMANJI_CPU_MEM_PATH_HH
#define JUMANJI_CPU_MEM_PATH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/cache_bank.hh"
#include "src/dnuca/umon.hh"
#include "src/dnuca/vtb.hh"
#include "src/mem/memory.hh"
#include "src/noc/mesh.hh"
#include "src/sim/flat_map.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace jumanji {

class StatRegistry;

/** Per-access outcome reported back to the core. */
struct PathAccessResult
{
    bool llcHit = false;
    BankId bank = kInvalidBank;
    Tick latency = 0;
    Tick bankQueueDelay = 0;
    /** One-way hops core->bank (for attack analysis / energy). */
    std::uint32_t hopsToBank = 0;
};

/** Geometry of the shared LLC. */
struct LlcParams
{
    std::uint32_t banks = 20;
    std::uint32_t setsPerBank = 512;
    std::uint32_t ways = 32;
    ReplKind repl = ReplKind::DRRIP;
    BankTimingParams timing;
};

/**
 * The shared-LLC complex. One instance per simulated system.
 */
class MemPath
{
  public:
    MemPath(const LlcParams &llc, const MeshParams &mesh,
            const MemoryParams &mem, const UmonParams &umon,
            std::uint64_t seed);

    /** Registers a VC so it gets a UMON. Idempotent. */
    void registerVc(VcId vc);

    /** Route of a planned access (no side effects). */
    struct Route
    {
        BankId bank = kInvalidBank;
        std::uint32_t hops = 0;
        /** One-way core->bank traversal latency. */
        Tick traversal = 0;
    };

    /** Looks up the bank and traversal for (@p vc, @p line). */
    Route planAccess(std::uint32_t coreTile, VcId vc,
                     LineAddr line) const;

    /**
     * Performs a timed LLC access whose request *arrives at the
     * bank* at @p now. Cores issue the access and resume themselves
     * at the arrival tick, so bank-port queueing is FCFS in true
     * arrival order (this ordering is itself a timing channel — see
     * Fig. 11). The returned latency covers bank (+memory) plus the
     * response traversal back to the core; the caller adds its own
     * request traversal.
     */
    PathAccessResult accessArrived(Tick now, std::uint32_t coreTile,
                                   const AccessOwner &owner,
                                   LineAddr line);

    /**
     * Single-call convenience used by tests: plans the access,
     * advances to the arrival tick, and processes it. The returned
     * latency covers the full issue-to-data round trip.
     */
    PathAccessResult access(Tick now, std::uint32_t coreTile,
                            const AccessOwner &owner, LineAddr line);

    /** The vulnerability metric: attackers observed this access. */
    std::uint32_t lastAccessAttackers() const { return lastAttackers_; }

    Vtb &vtb() { return vtb_; }
    MeshTopology &mesh() { return mesh_; }
    MemorySystem &memory() { return memory_; }

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }
    CacheBank &bank(BankId b) { return *banks_[static_cast<size_t>(b)]; }
    const CacheBank &bank(BankId b) const
    {
        return *banks_[static_cast<size_t>(b)];
    }

    /** Lines of capacity in one bank. */
    std::uint64_t linesPerBank() const;

    /** Total LLC lines. */
    std::uint64_t totalLines() const;

    Umon &umon(VcId vc);
    bool hasUmon(VcId vc) const { return umons_.count(vc) > 0; }

    /**
     * Installs a new placement descriptor for @p vc and performs the
     * background coherence walk: lines of this VC now mapping to a
     * different bank are invalidated.
     *
     * @return Lines invalidated by the walk.
     */
    std::uint64_t installPlacement(VcId vc, const PlacementDescriptor &d);

    /** Installs per-bank way masks: masks[bank] applies to @p vc. */
    void installWayMasks(VcId vc,
                         const std::vector<WayMask> &masksPerBank);

    /**
     * Selects the coherence-walk model: migrate moved lines (default;
     * scale-faithful) or invalidate them (literal hardware behaviour;
     * ablation).
     */
    void setMigrateOnReconfig(bool migrate) { migrate_ = migrate; }

    /**
     * VM swap-in flush (Sec. IV-B): when more VMs exist than banks,
     * a VM being scheduled onto banks previously used by another VM
     * must have those banks flushed of the departing VM's state.
     * Drops every line in @p bank not owned by @p incoming.
     *
     * @return Lines flushed.
     */
    std::uint64_t flushBankForVm(BankId bank, VmId incoming);

    /** Aggregate counters across all accesses since construction. */
    const AccessCounters &counters() const { return counters_; }
    AccessCounters &mutableCounters() { return counters_; }

    /** Sum of attackers over accesses; divide by accesses for avg. */
    double
    avgAttackersPerAccess() const
    {
        return llcAccesses_ == 0
                   ? 0.0
                   : static_cast<double>(attackerSum_) /
                         static_cast<double>(llcAccesses_);
    }

    std::uint64_t llcAccesses() const { return llcAccesses_; }

    /** Resets the vulnerability accumulators (per-epoch sampling). */
    void
    clearVulnerabilityStats()
    {
        attackerSum_ = 0;
        llcAccesses_ = 0;
    }

    /**
     * Registers the whole memory path — per-bank LLC stats, D-NUCA
     * structures (VTB, coherence walks, per-VC UMONs), NoC, and
     * memory controllers — under @p top ("" for the primary path,
     * "ideal." for the contention-free twin). Call after all VCs are
     * registered so every UMON exists.
     */
    void registerStats(StatRegistry &reg, const std::string &top);

  private:
    MeshTopology mesh_;
    MemorySystem memory_;
    Vtb vtb_;
    LlcParams llcParams_;
    UmonParams umonParams_;
    std::vector<std::unique_ptr<CacheBank>> banks_;
    /**
     * Dense per-VC table: probed on every access, and walked in
     * ascending-VC order when gathering epoch inputs.
     */
    SmallIdMap<VcId, std::unique_ptr<Umon>> umons_;

    AccessCounters counters_;
    std::uint64_t attackerSum_ = 0;
    std::uint64_t llcAccesses_ = 0;
    std::uint32_t lastAttackers_ = 0;
    bool migrate_ = true;

    /** hopCounters_[h] = accesses whose core->bank route was h hops. */
    std::vector<std::uint64_t> hopCounters_;
    /** Lines displaced by coherence walks (reconfigurations). */
    std::uint64_t coherenceWalkLines_ = 0;
    /** Lines dropped by VM swap-in flushes. */
    std::uint64_t vmFlushLines_ = 0;
};

} // namespace jumanji

#endif // JUMANJI_CPU_MEM_PATH_HH
