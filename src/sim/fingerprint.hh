/**
 * @file
 * FNV-1a fingerprinting of stats streams.
 *
 * The determinism self-check (jumanji_cli --selfcheck and
 * tests/test_determinism.cc) folds every stat a run produces into one
 * 64-bit FNV-1a hash; two runs of the same (config, mix) must produce
 * identical hashes or the simulator has a nondeterminism bug.
 *
 * Doubles are hashed by bit pattern, so even a 1-ulp divergence in an
 * accumulated metric changes the fingerprint.
 */

#ifndef JUMANJI_SIM_FINGERPRINT_HH
#define JUMANJI_SIM_FINGERPRINT_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace jumanji {

/** Incremental 64-bit FNV-1a hasher. */
class Fingerprint
{
  public:
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t kPrime = 0x100000001b3ull;

    /** Raw bytes. */
    void
    addBytes(const void *data, std::size_t len)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; i++) {
            hash_ ^= bytes[i];
            hash_ *= kPrime;
        }
    }

    void
    addU64(std::uint64_t v)
    {
        addBytes(&v, sizeof(v));
    }

    void
    addI64(std::int64_t v)
    {
        addU64(static_cast<std::uint64_t>(v));
    }

    /** Hashes the bit pattern, with -0.0 canonicalized to +0.0. */
    void
    addDouble(double v)
    {
        if (v == 0.0) v = 0.0; // collapse -0.0 and +0.0
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        addU64(bits);
    }

    /** Length-prefixed, so "ab"+"c" differs from "a"+"bc". */
    void
    addString(const std::string &s)
    {
        addU64(s.size());
        addBytes(s.data(), s.size());
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = kOffsetBasis;
};

} // namespace jumanji

#endif // JUMANJI_SIM_FINGERPRINT_HH
