#include "src/sim/stats.hh"

#include <sstream>

namespace jumanji {

std::string
formatRow(const std::vector<std::string> &cells, std::size_t width)
{
    std::ostringstream oss;
    for (const auto &cell : cells) {
        std::string c = cell;
        if (c.size() < width) c.append(width - c.size(), ' ');
        oss << c << ' ';
    }
    return oss.str();
}

} // namespace jumanji
