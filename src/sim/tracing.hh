/**
 * @file
 * The simulator-wide observability layer, part 2: a scoped event
 * tracer emitting Chrome trace-event JSON (loadable in
 * chrome://tracing and Perfetto).
 *
 * Timestamps are simulated ticks written into the trace's "us" field,
 * so one trace microsecond == one core cycle. Lanes follow the
 * machine's floorplan: each traced System run allocates a process-id
 * block (beginRun) with one process for the runtime, one for cores
 * (tid == tile id), and one for banks (tid == bank id). Components
 * emit
 *   - complete events ("X") for spans (LC requests, reconfigures),
 *   - instant events ("i") for repartitions, VTB coherence walks,
 *     VM bank flushes, and deadline violations, and
 *   - counter events ("C") for per-epoch series (allocations,
 *     bank occupancy).
 *
 * Cost discipline: components hold a `Tracer *` that is null unless
 * the user asked for a trace, and every emission site goes through
 * JUMANJI_TRACE, so the hot path pays exactly one predictable branch.
 * Defining JUMANJI_DISABLE_TRACING compiles the sites out entirely.
 */

#ifndef JUMANJI_SIM_TRACING_HH
#define JUMANJI_SIM_TRACING_HH

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace jumanji {

/**
 * The tracer: buffers events in memory, serializes on writeTo().
 * Event order in the output follows emission order; viewers sort by
 * timestamp themselves.
 */
class Tracer
{
  public:
    /** One "args" entry; values are numeric to keep emission cheap. */
    struct Arg
    {
        const char *key;
        double value;
    };

    /**
     * Allocates the pid block for one System run and names its three
     * processes "<label> runtime" / "<label> cores" /
     * "<label> banks".
     *
     * @return The base pid; runtime lanes live on pid, core lanes on
     *         pid + 1, bank lanes on pid + 2.
     */
    std::uint32_t beginRun(const std::string &label);

    static constexpr std::uint32_t kRuntimePid = 0;
    static constexpr std::uint32_t kCoresPid = 1;
    static constexpr std::uint32_t kBanksPid = 2;
    static constexpr std::uint32_t kPidsPerRun = 3;

    /** Metadata: names thread @p tid of process @p pid. */
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name);

    /** A span [start, start + dur) on lane (pid, tid). */
    void complete(std::uint32_t pid, std::uint32_t tid,
                  const char *name, Tick start, Tick dur,
                  std::vector<Arg> args = {});

    /** A zero-duration marker on lane (pid, tid). */
    void instant(std::uint32_t pid, std::uint32_t tid, const char *name,
                 Tick ts, std::vector<Arg> args = {});

    /**
     * A counter series sample (one track per (pid, name)). Unlike
     * complete()/instant(), whose names must be string literals, the
     * counter name is interned: callers may pass transient storage
     * (track names are typically built per System, which the tracer
     * outlives).
     */
    void counter(std::uint32_t pid, const char *name, Tick ts,
                 double value);

    /**
     * Copies @p name into this tracer's pointer-stable interned
     * storage and returns the stable pointer. Hot emitters intern
     * their track names once at setup and then use counterInterned(),
     * so per-sample emission skips the interning lookup.
     */
    const char *internName(const char *name) { return intern(name); }

    /**
     * counter() for a name previously returned by internName() on
     * *this* tracer: no per-call interning lookup.
     */
    void counterInterned(std::uint32_t pid, const char *internedName,
                         Tick ts, double value);

    /**
     * Allocates a single-process lane block named @p name (the
     * driver's per-worker lanes live in one such process, unlike the
     * three-process blocks beginRun hands to Systems).
     */
    std::uint32_t beginProcess(const std::string &name);

    /**
     * Appends every event of @p other, remapping its pids into this
     * tracer's pid space (and re-interning counter track names, whose
     * storage dies with @p other). The driver gives each job a
     * private tracer and merges them back in job-submission order, so
     * a parallel run serializes the same trace regardless of which
     * worker ran which job or in what order they finished.
     */
    void mergeFrom(const Tracer &other);

    std::size_t eventCount() const { return events_.size(); }

    /** Serializes the whole trace as one JSON object. */
    void writeTo(std::ostream &os) const;

  private:
    struct Event
    {
        char ph = 'X';
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        const char *name = "";
        /** Metadata/process names (ph == 'M') carry a string arg. */
        std::string strArg;
        Tick ts = 0;
        Tick dur = 0;
        std::vector<Arg> args;
    };

    void push(Event e) { events_.push_back(std::move(e)); }

    /** Copies @p name into tracer-owned, pointer-stable storage. */
    const char *intern(const char *name);

    std::vector<Event> events_;
    std::set<std::string> internedNames_;
    std::uint32_t nextPid_ = 1;
};

/**
 * Emission macro: expands to one null check around the call, or to
 * nothing when tracing is compiled out.
 *
 *   JUMANJI_TRACE(tracer_, instant(pid_, bank, "vmFlush", now));
 */
#if defined(JUMANJI_DISABLE_TRACING)
#define JUMANJI_TRACE(tracer, call) ((void)0)
#else
#define JUMANJI_TRACE(tracer, call)                                    \
    do {                                                               \
        if ((tracer) != nullptr) (tracer)->call;                       \
    } while (0)
#endif

} // namespace jumanji

#endif // JUMANJI_SIM_TRACING_HH
