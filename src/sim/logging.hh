/**
 * @file
 * Error/status reporting in the gem5 style: panic() for internal
 * invariant violations, fatal() for user/configuration errors,
 * warn()/inform() for status.
 */

#ifndef JUMANJI_SIM_LOGGING_HH
#define JUMANJI_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace jumanji {

/** Thrown by fatal(): the configuration is invalid, not a bug. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Reports an unrecoverable user/configuration error. */
[[noreturn]] void fatal(const std::string &msg);

/** Reports an internal simulator bug. */
[[noreturn]] void panic(const std::string &msg);

/** Prints a warning to stderr. */
void warn(const std::string &msg);

/** Prints a status message to stderr. */
void inform(const std::string &msg);

/** Globally silences warn()/inform() (used by tests). */
void setQuiet(bool quiet);

} // namespace jumanji

#endif // JUMANJI_SIM_LOGGING_HH
