#include "src/sim/tracing.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace jumanji {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatArgValue(double v)
{
    char buf[40];
    if (!std::isfinite(v)) return "null";
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::uint32_t
Tracer::beginRun(const std::string &label)
{
    std::uint32_t base = nextPid_;
    nextPid_ += kPidsPerRun;

    static const char *kProcNames[kPidsPerRun] = {"runtime", "cores",
                                                  "banks"};
    for (std::uint32_t p = 0; p < kPidsPerRun; p++) {
        Event e;
        e.ph = 'M';
        e.pid = base + p;
        e.name = "process_name";
        e.strArg = label + " " + kProcNames[p];
        push(std::move(e));
    }
    return base;
}

std::uint32_t
Tracer::beginProcess(const std::string &name)
{
    std::uint32_t pid = nextPid_;
    nextPid_ += 1;
    Event e;
    e.ph = 'M';
    e.pid = pid;
    e.name = "process_name";
    e.strArg = name;
    push(std::move(e));
    return pid;
}

void
Tracer::mergeFrom(const Tracer &other)
{
    // Pids allocated by `other` start at 1; shift that block to start
    // at our next free pid.
    std::uint32_t pidShift = nextPid_ - 1;
    events_.reserve(events_.size() + other.events_.size());
    for (const Event &e : other.events_) {
        Event copy = e;
        copy.pid = e.pid + pidShift;
        // Counter names point into other's interned storage;
        // complete/instant/metadata names are string literals with
        // static storage and copy over as-is.
        if (e.ph == 'C') copy.name = intern(e.name);
        push(std::move(copy));
    }
    nextPid_ += other.nextPid_ - 1;
}

void
Tracer::threadName(std::uint32_t pid, std::uint32_t tid,
                   const std::string &name)
{
    Event e;
    e.ph = 'M';
    e.pid = pid;
    e.tid = tid;
    e.name = "thread_name";
    e.strArg = name;
    push(std::move(e));
}

void
Tracer::complete(std::uint32_t pid, std::uint32_t tid, const char *name,
                 Tick start, Tick dur, std::vector<Arg> args)
{
    Event e;
    e.ph = 'X';
    e.pid = pid;
    e.tid = tid;
    e.name = name;
    e.ts = start;
    e.dur = dur;
    e.args = std::move(args);
    push(std::move(e));
}

void
Tracer::instant(std::uint32_t pid, std::uint32_t tid, const char *name,
                Tick ts, std::vector<Arg> args)
{
    Event e;
    e.ph = 'i';
    e.pid = pid;
    e.tid = tid;
    e.name = name;
    e.ts = ts;
    e.args = std::move(args);
    push(std::move(e));
}

const char *
Tracer::intern(const char *name)
{
    // std::set nodes never move, so the c_str() stays valid for the
    // tracer's whole lifetime.
    return internedNames_.insert(name).first->c_str();
}

void
Tracer::counter(std::uint32_t pid, const char *name, Tick ts,
                double value)
{
    counterInterned(pid, intern(name), ts, value);
}

void
Tracer::counterInterned(std::uint32_t pid, const char *internedName,
                        Tick ts, double value)
{
    Event e;
    e.ph = 'C';
    e.pid = pid;
    e.name = internedName;
    e.ts = ts;
    e.args.push_back({"value", value});
    push(std::move(e));
}

void
Tracer::writeTo(std::ostream &os) const
{
    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
    bool first = true;
    for (const Event &e : events_) {
        if (!first) os << ",";
        first = false;
        os << "\n{\"ph\": \"" << e.ph << "\", \"name\": \""
           << jsonEscape(e.name) << "\", \"pid\": " << e.pid
           << ", \"tid\": " << e.tid;
        if (e.ph == 'M') {
            os << ", \"args\": {\"name\": \"" << jsonEscape(e.strArg)
               << "\"}}";
            continue;
        }
        os << ", \"ts\": " << e.ts;
        if (e.ph == 'X') os << ", \"dur\": " << e.dur;
        // Thread-scoped instants: the marker draws on its lane only.
        if (e.ph == 'i') os << ", \"s\": \"t\"";
        if (!e.args.empty()) {
            os << ", \"args\": {";
            for (std::size_t i = 0; i < e.args.size(); i++) {
                os << (i ? ", " : "") << '"' << jsonEscape(e.args[i].key)
                   << "\": " << formatArgValue(e.args[i].value);
            }
            os << '}';
        }
        os << '}';
    }
    os << "\n]}\n";
}

} // namespace jumanji
