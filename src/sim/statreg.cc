#include "src/sim/statreg.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "src/sim/check.hh"
#include "src/sim/logging.hh"

namespace jumanji {

namespace {

/**
 * Numbers in dumps: counters and integral values print without a
 * fractional part so JSON consumers see integers; everything else
 * prints with full round-trip precision.
 */
std::string
formatNumber(double v)
{
    char buf[40];
    if (std::isfinite(v) && v == std::floor(v) &&
        std::fabs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else if (std::isfinite(v)) {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    } else {
        // JSON has no Inf/NaN literals; clamp to null.
        return "null";
    }
    return buf;
}

bool
validStatName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok) return false;
    }
    return name.find("..") == std::string::npos;
}

} // namespace

std::string
statIndexName(std::uint64_t index, int width)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%0*llu", width,
                  static_cast<unsigned long long>(index));
    return buf;
}

// ------------------------------------------------------- StatRegistry

const StatRegistry::Node &
StatRegistry::insert(const std::string &name, Node node)
{
    if (!validStatName(name))
        panic("StatRegistry: invalid stat name '" + name +
              "' (lowercase dotted paths only)");
    // A name that is also a parent path of another stat ("llc" next
    // to "llc.hits") would emit duplicate keys in the nested dump.
    std::string asParent = name + ".";
    auto next = nodes_.lower_bound(name);
    if (next != nodes_.end() &&
        next->first.compare(0, asParent.size(), asParent) == 0)
        panic("StatRegistry: '" + name + "' is a parent path of '" +
              next->first + "'");
    if (next != nodes_.begin()) {
        const std::string &prev = std::prev(next)->first;
        if (name.compare(0, prev.size() + 1, prev + ".") == 0)
            panic("StatRegistry: '" + name +
                  "' nests under existing stat '" + prev + "'");
    }
    auto [it, inserted] = nodes_.emplace(name, std::move(node));
    // Cold path, so the duplicate check stays active in every build
    // type: a silently rebound stat would corrupt dumps and the
    // fingerprint stream.
    if (!inserted)
        panic("StatRegistry: duplicate stat name '" + name + "'");
    leafCacheValid_ = false;
    return it->second;
}

void
StatRegistry::addCounter(const std::string &name, const std::string &desc,
                         const std::uint64_t *value)
{
    JUMANJI_ASSERT(value != nullptr, "counter must bind a value");
    Node n;
    n.kind = Kind::Counter;
    n.desc = desc;
    n.counter = value;
    insert(name, std::move(n));
}

void
StatRegistry::addGauge(const std::string &name, const std::string &desc,
                       std::function<double()> read)
{
    JUMANJI_ASSERT(static_cast<bool>(read), "gauge must bind a reader");
    Node n;
    n.kind = Kind::Gauge;
    n.desc = desc;
    n.read = std::move(read);
    insert(name, std::move(n));
}

void
StatRegistry::addFormula(const std::string &name, const std::string &desc,
                         std::function<double()> eval)
{
    JUMANJI_ASSERT(static_cast<bool>(eval), "formula must bind an eval");
    Node n;
    n.kind = Kind::Formula;
    n.desc = desc;
    n.read = std::move(eval);
    insert(name, std::move(n));
}

void
StatRegistry::addDistribution(const std::string &name,
                              const std::string &desc,
                              const SampleStat *samples)
{
    JUMANJI_ASSERT(samples != nullptr, "distribution must bind samples");
    Node n;
    n.kind = Kind::Distribution;
    n.desc = desc;
    n.samples = samples;
    insert(name, std::move(n));
}

void
StatRegistry::addDistribution(const std::string &name,
                              const std::string &desc,
                              const Histogram *hist)
{
    JUMANJI_ASSERT(hist != nullptr, "distribution must bind a histogram");
    Node n;
    n.kind = Kind::Distribution;
    n.desc = desc;
    n.hist = hist;
    insert(name, std::move(n));
}

bool
StatRegistry::has(const std::string &name) const
{
    return nodes_.count(name) > 0;
}

int
StatRegistry::partCount(const Node &node)
{
    if (node.kind != Kind::Distribution) return 1;
    if (node.samples != nullptr) return 7;
    return 3 + static_cast<int>(node.hist->numBins());
}

std::string
StatRegistry::partName(const std::string &name, const Node &node,
                       int part)
{
    if (part < 0) return name;
    if (node.samples != nullptr) {
        static const char *kSuffixes[7] = {".count", ".mean", ".min",
                                           ".max",   ".p50",  ".p95",
                                           ".p99"};
        return name + kSuffixes[part];
    }
    switch (part) {
    case 0: return name + ".total";
    case 1: return name + ".underflow";
    case 2: return name + ".overflow";
    default:
        return name + ".b" +
               statIndexName(static_cast<std::uint64_t>(part - 3));
    }
}

double
StatRegistry::leafValue(const Node &node, int part)
{
    switch (node.kind) {
    case Kind::Counter: return static_cast<double>(*node.counter);
    case Kind::Gauge:
    case Kind::Formula: return node.read();
    case Kind::Distribution: break;
    }
    if (node.samples != nullptr) {
        const SampleStat &s = *node.samples;
        switch (part) {
        case 0: return static_cast<double>(s.count());
        case 1: return s.mean();
        case 2: return s.min();
        case 3: return s.max();
        case 4: return s.percentile(50.0);
        case 5: return s.percentile(95.0);
        case 6: return s.percentile(99.0);
        default: panic("StatRegistry: bad sample-stat leaf part");
        }
    }
    const Histogram &h = *node.hist;
    switch (part) {
    case 0: return static_cast<double>(h.total());
    case 1: return static_cast<double>(h.underflow());
    case 2: return static_cast<double>(h.overflow());
    default: return static_cast<double>(h.counts()[part - 2]);
    }
}

void
StatRegistry::appendLeaves(const std::string &name, const Node &node,
                           std::vector<StatValue> &out) const
{
    int parts = partCount(node);
    if (node.kind != Kind::Distribution) {
        out.push_back({name, leafValue(node, -1)});
        return;
    }
    for (int part = 0; part < parts; part++)
        out.push_back({partName(name, node, part),
                       leafValue(node, part)});
}

void
StatRegistry::ensureLeafCache() const
{
    if (leafCacheValid_) return;
    leafCache_.clear();
    leafCache_.reserve(nodes_.size());
    for (const auto &[name, node] : nodes_) {
        if (node.kind != Kind::Distribution) {
            leafCache_.push_back({name, &name, &node, -1});
            continue;
        }
        int parts = partCount(node);
        for (int part = 0; part < parts; part++)
            leafCache_.push_back(
                {partName(name, node, part), &name, &node, part});
    }
    // One sort at build time gives every later snapshot, dump, and
    // fingerprint its total order by full leaf name. The node map is
    // already name-ordered, but distribution expansions append their
    // suffixes in summary order (.count, .mean, ...), and sibling
    // names can interleave ('-' sorts before '.').
    std::sort(leafCache_.begin(), leafCache_.end(),
              [](const LeafRef &a, const LeafRef &b) {
                  return a.name < b.name;
              });
    leafCacheValid_ = true;
}

namespace {

bool
matchesAnySelector(const std::string &nodeName,
                   const std::vector<std::string> &selectors)
{
    for (const auto &sel : selectors)
        if (nodeName.compare(0, sel.size(), sel) == 0) return true;
    return false;
}

} // namespace

std::vector<StatValue>
StatRegistry::snapshot() const
{
    ensureLeafCache();
    std::vector<StatValue> out;
    out.reserve(leafCache_.size());
    for (const LeafRef &leaf : leafCache_)
        out.push_back({leaf.name, leafValue(*leaf.node, leaf.part)});
    return out;
}

std::vector<StatValue>
StatRegistry::snapshot(const std::vector<std::string> &selectors) const
{
    ensureLeafCache();
    std::vector<StatValue> out;
    for (const LeafRef &leaf : leafCache_) {
        if (!matchesAnySelector(*leaf.nodeName, selectors)) continue;
        out.push_back({leaf.name, leafValue(*leaf.node, leaf.part)});
    }
    return out;
}

void
StatRegistry::snapshotValues(const std::vector<std::string> &selectors,
                             std::vector<double> &out) const
{
    ensureLeafCache();
    for (const LeafRef &leaf : leafCache_) {
        if (!matchesAnySelector(*leaf.nodeName, selectors)) continue;
        out.push_back(leafValue(*leaf.node, leaf.part));
    }
}

std::vector<std::string>
StatRegistry::leaves(const std::vector<std::string> &selectors) const
{
    ensureLeafCache();
    std::vector<std::string> names;
    for (const LeafRef &leaf : leafCache_)
        if (matchesAnySelector(*leaf.nodeName, selectors))
            names.push_back(leaf.name);
    return names;
}

double
StatRegistry::value(const std::string &name) const
{
    auto it = nodes_.find(name);
    if (it != nodes_.end() && it->second.kind != Kind::Distribution) {
        const Node &n = it->second;
        return n.kind == Kind::Counter
                   ? static_cast<double>(*n.counter)
                   : n.read();
    }
    // Distribution leaves ("x.p95"): strip the last component and
    // expand the parent node.
    std::size_t dot = name.rfind('.');
    if (dot != std::string::npos) {
        auto parent = nodes_.find(name.substr(0, dot));
        if (parent != nodes_.end() &&
            parent->second.kind == Kind::Distribution) {
            std::vector<StatValue> expanded;
            appendLeaves(parent->first, parent->second, expanded);
            for (const StatValue &sv : expanded)
                if (sv.name == name) return sv.value;
        }
    }
    panic("StatRegistry::value: unknown stat '" + name + "'");
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    writeNestedStatsJson(os, snapshot());
}

void
StatRegistry::fold(Fingerprint &fp) const
{
    std::vector<StatValue> snap = snapshot();
    fp.addU64(snap.size());
    for (const StatValue &sv : snap) {
        fp.addString(sv.name);
        fp.addDouble(sv.value);
    }
}

// --------------------------------------------------- TimelineSeries

std::size_t
TimelineSeries::columnIndex(const std::string &column) const
{
    for (std::size_t i = 0; i < columns.size(); i++)
        if (columns[i] == column) return i;
    return static_cast<std::size_t>(-1);
}

void
TimelineSeries::writeCsv(std::ostream &os) const
{
    os << "tick";
    for (const auto &c : columns) os << ',' << c;
    os << '\n';
    for (std::size_t r = 0; r < rows.size(); r++) {
        os << ticks[r];
        for (double v : rows[r]) os << ',' << formatNumber(v);
        os << '\n';
    }
}

void
TimelineSeries::writeJson(std::ostream &os) const
{
    os << "{\"columns\": [";
    for (std::size_t i = 0; i < columns.size(); i++)
        os << (i ? ", " : "") << '"' << columns[i] << '"';
    os << "], \"ticks\": [";
    for (std::size_t i = 0; i < ticks.size(); i++)
        os << (i ? ", " : "") << ticks[i];
    os << "], \"rows\": [";
    for (std::size_t r = 0; r < rows.size(); r++) {
        os << (r ? ", " : "") << '[';
        for (std::size_t c = 0; c < rows[r].size(); c++)
            os << (c ? ", " : "") << formatNumber(rows[r][c]);
        os << ']';
    }
    os << "]}";
}

void
TimelineSeries::fold(Fingerprint &fp) const
{
    fp.addU64(columns.size());
    for (const auto &c : columns) fp.addString(c);
    fp.addU64(ticks.size());
    for (Tick t : ticks) fp.addU64(t);
    for (const auto &row : rows)
        for (double v : row) fp.addDouble(v);
}

// ---------------------------------------------------- EpochRecorder

EpochRecorder::EpochRecorder(const StatRegistry *reg,
                             std::vector<std::string> selectors)
    : reg_(reg), selectors_(std::move(selectors))
{
    JUMANJI_ASSERT(reg_ != nullptr, "recorder needs a registry");
}

void
EpochRecorder::record(Tick now)
{
    if (!resolved_) {
        series_.columns = reg_->leaves(selectors_);
        resolved_ = true;
    }
    std::vector<double> row;
    row.reserve(series_.columns.size());
    reg_->snapshotValues(selectors_, row);
    // Registration after the first record() would desynchronize rows
    // from the column header; the registry is ordered, so a same-size
    // value sweep has the same leaves.
    JUMANJI_INVARIANT(row.size() == series_.columns.size(),
                      "stats registered after the first epoch record");
    series_.ticks.push_back(now);
    series_.rows.push_back(std::move(row));
}

// ---------------------------------------------- writeNestedStatsJson

namespace {

void
writeIndent(std::ostream &os, int depth)
{
    for (int i = 0; i < depth; i++) os << "  ";
}

/**
 * Emits the subtree of entries in [begin, end) that share the prefix
 * ending at @p depth path components. The input is sorted by name, so
 * each subtree occupies a contiguous range.
 */
void
writeSubtree(std::ostream &os,
             const std::vector<StatValue> &stats, std::size_t begin,
             std::size_t end, std::size_t prefixLen, int depth)
{
    os << "{";
    bool first = true;
    std::size_t i = begin;
    while (i < end) {
        const std::string &name = stats[i].name;
        std::size_t dot = name.find('.', prefixLen);
        std::string key = dot == std::string::npos
                              ? name.substr(prefixLen)
                              : name.substr(prefixLen, dot - prefixLen);
        if (!first) os << ",";
        first = false;
        os << '\n';
        writeIndent(os, depth + 1);
        os << '"' << key << "\": ";
        if (dot == std::string::npos) {
            os << formatNumber(stats[i].value);
            i++;
            continue;
        }
        // Group every entry sharing "prefix.key." into one child.
        std::string childPrefix = name.substr(0, dot + 1);
        std::size_t j = i;
        while (j < end &&
               stats[j].name.compare(0, childPrefix.size(),
                                     childPrefix) == 0)
            j++;
        writeSubtree(os, stats, i, j, childPrefix.size(), depth + 1);
        i = j;
    }
    if (!first) {
        os << '\n';
        writeIndent(os, depth);
    }
    os << "}";
}

} // namespace

void
writeNestedStatsJson(std::ostream &os,
                     const std::vector<StatValue> &stats, int indent)
{
    writeSubtree(os, stats, 0, stats.size(), 0, indent);
}

} // namespace jumanji
