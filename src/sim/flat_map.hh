/**
 * @file
 * Deterministic flat containers for the per-access hot path.
 *
 * PR 1 banned unordered containers because their iteration order is
 * nondeterministic, and replaced them with std::map — deterministic,
 * but every lookup on the simulator's innermost loop became an
 * O(log n) pointer-chasing tree walk. The simulator's keys (VcId,
 * AppId, VmId, BankId) are small dense integers, so we can have both
 * properties at once:
 *
 *  - SmallIdMap<Id, V>: a dense vector indexed by the id's integer
 *    value with a presence bitmap. O(1) lookup/insert/erase, ordered
 *    (ascending-id) iteration — the same visit order std::map<Id, V>
 *    gives for integer keys, so swapping one for the other is
 *    invisible to stats, fingerprints, and placement decisions.
 *  - FlatMap<K, V>: a sorted-vector map for sparser or non-id keys.
 *    O(log n) branch-free-ish binary search on a contiguous array,
 *    ordered iteration over real std::pair references.
 *
 * Choosing between them (see docs/INTERNALS.md §11): SmallIdMap when
 * the key is a non-negative small id (one sentinel value of -1 is
 * also supported, occupying the first slot so iteration order still
 * matches std::map); FlatMap when keys are sparse or mutation happens
 * mid-iteration; std::map only off the hot path, with a lint
 * suppression, when neither fits.
 */

#ifndef JUMANJI_SIM_FLAT_MAP_HH
#define JUMANJI_SIM_FLAT_MAP_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/sim/logging.hh"

namespace jumanji {

/**
 * Dense id-indexed map. @p Id must be an integral (or integral-like)
 * type whose useful values are small and >= -1; slot = id + 1, so the
 * -1 sentinels (kInvalidApp/Vc/Vm/Bank) are storable and sort first,
 * exactly as they do in std::map.
 */
template <typename Id, typename V>
class SmallIdMap
{
  public:
    /** Proxy yielded by iteration; supports `auto [id, v]` bindings. */
    struct Entry
    {
        const Id first;
        V &second;
    };
    struct ConstEntry
    {
        const Id first;
        const V &second;
    };

    class const_iterator
    {
      public:
        const_iterator(const SmallIdMap *m, std::size_t slot)
            : m_(m), slot_(slot)
        {
            skipAbsent();
        }

        ConstEntry operator*() const
        {
            return {m_->idOfSlot(slot_), m_->values_[slot_]};
        }
        const_iterator &
        operator++()
        {
            slot_++;
            skipAbsent();
            return *this;
        }
        bool operator==(const const_iterator &o) const
        {
            return slot_ == o.slot_;
        }
        bool operator!=(const const_iterator &o) const
        {
            return slot_ != o.slot_;
        }

      private:
        void
        skipAbsent()
        {
            while (slot_ < m_->values_.size() && !m_->presentSlot(slot_))
                slot_++;
        }
        const SmallIdMap *m_;
        std::size_t slot_;
    };

    class iterator
    {
      public:
        iterator(SmallIdMap *m, std::size_t slot) : m_(m), slot_(slot)
        {
            skipAbsent();
        }

        Entry operator*() const
        {
            return {m_->idOfSlot(slot_), m_->values_[slot_]};
        }
        iterator &
        operator++()
        {
            slot_++;
            skipAbsent();
            return *this;
        }
        bool operator==(const iterator &o) const
        {
            return slot_ == o.slot_;
        }
        bool operator!=(const iterator &o) const
        {
            return slot_ != o.slot_;
        }

      private:
        void
        skipAbsent()
        {
            while (slot_ < m_->values_.size() && !m_->presentSlot(slot_))
                slot_++;
        }
        SmallIdMap *m_;
        std::size_t slot_;
    };

    /** Value for @p id, default-constructing (and growing) if absent. */
    V &
    operator[](Id id)
    {
        std::size_t slot = slotOf(id);
        if (slot >= values_.size()) grow(slot + 1);
        if (!presentSlot(slot)) {
            markPresent(slot);
            size_++;
        }
        return values_[slot];
    }

    /** Pointer to @p id's value, or nullptr. The hot-path lookup. */
    V *
    lookup(Id id)
    {
        std::size_t slot = slotOf(id);
        if (slot >= values_.size() || !presentSlot(slot)) return nullptr;
        return &values_[slot];
    }
    const V *
    lookup(Id id) const
    {
        std::size_t slot = slotOf(id);
        if (slot >= values_.size() || !presentSlot(slot)) return nullptr;
        return &values_[slot];
    }

    bool contains(Id id) const { return lookup(id) != nullptr; }
    std::size_t count(Id id) const { return contains(id) ? 1 : 0; }

    /** Removes @p id. @return entries removed (0 or 1). */
    std::size_t
    erase(Id id)
    {
        std::size_t slot = slotOf(id);
        if (slot >= values_.size() || !presentSlot(slot)) return 0;
        values_[slot] = V{}; // release resources eagerly
        present_[slot >> 6] &= ~(1ull << (slot & 63));
        size_--;
        return 1;
    }

    void
    clear()
    {
        values_.clear();
        present_.clear();
        size_ = 0;
    }

    /**
     * Pre-allocates storage for ids in [-1, @p maxId]: subsequent
     * operator[] calls in that range never allocate, which keeps
     * steady-state hot paths allocation-free.
     */
    void
    reserve(Id maxId)
    {
        std::size_t slots = slotOf(maxId) + 1;
        values_.reserve(slots);
        present_.reserve((slots + 63) / 64);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, values_.size()); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const
    {
        return const_iterator(this, values_.size());
    }

  private:
    static std::size_t
    slotOf(Id id)
    {
        auto raw = static_cast<std::int64_t>(id);
        if (raw < -1) panic("SmallIdMap: id below the -1 sentinel");
        return static_cast<std::size_t>(raw + 1);
    }
    Id
    idOfSlot(std::size_t slot) const
    {
        return static_cast<Id>(static_cast<std::int64_t>(slot) - 1);
    }
    bool
    presentSlot(std::size_t slot) const
    {
        return (present_[slot >> 6] >> (slot & 63)) & 1ull;
    }
    void
    markPresent(std::size_t slot)
    {
        present_[slot >> 6] |= 1ull << (slot & 63);
    }
    void
    grow(std::size_t slots)
    {
        values_.resize(slots);
        present_.resize((slots + 63) / 64, 0);
    }

    std::vector<V> values_;
    /** Bit i set iff slot i holds a live entry. */
    std::vector<std::uint64_t> present_;
    std::size_t size_ = 0;
};

/**
 * Sorted-vector map: entries live contiguously in ascending key
 * order, lookups binary-search. Iterators yield real
 * std::pair<K, V> references, so `for (auto &[k, v] : m)` mutation
 * works exactly as with std::map.
 */
template <typename K, typename V>
class FlatMap
{
  public:
    using value_type = std::pair<K, V>;
    using iterator = typename std::vector<value_type>::iterator;
    using const_iterator = typename std::vector<value_type>::const_iterator;

    /** Value for @p key, default-constructing (and shifting) if absent. */
    V &
    operator[](const K &key)
    {
        iterator it = lowerBound(key);
        if (it == entries_.end() || it->first != key)
            it = entries_.insert(it, value_type(key, V{}));
        return it->second;
    }

    V *
    lookup(const K &key)
    {
        iterator it = lowerBound(key);
        if (it == entries_.end() || it->first != key) return nullptr;
        return &it->second;
    }
    const V *
    lookup(const K &key) const
    {
        const_iterator it = lowerBound(key);
        if (it == entries_.end() || it->first != key) return nullptr;
        return &it->second;
    }

    iterator
    find(const K &key)
    {
        iterator it = lowerBound(key);
        if (it == entries_.end() || it->first != key)
            return entries_.end();
        return it;
    }
    const_iterator
    find(const K &key) const
    {
        const_iterator it = lowerBound(key);
        if (it == entries_.end() || it->first != key)
            return entries_.end();
        return it;
    }

    bool contains(const K &key) const { return lookup(key) != nullptr; }
    std::size_t count(const K &key) const { return contains(key) ? 1 : 0; }

    std::size_t
    erase(const K &key)
    {
        iterator it = lowerBound(key);
        if (it == entries_.end() || it->first != key) return 0;
        entries_.erase(it);
        return 1;
    }

    void clear() { entries_.clear(); }
    void reserve(std::size_t n) { entries_.reserve(n); }
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    iterator begin() { return entries_.begin(); }
    iterator end() { return entries_.end(); }
    const_iterator begin() const { return entries_.begin(); }
    const_iterator end() const { return entries_.end(); }

  private:
    iterator
    lowerBound(const K &key)
    {
        return std::lower_bound(entries_.begin(), entries_.end(), key,
                                [](const value_type &e, const K &k) {
                                    return e.first < k;
                                });
    }
    const_iterator
    lowerBound(const K &key) const
    {
        return std::lower_bound(entries_.begin(), entries_.end(), key,
                                [](const value_type &e, const K &k) {
                                    return e.first < k;
                                });
    }

    std::vector<value_type> entries_;
};

} // namespace jumanji

#endif // JUMANJI_SIM_FLAT_MAP_HH
