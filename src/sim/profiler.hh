/**
 * @file
 * Host-side profiling, part 1 of 2: a hierarchical scoped wall-clock
 * profiler for the simulator's *own* execution time (part 2, the
 * orchestrator's per-job telemetry, lives in src/driver/telemetry.hh).
 *
 * This subsystem is deliberately OUTSIDE the deterministic stats
 * stream. StatRegistry and the --selfcheck fingerprint describe the
 * simulated machine and must be reproducible from (seed, config)
 * alone; the profiler measures the host — wall seconds spent
 * calibrating, simulating, repartitioning. Nothing recorded here is
 * ever folded into a fingerprint, a golden table, or a cache key.
 *
 * The discipline mirrors StatRegistry all the same: scopes carry
 * dotted lowercase names ("sim.epoch.repartition"), names are
 * interned once per site into small dense ids, and reports are
 * sorted by name so identical measurements serialize identically.
 *
 * Instrumentation sites use JUMANJI_PROF_SCOPE("name"). Like
 * JUMANJI_TRACE, the macro holds itself to the <2% bar on the
 * fig13-small bench: disabled at runtime it costs one predictable
 * branch per scope, and under JUMANJI_DISABLE_PROFILING it expands
 * to nothing at all.
 *
 * Threading model: simulation code is single-threaded per driver
 * worker, so every thread owns a private Profiler
 * (Profiler::current()) and records into it without synchronization.
 * Cross-thread aggregation is a merge problem, not a locking
 * problem: workers call flushThreadProfile() when they finish (the
 * driver pool serializes those calls under its own lock — this file
 * must stay free of threading primitives per concurrency-routing),
 * and reports are written from aggregateProfile() once the pool has
 * drained. profiler.cc is, with driver/telemetry.cc, one of exactly
 * two sanctioned wall-clock readers in src/ (clock-routing).
 */

#ifndef JUMANJI_SIM_PROFILER_HH
#define JUMANJI_SIM_PROFILER_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace jumanji {
namespace prof {

/** Dense per-profiler scope index from intern(). */
using ScopeId = std::uint32_t;

/** One scope's accumulated totals. Times are integer nanoseconds. */
struct ScopeTotals
{
    std::string name;
    std::uint64_t calls = 0;
    /** Wall time with children; recursion is counted once. */
    std::uint64_t inclusiveNs = 0;
    /** Wall time minus time spent in directly nested scopes. */
    std::uint64_t exclusiveNs = 0;
};

class Profiler
{
  public:
    /**
     * Monotonic nanosecond source. Swappable so tests can drive the
     * nesting math with exact fake timestamps and compare reports
     * byte-for-byte.
     */
    using ClockFn = std::uint64_t (*)();

    Profiler();

    /**
     * Returns the id for @p name, allocating one on first use. Ids
     * are stable for the profiler's lifetime (reset() keeps them),
     * which is what lets JUMANJI_PROF_SCOPE cache the id in a
     * static thread_local and skip the map lookup on every entry.
     */
    ScopeId intern(const std::string &name);
    const std::string &name(ScopeId id) const;

    /** Opens/closes a scope. leave() must match the innermost enter. */
    void enter(ScopeId id);
    void leave(ScopeId id);

    /** True when no closed scope has been recorded. */
    bool empty() const;
    /** Currently open scopes (0 between top-level sections). */
    std::size_t depth() const { return stack_.size(); }

    /**
     * Totals for every scope with at least one closed call, sorted
     * by name.
     */
    std::vector<ScopeTotals> totals() const;

    /** Adds @p other's totals into this profiler, matching by name. */
    void mergeFrom(const Profiler &other);

    /** Zeroes every accumulator; interned ids remain valid. */
    void reset();

    void setClock(ClockFn clock);

    /**
     * Reports, sorted by scope name. writeJson emits
     * {"schema": "jumanji-profile-v1", "scopes": [...]} with
     * inclusive_ns/exclusive_ns as exact integers plus _s doubles
     * for human consumption.
     */
    void writeText(std::ostream &os) const;
    void writeJson(std::ostream &os) const;

    /** The calling thread's private profiler. */
    static Profiler &current();

  private:
    struct Slot
    {
        std::string name;
        std::uint64_t calls = 0;
        std::uint64_t inclusiveNs = 0;
        std::uint64_t exclusiveNs = 0;
        /** Open nesting depth; inclusive time closes at 0. */
        std::uint32_t open = 0;
    };
    struct Frame
    {
        ScopeId id;
        std::uint64_t startNs;
        /** Nanoseconds spent in scopes nested directly inside. */
        std::uint64_t childNs;
    };

    std::map<std::string, ScopeId> ids_;
    std::vector<Slot> slots_;
    std::vector<Frame> stack_;
    ClockFn clock_;
};

/**
 * Process-wide master switch, off by default. Flip it before worker
 * threads start (the CLI does so while parsing --profile): scopes
 * opened while disabled record nothing.
 */
void setProfilingEnabled(bool enabled);
bool profilingEnabled();

/**
 * The process-wide aggregate that reports are written from. Access
 * is NOT synchronized here: callers serialize, which in practice
 * means the driver pool flushes each exiting worker under one lock
 * and the main thread reads only after drain().
 */
Profiler &aggregateProfile();

/**
 * Merges the calling thread's profiler into aggregateProfile() and
 * resets it. No-op while the thread has scopes still open.
 */
void flushThreadProfile();

/**
 * RAII guard behind JUMANJI_PROF_SCOPE. Samples the enable flag
 * once on entry so a scope that outlives a flag flip stays balanced.
 */
class ProfScope
{
  public:
    explicit ProfScope(ScopeId id) : id_(id), armed_(profilingEnabled())
    {
        if (armed_) Profiler::current().enter(id_);
    }
    ~ProfScope()
    {
        if (armed_) Profiler::current().leave(id_);
    }
    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    ScopeId id_;
    bool armed_;
};

} // namespace prof
} // namespace jumanji

#define JUMANJI_PROF_CONCAT2(a, b) a##b
#define JUMANJI_PROF_CONCAT(a, b) JUMANJI_PROF_CONCAT2(a, b)

#if defined(JUMANJI_DISABLE_PROFILING)
/** Compiled out: no statics, no branch, no clock. */
#define JUMANJI_PROF_SCOPE(name) static_cast<void>(0)
#else
/**
 * Opens the dotted-named scope until the end of the enclosing block.
 * The id is interned once per thread per site; after that an entry
 * costs one branch when profiling is disabled.
 */
#define JUMANJI_PROF_SCOPE(name)                                       \
    static thread_local const ::jumanji::prof::ScopeId                 \
        JUMANJI_PROF_CONCAT(jumanjiProfId_, __LINE__) =                \
            ::jumanji::prof::Profiler::current().intern(name);         \
    ::jumanji::prof::ProfScope JUMANJI_PROF_CONCAT(jumanjiProfScope_,  \
                                                   __LINE__)(          \
        JUMANJI_PROF_CONCAT(jumanjiProfId_, __LINE__))
#endif

#endif // JUMANJI_SIM_PROFILER_HH
