/**
 * @file
 * Contract-checking macros for simulator invariants.
 *
 * Three flavours, all gem5-panic-style (they throw PanicError so
 * tests can observe them, after dumping the failing expression and
 * the current simulation context — tick, bank, core, phase — to
 * stderr):
 *
 *  - JUMANJI_ASSERT(expr[, msg])     preconditions / local sanity
 *  - JUMANJI_INVARIANT(expr[, msg])  cross-structure consistency
 *  - JUMANJI_UNREACHABLE(msg)        impossible control flow
 *
 * Activation: checks are compiled in whenever NDEBUG is not defined
 * (Debug builds) and compiled out otherwise (Release/RelWithDebInfo),
 * so the hot path pays nothing in optimized builds. Two per-TU
 * overrides exist for tests and targeted debugging:
 *
 *  - #define JUMANJI_FORCE_CHECKS 1 before including this header (or
 *    as a target compile definition) to force checks on; or
 *  - #define JUMANJI_DISABLE_CHECKS 1 to force them off.
 *
 * Disabled JUMANJI_ASSERT/JUMANJI_INVARIANT still *type-check* their
 * expression inside an `if (false)` so Release builds cannot rot, but
 * never evaluate it. Disabled JUMANJI_UNREACHABLE lowers to
 * __builtin_unreachable().
 *
 * Context: subsystems publish where the simulation currently is via
 * the cheap setters below (a single store each); the failure handler
 * includes the latest values in its dump. The event queue publishes
 * the tick, banks publish their id, cores publish their id, and the
 * runtime publishes a phase string.
 */

#ifndef JUMANJI_SIM_CHECK_HH
#define JUMANJI_SIM_CHECK_HH

#include <cstdint>
#include <string>

#include "src/sim/types.hh"

#if defined(JUMANJI_DISABLE_CHECKS)
#define JUMANJI_CHECKS_ACTIVE 0
#elif defined(JUMANJI_FORCE_CHECKS) || !defined(NDEBUG)
#define JUMANJI_CHECKS_ACTIVE 1
#else
#define JUMANJI_CHECKS_ACTIVE 0
#endif

namespace jumanji {

/** Where the simulation currently is, for failure dumps. */
struct CheckContext
{
    Tick tick = 0;
    BankId bank = kInvalidBank;
    CoreId core = -1;
    /** Static string naming the current phase (never freed). */
    const char *phase = "startup";
    /** True while a CheckContextScope (one live run) is open. */
    bool active = false;
};

/**
 * The current thread's context. Each simulation runs single-threaded
 * on one worker; making the context thread-local lets the driver run
 * several independent Systems concurrently without their failure
 * dumps (or the scope assert below) cross-talking.
 */
CheckContext &checkContext();

/**
 * RAII marker for one live simulation run on this worker thread.
 * Entering resets the thread's context and, in Debug, asserts that no
 * other run is live on the same thread — two interleaved runs would
 * corrupt each other's failure context (and signal a driver bug:
 * jobs must not nest). System::run() opens one per run.
 */
class CheckContextScope
{
  public:
    CheckContextScope();
    ~CheckContextScope();

    CheckContextScope(const CheckContextScope &) = delete;
    CheckContextScope &operator=(const CheckContextScope &) = delete;
};

/** Publishes the current simulated tick (called by the DES kernel). */
inline void
checkSetTick(Tick tick)
{
    checkContext().tick = tick;
}

/** Publishes the bank currently being accessed. */
inline void
checkSetBank(BankId bank)
{
    checkContext().bank = bank;
}

/** Publishes the core currently executing. */
inline void
checkSetCore(CoreId core)
{
    checkContext().core = core;
}

/** Publishes the current phase. @p phase must outlive the run. */
inline void
checkSetPhase(const char *phase)
{
    checkContext().phase = phase;
}

/**
 * True when the core checking TU (check.cc) was compiled with
 * contract checks active, i.e. whether CheckContextScope's liveness
 * assert can fire in this build. Lets tests adapt to the build type.
 */
bool checksActiveInCore();

namespace detail {

/**
 * Dumps the failure (expression, message, context) to stderr and
 * throws PanicError. Never returns.
 */
[[noreturn]] void checkFailed(const char *kind, const char *file,
                              int line, const char *func,
                              const char *expr, const std::string &msg);

/** "tick=... bank=... core=... phase=..." for the current context. */
std::string describeContext();

inline std::string
checkMessage()
{
    return std::string();
}

inline std::string
checkMessage(const std::string &msg)
{
    return msg;
}

inline std::string
checkMessage(const char *msg)
{
    return std::string(msg);
}

} // namespace detail
} // namespace jumanji

#if JUMANJI_CHECKS_ACTIVE

#define JUMANJI_ASSERT(expr, ...)                                         \
    do {                                                                  \
        if (!(expr)) {                                                    \
            ::jumanji::detail::checkFailed(                               \
                "assertion", __FILE__, __LINE__, __func__, #expr,         \
                ::jumanji::detail::checkMessage(__VA_ARGS__));            \
        }                                                                 \
    } while (0)

#define JUMANJI_INVARIANT(expr, ...)                                      \
    do {                                                                  \
        if (!(expr)) {                                                    \
            ::jumanji::detail::checkFailed(                               \
                "invariant", __FILE__, __LINE__, __func__, #expr,         \
                ::jumanji::detail::checkMessage(__VA_ARGS__));            \
        }                                                                 \
    } while (0)

#define JUMANJI_UNREACHABLE(...)                                          \
    ::jumanji::detail::checkFailed(                                       \
        "unreachable", __FILE__, __LINE__, __func__, "unreachable code",  \
        ::jumanji::detail::checkMessage(__VA_ARGS__))

#else // !JUMANJI_CHECKS_ACTIVE

// Type-check but never evaluate, so call sites stay warning-free and
// cannot bit-rot in Release builds.
#define JUMANJI_ASSERT(expr, ...)                                         \
    do {                                                                  \
        if (false) { (void)(expr); }                                      \
    } while (0)

#define JUMANJI_INVARIANT(expr, ...)                                      \
    do {                                                                  \
        if (false) { (void)(expr); }                                      \
    } while (0)

#define JUMANJI_UNREACHABLE(...) __builtin_unreachable()

#endif // JUMANJI_CHECKS_ACTIVE

#endif // JUMANJI_SIM_CHECK_HH
