/**
 * @file
 * Lightweight statistics: counters, scalar gauges, streaming
 * histograms with percentile queries, and a registry for reporting.
 */

#ifndef JUMANJI_SIM_STATS_HH
#define JUMANJI_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace jumanji {

/**
 * A reservoir of samples supporting percentile queries.
 *
 * Stores all samples (experiments are sized so this is cheap) and
 * sorts lazily on query. Used for request latencies, access times, etc.
 */
class SampleStat
{
  public:
    void
    add(double v)
    {
        samples_.push_back(v);
        sorted_ = false;
    }

    void
    clear()
    {
        samples_.clear();
        sorted_ = true;
    }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean; 0 if empty. */
    double
    mean() const
    {
        if (samples_.empty()) return 0.0;
        double sum = 0.0;
        for (double s : samples_) sum += s;
        return sum / static_cast<double>(samples_.size());
    }

    double
    max() const
    {
        if (samples_.empty()) return 0.0;
        return *std::max_element(samples_.begin(), samples_.end());
    }

    double
    min() const
    {
        if (samples_.empty()) return 0.0;
        return *std::min_element(samples_.begin(), samples_.end());
    }

    /**
     * The p-th percentile (0 <= p <= 100) by linear interpolation
     * between the two nearest ranks of the sorted samples (the
     * "exclusive" definition used by numpy's default): the fractional
     * rank p/100 * (n-1) blends samples[floor] and samples[ceil] by
     * its fractional part. p=0 and p=100 are exactly min and max.
     * Returns 0 if empty.
     */
    double
    percentile(double p) const
    {
        if (samples_.empty()) return 0.0;
        sort();
        double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
        auto lo = static_cast<std::size_t>(rank);
        std::size_t hi = std::min(lo + 1, samples_.size() - 1);
        double frac = rank - static_cast<double>(lo);
        return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
    }

    const std::vector<double> &raw() const { return samples_; }

  private:
    void
    sort() const
    {
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
    }

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * A fixed-bucket histogram for dense distributions (access times).
 *
 * Layout: counts()[0] is the underflow bucket (v < lo), counts()[1]
 * through counts()[buckets] are the equal-width in-range bins
 * [lo, lo+w) ... [hi-w, hi), and counts()[buckets+1] is the overflow
 * bucket (v >= hi). Underflow gets its own bucket so out-of-range
 * lows are never conflated with the first in-range bin.
 */
class Histogram
{
  public:
    /** Buckets [lo, hi) split into @p buckets equal bins. */
    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), counts_(buckets + 2, 0)
    {
    }

    void
    add(double v)
    {
        total_++;
        if (v < lo_) { counts_.front()++; return; }
        if (v >= hi_) { counts_.back()++; return; }
        auto idx = static_cast<std::size_t>(
            (v - lo_) / (hi_ - lo_) * static_cast<double>(numBins()));
        counts_[idx + 1]++;
    }

    std::uint64_t total() const { return total_; }
    const std::vector<std::uint64_t> &counts() const { return counts_; }

    /** In-range bins, excluding the underflow/overflow buckets. */
    std::size_t numBins() const { return counts_.size() - 2; }

    std::uint64_t underflow() const { return counts_.front(); }
    std::uint64_t overflow() const { return counts_.back(); }

    /**
     * Lower bound of bucket @p i in counts() order: -infinity for
     * the underflow bucket, hi for the overflow bucket.
     */
    double
    bucketLow(std::size_t i) const
    {
        if (i == 0) return -std::numeric_limits<double>::infinity();
        if (i >= counts_.size() - 1) return hi_;
        return lo_ + (hi_ - lo_) * static_cast<double>(i - 1) /
               static_cast<double>(numBins());
    }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Per-component counters for data-movement accounting.
 *
 * Every memory access bumps some subset of these; the energy model
 * (src/metrics) converts them to picojoules.
 */
struct AccessCounters
{
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t nocHops = 0;
    std::uint64_t memAccesses = 0;

    AccessCounters &
    operator+=(const AccessCounters &o)
    {
        l1Hits += o.l1Hits;
        l1Misses += o.l1Misses;
        l2Hits += o.l2Hits;
        l2Misses += o.l2Misses;
        llcHits += o.llcHits;
        llcMisses += o.llcMisses;
        nocHops += o.nocHops;
        memAccesses += o.memAccesses;
        return *this;
    }
};

/** Formats a table row with fixed column widths for bench output. */
std::string formatRow(const std::vector<std::string> &cells,
                      std::size_t width = 14);

} // namespace jumanji

#endif // JUMANJI_SIM_STATS_HH
