#include "src/sim/profiler.hh"

#include <chrono>
#include <cstdio>
#include <ostream>

#include "src/sim/check.hh"

namespace jumanji {
namespace prof {

namespace {

// The sanctioned host clock read (clock-routing): everything in
// src/ that wants wall time goes through a Profiler, and every
// Profiler defaults to this. Monotonic, so scope math never sees
// time move backwards.
std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool enabled = false;

std::string
secondsString(std::uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f",
                  static_cast<double>(ns) / 1e9);
    return buf;
}

} // namespace

Profiler::Profiler() : clock_(&steadyNowNs) {}

ScopeId
Profiler::intern(const std::string &name)
{
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    ScopeId id = static_cast<ScopeId>(slots_.size());
    ids_.emplace(name, id);
    Slot slot;
    slot.name = name;
    slots_.push_back(std::move(slot));
    return id;
}

const std::string &
Profiler::name(ScopeId id) const
{
    JUMANJI_ASSERT(id < slots_.size(), "unknown scope id");
    return slots_[id].name;
}

void
Profiler::enter(ScopeId id)
{
    JUMANJI_ASSERT(id < slots_.size(), "enter of un-interned scope");
    slots_[id].open++;
    stack_.push_back({id, clock_(), 0});
}

void
Profiler::leave(ScopeId id)
{
    JUMANJI_ASSERT(!stack_.empty() && stack_.back().id == id,
                   "scope leave does not match innermost enter");
    const Frame frame = stack_.back();
    stack_.pop_back();
    const std::uint64_t end = clock_();
    const std::uint64_t elapsed =
        end >= frame.startNs ? end - frame.startNs : 0;

    Slot &slot = slots_[id];
    slot.calls++;
    slot.open--;
    // Recursive re-entries only extend the outermost activation, so
    // inclusive time counts each wall-clock second once.
    if (slot.open == 0) slot.inclusiveNs += elapsed;
    const std::uint64_t child =
        frame.childNs > elapsed ? elapsed : frame.childNs;
    slot.exclusiveNs += elapsed - child;
    if (!stack_.empty()) stack_.back().childNs += elapsed;
}

bool
Profiler::empty() const
{
    for (const Slot &slot : slots_)
        if (slot.calls > 0) return false;
    return true;
}

std::vector<ScopeTotals>
Profiler::totals() const
{
    std::vector<ScopeTotals> out;
    out.reserve(ids_.size());
    // ids_ is an ordered map keyed by name: report order is name
    // order regardless of interning order.
    for (const auto &entry : ids_) {
        const Slot &slot = slots_[entry.second];
        if (slot.calls == 0) continue;
        ScopeTotals t;
        t.name = slot.name;
        t.calls = slot.calls;
        t.inclusiveNs = slot.inclusiveNs;
        t.exclusiveNs = slot.exclusiveNs;
        out.push_back(std::move(t));
    }
    return out;
}

void
Profiler::mergeFrom(const Profiler &other)
{
    for (const ScopeTotals &t : other.totals()) {
        Slot &slot = slots_[intern(t.name)];
        slot.calls += t.calls;
        slot.inclusiveNs += t.inclusiveNs;
        slot.exclusiveNs += t.exclusiveNs;
    }
}

void
Profiler::reset()
{
    for (Slot &slot : slots_) {
        slot.calls = 0;
        slot.inclusiveNs = 0;
        slot.exclusiveNs = 0;
        slot.open = 0;
    }
    stack_.clear();
}

void
Profiler::setClock(ClockFn clock)
{
    clock_ = clock == nullptr ? &steadyNowNs : clock;
}

void
Profiler::writeText(std::ostream &os) const
{
    os << "scope                                     calls"
       << "  inclusive(s)  exclusive(s)\n";
    for (const ScopeTotals &t : totals()) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%-40s %6llu  %12s  %12s\n", t.name.c_str(),
                      static_cast<unsigned long long>(t.calls),
                      secondsString(t.inclusiveNs).c_str(),
                      secondsString(t.exclusiveNs).c_str());
        os << line;
    }
}

void
Profiler::writeJson(std::ostream &os) const
{
    os << "{\n  \"schema\": \"jumanji-profile-v1\",\n  \"scopes\": [";
    bool first = true;
    for (const ScopeTotals &t : totals()) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"name\": \"" << t.name
           << "\", \"calls\": " << t.calls
           << ", \"inclusive_ns\": " << t.inclusiveNs
           << ", \"exclusive_ns\": " << t.exclusiveNs
           << ", \"inclusive_s\": " << secondsString(t.inclusiveNs)
           << ", \"exclusive_s\": " << secondsString(t.exclusiveNs)
           << "}";
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
}

Profiler &
Profiler::current()
{
    static thread_local Profiler profiler;
    return profiler;
}

void
setProfilingEnabled(bool value)
{
    enabled = value;
}

bool
profilingEnabled()
{
    return enabled;
}

Profiler &
aggregateProfile()
{
    static Profiler aggregate;
    return aggregate;
}

void
flushThreadProfile()
{
    Profiler &mine = Profiler::current();
    if (mine.depth() != 0 || mine.empty()) return;
    aggregateProfile().mergeFrom(mine);
    mine.reset();
}

} // namespace prof
} // namespace jumanji
