/**
 * @file
 * Fundamental simulator types shared by every subsystem.
 */

#ifndef JUMANJI_SIM_TYPES_HH
#define JUMANJI_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace jumanji {

/** Simulated time, in core clock cycles. */
using Tick = std::uint64_t;

/** Sentinel for "never" / unset ticks. */
constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Cache-line-granular physical address (line id, not byte address). */
using LineAddr = std::uint64_t;

/** Page-granular address (page id). */
using PageAddr = std::uint64_t;

/** Identifies an application (one per core in our experiments). */
using AppId = std::int32_t;

/** Identifies a virtual cache (VC). */
using VcId = std::int32_t;

/** Identifies a trust domain (VM). */
using VmId = std::int32_t;

/** Identifies an LLC bank. */
using BankId = std::int32_t;

/** Identifies a core / tile. */
using CoreId = std::int32_t;

constexpr AppId kInvalidApp = -1;
constexpr VcId kInvalidVc = -1;
constexpr VmId kInvalidVm = -1;
constexpr BankId kInvalidBank = -1;

/** Bytes per cache line, fixed at 64 B as in the paper (Table II). */
constexpr std::uint64_t kLineBytes = 64;

/** Bytes per page; placement is controlled at page granularity. */
constexpr std::uint64_t kPageBytes = 4096;

/** Cache lines per page. */
constexpr std::uint64_t kLinesPerPage = kPageBytes / kLineBytes;

/** Converts a line id to the page id containing it. */
inline PageAddr
lineToPage(LineAddr line)
{
    return line / kLinesPerPage;
}

} // namespace jumanji

#endif // JUMANJI_SIM_TYPES_HH
