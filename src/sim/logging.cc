#include "src/sim/logging.hh"

namespace jumanji {

namespace {
bool quiet = false;
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
warn(const std::string &msg)
{
    if (!quiet) std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!quiet) std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool q)
{
    quiet = q;
}

} // namespace jumanji
