/**
 * @file
 * The simulator-wide observability layer, part 1: a hierarchical
 * statistics registry plus an epoch-rate time-series recorder.
 *
 * Every component registers its stats under a dotted name
 * ("llc.bank07.hits", "dnuca.vtb.invalidations", "noc.hopHist") when
 * the System is assembled; the registry then provides one uniform
 * surface for
 *   - machine-readable end-of-run dumps (nested JSON),
 *   - deterministic fingerprinting (the --selfcheck stream),
 *   - per-epoch time series (EpochRecorder), and
 *   - ad-hoc queries by name (benches, tests).
 *
 * Registration follows the gem5/ZSim discipline: nodes do not own the
 * underlying values, they *bind* to them — a Counter holds a pointer
 * to the component's live std::uint64_t, a Gauge/Formula holds a
 * callback, a Distribution binds a SampleStat or Histogram. Reading
 * the registry therefore never perturbs simulation state, and
 * components keep their existing hot-path accounting untouched.
 *
 * Names: lowercase dotted paths. Registering the same name twice is
 * a programming error and panics. The registry is ordered by name,
 * so every dump, snapshot, and fingerprint fold is deterministic.
 */

#ifndef JUMANJI_SIM_STATREG_HH
#define JUMANJI_SIM_STATREG_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/sim/fingerprint.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace jumanji {

/** One scalar leaf of a registry snapshot. */
struct StatValue
{
    std::string name;
    double value = 0.0;
};

/**
 * The hierarchical stats registry. One instance per System; tests
 * and tools may build standalone instances.
 */
class StatRegistry
{
  public:
    /** Node flavours (the JSON dump tags leaves by kind). */
    enum class Kind
    {
        Counter,      ///< monotonically increasing event count
        Gauge,        ///< instantaneous sampled value
        Distribution, ///< SampleStat or Histogram summary
        Formula,      ///< value derived from other stats
    };

    /** Binds @p value (must outlive the registry) as a counter. */
    void addCounter(const std::string &name, const std::string &desc,
                    const std::uint64_t *value);

    /** Registers a sampled instantaneous value. */
    void addGauge(const std::string &name, const std::string &desc,
                  std::function<double()> read);

    /** Registers a derived metric (ratio, normalization, ...). */
    void addFormula(const std::string &name, const std::string &desc,
                    std::function<double()> eval);

    /**
     * Binds a SampleStat; expands to .count/.mean/.min/.max/
     * .p50/.p95/.p99 leaves in snapshots.
     */
    void addDistribution(const std::string &name,
                         const std::string &desc,
                         const SampleStat *samples);

    /**
     * Binds a Histogram; expands to .total/.underflow/.overflow and
     * one .bNN leaf per in-range bin.
     */
    void addDistribution(const std::string &name,
                         const std::string &desc, const Histogram *hist);

    bool has(const std::string &name) const;
    std::size_t size() const { return nodes_.size(); }

    /**
     * Current value of a scalar node (Counter/Gauge/Formula), or of
     * a snapshot leaf ("apps.a00.reqLatency.p95"). Panics when the
     * name resolves to nothing.
     */
    double value(const std::string &name) const;

    /**
     * Flat snapshot of every leaf, ordered by name. Distributions
     * expand to their summary leaves.
     */
    std::vector<StatValue> snapshot() const;

    /**
     * Snapshot restricted to nodes whose dotted name starts with any
     * of @p selectors (exact names also match).
     */
    std::vector<StatValue>
    snapshot(const std::vector<std::string> &selectors) const;

    /** Leaf names that a selected snapshot would contain. */
    std::vector<std::string>
    leaves(const std::vector<std::string> &selectors) const;

    /** Nested JSON dump of the full snapshot (stable field order). */
    void dumpJson(std::ostream &os) const;

    /** Folds the full snapshot (names and values) into @p fp. */
    void fold(Fingerprint &fp) const;

    /**
     * Appends the values of the selected leaves to @p out, in the
     * same order snapshot(selectors) would produce them, without
     * materializing leaf names. The per-epoch recorder uses this:
     * columns are resolved once with leaves(), then every record()
     * reads values only.
     */
    void snapshotValues(const std::vector<std::string> &selectors,
                        std::vector<double> &out) const;

  private:
    struct Node
    {
        Kind kind = Kind::Counter;
        std::string desc;
        const std::uint64_t *counter = nullptr;
        std::function<double()> read;
        const SampleStat *samples = nullptr;
        const Histogram *hist = nullptr;
    };

    /**
     * One snapshot leaf in the cached, name-sorted expansion of the
     * registry. Scalar nodes yield one leaf (part == -1);
     * distributions yield one leaf per summary component.
     */
    struct LeafRef
    {
        std::string name;
        /** Owning node's registered name (selector matching). */
        const std::string *nodeName;
        const Node *node;
        int part;
    };

    const Node &insert(const std::string &name, Node node);
    void appendLeaves(const std::string &name, const Node &node,
                      std::vector<StatValue> &out) const;
    static int partCount(const Node &node);
    static std::string partName(const std::string &name,
                                const Node &node, int part);
    static double leafValue(const Node &node, int part);
    void ensureLeafCache() const;

    /** Ordered by name: all walks are deterministic. */
    std::map<std::string, Node> nodes_;

    /**
     * Leaf expansion sorted by leaf name, rebuilt lazily after any
     * registration. Snapshots and dumps reuse this order instead of
     * re-sorting on every call; node names and Node slots are
     * pointer-stable (map nodes), so cached pointers stay valid.
     */
    mutable std::vector<LeafRef> leafCache_;
    mutable bool leafCacheValid_ = false;
};

/**
 * A recorded per-epoch time series: one row per record() call over a
 * fixed set of snapshot-leaf columns. RunResult carries one of these
 * so timelines survive the System that produced them.
 */
struct TimelineSeries
{
    std::vector<std::string> columns;
    std::vector<Tick> ticks;
    /** rows[i][j] = value of columns[j] at ticks[i]. */
    std::vector<std::vector<double>> rows;

    bool empty() const { return ticks.empty(); }

    /** Index of @p column, or npos. */
    std::size_t columnIndex(const std::string &column) const;

    /** "tick,<col>,<col>,..." header plus one CSV row per record. */
    void writeCsv(std::ostream &os) const;

    /** {"columns": [...], "ticks": [...], "rows": [[...], ...]}. */
    void writeJson(std::ostream &os) const;

    void fold(Fingerprint &fp) const;
};

/**
 * The epoch recorder: snapshots a configurable stat subset each
 * placement epoch. Columns are resolved from the selectors on the
 * first record() (i.e. after all components have registered) and
 * stay fixed for the life of the recorder.
 */
class EpochRecorder
{
  public:
    /**
     * @param reg Registry to sample (must outlive the recorder).
     * @param selectors Dotted-name prefixes selecting the columns.
     */
    EpochRecorder(const StatRegistry *reg,
                  std::vector<std::string> selectors);

    /** Appends one row sampled at @p now. */
    void record(Tick now);

    std::size_t epochs() const { return series_.ticks.size(); }
    const TimelineSeries &series() const { return series_; }

    void writeCsv(std::ostream &os) const { series_.writeCsv(os); }
    void writeJson(std::ostream &os) const { series_.writeJson(os); }

  private:
    const StatRegistry *reg_;
    std::vector<std::string> selectors_;
    bool resolved_ = false;
    TimelineSeries series_;
};

/**
 * Renders a flat, sorted (name, value) list as nested JSON by
 * splitting names on '.' — shared by StatRegistry::dumpJson and the
 * CLI's multi-run --stats-json export.
 */
void writeNestedStatsJson(std::ostream &os,
                          const std::vector<StatValue> &stats,
                          int indent = 0);

/** Formats a non-negative index as a fixed-width decimal ("07"). */
std::string statIndexName(std::uint64_t index, int width = 2);

} // namespace jumanji

#endif // JUMANJI_SIM_STATREG_HH
