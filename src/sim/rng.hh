/**
 * @file
 * Deterministic, seedable random number generation (xoshiro256**).
 *
 * All simulator randomness flows through Rng so that a full experiment
 * is reproducible from (seed, config) alone.
 */

#ifndef JUMANJI_SIM_RNG_HH
#define JUMANJI_SIM_RNG_HH

#include <cmath>
#include <cstdint>

namespace jumanji {

/**
 * xoshiro256** generator. Small, fast, high quality; not
 * cryptographic (we only drive workloads and sampling with it).
 */
class Rng
{
  public:
    /**
     * Seeds the generator via splitmix64 expansion of @p seed.
     *
     * Deliberately no default argument: every stream must trace back
     * to an explicit seed (ultimately the config's), or reproducibility
     * from (seed, config) silently breaks.
     */
    explicit Rng(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free-enough reduction.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Exponential variate with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u >= 1.0) u = 0.999999999;
        return -mean * std::log1p(-u);
    }

    /** True with probability @p p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /**
     * Forks a child generator whose stream is decorrelated from the
     * parent's; used to give each app / component its own stream.
     */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ull);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace jumanji

#endif // JUMANJI_SIM_RNG_HH
