/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The simulator is agent-based: each Agent (a core running an app, an
 * attacker thread, the runtime's epoch timer) is resumed at its next
 * wake-up tick and returns the tick at which it next wants to run.
 * A binary heap orders agents by wake-up time; ties break by a stable
 * sequence number so runs are deterministic.
 */

#ifndef JUMANJI_SIM_EVENT_QUEUE_HH
#define JUMANJI_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "src/sim/check.hh"
#include "src/sim/types.hh"

namespace jumanji {

/**
 * Something that executes at discrete ticks.
 *
 * resume() performs the agent's next unit of work (e.g., one memory
 * access plus the compute burst before it) and returns the tick at
 * which the agent should next be resumed, or kTickMax to retire.
 */
class Agent
{
  public:
    virtual ~Agent() = default;

    /**
     * Runs the agent's next step.
     *
     * @param now The current simulated tick.
     * @return The tick at which to resume this agent next;
     *         kTickMax retires the agent permanently.
     */
    virtual Tick resume(Tick now) = 0;
};

/**
 * The DES kernel: schedules agents and advances simulated time.
 */
class EventQueue
{
  public:
    /** Registers @p agent to first run at @p when. Non-owning. */
    void
    schedule(Agent *agent, Tick when)
    {
        heap_.push(Entry{when, seq_++, agent});
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no agent remains scheduled. */
    bool empty() const { return heap_.empty(); }

    /**
     * Runs agents until simulated time reaches @p until or the queue
     * drains. Agents scheduled exactly at @p until do not run.
     *
     * @return The tick at which execution stopped.
     */
    Tick
    runUntil(Tick until)
    {
        while (!heap_.empty() && heap_.top().when < until) {
            Entry e = heap_.top();
            heap_.pop();
            // Event-queue monotonicity: the heap must never surface
            // an event from the past.
            JUMANJI_INVARIANT(e.when >= now_,
                              "event queue went backwards in time");
            now_ = e.when;
            checkSetTick(now_);
            Tick next = e.agent->resume(now_);
            if (next != kTickMax) {
                // Time must advance; a zero-delay self-loop would hang.
                if (next <= now_) next = now_ + 1;
                heap_.push(Entry{next, seq_++, e.agent});
            }
        }
        if (now_ < until) now_ = until;
        checkSetTick(now_);
        return now_;
    }

    /** Runs until the queue drains. */
    Tick
    runToCompletion()
    {
        return runUntil(kTickMax);
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Agent *agent;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when) return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::uint64_t seq_ = 0;
    Tick now_ = 0;
};

} // namespace jumanji

#endif // JUMANJI_SIM_EVENT_QUEUE_HH
