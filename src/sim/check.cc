#include "src/sim/check.hh"

// lint-allow-file: io-routing contract-failure reporting must reach
// stderr even when the logging layer itself is the thing that broke,
// so this file writes directly (mirrors how panic handlers avoid
// re-entering the subsystem that failed).

#include <cstdio>
#include <sstream>

#include "src/sim/logging.hh"

namespace jumanji {

CheckContext &
checkContext()
{
    thread_local CheckContext ctx;
    return ctx;
}

CheckContextScope::CheckContextScope()
{
    CheckContext &ctx = checkContext();
    JUMANJI_ASSERT(!ctx.active,
                   "two live simulation runs on one worker thread");
    ctx = CheckContext{};
    ctx.active = true;
}

CheckContextScope::~CheckContextScope()
{
    checkContext() = CheckContext{};
}

bool
checksActiveInCore()
{
    return JUMANJI_CHECKS_ACTIVE != 0;
}

namespace detail {

std::string
describeContext()
{
    const CheckContext &ctx = checkContext();
    std::ostringstream os;
    os << "tick=" << ctx.tick;
    os << " bank=";
    if (ctx.bank == kInvalidBank) os << "-";
    else os << ctx.bank;
    os << " core=";
    if (ctx.core < 0) os << "-";
    else os << ctx.core;
    os << " phase=" << (ctx.phase != nullptr ? ctx.phase : "?");
    return os.str();
}

void
checkFailed(const char *kind, const char *file, int line,
            const char *func, const char *expr, const std::string &msg)
{
    std::string context = describeContext();
    std::fprintf(stderr,
                 "jumanji: %s FAILED at %s:%d in %s\n"
                 "  expression: %s\n"
                 "  context:    %s\n",
                 kind, file, line, func, expr, context.c_str());
    if (!msg.empty())
        std::fprintf(stderr, "  message:    %s\n", msg.c_str());

    std::ostringstream os;
    os << kind << " failed: " << expr;
    if (!msg.empty()) os << " (" << msg << ")";
    os << " at " << file << ":" << line << " [" << context << "]";
    panic(os.str());
}

} // namespace detail
} // namespace jumanji
