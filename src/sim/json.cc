#include "src/sim/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/sim/logging.hh"

namespace jumanji {

namespace {

/** Largest integer magnitude a double represents exactly (2^53). */
constexpr std::uint64_t kExactDoubleLimit = 1ull << 53;

} // namespace

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue j;
    j.kind_ = Kind::Bool;
    j.bool_ = v;
    return j;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue j;
    j.kind_ = Kind::Number;
    // Keep integral-valued doubles exact so that e.g. percentile 95.0
    // round-trips as "95" == makeU64(95).
    if (std::floor(v) == v && std::fabs(v) <
        static_cast<double>(kExactDoubleLimit)) {
        j.integral_ = true;
        j.negative_ = v < 0.0;
        j.magnitude_ = static_cast<std::uint64_t>(std::fabs(v));
    }
    j.number_ = v;
    return j;
}

JsonValue
JsonValue::makeU64(std::uint64_t v)
{
    JsonValue j;
    j.kind_ = Kind::Number;
    j.integral_ = true;
    j.magnitude_ = v;
    j.number_ = static_cast<double>(v);
    return j;
}

JsonValue
JsonValue::makeI64(std::int64_t v)
{
    JsonValue j;
    j.kind_ = Kind::Number;
    j.integral_ = true;
    j.negative_ = v < 0;
    j.magnitude_ = v < 0 ? 0ull - static_cast<std::uint64_t>(v)
                         : static_cast<std::uint64_t>(v);
    j.number_ = static_cast<double>(v);
    return j;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue j;
    j.kind_ = Kind::String;
    j.string_ = std::move(v);
    return j;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue j;
    j.kind_ = Kind::Array;
    return j;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue j;
    j.kind_ = Kind::Object;
    return j;
}

const char *
JsonValue::kindName() const
{
    switch (kind_) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

bool
JsonValue::asBool(const std::string &path) const
{
    if (kind_ != Kind::Bool)
        fatal(path + ": expected bool, got " + kindName());
    return bool_;
}

double
JsonValue::asDouble(const std::string &path) const
{
    if (kind_ != Kind::Number)
        fatal(path + ": expected number, got " + kindName());
    if (integral_) {
        double mag = static_cast<double>(magnitude_);
        return negative_ ? -mag : mag;
    }
    return number_;
}

std::uint64_t
JsonValue::asU64(const std::string &path) const
{
    if (kind_ != Kind::Number)
        fatal(path + ": expected number, got " + kindName());
    if (!integral_)
        fatal(path + ": expected an integer, got a fraction");
    if (negative_ && magnitude_ != 0)
        fatal(path + ": must be >= 0");
    return magnitude_;
}

std::uint32_t
JsonValue::asU32(const std::string &path) const
{
    std::uint64_t v = asU64(path);
    if (v > 0xffffffffull)
        fatal(path + ": must be <= 4294967295");
    return static_cast<std::uint32_t>(v);
}

const std::string &
JsonValue::asString(const std::string &path) const
{
    if (kind_ != Kind::String)
        fatal(path + ": expected string, got " + kindName());
    return string_;
}

void
JsonValue::push(JsonValue v)
{
    if (kind_ != Kind::Array) panic("JsonValue::push on non-array");
    items_.push_back(std::move(v));
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ != Kind::Object) panic("JsonValue::set on non-object");
    for (auto &[k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members_)
        if (k == key) return &v;
    return nullptr;
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (kind_ != other.kind_) return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == other.bool_;
      case Kind::Number:
        if (integral_ != other.integral_) return false;
        if (integral_) {
            if (magnitude_ != other.magnitude_) return false;
            return magnitude_ == 0 || negative_ == other.negative_;
        }
        return number_ == other.number_;
      case Kind::String:
        return string_ == other.string_;
      case Kind::Array:
        return items_ == other.items_;
      case Kind::Object:
        return members_ == other.members_;
    }
    return false;
}

// ---- Writer ----------------------------------------------------------

namespace {

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent < 0) return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(d),
                   ' ');
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number: {
        char buf[40];
        if (integral_) {
            std::snprintf(buf, sizeof(buf), "%s%llu",
                          negative_ && magnitude_ != 0 ? "-" : "",
                          static_cast<unsigned long long>(magnitude_));
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", number_);
        }
        out += buf;
        break;
      }
      case Kind::String:
        escapeTo(out, string_);
        break;
      case Kind::Array:
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); i++) {
            if (i > 0) out += ',';
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Kind::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); i++) {
            if (i > 0) out += ',';
            newline(depth + 1);
            escapeTo(out, members_[i].first);
            out += indent < 0 ? ":" : ": ";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent >= 0) out += '\n';
    return out;
}

// ---- Parser ----------------------------------------------------------

namespace {

class Parser
{
  public:
    Parser(const std::string &text, const std::string &where)
        : text_(text), where_(where)
    {
    }

    JsonValue
    parseDocument()
    {
        skipWs();
        JsonValue v = parseValue(0);
        skipWs();
        if (pos_ != text_.size()) fail("trailing characters");
        return v;
    }

  private:
    const std::string &text_;
    const std::string &where_;
    std::size_t pos_ = 0;

    /** Nesting guard: scenario files are shallow; 64 is generous. */
    static constexpr int kMaxDepth = 64;

    [[noreturn]] void
    fail(const std::string &reason) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); i++) {
            if (text_[i] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
        }
        fatal(where_ + ":" + std::to_string(line) + ":" +
              std::to_string(col) + ": " + reason);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos_++;
    }

    bool
    consumeWord(const char *word)
    {
        std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0) return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > kMaxDepth) fail("nesting too deep");
        switch (peek()) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return JsonValue::makeString(parseString());
          case 't':
            if (consumeWord("true")) return JsonValue::makeBool(true);
            fail("invalid literal");
          case 'f':
            if (consumeWord("false")) return JsonValue::makeBool(false);
            fail("invalid literal");
          case 'n':
            if (consumeWord("null")) return JsonValue();
            fail("invalid literal");
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject(int depth)
    {
        expect('{');
        JsonValue obj = JsonValue::makeObject();
        skipWs();
        if (peek() == '}') {
            pos_++;
            return obj;
        }
        while (true) {
            skipWs();
            if (peek() != '"') fail("expected object key");
            std::string key = parseString();
            if (obj.find(key) != nullptr)
                fail("duplicate key \"" + key + "\"");
            skipWs();
            expect(':');
            skipWs();
            obj.set(key, parseValue(depth + 1));
            skipWs();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    JsonValue
    parseArray(int depth)
    {
        expect('[');
        JsonValue arr = JsonValue::makeArray();
        skipWs();
        if (peek() == ']') {
            pos_++;
            return arr;
        }
        while (true) {
            skipWs();
            arr.push(parseValue(depth + 1));
            skipWs();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; i++) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= h - '0';
                    else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
                    else fail("invalid \\u escape");
                }
                // Encode as UTF-8 (basic multilingual plane only;
                // surrogate pairs are not needed by scenario files).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("invalid escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-') pos_++;
        bool sawDigit = false;
        while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
            pos_++;
            sawDigit = true;
        }
        bool integral = true;
        if (peek() == '.') {
            integral = false;
            pos_++;
            while (std::isdigit(static_cast<unsigned char>(peek())) !=
                   0)
                pos_++;
        }
        if (peek() == 'e' || peek() == 'E') {
            integral = false;
            pos_++;
            if (peek() == '+' || peek() == '-') pos_++;
            while (std::isdigit(static_cast<unsigned char>(peek())) !=
                   0)
                pos_++;
        }
        if (!sawDigit) fail("invalid number");
        std::string token = text_.substr(start, pos_ - start);
        if (integral) {
            bool neg = token[0] == '-';
            const char *digits = token.c_str() + (neg ? 1 : 0);
            errno = 0;
            char *end = nullptr;
            std::uint64_t mag = std::strtoull(digits, &end, 10);
            if (errno != 0 || end == digits || *end != '\0')
                fail("integer out of range");
            JsonValue v = JsonValue::makeU64(mag);
            if (neg) {
                if (mag > 0x8000000000000000ull)
                    fail("integer out of range");
                v = JsonValue::makeI64(
                    -static_cast<std::int64_t>(mag - 1) - 1);
            }
            return v;
        }
        errno = 0;
        char *end = nullptr;
        double d = std::strtod(token.c_str(), &end);
        if (errno != 0 || end != token.c_str() + token.size())
            fail("invalid number");
        return JsonValue::makeNumber(d);
    }
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text, const std::string &where)
{
    return Parser(text, where).parseDocument();
}

} // namespace jumanji
