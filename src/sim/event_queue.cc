#include "src/sim/event_queue.hh"

// Header-only today; this TU anchors the vtable for Agent.

namespace jumanji {

} // namespace jumanji
