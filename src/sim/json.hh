/**
 * @file
 * Minimal JSON value/parser/writer for the declarative scenario
 * layer (config serialization, experiment specs).
 *
 * Deliberately small and strict rather than general:
 *  - objects preserve insertion order, so serialized configs read in
 *    the same order the schema documents and diffs stay stable;
 *  - integers are kept exact (64-bit magnitude + sign) so seeds and
 *    tick counts round-trip without double rounding;
 *  - parse errors carry line:column positions, and every typed
 *    accessor throws FatalError with the offending path, so scenario
 *    files fail with a precise "field: reason" diagnostic instead of
 *    a silent default.
 *
 * No external dependency: the container ships no JSON library, and
 * the simulator must stay self-contained.
 */

#ifndef JUMANJI_SIM_JSON_HH
#define JUMANJI_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jumanji {

class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Constructs null. */
    JsonValue() = default;

    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeU64(std::uint64_t v);
    static JsonValue makeI64(std::int64_t v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray();
    static JsonValue makeObject();

    Kind kind() const { return kind_; }
    const char *kindName() const;

    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /**
     * Typed accessors. @p path names the value in thrown
     * diagnostics ("mesh.cols"); accessors throw FatalError
     * "<path>: expected <type>, got <kind>" on a kind mismatch and
     * "<path>: <reason>" on a range violation.
     */
    bool asBool(const std::string &path) const;
    double asDouble(const std::string &path) const;
    /** Requires a non-negative integral number that fits uint64. */
    std::uint64_t asU64(const std::string &path) const;
    /** asU64 plus an upper bound (for uint32 fields). */
    std::uint32_t asU32(const std::string &path) const;
    const std::string &asString(const std::string &path) const;

    // ---- Arrays ----

    void push(JsonValue v);
    const std::vector<JsonValue> &items() const { return items_; }

    // ---- Objects (insertion-ordered) ----

    /** Adds or replaces @p key. */
    void set(const std::string &key, JsonValue v);
    /** Member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /**
     * Serializes with two-space indentation (compact when
     * @p indent < 0). Integral numbers print exactly; other doubles
     * print with round-trip precision.
     */
    std::string dump(int indent = 0) const;

    /**
     * Parses @p text. Throws FatalError
     * "<where>:<line>:<col>: <reason>" on malformed input; @p where
     * labels the source (a file name, "<scenario>", ...).
     */
    static JsonValue parse(const std::string &text,
                           const std::string &where = "<json>");

    bool operator==(const JsonValue &other) const;
    bool operator!=(const JsonValue &other) const
    {
        return !(*this == other);
    }

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    /** Exact integral storage (magnitude + sign) when integral_. */
    bool integral_ = false;
    bool negative_ = false;
    std::uint64_t magnitude_ = 0;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;

    void dumpTo(std::string &out, int indent, int depth) const;
};

} // namespace jumanji

#endif // JUMANJI_SIM_JSON_HH
