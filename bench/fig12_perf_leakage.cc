/**
 * @file
 * Reproduces Fig. 12: performance leakage through the shared
 * replacement policy. img-dnn runs with a *fixed* LLC partition
 * alongside many different batch mixes; its tail latency still
 * varies with the co-runners, because DRRIP's set-dueling PSEL is
 * shared bank-wide.
 *
 * Two configurations:
 *  - S-NUCA: a fixed 2.5 MB-equivalent partition striped across all
 *    banks (co-runners share every bank's replacement state);
 *  - D-NUCA: the two closest banks reserved exclusively (Jumanji
 *    with a fixed allocation; no shared banks).
 *
 * Paper shape: the S-NUCA line varies across mixes (violations up to
 * ~10%), the D-NUCA line is flat and ~20% lower despite a smaller
 * partition.
 */

#include <algorithm>

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

namespace {

double
tailWithMix(const SystemConfig &base, LlcDesign design,
            std::uint64_t lcLines, std::uint64_t mixSeed,
            const LcCalibrationMap &calib)
{
    SystemConfig cfg = base;
    cfg.design = design;
    cfg.load = LoadLevel::High;
    cfg.fixedLcTargetLines = lcLines;
    // The system seed stays FIXED across mixes: img-dnn must see the
    // identical request sequence every time, so that any tail
    // variation is attributable to the co-runners (the leakage the
    // figure demonstrates), not to arrival randomness.

    // One VM with img-dnn + batch apps in *other* VMs: the batch mix
    // varies, img-dnn's partition does not.
    Rng rng(mixSeed ^ 0xfeed);
    WorkloadMix mix;
    VmSpec lcVm;
    lcVm.lcApps.push_back("img-dnn");
    mix.vms.push_back(lcVm);
    for (int v = 0; v < 3; v++) {
        VmSpec batchVm;
        for (int b = 0; b < 5; b++)
            batchVm.batchApps.push_back(randomBatchApp(rng));
        mix.vms.push_back(batchVm);
    }

    System system(cfg, mix, calib);
    RunResult run = system.run();
    for (const auto &app : run.apps)
        if (app.latencyCritical) return app.tailLatency;
    return 0.0;
}

double
tailAlone(const SystemConfig &base, LlcDesign design,
          std::uint64_t lcLines, const LcCalibrationMap &calib)
{
    SystemConfig cfg = base;
    cfg.design = design;
    cfg.load = LoadLevel::High;
    cfg.fixedLcTargetLines = lcLines;
    cfg.measureTicks *= 2;
    WorkloadMix solo;
    VmSpec vm;
    vm.lcApps.push_back("img-dnn");
    solo.vms.push_back(vm);
    System system(cfg, solo, calib);
    RunResult run = system.run();
    for (const auto &app : run.apps)
        if (app.latencyCritical) return app.tailLatency;
    return 0.0;
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Figure 12", "tail-latency leakage with a fixed partition "
                        "across 40 batch mixes");
    std::uint32_t mixes = ExperimentHarness::mixCountFromEnv(12);

    SystemConfig cfg = benchConfig();
    ExperimentHarness harness(cfg);
    LcCalibrationMap calib;
    calib["img-dnn"] = harness.calibrationFor("img-dnn");

    PlacementGeometry geo = cfg.placementGeometry();
    // S-NUCA: 2.5 MB of 20 MB = 1/8 of the LLC, striped (4 ways).
    std::uint64_t snucaLines = geo.totalLines() / 8;
    // D-NUCA: the two closest 1 MB banks = 1/10 of the LLC.
    std::uint64_t dnucaLines = 2 * geo.linesPerBank;

    double snucaAlone =
        tailAlone(cfg, LlcDesign::Adaptive, snucaLines, calib);
    double dnucaAlone =
        tailAlone(cfg, LlcDesign::Jumanji, dnucaLines, calib);

    std::vector<double> snuca, dnuca;
    for (std::uint32_t m = 0; m < mixes; m++) {
        std::uint64_t seed = cfg.seed + 7919 * (m + 1);
        snuca.push_back(tailWithMix(cfg, LlcDesign::Adaptive, snucaLines,
                                    seed, calib) /
                        snucaAlone);
        dnuca.push_back(tailWithMix(cfg, LlcDesign::Jumanji, dnucaLines,
                                    seed, calib) /
                        dnucaAlone);
    }
    std::sort(snuca.begin(), snuca.end());
    std::sort(dnuca.begin(), dnuca.end());

    std::printf("normalized tail latency (vs. running alone), sorted "
                "best to worst:\n");
    std::printf("%-8s %18s %20s\n", "mix", "S-NUCA 2.5MB-eq",
                "D-NUCA 2 banks");
    for (std::uint32_t m = 0; m < mixes; m++)
        std::printf("%-8u %18.3f %20.3f\n", m, snuca[m], dnuca[m]);

    double snucaSpread = snuca.back() - snuca.front();
    double dnucaSpread = dnuca.back() - dnuca.front();
    std::printf("\nspread: S-NUCA %.3f, D-NUCA %.3f\n", snucaSpread,
                dnucaSpread);
    std::printf("absolute tails alone: S-NUCA %.0f, D-NUCA %.0f "
                "cycles\n", snucaAlone, dnucaAlone);

    note("Paper: the S-NUCA tail varies significantly across mixes "
         "(>10% violations) while the bank-isolated D-NUCA line is "
         "stable and ~20% lower with a smaller partition. Here the "
         "D-NUCA line is exactly flat and far lower in absolute "
         "terms; the S-NUCA line varies with the co-runners, though "
         "by only a few percent — our LC-priority memory model "
         "removes the bandwidth component of the paper's "
         "interference, leaving just the replacement-state channel "
         "(EXPERIMENTS.md).");
    return 0;
}
