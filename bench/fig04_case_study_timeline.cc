/**
 * @file
 * Reproduces Fig. 4: the case-study timelines. Four VMs each run one
 * xapian plus four batch apps; for each design we print per-epoch
 * series of (a) average xapian request latency, (b) average LLC
 * space allocated to xapian, and (c) the vulnerability metric.
 *
 * Paper shape: all designs but Jigsaw keep latency at/below the
 * deadline; Jigsaw's latency grows over time because it allocates
 * xapian almost nothing; Jumanji needs less space than Adaptive /
 * VM-Part; only the D-NUCAs have (near-)zero potential attackers,
 * and only Jumanji is exactly zero.
 */

#include <set>

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

int
main()
{
    setQuiet(true);
    header("Figure 4", "case-study timelines: latency, allocation, "
                       "vulnerability");

    SystemConfig cfg = benchConfig();
    // A longer run shows the divergence over time clearly.
    cfg.measureTicks = 20 * cfg.epochTicks;

    Rng rng(cfg.seed);
    WorkloadMix mix = makeMix({"xapian"}, 4, 4, rng);
    ExperimentHarness harness(cfg);
    auto calib = harness.calibrationsFor(mix);
    double deadline = calib.at("xapian").deadline;

    std::vector<LlcDesign> designs = {
        LlcDesign::Adaptive, LlcDesign::VMPart, LlcDesign::Jigsaw,
        LlcDesign::Jumanji};

    for (LlcDesign d : designs) {
        SystemConfig c = cfg;
        c.design = d;
        c.load = LoadLevel::High;
        System system(c, mix, calib);
        system.run();

        std::printf("\n-- %s --\n", llcDesignName(d));
        std::printf("deadline (cycles): %.0f\n", deadline);
        std::printf("%-6s %16s %16s %14s\n", "epoch", "avgLat(xapian)",
                    "xapianAlloc(ln)", "attackers");

        // (a) latency series: mean over the 4 xapian instances of
        //     the per-epoch mean request latency.
        const auto &latencySeries = system.latencyTimeline().at("xapian");
        const auto &vulnSeries = system.vulnerabilityTimeline();
        const auto &allocSeries = system.allocationTimeline();

        // Identify LC VCs from the cores' owner records rather than
        // assuming any particular slot layout.
        std::set<VcId> lcVcs;
        for (const auto &core : system.cores())
            if (core->owner().latencyCritical)
                lcVcs.insert(core->owner().vc);

        std::size_t epochs = std::min(latencySeries.size(),
                                      std::min(vulnSeries.size(),
                                               allocSeries.size()));
        for (std::size_t e = 0; e < epochs; e++) {
            // (b) allocation: average over LC VCs.
            double alloc = 0.0;
            int lcCount = 0;
            for (const auto &[vc, lines] : allocSeries[e].allocLines) {
                if (lcVcs.count(vc)) {
                    alloc += static_cast<double>(lines);
                    lcCount++;
                }
            }
            if (lcCount > 0) alloc /= lcCount;
            std::printf("%-6zu %16.0f %16.0f %14.3f\n", e,
                        latencySeries[e], alloc, vulnSeries[e]);
        }
    }

    note("Fig. 4a = avgLat column (vs. the printed deadline), "
         "Fig. 4b = xapianAlloc column, Fig. 4c = attackers column.");
    return 0;
}
