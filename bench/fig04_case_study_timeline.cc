/**
 * @file
 * Reproduces Fig. 4: the case-study timelines. Four VMs each run one
 * xapian plus four batch apps; for each design we print per-epoch
 * series of (a) average xapian request latency, (b) average LLC
 * space allocated to xapian, and (c) the vulnerability metric.
 *
 * Paper shape: all designs but Jigsaw keep latency at/below the
 * deadline; Jigsaw's latency grows over time because it allocates
 * xapian almost nothing; Jumanji needs less space than Adaptive /
 * VM-Part; only the D-NUCAs have (near-)zero potential attackers,
 * and only Jumanji is exactly zero.
 */

#include <set>

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

namespace {
constexpr std::size_t kNoColumn = static_cast<std::size_t>(-1);
} // namespace

int
main()
{
    setQuiet(true);
    header("Figure 4", "case-study timelines: latency, allocation, "
                       "vulnerability");

    SystemConfig cfg = benchConfig();
    // A longer run shows the divergence over time clearly.
    cfg.measureTicks = 20 * cfg.epochTicks;

    Rng rng(cfg.seed);
    WorkloadMix mix = makeMix({"xapian"}, 4, 4, rng);
    ExperimentHarness harness(cfg);
    auto calib = harness.calibrationsFor(mix);
    double deadline = calib.at("xapian").deadline;

    std::vector<LlcDesign> designs = {
        LlcDesign::Adaptive, LlcDesign::VMPart, LlcDesign::Jigsaw,
        LlcDesign::Jumanji};

    for (LlcDesign d : designs) {
        SystemConfig c = cfg;
        c.design = d;
        c.load = LoadLevel::High;
        System system(c, mix, calib);
        RunResult run = system.run();

        std::printf("\n-- %s --\n", llcDesignName(d));
        std::printf("deadline (cycles): %.0f\n", deadline);
        std::printf("%-6s %16s %16s %14s\n", "epoch", "avgLat(xapian)",
                    "xapianAlloc(ln)", "attackers");

        // All three series come from the epoch recorder: per-LC-app
        // latency ("apps.aNN.epochLatency"), per-VC allocation
        // ("runtime.vcNN.allocLines"), and the vulnerability metric
        // ("epoch.vuln"). LC apps and their VCs are identified from
        // the cores' owner records rather than assuming slot layout.
        const TimelineSeries &ts = run.timeline;
        std::vector<std::size_t> latCols;
        std::set<std::size_t> allocCols;
        const auto &cores = system.cores();
        for (std::size_t i = 0; i < cores.size(); i++) {
            if (!cores[i]->owner().latencyCritical) continue;
            std::size_t lat = ts.columnIndex(
                "apps.a" + statIndexName(i) + ".epochLatency");
            std::size_t alloc = ts.columnIndex(
                "runtime.vc" + statIndexName(cores[i]->owner().vc) +
                ".allocLines");
            if (lat != kNoColumn) latCols.push_back(lat);
            if (alloc != kNoColumn) allocCols.insert(alloc);
        }
        std::size_t vulnCol = ts.columnIndex("epoch.vuln");

        for (std::size_t e = 0; e < ts.rows.size(); e++) {
            const std::vector<double> &row = ts.rows[e];
            double lat = 0.0;
            for (std::size_t col : latCols) lat += row[col];
            if (!latCols.empty())
                lat /= static_cast<double>(latCols.size());
            double alloc = 0.0;
            for (std::size_t col : allocCols) alloc += row[col];
            if (!allocCols.empty())
                alloc /= static_cast<double>(allocCols.size());
            double vuln = vulnCol != kNoColumn ? row[vulnCol] : 0.0;
            std::printf("%-6zu %16.0f %16.0f %14.3f\n", e, lat, alloc,
                        vuln);
        }
    }

    note("Fig. 4a = avgLat column (vs. the printed deadline), "
         "Fig. 4b = xapianAlloc column, Fig. 4c = attackers column.");
    return 0;
}
