/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every binary prints the rows/series of one table or figure from
 * the paper. Scale knobs:
 *   JUMANJI_MIXES=<n>      random batch mixes per configuration
 *   JUMANJI_SEED=<n>       base seed
 *   JUMANJI_JOBS=<n>       driver worker threads (default 1; output
 *                          is byte-identical for any value)
 *   JUMANJI_CACHE_DIR=<d>  on-disk result cache (default: off)
 *   JUMANJI_SUMMARY=<f>    append one driver summary line per batch
 *   JUMANJI_EVENTS=<f>     append one JSONL telemetry event per
 *                          calibration/job/run (default: off)
 *   JUMANJI_HEARTBEAT_MS=<n>  stderr progress heartbeat period for
 *                          long sweeps (default: 0 = off)
 *   JUMANJI_KV_LOAD_SCALE=<x>  scales the offered load of every KV
 *                          app in a scenario, range (0, 1e3]
 *                          (default: 1.0; see driver::kvLoadScaleFromEnv)
 */

#ifndef JUMANJI_BENCH_BENCH_COMMON_HH
#define JUMANJI_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/driver/orchestrator.hh"
#include "src/driver/spec.hh"
#include "src/sim/logging.hh"
#include "src/system/harness.hh"

namespace jumanji {
namespace bench {

/**
 * JUMANJI_SEED override, else @p fallback. Accepted range is
 * [1, 2^64-1]; 0 or garbage warns once and falls back (see
 * driver::seedFromEnv, which this delegates to — also the reason no
 * bench needs getenv for seeds, which the env-routing lint rule
 * enforces).
 */
inline std::uint64_t
seedFromEnv(std::uint64_t fallback = 1)
{
    return driver::seedFromEnv(fallback);
}

/** The Static normalization baseline every comparison is run against. */
inline LlcDesign
baselineDesign()
{
    return LlcDesign::Static;
}

/**
 * The four non-baseline designs of the main comparison (Sec. VII).
 * baselineDesign() is not listed: the harness always runs Static
 * first as the normalization baseline, so jobs carry only the
 * designs compared against it.
 */
inline std::vector<LlcDesign>
mainDesigns()
{
    return {LlcDesign::Adaptive, LlcDesign::VMPart, LlcDesign::Jigsaw,
            LlcDesign::Jumanji};
}

/** Standard bench-scale config with env seed. */
inline SystemConfig
benchConfig()
{
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.seed = seedFromEnv();
    return cfg;
}

inline void
header(const std::string &figure, const std::string &caption)
{
    std::printf("==========================================================\n");
    std::printf("%s — %s\n", figure.c_str(), caption.c_str());
    std::printf("==========================================================\n");
}

inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

/**
 * The process-wide experiment driver, configured from the env knobs
 * above. Every bench funnels its simulations through this one
 * orchestrator so JUMANJI_JOBS/JUMANJI_CACHE_DIR apply uniformly and
 * the driver.* stats cover the whole binary.
 */
inline driver::Orchestrator &
orchestrator()
{
    static driver::Orchestrator orch([] {
        driver::Orchestrator::Options opts;
        opts.jobs = driver::jobCountFromEnv(1);
        opts.cacheDir = driver::cacheDirFromEnv();
        const char *summary = std::getenv("JUMANJI_SUMMARY");
        if (summary != nullptr) opts.summaryPath = summary;
        opts.telemetry = driver::telemetryOptionsFromEnv();
        return opts;
    }());
    return orch;
}

/**
 * Drop-in replacement for ExperimentHarness::sweep() that runs the
 * mixes through the orchestrator — byte-identical results, any
 * worker count.
 */
inline std::vector<MixResult>
sweep(ExperimentHarness &harness,
      const std::vector<std::string> &lcNames, std::uint32_t mixes,
      const std::vector<LlcDesign> &designs, LoadLevel load)
{
    return driver::parallelSweep(harness, lcNames, mixes, designs,
                                 load, orchestrator());
}

/**
 * Runs a graph of independent jobs and unwraps the outcomes in
 * submission order, aborting the bench on the first failed job (a
 * figure with silently missing points would be worse than no
 * figure).
 */
inline std::vector<MixResult>
runJobs(const driver::JobGraph &graph)
{
    std::vector<driver::JobOutcome> outcomes =
        orchestrator().run(graph);
    std::vector<MixResult> results;
    results.reserve(outcomes.size());
    for (driver::JobId id = 0; id < outcomes.size(); id++) {
        if (!outcomes[id].ok)
            fatal("job " + graph.job(id).label +
                  " failed: " + outcomes[id].error);
        results.push_back(std::move(outcomes[id].result));
    }
    return results;
}

/**
 * Runs a spec through the process-wide orchestrator and returns the
 * plan + results (for benches that post-process, e.g. the ablation's
 * trading probe).
 */
inline driver::SpecRun
runSpec(const driver::ExperimentSpec &spec)
{
    return driver::runSpec(spec, orchestrator());
}

/**
 * The whole body of a spec-driven bench binary: banner, run, table,
 * note — byte-identical to the former handwritten loops (the banner
 * still prints before the first simulation starts, so a crashed run
 * is attributable).
 */
inline void
runSpecMain(const driver::ExperimentSpec &spec)
{
    header(spec.output.title, spec.output.caption);
    driver::SpecRun run = runSpec(spec);
    std::fputs(driver::renderSpecTable(spec, run).c_str(), stdout);
    if (!spec.output.note.empty()) note(spec.output.note);
}

} // namespace bench
} // namespace jumanji

#endif // JUMANJI_BENCH_BENCH_COMMON_HH
