/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every binary prints the rows/series of one table or figure from
 * the paper. Scale knobs:
 *   JUMANJI_MIXES=<n>  random batch mixes per configuration
 *   JUMANJI_SEED=<n>   base seed
 */

#ifndef JUMANJI_BENCH_BENCH_COMMON_HH
#define JUMANJI_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/sim/logging.hh"
#include "src/system/harness.hh"

namespace jumanji {
namespace bench {

inline std::uint64_t
seedFromEnv(std::uint64_t fallback = 1)
{
    const char *env = std::getenv("JUMANJI_SEED");
    if (env == nullptr) return fallback;
    std::uint64_t v = std::strtoull(env, nullptr, 10);
    return v == 0 ? fallback : v;
}

/** The five designs of the main comparison (Sec. VII). */
inline std::vector<LlcDesign>
mainDesigns()
{
    return {LlcDesign::Adaptive, LlcDesign::VMPart, LlcDesign::Jigsaw,
            LlcDesign::Jumanji};
}

/** Standard bench-scale config with env seed. */
inline SystemConfig
benchConfig()
{
    SystemConfig cfg = SystemConfig::benchScaled();
    cfg.seed = seedFromEnv();
    return cfg;
}

inline void
header(const std::string &figure, const std::string &caption)
{
    std::printf("==========================================================\n");
    std::printf("%s — %s\n", figure.c_str(), caption.c_str());
    std::printf("==========================================================\n");
}

inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

} // namespace bench
} // namespace jumanji

#endif // JUMANJI_BENCH_BENCH_COMMON_HH
