/**
 * @file
 * Reproduces Fig. 11: the LLC port attack demonstration.
 *
 * An attacker thread floods one target LLC bank with accesses and
 * records the time per batch of 100 accesses. A 3-thread victim
 * process rotates through flooding each of the 12 banks (the paper's
 * Xeon E5-2650 v4 has twelve LLC banks), pausing between banks. When
 * the victim floods the attacker's bank, port queueing raises the
 * attacker's observed access time — one latency peak per rotation.
 *
 * Paper shape: 12 latency peaks, higher when the victim shares the
 * attacker's bank; baseline (victim absent) is flat.
 */

#include <algorithm>

#include "bench/bench_common.hh"
#include "src/cpu/core_model.hh"
#include "src/security/attacks.hh"

using namespace jumanji;
using namespace jumanji::bench;

namespace {

constexpr std::uint32_t kBanks = 12;
constexpr BankId kTargetBank = 5;

struct AttackRun
{
    std::vector<AttackSample> trace;
};

AttackRun
runAttack(bool withVictim, std::uint64_t seed)
{
    // Xeon-like 12-bank LLC on a 4x3 mesh.
    LlcParams llc;
    llc.banks = kBanks;
    llc.setsPerBank = 64;
    llc.ways = 16;
    llc.repl = ReplKind::DRRIP;
    llc.timing.accessLatency = 13;
    llc.timing.ports = 1;
    // Xeon L3 banks sustain roughly one access per ~3 cycles.
    llc.timing.portOccupancy = 3;

    MeshParams mesh;
    mesh.cols = 4;
    mesh.rows = 3;
    // Link contention on: the paper's trace also shows smaller
    // elevations whenever the victim is active anywhere, from NoC
    // congestion on links the attacker's route shares.
    mesh.modelLinkContention = true;

    UmonParams umon;
    umon.sets = 64;
    umon.ways = 32;

    MemPath path(llc, mesh, MemoryParams{}, umon, seed);

    // All parties use striped descriptors (the S-NUCA baseline that
    // prior conflict-attack defenses build on).
    std::vector<BankId> all;
    for (std::uint32_t b = 0; b < kBanks; b++)
        all.push_back(static_cast<BankId>(b));

    // Attacker: VC 0, floods the target bank, timing every 100.
    path.registerVc(0);
    PlacementDescriptor striped;
    striped.fillStriped(all);
    path.installPlacement(0, striped);

    auto attackLines = linesTargetingBank(appAddressBase(0), kTargetBank,
                                          kBanks, 64);
    PortAttackerApp attacker(attackLines, 100);
    AccessOwner attackerOwner;
    attackerOwner.app = 0;
    attackerOwner.vc = 0;
    attackerOwner.vm = 0;
    CoreModel attackerCore(0, attackerOwner, &attacker, &path, Rng(1));

    // Victim: 3 threads (VCs 1-3) rotating through all banks; uses a
    // different address slice, so no cache-content conflicts.
    std::vector<std::unique_ptr<RotatingVictimApp>> victims;
    std::vector<std::unique_ptr<CoreModel>> victimCores;
    if (withVictim) {
        for (int t = 0; t < 3; t++) {
            VcId vc = 1 + t;
            path.registerVc(vc);
            path.installPlacement(vc, striped);
            std::vector<std::vector<LineAddr>> perBank;
            for (std::uint32_t b = 0; b < kBanks; b++) {
                perBank.push_back(linesTargetingBank(
                    appAddressBase(vc) + (1u << 22) * t,
                    static_cast<BankId>(b), kBanks, 48));
            }
            victims.push_back(std::make_unique<RotatingVictimApp>(
                std::move(perBank), /*dwell=*/60000, /*pause=*/20000));
            AccessOwner owner;
            owner.app = vc;
            owner.vc = vc;
            owner.vm = 1;
            victimCores.push_back(std::make_unique<CoreModel>(
                static_cast<CoreId>(4 + t), owner, victims.back().get(),
                &path, Rng(100 + t)));
        }
    }

    EventQueue queue;
    queue.schedule(&attackerCore, 0);
    for (auto &core : victimCores) queue.schedule(core.get(), 0);
    // Two full victim rotations: 12 banks x (60k + 20k) cycles each.
    queue.runUntil(2 * 12 * 80000 + 100000);

    AttackRun result;
    result.trace = attacker.trace();
    for (std::size_t t = 0; t < victimCores.size(); t++)
        std::fprintf(stderr, "victim %zu instrs=%llu\n", t,
                     static_cast<unsigned long long>(
                         victimCores[t]->instrsRetired()));
    std::fprintf(stderr, "bank5 acc=%llu queue=%llu\n",
                 static_cast<unsigned long long>(
                     path.bank(kTargetBank).totalAccesses()),
                 static_cast<unsigned long long>(
                     path.bank(kTargetBank).totalQueueCycles()));
    return result;
}

void
printTrace(const char *label, const AttackRun &run)
{
    std::printf("\n-- %s --\n", label);
    std::printf("%-14s %18s\n", "time(cycles)", "cycles/access");
    // Bin the trace for readable output: ~60 rows.
    std::size_t stride = std::max<std::size_t>(1, run.trace.size() / 60);
    for (std::size_t i = 0; i < run.trace.size(); i += stride) {
        double avg = 0.0;
        std::size_t n = std::min(stride, run.trace.size() - i);
        for (std::size_t j = i; j < i + n; j++)
            avg += run.trace[j].cyclesPerAccess;
        avg /= static_cast<double>(n);
        std::printf("%-14llu %18.2f\n",
                    static_cast<unsigned long long>(run.trace[i].when),
                    avg);
    }
    double peak = 0.0, floor = 1e30;
    for (const auto &s : run.trace) {
        peak = std::max(peak, s.cyclesPerAccess);
        floor = std::min(floor, s.cyclesPerAccess);
    }
    std::printf("floor=%.2f peak=%.2f cycles/access\n", floor, peak);
    // Top samples, to locate contention windows precisely.
    auto sorted = run.trace;
    std::sort(sorted.begin(), sorted.end(),
              [](const AttackSample &a, const AttackSample &b) {
                  return a.cyclesPerAccess > b.cyclesPerAccess;
              });
    std::printf("top samples:");
    for (std::size_t i = 0; i < std::min<std::size_t>(8, sorted.size());
         i++)
        std::printf(" (%llu, %.1f)",
                    static_cast<unsigned long long>(sorted[i].when),
                    sorted[i].cyclesPerAccess);
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Figure 11", "LLC port attack: attacker access times with "
                        "and without a rotating victim");

    AttackRun without = runAttack(false, seedFromEnv());
    AttackRun with = runAttack(true, seedFromEnv());

    printTrace("victim absent (baseline)", without);
    printTrace("victim present (12-bank rotation)", with);

    note("Paper: latency rises whenever the victim is active (NoC "
         "link contention) and is noticeably higher when it floods "
         "the attacker's bank (port contention) — the peaks above. "
         "The victim touches different cache sets, so no part of the "
         "signal comes from cache contents.");
    return 0;
}
