/**
 * @file
 * The figure benches as ExperimentSpec values. Each builder is the
 * C++ twin of a scenario document (fig13Small() mirrors
 * examples/scenarios/fig13_small.json — tests/test_spec.cc proves
 * they normalize to the same JSON), and each bench binary is a thin
 * main() around runSpecMain(spec), byte-identical to the former
 * handwritten loops.
 */

#ifndef JUMANJI_BENCH_SPECS_HH
#define JUMANJI_BENCH_SPECS_HH

#include "bench/bench_common.hh"
#include "src/driver/spec.hh"

namespace jumanji {
namespace bench {
namespace specs {

/**
 * A full controller block: Fig. 9 replaces the whole ControllerParams
 * (default-constructed + the swept field), so the override must spell
 * out every field — a partial patch would inherit benchScaled's
 * re-centered lowFrac/highFrac instead of the struct defaults.
 */
inline JsonValue
controllerOverride(double lowFrac, double highFrac, double panicFrac,
                   double stepFrac)
{
    JsonValue ctl = JsonValue::makeObject();
    ctl.set("lowFrac", JsonValue::makeNumber(lowFrac));
    ctl.set("highFrac", JsonValue::makeNumber(highFrac));
    ctl.set("panicFrac", JsonValue::makeNumber(panicFrac));
    ctl.set("stepFrac", JsonValue::makeNumber(stepFrac));
    ctl.set("configurationInterval", JsonValue::makeU64(20));
    ctl.set("percentile", JsonValue::makeNumber(95.0));
    JsonValue overrides = JsonValue::makeObject();
    overrides.set("controller", std::move(ctl));
    return overrides;
}

/** Single-key config patch helpers. */
inline JsonValue
overrideU64(const std::string &key, std::uint64_t value)
{
    JsonValue overrides = JsonValue::makeObject();
    overrides.set(key, JsonValue::makeU64(value));
    return overrides;
}

inline JsonValue
overrideBool(const std::string &key, bool value)
{
    JsonValue overrides = JsonValue::makeObject();
    overrides.set(key, JsonValue::makeBool(value));
    return overrides;
}

/** Fig. 13: the main evaluation (fig13-small at JUMANJI_MIXES=1). */
inline driver::ExperimentSpec
fig13Small()
{
    driver::ExperimentSpec spec;
    spec.name = "fig13-small";
    spec.designs = mainDesigns();
    spec.loads = {LoadLevel::High, LoadLevel::Low};
    spec.groups.clear();
    for (const std::string &lc : allTailAppNames())
        spec.groups.push_back({lc, {lc}});
    spec.groups.push_back({"Mixed", allTailAppNames()});
    spec.variants = {driver::SpecVariant{}};
    spec.output.title = "Figure 13";
    spec.output.caption = "tail latency + batch speedup vs. Static, "
                          "all LC apps, high/low load";
    spec.output.layout = "design-table";
    spec.output.sectionLabel = "[{load} load, LC={group}, {mixes} "
                               "mixes]";
    spec.output.labelHeader = "design";
    spec.output.labelWidth = 20;
    spec.output.staticRow = true;
    spec.output.columns = {{"tailMean", "tail(mean)"},
                           {"tailWorst", "tail(worst)"},
                           {"batchWS", "batchWS(gmean)"},
                           {"attackers", "attackers"}};
    spec.output.note =
        "tail = p95 latency / calibrated deadline (<=1 meets the "
        "deadline); batchWS is gmean weighted speedup vs. Static. "
        "Paper: Adaptive/VM-Part/Jumanji meet deadlines, Jigsaw "
        "violates badly; Jumanji/Jigsaw speed up batch 11-18%, "
        "S-NUCAs <= 4%.";
    return spec;
}

/** Fig. 9: feedback-controller parameter sensitivity. */
inline driver::ExperimentSpec
fig09Sensitivity()
{
    driver::ExperimentSpec spec;
    spec.name = "fig09-controller-sensitivity";
    spec.mixes = {1, false, 4, 4, false};
    spec.designs = {LlcDesign::Jumanji};
    spec.groups = {{"xapian", {"xapian"}}};
    spec.calibration = driver::CalibrationMode::PerJob;
    spec.variants = {
        {"range [0.80, 0.90]",
         controllerOverride(0.80, 0.90, 1.10, 0.10), 0},
        {"range [0.85, 0.95] *",
         controllerOverride(0.85, 0.95, 1.10, 0.10), 0},
        {"range [0.90, 0.99]",
         controllerOverride(0.90, 0.99, 1.10, 0.10), 0},
        {"panic 1.05", controllerOverride(0.85, 0.95, 1.05, 0.10), 0},
        {"panic 1.10 *",
         controllerOverride(0.85, 0.95, 1.10, 0.10), 0},
        {"panic 1.20", controllerOverride(0.85, 0.95, 1.20, 0.10), 0},
        {"step 0.05", controllerOverride(0.85, 0.95, 1.10, 0.05), 0},
        {"step 0.10 *", controllerOverride(0.85, 0.95, 1.10, 0.10), 0},
        {"step 0.20", controllerOverride(0.85, 0.95, 1.10, 0.20), 0},
    };
    spec.output.title = "Figure 9";
    spec.output.caption = "feedback-controller parameter sensitivity";
    spec.output.layout = "variant-table";
    spec.output.labelHeader = "parameters";
    spec.output.labelWidth = 26;
    spec.output.columns = {{"batchWSMean", "batchWS"},
                           {"tailMean", "tail ratio"}};
    spec.output.note = "* = the paper's defaults. Paper: results "
                       "change very little across parameter values.";
    return spec;
}

/** Fig. 16: Jumanji vs. Insecure vs. Ideal Batch. */
inline driver::ExperimentSpec
fig16IdealBatch()
{
    driver::ExperimentSpec spec;
    spec.name = "fig16-ideal-batch";
    spec.designs = {LlcDesign::Jumanji, LlcDesign::JumanjiInsecure,
                    LlcDesign::JumanjiIdealBatch};
    spec.loads = {LoadLevel::High, LoadLevel::Low};
    spec.groups = {{"Mixed", allTailAppNames()}};
    spec.variants = {driver::SpecVariant{}};
    spec.output.title = "Figure 16";
    spec.output.caption = "Jumanji vs. Insecure vs. Ideal Batch "
                          "(ablations of Jumanji's constraints)";
    spec.output.layout = "design-table";
    spec.output.sectionLabel = "[{load} load]";
    spec.output.labelHeader = "design";
    spec.output.labelWidth = 22;
    spec.output.columns = {{"batchWS", "batchWS"},
                           {"attackers", "attackers"}};
    spec.output.note =
        "Paper: Jumanji 11-15%, Insecure 14-19%, Jumanji within 2% "
        "of Ideal Batch on average — the security and greedy-"
        "placement costs are small.";
    return spec;
}

/** Fig. 17: batch speedup vs. VM count (regrouped population). */
inline driver::ExperimentSpec
fig17VmScaling()
{
    driver::ExperimentSpec spec;
    spec.name = "fig17-vm-scaling";
    spec.designs = {LlcDesign::Jumanji};
    spec.groups = {{"Mixed", allTailAppNames()}};
    spec.calibration = driver::CalibrationMode::PerJob;
    spec.variants = {{"1 VM (all apps)", JsonValue(), 1},
                     {"2 x (2 LC + 8 B)", JsonValue(), 2},
                     {"4 x (1 LC + 4 B)", JsonValue(), 4},
                     {"6 VMs", JsonValue(), 6},
                     {"8 VMs", JsonValue(), 8},
                     {"12 VMs", JsonValue(), 12}};
    spec.output.title = "Figure 17";
    spec.output.caption = "Jumanji batch speedup vs. number of VMs";
    spec.output.layout = "variant-table";
    spec.output.labelHeader = "configuration";
    spec.output.labelWidth = 22;
    spec.output.columns = {{"batchWSMean", "batchWS"},
                           {"tailMean", "tail ratio"},
                           {"attackers", "attackers"}};
    spec.output.note =
        "Paper: gmean speedup 16% with one VM, 13% with twelve; no "
        "degradation from 4 to 12 VMs; attackers stay 0 throughout "
        "(isolation holds at every VM count).";
    return spec;
}

/** Fig. 18: batch speedup vs. NoC router delay. */
inline driver::ExperimentSpec
fig18NocSensitivity()
{
    driver::ExperimentSpec spec;
    spec.name = "fig18-noc-sensitivity";
    spec.designs = {LlcDesign::Jumanji};
    spec.groups = {{"Mixed", allTailAppNames()}};
    spec.variants.clear();
    for (std::uint64_t delay : {1, 2, 3}) {
        JsonValue mesh = JsonValue::makeObject();
        mesh.set("routerDelay", JsonValue::makeU64(delay));
        JsonValue overrides = JsonValue::makeObject();
        overrides.set("mesh", std::move(mesh));
        spec.variants.push_back(
            {std::to_string(delay), std::move(overrides), 0});
    }
    spec.output.title = "Figure 18";
    spec.output.caption = "Jumanji batch speedup vs. NoC router delay";
    spec.output.layout = "variant-table";
    spec.output.labelHeader = "router delay";
    spec.output.labelWidth = 18;
    spec.output.columns = {{"batchWS", "batchWS"},
                           {"tailMean", "tail ratio"}};
    spec.output.note =
        "Paper: speedup rises from 9% to 15% as routers go from 1 "
        "to 3 cycles (2 cycles is the default elsewhere).";
    return spec;
}

/**
 * Ablations table (sections 1-4 of bench/ablation_design_choices;
 * the trading-policy probe stays hand-driven in the binary). The
 * epoch overrides are benchScaled's 600000 scaled by 0.5x / 2x.
 */
inline driver::ExperimentSpec
ablationVariants()
{
    driver::ExperimentSpec spec;
    spec.name = "ablation-design-choices";
    spec.mixes = {1, false, 4, 4, false};
    spec.designs = {LlcDesign::Jumanji};
    spec.groups = {{"xapian", {"xapian"}}};
    spec.calibration = driver::CalibrationMode::PerJob;
    spec.variants = {
        {"baseline (all defaults)", JsonValue(), 0},
        {"epoch x0.5", overrideU64("epochTicks", 300000), 0},
        {"epoch x2.0", overrideU64("epochTicks", 1200000), 0},
        {"raw curves (no hull)", overrideBool("hullCurves", false), 0},
        {"no rate normalization",
         overrideBool("rateNormalizeCurves", false), 0},
        {"invalidate on reconfig",
         overrideBool("migrateOnReconfig", false), 0},
    };
    spec.output.title = "Ablations";
    spec.output.caption = "design-choice studies (Jumanji, case-study "
                          "workload)";
    spec.output.layout = "variant-table";
    spec.output.labelHeader = "variant";
    spec.output.labelWidth = 34;
    spec.output.columns = {{"tailMean", "tail ratio"},
                           {"batchWSMean", "batchWS"}};
    // The note is printed by the binary after the trading probe, so
    // it is not part of the spec output.
    return spec;
}

/**
 * The novel sweep shipped as examples/scenarios/epoch_load_grid.json:
 * reconfiguration-epoch length (0.5x / 1x / 2x benchScaled's 600000)
 * crossed with both load levels, Jumanji only — the scenario-file
 * form of the ablation's epoch study, extended across the load grid.
 */
inline driver::ExperimentSpec
epochLoadGrid()
{
    driver::ExperimentSpec spec;
    spec.name = "epoch-load-grid";
    spec.mixes.count = 2;
    spec.designs = {LlcDesign::Jumanji};
    spec.loads = {LoadLevel::High, LoadLevel::Low};
    spec.groups = {{"Mixed", allTailAppNames()}};
    spec.variants = {
        {"epoch 300k", overrideU64("epochTicks", 300000), 0},
        {"epoch 600k (default)", overrideU64("epochTicks", 600000), 0},
        {"epoch 1200k", overrideU64("epochTicks", 1200000), 0},
    };
    spec.output.title = "Epoch x load grid";
    spec.output.caption = "Jumanji across reconfiguration-epoch "
                          "lengths and load levels";
    spec.output.layout = "variant-table";
    spec.output.sectionLabel = "[{load} load, {mixes} mixes]";
    spec.output.labelHeader = "epoch length";
    spec.output.labelWidth = 22;
    spec.output.columns = {{"batchWS", "batchWS"},
                           {"tailMean", "tail ratio"},
                           {"tailWorst", "tail(worst)"}};
    spec.output.note = "Scenario-layer demo: the paper's claim that "
                       "longer epochs do not hurt (Sec. IV-B), "
                       "checked at both load levels.";
    return spec;
}

/**
 * KV flash crowd (bench/fig_kv, examples/scenarios/
 * kv_flash_crowd.json): a kv_small server rides the "flashcrowd"
 * load trace — offered load steps to 1.8x mid-measurement — under
 * Jumanji, the plain D-NUCA (Adaptive), and way-partitioning
 * (VM-Part). The dotted columns read the per-phase
 * apps.kv.<phase>.{p95,p99} formulas System registers for KV mixes,
 * so the table shows each design's tail before, during, and after
 * the spike.
 */
inline driver::ExperimentSpec
kvFlashCrowd()
{
    driver::ExperimentSpec spec;
    spec.name = "kv-flash-crowd";
    JsonValue kv = JsonValue::makeObject();
    kv.set("trace", JsonValue::makeString("flashcrowd"));
    // 1.8x on top of 50% (high-load) utilization puts the spike at
    // ~90% offered load: heavy queueing, where the designs' LLC
    // allocations actually differentiate — 4x would saturate every
    // design identically (unbounded backlog for the whole phase).
    kv.set("peakMultiplier", JsonValue::makeNumber(1.8));
    JsonValue overrides = JsonValue::makeObject();
    overrides.set("kv", std::move(kv));
    spec.overrides = std::move(overrides);
    spec.designs = {LlcDesign::Adaptive, LlcDesign::VMPart,
                    LlcDesign::Jumanji};
    spec.groups = {{"kv_small", {"kv_small"}}};
    spec.variants = {driver::SpecVariant{}};
    spec.output.title = "KV flash crowd";
    spec.output.caption = "kv_small p95/p99 vs. deadline through a "
                          "load spike (Jumanji vs. D-NUCA vs. "
                          "way-partitioning)";
    spec.output.layout = "design-table";
    spec.output.sectionLabel = "[{load} load, LC={group}, {mixes} "
                               "mixes]";
    spec.output.labelHeader = "design";
    spec.output.labelWidth = 20;
    spec.output.staticRow = true;
    spec.output.columns = {{"apps.kv.before.p95", "before p95"},
                           {"apps.kv.spike.p95", "spike p95"},
                           {"apps.kv.after.p95", "after p95"},
                           {"apps.kv.spike.p99", "spike p99"},
                           {"tailWorst", "tail(worst)"},
                           {"batchWS", "batchWS"}};
    spec.output.note =
        "phase columns are latency/deadline at that percentile, "
        "averaged over the scenario's KV apps (<=1 meets the "
        "deadline); the spike phase is the middle 30% of the "
        "measurement window at 1.8x offered load.";
    return spec;
}

} // namespace specs
} // namespace bench
} // namespace jumanji

#endif // JUMANJI_BENCH_SPECS_HH
