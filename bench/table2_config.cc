/**
 * @file
 * Prints Table II: the simulated system parameters, both at paper
 * scale and at the bench scale used by the reproduction binaries
 * (see DESIGN.md for the scaling argument).
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

namespace {

void
printConfig(const char *label, const SystemConfig &cfg)
{
    PlacementGeometry geo = cfg.placementGeometry();
    std::printf("\n-- %s --\n", label);
    std::printf("  cores/tiles        : %u (%ux%u mesh)\n",
                cfg.mesh.cols * cfg.mesh.rows, cfg.mesh.cols,
                cfg.mesh.rows);
    std::printf("  LLC                : %u banks x %u sets x %u ways "
                "= %.2f MB\n",
                cfg.llc.banks, cfg.llc.setsPerBank, cfg.llc.ways,
                static_cast<double>(geo.totalLines() * kLineBytes) /
                    (1024.0 * 1024.0));
    std::printf("  bank latency       : %llu cycles, %u port(s), "
                "%llu-cycle occupancy\n",
                static_cast<unsigned long long>(
                    cfg.llc.timing.accessLatency),
                cfg.llc.timing.ports,
                static_cast<unsigned long long>(
                    cfg.llc.timing.portOccupancy));
    std::printf("  replacement        : %s (set-dueling, shared "
                "PSEL)\n", replKindName(cfg.llc.repl));
    std::printf("  NoC                : %llu-cycle routers, "
                "%llu-cycle links, X-Y routing\n",
                static_cast<unsigned long long>(cfg.mesh.routerDelay),
                static_cast<unsigned long long>(cfg.mesh.linkDelay));
    std::printf("  memory             : %u controllers at corners, "
                "%llu-cycle latency, LC-priority bandwidth "
                "partitioning\n",
                cfg.mem.controllers,
                static_cast<unsigned long long>(cfg.mem.accessLatency));
    std::printf("  reconfig epoch     : %llu cycles\n",
                static_cast<unsigned long long>(cfg.epochTicks));
    std::printf("  UMONs              : %u sets x %u ways per VC\n",
                cfg.umon.sets, cfg.umon.ways);
    std::printf("  capacity scale     : %.4f\n", cfg.capacityScale);
}

} // namespace

int
main()
{
    header("Table II", "system parameters");
    printConfig("paper scale (Table II exactly)",
                SystemConfig::paperDefault());
    printConfig("bench scale (capacity+time scaled together)",
                SystemConfig::benchScaled());
    note("Bench scale shrinks bank capacity and workload footprints "
         "by the same 8x factor and compresses the epoch so runs "
         "finish in seconds; all capacity ratios, latencies, and "
         "policy parameters match the paper (DESIGN.md).");
    return 0;
}
