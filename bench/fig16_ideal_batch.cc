/**
 * @file
 * Reproduces Fig. 16: Jumanji vs. "Jumanji: Insecure" (no bank
 * isolation) and "Jumanji: Ideal Batch" (no competition between
 * batch and latency-critical placement), gmean batch weighted
 * speedup at high and low load.
 *
 * Paper shape: Jumanji is within ~3% of Insecure (the cost of the
 * security guarantee) and within ~2% of Ideal Batch (the cost of
 * the greedy LatCritPlacer).
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

int
main()
{
    setQuiet(true);
    header("Figure 16", "Jumanji vs. Insecure vs. Ideal Batch "
                        "(ablations of Jumanji's constraints)");
    std::uint32_t mixes = ExperimentHarness::mixCountFromEnv(3);

    ExperimentHarness harness(benchConfig());
    std::vector<LlcDesign> designs = {LlcDesign::Jumanji,
                                      LlcDesign::JumanjiInsecure,
                                      LlcDesign::JumanjiIdealBatch};

    for (LoadLevel load : {LoadLevel::High, LoadLevel::Low}) {
        auto results =
            harness.sweep(allTailAppNames(), mixes, designs, load);
        auto speedups = gmeanSpeedups(results);
        auto vuln = meanVulnerability(results);

        std::printf("\n[%s load]\n", loadName(load));
        std::printf("%-22s %12s %12s\n", "design", "batchWS",
                    "attackers");
        for (LlcDesign d : designs) {
            std::printf("%-22s %12.3f %12.3f\n", llcDesignName(d),
                        speedups[d], vuln[d]);
        }
    }

    note("Paper: Jumanji 11-15%, Insecure 14-19%, Jumanji within 2% "
         "of Ideal Batch on average — the security and greedy-"
         "placement costs are small.");
    return 0;
}
