/**
 * @file
 * Reproduces Fig. 16: Jumanji vs. "Jumanji: Insecure" (no bank
 * isolation) and "Jumanji: Ideal Batch" (no competition between
 * batch and latency-critical placement), gmean batch weighted
 * speedup at high and low load.
 *
 * Paper shape: Jumanji is within ~3% of Insecure (the cost of the
 * security guarantee) and within ~2% of Ideal Batch (the cost of
 * the greedy LatCritPlacer).
 *
 * One design-table spec over both loads (bench/specs.hh), with
 * calibrations shared across the whole grid exactly as the former
 * shared-harness loop shared them.
 */

#include "bench/specs.hh"

int
main()
{
    jumanji::setQuiet(true);
    jumanji::bench::runSpecMain(
        jumanji::bench::specs::fig16IdealBatch());
    return 0;
}
