/**
 * @file
 * Micro-benchmarks of the substrate itself (google-benchmark):
 * cache-array access, UMON updates, miss-curve operations, the
 * lookahead allocators, the placers, and descriptor operations.
 * These bound the simulator's own costs and double as ablation
 * harnesses for data-structure choices.
 */

#include <benchmark/benchmark.h>

#include "src/cache/cache_array.hh"
#include "src/core/lookahead.hh"
#include "src/core/policies.hh"
#include "src/dnuca/umon.hh"
#include "src/dnuca/vtb.hh"
#include "src/sim/rng.hh"

namespace jumanji {
namespace {

void
BM_CacheArrayAccess(benchmark::State &state)
{
    auto repl = static_cast<ReplKind>(state.range(0));
    CacheArray array(512, 32, repl, 1);
    AccessOwner owner;
    owner.app = 0;
    owner.vc = 0;
    owner.vm = 0;
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            array.access(rng.below(32768), owner));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayAccess)
    ->Arg(static_cast<int>(ReplKind::LRU))
    ->Arg(static_cast<int>(ReplKind::SRRIP))
    ->Arg(static_cast<int>(ReplKind::DRRIP));

void
BM_UmonAccess(benchmark::State &state)
{
    UmonParams params;
    params.sets = 256;
    params.ways = 64;
    params.modelledLines = 327680;
    Umon umon(params);
    Rng rng(1);
    for (auto _ : state) umon.access(rng.below(100000));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UmonAccess);

void
BM_MissCurveConvexHull(benchmark::State &state)
{
    Rng rng(3);
    std::vector<double> pts(65);
    double v = 1e6;
    for (auto &p : pts) {
        p = v;
        v -= static_cast<double>(rng.below(20000));
        if (v < 0) v = 0;
    }
    MissCurve curve(pts);
    for (auto _ : state) benchmark::DoNotOptimize(curve.convexHull());
}
BENCHMARK(BM_MissCurveConvexHull);

void
BM_CombineOptimal(benchmark::State &state)
{
    Rng rng(4);
    std::vector<MissCurve> curves;
    for (int i = 0; i < state.range(0); i++) {
        std::vector<double> pts(65);
        double v = 1e5 + static_cast<double>(rng.below(100000));
        for (auto &p : pts) {
            p = v;
            v *= 0.8 + 0.15 * rng.uniform();
        }
        curves.emplace_back(pts);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(MissCurve::combineOptimal(curves));
}
BENCHMARK(BM_CombineOptimal)->Arg(4)->Arg(16);

PlacementGeometry
paperGeo()
{
    PlacementGeometry geo;
    geo.banks = 20;
    geo.waysPerBank = 32;
    geo.linesPerBank = 16384;
    geo.linesPerBucket = geo.totalLines() / 64;
    return geo;
}

std::vector<LookaheadClaim>
randomClaims(int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<LookaheadClaim> claims(n);
    for (auto &claim : claims) {
        std::vector<double> pts(65);
        double v = 1e5 + static_cast<double>(rng.below(1000000));
        for (auto &p : pts) {
            p = v;
            v *= 0.75 + 0.2 * rng.uniform();
        }
        claim.curve = MissCurve(pts).convexHull();
    }
    return claims;
}

void
BM_Lookahead20Claims(benchmark::State &state)
{
    PlacementGeometry geo = paperGeo();
    auto claims = randomClaims(20, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            lookahead(claims, geo.totalLines(), geo));
}
BENCHMARK(BM_Lookahead20Claims);

void
BM_JumanjiLookahead(benchmark::State &state)
{
    PlacementGeometry geo = paperGeo();
    auto claims = randomClaims(4, 9);
    for (auto &c : claims) c.floorLines = geo.linesPerBank / 2;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            jumanjiLookahead(claims, geo.totalLines(), geo));
}
BENCHMARK(BM_JumanjiLookahead);

void
BM_FullJumanjiReconfigure(benchmark::State &state)
{
    // The paper reports 11.9 Mcycles per reconfiguration (~4.5 ms);
    // this measures our software implementation of the same step.
    PlacementGeometry geo = paperGeo();
    MeshParams mp;
    MeshTopology mesh(mp);

    EpochInputs in;
    in.geo = geo;
    in.mesh = &mesh;
    Rng rng(11);
    for (int i = 0; i < 20; i++) {
        VcInfo vc;
        vc.vc = i;
        vc.app = i;
        vc.vm = i / 5;
        vc.coreTile = static_cast<std::uint32_t>(i);
        vc.latencyCritical = (i % 5 == 0);
        vc.targetLines = 2048;
        std::vector<double> pts(65);
        double v = 1e5 + static_cast<double>(rng.below(1000000));
        for (auto &p : pts) {
            p = v;
            v *= 0.8;
        }
        vc.curve = MissCurve(pts).convexHull();
        in.vcs.push_back(std::move(vc));
    }

    JumanjiPolicy policy(true);
    for (auto _ : state)
        benchmark::DoNotOptimize(policy.reconfigure(in));
}
BENCHMARK(BM_FullJumanjiReconfigure);

void
BM_DescriptorStabilize(benchmark::State &state)
{
    PlacementDescriptor prev, next;
    prev.fillProportional({{0, 3.0}, {1, 2.0}, {2, 1.0}});
    next.fillProportional({{0, 2.5}, {1, 2.5}, {2, 1.0}});
    for (auto _ : state)
        benchmark::DoNotOptimize(next.stabilizedAgainst(prev));
}
BENCHMARK(BM_DescriptorStabilize);

void
BM_DescriptorLookup(benchmark::State &state)
{
    PlacementDescriptor desc;
    std::vector<BankId> banks;
    for (BankId b = 0; b < 20; b++) banks.push_back(b);
    desc.fillStriped(banks);
    LineAddr line = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(desc.bankFor(line++));
}
BENCHMARK(BM_DescriptorLookup);

} // namespace
} // namespace jumanji

BENCHMARK_MAIN();
