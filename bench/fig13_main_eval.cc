/**
 * @file
 * Reproduces Fig. 13: normalized tail latency and gmean batch
 * weighted speedup (relative to Static) over random batch mixes, for
 * each latency-critical application (plus the Mixed selection), at
 * high and low load, under Adaptive / VM-Part / Jigsaw / Jumanji.
 *
 * Paper shape to reproduce: all tail-aware designs meet deadlines
 * (ratios ~<= 1) while Jigsaw violates them wildly for cache-hungry
 * LC apps; Jumanji and Jigsaw deliver double-digit batch speedups
 * while the S-NUCA designs deliver almost none.
 *
 * The whole figure is one ExperimentSpec (bench/specs.hh, mirrored
 * by examples/scenarios/fig13_small.json): all (load, LC group, mix)
 * points expand into one JobGraph and fan out over JUMANJI_JOBS
 * workers, with output byte-identical to the old handwritten
 * group-by-group sweeps.
 */

#include "bench/specs.hh"

int
main()
{
    jumanji::setQuiet(true);
    jumanji::bench::runSpecMain(jumanji::bench::specs::fig13Small());
    return 0;
}
