/**
 * @file
 * Reproduces Fig. 13: normalized tail latency and gmean batch
 * weighted speedup (relative to Static) over random batch mixes, for
 * each latency-critical application (plus the Mixed selection), at
 * high and low load, under Adaptive / VM-Part / Jigsaw / Jumanji.
 *
 * Paper shape to reproduce: all tail-aware designs meet deadlines
 * (ratios ~<= 1) while Jigsaw violates them wildly for cache-hungry
 * LC apps; Jumanji and Jigsaw deliver double-digit batch speedups
 * while the S-NUCA designs deliver almost none.
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

namespace {

void
runGroup(ExperimentHarness &harness, const std::string &label,
         const std::vector<std::string> &lcNames, LoadLevel load,
         std::uint32_t mixes)
{
    auto results = harness.sweep(lcNames, mixes, mainDesigns(), load);

    std::printf("\n[%s load, LC=%s, %u mixes]\n", loadName(load),
                label.c_str(), mixes);
    std::printf("%-20s %12s %12s %12s %12s\n", "design",
                "tail(mean)", "tail(worst)", "batchWS(gmean)",
                "attackers");

    std::vector<LlcDesign> all = {LlcDesign::Static};
    for (LlcDesign d : mainDesigns()) all.push_back(d);

    auto speedups = gmeanSpeedups(results);
    for (LlcDesign d : all) {
        // Tail ratios and vulnerability come straight from the stats
        // registry dump each run carries ("sys.*" formulas).
        double meanTail = 0.0, worstTail = 0.0, attackers = 0.0;
        for (const auto &mix : results) {
            const DesignResult &dr = mix.of(d);
            meanTail += dr.run.stat("sys.tail.meanRatio");
            worstTail = std::max(worstTail,
                                 dr.run.stat("sys.tail.worstRatio"));
            attackers += dr.run.stat("sys.attackersPerAccess");
        }
        meanTail /= static_cast<double>(results.size());
        attackers /= static_cast<double>(results.size());
        std::printf("%-20s %12.3f %12.3f %12.3f %12.3f\n",
                    llcDesignName(d), meanTail, worstTail, speedups[d],
                    attackers);
    }
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Figure 13", "tail latency + batch speedup vs. Static, all "
                        "LC apps, high/low load");
    std::uint32_t mixes = ExperimentHarness::mixCountFromEnv(3);

    ExperimentHarness harness(benchConfig());

    for (LoadLevel load : {LoadLevel::High, LoadLevel::Low}) {
        for (const auto &lc : allTailAppNames())
            runGroup(harness, lc, {lc}, load, mixes);
        runGroup(harness, "Mixed", allTailAppNames(), load, mixes);
    }

    note("tail = p95 latency / calibrated deadline (<=1 meets the "
         "deadline); batchWS is gmean weighted speedup vs. Static. "
         "Paper: Adaptive/VM-Part/Jumanji meet deadlines, Jigsaw "
         "violates badly; Jumanji/Jigsaw speed up batch 11-18%, "
         "S-NUCAs <= 4%.");
    return 0;
}
