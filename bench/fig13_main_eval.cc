/**
 * @file
 * Reproduces Fig. 13: normalized tail latency and gmean batch
 * weighted speedup (relative to Static) over random batch mixes, for
 * each latency-critical application (plus the Mixed selection), at
 * high and low load, under Adaptive / VM-Part / Jigsaw / Jumanji.
 *
 * Paper shape to reproduce: all tail-aware designs meet deadlines
 * (ratios ~<= 1) while Jigsaw violates them wildly for cache-hungry
 * LC apps; Jumanji and Jigsaw deliver double-digit batch speedups
 * while the S-NUCA designs deliver almost none.
 *
 * This is the heaviest bench, so it leans hardest on the driver: all
 * (load, LC group, mix) points go into one JobGraph and fan out over
 * JUMANJI_JOBS workers, with output byte-identical to the old
 * group-by-group serial sweeps.
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

namespace {

struct Group
{
    std::string label;
    std::vector<std::string> lcNames;
    LoadLevel load = LoadLevel::High;
};

void
printGroup(const Group &group, const std::vector<MixResult> &results,
           std::uint32_t mixes)
{
    std::printf("\n[%s load, LC=%s, %u mixes]\n", loadName(group.load),
                group.label.c_str(), mixes);
    std::printf("%-20s %12s %12s %12s %12s\n", "design",
                "tail(mean)", "tail(worst)", "batchWS(gmean)",
                "attackers");

    std::vector<LlcDesign> all = {LlcDesign::Static};
    for (LlcDesign d : mainDesigns()) all.push_back(d);

    auto speedups = gmeanSpeedups(results);
    for (LlcDesign d : all) {
        // Tail ratios and vulnerability come straight from the stats
        // registry dump each run carries ("sys.*" formulas).
        double meanTail = 0.0, worstTail = 0.0, attackers = 0.0;
        for (const auto &mix : results) {
            const DesignResult &dr = mix.of(d);
            meanTail += dr.run.stat("sys.tail.meanRatio");
            worstTail = std::max(worstTail,
                                 dr.run.stat("sys.tail.worstRatio"));
            attackers += dr.run.stat("sys.attackersPerAccess");
        }
        meanTail /= static_cast<double>(results.size());
        attackers /= static_cast<double>(results.size());
        std::printf("%-20s %12.3f %12.3f %12.3f %12.3f\n",
                    llcDesignName(d), meanTail, worstTail, speedups[d],
                    attackers);
    }
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Figure 13", "tail latency + batch speedup vs. Static, all "
                        "LC apps, high/low load");
    std::uint32_t mixes = ExperimentHarness::mixCountFromEnv(3);

    ExperimentHarness harness(benchConfig());

    // Calibrate every LC app up front, in parallel. The serial path
    // would calibrate each name lazily inside its first group's
    // sweep, with that sweep's m=0 config — which is the harness base
    // config (all group sweeps derive the same per-mix seeds), so the
    // values here are identical to the lazy ones.
    {
        std::vector<driver::CalibrationJob> plan;
        for (const auto &name : allTailAppNames())
            plan.push_back({name, harness.baseConfig()});
        std::vector<LcCalibration> calibrations =
            orchestrator().runCalibrations(plan);
        for (std::size_t i = 0; i < plan.size(); i++)
            harness.setCalibration(plan[i].lcName, calibrations[i]);
    }

    std::vector<Group> groups;
    for (LoadLevel load : {LoadLevel::High, LoadLevel::Low}) {
        for (const auto &lc : allTailAppNames())
            groups.push_back({lc, {lc}, load});
        groups.push_back({"Mixed", allTailAppNames(), load});
    }

    // One graph over every (group, mix) point: the whole figure fans
    // out at once instead of draining the pool between groups.
    driver::JobGraph graph;
    for (const Group &group : groups) {
        for (std::uint32_t m = 0; m < mixes; m++) {
            driver::SweepJob job;
            job.label = group.label + "/" + loadName(group.load) +
                        "/mix" + std::to_string(m);
            job.config = harness.baseConfig();
            job.config.seed =
                harness.baseConfig().seed + m * 1000003ull;
            Rng mixRng(job.config.seed ^ 0x5eedull);
            job.mix = makeMix(group.lcNames, 4, 4, mixRng);
            job.designs = mainDesigns();
            job.load = group.load;
            job.selfCalibrate = false;
            job.calibrations = harness.calibrationsFor(job.mix);
            graph.add(std::move(job));
        }
    }
    std::vector<MixResult> all = runJobs(graph);

    std::size_t next = 0;
    for (const Group &group : groups) {
        std::vector<MixResult> results(
            all.begin() + static_cast<std::ptrdiff_t>(next),
            all.begin() + static_cast<std::ptrdiff_t>(next + mixes));
        next += mixes;
        printGroup(group, results, mixes);
    }

    note("tail = p95 latency / calibrated deadline (<=1 meets the "
         "deadline); batchWS is gmean weighted speedup vs. Static. "
         "Paper: Adaptive/VM-Part/Jumanji meet deadlines, Jigsaw "
         "violates badly; Jumanji/Jigsaw speed up batch 11-18%, "
         "S-NUCAs <= 4%.");
    return 0;
}
