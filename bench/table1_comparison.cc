/**
 * @file
 * Reproduces Table I: the qualitative comparison of LLC designs on
 * tail latency, security, and batch speedup — computed from actual
 * runs rather than asserted.
 *
 * A design "meets tail latency" if its mean tail ratio stays at or
 * under ~1.1x the deadline; it is "secure" against bank attacks if
 * its attackers-per-access metric is 0, and against conflict attacks
 * if untrusted data is partitioned; it "speeds up batch" if gmean
 * weighted speedup exceeds 5%.
 */

#include <algorithm>

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

int
main()
{
    setQuiet(true);
    header("Table I", "tail latency / security / batch speedup by "
                      "design (measured)");
    std::uint32_t mixes = ExperimentHarness::mixCountFromEnv(3);

    ExperimentHarness harness(benchConfig());
    auto results = harness.sweep(allTailAppNames(), mixes,
                                 mainDesigns(), LoadLevel::High);
    auto speedups = gmeanSpeedups(results);
    auto vuln = meanVulnerability(results);

    std::printf("%-14s %14s %16s %16s %14s\n", "design",
                "tail latency", "conflict atks", "bank atks",
                "batch speedup");

    std::vector<LlcDesign> all = {LlcDesign::Static};
    for (LlcDesign d : mainDesigns()) all.push_back(d);

    // S-NUCA reference for the "speeds up batch" criterion.
    double snucaBest = 1.0;
    for (LlcDesign d : {LlcDesign::Static, LlcDesign::Adaptive,
                        LlcDesign::VMPart})
        snucaBest = std::max(snucaBest, speedups[d]);

    for (LlcDesign d : all) {
        // "Meets tail latency" judges the worst LC instance per mix
        // (one missed deadline is a miss), averaged across mixes.
        double tail = 0.0;
        for (const auto &mix : results) tail += mix.of(d).tailRatio;
        tail /= static_cast<double>(results.size());

        // Conflict attacks are defended when untrusted VMs never
        // share a partition: true for VM-Part, Jigsaw (per-app
        // partitions), and Jumanji; false for Static/Adaptive whose
        // batch pool is shared across VMs.
        bool conflictDefended = d == LlcDesign::VMPart ||
                                d == LlcDesign::Jigsaw ||
                                d == LlcDesign::Jumanji;
        bool bankDefended = vuln[d] == 0.0;
        bool meetsTail = tail <= 1.15;
        // D-NUCA-class speedup: clearly above the best S-NUCA.
        bool speedsUp = speedups[d] >= snucaBest + 0.015 &&
                        speedups[d] >= 1.025;

        std::printf("%-14s %10s %.2f %16s %16s %10s %.3f\n",
                    llcDesignName(d), meetsTail ? "yes" : "NO", tail,
                    conflictDefended ? "defended" : "EXPOSED",
                    bankDefended ? "defended" : "EXPOSED",
                    speedsUp ? "yes" : "no", speedups[d]);
    }

    note("Paper Table I: tail-aware designs check tail latency; only "
         "partitioned designs defend conflict attacks; only Jumanji "
         "defends bank (port/leakage) attacks; only the D-NUCAs speed "
         "up batch. Jumanji alone checks every column.");
    return 0;
}
