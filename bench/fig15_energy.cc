/**
 * @file
 * Reproduces Fig. 15: dynamic data-movement energy at high load,
 * split by level (L1, L2, LLC banks, NoC, memory), per design,
 * normalized to Static.
 *
 * Paper shape: the D-NUCAs cut data-movement energy ~13% below
 * Static (fewer memory accesses from partitioning + fewer network
 * hops from placement), while Adaptive and VM-Part are flat or
 * slightly worse (associativity loss).
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

int
main()
{
    setQuiet(true);
    header("Figure 15", "dynamic data-movement energy by level, "
                        "normalized to Static");
    std::uint32_t mixes = ExperimentHarness::mixCountFromEnv(3);

    ExperimentHarness harness(benchConfig());
    auto results = harness.sweep(allTailAppNames(), mixes,
                                 mainDesigns(), LoadLevel::High);

    // Average energy per *instruction* (equal work, as the paper's
    // fixed-work methodology implies), then normalize to Static.
    std::map<LlcDesign, EnergyBreakdown> energy;
    std::map<LlcDesign, double> instrs;
    for (const auto &mix : results) {
        for (const auto &d : mix.designs) {
            energy[d.design] += d.run.energy;
            for (const auto &app : d.run.apps)
                instrs[d.design] +=
                    static_cast<double>(app.progress.instrs);
        }
    }

    double staticTotal = energy[LlcDesign::Static].total() /
                         instrs[LlcDesign::Static];

    std::printf("%-20s %8s %8s %8s %8s %8s %10s\n", "design", "L1",
                "L2", "LLC", "NoC", "Mem", "total");
    for (const auto &[design, sum] : energy) {
        double n = instrs[design] * staticTotal;
        std::printf("%-20s %8.3f %8.3f %8.3f %8.3f %8.3f %10.3f\n",
                    llcDesignName(design), sum.l1 / n, sum.l2 / n,
                    sum.llc / n, sum.noc / n, sum.mem / n,
                    sum.total() / n);
    }

    note("All values are fractions of Static's per-instruction "
         "total. Paper: Jumanji and Jigsaw reduce total energy ~13% "
         "vs Static (mostly fewer memory accesses + fewer hops); "
         "Adaptive +0.1%, VM-Part +2.4%. Our reproduction recovers "
         "the NoC term strongly (D-NUCAs cut network energy by "
         "60-85%) but not the memory term: the time-scaled LC apps "
         "are deliberately more memory-intensive than TailBench's, "
         "so their misses dominate the memory column (see "
         "EXPERIMENTS.md).");
    return 0;
}
