/**
 * @file
 * Reproduces Fig. 5: end-to-end results of the Sec. III case study —
 * normalized tail latency and batch weighted speedup per design for
 * the 4x(xapian + 4 batch) workload.
 *
 * Paper shape: Adaptive and VM-Part meet deadlines with negligible
 * batch speedup; Jigsaw speeds batch up but wildly violates
 * deadlines; Jumanji meets deadlines with near-Jigsaw speedup.
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

int
main()
{
    setQuiet(true);
    header("Figure 5", "case study: tail latency + batch speedup per "
                       "design");
    std::uint32_t mixes = ExperimentHarness::mixCountFromEnv(3);

    ExperimentHarness harness(benchConfig());
    auto results = harness.sweep({"xapian"}, mixes, mainDesigns(),
                                 LoadLevel::High);

    auto speedups = gmeanSpeedups(results);
    auto vuln = meanVulnerability(results);

    std::printf("%-20s %14s %14s %14s\n", "design", "tail/deadline",
                "batch speedup", "attackers");
    std::vector<LlcDesign> all = {LlcDesign::Static};
    for (LlcDesign d : mainDesigns()) all.push_back(d);
    for (LlcDesign d : all) {
        double meanTail = 0.0;
        for (const auto &mix : results) meanTail += mix.of(d).meanTailRatio;
        meanTail /= static_cast<double>(results.size());
        std::printf("%-20s %14.3f %14.3f %14.3f\n", llcDesignName(d),
                    meanTail, speedups[d], vuln[d]);
    }

    note("Paper: Jumanji meets the deadline, nearly matches Jigsaw's "
         "speedup, and never shares banks across VMs.");
    return 0;
}
