/**
 * @file
 * Reproduces Fig. 9: sensitivity of Jumanji to the feedback
 * controller's parameters — the target latency range, the panic
 * threshold, and the step size.
 *
 * Paper shape: speedup and tail latency barely change across
 * parameter values ("Jumanji is insensitive to values").
 *
 * Each sensitivity point is a spec variant replacing the whole
 * controller block (bench/specs.hh); every point self-calibrates, as
 * the former fresh-harness-per-point loop did.
 */

#include "bench/specs.hh"

int
main()
{
    jumanji::setQuiet(true);
    jumanji::bench::runSpecMain(
        jumanji::bench::specs::fig09Sensitivity());
    return 0;
}
