/**
 * @file
 * Reproduces Fig. 9: sensitivity of Jumanji to the feedback
 * controller's parameters — the target latency range, the panic
 * threshold, and the step size.
 *
 * Paper shape: speedup and tail latency barely change across
 * parameter values ("Jumanji is insensitive to values").
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

namespace {

/** One sensitivity point: a label plus the controller under test. */
struct Point
{
    std::string label;
    ControllerParams params;
};

} // namespace

int
main()
{
    setQuiet(true);
    header("Figure 9", "feedback-controller parameter sensitivity");

    SystemConfig cfg = benchConfig();
    Rng rng(cfg.seed);
    WorkloadMix mix = makeMix({"xapian"}, 4, 4, rng);

    std::vector<Point> points;

    // Group 1: target latency range (lowFrac, highFrac).
    for (auto [lo, hi] : {std::pair{0.80, 0.90}, {0.85, 0.95},
                          {0.90, 0.99}}) {
        ControllerParams p;
        p.lowFrac = lo;
        p.highFrac = hi;
        char label[64];
        std::snprintf(label, sizeof label, "range [%.2f, %.2f]%s", lo,
                      hi, lo == 0.85 ? " *" : "");
        points.push_back({label, p});
    }

    // Group 2: panic threshold.
    for (double panic : {1.05, 1.10, 1.20}) {
        ControllerParams p;
        p.panicFrac = panic;
        char label[64];
        std::snprintf(label, sizeof label, "panic %.2f%s", panic,
                      panic == 1.10 ? " *" : "");
        points.push_back({label, p});
    }

    // Group 3: step size.
    for (double step : {0.05, 0.10, 0.20}) {
        ControllerParams p;
        p.stepFrac = step;
        char label[64];
        std::snprintf(label, sizeof label, "step %.2f%s", step,
                      step == 0.10 ? " *" : "");
        points.push_back({label, p});
    }

    // Every point is an independent self-calibrating job (the serial
    // version built a fresh one-shot harness per point): same
    // results, fanned out over the worker pool.
    driver::JobGraph graph;
    for (const Point &point : points) {
        driver::SweepJob job;
        job.label = point.label;
        job.config = cfg;
        job.config.controller = point.params;
        job.mix = mix;
        job.designs = {LlcDesign::Jumanji};
        job.load = LoadLevel::High;
        graph.add(std::move(job));
    }
    std::vector<MixResult> results = runJobs(graph);

    std::printf("%-26s %12s %12s\n", "parameters", "batchWS",
                "tail ratio");
    for (std::size_t i = 0; i < points.size(); i++) {
        const DesignResult &ju = results[i].of(LlcDesign::Jumanji);
        std::printf("%-26s %12.3f %12.3f\n", points[i].label.c_str(),
                    ju.batchSpeedup, ju.meanTailRatio);
    }

    note("* = the paper's defaults. Paper: results change very "
         "little across parameter values.");
    return 0;
}
