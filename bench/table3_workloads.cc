/**
 * @file
 * Reproduces Table III: the workload configuration for the
 * latency-critical applications — request rates at low and high
 * load, and the number of queries completed in a measurement run.
 *
 * Absolute QPS values differ from the paper (our time base is
 * scaled; rates are per Mcycle rather than per second), but the
 * structure matches: low = 10% and high = 50% of each app's
 * calibrated service rate, and the relative ordering of the five
 * apps' rates follows the paper's table (silo fastest, moses and
 * img-dnn slowest).
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

int
main()
{
    setQuiet(true);
    header("Table III", "latency-critical workload configuration");

    SystemConfig cfg = benchConfig();
    ExperimentHarness harness(cfg);

    std::printf("%-10s %14s %14s %14s %14s %12s\n", "app",
                "service(cyc)", "QPM(low)", "QPM(high)", "deadline",
                "queries/run");

    for (const auto &name : allTailAppNames()) {
        const LcCalibration &calib = harness.calibrationFor(name);

        // Requests per Mcycle at each load level.
        double qpmLow = 1e6 * loadUtilization(LoadLevel::Low) /
                        calib.serviceCycles;
        double qpmHigh = 1e6 * loadUtilization(LoadLevel::High) /
                         calib.serviceCycles;

        // Queries completed in a standard high-load measurement.
        SystemConfig soloCfg = cfg;
        soloCfg.design = LlcDesign::Static;
        soloCfg.load = LoadLevel::High;
        WorkloadMix solo;
        VmSpec vm;
        vm.lcApps.push_back(name);
        solo.vms.push_back(vm);
        LcCalibrationMap calibMap;
        calibMap[name] = calib;
        System system(soloCfg, solo, calibMap);
        RunResult run = system.run();
        std::uint64_t queries = 0;
        for (const auto &app : run.apps)
            if (app.latencyCritical) queries = app.requestsCompleted;

        std::printf("%-10s %14.0f %14.2f %14.2f %14.0f %12llu\n",
                    name.c_str(), calib.serviceCycles, qpmLow, qpmHigh,
                    calib.deadline,
                    static_cast<unsigned long long>(queries));
    }

    note("QPM = queries per Mcycle (the paper reports QPS on a 2.66 "
         "GHz machine; scale differs, ratios hold). Deadline = padded "
         "p95 running alone at high load with a fixed 4-way "
         "partition, per Sec. VII.");
    return 0;
}
