/**
 * @file
 * KV flash crowd: a kv_small server under a diurnal-scale load spike
 * (the "flashcrowd" trace steps offered load to 1.8x for the middle
 * 30% of the measurement window), compared across Jumanji, the plain
 * D-NUCA (Adaptive), and way-partitioning (VM-Part).
 *
 * Paper-external: the paper evaluates TailBench servers under
 * two-level (high/low) load; this bench stresses the same designs
 * with YCSB/Zipfian KV traffic whose load varies *within* a run, so
 * the per-phase p95/p99 columns show how each design rides through
 * the spike (Sec. IV-B's reconfiguration loop vs. static
 * partitions).
 *
 * The grid is a spec (bench/specs.hh kvFlashCrowd, twin of
 * examples/scenarios/kv_flash_crowd.json), so JUMANJI_JOBS /
 * JUMANJI_MIXES / the result cache apply as in every other bench.
 */

#include "bench/specs.hh"

int
main()
{
    jumanji::setQuiet(true);
    jumanji::bench::runSpecMain(jumanji::bench::specs::kvFlashCrowd());
    return 0;
}
