/**
 * @file
 * Reproduces Fig. 8: xapian's tail (95th-percentile) latency as a
 * function of its LLC allocation, with allocations striped across
 * all banks (S-NUCA / way-partitioning) vs. reserved in the closest
 * banks (D-NUCA).
 *
 * Paper shape: small allocations blow up tail latency (queueing);
 * D-NUCA meets the deadline with meaningfully less space than
 * S-NUCA, and its worst case is far lower.
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

namespace {

double
soloTailAt(const SystemConfig &base, LlcDesign design,
           std::uint64_t lines, const LcCalibrationMap &calib)
{
    SystemConfig cfg = base;
    cfg.design = design;
    cfg.load = LoadLevel::High;
    cfg.fixedLcTargetLines = lines;
    cfg.measureTicks *= 2;

    WorkloadMix solo;
    VmSpec vm;
    vm.lcApps.push_back("xapian");
    solo.vms.push_back(vm);

    System system(cfg, solo, calib);
    RunResult run = system.run();
    for (const auto &app : run.apps)
        if (app.latencyCritical) return app.tailLatency;
    return 0.0;
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Figure 8", "xapian tail latency vs. LLC allocation, "
                       "S-NUCA vs. D-NUCA");

    SystemConfig cfg = benchConfig();
    ExperimentHarness harness(cfg);
    const LcCalibration &calib = harness.calibrationFor("xapian");
    LcCalibrationMap calibMap;
    calibMap["xapian"] = calib;

    PlacementGeometry geo = cfg.placementGeometry();
    std::printf("deadline (cycles): %.0f\n\n", calib.deadline);
    std::printf("%-14s %-12s %16s %16s\n", "alloc(frac)", "alloc(ln)",
                "S-NUCA p95", "D-NUCA p95");

    // Sweep allocations from half a bank up to half the LLC.
    // Adaptive with a pinned target = way-partitioned S-NUCA;
    // Jumanji with a pinned target = nearest-bank D-NUCA.
    for (double frac : {0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.3, 0.5}) {
        auto lines = static_cast<std::uint64_t>(
            frac * static_cast<double>(geo.totalLines()));
        double snuca =
            soloTailAt(cfg, LlcDesign::Adaptive, lines, calibMap);
        double dnuca =
            soloTailAt(cfg, LlcDesign::Jumanji, lines, calibMap);
        std::printf("%-14.3f %-12llu %16.0f %16.0f\n", frac,
                    static_cast<unsigned long long>(lines), snuca,
                    dnuca);
    }

    note("Paper: D-NUCA reaches the deadline with ~2/3 of the S-NUCA "
         "allocation (2 MB vs 3 MB on the 20 MB LLC) and degrades far "
         "more gracefully at small allocations.");
    return 0;
}
