/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. Reconfiguration epoch length — the paper states "more frequent
 *     reconfigurations do not improve results" (Sec. IV-B).
 *  2. Convex-hull (DRRIP-approximation) miss curves vs. raw LRU
 *     curves (Sec. IV-A).
 *  3. Batch-curve rate normalization (simulator fidelity choice).
 *  4. Coherence-walk model: migrate vs. invalidate moved lines
 *     (simulator scaling choice; invalidation is the literal
 *     hardware behaviour).
 *  5. The trading algorithm the paper built and rejected: trades are
 *     rare and gains marginal (Sec. V-D / VIII-C).
 */

#include "bench/bench_common.hh"
#include "src/core/trade_policy.hh"

using namespace jumanji;
using namespace jumanji::bench;

namespace {

struct Row
{
    double tail;
    double batchWs;
};

Row
runVariant(const SystemConfig &cfg, const WorkloadMix &mix)
{
    ExperimentHarness harness(cfg);
    MixResult r = harness.runMix(mix, {LlcDesign::Jumanji},
                                 LoadLevel::High);
    const DesignResult &ju = r.of(LlcDesign::Jumanji);
    return Row{ju.meanTailRatio, ju.batchSpeedup};
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Ablations", "design-choice studies (Jumanji, case-study "
                        "workload)");

    SystemConfig base = benchConfig();
    Rng rng(base.seed);
    WorkloadMix mix = makeMix({"xapian"}, 4, 4, rng);

    std::printf("%-34s %12s %12s\n", "variant", "tail ratio",
                "batchWS");

    {
        Row r = runVariant(base, mix);
        std::printf("%-34s %12.3f %12.3f\n", "baseline (all defaults)",
                    r.tail, r.batchWs);
    }

    // 1. Epoch length sweep.
    for (double factor : {0.5, 2.0}) {
        SystemConfig cfg = base;
        cfg.epochTicks = static_cast<Tick>(
            static_cast<double>(base.epochTicks) * factor);
        Row r = runVariant(cfg, mix);
        char label[64];
        std::snprintf(label, sizeof label, "epoch x%.1f", factor);
        std::printf("%-34s %12.3f %12.3f\n", label, r.tail, r.batchWs);
    }

    // 2. Raw (non-hulled) miss curves.
    {
        SystemConfig cfg = base;
        cfg.hullCurves = false;
        Row r = runVariant(cfg, mix);
        std::printf("%-34s %12.3f %12.3f\n", "raw curves (no hull)",
                    r.tail, r.batchWs);
    }

    // 3. No batch-curve rate normalization.
    {
        SystemConfig cfg = base;
        cfg.rateNormalizeCurves = false;
        Row r = runVariant(cfg, mix);
        std::printf("%-34s %12.3f %12.3f\n",
                    "no rate normalization", r.tail, r.batchWs);
    }

    // 4. Invalidating coherence walk (literal hardware model).
    {
        SystemConfig cfg = base;
        cfg.migrateOnReconfig = false;
        Row r = runVariant(cfg, mix);
        std::printf("%-34s %12.3f %12.3f\n",
                    "invalidate on reconfig", r.tail, r.batchWs);
    }

    // 5. The trading algorithm (the paper's rejected refinement).
    {
        // Driven directly: the policy factory doesn't expose it (the
        // paper shipped without it), so count trades on the paper's
        // standard inputs.
        SystemConfig cfg = base;
        ExperimentHarness harness(cfg);
        auto calib = harness.calibrationsFor(mix);

        // Probe the policy on inputs captured from a normal run.
        JumanjiTradePolicy trade;
        SystemConfig probeCfg = cfg;
        probeCfg.design = LlcDesign::Jumanji;
        probeCfg.load = LoadLevel::High;
        System probe(probeCfg, mix, calib);
        probe.run();

        // Re-run the trade pass over synthetic epoch inputs sampled
        // from the system's final state via the public policy API.
        EpochInputs in;
        in.geo = cfg.placementGeometry();
        in.mesh = &probe.memPath().mesh();
        int idx = 0;
        for (const auto &core : probe.cores()) {
            VcInfo vc;
            vc.vc = static_cast<VcId>(idx);
            vc.app = static_cast<AppId>(idx);
            vc.vm = core->owner().vm;
            vc.coreTile = static_cast<std::uint32_t>(core->id());
            vc.latencyCritical = core->owner().latencyCritical;
            vc.curve = probe.memPath()
                           .umon(static_cast<VcId>(idx))
                           .missCurve()
                           .convexHull();
            vc.targetLines = in.geo.totalLines() / 16;
            in.vcs.push_back(std::move(vc));
            idx++;
        }
        for (int epoch = 0; epoch < 10; epoch++)
            trade.reconfigure(in);

        std::printf("%-34s considered=%llu accepted=%llu\n",
                    "trading pass (10 epochs)",
                    static_cast<unsigned long long>(
                        trade.tradesConsidered()),
                    static_cast<unsigned long long>(
                        trade.tradesAccepted()));
    }

    note("Paper: results are insensitive to the epoch length; the "
         "hull matters for DRRIP fidelity; trades are rare because "
         "they may never penalize latency-critical apps (Sec. "
         "VIII-C). The invalidating walk is the literal hardware "
         "model — at this simulator's compressed epochs it "
         "over-penalizes reconfiguration, which is why migration is "
         "the default (DESIGN.md).");
    return 0;
}
