/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. Reconfiguration epoch length — the paper states "more frequent
 *     reconfigurations do not improve results" (Sec. IV-B).
 *  2. Convex-hull (DRRIP-approximation) miss curves vs. raw LRU
 *     curves (Sec. IV-A).
 *  3. Batch-curve rate normalization (simulator fidelity choice).
 *  4. Coherence-walk model: migrate vs. invalidate moved lines
 *     (simulator scaling choice; invalidation is the literal
 *     hardware behaviour).
 *  5. The trading algorithm the paper built and rejected: trades are
 *     rare and gains marginal (Sec. V-D / VIII-C).
 *
 * Studies 1-4 are spec variants (bench/specs.hh); study 5 drives the
 * trading policy directly (the factory doesn't expose it — the paper
 * shipped without it), reusing the spec's baseline config and mix.
 */

#include "bench/specs.hh"
#include "src/core/trade_policy.hh"

using namespace jumanji;
using namespace jumanji::bench;

int
main()
{
    setQuiet(true);

    driver::ExperimentSpec spec = specs::ablationVariants();
    header(spec.output.title, spec.output.caption);
    driver::SpecRun run = runSpec(spec);
    std::fputs(driver::renderSpecTable(spec, run).c_str(), stdout);

    // 5. The trading algorithm (the paper's rejected refinement).
    {
        // The baseline variant's config and mix, exactly as expanded.
        SystemConfig cfg = run.plan.variantConfigs[0];
        cfg.seed = run.plan.graph.job(0).config.seed;
        const WorkloadMix &mix = run.plan.graph.job(0).mix;
        ExperimentHarness harness(cfg);
        auto calib = harness.calibrationsFor(mix);

        // Probe the policy on inputs captured from a normal run.
        JumanjiTradePolicy trade;
        SystemConfig probeCfg = cfg;
        probeCfg.design = LlcDesign::Jumanji;
        probeCfg.load = LoadLevel::High;
        System probe(probeCfg, mix, calib);
        probe.run();

        // Re-run the trade pass over synthetic epoch inputs sampled
        // from the system's final state via the public policy API.
        EpochInputs in;
        in.geo = cfg.placementGeometry();
        in.mesh = &probe.memPath().mesh();
        int idx = 0;
        for (const auto &core : probe.cores()) {
            VcInfo vc;
            vc.vc = static_cast<VcId>(idx);
            vc.app = static_cast<AppId>(idx);
            vc.vm = core->owner().vm;
            vc.coreTile = static_cast<std::uint32_t>(core->id());
            vc.latencyCritical = core->owner().latencyCritical;
            vc.curve = probe.memPath()
                           .umon(static_cast<VcId>(idx))
                           .missCurve()
                           .convexHull();
            vc.targetLines = in.geo.totalLines() / 16;
            in.vcs.push_back(std::move(vc));
            idx++;
        }
        for (int epoch = 0; epoch < 10; epoch++)
            trade.reconfigure(in);

        std::printf("%-34s considered=%llu accepted=%llu\n",
                    "trading pass (10 epochs)",
                    static_cast<unsigned long long>(
                        trade.tradesConsidered()),
                    static_cast<unsigned long long>(
                        trade.tradesAccepted()));
    }

    note("Paper: results are insensitive to the epoch length; the "
         "hull matters for DRRIP fidelity; trades are rare because "
         "they may never penalize latency-critical apps (Sec. "
         "VIII-C). The invalidating walk is the literal hardware "
         "model — at this simulator's compressed epochs it "
         "over-penalizes reconfiguration, which is why migration is "
         "the default (DESIGN.md).");
    return 0;
}
