/**
 * @file
 * Reproduces Fig. 17: Jumanji's batch speedup as the 20-app
 * population (4 LC + 16 batch) is regrouped into 1 to 12 VMs.
 *
 * Paper shape: speedup degrades only mildly with more VMs (16% at
 * 1 VM to 13% at 12 VMs); bank isolation constrains placement more
 * as VMs multiply, but nearby placement suffices for most apps.
 *
 * Each VM count is a spec variant using the regroupVms knob
 * (bench/specs.hh); every (VM count, mix) point self-calibrates, as
 * the former fresh-harness-per-point loop did.
 */

#include "bench/specs.hh"

int
main()
{
    jumanji::setQuiet(true);
    jumanji::bench::runSpecMain(
        jumanji::bench::specs::fig17VmScaling());
    return 0;
}
