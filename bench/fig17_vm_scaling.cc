/**
 * @file
 * Reproduces Fig. 17: Jumanji's batch speedup as the 20-app
 * population (4 LC + 16 batch) is regrouped into 1 to 12 VMs.
 *
 * Paper shape: speedup degrades only mildly with more VMs (16% at
 * 1 VM to 13% at 12 VMs); bank isolation constrains placement more
 * as VMs multiply, but nearby placement suffices for most apps.
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

int
main()
{
    setQuiet(true);
    header("Figure 17", "Jumanji batch speedup vs. number of VMs");
    std::uint32_t mixes = ExperimentHarness::mixCountFromEnv(3);

    SystemConfig cfg = benchConfig();

    struct Config
    {
        std::uint32_t vms;
        const char *label;
    };
    // The paper's six configurations from 1 VM (all apps trusted) to
    // 12 VMs (one per LC app + one per pair of batch apps).
    const std::vector<Config> configs = {Config{1, "1 VM (all apps)"},
                                         Config{2, "2 x (2 LC + 8 B)"},
                                         Config{4, "4 x (1 LC + 4 B)"},
                                         Config{6, "6 VMs"},
                                         Config{8, "8 VMs"},
                                         Config{12, "12 VMs"}};

    // One self-calibrating job per (VM count, mix): the serial loop
    // built a fresh harness per point, so every point is independent.
    driver::JobGraph graph;
    for (const Config &c : configs) {
        for (std::uint32_t m = 0; m < mixes; m++) {
            SystemConfig mixCfg = cfg;
            mixCfg.seed = cfg.seed + 1000003ull * m;
            Rng rng(mixCfg.seed ^ 0x5eed);
            WorkloadMix base = makeMix(allTailAppNames(), 4, 4, rng);

            driver::SweepJob job;
            job.label = std::string(c.label) + "/mix" +
                        std::to_string(m);
            job.config = mixCfg;
            job.mix = regroupMix(base, c.vms);
            job.designs = {LlcDesign::Jumanji};
            job.load = LoadLevel::High;
            graph.add(std::move(job));
        }
    }
    std::vector<MixResult> all = runJobs(graph);

    std::printf("%-22s %12s %12s %12s\n", "configuration", "batchWS",
                "tail ratio", "attackers");
    std::size_t next = 0;
    for (const Config &c : configs) {
        double ws = 0.0, tail = 0.0, attackers = 0.0;
        for (std::uint32_t m = 0; m < mixes; m++) {
            const DesignResult &ju =
                all[next++].of(LlcDesign::Jumanji);
            ws += ju.batchSpeedup;
            tail += ju.meanTailRatio;
            attackers += ju.run.attackersPerAccess;
        }
        double n = mixes;
        std::printf("%-22s %12.3f %12.3f %12.3f\n", c.label, ws / n,
                    tail / n, attackers / n);
    }

    note("Paper: gmean speedup 16% with one VM, 13% with twelve; no "
         "degradation from 4 to 12 VMs; attackers stay 0 throughout "
         "(isolation holds at every VM count).");
    return 0;
}
