/**
 * @file
 * Reproduces Fig. 2: representative data placements for the 4-VM
 * case-study workload under each LLC design, drawn as an ASCII
 * floorplan of the 5x4 bank mesh.
 *
 * Each bank cell shows which VMs own capacity there: a single VM id
 * (0-3) for an exclusively-owned bank, '*' when several VMs share
 * the bank, and '+' marks banks holding latency-critical data.
 *
 * Paper shape: the S-NUCA designs (Adaptive, VM-Part) smear every
 * VM across every bank; Jigsaw clusters data near threads but still
 * shares some banks across VMs; Jumanji partitions the floorplan
 * into four single-VM regions anchored at the VMs' corners.
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

namespace {

void
drawPlacement(System &system, const SystemConfig &cfg)
{
    const auto &timeline = system.allocationTimeline();
    if (timeline.empty()) return;

    // Reconstruct per-bank VM occupancy from the live arrays (the
    // matrix in the timeline only records totals).
    MemPath &path = system.memPath();
    std::uint32_t cols = cfg.mesh.cols;
    std::uint32_t rows = cfg.mesh.rows;

    for (std::uint32_t y = 0; y < rows; y++) {
        for (std::uint32_t x = 0; x < cols; x++) {
            auto bank = static_cast<BankId>(y * cols + x);
            const CacheArray &array = path.bank(bank).constArray();

            // Which VMs hold lines here, and does any LC app?
            int owner = -1;
            bool shared = false;
            bool lc = false;
            for (const auto &core : system.cores()) {
                const AccessOwner &o = core->owner();
                if (array.occupancyOfVc(o.vc) == 0) continue;
                if (owner == -1) owner = o.vm;
                else if (owner != o.vm) shared = true;
                if (o.latencyCritical) lc = true;
            }

            char cell[8];
            if (owner == -1) {
                std::snprintf(cell, sizeof cell, "  .  ");
            } else if (shared) {
                std::snprintf(cell, sizeof cell, " *%c  ", lc ? '+' : ' ');
            } else {
                std::snprintf(cell, sizeof cell, " %d%c  ", owner,
                              lc ? '+' : ' ');
            }
            std::printf("[%s]", cell);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    setQuiet(true);
    header("Figure 2", "data placements by design (5x4 bank "
                       "floorplan; cell = owning VM, '*' = shared "
                       "across VMs, '+' = holds latency-critical "
                       "data)");

    SystemConfig cfg = benchConfig();
    Rng rng(cfg.seed);
    WorkloadMix mix = makeMix({"xapian"}, 4, 4, rng);
    ExperimentHarness harness(cfg);
    auto calib = harness.calibrationsFor(mix);

    for (LlcDesign d : {LlcDesign::Adaptive, LlcDesign::VMPart,
                        LlcDesign::Jigsaw, LlcDesign::Jumanji}) {
        SystemConfig c = cfg;
        c.design = d;
        c.load = LoadLevel::High;
        System system(c, mix, calib);
        system.run();
        std::printf("\n-- %s --\n", llcDesignName(d));
        drawPlacement(system, c);
    }

    note("Paper Fig. 2: Adaptive/VM-Part spread all four VMs across "
         "every bank ('*' everywhere); Jigsaw clusters data near "
         "threads but shares banks opportunistically; Jumanji's "
         "floorplan has exactly one VM per bank, with the '+' "
         "(latency-critical) banks adjacent to each VM's corner.");
    return 0;
}
