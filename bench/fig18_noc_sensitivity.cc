/**
 * @file
 * Reproduces Fig. 18: sensitivity of Jumanji's batch speedup to the
 * NoC router delay (1-3 cycles per router).
 *
 * Paper shape: the slower the NoC, the more data placement matters —
 * speedup over Static grows from ~9% at 1-cycle routers to ~15% at
 * 3-cycle routers.
 */

#include "bench/bench_common.hh"

using namespace jumanji;
using namespace jumanji::bench;

int
main()
{
    setQuiet(true);
    header("Figure 18", "Jumanji batch speedup vs. NoC router delay");
    std::uint32_t mixes = ExperimentHarness::mixCountFromEnv(3);

    std::printf("%-18s %12s %12s\n", "router delay", "batchWS",
                "tail ratio");
    for (Tick router : {1u, 2u, 3u}) {
        SystemConfig cfg = benchConfig();
        cfg.mesh.routerDelay = router;
        ExperimentHarness harness(cfg);
        auto results = sweep(harness, allTailAppNames(), mixes,
                             {LlcDesign::Jumanji}, LoadLevel::High);
        auto speedups = gmeanSpeedups(results);
        double tail = 0.0;
        for (const auto &mix : results)
            tail += mix.of(LlcDesign::Jumanji).meanTailRatio;
        tail /= static_cast<double>(results.size());
        std::printf("%-18llu %12.3f %12.3f\n",
                    static_cast<unsigned long long>(router),
                    speedups[LlcDesign::Jumanji], tail);
    }

    note("Paper: speedup rises from 9% to 15% as routers go from 1 "
         "to 3 cycles (2 cycles is the default elsewhere).");
    return 0;
}
