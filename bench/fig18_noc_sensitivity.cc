/**
 * @file
 * Reproduces Fig. 18: sensitivity of Jumanji's batch speedup to the
 * NoC router delay (1-3 cycles per router).
 *
 * Paper shape: the slower the NoC, the more data placement matters —
 * speedup over Static grows from ~9% at 1-cycle routers to ~15% at
 * 3-cycle routers.
 *
 * Each router delay is a spec variant patching mesh.routerDelay
 * (bench/specs.hh), with calibrations shared per variant exactly as
 * the former one-harness-per-delay sweeps shared them.
 */

#include "bench/specs.hh"

int
main()
{
    jumanji::setQuiet(true);
    jumanji::bench::runSpecMain(
        jumanji::bench::specs::fig18NocSensitivity());
    return 0;
}
