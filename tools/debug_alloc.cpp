// Scratch: dump Jumanji vs Insecure allocation decisions per epoch.
#include <cstdio>

#include "src/sim/logging.hh"
#include "src/system/harness.hh"
#include "tools/debug_common.hh"

using namespace jumanji;
using namespace jumanji::debug;

int
main()
{
    setQuiet(true);
    SystemConfig cfg = debugConfig();
    WorkloadMix mix = debugMix();

    ExperimentHarness harness(cfg);
    auto calib = harness.calibrationsFor(mix);

    for (LlcDesign d : {LlcDesign::Jumanji, LlcDesign::JumanjiInsecure}) {
        SystemConfig c = cfg;
        c.design = d;
        c.load = LoadLevel::High;
        System sys(c, mix, calib);
        RunResult run = sys.run();

        std::printf("==== %s ====\n", llcDesignName(d));
        const auto &tl = sys.allocationTimeline();
        // Print last-epoch allocation for every VC, grouped by VM.
        const auto &last = tl.back();
        std::uint64_t lcTotal = 0, batchTotal = 0;
        for (std::size_t i = 0; i < run.apps.size(); i++) {
            const auto &app = run.apps[i];
            const std::uint64_t *slot =
                last.allocLines.lookup(static_cast<VcId>(i));
            std::uint64_t lines = slot == nullptr ? 0 : *slot;
            if (app.latencyCritical) lcTotal += lines;
            else batchTotal += lines;
            std::printf("  vm%d %-16s %s alloc=%6llu hit%%=%5.1f "
                        "ipc=%.3f lat=%.0f\n",
                        app.vm, app.name.c_str(), appKind(app),
                        ull(lines), hitPercent(app.counters),
                        app.progress.ipc(), app.avgAccessLatency);
        }
        std::printf("  totals: LC=%llu batch=%llu of %llu\n", ull(lcTotal),
                    ull(batchTotal),
                    ull(cfg.placementGeometry().totalLines()));
        std::printf("  invalidations total: %llu\n",
                    ull(run.coherenceInvalidations));
    }
    return 0;
}
