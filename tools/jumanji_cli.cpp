/**
 * @file
 * jumanji_cli: run custom experiments from the command line.
 *
 * Usage:
 *   jumanji_cli [options]
 *     --scenario <file>    run a declarative scenario document (an
 *                          ExperimentSpec JSON, see
 *                          examples/scenarios/ and docs/INTERNALS.md
 *                          §12) through the orchestrator and print
 *                          its report; --jobs/--cache-dir and the
 *                          observability exports apply. An invalid
 *                          scenario exits 2 with a "field: reason"
 *                          diagnostic on stderr.
 *     --scenario-check <file>
 *                          parse, validate, and expand a scenario
 *                          without simulating; prints the grid shape
 *                          and exits 0 iff the document is valid
 *     --design <name>      Static|Adaptive|VM-Part|Jigsaw|Jumanji|
 *                          Insecure|IdealBatch (default: all five main)
 *     --lc <name|Mixed>    latency-critical app selection: a
 *                          TailBench-like app
 *                          (masstree|xapian|img-dnn|silo|moses), a
 *                          KV-serving app (kv_small, kv_ycsb_a..f;
 *                          see --list-apps), or Mixed = the five
 *                          TailBench apps
 *     --list-apps          print the latency-critical (TailBench +
 *                          KV) and batch (SPEC-like) app catalogs
 *                          with footprint and access intensity, then
 *                          exit
 *     --load <low|high>    offered load (default high)
 *     --vms <n>            number of VMs (default 4)
 *     --batch <n>          batch apps per VM (default 4)
 *     --mixes <n>          random batch mixes (default 3)
 *     --seed <n>           base seed (default 1)
 *     --paper-scale        use the full Table II capacity/time scale
 *     --jobs <n>           worker threads (default $JUMANJI_JOBS or 1);
 *                          output is byte-identical for any job count
 *     --cache-dir <dir>    on-disk result cache keyed by
 *                          Fingerprint(code version, config, mix)
 *                          (default $JUMANJI_CACHE_DIR; unset = off)
 *     --sweep              use the paper's standard sweep methodology
 *                          (ExperimentHarness::sweep: calibrations
 *                          shared across mixes, fixed 4 VM x 4 batch
 *                          mixes) instead of the default independent
 *                          per-mix calibration
 *     --selfcheck          run the experiment twice and compare stats
 *                          fingerprints (determinism self-check;
 *                          bypasses the result cache)
 *     --stats-json <file>  write the full hierarchical stats registry
 *                          of every run as nested JSON
 *     --timeline-csv <file> write the per-epoch recorder series of
 *                          every run as one long-format CSV
 *     --trace-out <file>   write a Chrome trace-event JSON covering
 *                          all runs (chrome://tracing / Perfetto)
 *     --bench-json <file>  wall-clock perf harness: run the
 *                          fig13-shaped sweep (every LC app plus
 *                          Mixed, high and low load, --mixes mixes
 *                          each) with the result cache disabled, and
 *                          write a self-describing snapshot (schema
 *                          jumanji-bench-v2: codeVersion, jobs,
 *                          mixes, seed, wall_seconds,
 *                          simulated_accesses, accesses_per_sec,
 *                          and a per-phase breakdown) as JSON;
 *                          tools/perf_history compares snapshots.
 *                          Combined with --scenario, the scenario's
 *                          grid is the timed workload instead (cache
 *                          still disabled; calibration is folded
 *                          into simulate_s because the phase split
 *                          lives inside driver::runSpec, where
 *                          wall-clock reads are banned)
 *     --profile <file>     enable the host-side scope profiler
 *                          (src/sim/profiler.hh) and write its
 *                          aggregated JSON report (where the wall
 *                          time went: sim.run, sim.calibrate,
 *                          sim.epoch.repartition, driver.*) at exit
 *     --events-out <file>  append one JSONL record per calibration,
 *                          per job (queue wait, cache probe,
 *                          simulate durations, cache hit/miss,
 *                          worker id), and per orchestrator run
 *                          (default $JUMANJI_EVENTS; unset = off)
 *     --heartbeat-ms <n>   rate-limited stderr progress heartbeat
 *                          for long sweeps: jobs done/total,
 *                          accesses/s, ETA (default
 *                          $JUMANJI_HEARTBEAT_MS; 0 = off)
 *
 * None of the profiling/telemetry outputs feed back into results:
 * tables, fingerprints, and the result cache are byte-identical
 * with them on or off (docs/INTERNALS.md §13).
 *
 * Prints one row per design: tail ratio (mean/worst over LC apps),
 * gmean batch weighted speedup vs. Static, and attackers/access.
 *
 * With --selfcheck, instead prints the two FNV-1a fingerprints of the
 * full stats stream and exits 0 iff they match: reproducibility from
 * (seed, config) alone is a hard project invariant (see
 * docs/INTERNALS.md).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "src/driver/orchestrator.hh"
#include "src/driver/spec.hh"
#include "src/sim/json.hh"
#include "src/sim/logging.hh"
#include "src/sim/profiler.hh"
#include "src/sim/statreg.hh"
#include "src/sim/tracing.hh"
#include "src/system/harness.hh"
#include "src/workloads/kv/kv_store.hh"
#include "src/workloads/spec_like.hh"
#include "src/workloads/tail_latency.hh"

using namespace jumanji;

namespace {

[[noreturn]] void
usage(const char *argv0, int exitCode = 2)
{
    std::fprintf(exitCode == 0 ? stdout : stderr,
                 "usage: %s [--scenario FILE] [--scenario-check FILE] "
                 "[--design <name>] [--lc <name|Mixed>] [--list-apps] "
                 "[--load low|high] [--vms N] [--batch N] [--mixes N] "
                 "[--seed N] [--paper-scale] [--jobs N] "
                 "[--cache-dir DIR] [--sweep] [--selfcheck] "
                 "[--stats-json FILE] [--timeline-csv FILE] "
                 "[--trace-out FILE] [--bench-json FILE] "
                 "[--profile FILE] [--events-out FILE] "
                 "[--heartbeat-ms N]\n",
                 argv0);
    std::exit(exitCode);
}

/** Loads and validates a scenario document (fatal on any error). */
driver::ExperimentSpec
loadScenario(const std::string &path)
{
    std::ifstream is(path);
    if (!is) fatal("cannot open " + path);
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return driver::ExperimentSpec::fromJson(JsonValue::parse(text, path));
}

/** Resident footprint of a working-set mixture, in MB (streaming
 *  sets are unbounded compulsory-miss traffic, so they are excluded
 *  — the same accounting AddressStream::footprintLines uses). */
double
footprintMB(const std::vector<WorkingSet> &sets)
{
    std::uint64_t lines = 0;
    for (const WorkingSet &ws : sets)
        if (!ws.streaming) lines += ws.lines;
    return static_cast<double>(lines) * 64.0 / (1024.0 * 1024.0);
}

/**
 * --list-apps: the three app catalogs a mix can draw from, with the
 * two numbers that determine cache behavior — resident footprint and
 * access intensity (LLC accesses per kilo-instruction).
 */
int
listApps()
{
    std::printf("%-10s %-14s %14s %8s\n", "kind", "name",
                "footprint(MB)", "apki");
    for (const TailAppParams &p : tailAppCatalog())
        std::printf("%-10s %-14s %14.2f %8.1f\n", "lc/tail",
                    p.name.c_str(), footprintMB(p.workingSets), p.apki);
    for (const KvAppParams &kv : kvAppCatalog()) {
        const TailAppParams &p = kvTailAppParams(kv.name);
        std::printf("%-10s %-14s %14.2f %8.1f\n", "lc/kv",
                    p.name.c_str(), footprintMB(p.workingSets), p.apki);
    }
    for (const SpecAppParams &p : specAppCatalog())
        std::printf("%-10s %-14s %14.2f %8.1f\n", "batch",
                    p.name.c_str(), footprintMB(p.workingSets), p.apki);
    return 0;
}

/** "%.17g"-style round-trip formatting, integers without a fraction. */
std::string
csvNumber(double v)
{
    char buf[40];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -9.0e15 && v < 9.0e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

/**
 * {"mixes": [{"index": N, "designs": [{"design": ...,
 * "stats": <nested registry dump>}, ...]}, ...]}
 */
void
writeStatsJson(std::ostream &os, const std::vector<MixResult> &results)
{
    os << "{\"mixes\": [";
    for (std::size_t m = 0; m < results.size(); m++) {
        os << (m ? "," : "") << "\n  {\"index\": " << m
           << ", \"designs\": [";
        const auto &designs = results[m].designs;
        for (std::size_t d = 0; d < designs.size(); d++) {
            os << (d ? "," : "") << "\n    {\"design\": \""
               << llcDesignName(designs[d].design)
               << "\", \"stats\": ";
            writeNestedStatsJson(os, designs[d].run.statDump, 2);
            os << "}";
        }
        os << "\n  ]}";
    }
    os << "\n]}\n";
}

/**
 * Long-format CSV: mix,design,epoch,tick,<col>,... One header per
 * column set; a new header is emitted if a run's columns ever differ
 * (they should not — selectors are fixed — but a silent mismatch
 * would corrupt every later row).
 */
void
writeTimelineCsv(std::ostream &os, const std::vector<MixResult> &results)
{
    const std::vector<std::string> *header = nullptr;
    for (std::size_t m = 0; m < results.size(); m++) {
        for (const auto &d : results[m].designs) {
            const TimelineSeries &ts = d.run.timeline;
            if (ts.empty()) continue;
            if (header == nullptr || ts.columns != *header) {
                os << "mix,design,epoch,tick";
                for (const auto &c : ts.columns) os << ',' << c;
                os << '\n';
                header = &ts.columns;
            }
            for (std::size_t r = 0; r < ts.rows.size(); r++) {
                os << m << ',' << llcDesignName(d.design) << ',' << r
                   << ',' << ts.ticks[r];
                for (double v : ts.rows[r]) os << ',' << csvNumber(v);
                os << '\n';
            }
        }
    }
}

/**
 * --bench-json: end-to-end wall-clock measurement of the fig13-shaped
 * sweep (the project's heaviest standard workload). The result cache
 * is always disabled — a warm cache would time deserialization, not
 * simulation — and the calibration phase is included, matching what a
 * cold fig13_main_eval run pays. simulated_accesses is summed from
 * each run's stats dump (llc.hits + llc.misses), so the throughput
 * figure is comparable across code versions exactly when semantics
 * are unchanged; a semantic change shifts the access count and shows
 * up as more than a throughput delta.
 *
 * The wall-clock read lives here and not in src/ deliberately: the
 * simulator itself must stay free of wall-clock dependence (the lint
 * pass enforces it), while the harness around it is the one place
 * where real time is the measurand.
 */
int
runBenchJson(const std::string &path, const SystemConfig &cfg,
             std::uint32_t mixes, std::uint32_t jobs,
             const driver::TelemetryOptions &telemetry)
{
    driver::Orchestrator::Options opts;
    opts.jobs = jobs;
    opts.telemetry = telemetry;
    driver::Orchestrator orch(opts);

    auto start = std::chrono::steady_clock::now();
    auto secondsSince = [](std::chrono::steady_clock::time_point t0) {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    ExperimentHarness harness(cfg);
    {
        std::vector<driver::CalibrationJob> plan;
        for (const auto &name : allTailAppNames())
            plan.push_back({name, harness.baseConfig()});
        std::vector<LcCalibration> calibrations =
            orch.runCalibrations(plan);
        for (std::size_t i = 0; i < plan.size(); i++)
            harness.setCalibration(plan[i].lcName, calibrations[i]);
    }
    const double calibrateSec = secondsSince(start);

    std::vector<LlcDesign> designs = {
        LlcDesign::Adaptive, LlcDesign::VMPart, LlcDesign::Jigsaw,
        LlcDesign::Jumanji};

    // The fig13 group structure: each LC app alone plus the Mixed
    // selection, at high and low load, `mixes` mixes per group, with
    // the same per-mix seeds and shared calibrations.
    driver::JobGraph graph;
    for (LoadLevel load : {LoadLevel::High, LoadLevel::Low}) {
        std::vector<std::vector<std::string>> groups;
        for (const auto &lc : allTailAppNames())
            groups.push_back({lc});
        groups.push_back(allTailAppNames());
        for (const auto &lcNames : groups) {
            for (std::uint32_t m = 0; m < mixes; m++) {
                driver::SweepJob job;
                job.label = lcNames.size() == 1 ? lcNames[0] : "Mixed";
                job.label += std::string("/") +
                             (load == LoadLevel::High ? "high" : "low") +
                             "/mix" + std::to_string(m);
                job.config = harness.baseConfig();
                job.config.seed =
                    harness.baseConfig().seed + m * 1000003ull;
                Rng mixRng(job.config.seed ^ 0x5eedull);
                job.mix = makeMix(lcNames, 4, 4, mixRng);
                job.designs = designs;
                job.load = load;
                job.selfCalibrate = false;
                job.calibrations = harness.calibrationsFor(job.mix);
                graph.add(std::move(job));
            }
        }
    }
    std::vector<driver::JobOutcome> outcomes = orch.run(graph);
    const double simulateSec = secondsSince(start) - calibrateSec;

    double accesses = 0.0;
    for (driver::JobId id = 0; id < outcomes.size(); id++) {
        if (!outcomes[id].ok)
            fatal("bench job " + std::to_string(id) +
                  " failed: " + outcomes[id].error);
        for (const DesignResult &d : outcomes[id].result.designs)
            accesses += d.run.stat("llc.hits") + d.run.stat("llc.misses");
    }

    double wall = secondsSince(start);
    double rate = wall > 0.0 ? accesses / wall : 0.0;

    std::ofstream os(path);
    if (!os) fatal("cannot open " + path);
    // Self-describing snapshot (schema jumanji-bench-v2): jobs,
    // mixes, seed, and codeVersion pin what was measured, so
    // tools/perf_history can refuse to compare unlike work instead
    // of reporting a bogus throughput delta. CI pins
    // simulated_accesses only — the v1 comparison stays valid.
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"schema\": \"jumanji-bench-v2\",\n"
                  " \"codeVersion\": \"%s\",\n"
                  " \"jobs\": %u,\n"
                  " \"mixes\": %u,\n"
                  " \"seed\": %llu,\n"
                  " \"wall_seconds\": %.3f,\n"
                  " \"simulated_accesses\": %.0f,\n"
                  " \"accesses_per_sec\": %.0f,\n"
                  " \"phases\": {\"calibrate_s\": %.3f, "
                  "\"simulate_s\": %.3f, \"report_s\": %.3f}}\n",
                  driver::kCodeVersion, jobs, mixes,
                  static_cast<unsigned long long>(cfg.seed), wall,
                  accesses, rate, calibrateSec, simulateSec,
                  wall - calibrateSec - simulateSec);
    os << buf;

    std::printf("bench: %.0f accesses in %.3f s = %.0f accesses/s "
                "(%u jobs) -> %s\n",
                accesses, wall, rate, jobs, path.c_str());
    return 0;
}

/**
 * --scenario + --bench-json: the scenario's expanded grid is the
 * timed workload. Same discipline as runBenchJson — the result cache
 * is always disabled so a warm cache cannot masquerade as a speedup,
 * and simulated_accesses is summed from the stats stream so a
 * semantic change is distinguishable from a throughput change. The
 * calibrate/simulate split is not observable from out here (it lives
 * inside driver::runSpec, where wall-clock reads are banned by the
 * clock-routing lint rule), so the whole run is reported as
 * simulate_s.
 */
int
runScenarioBenchJson(const std::string &path,
                     const driver::ExperimentSpec &spec,
                     std::uint32_t jobs,
                     const driver::TelemetryOptions &telemetry)
{
    driver::Orchestrator::Options opts;
    opts.jobs = jobs;
    opts.telemetry = telemetry;
    driver::Orchestrator orch(opts);

    auto start = std::chrono::steady_clock::now();
    driver::SpecRun run = driver::runSpec(spec, orch);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    double accesses = 0.0;
    for (const MixResult &mix : run.results)
        for (const DesignResult &d : mix.designs)
            accesses += d.run.stat("llc.hits") + d.run.stat("llc.misses");

    double rate = wall > 0.0 ? accesses / wall : 0.0;

    std::ofstream os(path);
    if (!os) fatal("cannot open " + path);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"schema\": \"jumanji-bench-v2\",\n"
                  " \"codeVersion\": \"%s\",\n"
                  " \"jobs\": %u,\n"
                  " \"mixes\": %u,\n"
                  " \"seed\": %llu,\n"
                  " \"wall_seconds\": %.3f,\n"
                  " \"simulated_accesses\": %.0f,\n"
                  " \"accesses_per_sec\": %.0f,\n"
                  " \"phases\": {\"calibrate_s\": 0.000, "
                  "\"simulate_s\": %.3f, \"report_s\": 0.000}}\n",
                  driver::kCodeVersion, jobs, run.plan.mixCount,
                  static_cast<unsigned long long>(run.plan.base.seed),
                  wall, accesses, rate, wall);
    os << buf;

    std::printf("bench: scenario %s: %.0f accesses in %.3f s = "
                "%.0f accesses/s (%u jobs) -> %s\n",
                spec.name.c_str(), accesses, wall, rate, jobs,
                path.c_str());
    return 0;
}

/**
 * Flushes the main thread's scopes into the process aggregate (the
 * pool already flushed each worker at drain) and writes the profile
 * report. No-op without --profile.
 */
void
writeProfileJson(const std::string &path)
{
    if (path.empty()) return;
    prof::flushThreadProfile();
    std::ofstream os(path);
    if (!os) fatal("cannot open " + path);
    prof::aggregateProfile().writeJson(os);
}

LlcDesign
parseDesign(const std::string &name)
{
    if (name == "Static") return LlcDesign::Static;
    if (name == "Adaptive") return LlcDesign::Adaptive;
    if (name == "VM-Part") return LlcDesign::VMPart;
    if (name == "Jigsaw") return LlcDesign::Jigsaw;
    if (name == "Jumanji") return LlcDesign::Jumanji;
    if (name == "Insecure") return LlcDesign::JumanjiInsecure;
    if (name == "IdealBatch") return LlcDesign::JumanjiIdealBatch;
    fatal("unknown design: " + name);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::vector<LlcDesign> designs;
    std::vector<std::string> lcNames = {"xapian"};
    LoadLevel load = LoadLevel::High;
    std::uint32_t vms = 4, batchPerVm = 4, mixes = 3;
    std::uint64_t seed = 1;
    std::uint32_t jobs = driver::jobCountFromEnv(1);
    std::string cacheDir = driver::cacheDirFromEnv();
    bool paperScale = false;
    bool sweepMode = false;
    bool selfcheck = false;
    std::string statsJsonPath, timelineCsvPath, traceOutPath;
    std::string benchJsonPath;
    std::string scenarioPath, scenarioCheckPath;
    std::string profilePath;
    driver::TelemetryOptions telemetry =
        driver::telemetryOptionsFromEnv();

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        try {
            if (arg == "--scenario") {
                scenarioPath = next();
            } else if (arg == "--scenario-check") {
                scenarioCheckPath = next();
            } else if (arg == "--design") {
                designs.push_back(parseDesign(next()));
            } else if (arg == "--lc") {
                std::string name = next();
                if (name == "Mixed") {
                    lcNames = allTailAppNames();
                } else {
                    lcAppParams(name); // validates (tail or KV)
                    lcNames = {name};
                }
            } else if (arg == "--list-apps") {
                return listApps();
            } else if (arg == "--load") {
                std::string level = next();
                if (level == "low") load = LoadLevel::Low;
                else if (level == "high") load = LoadLevel::High;
                else usage(argv[0]);
            } else if (arg == "--vms") {
                vms = static_cast<std::uint32_t>(
                    std::strtoul(next().c_str(), nullptr, 10));
            } else if (arg == "--batch") {
                batchPerVm = static_cast<std::uint32_t>(
                    std::strtoul(next().c_str(), nullptr, 10));
            } else if (arg == "--mixes") {
                mixes = static_cast<std::uint32_t>(
                    std::strtoul(next().c_str(), nullptr, 10));
            } else if (arg == "--seed") {
                seed = std::strtoull(next().c_str(), nullptr, 10);
            } else if (arg == "--paper-scale") {
                paperScale = true;
            } else if (arg == "--jobs") {
                jobs = static_cast<std::uint32_t>(
                    std::strtoul(next().c_str(), nullptr, 10));
            } else if (arg == "--cache-dir") {
                cacheDir = next();
            } else if (arg == "--sweep") {
                sweepMode = true;
            } else if (arg == "--selfcheck") {
                selfcheck = true;
            } else if (arg == "--stats-json") {
                statsJsonPath = next();
            } else if (arg == "--timeline-csv") {
                timelineCsvPath = next();
            } else if (arg == "--trace-out") {
                traceOutPath = next();
            } else if (arg == "--bench-json") {
                benchJsonPath = next();
            } else if (arg == "--profile") {
                profilePath = next();
            } else if (arg == "--events-out") {
                telemetry.eventsPath = next();
            } else if (arg == "--heartbeat-ms") {
                telemetry.heartbeatMs = static_cast<std::uint32_t>(
                    std::strtoul(next().c_str(), nullptr, 10));
            } else if (arg == "--help" || arg == "-h") {
                usage(argv[0], 0);
            } else {
                std::fprintf(stderr, "unknown option %s\n", arg.c_str());
                usage(argv[0]);
            }
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    if (vms == 0 || batchPerVm > 64 || mixes == 0) {
        std::fprintf(stderr, "error: --vms and --mixes must be >= 1, "
                             "--batch <= 64\n");
        return 2;
    }
    if (jobs == 0) {
        std::fprintf(stderr, "error: --jobs must be >= 1\n");
        return 2;
    }
    // Arm the profiler before any simulation runs. Without
    // --profile every JUMANJI_PROF_SCOPE stays a single disarmed
    // branch (<2% on the fig13-small bench, like tracing).
    if (!profilePath.empty()) prof::setProfilingEnabled(true);
    if (sweepMode && (vms != 4 || batchPerVm != 4)) {
        std::fprintf(stderr,
                     "error: --sweep uses the paper's fixed 4 VM x 4 "
                     "batch mixes; --vms/--batch do not apply\n");
        return 2;
    }

    // Scenario paths first: the document supplies what the ad-hoc
    // flags would (designs, loads, mixes, seed policy); --jobs,
    // --cache-dir, and the observability exports still apply. A
    // malformed document exits 2 with its "field: reason" diagnostic,
    // like any other bad usage.
    if (!scenarioCheckPath.empty()) {
        try {
            driver::ExperimentSpec spec =
                loadScenario(scenarioCheckPath);
            driver::SpecPlan plan = driver::expandSpec(spec);
            std::printf("scenario %s: %zu jobs (%zu variants x %zu "
                        "loads x %zu groups x %u mixes), %zu designs, "
                        "OK\n",
                        spec.name.c_str(), plan.graph.size(),
                        spec.variants.size(), spec.loads.size(),
                        spec.groups.size(), plan.mixCount,
                        spec.designs.size());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s: %s\n", scenarioCheckPath.c_str(),
                         e.what());
            return 2;
        }
        return 0;
    }
    if (!scenarioPath.empty()) {
        driver::ExperimentSpec spec;
        try {
            spec = loadScenario(scenarioPath);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s: %s\n", scenarioPath.c_str(),
                         e.what());
            return 2;
        }
        try {
            if (!benchJsonPath.empty()) {
                int rc = runScenarioBenchJson(benchJsonPath, spec,
                                              jobs, telemetry);
                writeProfileJson(profilePath);
                return rc;
            }
            std::unique_ptr<Tracer> tracer;
            if (!traceOutPath.empty())
                tracer = std::make_unique<Tracer>();
            driver::Orchestrator::Options orchOpts;
            orchOpts.jobs = jobs;
            orchOpts.cacheDir = cacheDir;
            orchOpts.tracer = tracer.get();
            orchOpts.telemetry = telemetry;
            driver::Orchestrator orchestrator(orchOpts);

            driver::SpecRun run = driver::runSpec(spec, orchestrator);
            std::fputs(driver::renderSpec(spec, run).c_str(), stdout);

            if (!statsJsonPath.empty()) {
                std::ofstream os(statsJsonPath);
                if (!os) fatal("cannot open " + statsJsonPath);
                writeStatsJson(os, run.results);
            }
            if (!timelineCsvPath.empty()) {
                std::ofstream os(timelineCsvPath);
                if (!os) fatal("cannot open " + timelineCsvPath);
                writeTimelineCsv(os, run.results);
            }
            if (tracer != nullptr) {
                std::ofstream os(traceOutPath);
                if (!os) fatal("cannot open " + traceOutPath);
                tracer->writeTo(os);
            }
            writeProfileJson(profilePath);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
        return 0;
    }

    if (designs.empty()) {
        designs = {LlcDesign::Adaptive, LlcDesign::VMPart,
                   LlcDesign::Jigsaw, LlcDesign::Jumanji};
    }

    SystemConfig cfg = paperScale ? SystemConfig::paperDefault()
                                  : SystemConfig::benchScaled();
    cfg.seed = seed;
    if (paperScale) {
        std::fprintf(stderr,
                     "note: --paper-scale simulates Table II time "
                     "constants (hours of CPU time per run).\n");
    }

    try {
        if (!benchJsonPath.empty()) {
            int rc =
                runBenchJson(benchJsonPath, cfg, mixes, jobs, telemetry);
            writeProfileJson(profilePath);
            return rc;
        }

        // Each traced job gets a private tracer that the orchestrator
        // merges back in submission order, so the combined trace is
        // the same whatever the worker count (plus a schedule lane).
        std::unique_ptr<Tracer> tracer;
        if (!traceOutPath.empty()) tracer = std::make_unique<Tracer>();

        driver::Orchestrator::Options orchOpts;
        orchOpts.jobs = jobs;
        // A warm cache would make the selfcheck's second run a replay
        // of the first — exactly what it must not be.
        orchOpts.cacheDir = selfcheck ? std::string() : cacheDir;
        orchOpts.tracer = tracer.get();
        orchOpts.telemetry = telemetry;
        driver::Orchestrator orchestrator(orchOpts);

        auto runExperiment = [&]() {
            if (sweepMode) {
                ExperimentHarness harness(cfg);
                return driver::parallelSweep(harness, lcNames, mixes,
                                             designs, load,
                                             orchestrator);
            }
            // Default mode: every mix is an independent job that
            // calibrates from its own config — the same seeds, mixes,
            // and calibrations as one local harness per mix.
            driver::JobGraph graph;
            for (std::uint32_t m = 0; m < mixes; m++) {
                driver::SweepJob job;
                job.label = "mix" + std::to_string(m);
                job.config = cfg;
                job.config.seed = seed + m * 1000003ull;
                job.config.traceLabel = "mix" + std::to_string(m);
                Rng rng(job.config.seed ^ 0x5eed);
                job.mix = makeMix(lcNames, vms, batchPerVm, rng);
                job.designs = designs;
                job.load = load;
                job.selfCalibrate = true;
                graph.add(std::move(job));
            }
            std::vector<driver::JobOutcome> outcomes =
                orchestrator.run(graph);
            std::vector<MixResult> results;
            results.reserve(outcomes.size());
            for (driver::JobId id = 0; id < outcomes.size(); id++) {
                if (!outcomes[id].ok)
                    fatal("mix " + std::to_string(id) +
                          " failed: " + outcomes[id].error);
                results.push_back(std::move(outcomes[id].result));
            }
            return results;
        };

        auto writeTrace = [&]() {
            if (tracer == nullptr) return;
            std::ofstream os(traceOutPath);
            if (!os) fatal("cannot open " + traceOutPath);
            tracer->writeTo(os);
        };

        if (selfcheck) {
            // Two independent runs of the identical experiment; the
            // stats stream must hash identically or the simulator
            // depends on something outside (seed, config).
            std::uint64_t first = fingerprintResults(runExperiment());
            std::uint64_t second = fingerprintResults(runExperiment());
            std::printf("selfcheck: run1=%016llx run2=%016llx -> %s\n",
                        static_cast<unsigned long long>(first),
                        static_cast<unsigned long long>(second),
                        first == second ? "OK" : "MISMATCH");
            writeTrace(); // both repetitions, for what it's worth
            writeProfileJson(profilePath);
            return first == second ? 0 : 1;
        }

        std::vector<MixResult> results = runExperiment();

        if (!statsJsonPath.empty()) {
            std::ofstream os(statsJsonPath);
            if (!os) fatal("cannot open " + statsJsonPath);
            writeStatsJson(os, results);
        }
        if (!timelineCsvPath.empty()) {
            std::ofstream os(timelineCsvPath);
            if (!os) fatal("cannot open " + timelineCsvPath);
            writeTimelineCsv(os, results);
        }
        writeTrace();

        auto speedups = gmeanSpeedups(results);
        auto vuln = meanVulnerability(results);

        std::printf("%-20s %12s %12s %12s %12s\n", "design",
                    "tail(mean)", "tail(worst)", "batchWS",
                    "attackers");
        std::vector<LlcDesign> all = {LlcDesign::Static};
        for (LlcDesign d : designs)
            if (d != LlcDesign::Static) all.push_back(d);
        for (LlcDesign d : all) {
            double meanTail = 0.0, worst = 0.0;
            for (const auto &mix : results) {
                meanTail += mix.of(d).meanTailRatio;
                worst = std::max(worst, mix.of(d).tailRatio);
            }
            meanTail /= static_cast<double>(results.size());
            std::printf("%-20s %12.3f %12.3f %12.3f %12.3f\n",
                        llcDesignName(d), meanTail, worst, speedups[d],
                        vuln[d]);
        }
        writeProfileJson(profilePath);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
