/**
 * @file
 * Include-graph passes for jumanji_lint.
 *
 * layering-dag — quoted includes are repo-root-relative
 * ("src/cache/cache_bank.hh"), so every one is an edge between two
 * subsystems. The pass checks each edge against the declared
 * layering (see kRankOf/kIntraLayer below and INTERNALS.md §8):
 * lower layers never see higher ones, and same-layer dependencies
 * exist only where declared. It also walks the resolved file-level
 * graph for include cycles.
 *
 * unused-include — a file that includes a project header but never
 * mentions any name the header exports is carrying a stale edge;
 * stale edges are how layering violations sneak in unnoticed. The
 * export extraction is heuristic (macros, class/struct/enum names,
 * alias targets, namespace-scope functions and constants) and the
 * rule stays silent when it extracts nothing.
 */

#include "tools/lint/lint.hh"

#include <algorithm>
#include <functional>

namespace jlint {

namespace {

/**
 * Layer rank per subsystem. An include edge must point from a
 * higher rank to a strictly lower one, except where kIntraLayer
 * declares a same-rank dependency.
 *
 *   rank 0  sim
 *   rank 1  cache cpu dnuca mem noc metrics security
 *   rank 2  core system workloads
 *   rank 3  driver
 *   rank 4  bench tools
 *   rank 5  tests examples (may include anything)
 */
const std::map<std::string, int> kRankOf = {
    {"sim", 0},      {"cache", 1},   {"cpu", 1},
    {"dnuca", 1},    {"mem", 1},     {"noc", 1},
    {"metrics", 1},  {"security", 1},{"core", 2},
    {"system", 2},   {"workloads", 2},{"driver", 3},
    {"bench", 4},    {"tools", 4},   {"tests", 5},
    {"examples", 5},
};

/** Declared same-rank edges (closed transitively at pass start). */
const std::vector<std::pair<std::string, std::string>> kIntraLayer = {
    {"mem", "noc"},        {"cpu", "cache"}, {"cpu", "dnuca"},
    {"cpu", "mem"},        {"cpu", "noc"},   {"security", "cache"},
    {"security", "cpu"},   {"security", "dnuca"},
    {"system", "core"},    {"system", "workloads"},
};

std::set<std::pair<std::string, std::string>>
closedIntraLayer()
{
    std::set<std::pair<std::string, std::string>> edges(
        kIntraLayer.begin(), kIntraLayer.end());
    bool grew = true;
    while (grew) {
        grew = false;
        for (const auto &a : edges)
            for (const auto &b : edges)
                if (a.second == b.first &&
                    edges.insert({a.first, b.second}).second)
                    grew = true;
    }
    return edges;
}

bool
isProjectInclude(const IncludeDirective &inc)
{
    return !inc.angled;
}

// --- unused-include ---------------------------------------------------

/**
 * Names a header contributes to its includers: macro definitions,
 * class/struct/enum names, `using N = ...` aliases, and
 * namespace-scope identifiers directly followed by `(` (functions)
 * or `=` (constants). Brace depth tracking distinguishes namespace
 * scope from class/function bodies.
 */
std::set<std::string>
exportedNames(const SourceFile &sf)
{
    std::set<std::string> names;
    const std::vector<Token> &ts = sf.lexed.tokens;
    // true = namespace brace, false = any other brace.
    std::vector<bool> braces;
    bool nextBraceIsNamespace = false;
    auto atNamespaceScope = [&] {
        for (bool ns : braces)
            if (!ns) return false;
        return true;
    };
    for (std::size_t i = 0; i < ts.size(); i++) {
        const Token &t = ts[i];
        if (t.kind == Tok::Punct) {
            if (t.text == "{") {
                braces.push_back(nextBraceIsNamespace);
                nextBraceIsNamespace = false;
            } else if (t.text == "}" && !braces.empty()) {
                braces.pop_back();
            } else if (t.text == ";") {
                nextBraceIsNamespace = false;
            }
            continue;
        }
        if (t.kind != Tok::Ident) continue;
        auto ident = [&](std::size_t j) {
            return j < ts.size() && ts[j].kind == Tok::Ident;
        };
        auto punct = [&](std::size_t j, const char *p) {
            return j < ts.size() && ts[j].kind == Tok::Punct &&
                   ts[j].text == p;
        };
        if (t.inDirective) {
            if (t.text == "define" && i >= 1 && ts[i - 1].text == "#" &&
                ident(i + 1))
                names.insert(ts[i + 1].text);
            continue;
        }
        if (t.text == "namespace") {
            nextBraceIsNamespace = true;
            continue;
        }
        if (t.text == "class" || t.text == "struct") {
            if (ident(i + 1)) names.insert(ts[i + 1].text);
            continue;
        }
        if (t.text == "enum") {
            std::size_t j = i + 1;
            if (ident(j) &&
                (ts[j].text == "class" || ts[j].text == "struct"))
                j++;
            if (ident(j)) names.insert(ts[j].text);
            continue;
        }
        if (t.text == "using" && ident(i + 1) && punct(i + 2, "="))
            names.insert(ts[i + 1].text);
        // Namespace-scope `name(` or `name =`: a function or
        // constant definition/declaration.
        if (atNamespaceScope() &&
            (punct(i + 1, "(") || punct(i + 1, "=")) && i >= 1 &&
            !punct(i - 1, ".") && !punct(i - 1, "#"))
            names.insert(t.text);
    }
    return names;
}

std::string
stripExtension(const std::string &path)
{
    std::size_t dot = path.rfind('.');
    std::size_t slash = path.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path;
    return path.substr(0, dot);
}

} // namespace

void
runIncludeGraphPass(LintContext &ctx)
{
    const auto intra = closedIntraLayer();

    std::map<std::string, const SourceFile *> byRel;
    for (const SourceFile &sf : ctx.files)
        if (!sf.isJson) byRel.emplace(sf.relPath, &sf);

    // --- layering-dag: edge checks -----------------------------------
    for (const SourceFile &sf : ctx.files) {
        if (sf.isJson) continue;
        const std::string from = subsystemOf(sf.relPath);
        auto fromRank = kRankOf.find(from);
        if (fromRank == kRankOf.end()) continue;
        for (const IncludeDirective &inc : sf.lexed.includes) {
            if (!isProjectInclude(inc)) continue;
            const std::string to = subsystemOf(inc.target);
            auto toRank = kRankOf.find(to);
            if (toRank == kRankOf.end()) continue;
            if (from == to) continue;
            if (toRank->second < fromRank->second) continue;
            if (toRank->second == fromRank->second &&
                intra.count({from, to}) != 0)
                continue;
            ctx.report(sf, "layering-dag", inc.line, inc.offset,
                       "include of \"" + inc.target +
                           "\" breaks the layering DAG: " + from +
                           " may not depend on " + to);
        }
    }

    // --- layering-dag: file-level include cycles ---------------------
    // DFS over resolved project includes; each back edge is one
    // cycle, reported at the include that closes it.
    std::map<std::string, int> color; // 0 white, 1 grey, 2 black
    std::vector<std::string> stack;
    std::function<void(const SourceFile &)> visit =
        [&](const SourceFile &sf) {
            color[sf.relPath] = 1;
            stack.push_back(sf.relPath);
            for (const IncludeDirective &inc : sf.lexed.includes) {
                if (!isProjectInclude(inc)) continue;
                auto it = byRel.find(inc.target);
                if (it == byRel.end()) continue;
                int c = color[it->first];
                if (c == 1) {
                    std::string chain;
                    auto at = std::find(stack.begin(), stack.end(),
                                        it->first);
                    for (; at != stack.end(); ++at)
                        chain += *at + " -> ";
                    chain += it->first;
                    ctx.report(sf, "layering-dag", inc.line,
                               inc.offset,
                               "include cycle: " + chain);
                } else if (c == 0) {
                    visit(*it->second);
                }
            }
            stack.pop_back();
            color[sf.relPath] = 2;
        };
    for (const SourceFile &sf : ctx.files)
        if (!sf.isJson && color[sf.relPath] == 0) visit(sf);

    // --- unused-include ----------------------------------------------
    std::map<std::string, std::set<std::string>> exportsOf;
    for (const SourceFile &sf : ctx.files) {
        if (sf.isJson) continue;
        std::set<std::string> mentioned;
        for (const Token &t : sf.lexed.tokens)
            if (t.kind == Tok::Ident) mentioned.insert(t.text);
        for (const IncludeDirective &inc : sf.lexed.includes) {
            if (!isProjectInclude(inc)) continue;
            auto it = byRel.find(inc.target);
            if (it == byRel.end()) continue;
            // A .cc always keeps its own header.
            if (stripExtension(inc.target) ==
                stripExtension(sf.relPath))
                continue;
            auto [eit, inserted] =
                exportsOf.try_emplace(inc.target);
            if (inserted) eit->second = exportedNames(*it->second);
            const std::set<std::string> &exports = eit->second;
            if (exports.empty()) continue;
            bool used = false;
            for (const std::string &name : exports)
                if (mentioned.count(name) != 0) {
                    used = true;
                    break;
                }
            if (!used)
                ctx.report(sf, "unused-include", inc.line, inc.offset,
                           "nothing exported by \"" + inc.target +
                               "\" is referenced here; drop the "
                               "include");
        }
    }
}

} // namespace jlint
