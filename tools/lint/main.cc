/**
 * @file
 * jumanji_lint entry point.
 *
 * Usage:
 *   jumanji_lint [--json | --sarif] [--report <path>] <file-or-dir>...
 *
 * Directories are scanned recursively for C++ sources and, under a
 * "scenarios" directory, JSON scenario files; directories named
 * "lint_fixtures" are skipped (they hold deliberate violations for
 * tests/test_lint.cc). --report writes the findings JSON to a file
 * regardless of the stdout format.
 *
 * Exit status: 0 clean, 1 findings, 2 usage/IO error.
 */

#include "tools/lint/lint.hh"

#include <cstdio>
#include <exception>
#include <fstream>

int
main(int argc, char **argv)
{
    using namespace jlint;

    enum class Format
    {
        Text,
        Json,
        Sarif
    };
    Format format = Format::Text;
    std::string reportPath;
    std::vector<std::string> roots;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--json") {
            format = Format::Json;
        } else if (arg == "--sarif") {
            format = Format::Sarif;
        } else if (arg == "--report") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--report needs a path\n");
                return 2;
            }
            reportPath = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--json | --sarif] "
                        "[--report <path>] <file-or-dir>...\n",
                        argv[0]);
            return 0;
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty()) {
        std::fprintf(stderr,
                     "usage: %s [--json | --sarif] [--report <path>] "
                     "<file-or-dir>...\n",
                     argv[0]);
        return 2;
    }

    LintContext ctx;
    try {
        runLint(ctx, roots);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    std::string output;
    switch (format) {
    case Format::Text:
        output = renderText(ctx.findings, ctx.files.size());
        break;
    case Format::Json: output = renderJson(ctx.findings); break;
    case Format::Sarif: output = renderSarif(ctx.findings); break;
    }
    std::fputs(output.c_str(), stdout);

    if (!reportPath.empty()) {
        std::ofstream out(reportPath);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         reportPath.c_str());
            return 2;
        }
        out << renderJson(ctx.findings);
    }
    return ctx.findings.empty() ? 0 : 1;
}
